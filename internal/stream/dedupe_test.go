package stream

import (
	"strings"
	"testing"
)

func TestDedupeAbsorbsBitIdenticalReplay(t *testing.T) {
	d := NewDedupe()
	if ok, err := d.Admit(rec(0, "benign")); !ok || err != nil {
		t.Fatalf("first arrival: admitted=%v err=%v", ok, err)
	}
	if ok, err := d.Admit(rec(0, "benign")); ok || err != nil {
		t.Fatalf("identical replay: admitted=%v err=%v, want false, nil", ok, err)
	}
	if d.Admitted() != 1 || d.Duplicates() != 1 {
		t.Fatalf("admitted=%d dups=%d, want 1, 1", d.Admitted(), d.Duplicates())
	}
}

func TestDedupeDifferingReplayIsViolation(t *testing.T) {
	d := NewDedupe()
	d.Admit(rec(0, "benign"))
	_, err := d.Admit(rec(0, "sdc"))
	if err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Fatalf("differing replay: err=%v, want determinism violation", err)
	}
}

// The bit-identity check covers the attempt-error chain too: a replay
// whose AttemptErrs differ is a violation even when every scalar field
// matches.
func TestDedupeComparesAttemptChain(t *testing.T) {
	d := NewDedupe()
	d.Admit(failedRec(0))
	other := failedRec(0)
	other.AttemptErrs = append([]string(nil), other.AttemptErrs...)
	other.AttemptErrs[1] = "attempt 2: a different cause"
	if _, err := d.Admit(other); err == nil {
		t.Fatal("replay with a differing attempt chain admitted as duplicate")
	}
	// A true copy of the chain stays a benign duplicate.
	if _, err := d.Admit(failedRec(0)); err != nil {
		t.Fatalf("bit-identical failed replay: %v", err)
	}
}
