package stream

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/cmlasu/unsync/internal/campaign"
)

// PlaneConfig configures a Plane. The zero value is usable: Block
// inlet policy, 128-record window, 95% Wilson interval, wall clock,
// counting-only DLQ, a frame per record.
type PlaneConfig struct {
	// Window is the sliding-window size in records (default 128).
	Window int
	// Z is the Wilson interval multiplier (0 selects 1.96 ≈ 95%).
	Z float64
	// Buffer is the inlet pipe depth (default 256).
	Buffer int
	// Policy is the inlet overflow policy. Block (the default) is the
	// only policy that keeps the DLQ and convergence counts lossless;
	// Drop exists for purely observational taps on streams the caller
	// accounts for elsewhere.
	Policy Policy
	// DLQ is the dead-letter sidecar path; empty selects counting-only
	// mode (depth is tracked, nothing persists).
	DLQ string
	// Key scopes DLQ replay to one campaign (campaign.Spec Key). An
	// entry written by another campaign sharing the sidecar never
	// suppresses this campaign's captures.
	Key string
	// Clock drives frame throttling (nil selects the wall clock).
	Clock Clock
	// EmitEvery is the minimum gap between published progress frames;
	// zero publishes one per admitted record.
	EmitEvery time.Duration
}

// Frame is one progress snapshot: the plane's whole state in a single
// value, so a subscriber that lost every intermediate frame still
// learns everything from the latest one.
type Frame struct {
	Done       uint64  `json:"done"`        // records admitted (successful + failed)
	Failed     uint64  `json:"failed"`      // harness-failed or malformed records
	Rate       float64 `json:"rate"`        // lifetime SDC rate
	Lo         float64 `json:"lo"`          // Wilson lower bound
	Hi         float64 `json:"hi"`          // Wilson upper bound
	Width      float64 `json:"width"`       // Hi - Lo: the early-stop criterion
	WindowLen  int     `json:"window_len"`  // records currently in the window
	WindowRate float64 `json:"window_rate"` // SDC rate over the window
	DLQDepth   uint64  `json:"dlq_depth"`   // distinct dead-lettered trials
	Dropped    uint64  `json:"dropped"`     // inlet records shed (Drop policy / shutdown race)
	Duplicates uint64  `json:"duplicates"`  // bit-identical replays absorbed
	Final      bool    `json:"final,omitempty"`
}

// FormatFrame renders a frame as the deterministic single-line text
// the -progress readout prints: same frame, same bytes, under any
// clock.
func FormatFrame(f Frame) string {
	s := fmt.Sprintf("done=%d failed=%d sdc=%.4f ci=[%.4f,%.4f] width=%.4f window(%d)=%.4f dlq=%d",
		f.Done, f.Failed, f.Rate, f.Lo, f.Hi, f.Width, f.WindowLen, f.WindowRate, f.DLQDepth)
	if f.Final {
		s += " final"
	}
	return s
}

// Plane composes the operators into the standard pipeline:
//
//	Observe → Pipe → Dedupe → {Window, Tracker, DLQ} → Throttle → Fanout
//
// A single pump goroutine drains the pipe and owns every downstream
// stage, so the stages themselves need no locking; Snapshot shares
// them under one mutex. The plane is strictly observational — it reads
// records, it never produces or reorders them — which is what makes
// Result values and journal bytes bit-identical with the plane on or
// off.
//
// A nil *Plane is a valid no-op observer: Observe, Snapshot, Close,
// DLQDepth and Dropped all tolerate it, so call sites wire
// plane.Observe unconditionally.
type Plane struct {
	in       *Pipe
	dedupe   *Dedupe
	window   *Window
	tracker  *Tracker
	dlq      *DLQ
	fanout   *Fanout[Frame]
	throttle *Throttle

	ctx    context.Context
	cancel context.CancelFunc
	pumped chan struct{} // closed when the pump exits

	mu        sync.Mutex // guards stages + firstErr (pump vs Snapshot/Close)
	firstErr  error
	closeOnce sync.Once
	closeErr  error
}

// NewPlane opens the DLQ sidecar (replaying prior entries) and starts
// the pump. Close releases everything; it must be called after the
// last Observe has returned.
func NewPlane(cfg PlaneConfig) (*Plane, error) {
	if cfg.Window <= 0 {
		cfg.Window = 128
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	dlq, err := OpenDLQ(cfg.DLQ, cfg.Key)
	if err != nil {
		return nil, err
	}
	p := &Plane{
		in:       NewPipe(cfg.Buffer, cfg.Policy),
		dedupe:   NewDedupe(),
		window:   NewWindow(cfg.Window),
		tracker:  NewTracker(cfg.Z),
		dlq:      dlq,
		fanout:   NewFanout[Frame](),
		throttle: NewThrottle(cfg.Clock, cfg.EmitEvery),
		pumped:   make(chan struct{}),
	}
	p.ctx, p.cancel = context.WithCancel(context.Background())
	go p.pump()
	return p, nil
}

// Observe offers one trial record to the plane. Under the Block inlet
// policy it waits for buffer space (bounded by the pump's drain rate,
// never by any subscriber); under Drop it returns immediately. Nil-safe.
func (p *Plane) Observe(rec campaign.TrialRecord) {
	if p == nil {
		return
	}
	p.in.Send(p.ctx, rec)
}

// pump is the single consumer: it drains the inlet pipe into the
// stages and publishes throttled frames until Close cancels the
// context, then drains whatever is still buffered and exits.
func (p *Plane) pump() {
	defer close(p.pumped)
	for {
		select {
		case rec := <-p.in.Out():
			p.ingest(rec)
		case <-p.ctx.Done():
			for {
				select {
				case rec := <-p.in.Out():
					p.ingest(rec)
				default:
					return
				}
			}
		}
	}
}

// ingest runs one record through dedupe, window, tracker and DLQ, then
// publishes a frame if the throttle allows. The DLQ offer — an fsync —
// runs between the two critical sections, never under p.mu: a stalled
// disk must not wedge Snapshot and the /metrics scrape behind it. Only
// the pump calls ingest, so the stages stay single-writer throughout.
func (p *Plane) ingest(rec campaign.TrialRecord) {
	p.mu.Lock()
	admitted, err := p.dedupe.Admit(rec)
	if err != nil && p.firstErr == nil {
		p.firstErr = err
	}
	if admitted {
		p.window.Add(rec)
		p.tracker.Add(rec)
	}
	p.mu.Unlock()

	if admitted {
		if _, err := p.dlq.Offer(rec); err != nil {
			p.mu.Lock()
			if p.firstErr == nil {
				p.firstErr = err
			}
			p.mu.Unlock()
		}
	}

	p.mu.Lock()
	emit := p.throttle.Allow()
	var fr Frame
	if emit {
		fr = p.frameLocked(false)
	}
	p.mu.Unlock()
	if emit {
		p.fanout.Publish(fr)
	}
}

// frameLocked builds a Frame; p.mu must be held.
func (p *Plane) frameLocked(final bool) Frame {
	c := p.tracker.Snapshot()
	return Frame{
		Done:       c.Done,
		Failed:     c.Failed,
		Rate:       c.Rate,
		Lo:         c.Lo,
		Hi:         c.Hi,
		Width:      c.Width,
		WindowLen:  p.window.Len(),
		WindowRate: p.window.Rate(),
		DLQDepth:   p.dlq.Depth(),
		Dropped:    p.in.Dropped(),
		Duplicates: p.dedupe.Duplicates(),
		Final:      final,
	}
}

// Snapshot returns the current progress frame. Nil-safe (zero frame).
func (p *Plane) Snapshot() Frame {
	if p == nil {
		return Frame{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.frameLocked(false)
}

// Subscribe registers a progress tap with the given buffer depth.
// Frames arrive at most as often as EmitEvery allows; a tap whose
// reader stalls sheds frames but is guaranteed the final one.
// Subscribing after Close yields a closed tap carrying only the final
// frame.
func (p *Plane) Subscribe(buf int) *Tap[Frame] {
	return p.fanout.Subscribe(buf)
}

// DLQDepth reports distinct dead-lettered trials. Nil-safe.
func (p *Plane) DLQDepth() uint64 {
	if p == nil {
		return 0
	}
	return p.dlq.Depth()
}

// Dropped reports inlet records the plane failed to enqueue. Nil-safe.
func (p *Plane) Dropped() uint64 {
	if p == nil {
		return 0
	}
	return p.in.Dropped()
}

// Close stops the pump (draining buffered records first), broadcasts
// the final frame to every tap, closes the DLQ, and returns the first
// error the plane saw — a determinism violation from dedupe or a DLQ
// write failure. Idempotent and nil-safe. Call only after the last
// Observe has returned; records still in flight in a racing Observe
// are counted as dropped, never silently half-processed.
func (p *Plane) Close() error {
	if p == nil {
		return nil
	}
	p.closeOnce.Do(func() {
		p.cancel()
		<-p.pumped
		p.mu.Lock()
		final := p.frameLocked(true)
		err := p.firstErr
		p.mu.Unlock()
		p.fanout.Close(final)
		if cerr := p.dlq.Close(); err == nil {
			err = cerr
		}
		p.closeErr = err
	})
	return p.closeErr
}
