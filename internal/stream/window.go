package stream

import (
	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/fault"
)

// Window is a sliding count-window SDC-rate aggregator: it remembers
// the classification of the last Size admitted records and reports the
// SDC rate over just that window. A campaign's lifetime rate converges
// and stops moving; the windowed rate is what shows drift — a workload
// phase with a different vulnerability profile, or a sick worker
// suddenly producing garbage.
//
// The window is count-based, not time-based, so its contents derive
// from the record stream alone and the readout is deterministic under
// a fake clock. Not safe for concurrent use; the Plane serializes
// access under its own lock.
type Window struct {
	size int
	buf  []windowCell
	head int // next write position
	n    int // cells occupied
	ok   int // successful trials in window
	sdc  int // SDC trials in window
}

// windowCell is one record's classification.
type windowCell struct {
	ok  bool // classified successfully (counted in the rate denominator)
	sdc bool // classified OutcomeSDC
}

// NewWindow builds a window over the last size records (minimum 1).
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{size: size, buf: make([]windowCell, size)}
}

// Add folds one record in, evicting the oldest once the window is
// full. Failed and malformed records occupy a slot but stay out of the
// rate denominator, mirroring how the campaign tally excludes them.
func (w *Window) Add(rec campaign.TrialRecord) {
	cell := windowCell{}
	if o, known := fault.OutcomeByName(rec.Outcome); rec.Err == "" && known {
		cell.ok = true
		cell.sdc = o == fault.OutcomeSDC
	}
	if w.n == w.size {
		old := w.buf[w.head]
		if old.ok {
			w.ok--
			if old.sdc {
				w.sdc--
			}
		}
	} else {
		w.n++
	}
	w.buf[w.head] = cell
	w.head = (w.head + 1) % w.size
	if cell.ok {
		w.ok++
		if cell.sdc {
			w.sdc++
		}
	}
}

// Len reports how many records the window currently holds.
func (w *Window) Len() int { return w.n }

// Rate returns the SDC rate over the window's successful trials (0
// when none).
func (w *Window) Rate() float64 {
	if w.ok == 0 {
		return 0
	}
	return float64(w.sdc) / float64(w.ok)
}
