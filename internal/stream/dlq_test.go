package stream

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/cmlasu/unsync/internal/journaltest"
)

func TestDLQPersistsAndReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dlq.jsonl")
	q, err := OpenDLQ(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	if wrote, err := q.Offer(rec(0, "benign")); wrote || err != nil {
		t.Fatalf("healthy record dead-lettered: wrote=%v err=%v", wrote, err)
	}
	if wrote, err := q.Offer(failedRec(1)); !wrote || err != nil {
		t.Fatalf("retry-exhausted record: wrote=%v err=%v", wrote, err)
	}
	if wrote, err := q.Offer(rec(2, "no-such-outcome")); !wrote || err != nil {
		t.Fatalf("malformed record: wrote=%v err=%v", wrote, err)
	}
	if q.Depth() != 2 {
		t.Fatalf("depth=%d, want 2", q.Depth())
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := ReadDLQ(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("sidecar holds %d entries, want 2", len(entries))
	}
	if entries[0].Reason != ReasonRetryExhausted || entries[1].Reason != ReasonMalformed {
		t.Fatalf("reasons %q, %q", entries[0].Reason, entries[1].Reason)
	}
	// The full per-attempt error chain survives the round trip — the
	// whole point of the DLQ: no cause is lost to the retry loop.
	want := failedRec(1)
	if !want.Equal(entries[0].Rec) {
		t.Fatalf("dead-lettered record mutated:\ngot:  %+v\nwant: %+v", entries[0].Rec, want)
	}

	// Reopening replays the sidecar: depth is restored and a replayed
	// failure is never written twice.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := OpenDLQ(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if q2.Depth() != 2 {
		t.Fatalf("replayed depth=%d, want 2", q2.Depth())
	}
	if wrote, err := q2.Offer(failedRec(1)); wrote || err != nil {
		t.Fatalf("replayed trial re-dead-lettered: wrote=%v err=%v", wrote, err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("sidecar grew on a replayed offer")
	}
}

// A shared sidecar never suppresses another campaign's captures:
// replay is scoped to the opening campaign's key.
func TestDLQReplayScopedToKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dlq.jsonl")
	q, err := OpenDLQ(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Offer(failedRec(0)); err != nil {
		t.Fatal(err)
	}
	q.Close()

	q2, err := OpenDLQ(path, "other-key")
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if q2.Depth() != 0 {
		t.Fatalf("foreign entries replayed: depth=%d, want 0", q2.Depth())
	}
	other := failedRec(0)
	other.Key = "other-key"
	if wrote, _ := q2.Offer(other); !wrote {
		t.Fatal("foreign replay suppressed this campaign's capture")
	}
}

func TestDLQCountingOnlyMode(t *testing.T) {
	q, err := OpenDLQ("", "")
	if err != nil {
		t.Fatal(err)
	}
	if wrote, err := q.Offer(failedRec(0)); !wrote || err != nil {
		t.Fatalf("counting-only offer: wrote=%v err=%v", wrote, err)
	}
	if q.Depth() != 1 {
		t.Fatalf("depth=%d, want 1", q.Depth())
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}

// dlqLines marshals n dead-letter entries as intact journal lines for
// the shared corruption corpus.
func dlqLines(t testing.TB, n int) [][]byte {
	t.Helper()
	lines := make([][]byte, n)
	for i := range lines {
		b, err := json.Marshal(Entry{Reason: ReasonRetryExhausted, Rec: failedRec(i)})
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = b
	}
	return lines
}

// The sidecar loader rides the lenient path of the repository-wide
// corruption corpus: torn tails are skipped, mid-file garbage is
// skipped too (the sidecar is shared across campaigns, like the
// campaign checkpoint), and intact entries always survive.
func TestDLQReadCorruptionCorpus(t *testing.T) {
	journaltest.Check(t, dlqLines(t, 3), false, func(path string) (int, error) {
		entries, err := ReadDLQ(path)
		return len(entries), err
	})
}

// Appending any newline-free fragment to a valid sidecar must never
// change what ReadDLQ recovers: the fragment is the torn tail of a
// killed writer and the loader skips it.
func FuzzDLQTornTail(f *testing.F) {
	for _, seed := range journaltest.Seeds() {
		f.Add(seed)
	}
	lines := dlqLines(f, 2)
	var base bytes.Buffer
	for _, l := range lines {
		base.Write(l)
		base.WriteByte('\n')
	}
	f.Fuzz(func(t *testing.T, junk []byte) {
		path := filepath.Join(t.TempDir(), "dlq.jsonl")
		data := append(append([]byte(nil), base.Bytes()...), journaltest.TornTail(junk)...)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		entries, err := ReadDLQ(path)
		if err != nil {
			t.Fatalf("torn tail broke the loader: %v", err)
		}
		// A torn fragment that happens to be complete JSON may parse as
		// one extra trailing entry; the intact prefix must survive
		// unchanged regardless.
		if len(entries) < 2 {
			t.Fatalf("recovered %d entries, want >= 2 intact", len(entries))
		}
		for i := 0; i < 2; i++ {
			if !entries[i].Rec.Equal(failedRec(i)) {
				t.Fatalf("intact entry %d mutated", i)
			}
		}
	})
}
