package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/fault"
)

// DLQ reasons.
const (
	// ReasonRetryExhausted marks a trial whose every retry-with-reseed
	// attempt failed with a harness error; the entry's record carries
	// the full per-attempt error chain (TrialRecord.AttemptErrs).
	ReasonRetryExhausted = "retry-exhausted"
	// ReasonMalformed marks a record whose outcome name resolves to no
	// known fault.Outcome — a journal from a newer schema, or a
	// corrupted line that still parsed as JSON.
	ReasonMalformed = "malformed-outcome"
)

// Entry is one dead-lettered trial: the reason it was quarantined plus
// the full record — original seed, derived site, attempt count and the
// complete per-attempt error chain — everything needed to replay the
// trial by hand (`unsync-fault -n 1 -seed <seed>` reaches index i via
// the deterministic site derivation) or to diff a fixed harness
// against the captured failure.
type Entry struct {
	Reason string               `json:"reason"`
	Rec    campaign.TrialRecord `json:"rec"`
}

// DeadReason classifies a record for dead-lettering. The bool is false
// for healthy records.
func DeadReason(rec campaign.TrialRecord) (string, bool) {
	if rec.Err != "" {
		return ReasonRetryExhausted, true
	}
	if _, known := fault.OutcomeByName(rec.Outcome); !known {
		return ReasonMalformed, true
	}
	return "", false
}

// DLQ is the dead-letter queue: an fsync'd JSONL sidecar of Entry
// lines. Opening an existing sidecar replays it first, so a restarted
// coordinator (or a resumed campaign replaying its journal through the
// plane) never writes the same trial twice — the sidecar only grows by
// genuinely new failures. Every append is fsync'd before Offer
// returns: a dead-lettered trial survives a kill the same way a
// journaled one does.
//
// A DLQ opened with an empty path counts depth but persists nothing —
// the counting-only mode behind progress readouts with no -dlq flag.
type DLQ struct {
	mu    sync.Mutex
	f     *os.File // nil in counting-only mode
	seen  map[int]bool
	depth atomic.Uint64
}

// OpenDLQ opens (creating if needed) the sidecar at path and replays
// its existing entries. key, when non-empty, filters the replay to
// entries of that campaign (campaign.Spec.Key) — a shared sidecar
// never suppresses another campaign's captures. An empty path selects
// counting-only mode.
func OpenDLQ(path, key string) (*DLQ, error) {
	q := &DLQ{seen: make(map[int]bool)}
	if path == "" {
		return q, nil
	}
	prior, err := ReadDLQ(path)
	if err != nil {
		return nil, err
	}
	for _, e := range prior {
		if key != "" && e.Rec.Key != key {
			continue
		}
		if !q.seen[e.Rec.Index] {
			q.seen[e.Rec.Index] = true
			q.depth.Add(1)
		}
	}
	q.f, err = os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("stream: open dlq: %w", err)
	}
	return q, nil
}

// ReadDLQ loads every well-formed entry of a sidecar. A missing file
// is empty, not an error; an unparseable line — the torn tail of a
// killed writer — is skipped, exactly like the campaign journal
// loader.
func ReadDLQ(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("stream: open dlq: %w", err)
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			continue // torn tail from a killed writer
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: read dlq: %w", err)
	}
	return out, nil
}

// Offer dead-letters rec if it classifies as dead and has not been
// captured before. It reports whether an entry was written (or, in
// counting-only mode, counted). The write is fsync'd before return;
// like the fabric journal, the mutex guards only line atomicity and
// the fsync runs outside it, so a stalled disk never serializes
// readers of Depth behind one sync.
func (q *DLQ) Offer(rec campaign.TrialRecord) (bool, error) {
	reason, dead := DeadReason(rec)
	if !dead {
		return false, nil
	}
	b, err := json.Marshal(Entry{Reason: reason, Rec: rec})
	if err != nil {
		return false, fmt.Errorf("stream: marshal dlq entry: %w", err)
	}
	q.mu.Lock()
	if q.seen[rec.Index] {
		q.mu.Unlock()
		return false, nil
	}
	f := q.f
	if f != nil {
		if _, err := f.Write(append(b, '\n')); err != nil {
			q.mu.Unlock()
			return false, fmt.Errorf("stream: append dlq entry %d: %w", rec.Index, err)
		}
	}
	q.seen[rec.Index] = true
	q.depth.Add(1)
	q.mu.Unlock()
	if f != nil {
		if err := f.Sync(); err != nil {
			return true, fmt.Errorf("stream: sync dlq: %w", err)
		}
	}
	return true, nil
}

// Depth reports the distinct dead-lettered trials known to this queue
// (replayed plus newly captured). Safe to read concurrently.
func (q *DLQ) Depth() uint64 { return q.depth.Load() }

// Close releases the sidecar file. Entries are fsync'd per Offer, so
// Close adds no durability — it only returns the descriptor.
func (q *DLQ) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f == nil {
		return nil
	}
	err := q.f.Close()
	q.f = nil
	return err
}
