package stream

import (
	"context"
	"sync"
	"testing"

	"github.com/cmlasu/unsync/internal/campaign"
)

// rec builds a minimal classified trial record for operator tests.
func rec(idx int, outcome string) campaign.TrialRecord {
	return campaign.TrialRecord{
		Key:      "k",
		Prog:     "p",
		Seed:     1,
		Index:    idx,
		Space:    "int-reg",
		Attempts: 1,
		Outcome:  outcome,
	}
}

// failedRec builds a retry-exhausted record carrying its attempt chain.
func failedRec(idx int) campaign.TrialRecord {
	r := rec(idx, "")
	r.Attempts = 2
	r.Err = "boom (final)"
	r.AttemptErrs = []string{
		"attempt 1 (space=int-reg reg=3 bit=7 addr=0x0 step=11): boom",
		"attempt 2 (space=mem reg=0 bit=12 addr=0x4010 step=90): boom (final)",
	}
	return r
}

func TestPipeBlockBackpressuresUntilDrained(t *testing.T) {
	p := NewPipe(1, Block)
	ctx := context.Background()
	if !p.Send(ctx, rec(0, "benign")) {
		t.Fatal("first send into empty pipe refused")
	}
	// The second send must block until the consumer frees a slot.
	sent := make(chan bool, 1)
	go func() { sent <- p.Send(ctx, rec(1, "benign")) }()
	select {
	case <-sent:
		t.Fatal("send into a full Block pipe returned before a drain")
	default:
	}
	if got := (<-p.Out()).Index; got != 0 {
		t.Fatalf("drained index %d, want 0", got)
	}
	if !<-sent {
		t.Fatal("blocked send reported failure after the drain")
	}
	if p.Dropped() != 0 {
		t.Fatalf("Block pipe dropped %d records", p.Dropped())
	}
}

func TestPipeBlockGivesUpOnDeadContext(t *testing.T) {
	p := NewPipe(1, Block)
	p.Send(context.Background(), rec(0, "benign")) // fill the buffer
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if p.Send(ctx, rec(1, "benign")) {
		t.Fatal("send with a dead context claimed success on a full pipe")
	}
	if p.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", p.Dropped())
	}
}

func TestPipeDropNeverWaits(t *testing.T) {
	p := NewPipe(2, Drop)
	ctx := context.Background()
	accepted := 0
	for i := 0; i < 5; i++ {
		if p.Send(ctx, rec(i, "benign")) {
			accepted++
		}
	}
	if accepted != 2 || p.Dropped() != 3 || p.Len() != 2 {
		t.Fatalf("accepted=%d dropped=%d len=%d, want 2/3/2", accepted, p.Dropped(), p.Len())
	}
}

// A burst from many concurrent producers through a small Block pipe
// must deliver every record exactly once. Run under -race this is also
// the pipe's data-race check.
func TestPipeBurstConcurrentProducers(t *testing.T) {
	const producers, perProducer = 8, 50
	p := NewPipe(4, Block)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				p.Send(ctx, rec(w*perProducer+i, "benign"))
			}
		}(w)
	}
	seen := make(map[int]bool)
	for len(seen) < producers*perProducer {
		r := <-p.Out()
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
	}
	wg.Wait()
	if p.Dropped() != 0 {
		t.Fatalf("Block pipe dropped %d records under burst", p.Dropped())
	}
}
