package stream

import "testing"

func TestWindowSlidingEviction(t *testing.T) {
	w := NewWindow(4)
	w.Add(rec(0, "sdc"))
	for i := 1; i < 4; i++ {
		w.Add(rec(i, "benign"))
	}
	if w.Len() != 4 || w.Rate() != 0.25 {
		t.Fatalf("full window: len=%d rate=%v, want 4, 0.25", w.Len(), w.Rate())
	}
	// One more benign evicts the SDC record; the windowed rate drops to
	// zero while a lifetime rate would still remember it.
	w.Add(rec(4, "benign"))
	if w.Len() != 4 || w.Rate() != 0 {
		t.Fatalf("after eviction: len=%d rate=%v, want 4, 0", w.Len(), w.Rate())
	}
}

// Failed and malformed records occupy a window slot but never enter
// the rate denominator — mirroring the campaign tally.
func TestWindowExcludesFailedFromRate(t *testing.T) {
	w := NewWindow(2)
	w.Add(rec(0, "sdc"))
	w.Add(failedRec(1))
	if w.Len() != 2 || w.Rate() != 1.0 {
		t.Fatalf("sdc+failed: len=%d rate=%v, want 2, 1.0", w.Len(), w.Rate())
	}
	w.Add(rec(2, "no-such-outcome")) // malformed: evicts the sdc slot
	if w.Rate() != 0 {
		t.Fatalf("after evicting the only ok record: rate=%v, want 0", w.Rate())
	}
}

func TestWindowMinimumSize(t *testing.T) {
	w := NewWindow(0)
	w.Add(rec(0, "sdc"))
	w.Add(rec(1, "benign"))
	if w.Len() != 1 || w.Rate() != 0 {
		t.Fatalf("size-clamped window: len=%d rate=%v, want 1, 0", w.Len(), w.Rate())
	}
}
