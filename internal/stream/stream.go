// Package stream is the campaign's streaming results plane: a small
// library of composable, backpressure-safe operators over live
// campaign.TrialRecord streams. The final Result of a long campaign is
// a statistic — SDC rate with a Wilson interval over thousands of
// trials — yet until this package existed it only materialized when the
// run ended, and a trial that exhausted its retries vanished into a
// terminal errors.Join. The operators here turn the live trial stream
// into something observable and lossless while it is still running:
//
//   - Pipe: a bounded-buffer stage with an explicit overflow policy —
//     Block (backpressure the producer; nothing is ever lost) or Drop
//     (never stall the producer; count what was shed);
//   - Window: sliding count-window SDC-rate aggregation, so a rate
//     drift late in a campaign is visible against the lifetime rate;
//   - Tracker: live Wilson-CI convergence tracking (internal/stats),
//     the same interval the campaign's early-stop evaluates — but note
//     that early stopping itself still fires only at round boundaries
//     (campaign roundSize), never mid-round off this tracker;
//   - Dedupe: replay-aware dedupe by trial index with the same
//     bit-identity verification as the fabric merge — a replayed record
//     that differs from its first arrival is a determinism violation,
//     not a duplicate;
//   - DLQ: a dead-letter queue that quarantines retry-exhausted and
//     malformed trials to an fsync'd JSONL sidecar carrying the full
//     per-attempt error chain, replayed on open so a restart never
//     duplicates an entry;
//   - Fanout: throttled fan-out of progress frames to any number of
//     taps, each served by a non-blocking send — a slow or stalled
//     subscriber (an SSE client that wandered off) drops frames, never
//     delays trial execution.
//
// Plane composes them into the standard pipeline the campaign engine,
// the fleet coordinator and the job server all wire in through a plain
// observer callback. The plane is strictly observational on the result
// path: Result values and checkpoint-journal bytes are bit-identical
// with the plane enabled or disabled (pinned by test and CI smoke).
//
// Every operator is context-cancellable and driven by an injectable
// Clock, so the determinism linter's wall-clock guarantees hold and
// the -progress readout is testable under a fake clock.
package stream

import (
	"sync"
	"time"
)

// Clock abstracts wall-clock reads so frame throttling is testable and
// deterministic. The zero Plane uses the real clock; tests inject a
// FakeClock and advance it by hand.
type Clock interface {
	Now() time.Time
}

// realClock reads the wall clock.
type realClock struct{}

// Now returns the wall-clock time.
func (realClock) Now() time.Time {
	//unsync:allow-wallclock frame throttling cadence only; never feeds a trial outcome
	return time.Now()
}

// WallClock returns the real wall clock.
func WallClock() Clock { return realClock{} }

// FakeClock is a hand-advanced Clock for deterministic tests.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{t: start} }

// Now returns the fake clock's current instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Throttle rate-limits emissions against a Clock: Allow reports whether
// at least Every has elapsed since the last allowed emission. A zero or
// negative Every allows everything — the deterministic default for
// tests and for bounded-volume streams.
type Throttle struct {
	clock   Clock
	every   time.Duration
	started bool
	last    time.Time
}

// NewThrottle builds a throttle over clock (nil selects the wall
// clock).
func NewThrottle(clock Clock, every time.Duration) *Throttle {
	if clock == nil {
		clock = WallClock()
	}
	return &Throttle{clock: clock, every: every}
}

// Allow reports whether an emission may happen now, consuming the slot
// if so. The first call always passes.
func (t *Throttle) Allow() bool {
	if t.every <= 0 {
		return true
	}
	now := t.clock.Now()
	if t.started && now.Sub(t.last) < t.every {
		return false
	}
	t.started = true
	t.last = now
	return true
}
