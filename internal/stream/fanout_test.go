package stream

import (
	"sync"
	"testing"
)

// A subscriber that never reads sheds intermediate frames but is still
// guaranteed the final one — the core SSE safety property: a stalled
// client costs granularity, never correctness and never throughput.
func TestFanoutSlowSubscriberShedsButGetsFinal(t *testing.T) {
	f := NewFanout[int]()
	tap := f.Subscribe(2)
	for i := 0; i < 10; i++ {
		f.Publish(i) // never blocks, reader is absent
	}
	if tap.Dropped() == 0 {
		t.Fatal("overloaded tap shed nothing")
	}
	f.Close(99)
	var last int
	n := 0
	for v := range tap.C {
		last = v
		n++
	}
	if last != 99 {
		t.Fatalf("last delivered value %d, want the final 99", last)
	}
	if n > 3 {
		t.Fatalf("tap of depth 2 delivered %d values; buffer bound violated", n)
	}
}

func TestFanoutSubscribeAfterClose(t *testing.T) {
	f := NewFanout[int]()
	f.Close(7)
	tap := f.Subscribe(1)
	v, open := <-tap.C
	if !open || v != 7 {
		t.Fatalf("late subscriber got (%d, %v), want the final value 7", v, open)
	}
	if _, open := <-tap.C; open {
		t.Fatal("late tap not closed after the final value")
	}
	// Cancel after close must be a safe no-op, not a double close.
	tap.Cancel()
}

func TestFanoutCancelStopsDelivery(t *testing.T) {
	f := NewFanout[int]()
	tap := f.Subscribe(4)
	f.Publish(1)
	tap.Cancel()
	f.Publish(2) // skips the cancelled tap
	n := 0
	for range tap.C {
		n++
	}
	if n != 1 {
		t.Fatalf("cancelled tap received %d values, want 1", n)
	}
	f.Close(3) // must not panic on the removed tap
}

// Concurrent Subscribe/Cancel racing a publishing pump — the -race
// check for the fanout's locking discipline. Publish and Close stay on
// one goroutine per the single-sender contract.
func TestFanoutConcurrentSubscribeCancel(t *testing.T) {
	f := NewFanout[int]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			f.Publish(i)
		}
		f.Close(-1)
	}()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tap := f.Subscribe(1)
				<-tap.C // final or a published value; possibly closed
				tap.Cancel()
			}
		}()
	}
	wg.Wait()
	<-done
}
