package stream

import (
	"testing"
	"time"
)

// The throttle is driven entirely by its injected clock, so the
// -progress cadence is deterministic in tests: same advances, same
// emissions, byte-for-byte identical readouts.
func TestThrottleDeterministicUnderFakeClock(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	th := NewThrottle(clk, 100*time.Millisecond)
	if !th.Allow() {
		t.Fatal("first emission must always pass")
	}
	if th.Allow() {
		t.Fatal("second emission passed with no time elapsed")
	}
	clk.Advance(50 * time.Millisecond)
	if th.Allow() {
		t.Fatal("emission passed at half the interval")
	}
	clk.Advance(60 * time.Millisecond)
	if !th.Allow() {
		t.Fatal("emission refused after the interval elapsed")
	}
	if th.Allow() {
		t.Fatal("slot not consumed by the allowed emission")
	}
}

func TestThrottleZeroIntervalAllowsAll(t *testing.T) {
	th := NewThrottle(NewFakeClock(time.Unix(0, 0)), 0)
	for i := 0; i < 3; i++ {
		if !th.Allow() {
			t.Fatalf("emission %d refused under a zero interval", i)
		}
	}
}

// FormatFrame is the -progress line contract: pin the exact bytes so a
// drive-by format change shows up as a test diff, not as broken user
// scripts grepping the readout.
func TestFormatFrameGolden(t *testing.T) {
	fr := Frame{
		Done: 128, Failed: 2,
		Rate: 0.125, Lo: 0.0786, Hi: 0.19375, Width: 0.11515,
		WindowLen: 64, WindowRate: 0.09375,
		DLQDepth: 2,
	}
	want := "done=128 failed=2 sdc=0.1250 ci=[0.0786,0.1938] width=0.1152 window(64)=0.0938 dlq=2"
	if got := FormatFrame(fr); got != want {
		t.Fatalf("FormatFrame:\ngot:  %s\nwant: %s", got, want)
	}
	fr.Final = true
	if got := FormatFrame(fr); got != want+" final" {
		t.Fatalf("final frame missing the ' final' marker: %s", got)
	}
}
