package stream

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/campaign"
)

// checksumProgram mirrors the campaign test workload: enough live
// state that injected flips produce a mix of outcomes.
const checksumProgram = `
	la r10, buf
	li r1, 0
	li r2, 0
	li r3, 64
init:
	mul r4, r2, r2
	sw r4, 0(r10)
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, init
	la r10, buf
	li r2, 0
sum:
	lw r5, 0(r10)
	add r1, r1, r5
	slli r6, r1, 1
	xor r1, r1, r6
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, sum
	mv r4, r1
	li r2, 1
	syscall
	halt
.data
buf: .space 256
`

// The acceptance pin for the whole streaming plane: a campaign run
// with the plane observing must produce a bit-identical Result and
// byte-identical checkpoint journal to the same campaign with the
// plane off — the plane reads the stream, it never touches it. The
// plane's own final statistics must simultaneously agree with the
// campaign's: same counts, same Wilson interval.
func TestPlaneBitIdentityWithCampaign(t *testing.T) {
	prog := asm.MustAssemble(checksumProgram)
	dir := t.TempDir()
	spec := campaign.Spec{
		Scheme:   campaign.SchemeUnSync,
		Trials:   80,
		Seed:     7,
		MaxSteps: 20_000,
		Workers:  4,
	}

	off := spec
	off.Checkpoint = filepath.Join(dir, "off.jsonl")
	resOff, err := campaign.Run(prog, off)
	if err != nil {
		t.Fatalf("plane-off run: %v", err)
	}

	plane, err := NewPlane(PlaneConfig{
		DLQ: filepath.Join(dir, "dlq.jsonl"),
		Key: spec.Normalized().Key(campaign.ProgHash(prog)),
	})
	if err != nil {
		t.Fatal(err)
	}
	on := spec
	on.Checkpoint = filepath.Join(dir, "on.jsonl")
	on.Observer = plane.Observe
	resOn, err := campaign.Run(prog, on)
	if err != nil {
		t.Fatalf("plane-on run: %v", err)
	}
	if err := plane.Close(); err != nil {
		t.Fatalf("plane close: %v", err)
	}

	if !reflect.DeepEqual(resOff, resOn) {
		t.Errorf("Result differs with the plane enabled:\noff: %+v\non:  %+v", resOff, resOn)
	}
	jOff, err := os.ReadFile(off.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	jOn, err := os.ReadFile(on.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jOff, jOn) {
		t.Error("checkpoint journal bytes differ with the plane enabled")
	}

	fr := plane.Snapshot()
	if fr.Done != uint64(resOn.Ran) || fr.Failed != uint64(resOn.Failed) {
		t.Errorf("plane counts done=%d failed=%d, campaign ran=%d failed=%d",
			fr.Done, fr.Failed, resOn.Ran, resOn.Failed)
	}
	if fr.Rate != resOn.SDCRate || fr.Lo != resOn.SDCLo || fr.Hi != resOn.SDCHi {
		t.Errorf("plane interval (%v [%v,%v]) disagrees with campaign (%v [%v,%v])",
			fr.Rate, fr.Lo, fr.Hi, resOn.SDCRate, resOn.SDCLo, resOn.SDCHi)
	}
	if fr.DLQDepth != 0 || fr.Dropped != 0 || fr.Duplicates != 0 {
		t.Errorf("clean campaign left plane residue: %+v", fr)
	}
}

// A resumed campaign replays journaled records through the observer;
// the plane must absorb the replay as duplicates and still agree with
// the final Result.
func TestPlaneAbsorbsResumeReplay(t *testing.T) {
	prog := asm.MustAssemble(checksumProgram)
	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	spec := campaign.Spec{
		Scheme:   campaign.SchemeUnSync,
		Trials:   60,
		Seed:     7,
		MaxSteps: 20_000,
		Workers:  2,
	}

	plane, err := NewPlane(PlaneConfig{})
	if err != nil {
		t.Fatal(err)
	}
	killed := spec
	killed.Checkpoint = ck
	killed.StopAfter = 25
	killed.Observer = plane.Observe
	if _, err := campaign.Run(prog, killed); err == nil {
		t.Fatal("StopAfter run did not report interruption")
	}

	// Same plane observes the resumed run: every journaled record
	// arrives a second time.
	resumed := spec
	resumed.Checkpoint = ck
	resumed.Resume = true
	resumed.Observer = plane.Observe
	res, err := campaign.Run(prog, resumed)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := plane.Close(); err != nil {
		t.Fatalf("plane close (replayed records must be bit-identical): %v", err)
	}
	fr := plane.Snapshot()
	if fr.Done != uint64(res.Ran) {
		t.Errorf("plane admitted %d distinct trials, campaign ran %d", fr.Done, res.Ran)
	}
	if fr.Duplicates == 0 {
		t.Error("resume replayed no duplicates through the plane; replay wiring is dead")
	}
}

// A subscriber that never reads must not slow the producer: Observe's
// cost is bounded by the pump, never by any tap. The final frame still
// reaches the stalled tap.
func TestPlaneStalledSubscriberCannotDelayObserve(t *testing.T) {
	plane, err := NewPlane(PlaneConfig{Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	tap := plane.Subscribe(1) // stalled: nothing reads until after Close
	const n = 5000
	start := time.Now() //unsync:allow-wallclock test wall-time bound, not a trial outcome
	for i := 0; i < n; i++ {
		plane.Observe(rec(i, "benign"))
	}
	elapsed := time.Since(start)
	if err := plane.Close(); err != nil {
		t.Fatal(err)
	}
	// Generous bound: 5000 in-memory records through a buffered pipe
	// take milliseconds; a tap-coupled pump would hang forever (the tap
	// holds 1 frame and nobody reads).
	if elapsed > 30*time.Second {
		t.Fatalf("Observe of %d records took %v with a stalled subscriber", n, elapsed)
	}
	var last Frame
	got := false
	for fr := range tap.C {
		last, got = fr, true
	}
	if !got || !last.Final || last.Done != n {
		t.Fatalf("stalled tap final frame = %+v (got=%v), want Final with done=%d", last, got, n)
	}
}

// A record replayed with a different payload poisons the stream; the
// plane surfaces the determinism violation on Close.
func TestPlaneDeterminismViolationSurfacesOnClose(t *testing.T) {
	plane, err := NewPlane(PlaneConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plane.Observe(rec(0, "benign"))
	plane.Observe(rec(0, "sdc"))
	err = plane.Close()
	if err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Fatalf("Close = %v, want determinism violation", err)
	}
}

// Retry-exhausted records land in the sidecar with their full attempt
// chain, and a second plane over the same sidecar replays them instead
// of re-capturing.
func TestPlaneDeadLettersWithChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dlq.jsonl")
	plane, err := NewPlane(PlaneConfig{DLQ: path, Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	plane.Observe(failedRec(3))
	plane.Observe(rec(4, "benign"))
	if err := plane.Close(); err != nil {
		t.Fatal(err)
	}
	if plane.DLQDepth() != 1 {
		t.Fatalf("DLQDepth=%d, want 1", plane.DLQDepth())
	}
	entries, err := ReadDLQ(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Reason != ReasonRetryExhausted {
		t.Fatalf("sidecar entries: %+v", entries)
	}
	if len(entries[0].Rec.AttemptErrs) != 2 {
		t.Fatalf("attempt chain lost: %+v", entries[0].Rec.AttemptErrs)
	}

	plane2, err := NewPlane(PlaneConfig{DLQ: path, Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	plane2.Observe(failedRec(3)) // the restart replay case
	if err := plane2.Close(); err != nil {
		t.Fatal(err)
	}
	if plane2.DLQDepth() != 1 {
		t.Fatalf("restarted plane depth=%d, want 1 (replayed, not re-captured)", plane2.DLQDepth())
	}
	entries, err = ReadDLQ(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("sidecar grew to %d entries on replay", len(entries))
	}
}

// Cancelling the inlet context through Close mid-burst must never
// deadlock Observe: racing records are counted as dropped.
func TestPlaneCloseRacesObserve(t *testing.T) {
	plane, err := NewPlane(PlaneConfig{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			plane.Observe(rec(i, "benign"))
		}
	}()
	plane.Close()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Observe deadlocked against a closing plane")
	}
}

// Every exported Plane method tolerates a nil receiver so call sites
// wire the observer unconditionally.
func TestPlaneNilSafe(t *testing.T) {
	var p *Plane
	p.Observe(rec(0, "benign"))
	if fr := p.Snapshot(); fr != (Frame{}) {
		t.Fatalf("nil Snapshot = %+v", fr)
	}
	if p.DLQDepth() != 0 || p.Dropped() != 0 {
		t.Fatal("nil counters nonzero")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("nil Close = %v", err)
	}
}

// Frames honor the throttle under a fake clock: with a 100ms cadence
// and no time advancing, a burst publishes at most the first frame —
// then Close always delivers the final state.
func TestPlaneThrottledFramesUnderFakeClock(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	plane, err := NewPlane(PlaneConfig{Clock: clk, EmitEvery: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tap := plane.Subscribe(64)
	for i := 0; i < 50; i++ {
		plane.Observe(rec(i, "benign"))
	}
	if err := plane.Close(); err != nil {
		t.Fatal(err)
	}
	var frames []Frame
	for fr := range tap.C {
		frames = append(frames, fr)
	}
	// At most: one throttled frame (the first Allow always passes) plus
	// the final. Time never advanced, so everything between was muted.
	if len(frames) > 2 {
		t.Fatalf("throttle leaked %d frames with a frozen clock", len(frames))
	}
	last := frames[len(frames)-1]
	if !last.Final || last.Done != 50 {
		t.Fatalf("final frame %+v, want Final done=50", last)
	}
}
