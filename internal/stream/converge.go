package stream

import (
	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/stats"
)

// Tracker is the live convergence tracker: it accumulates the same
// (SDC, successful) counts the campaign's finish() derives and exposes
// the Wilson interval on the lifetime SDC rate at any moment, so an
// operator can see how far a running campaign is from a target CI
// width while there is still time to act on it.
//
// The tracker observes; it never decides. The campaign's early
// stopping still evaluates only at fixed round boundaries
// (campaign.Spec.CIWidth), so the stopping point — and therefore the
// Result — never depends on when anyone looked at this tracker.
//
// Not safe for concurrent use; the Plane serializes access.
type Tracker struct {
	z      float64
	done   uint64 // records admitted (successful + failed)
	failed uint64 // records with a harness error or malformed outcome
	n      uint64 // successful trials (the rate denominator)
	k      uint64 // SDC trials
}

// NewTracker builds a tracker with the given Wilson z multiplier
// (0 selects 1.96 ≈ 95%, the campaign default).
func NewTracker(z float64) *Tracker {
	if z == 0 {
		z = 1.96
	}
	return &Tracker{z: z}
}

// Add folds one record in, classifying it exactly as the campaign
// tally would: records carrying a harness error or an unknown outcome
// name count as failed, everything else contributes to the rate.
func (t *Tracker) Add(rec campaign.TrialRecord) {
	t.done++
	o, known := fault.OutcomeByName(rec.Outcome)
	if rec.Err != "" || !known {
		t.failed++
		return
	}
	t.n++
	if o == fault.OutcomeSDC {
		t.k++
	}
}

// Convergence is the tracker's point-in-time view.
type Convergence struct {
	Done   uint64  // records admitted
	Failed uint64  // failed or malformed records
	Rate   float64 // lifetime SDC rate (k/n; 0 when n == 0)
	Lo, Hi float64 // Wilson interval bounds on the rate
	Width  float64 // Hi - Lo: the campaign's early-stop criterion
}

// Snapshot computes the current convergence state.
func (t *Tracker) Snapshot() Convergence {
	c := Convergence{Done: t.done, Failed: t.failed}
	c.Lo, c.Hi = stats.Wilson(t.k, t.n, t.z)
	c.Width = c.Hi - c.Lo
	if t.n > 0 {
		c.Rate = float64(t.k) / float64(t.n)
	}
	return c
}
