package stream

import (
	"testing"

	"github.com/cmlasu/unsync/internal/stats"
)

// The tracker must classify records exactly as campaign.Result.finish
// does: harness errors and unknown outcome names are failed, everything
// else feeds the Wilson interval on the SDC rate.
func TestTrackerMatchesCampaignClassification(t *testing.T) {
	tr := NewTracker(0) // 0 selects the campaign default z=1.96
	tr.Add(rec(0, "sdc"))
	tr.Add(rec(1, "benign"))
	tr.Add(failedRec(2))
	tr.Add(rec(3, "no-such-outcome"))
	c := tr.Snapshot()
	if c.Done != 4 || c.Failed != 2 {
		t.Fatalf("done=%d failed=%d, want 4, 2", c.Done, c.Failed)
	}
	if c.Rate != 0.5 {
		t.Fatalf("rate=%v, want 0.5 (1 sdc over 2 successful)", c.Rate)
	}
	lo, hi := stats.Wilson(1, 2, 1.96)
	if c.Lo != lo || c.Hi != hi || c.Width != hi-lo {
		t.Fatalf("interval [%v,%v] width %v, want Wilson(1,2,1.96) = [%v,%v]", c.Lo, c.Hi, c.Width, lo, hi)
	}
}

func TestTrackerEmptySnapshot(t *testing.T) {
	c := NewTracker(1.96).Snapshot()
	lo, hi := stats.Wilson(0, 0, 1.96)
	if c.Done != 0 || c.Rate != 0 || c.Lo != lo || c.Hi != hi {
		t.Fatalf("empty tracker snapshot %+v, want zero counts and Wilson(0,0)", c)
	}
}
