package stream

import (
	"fmt"

	"github.com/cmlasu/unsync/internal/campaign"
)

// Dedupe is the replay-aware dedupe stage: a resumed campaign replays
// its journal through the plane, and a fleet coordinator's steal
// overlap delivers some trials twice — in both cases the repeat must
// be bit-identical to the first arrival, because every record derives
// from (Seed, trial index, attempt) alone. Dedupe keeps the first
// record per index, counts repeats, and — exactly like the fabric
// merge — treats a differing repeat as a determinism violation, not a
// duplicate.
//
// Not safe for concurrent use; the Plane serializes access.
type Dedupe struct {
	seen map[int]campaign.TrialRecord
	dups uint64
}

// NewDedupe builds an empty dedupe stage.
func NewDedupe() *Dedupe {
	return &Dedupe{seen: make(map[int]campaign.TrialRecord)}
}

// Admit reports whether rec is the first arrival for its trial index.
// A bit-identical repeat returns (false, nil); a differing repeat
// returns (false, error) — the stream is poisoned and the plane
// surfaces the error on Close.
func (d *Dedupe) Admit(rec campaign.TrialRecord) (bool, error) {
	prev, ok := d.seen[rec.Index]
	if !ok {
		d.seen[rec.Index] = rec
		return true, nil
	}
	d.dups++
	if !prev.Equal(rec) {
		return false, fmt.Errorf("stream: trial %d replayed with a different payload — determinism violation", rec.Index)
	}
	return false, nil
}

// Admitted reports how many distinct trial indices have been admitted.
func (d *Dedupe) Admitted() int { return len(d.seen) }

// Duplicates reports how many bit-identical repeats were absorbed.
func (d *Dedupe) Duplicates() uint64 { return d.dups }
