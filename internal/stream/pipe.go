package stream

import (
	"context"
	"sync/atomic"

	"github.com/cmlasu/unsync/internal/campaign"
)

// Policy is a Pipe's overflow behavior when its buffer is full.
type Policy int

const (
	// Block backpressures the producer until the consumer drains a
	// slot or the context dies. Nothing is ever lost; the producer's
	// pace is bounded by the consumer's. This is the correct policy for
	// anything on the accounting path (DLQ capture, convergence
	// tracking) — dropping there would silently skew the statistics the
	// plane exists to make trustworthy.
	Block Policy = iota
	// Drop sheds the record on a full buffer and counts it. The
	// producer never waits. This is the correct policy only for purely
	// cosmetic taps (progress frames), where a stalled consumer must
	// not slow trial execution.
	Drop
)

// String names the policy for diagnostics.
func (p Policy) String() string {
	if p == Drop {
		return "drop"
	}
	return "block"
}

// Pipe is the bounded-buffer stage at the head of a streaming
// pipeline: producers Send, one consumer drains Out. The buffer bound
// and overflow policy are explicit — an unbounded queue just moves the
// overload somewhere invisible.
type Pipe struct {
	ch      chan campaign.TrialRecord
	policy  Policy
	dropped atomic.Uint64
}

// NewPipe builds a pipe with the given buffer depth (minimum 1) and
// overflow policy.
func NewPipe(depth int, policy Policy) *Pipe {
	if depth < 1 {
		depth = 1
	}
	return &Pipe{ch: make(chan campaign.TrialRecord, depth), policy: policy}
}

// Send offers one record to the pipe. Under Block it waits for buffer
// space, giving up only when ctx dies; under Drop it never waits.
// It returns false when the record was not enqueued (dropped, or the
// context died first) — either way the loss is counted in Dropped.
func (p *Pipe) Send(ctx context.Context, rec campaign.TrialRecord) bool {
	if p.policy == Drop {
		select {
		case p.ch <- rec:
			return true
		default:
			p.dropped.Add(1)
			return false
		}
	}
	select {
	case p.ch <- rec:
		return true
	case <-ctx.Done():
		p.dropped.Add(1)
		return false
	}
}

// Out is the consumer side. The pipe is never closed (producers may
// race a shutdown); consumers select on it against their own done
// signal.
func (p *Pipe) Out() <-chan campaign.TrialRecord { return p.ch }

// Dropped counts records lost to the overflow policy or to a shutdown
// race. Safe to read concurrently.
func (p *Pipe) Dropped() uint64 { return p.dropped.Load() }

// Len reports the records currently buffered.
func (p *Pipe) Len() int { return len(p.ch) }
