package stream

import (
	"sync"
	"sync/atomic"
)

// Fanout broadcasts values to any number of subscriber taps without
// ever waiting for one: a tap whose buffer is full loses the value
// (counted per tap), so a stalled SSE reader or a wedged progress
// writer can never backpressure the plane's pump. Progress frames are
// cosmetic — the next one supersedes the last — which is exactly the
// traffic this tradeoff is safe for; anything on the accounting path
// belongs in a Block-policy Pipe instead.
//
// Publish and Close follow a single-sender discipline: only the
// plane's pump goroutine calls them, which is what makes closing a
// tap's channel race-free. Subscribe and Cancel are safe from any
// goroutine.
type Fanout[T any] struct {
	mu       sync.Mutex
	taps     map[*Tap[T]]struct{}
	closed   bool
	final    T
	hasFinal bool
}

// Tap is one subscriber's view: receive from C until it closes. The
// last value delivered before close is the fanout's final value — a
// tap is guaranteed to observe it even if every intermediate frame was
// shed while the reader stalled.
type Tap[T any] struct {
	C       <-chan T
	ch      chan T
	f       *Fanout[T]
	dropped atomic.Uint64
	done    bool // closed or cancelled; guarded by f.mu
}

// NewFanout builds an empty fanout.
func NewFanout[T any]() *Fanout[T] {
	return &Fanout[T]{taps: make(map[*Tap[T]]struct{})}
}

// Subscribe registers a tap with the given buffer depth (minimum 1).
// Subscribing to a closed fanout still works: the tap arrives already
// closed, carrying only the final value — how a late SSE client gets
// its terminal frame.
func (f *Fanout[T]) Subscribe(buf int) *Tap[T] {
	if buf < 1 {
		buf = 1
	}
	t := &Tap[T]{ch: make(chan T, buf)}
	t.C = t.ch
	t.f = f
	f.mu.Lock()
	if f.closed {
		final, has := f.final, f.hasFinal
		f.mu.Unlock()
		// The tap is unshared and its buffer holds at least one slot,
		// so this send cannot block; done outside the lock regardless.
		if has {
			t.ch <- final
		}
		t.done = true
		close(t.ch)
		return t
	}
	f.taps[t] = struct{}{}
	f.mu.Unlock()
	return t
}

// Publish offers v to every live tap without blocking; full taps shed
// it. Single sender only (the pump).
func (f *Fanout[T]) Publish(v T) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	for t := range f.taps {
		select {
		case t.ch <- v:
		default:
			t.dropped.Add(1)
		}
	}
}

// Close delivers final to every tap — evicting the tap's oldest
// buffered values if needed, so a reader that never kept up still sees
// the terminal state — then closes every tap channel. Single sender
// only (the pump). Idempotent.
func (f *Fanout[T]) Close(final T) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.final = final
	f.hasFinal = true
	for t := range f.taps {
		for delivered := false; !delivered; {
			select {
			case t.ch <- final:
				delivered = true
			default:
				// Buffer full: shed the oldest frame to make room. The
				// reader may race us for it; either way a slot frees up
				// and the loop makes progress.
				select {
				case <-t.ch:
					t.dropped.Add(1)
				default:
				}
			}
		}
		t.done = true
		close(t.ch)
	}
	f.taps = nil
}

// Dropped counts values this tap shed while its reader lagged.
func (t *Tap[T]) Dropped() uint64 { return t.dropped.Load() }

// Cancel unsubscribes the tap and closes its channel; further
// published values skip it. Safe to call concurrently with Publish and
// idempotent against Close.
func (t *Tap[T]) Cancel() {
	f := t.f
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if t.done {
		return
	}
	delete(f.taps, t)
	t.done = true
	close(t.ch)
}
