package trace

// rng is a small, fast, deterministic xorshift64* generator. The
// simulator cannot use math/rand's global state: every workload must
// replay bit-identically across architecture configurations, and
// per-benchmark seeds must be stable across runs and platforms.
type rng struct {
	s uint64
}

// newRNG seeds the generator; a zero seed is mapped to a fixed non-zero
// constant (xorshift state must never be zero).
func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng{s: seed}
}

// next returns the next 64 uniformly distributed bits.
func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform integer in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// geometric samples a geometric distribution with the given mean,
// truncated to [1, max]. Used for dependence distances.
func (r *rng) geometric(mean float64, max int) int {
	if mean < 1 {
		mean = 1
	}
	p := 1 / mean
	d := 1
	for d < max && r.float() >= p {
		d++
	}
	return d
}

// hash64 is SplitMix64: a stateless mixer used to derive stable per-site
// properties (branch bias, loop length) from a (seed, site) pair.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
