package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/isa"
)

func TestSliceStream(t *testing.T) {
	recs := []Record{{Seq: 0}, {Seq: 1}, {Seq: 2}}
	s := NewSliceStream(recs)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	for i := 0; i < 3; i++ {
		r, ok := s.Next()
		if !ok || r.Seq != uint64(i) {
			t.Fatalf("Next %d = %v, %v", i, r, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("stream should be exhausted")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r.Seq != 0 {
		t.Error("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	g := NewGenerator(catalog[0])
	l := NewLimit(g, 10)
	n := 0
	for {
		_, ok := l.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("Limit yielded %d records", n)
	}
	l.Reset()
	if _, ok := l.Next(); !ok {
		t.Error("Reset Limit should yield again")
	}
}

func TestCollect(t *testing.T) {
	s := NewSliceStream([]Record{{}, {}, {}})
	if got := len(Collect(s, 2)); got != 2 {
		t.Errorf("Collect(2) = %d records", got)
	}
	s.Reset()
	if got := len(Collect(s, 10)); got != 3 {
		t.Errorf("Collect(10) = %d records", got)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("bzip2")
	a := Collect(NewGenerator(p), 5000)
	b := Collect(NewGenerator(p), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGeneratorReset(t *testing.T) {
	p, _ := ByName("gcc")
	g := NewGenerator(p)
	a := Collect(g, 1000)
	g.Reset()
	b := Collect(g, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs after Reset", i)
		}
	}
}

func TestGeneratorMixMatchesProfile(t *testing.T) {
	for _, p := range Benchmarks() {
		recs := Collect(NewGenerator(p), 200_000)
		mix := MixOf(recs)
		// Serializing fraction must track the profile closely — it is
		// the key calibrated quantity for Fig 4.
		want := p.Mix.SerializingFrac()
		got := mix[isa.ClassTrap] + mix[isa.ClassMembar] + mix[isa.ClassAtomic]
		if math.Abs(got-want) > 0.2*want+0.0005 {
			t.Errorf("%s: serializing frac = %.4f, want %.4f", p.Name, got, want)
		}
		// Loads/stores should track too.
		w := p.Mix.classWeights()
		var total float64
		for _, x := range w {
			total += x
		}
		for _, c := range []isa.Class{isa.ClassLoad, isa.ClassStore, isa.ClassBranch} {
			wantC := w[c] / total
			if math.Abs(mix[c]-wantC) > 0.1*wantC+0.002 {
				t.Errorf("%s: class %v frac = %.4f, want %.4f", p.Name, c, mix[c], wantC)
			}
		}
	}
}

func TestGeneratorPaperSerializingFractions(t *testing.T) {
	// §VI-B1: bzip2 2%, ammp 1.7%, galgel 1% of total instructions.
	cases := map[string]float64{"bzip2": 0.020, "ammp": 0.017, "galgel": 0.010}
	for name, want := range cases {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		got := p.Mix.SerializingFrac()
		if math.Abs(got-want) > 0.0015 {
			t.Errorf("%s: serializing frac = %.4f, want %.4f", name, got, want)
		}
	}
	// All other benchmarks must be below 1%.
	for _, p := range Benchmarks() {
		if _, special := cases[p.Name]; special {
			continue
		}
		if f := p.Mix.SerializingFrac(); f >= 0.01 {
			t.Errorf("%s: serializing frac %.4f >= 1%%", p.Name, f)
		}
	}
}

func TestGeneratorRecordInvariants(t *testing.T) {
	for _, name := range []string{"bzip2", "galgel", "sha"} {
		p, _ := ByName(name)
		recs := Collect(NewGenerator(p), 20_000)
		for i, r := range recs {
			if r.Seq != uint64(i) {
				t.Fatalf("%s: Seq %d at index %d", name, r.Seq, i)
			}
			if r.IsMem() && r.Addr == 0 {
				t.Fatalf("%s: memory op without address: %v", name, r)
			}
			if !r.IsMem() && r.Addr != 0 {
				t.Fatalf("%s: non-memory op with address: %v", name, r)
			}
			if r.Dst == 0 || r.Src1 == 0 || r.Src2 == 0 {
				t.Fatalf("%s: operand uses r0 in dependence space: %v", name, r)
			}
			if r.Dst > 62 || r.Src1 > 62 || r.Src2 > 62 {
				t.Fatalf("%s: operand out of range: %v", name, r)
			}
			if r.Class == isa.ClassStore && r.Dst != -1 {
				t.Fatalf("%s: store with destination: %v", name, r)
			}
			if r.PC%4 != 0 {
				t.Fatalf("%s: misaligned PC: %v", name, r)
			}
		}
	}
}

func TestGeneratorBranchBias(t *testing.T) {
	// Branches must be mostly taken for high-bias profiles.
	p, _ := ByName("swim") // bias 0.97
	recs := Collect(NewGenerator(p), 100_000)
	var taken, total float64
	for _, r := range recs {
		if r.Class == isa.ClassBranch {
			total++
			if r.Taken {
				taken++
			}
		}
	}
	if total == 0 {
		t.Fatal("no branches generated")
	}
	if frac := taken / total; frac < 0.90 {
		t.Errorf("swim taken fraction = %.3f, want >= 0.90", frac)
	}
}

func TestGeneratorWorkingSetBound(t *testing.T) {
	p, _ := ByName("qsort")
	recs := Collect(NewGenerator(p), 50_000)
	for _, r := range recs {
		if !r.IsMem() {
			continue
		}
		if r.Addr >= 0x10_0000+p.WorkingSet && r.Addr < 0x8_0000 {
			t.Fatalf("address %#x outside working set/hot region", r.Addr)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	good := catalog[0]
	if err := good.Validate(); err != nil {
		t.Fatalf("catalog profile invalid: %v", err)
	}
	bad := good
	bad.RegPool = 1
	if bad.Validate() == nil {
		t.Error("RegPool=1 accepted")
	}
	bad = good
	bad.DepMean = 0.5
	if bad.Validate() == nil {
		t.Error("DepMean<1 accepted")
	}
	bad = good
	bad.WorkingSet = 0
	if bad.Validate() == nil {
		t.Error("zero working set accepted")
	}
	bad = good
	bad.MemStreamFrac = 0.9
	bad.MemHotFrac = 0.5
	if bad.Validate() == nil {
		t.Error("locality fractions > 1 accepted")
	}
	bad = good
	bad.BranchBias = 0.2
	if bad.Validate() == nil {
		t.Error("BranchBias<0.5 accepted")
	}
	bad = good
	bad.Mix = Mix{}
	if bad.Validate() == nil {
		t.Error("empty mix accepted")
	}
	bad = good
	bad.Mix.IntALU = -1
	if bad.Validate() == nil {
		t.Error("negative weight accepted")
	}
	bad = good
	bad.LoopMean = 1
	if bad.Validate() == nil {
		t.Error("LoopMean=1 accepted")
	}
	bad = good
	bad.StaticInsts = 4
	if bad.Validate() == nil {
		t.Error("StaticInsts=4 accepted")
	}
}

func TestAllCatalogProfilesValid(t *testing.T) {
	if len(catalog) < 20 {
		t.Fatalf("only %d profiles; want at least 20", len(catalog))
	}
	for _, p := range catalog {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Seed == 0 {
			t.Errorf("%s: zero seed", p.Name)
		}
	}
}

func TestSuiteQueries(t *testing.T) {
	if len(SPEC2000()) != 18 {
		t.Errorf("SPEC2000 count = %d, want 18", len(SPEC2000()))
	}
	if len(MiBench()) != 10 {
		t.Errorf("MiBench count = %d, want 10", len(MiBench()))
	}
	if len(Names()) != len(catalog) {
		t.Error("Names length mismatch")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a nonexistent profile")
	}
}

func TestBenchmarksSortedAndDistinctSeeds(t *testing.T) {
	bs := Benchmarks()
	seeds := make(map[uint64]string)
	for i, p := range bs {
		if i > 0 && bs[i-1].Suite == p.Suite && bs[i-1].Name >= p.Name {
			t.Errorf("not sorted at %s", p.Name)
		}
		if other, dup := seeds[p.Seed]; dup {
			t.Errorf("seed collision: %s and %s", p.Name, other)
		}
		seeds[p.Seed] = p.Name
	}
}

func TestCaptureFromEmulator(t *testing.T) {
	m := emu.New(asm.MustAssemble(`
		li r1, 0
		li r2, 10
		la r3, buf
	loop:
		sw r1, 0(r3)
		addi r3, r3, 4
		addi r1, r1, 1
		blt r1, r2, loop
		fence
		halt
	.data
	buf: .space 64
	`))
	recs, err := Capture(m, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != m.InstCount {
		t.Fatalf("captured %d records, machine committed %d", len(recs), m.InstCount)
	}
	var stores, branches, membars int
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("Seq %d at %d", r.Seq, i)
		}
		switch r.Class {
		case isa.ClassStore:
			stores++
			if r.Addr < asm.DataBase {
				t.Errorf("store address %#x below data base", r.Addr)
			}
		case isa.ClassBranch:
			branches++
		case isa.ClassMembar:
			membars++
		}
	}
	if stores != 10 || branches != 10 || membars != 1 {
		t.Errorf("stores=%d branches=%d membars=%d", stores, branches, membars)
	}
	// The last branch must be not-taken, the rest taken.
	var seen int
	for _, r := range recs {
		if r.Class == isa.ClassBranch {
			seen++
			want := seen < 10
			if r.Taken != want {
				t.Errorf("branch %d taken=%v, want %v", seen, r.Taken, want)
			}
		}
	}
}

func TestCaptureBudgetExhaustion(t *testing.T) {
	m := emu.New(asm.MustAssemble("loop: j loop"))
	recs, err := Capture(m, 50)
	if err != nil {
		t.Fatalf("budget exhaustion should not error: %v", err)
	}
	if len(recs) != 50 {
		t.Errorf("captured %d records, want 50", len(recs))
	}
}

func TestRNGProperties(t *testing.T) {
	r := newRNG(42)
	var sum float64
	const n = 10_000
	for i := 0; i < n; i++ {
		f := r.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float out of range: %g", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("rng mean = %.4f", mean)
	}
	// Zero seed must not produce a stuck generator.
	z := newRNG(0)
	if z.next() == z.next() {
		t.Error("zero-seeded rng is stuck")
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := newRNG(7)
	var sum float64
	const n = 20_000
	for i := 0; i < n; i++ {
		sum += float64(r.geometric(4.0, 1000))
	}
	if mean := sum / n; math.Abs(mean-4.0) > 0.15 {
		t.Errorf("geometric mean = %.3f, want ~4", mean)
	}
	// Truncation must be respected.
	for i := 0; i < 1000; i++ {
		if d := r.geometric(100, 5); d < 1 || d > 5 {
			t.Fatalf("geometric out of [1,5]: %d", d)
		}
	}
}

func TestMixSerializingFrac(t *testing.T) {
	m := Mix{IntALU: 0.98, Trap: 0.01, Membar: 0.005, Atomic: 0.005}
	if got := m.SerializingFrac(); math.Abs(got-0.02) > 1e-9 {
		t.Errorf("SerializingFrac = %g", got)
	}
	if (Mix{}).SerializingFrac() != 0 {
		t.Error("empty mix serializing frac != 0")
	}
}

func TestRecordPredicates(t *testing.T) {
	ld := Record{Class: isa.ClassLoad}
	st := Record{Class: isa.ClassStore}
	amo := Record{Class: isa.ClassAtomic}
	alu := Record{Class: isa.ClassIntALU}
	if !ld.IsLoad() || ld.IsStore() || !ld.IsMem() {
		t.Error("load predicates wrong")
	}
	if st.IsLoad() || !st.IsStore() || !st.IsMem() {
		t.Error("store predicates wrong")
	}
	if !amo.IsLoad() || !amo.IsStore() || !amo.Serializing() {
		t.Error("atomic predicates wrong")
	}
	if alu.IsMem() || alu.Serializing() {
		t.Error("alu predicates wrong")
	}
}

func TestSliceStreamSeek(t *testing.T) {
	s := NewSliceStream([]Record{{Seq: 0}, {Seq: 1}, {Seq: 2}})
	s.Seek(2)
	if r, ok := s.Next(); !ok || r.Seq != 2 {
		t.Errorf("Seek(2) then Next = %v, %v", r, ok)
	}
	s.Seek(99) // clamped to end
	if _, ok := s.Next(); ok {
		t.Error("Seek past end should exhaust the stream")
	}
	s.Seek(0)
	if r, _ := s.Next(); r.Seq != 0 {
		t.Error("Seek(0) did not rewind")
	}
}

func TestGeneratorSeek(t *testing.T) {
	p, _ := ByName("gzip")
	g := NewGenerator(p)
	want := Collect(g, 1000)
	g.Seek(500) // backward seek (currently at 1000)
	r, _ := g.Next()
	if r != want[500] {
		t.Errorf("backward Seek: got %v, want %v", r, want[500])
	}
	g.Seek(800) // forward seek
	r, _ = g.Next()
	if r != want[800] {
		t.Errorf("forward Seek: got %v, want %v", r, want[800])
	}
	g.Seek(801) // no-op seek to current position
	r, _ = g.Next()
	if r != want[801] {
		t.Errorf("no-op Seek: got %v, want %v", r, want[801])
	}
}

func TestLimitSeek(t *testing.T) {
	p, _ := ByName("gzip")
	l := NewLimit(NewGenerator(p), 100)
	Collect(l, 100)
	if _, ok := l.Next(); ok {
		t.Fatal("limit not exhausted")
	}
	l.Seek(50)
	got := Collect(l, 1000)
	if len(got) != 50 {
		t.Errorf("after Seek(50), %d records remain; want 50", len(got))
	}
	if got[0].Seq != 50 {
		t.Errorf("first record after Seek = %d", got[0].Seq)
	}
	// Limit over a non-seekable stream panics.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-seekable source")
		}
	}()
	NewLimit(nonSeekable{}, 10).Seek(1)
}

type nonSeekable struct{}

func (nonSeekable) Next() (Record, bool) { return Record{}, false }

func TestTraceSerializationRoundTrip(t *testing.T) {
	p, _ := ByName("bzip2")
	recs := Collect(NewGenerator(p), 5_000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %v != %v", i, got[i], recs[i])
		}
	}
}

func TestTraceSerializationErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []Record{{Seq: 1, Taken: true}}); err != nil {
		t.Fatal(err)
	}
	// Truncated body.
	b := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(b[:len(b)-3])); err == nil {
		t.Error("truncated body accepted")
	}
	// Corrupted version.
	b2 := append([]byte(nil), b...)
	b2[4] = 99
	if _, err := ReadTrace(bytes.NewReader(b2)); err == nil {
		t.Error("bad version accepted")
	}
	// Corrupted taken flag.
	b3 := append([]byte(nil), b...)
	b3[16+36] = 7
	if _, err := ReadTrace(bytes.NewReader(b3)); err == nil {
		t.Error("bad taken flag accepted")
	}
}

// Property: round trip is the identity for arbitrary records.
func TestQuickTraceRoundTrip(t *testing.T) {
	f := func(seq, pc, addr, data uint64, class uint8, dst, s1, s2 int8, taken bool) bool {
		in := Record{Seq: seq, PC: pc, Addr: addr, Data: data,
			Class: isa.Class(class % uint8(isa.NumClasses)), Dst: dst, Src1: s1, Src2: s2, Taken: taken}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, []Record{in}); err != nil {
			return false
		}
		out, err := ReadTrace(&buf)
		return err == nil && len(out) == 1 && out[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
