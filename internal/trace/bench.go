package trace

import "sort"

// Benchmark profiles standing in for the SPEC2000 and MiBench workloads
// of the paper's evaluation. Every profile is calibrated to the workload
// characteristics the paper reports or that are well known for the
// benchmark:
//
//   - serializing-instruction fractions from §VI-B1: bzip2 2.0%,
//     ammp 1.7%, galgel 1.0% of dynamic instructions; other benchmarks
//     well below 1%;
//   - galgel additionally saturates the ROB (long FP dependence chains),
//     giving it the worst overhead in Figs 4 and 5;
//   - mcf/equake/swim are memory-bound (working sets beyond the 4 MB L2),
//     MiBench kernels are small-footprint embedded codes.
//
// All profiles are deterministic: the same name always produces the same
// instruction stream.

// seedOf derives a stable per-benchmark seed from its name.
func seedOf(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a 64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return hash64(h)
}

func spec(p Profile) Profile    { p.Suite = "SPEC2000"; p.Seed = seedOf(p.Name); return p }
func mibench(p Profile) Profile { p.Suite = "MiBench"; p.Seed = seedOf(p.Name); return p }

const (
	kb = 1024
	mb = 1024 * kb
)

var catalog = []Profile{
	// ---- SPEC2000 integer ----
	spec(Profile{
		Name: "bzip2",
		Mix: Mix{IntALU: 0.44, IntMul: 0.01, Load: 0.24, Store: 0.12, Branch: 0.13,
			Jump: 0.04, Trap: 0.012, Membar: 0.005, Atomic: 0.003}, // 2.0% serializing
		RegPool: 24, DepMean: 4.5, WorkingSet: 4 * mb,
		MemStreamFrac: 0.6, MemHotFrac: 0.25, MemReuseFrac: 0.85, PtrChaseFrac: 0.15, ChainFrac: 0.15, BranchBias: 0.90, LoopMean: 24, StaticInsts: 6000,
	}),
	spec(Profile{
		Name: "gzip",
		Mix: Mix{IntALU: 0.46, IntMul: 0.01, Load: 0.25, Store: 0.11, Branch: 0.13,
			Jump: 0.037, Trap: 0.002, Membar: 0.001}, // 0.3% serializing
		RegPool: 26, DepMean: 5.0, WorkingSet: 2 * mb,
		MemStreamFrac: 0.65, MemHotFrac: 0.25, MemReuseFrac: 0.85, PtrChaseFrac: 0.15, ChainFrac: 0.15, BranchBias: 0.89, LoopMean: 20, StaticInsts: 4000,
	}),
	spec(Profile{
		Name: "gcc",
		Mix: Mix{IntALU: 0.40, IntMul: 0.005, Load: 0.26, Store: 0.12, Branch: 0.16,
			Jump: 0.051, Trap: 0.003, Membar: 0.001}, // 0.4% serializing
		RegPool: 28, DepMean: 5.5, WorkingSet: 8 * mb,
		MemStreamFrac: 0.35, MemHotFrac: 0.4, MemReuseFrac: 0.9, PtrChaseFrac: 0.3, ChainFrac: 0.05, BranchBias: 0.87, LoopMean: 12, StaticInsts: 30000,
	}),
	spec(Profile{
		Name: "mcf",
		Mix: Mix{IntALU: 0.33, Load: 0.36, Store: 0.09, Branch: 0.17,
			Jump: 0.049, Trap: 0.001}, // 0.1% serializing
		RegPool: 24, DepMean: 3.5, WorkingSet: 96 * mb,
		MemStreamFrac: 0.1, MemHotFrac: 0.15, MemReuseFrac: 0.5, PtrChaseFrac: 0.7, ChainFrac: 0.1, BranchBias: 0.85, LoopMean: 10, StaticInsts: 2500,
	}),
	spec(Profile{
		Name: "vpr",
		Mix: Mix{IntALU: 0.38, IntMul: 0.01, FPALU: 0.06, Load: 0.27, Store: 0.10,
			Branch: 0.13, Jump: 0.048, Trap: 0.002}, // 0.2% serializing
		RegPool: 24, DepMean: 4.5, WorkingSet: 8 * mb,
		MemStreamFrac: 0.3, MemHotFrac: 0.4, MemReuseFrac: 0.85, PtrChaseFrac: 0.25, ChainFrac: 0.1, BranchBias: 0.88, LoopMean: 16, StaticInsts: 8000,
	}),
	spec(Profile{
		Name: "parser",
		Mix: Mix{IntALU: 0.40, Load: 0.27, Store: 0.11, Branch: 0.15,
			Jump: 0.068, Trap: 0.002}, // 0.2% serializing
		RegPool: 26, DepMean: 4.0, WorkingSet: 16 * mb,
		MemStreamFrac: 0.25, MemHotFrac: 0.45, MemReuseFrac: 0.88, PtrChaseFrac: 0.35, ChainFrac: 0.05, BranchBias: 0.86, LoopMean: 14, StaticInsts: 10000,
	}),

	// ---- SPEC2000 floating point ----
	spec(Profile{
		Name: "ammp",
		Mix: Mix{IntALU: 0.20, FPALU: 0.25, FPMul: 0.14, FPDiv: 0.01, Load: 0.23,
			Store: 0.08, Branch: 0.06, Jump: 0.013, Trap: 0.010, Membar: 0.005, Atomic: 0.002}, // 1.7%
		RegPool: 12, DepMean: 2.8, WorkingSet: 16 * mb,
		MemStreamFrac: 0.45, MemHotFrac: 0.35, MemReuseFrac: 0.85, PtrChaseFrac: 0.1, ChainFrac: 0.18, BranchBias: 0.93, LoopMean: 40, StaticInsts: 5000,
	}),
	spec(Profile{
		Name: "galgel",
		Mix: Mix{IntALU: 0.14, FPALU: 0.28, FPMul: 0.18, FPDiv: 0.015, Load: 0.26,
			Store: 0.07, Branch: 0.035, Jump: 0.01, Trap: 0.006, Membar: 0.003, Atomic: 0.001}, // 1.0%
		RegPool: 8, DepMean: 2.2, WorkingSet: 8 * mb,
		MemStreamFrac: 0.7, MemHotFrac: 0.25, MemReuseFrac: 0.9, PtrChaseFrac: 0.05, ChainFrac: 0.25, BranchBias: 0.95, LoopMean: 64, StaticInsts: 3000,
	}),
	spec(Profile{
		Name: "equake",
		Mix: Mix{IntALU: 0.18, FPALU: 0.24, FPMul: 0.16, FPDiv: 0.005, Load: 0.26,
			Store: 0.09, Branch: 0.06, Jump: 0.012, Trap: 0.002, Membar: 0.001}, // 0.3%
		RegPool: 16, DepMean: 3.5, WorkingSet: 32 * mb,
		MemStreamFrac: 0.55, MemHotFrac: 0.25, MemReuseFrac: 0.75, PtrChaseFrac: 0.15, ChainFrac: 0.1, BranchBias: 0.94, LoopMean: 48, StaticInsts: 3000,
	}),
	spec(Profile{
		Name: "art",
		Mix: Mix{IntALU: 0.20, FPALU: 0.26, FPMul: 0.15, Load: 0.28, Store: 0.05,
			Branch: 0.05, Jump: 0.009, Trap: 0.001}, // 0.1%
		RegPool: 16, DepMean: 3.8, WorkingSet: 4 * mb,
		MemStreamFrac: 0.4, MemHotFrac: 0.4, MemReuseFrac: 0.85, PtrChaseFrac: 0.05, ChainFrac: 0.1, BranchBias: 0.95, LoopMean: 56, StaticInsts: 1500,
	}),
	spec(Profile{
		Name: "swim",
		Mix: Mix{IntALU: 0.12, FPALU: 0.30, FPMul: 0.20, FPDiv: 0.002, Load: 0.24,
			Store: 0.09, Branch: 0.03, Jump: 0.017, Trap: 0.001}, // 0.1%
		RegPool: 20, DepMean: 5.0, WorkingSet: 64 * mb,
		MemStreamFrac: 0.88, MemHotFrac: 0.08, MemReuseFrac: 0.8, PtrChaseFrac: 0.02, ChainFrac: 0.05, BranchBias: 0.97, LoopMean: 96, StaticInsts: 1200,
	}),
	spec(Profile{
		Name: "mesa",
		Mix: Mix{IntALU: 0.26, FPALU: 0.20, FPMul: 0.12, FPDiv: 0.006, Load: 0.23,
			Store: 0.10, Branch: 0.06, Jump: 0.019, Trap: 0.003, Membar: 0.002}, // 0.5%
		RegPool: 20, DepMean: 4.2, WorkingSet: 2 * mb,
		MemStreamFrac: 0.55, MemHotFrac: 0.3, MemReuseFrac: 0.85, PtrChaseFrac: 0.15, ChainFrac: 0.1, BranchBias: 0.92, LoopMean: 32, StaticInsts: 9000,
	}),

	spec(Profile{
		Name: "crafty",
		Mix: Mix{IntALU: 0.47, IntMul: 0.005, Load: 0.25, Store: 0.08, Branch: 0.14,
			Jump: 0.052, Trap: 0.002, Membar: 0.001}, // 0.3% serializing
		RegPool: 28, DepMean: 4.8, WorkingSet: 2 * mb,
		MemStreamFrac: 0.25, MemHotFrac: 0.5, MemReuseFrac: 0.92, PtrChaseFrac: 0.2,
		ChainFrac: 0.08, BranchBias: 0.85, LoopMean: 14, StaticInsts: 12000,
	}),
	spec(Profile{
		Name: "twolf",
		Mix: Mix{IntALU: 0.38, IntMul: 0.02, FPALU: 0.04, Load: 0.28, Store: 0.10,
			Branch: 0.13, Jump: 0.046, Trap: 0.003, Membar: 0.001}, // 0.4% serializing
		RegPool: 24, DepMean: 4.0, WorkingSet: 4 * mb,
		MemStreamFrac: 0.2, MemHotFrac: 0.35, MemReuseFrac: 0.8, PtrChaseFrac: 0.45,
		ChainFrac: 0.1, BranchBias: 0.84, LoopMean: 12, StaticInsts: 9000,
	}),
	spec(Profile{
		Name: "eon",
		Mix: Mix{IntALU: 0.27, FPALU: 0.16, FPMul: 0.1, FPDiv: 0.004, Load: 0.25,
			Store: 0.11, Branch: 0.07, Jump: 0.032, Trap: 0.003, Membar: 0.001}, // 0.4%
		RegPool: 22, DepMean: 4.2, WorkingSet: 1 * mb,
		MemStreamFrac: 0.45, MemHotFrac: 0.35, MemReuseFrac: 0.9, PtrChaseFrac: 0.15,
		ChainFrac: 0.12, BranchBias: 0.9, LoopMean: 26, StaticInsts: 15000,
	}),
	spec(Profile{
		Name: "perlbmk",
		Mix: Mix{IntALU: 0.41, Load: 0.27, Store: 0.12, Branch: 0.12,
			Jump: 0.071, Trap: 0.006, Membar: 0.002, Atomic: 0.001}, // 0.9% serializing
		RegPool: 26, DepMean: 4.5, WorkingSet: 12 * mb,
		MemStreamFrac: 0.25, MemHotFrac: 0.4, MemReuseFrac: 0.88, PtrChaseFrac: 0.35,
		ChainFrac: 0.06, BranchBias: 0.88, LoopMean: 10, StaticInsts: 25000,
	}),
	spec(Profile{
		Name: "apsi",
		Mix: Mix{IntALU: 0.16, FPALU: 0.27, FPMul: 0.17, FPDiv: 0.008, Load: 0.24,
			Store: 0.09, Branch: 0.05, Jump: 0.01, Trap: 0.002}, // 0.2%
		RegPool: 18, DepMean: 3.8, WorkingSet: 24 * mb,
		MemStreamFrac: 0.65, MemHotFrac: 0.15, MemReuseFrac: 0.8, PtrChaseFrac: 0.05,
		ChainFrac: 0.15, BranchBias: 0.95, LoopMean: 56, StaticInsts: 4000,
	}),
	spec(Profile{
		Name: "lucas",
		Mix: Mix{IntALU: 0.12, FPALU: 0.31, FPMul: 0.22, Load: 0.23, Store: 0.07,
			Branch: 0.025, Jump: 0.024, Trap: 0.001}, // 0.1%
		RegPool: 16, DepMean: 3.2, WorkingSet: 48 * mb,
		MemStreamFrac: 0.85, MemHotFrac: 0.05, MemReuseFrac: 0.7, PtrChaseFrac: 0.02,
		ChainFrac: 0.2, BranchBias: 0.97, LoopMean: 80, StaticInsts: 1500,
	}),

	// ---- MiBench ----
	mibench(Profile{
		Name: "qsort",
		Mix: Mix{IntALU: 0.40, Load: 0.26, Store: 0.13, Branch: 0.15,
			Jump: 0.058, Trap: 0.002}, // 0.2%
		RegPool: 22, DepMean: 4.0, WorkingSet: 256 * kb,
		MemStreamFrac: 0.3, MemHotFrac: 0.45, MemReuseFrac: 0.85, PtrChaseFrac: 0.35, ChainFrac: 0.1, BranchBias: 0.78, LoopMean: 10, StaticInsts: 800,
	}),
	mibench(Profile{
		Name: "dijkstra",
		Mix: Mix{IntALU: 0.37, Load: 0.30, Store: 0.08, Branch: 0.17,
			Jump: 0.079, Trap: 0.001}, // 0.1%
		RegPool: 22, DepMean: 3.8, WorkingSet: 512 * kb,
		MemStreamFrac: 0.25, MemHotFrac: 0.4, MemReuseFrac: 0.8, PtrChaseFrac: 0.5, ChainFrac: 0.2, BranchBias: 0.87, LoopMean: 12, StaticInsts: 600,
	}),
	mibench(Profile{
		Name: "sha",
		Mix: Mix{IntALU: 0.62, Load: 0.17, Store: 0.08, Branch: 0.09,
			Jump: 0.0395, Trap: 0.0005}, // 0.05%
		RegPool: 12, DepMean: 2.0, WorkingSet: 64 * kb,
		MemStreamFrac: 0.85, MemHotFrac: 0.13, MemReuseFrac: 0.9, PtrChaseFrac: 0.05, ChainFrac: 0.7, BranchBias: 0.96, LoopMean: 80, StaticInsts: 700,
	}),
	mibench(Profile{
		Name: "crc32",
		Mix: Mix{IntALU: 0.45, Load: 0.30, Store: 0.05, Branch: 0.14,
			Jump: 0.0595, Trap: 0.0005}, // 0.05%
		RegPool: 8, DepMean: 1.6, WorkingSet: 128 * kb,
		MemStreamFrac: 0.9, MemHotFrac: 0.08, MemReuseFrac: 0.9, PtrChaseFrac: 0.05, ChainFrac: 1.0, BranchBias: 0.97, LoopMean: 8, StaticInsts: 200,
	}),
	mibench(Profile{
		Name: "fft",
		Mix: Mix{IntALU: 0.20, FPALU: 0.25, FPMul: 0.18, FPDiv: 0.004, Load: 0.21,
			Store: 0.08, Branch: 0.05, Jump: 0.025, Trap: 0.001}, // 0.1%
		RegPool: 18, DepMean: 3.6, WorkingSet: 256 * kb,
		MemStreamFrac: 0.45, MemHotFrac: 0.35, MemReuseFrac: 0.85, PtrChaseFrac: 0.1, ChainFrac: 0.15, BranchBias: 0.93, LoopMean: 36, StaticInsts: 900,
	}),
	mibench(Profile{
		Name: "susan",
		Mix: Mix{IntALU: 0.43, IntMul: 0.03, Load: 0.27, Store: 0.09, Branch: 0.12,
			Jump: 0.0585, Trap: 0.0015}, // 0.15%
		RegPool: 24, DepMean: 4.5, WorkingSet: 512 * kb,
		MemStreamFrac: 0.7, MemHotFrac: 0.22, MemReuseFrac: 0.85, PtrChaseFrac: 0.1, ChainFrac: 0.1, BranchBias: 0.92, LoopMean: 30, StaticInsts: 2000,
	}),
	mibench(Profile{
		Name: "basicmath",
		Mix: Mix{IntALU: 0.24, FPALU: 0.22, FPMul: 0.14, FPDiv: 0.03, Load: 0.20,
			Store: 0.08, Branch: 0.06, Jump: 0.029, Trap: 0.001}, // 0.1%
		RegPool: 14, DepMean: 2.6, WorkingSet: 64 * kb,
		MemStreamFrac: 0.4, MemHotFrac: 0.55, MemReuseFrac: 0.9, PtrChaseFrac: 0.05, ChainFrac: 0.25, BranchBias: 0.91, LoopMean: 20, StaticInsts: 500,
	}),
	mibench(Profile{
		Name: "bitcount",
		Mix: Mix{IntALU: 0.68, Load: 0.12, Store: 0.04, Branch: 0.11,
			Jump: 0.0495, Trap: 0.0005}, // 0.05%
		RegPool: 10, DepMean: 2.1, WorkingSet: 32 * kb,
		MemStreamFrac: 0.6, MemHotFrac: 0.38, MemReuseFrac: 0.95, PtrChaseFrac: 0.02, ChainFrac: 0.55, BranchBias: 0.94, LoopMean: 16, StaticInsts: 300,
	}),
	mibench(Profile{
		Name: "jpeg",
		Mix: Mix{IntALU: 0.4, IntMul: 0.06, Load: 0.25, Store: 0.12, Branch: 0.1,
			Jump: 0.0685, Trap: 0.001, Membar: 0.0005}, // 0.15% serializing
		RegPool: 22, DepMean: 3.8, WorkingSet: 768 * kb,
		MemStreamFrac: 0.65, MemHotFrac: 0.25, MemReuseFrac: 0.85, PtrChaseFrac: 0.1,
		ChainFrac: 0.15, BranchBias: 0.91, LoopMean: 24, StaticInsts: 3500,
	}),
	mibench(Profile{
		Name: "gsm",
		Mix: Mix{IntALU: 0.48, IntMul: 0.08, Load: 0.2, Store: 0.09, Branch: 0.09,
			Jump: 0.0585, Trap: 0.001, Membar: 0.0005}, // 0.15% serializing
		RegPool: 16, DepMean: 2.8, WorkingSet: 96 * kb,
		MemStreamFrac: 0.75, MemHotFrac: 0.2, MemReuseFrac: 0.9, PtrChaseFrac: 0.05,
		ChainFrac: 0.6, BranchBias: 0.94, LoopMean: 40, StaticInsts: 1200,
	}),
}

// Reseeded returns a copy of the profile with its random stream
// perturbed by k (k=0 returns the canonical stream). Replicated
// experiments use it to measure run-to-run variation of the synthetic
// workloads.
func (p Profile) Reseeded(k uint64) Profile {
	if k != 0 {
		p.Seed = hash64(p.Seed ^ (k * 0x9e3779b97f4a7c15))
	}
	return p
}

// Benchmarks returns all benchmark profiles, sorted by suite then name.
func Benchmarks() []Profile {
	out := make([]Profile, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SPEC2000 returns the SPEC2000 profiles.
func SPEC2000() []Profile { return suite("SPEC2000") }

// MiBench returns the MiBench profiles.
func MiBench() []Profile { return suite("MiBench") }

func suite(s string) []Profile {
	var out []Profile
	for _, p := range Benchmarks() {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}

// ByName returns the named profile; ok is false if it does not exist.
func ByName(name string) (Profile, bool) {
	for _, p := range catalog {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the names of all profiles in Benchmarks() order.
func Names() []string {
	bs := Benchmarks()
	out := make([]string, len(bs))
	for i, p := range bs {
		out[i] = p.Name
	}
	return out
}
