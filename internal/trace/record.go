// Package trace defines the dynamic instruction stream consumed by the
// timing model, and the workload generators that produce it.
//
// Two producers exist:
//
//   - Generator: a deterministic synthetic workload generator driven by
//     per-benchmark Profiles (instruction mix, dependence distances,
//     memory locality, branch bias, serializing-instruction fraction).
//     These stand in for the SPEC2000 / MiBench binaries of the paper.
//   - Capture: an adapter that records the commit stream of the
//     functional emulator (internal/emu) running a real program.
package trace

import (
	"fmt"

	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/isa"
)

// Record is one dynamic instruction.
//
// Register operands are in the flat dependence space of isa.DepReg:
// integer r1..r31 are 1..31, FP f0..f31 are 32..63, and -1 means unused.
type Record struct {
	Seq   uint64
	PC    uint64
	Addr  uint64 // effective address (memory ops)
	Data  uint64 // result / stored value; folded into fingerprints
	Class isa.Class
	Dst   int8
	Src1  int8
	Src2  int8
	Taken bool // branch outcome (always true for jumps/traps)
}

// Serializing reports whether the instruction is serializing.
func (r Record) Serializing() bool { return r.Class.Serializing() }

// IsMem reports whether the instruction accesses data memory.
func (r Record) IsMem() bool { return r.Class.MemoryOp() }

// IsStore reports whether the instruction writes data memory.
func (r Record) IsStore() bool { return r.Class == isa.ClassStore || r.Class == isa.ClassAtomic }

// IsLoad reports whether the instruction reads data memory.
func (r Record) IsLoad() bool { return r.Class == isa.ClassLoad || r.Class == isa.ClassAtomic }

// String renders the record for debugging.
func (r Record) String() string {
	return fmt.Sprintf("#%d pc=%#x %v dst=%d src=%d,%d addr=%#x taken=%v",
		r.Seq, r.PC, r.Class, r.Dst, r.Src1, r.Src2, r.Addr, r.Taken)
}

// Stream is a source of dynamic instructions. Next returns the next
// record and true, or a zero Record and false at end of stream.
type Stream interface {
	Next() (Record, bool)
}

// Resettable is a Stream that can be rewound and replayed identically.
// All workload generators are Resettable so that every architecture
// configuration sees exactly the same instruction stream.
type Resettable interface {
	Stream
	Reset()
}

// Seekable is a Stream that can be repositioned so that the next record
// returned is the one with the given sequence number. UnSync recovery
// uses it to resume the erroneous core from the error-free core's
// position (always-forward execution may re-trace or skip instructions
// depending on which core was ahead).
type Seekable interface {
	Stream
	Seek(seq uint64)
}

// SliceStream replays a fixed slice of records.
type SliceStream struct {
	recs []Record
	pos  int
}

// NewSliceStream returns a Resettable stream over recs.
func NewSliceStream(recs []Record) *SliceStream { return &SliceStream{recs: recs} }

// Next implements Stream.
func (s *SliceStream) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Reset implements Resettable.
func (s *SliceStream) Reset() { s.pos = 0 }

// Seek implements Seekable.
func (s *SliceStream) Seek(seq uint64) {
	if seq > uint64(len(s.recs)) {
		seq = uint64(len(s.recs))
	}
	s.pos = int(seq)
}

// Len returns the total number of records in the stream.
func (s *SliceStream) Len() int { return len(s.recs) }

// Limit wraps a stream, truncating it after n records.
type Limit struct {
	src  Stream
	n    uint64
	seen uint64
}

// NewLimit truncates src after n records.
func NewLimit(src Stream, n uint64) *Limit { return &Limit{src: src, n: n} }

// Next implements Stream.
func (l *Limit) Next() (Record, bool) {
	if l.seen >= l.n {
		return Record{}, false
	}
	r, ok := l.src.Next()
	if ok {
		l.seen++
	}
	return r, ok
}

// Reset implements Resettable if the underlying stream does.
func (l *Limit) Reset() {
	if r, ok := l.src.(Resettable); ok {
		r.Reset()
	}
	l.seen = 0
}

// Seek implements Seekable if the underlying stream does; otherwise it
// panics (recovery requires a seekable workload).
func (l *Limit) Seek(seq uint64) {
	s, ok := l.src.(Seekable)
	if !ok {
		//unsync:allow-panic invariant: recovery schemes only Seek streams built from Seekable sources
		panic("trace: Limit over a non-seekable stream cannot Seek")
	}
	s.Seek(seq)
	l.seen = seq
}

// Collect drains up to n records from a stream into a slice.
func Collect(s Stream, n int) []Record {
	out := make([]Record, 0, n)
	for len(out) < n {
		r, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// Capture runs the machine for up to maxSteps instructions and returns
// the commit stream as trace records. The machine is advanced in place.
func Capture(m *emu.Machine, maxSteps uint64) ([]Record, error) {
	recs := make([]Record, 0, 1024)
	prev := m.OnCommit
	m.OnCommit = func(c emu.Commit) {
		if prev != nil {
			prev(c)
		}
		recs = append(recs, FromCommit(c))
	}
	defer func() { m.OnCommit = prev }()
	err := m.Run(maxSteps)
	if err == emu.ErrMaxSteps {
		err = nil
	}
	return recs, err
}

// FromCommit converts an emulator commit record into a trace record.
func FromCommit(c emu.Commit) Record {
	in := c.Inst
	s1, s2 := in.SrcRegs()
	return Record{
		Seq:   c.Seq,
		PC:    c.PC,
		Addr:  c.Addr,
		Data:  c.Data,
		Class: in.Class(),
		Dst:   int8(in.DestReg()),
		Src1:  int8(s1),
		Src2:  int8(s2),
		Taken: c.Taken,
	}
}

// MixOf computes the empirical class mix of a record slice, as fractions.
func MixOf(recs []Record) map[isa.Class]float64 {
	counts := make(map[isa.Class]uint64)
	for _, r := range recs {
		counts[r.Class]++
	}
	out := make(map[isa.Class]float64, len(counts))
	for c, n := range counts {
		out[c] = float64(n) / float64(len(recs))
	}
	return out
}
