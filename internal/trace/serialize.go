package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/cmlasu/unsync/internal/isa"
)

// Binary trace serialization: capture a workload once (e.g. from the
// functional emulator) and replay it byte-identically later or on
// another machine. The format is a fixed little-endian record layout
// behind a small header.

// traceMagic identifies the file format; traceVersion its revision.
const (
	traceMagic   = 0x55_4e_53_59 // "UNSY"
	traceVersion = 1
	recordBytes  = 8 + 8 + 8 + 8 + 1 + 1 + 1 + 1 + 1 // Seq..Taken, packed
)

// ErrBadTrace reports a malformed serialized trace.
var ErrBadTrace = errors.New("trace: malformed trace file")

// putRecord packs one record into buf, which must hold at least
// recordBytes. The layout is the on-disk trace format; the in-memory
// replay cache (Materialized) reuses it as its compact row encoding.
func putRecord(buf []byte, r Record) {
	binary.LittleEndian.PutUint64(buf[0:], r.Seq)
	binary.LittleEndian.PutUint64(buf[8:], r.PC)
	binary.LittleEndian.PutUint64(buf[16:], r.Addr)
	binary.LittleEndian.PutUint64(buf[24:], r.Data)
	buf[32] = uint8(r.Class)
	buf[33] = uint8(r.Dst)
	buf[34] = uint8(r.Src1)
	buf[35] = uint8(r.Src2)
	if r.Taken {
		buf[36] = 1
	} else {
		buf[36] = 0
	}
}

// getRecord unpacks one record from buf (at least recordBytes long).
// It performs no validation; ReadTrace validates untrusted input.
func getRecord(buf []byte) Record {
	return Record{
		Seq:   binary.LittleEndian.Uint64(buf[0:]),
		PC:    binary.LittleEndian.Uint64(buf[8:]),
		Addr:  binary.LittleEndian.Uint64(buf[16:]),
		Data:  binary.LittleEndian.Uint64(buf[24:]),
		Class: isa.Class(buf[32]),
		Dst:   int8(buf[33]),
		Src1:  int8(buf[34]),
		Src2:  int8(buf[35]),
		Taken: buf[36] == 1,
	}
}

// WriteTrace serializes records to w.
func WriteTrace(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [recordBytes]byte
	for _, r := range recs {
		putRecord(buf[:], r)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes records from r.
func ReadTrace(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadTrace, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	const maxRecords = 1 << 30
	if n > maxRecords {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadTrace, n)
	}
	recs := make([]Record, 0, n)
	var buf [recordBytes]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadTrace, i, err)
		}
		if buf[36] > 1 {
			return nil, fmt.Errorf("%w: record %d: bad taken flag", ErrBadTrace, i)
		}
		recs = append(recs, getRecord(buf[:]))
	}
	return recs, nil
}
