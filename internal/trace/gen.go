package trace

import (
	"fmt"

	"github.com/cmlasu/unsync/internal/isa"
)

// Mix is an instruction-class mixture. Weights need not sum to one; the
// generator normalizes them. Classes with zero weight never occur.
type Mix struct {
	IntALU float64
	IntMul float64
	IntDiv float64
	FPALU  float64
	FPMul  float64
	FPDiv  float64
	Load   float64
	Store  float64
	Branch float64
	Jump   float64
	Trap   float64
	Membar float64
	Atomic float64
}

// classWeights returns the mixture as an indexed slice.
func (m Mix) classWeights() [isa.NumClasses]float64 {
	var w [isa.NumClasses]float64
	w[isa.ClassIntALU] = m.IntALU
	w[isa.ClassIntMul] = m.IntMul
	w[isa.ClassIntDiv] = m.IntDiv
	w[isa.ClassFPALU] = m.FPALU
	w[isa.ClassFPMul] = m.FPMul
	w[isa.ClassFPDiv] = m.FPDiv
	w[isa.ClassLoad] = m.Load
	w[isa.ClassStore] = m.Store
	w[isa.ClassBranch] = m.Branch
	w[isa.ClassJump] = m.Jump
	w[isa.ClassTrap] = m.Trap
	w[isa.ClassMembar] = m.Membar
	w[isa.ClassAtomic] = m.Atomic
	return w
}

// SerializingFrac returns the fraction of serializing instructions in
// the normalized mix.
func (m Mix) SerializingFrac() float64 {
	w := m.classWeights()
	var total, ser float64
	for c, x := range w {
		total += x
		if isa.Class(c).Serializing() {
			ser += x
		}
	}
	if total == 0 {
		return 0
	}
	return ser / total
}

// Profile describes a synthetic benchmark: everything the timing model's
// behaviour depends on, reduced to a handful of calibrated knobs.
type Profile struct {
	Name  string
	Suite string // "SPEC2000" or "MiBench"

	Mix Mix

	// RegPool is the number of distinct destination registers in
	// flight; together with DepMean it sets the available ILP.
	RegPool int
	// DepMean is the mean register dependence distance in instructions
	// (geometrically distributed). Small values create long chains.
	DepMean float64

	// WorkingSet is the data footprint in bytes; random accesses fall
	// uniformly inside it.
	WorkingSet uint64
	// MemStreamFrac is the fraction of memory accesses that stream
	// sequentially (high spatial locality); MemHotFrac is the fraction
	// that hit a small hot region (stack-like, always cached). The
	// remainder are uniform over the working set.
	MemStreamFrac float64
	MemHotFrac    float64

	// MemReuseFrac is the probability that a non-stream, non-hot access
	// revisits a recently used address instead of touching a fresh one
	// (temporal locality of the "random" access component).
	MemReuseFrac float64

	// PtrChaseFrac is the fraction of memory operations whose address
	// depends on a recent producer register (pointer chasing — the
	// producer may itself be an in-flight load, serializing misses).
	// The remainder compute their address from long-ready induction
	// variables, exposing memory-level parallelism.
	PtrChaseFrac float64

	// ChainFrac is the fraction of ALU/FP operations that thread a
	// serial accumulator register (read-modify-write on one value),
	// like the chaining variable of a hash round or the running CRC of
	// a checksum loop. It bounds the achievable ILP at roughly
	// 1/(ChainFrac x latency).
	ChainFrac float64

	// BranchBias is the mean per-site probability of the dominant
	// branch direction (0.5 = unpredictable, 1.0 = perfectly biased).
	BranchBias float64
	// LoopMean is the mean loop-body length in instructions for
	// backward branches.
	LoopMean int
	// StaticInsts is the static code footprint in instructions.
	StaticInsts int

	// Seed selects the deterministic random stream. Two generators
	// with the same profile produce bit-identical streams.
	Seed uint64
}

// Validate checks profile invariants.
func (p *Profile) Validate() error {
	if p.RegPool < 2 || p.RegPool > 62 {
		return fmt.Errorf("trace: profile %q: RegPool %d out of [2,62]", p.Name, p.RegPool)
	}
	if p.DepMean < 1 {
		return fmt.Errorf("trace: profile %q: DepMean %g < 1", p.Name, p.DepMean)
	}
	if p.WorkingSet == 0 {
		return fmt.Errorf("trace: profile %q: zero working set", p.Name)
	}
	if p.MemStreamFrac < 0 || p.MemHotFrac < 0 || p.MemStreamFrac+p.MemHotFrac > 1 {
		return fmt.Errorf("trace: profile %q: bad memory locality fractions", p.Name)
	}
	if p.MemReuseFrac < 0 || p.MemReuseFrac > 1 {
		return fmt.Errorf("trace: profile %q: MemReuseFrac out of [0,1]", p.Name)
	}
	if p.PtrChaseFrac < 0 || p.PtrChaseFrac > 1 {
		return fmt.Errorf("trace: profile %q: PtrChaseFrac out of [0,1]", p.Name)
	}
	if p.ChainFrac < 0 || p.ChainFrac > 1 {
		return fmt.Errorf("trace: profile %q: ChainFrac out of [0,1]", p.Name)
	}
	if p.BranchBias < 0.5 || p.BranchBias > 1 {
		return fmt.Errorf("trace: profile %q: BranchBias %g out of [0.5,1]", p.Name, p.BranchBias)
	}
	if p.LoopMean < 2 {
		return fmt.Errorf("trace: profile %q: LoopMean %d < 2", p.Name, p.LoopMean)
	}
	if p.StaticInsts < 16 {
		return fmt.Errorf("trace: profile %q: StaticInsts %d < 16", p.Name, p.StaticInsts)
	}
	var sum float64
	for _, w := range p.Mix.classWeights() {
		if w < 0 {
			return fmt.Errorf("trace: profile %q: negative mix weight", p.Name)
		}
		sum += w
	}
	if sum == 0 {
		return fmt.Errorf("trace: profile %q: empty mix", p.Name)
	}
	return nil
}

// Generator produces an endless deterministic instruction stream from a
// profile. It implements Resettable.
type Generator struct {
	p   Profile
	cum [isa.NumClasses]float64 // cumulative normalized mix

	r         rng
	seq       uint64
	pc        uint64
	streamPos uint64

	heapBase uint64
	hotBase  uint64

	// reuse ring: recent non-stream addresses, for temporal locality.
	reuse    [reuseRing]uint64
	reuseLen int
	reusePos int

	// writer ring: destination registers of recent register-writing
	// instructions, so dependence distances are measured in actual
	// producers (stores/branches write nothing and must not dilute the
	// dependence structure).
	writers [writerRing]int8
	wLen    int
	wPos    int
}

const reuseRing = 512
const writerRing = 64

// chainReg is the flat dependence register used as the serial
// accumulator of ChainFrac operations (outside the round-robin pool).
const chainReg = 62

// NewGenerator builds a generator for the profile. It panics if the
// profile is invalid (profiles are static data; an invalid one is a
// programming error).
func NewGenerator(p Profile) *Generator {
	if err := p.Validate(); err != nil {
		//unsync:allow-panic built-in profiles are static calibrated data; user profiles are validated at the cmp API boundary
		panic(err)
	}
	g := &Generator{p: p, heapBase: 0x10_0000, hotBase: 0x8_0000}
	w := p.Mix.classWeights()
	var total float64
	for _, x := range w {
		total += x
	}
	acc := 0.0
	for c, x := range w {
		acc += x / total
		g.cum[c] = acc
	}
	g.Reset()
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// Reset rewinds the stream to the beginning.
func (g *Generator) Reset() {
	g.r = newRNG(g.p.Seed ^ hash64(uint64(len(g.p.Name))*0x5bd1e995+uint64(g.p.StaticInsts)))
	g.seq = 0
	g.pc = 0x4000
	g.streamPos = 0
	g.reuseLen = 0
	g.reusePos = 0
	g.wLen = 0
	g.wPos = 0
}

// pickClass samples the instruction class from the mixture.
func (g *Generator) pickClass() isa.Class {
	x := g.r.float()
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if g.cum[c] > 0 && x < g.cum[c] {
			return c
		}
	}
	return isa.ClassIntALU
}

// depSrc returns the destination register of the d-th most recent
// register-writing instruction, d geometrically distributed around
// DepMean.
func (g *Generator) depSrc() int8 {
	if g.wLen == 0 {
		return -1
	}
	max := g.p.RegPool - 1
	if max > g.wLen {
		max = g.wLen
	}
	d := g.r.geometric(g.p.DepMean, max)
	return g.writers[(g.wPos-(d-1)+writerRing)%writerRing]
}

// pushWriter records a destination register in the writer ring.
func (g *Generator) pushWriter(dst int8) {
	g.wPos = (g.wPos + 1) % writerRing
	g.writers[g.wPos] = dst
	if g.wLen < writerRing {
		g.wLen++
	}
}

// dstOf maps a dynamic instruction number to its destination register in
// the flat dependence space (1..62, avoiding r0).
func (g *Generator) dstOf(seq uint64) int8 {
	return int8(1 + seq%uint64(g.p.RegPool))
}

// memAddr produces the next data address according to the locality mix.
func (g *Generator) memAddr() uint64 {
	x := g.r.float()
	switch {
	case x < g.p.MemStreamFrac:
		a := g.heapBase + (g.streamPos*8)%g.p.WorkingSet
		g.streamPos++
		return a
	case x < g.p.MemStreamFrac+g.p.MemHotFrac:
		return g.hotBase + uint64(g.r.intn(256))&^7
	default:
		if g.reuseLen > 0 && g.r.float() < g.p.MemReuseFrac {
			return g.reuse[g.r.intn(g.reuseLen)]
		}
		a := g.heapBase + (g.r.next()%g.p.WorkingSet)&^7
		g.reuse[g.reusePos] = a
		g.reusePos = (g.reusePos + 1) % reuseRing
		if g.reuseLen < reuseRing {
			g.reuseLen++
		}
		return a
	}
}

// memAddrSrc returns the address-base source register for a memory op:
// a recent producer when pointer-chasing, otherwise a long-ready value
// (loop induction variable), exposing memory-level parallelism.
func (g *Generator) memAddrSrc() int8 {
	if g.r.float() < g.p.PtrChaseFrac {
		return g.depSrc()
	}
	return -1
}

// siteBias returns the stable taken-probability of a static branch site.
func (g *Generator) siteBias(site uint64) float64 {
	h := hash64(site ^ g.p.Seed)
	// Per-site bias is spread around the profile mean: most sites are
	// more biased than the mean, a few are coin flips, which is how
	// real branch populations look.
	u := float64(h>>11) / (1 << 53)
	bias := g.p.BranchBias + (1-g.p.BranchBias)*u*0.8
	if bias > 0.995 {
		bias = 0.995
	}
	return bias
}

// siteLoop returns the stable backward distance of a branch site.
func (g *Generator) siteLoop(site uint64) uint64 {
	h := hash64(site*0x9e37 + g.p.Seed)
	n := 2 + h%uint64(2*g.p.LoopMean)
	return n
}

// Seek implements Seekable: Reset then regenerate-and-discard, so the
// next record has the given sequence number. O(seq), but recoveries are
// rare events.
func (g *Generator) Seek(seq uint64) {
	if seq == g.seq {
		return
	}
	if seq < g.seq {
		g.Reset()
	}
	for g.seq < seq {
		g.Next()
	}
}

// Next implements Stream. The stream is endless; ok is always true.
func (g *Generator) Next() (Record, bool) {
	c := g.pickClass()
	rec := Record{Seq: g.seq, PC: g.pc, Class: c}

	switch c {
	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassIntDiv,
		isa.ClassFPALU, isa.ClassFPMul, isa.ClassFPDiv:
		if g.r.float() < g.p.ChainFrac {
			// Serial accumulator: read-modify-write the chain register.
			rec.Dst = chainReg
			rec.Src1 = chainReg
			rec.Src2 = g.depSrc()
			rec.Data = g.r.next()
			break
		}
		rec.Dst = g.dstOf(g.seq)
		rec.Src1 = g.depSrc()
		if g.r.float() < 0.7 {
			rec.Src2 = g.depSrc()
		} else {
			rec.Src2 = -1
		}
		rec.Data = g.r.next()
	case isa.ClassLoad:
		rec.Dst = g.dstOf(g.seq)
		rec.Src1 = g.memAddrSrc()
		rec.Src2 = -1
		rec.Addr = g.memAddr()
		rec.Data = g.r.next()
	case isa.ClassStore:
		rec.Dst = -1
		rec.Src1 = g.memAddrSrc() // address
		rec.Src2 = g.depSrc()     // data
		rec.Addr = g.memAddr()
		rec.Data = g.r.next()
	case isa.ClassAtomic:
		rec.Dst = g.dstOf(g.seq)
		rec.Src1 = g.memAddrSrc()
		rec.Src2 = g.depSrc()
		rec.Addr = g.memAddr()
		rec.Data = g.r.next()
		rec.Taken = true
	case isa.ClassBranch:
		rec.Dst = -1
		rec.Src1 = g.depSrc()
		rec.Src2 = g.depSrc()
		rec.Taken = g.r.float() < g.siteBias(g.pc)
	case isa.ClassJump:
		rec.Dst = -1
		rec.Src1 = -1
		rec.Src2 = -1
		rec.Taken = true
	case isa.ClassTrap, isa.ClassMembar:
		rec.Dst = -1
		rec.Src1 = -1
		rec.Src2 = -1
		rec.Taken = c == isa.ClassTrap
	default:
		rec.Dst = -1
		rec.Src1 = -1
		rec.Src2 = -1
	}

	if rec.Dst > 0 {
		g.pushWriter(rec.Dst)
	}

	// Advance the synthetic PC walk.
	limit := uint64(g.p.StaticInsts) * 4
	switch {
	case c == isa.ClassBranch && rec.Taken:
		back := g.siteLoop(g.pc) * 4
		if back > g.pc-0x4000 {
			back = g.pc - 0x4000
		}
		g.pc -= back
	case c == isa.ClassJump:
		g.pc = 0x4000 + (hash64(g.pc^g.p.Seed^0x6a09e667)%limit)&^3
	default:
		g.pc += 4
		if g.pc >= 0x4000+limit {
			g.pc = 0x4000
		}
	}

	g.seq++
	return rec, true
}
