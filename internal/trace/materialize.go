package trace

// Trace materialization: generate a profile's deterministic stream once
// into a compact packed buffer (the serialize.go record layout,
// recordBytes per row) and replay it any number of times through
// independent cursors. Because the generator is bit-deterministic, a
// replayed stream is indistinguishable from a fresh generation — so
// every sweep point and every scheme of an experiment can share one
// materialization instead of re-synthesizing the workload.

// Materialized is a generate-once, read-only trace of exactly n records
// of a profile. It is safe to share across goroutines: nothing mutates
// the buffer after Materialize returns, and each Stream() cursor holds
// only its own position.
type Materialized struct {
	prof Profile
	n    uint64
	buf  []byte // n packed rows of recordBytes each
}

// Materialize generates the first n records of the profile's stream
// into a packed buffer. Like NewGenerator it panics on an invalid
// profile (profiles are validated at the public API boundary).
func Materialize(p Profile, n uint64) *Materialized {
	g := NewGenerator(p)
	m := &Materialized{prof: p, n: n, buf: make([]byte, int(n)*recordBytes)}
	off := 0
	for i := uint64(0); i < n; i++ {
		r, _ := g.Next() // the generator is endless
		putRecord(m.buf[off:off+recordBytes], r)
		off += recordBytes
	}
	return m
}

// Profile returns the profile the trace was generated from.
func (m *Materialized) Profile() Profile { return m.prof }

// Len returns the number of records.
func (m *Materialized) Len() uint64 { return m.n }

// SizeBytes returns the packed buffer size, the unit of the replay
// cache's byte budget.
func (m *Materialized) SizeBytes() int { return len(m.buf) }

// Record decodes the i-th record.
func (m *Materialized) Record(i uint64) Record {
	return getRecord(m.buf[i*recordBytes:])
}

// Stream returns a fresh independent cursor over the trace. Cursors
// are cheap; a redundant pair takes two over the same materialization.
func (m *Materialized) Stream() *ReplayStream { return &ReplayStream{m: m} }

// ReplayStream is a Resettable, Seekable cursor over a Materialized
// trace. Generated records have Seq equal to their stream position, so
// Seek positions the cursor exactly like Generator.Seek — but in O(1).
type ReplayStream struct {
	m   *Materialized
	pos uint64
}

// Next implements Stream.
func (s *ReplayStream) Next() (Record, bool) {
	if s.pos >= s.m.n {
		return Record{}, false
	}
	r := s.m.Record(s.pos)
	s.pos++
	return r, true
}

// Reset implements Resettable.
func (s *ReplayStream) Reset() { s.pos = 0 }

// Seek implements Seekable: the next record returned is the one with
// the given sequence number (clamped to end of trace).
func (s *ReplayStream) Seek(seq uint64) {
	if seq > s.m.n {
		seq = s.m.n
	}
	s.pos = seq
}

// Len returns the total number of records in the stream.
func (s *ReplayStream) Len() uint64 { return s.m.n }
