package trace

import "sync"

// Cache is a keyed, mutex-guarded store of materialized traces with a
// bounded byte budget. The key is the full (Profile, length) pair —
// Profile embeds the seed, so two entries collide only when their
// record streams are bit-identical.
//
// Sharing discipline: Get returns a *Materialized that is immutable
// and safe to share; callers take per-run cursors with Stream().
// Eviction only drops the cache's reference — holders of an evicted
// materialization keep using it, and the garbage collector reclaims it
// when the last run finishes.
//
// Generation happens outside the cache mutex (a per-entry sync.Once),
// so parallel sweep workers asking for different benchmarks
// materialize concurrently, while workers asking for the same
// benchmark block until the first finishes and then share its buffer.
type Cache struct {
	mu        sync.Mutex
	budget    int64
	used      int64
	tick      uint64
	entries   map[cacheKey]*cacheEntry
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheKey struct {
	prof Profile
	n    uint64
}

type cacheEntry struct {
	once    sync.Once
	mat     *Materialized
	lastUse uint64 // guarded by Cache.mu
}

// DefaultCacheBudget bounds a shared experiment cache at 256 MB: a
// full-window 250k-instruction trace packs to ~9.3 MB, so the whole
// 28-benchmark catalog fits with room to spare, while quick-window
// sweeps use a tiny fraction.
const DefaultCacheBudget int64 = 256 << 20

// NewCache returns a cache bounded to budgetBytes of packed trace data.
// A non-positive budget disables retention: every Get regenerates.
func NewCache(budgetBytes int64) *Cache {
	return &Cache{budget: budgetBytes, entries: make(map[cacheKey]*cacheEntry)}
}

// Get returns the materialized first-n-records trace of the profile,
// generating it exactly once per key while it stays resident. The
// result is never nil and always complete.
func (c *Cache) Get(p Profile, n uint64) *Materialized {
	k := cacheKey{prof: p, n: n}
	c.mu.Lock()
	c.tick++
	e, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &cacheEntry{}
		c.entries[k] = e
	}
	e.lastUse = c.tick
	c.mu.Unlock()

	e.once.Do(func() {
		e.mat = Materialize(p, n)
		c.mu.Lock()
		c.used += int64(e.mat.SizeBytes())
		c.enforceBudget(k)
		c.mu.Unlock()
	})
	return e.mat
}

// enforceBudget evicts least-recently-used completed entries until the
// budget holds, called with c.mu held. just is the key that triggered
// the pass; it is evicted only as a last resort (when it alone exceeds
// the budget, it is returned to its caller but not retained).
func (c *Cache) enforceBudget(just cacheKey) {
	for c.used > c.budget {
		var victim cacheKey
		var victimEntry *cacheEntry
		found := false
		for k, e := range c.entries {
			if e.mat == nil || k == just {
				continue // mid-generation, or the entry being inserted
			}
			if !found || e.lastUse < victimEntry.lastUse {
				victim, victimEntry, found = k, e, true
			}
		}
		if !found {
			// Only the just-inserted entry is evictable. Drop it too if
			// it alone busts the budget; its caller still holds it.
			if e, ok := c.entries[just]; ok && e.mat != nil && int64(e.mat.SizeBytes()) > c.budget {
				c.used -= int64(e.mat.SizeBytes())
				delete(c.entries, just)
				c.evictions++
			}
			return
		}
		c.used -= int64(victimEntry.mat.SizeBytes())
		delete(c.entries, victim)
		c.evictions++
	}
}

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	Entries   int
	UsedBytes int64
	Budget    int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats returns a consistent snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		UsedBytes: c.used,
		Budget:    c.budget,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
