package trace

import (
	"reflect"
	"sync"
	"testing"
)

func testProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, ok := ByName(name)
	if !ok {
		t.Fatalf("no %q profile", name)
	}
	return p
}

// TestMaterializeMatchesGenerator proves a materialized buffer replays
// bit-identically to a fresh generator, including after Reset and Seek.
func TestMaterializeMatchesGenerator(t *testing.T) {
	p := testProfile(t, "gzip")
	const n = 5_000
	m := Materialize(p, n)
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	if want := int(n) * recordBytes; m.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d, want %d", m.SizeBytes(), want)
	}

	fresh := NewLimit(NewGenerator(p), n)
	s := m.Stream()
	var count uint64
	for {
		want, okW := fresh.Next()
		got, okG := s.Next()
		if okW != okG {
			t.Fatalf("stream length mismatch at %d: fresh ok=%v replay ok=%v", count, okW, okG)
		}
		if !okW {
			break
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("record %d differs:\nfresh:  %+v\nreplay: %+v", count, want, got)
		}
		count++
	}
	if count != n {
		t.Fatalf("replayed %d records, want %d", count, n)
	}

	// Reset restarts from record 0.
	s.Reset()
	r0, ok := s.Next()
	if !ok || r0.Seq != 0 {
		t.Fatalf("after Reset: Next = %+v, %v; want Seq 0", r0, ok)
	}

	// Seek lands on the record whose Seq equals the position.
	s.Seek(1234)
	r, ok := s.Next()
	if !ok || r.Seq != 1234 {
		t.Fatalf("after Seek(1234): Next = %+v, %v; want Seq 1234", r, ok)
	}
}

// TestCacheHitSharesMaterialization proves the cache generates once per
// key and hands the same buffer back on hits.
func TestCacheHitSharesMaterialization(t *testing.T) {
	p := testProfile(t, "gzip")
	c := NewCache(DefaultCacheBudget)
	a := c.Get(p, 1000)
	b := c.Get(p, 1000)
	if a != b {
		t.Fatal("same key returned distinct materializations")
	}
	d := c.Get(p, 2000)
	if d == a {
		t.Fatal("different n returned the same materialization")
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 misses / 1 hit", st)
	}
	if want := int64(a.SizeBytes() + d.SizeBytes()); st.UsedBytes != want {
		t.Fatalf("UsedBytes = %d, want %d", st.UsedBytes, want)
	}
}

// TestCacheBudgetEviction proves the cache stays within its byte budget
// by evicting least-recently-used entries, and that an evicted entry's
// buffer remains valid for holders of the old reference.
func TestCacheBudgetEviction(t *testing.T) {
	p1 := testProfile(t, "gzip")
	p2 := testProfile(t, "bzip2")
	p3 := testProfile(t, "sha")

	const n = 1000
	one := int64(Materialize(p1, n).SizeBytes())
	// Budget fits exactly two traces of this length.
	c := NewCache(2 * one)

	m1 := c.Get(p1, n)
	c.Get(p2, n)
	c.Get(p1, n) // touch p1: p2 becomes LRU
	m3 := c.Get(p3, n)

	st := c.Stats()
	if st.UsedBytes > 2*one {
		t.Fatalf("UsedBytes %d exceeds budget %d", st.UsedBytes, 2*one)
	}
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}

	// p2 was evicted: fetching it again is a miss; p1 and p3 are hits.
	before := c.Stats().Misses
	if got := c.Get(p1, n); got != m1 {
		t.Fatal("p1 should have survived eviction")
	}
	if got := c.Get(p3, n); got != m3 {
		t.Fatal("p3 should have survived eviction")
	}
	c.Get(p2, n)
	if after := c.Stats().Misses; after != before+1 {
		t.Fatalf("misses went %d -> %d, want exactly one new miss (p2)", before, after)
	}
}

// TestCacheOverBudgetSingleEntry: a single trace larger than the whole
// budget is still returned to the caller (the cache just refuses to
// retain it).
func TestCacheOverBudgetSingleEntry(t *testing.T) {
	p := testProfile(t, "gzip")
	c := NewCache(10) // absurdly small
	m := c.Get(p, 500)
	if m == nil || m.Len() != 500 {
		t.Fatal("over-budget Get must still materialize for the caller")
	}
	if st := c.Stats(); st.UsedBytes > 10 {
		t.Fatalf("cache retained %d bytes over its 10-byte budget", st.UsedBytes)
	}
	// The returned buffer is unaffected by not being retained.
	r := m.Record(499)
	if r.Seq != 499 {
		t.Fatalf("Record(499).Seq = %d", r.Seq)
	}
}

// TestCacheConcurrentGet hammers one key from many goroutines: all must
// observe the same materialization and the trace must be generated once.
func TestCacheConcurrentGet(t *testing.T) {
	p := testProfile(t, "gzip")
	c := NewCache(DefaultCacheBudget)
	const workers = 16
	mats := make([]*Materialized, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mats[w] = c.Get(p, 3000)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if mats[w] != mats[0] {
			t.Fatalf("worker %d got a different materialization", w)
		}
	}
	if st := c.Stats(); st.Misses+st.Hits != workers || st.UsedBytes != int64(mats[0].SizeBytes()) {
		t.Fatalf("unexpected stats after concurrent get: %+v", st)
	}
}
