package mem

import "fmt"

// Config describes the full memory hierarchy of Table I.
type Config struct {
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	DRAMLatency   uint64
	DRAMOccupancy uint64

	// BusBeat is the occupancy of the shared L1↔L2 bus per beat, in
	// cycles. A full line refill takes LineBeats beats; a CB / write
	// buffer store packet takes one beat.
	BusBeat uint64
	// LineBeats is the number of bus beats per line-sized transfer.
	LineBeats int

	ITLBEntries    int
	DTLBEntries    int
	TLBWays        int
	PageBytes      int
	TLBMissPenalty uint64
}

// DefaultConfig returns the Table I baseline: 32 KB split 2-way L1 with
// 2-cycle latency and 10 MSHRs, 4 MB 8-way shared L2 with 20-cycle
// latency and 20 MSHRs, 400-cycle DRAM, 48/64-entry 2-way TLBs.
func DefaultConfig() Config {
	return Config{
		L1I: CacheConfig{
			Name: "l1i", SizeBytes: 32 << 10, Ways: 2, LineBytes: 64,
			HitLatency: 2, MSHRs: 10, Policy: WriteThrough, Protect: ProtParity,
		},
		L1D: CacheConfig{
			Name: "l1d", SizeBytes: 32 << 10, Ways: 2, LineBytes: 64,
			HitLatency: 2, MSHRs: 10, Policy: WriteThrough, Protect: ProtParity,
		},
		L2: CacheConfig{
			Name: "l2", SizeBytes: 4 << 20, Ways: 8, LineBytes: 64,
			HitLatency: 20, MSHRs: 20, Policy: WriteBack, Protect: ProtSECDED,
		},
		DRAMLatency:    400,
		DRAMOccupancy:  4,
		BusBeat:        1,
		LineBeats:      4,
		ITLBEntries:    48,
		DTLBEntries:    64,
		TLBWays:        2,
		PageBytes:      8 << 10,
		TLBMissPenalty: 30,
	}
}

// Validate checks the full hierarchy configuration: the three caches,
// the TLB shapes and the bus transfer geometry. It exists so that
// user-supplied configurations fail with a returned error at the API
// boundary rather than a panic inside a constructor.
func (c *Config) Validate() error {
	for _, cc := range []*CacheConfig{&c.L1I, &c.L1D, &c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.TLBWays <= 0 || c.ITLBEntries <= 0 || c.DTLBEntries <= 0 ||
		c.ITLBEntries%c.TLBWays != 0 || c.DTLBEntries%c.TLBWays != 0 {
		return fmt.Errorf("mem: bad TLB shape %d/%d ways=%d", c.ITLBEntries, c.DTLBEntries, c.TLBWays)
	}
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("mem: page size %d not a power of two", c.PageBytes)
	}
	if c.LineBeats <= 0 {
		return fmt.Errorf("mem: LineBeats must be positive")
	}
	return nil
}

// CoreSide is the per-core slice of the hierarchy: private L1s and TLBs,
// plus a simple sequential stream detector that drives next-line
// prefetching on the D-side.
type CoreSide struct {
	L1I  *Cache
	L1D  *Cache
	ITLB *TLB
	DTLB *TLB

	streams    [streamTableSize]streamEntry
	Prefetches uint64
}

// streamEntry tracks one detected sequential access stream.
type streamEntry struct {
	lastLine uint64
	frontier uint64
	lastUse  uint64
	valid    bool
}

// streamTableSize is the number of concurrent streams the D-side
// prefetcher tracks; PrefetchDepth is how many lines ahead it runs.
const (
	streamTableSize = 8
	PrefetchDepth   = 6
)

// Hierarchy is a shared L2 + DRAM with per-core L1s hanging off it, plus
// the shared L1↔L2 bus the Communication Buffer drains over.
type Hierarchy struct {
	Cfg   Config
	DRAM  *DRAM
	L2    *Cache
	Bus   *Bus
	Cores []*CoreSide
}

// NewHierarchy builds the shared levels and nCores private levels.
func NewHierarchy(cfg Config, nCores int) *Hierarchy {
	h := &Hierarchy{Cfg: cfg}
	h.DRAM = NewDRAM(cfg.DRAMLatency, cfg.DRAMOccupancy)
	h.L2 = NewCache(cfg.L2, h.DRAM)
	h.Bus = NewBus(cfg.BusBeat)
	beats := cfg.LineBeats
	if beats < 1 {
		beats = 1
	}
	for i := 0; i < nCores; i++ {
		l2side := NewBusPort(h.Bus, beats, h.L2)
		h.Cores = append(h.Cores, &CoreSide{
			L1I:  NewCache(cfg.L1I, l2side),
			L1D:  NewCache(cfg.L1D, l2side),
			ITLB: NewTLB(cfg.ITLBEntries, cfg.TLBWays, cfg.PageBytes, cfg.TLBMissPenalty),
			DTLB: NewTLB(cfg.DTLBEntries, cfg.TLBWays, cfg.PageBytes, cfg.TLBMissPenalty),
		})
	}
	return h
}

// ResetStats zeroes every cache, TLB and prefetch counter in the
// hierarchy without disturbing cache or TLB contents (warmed state
// stays resident). Measurement engines call it at the warmup→measure
// transition so memory-side event counts cover only the measurement
// window.
func (h *Hierarchy) ResetStats() {
	h.L2.ResetStats()
	for _, cs := range h.Cores {
		cs.L1I.ResetStats()
		cs.L1D.ResetStats()
		cs.ITLB.ResetStats()
		cs.DTLB.ResetStats()
		cs.Prefetches = 0
	}
}

// LoadAccess performs a data load for core: D-TLB translate then L1D.
// Sequential miss patterns trigger next-line prefetches (stream
// prefetcher, depth 3), as on the modeled Alpha-class cores.
func (h *Hierarchy) LoadAccess(core int, now uint64, addr uint64) (done uint64, hit bool) {
	cs := h.Cores[core]
	now += cs.DTLB.Translate(now, addr)
	done, hit = cs.L1D.Access(now, addr, false)
	cs.prefetch(now, addr)
	return done, hit
}

// prefetch advances the multi-stream sequential prefetcher for one
// demand load. A load to the line after a tracked stream's last line
// advances that stream and pulls the frontier PrefetchDepth ahead;
// otherwise it (re)allocates a stream slot.
func (cs *CoreSide) prefetch(now uint64, addr uint64) {
	line := addr >> 6
	victim := 0
	for i := range cs.streams {
		s := &cs.streams[i]
		if s.valid && (line == s.lastLine || line == s.lastLine+1) {
			if line == s.lastLine+1 {
				s.lastLine = line
				target := line + PrefetchDepth
				start := s.frontier + 1
				if start < line+1 {
					start = line + 1
				}
				for l := start; l <= target; l++ {
					cs.L1D.Access(now, l<<6, false)
					cs.Prefetches++
				}
				if target > s.frontier {
					s.frontier = target
				}
			}
			s.lastUse = now
			return
		}
		if !cs.streams[victim].valid {
			continue
		}
		if !s.valid || s.lastUse < cs.streams[victim].lastUse {
			victim = i
		}
	}
	cs.streams[victim] = streamEntry{lastLine: line, frontier: line, lastUse: now, valid: true}
}

// StoreAccess performs the L1 side of a data store for core (tag update
// only under write-through; propagation to L2 is the store-path owner's
// job).
func (h *Hierarchy) StoreAccess(core int, now uint64, addr uint64) (done uint64, hit bool) {
	cs := h.Cores[core]
	now += cs.DTLB.Translate(now, addr)
	return cs.L1D.Access(now, addr, true)
}

// FetchAccess performs an instruction fetch access.
func (h *Hierarchy) FetchAccess(core int, now uint64, pc uint64) (done uint64, hit bool) {
	cs := h.Cores[core]
	now += cs.ITLB.Translate(now, pc)
	return cs.L1I.Access(now, pc, false)
}

// WriteLineToL2 transfers one line-sized store packet over the shared
// bus into the L2 (write-buffer or CB drain). It returns the completion
// cycle.
func (h *Hierarchy) WriteLineToL2(now uint64, addr uint64) uint64 {
	_, busDone := h.Bus.Reserve(now, 1)
	done, _ := h.L2.Access(busDone, addr, true)
	return done
}
