package mem

import (
	"testing"
	"testing/quick"
)

// fixedPort is a test backing store with constant latency.
type fixedPort struct {
	latency  uint64
	accesses []uint64 // addresses seen
	writes   int
}

func (f *fixedPort) Access(now uint64, addr uint64, write bool) (uint64, bool) {
	f.accesses = append(f.accesses, addr)
	if write {
		f.writes++
	}
	return now + f.latency, false
}

func testCacheCfg() CacheConfig {
	return CacheConfig{
		Name: "test", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64,
		HitLatency: 2, MSHRs: 4, Policy: WriteThrough,
	}
}

func TestCacheConfigValidate(t *testing.T) {
	good := testCacheCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Sets() != 8 || good.Lines() != 16 {
		t.Errorf("Sets=%d Lines=%d", good.Sets(), good.Lines())
	}
	bad := good
	bad.SizeBytes = 0
	if bad.Validate() == nil {
		t.Error("zero size accepted")
	}
	bad = good
	bad.SizeBytes = 3 << 10 // 24 sets: not a power of two
	if bad.Validate() == nil {
		t.Error("non-power-of-two sets accepted")
	}
	bad = good
	bad.LineBytes = 48
	if bad.Validate() == nil {
		t.Error("non-power-of-two line accepted")
	}
	bad = good
	bad.MSHRs = 0
	if bad.Validate() == nil {
		t.Error("zero MSHRs accepted")
	}
}

func TestCacheHitMiss(t *testing.T) {
	back := &fixedPort{latency: 100}
	c := NewCache(testCacheCfg(), back)

	done, hit := c.Access(0, 0x1000, false)
	if hit {
		t.Error("cold access hit")
	}
	if done != 102 { // 2-cycle lookup + 100 fill
		t.Errorf("miss done = %d, want 102", done)
	}
	done, hit = c.Access(done, 0x1008, false) // same line
	if !hit {
		t.Error("same-line access missed")
	}
	if done != 104 {
		t.Errorf("hit done = %d, want 104", done)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	back := &fixedPort{latency: 10}
	c := NewCache(testCacheCfg(), back) // 8 sets, 2 ways
	// Three lines mapping to the same set (stride = sets*line = 512).
	a, b, d := uint64(0), uint64(512), uint64(1024)
	now := uint64(0)
	now, _ = c.Access(now, a, false)
	now, _ = c.Access(now, b, false)
	now, _ = c.Access(now, a, false) // touch a: b becomes LRU
	now, _ = c.Access(now, d, false) // evicts b
	if !c.Present(a) || c.Present(b) || !c.Present(d) {
		t.Error("LRU eviction picked the wrong victim")
	}
	_ = now
}

func TestCacheWriteThroughNoAllocate(t *testing.T) {
	back := &fixedPort{latency: 10}
	c := NewCache(testCacheCfg(), back)
	done, hit := c.Access(0, 0x2000, true)
	if hit || done != 2 {
		t.Errorf("WT store miss: done=%d hit=%v", done, hit)
	}
	if c.Present(0x2000) {
		t.Error("WT store miss allocated a line")
	}
	if len(back.accesses) != 0 {
		t.Error("WT store miss touched the next level (store path owns that)")
	}
	// A store hit must not dirty the line.
	c.Access(0, 0x3000, false) // fill
	c.Access(20, 0x3000, true)
	if c.DirtyLines() != 0 {
		t.Error("WT store dirtied a line")
	}
}

func TestCacheWriteBackAllocatesAndWritesBack(t *testing.T) {
	cfg := testCacheCfg()
	cfg.Policy = WriteBack
	back := &fixedPort{latency: 10}
	c := NewCache(cfg, back)
	c.Access(0, 0, true) // write-allocate, dirty
	if !c.Present(0) || c.DirtyLines() != 1 {
		t.Fatal("WB store miss should allocate dirty")
	}
	// Evict it with two more lines in the same set.
	c.Access(100, 512, false)
	c.Access(200, 1024, false)
	if c.Present(0) {
		t.Error("line 0 should have been evicted")
	}
	if c.Stats.Writebacks != 1 || back.writes != 1 {
		t.Errorf("writebacks = %d, backing writes = %d", c.Stats.Writebacks, back.writes)
	}
}

func TestCacheMSHRCoalescing(t *testing.T) {
	back := &fixedPort{latency: 100}
	c := NewCache(testCacheCfg(), back)
	d1, _ := c.Access(0, 0x4000, false)
	d2, _ := c.Access(1, 0x4008, false) // same line, still in flight
	if d2 != d1 {
		t.Errorf("coalesced miss done = %d, want %d", d2, d1)
	}
	if c.Stats.Coalesced != 1 || len(back.accesses) != 1 {
		t.Errorf("coalesced=%d backing=%d", c.Stats.Coalesced, len(back.accesses))
	}
}

func TestCacheMSHRExhaustionStalls(t *testing.T) {
	cfg := testCacheCfg()
	cfg.MSHRs = 2
	back := &fixedPort{latency: 100}
	c := NewCache(cfg, back)
	c.Access(0, 0<<6, false)
	c.Access(0, 1<<6, false)
	done, _ := c.Access(0, 2<<6, false) // third concurrent miss
	if c.Stats.MSHRStalls != 1 {
		t.Errorf("MSHRStalls = %d, want 1", c.Stats.MSHRStalls)
	}
	if done <= 102 {
		t.Errorf("stalled miss done = %d, should be delayed past 102", done)
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	back := &fixedPort{latency: 10}
	c := NewCache(testCacheCfg(), back)
	c.Access(0, 0, false)
	c.Access(0, 64, false)
	if c.ValidLines() != 2 {
		t.Fatalf("ValidLines = %d", c.ValidLines())
	}
	c.InvalidateAll()
	if c.ValidLines() != 0 || c.Stats.Invalidates != 2 {
		t.Error("InvalidateAll incomplete")
	}
}

func TestCacheMissRate(t *testing.T) {
	back := &fixedPort{latency: 10}
	c := NewCache(testCacheCfg(), back)
	c.Access(0, 0, false)
	c.Access(20, 0, false)
	if mr := c.Stats.MissRate(); mr != 0.5 {
		t.Errorf("MissRate = %g", mr)
	}
	var empty CacheStats
	if empty.MissRate() != 0 {
		t.Error("empty MissRate != 0")
	}
}

// Property: a cache never returns a completion before now+HitLatency and
// hits never touch the next level.
func TestQuickCacheTiming(t *testing.T) {
	back := &fixedPort{latency: 50}
	c := NewCache(testCacheCfg(), back)
	var now uint64
	f := func(addrRaw uint16, write bool) bool {
		addr := uint64(addrRaw) &^ 7
		before := len(back.accesses)
		done, hit := c.Access(now, addr, write)
		if done < now+c.Cfg.HitLatency {
			return false
		}
		if hit && len(back.accesses) != before {
			return false
		}
		now = done
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBusReserve(t *testing.T) {
	b := NewBus(4)
	if !b.FreeAt(0) {
		t.Error("new bus should be free")
	}
	start, done := b.Reserve(10, 1)
	if start != 10 || done != 14 {
		t.Errorf("Reserve = %d,%d", start, done)
	}
	if b.FreeAt(12) {
		t.Error("bus should be busy at 12")
	}
	start, done = b.Reserve(0, 2) // queued behind previous
	if start != 14 || done != 22 {
		t.Errorf("queued Reserve = %d,%d", start, done)
	}
	if b.Transfers() != 2 {
		t.Errorf("Transfers = %d", b.Transfers())
	}
	if u := b.Utilization(22); u <= 0 || u > 1 {
		t.Errorf("Utilization = %g", u)
	}
	if b.Utilization(0) != 0 {
		t.Error("zero-elapsed utilization != 0")
	}
}

func TestBusZeroBeatClamped(t *testing.T) {
	b := NewBus(0)
	if b.BeatCycles != 1 {
		t.Error("zero beat cycles should clamp to 1")
	}
}

func TestDRAM(t *testing.T) {
	d := NewDRAM(400, 4)
	done, hit := d.Access(0, 0, false)
	if hit || done != 400 {
		t.Errorf("DRAM access = %d,%v", done, hit)
	}
	// Channel occupancy delays back-to-back requests.
	done2, _ := d.Access(0, 64, false)
	if done2 != 404 {
		t.Errorf("second DRAM access = %d, want 404", done2)
	}
	if d.Accesses() != 2 {
		t.Errorf("Accesses = %d", d.Accesses())
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4, 2, 4096, 30)
	if pen := tlb.Translate(0, 0); pen != 30 {
		t.Errorf("cold TLB penalty = %d", pen)
	}
	if pen := tlb.Translate(1, 8); pen != 0 {
		t.Errorf("same-page penalty = %d", pen)
	}
	if pen := tlb.Translate(2, 4096); pen != 30 {
		t.Errorf("new page penalty = %d", pen)
	}
	if tlb.MissRate() != 2.0/3.0 {
		t.Errorf("MissRate = %g", tlb.MissRate())
	}
}

func TestTLBEviction(t *testing.T) {
	tlb := NewTLB(2, 2, 4096, 30) // one set, two ways
	tlb.Translate(0, 0)
	tlb.Translate(1, 4096)
	tlb.Translate(2, 0) // touch page 0
	tlb.Translate(3, 2*4096)
	// page 1 (LRU) must have been evicted
	if pen := tlb.Translate(4, 4096); pen != 30 {
		t.Error("LRU page should have been evicted")
	}
	if pen := tlb.Translate(5, 2*4096); pen != 0 {
		t.Error("MRU page should have survived")
	}
}

func TestTLBPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTLB(0, 1, 4096, 1) },
		func() { NewTLB(3, 2, 4096, 1) },
		func() { NewTLB(4, 2, 1000, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L1D.SizeBytes != 32<<10 || cfg.L1D.Ways != 2 || cfg.L1D.MSHRs != 10 ||
		cfg.L1D.HitLatency != 2 || cfg.L1D.LineBytes != 64 {
		t.Errorf("L1D config deviates from Table I: %+v", cfg.L1D)
	}
	if cfg.L1D.Policy != WriteThrough {
		t.Error("UnSync requires a write-through L1")
	}
	if cfg.L2.SizeBytes != 4<<20 || cfg.L2.Ways != 8 || cfg.L2.MSHRs != 20 ||
		cfg.L2.HitLatency != 20 {
		t.Errorf("L2 config deviates from Table I: %+v", cfg.L2)
	}
	if cfg.L2.Protect != ProtSECDED {
		t.Error("L2 must be ECC protected")
	}
	if cfg.DRAMLatency != 400 {
		t.Errorf("DRAM latency = %d", cfg.DRAMLatency)
	}
	if cfg.ITLBEntries != 48 || cfg.DTLBEntries != 64 || cfg.TLBWays != 2 {
		t.Error("TLB config deviates from Table I")
	}
	for _, c := range []CacheConfig{cfg.L1I, cfg.L1D, cfg.L2} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestHierarchyAccessors(t *testing.T) {
	h := NewHierarchy(DefaultConfig(), 2)
	if len(h.Cores) != 2 {
		t.Fatalf("cores = %d", len(h.Cores))
	}
	// A load miss must go through L2 (cold: L2 misses to DRAM).
	done, hit := h.LoadAccess(0, 0, 0x100000)
	if hit {
		t.Error("cold load hit")
	}
	if done < 400 {
		t.Errorf("cold load done = %d, should include DRAM", done)
	}
	// Second access to the same line: L1 hit, cheap.
	done2, hit2 := h.LoadAccess(0, done, 0x100008)
	if !hit2 || done2 != done+2 {
		t.Errorf("warm load = %d,%v", done2, hit2)
	}
	// Other core is cold in L1 but warm in shared L2.
	done3, hit3 := h.LoadAccess(1, done2, 0x100000)
	if hit3 {
		t.Error("core 1 should miss its own L1")
	}
	if done3 >= done2+400 {
		t.Errorf("core 1 load should be served by shared L2, done=%d", done3)
	}
	// Fetch path works and uses the I-side.
	if _, _ = h.FetchAccess(0, 0, 0x4000); h.Cores[0].L1I.Stats.Accesses != 1 {
		t.Error("fetch did not access L1I")
	}
	// Store path touches L1D only.
	l2a := h.L2.Stats.Accesses
	h.StoreAccess(0, 0, 0x100000)
	if h.L2.Stats.Accesses != l2a {
		t.Error("StoreAccess must not touch L2 directly")
	}
}

func TestWriteLineToL2(t *testing.T) {
	h := NewHierarchy(DefaultConfig(), 1)
	done := h.WriteLineToL2(0, 0x100000)
	if done == 0 {
		t.Error("WriteLineToL2 returned 0")
	}
	if h.Bus.Transfers() != 1 {
		t.Error("bus not used")
	}
	if h.L2.Stats.Accesses != 1 {
		t.Error("L2 not written")
	}
	// Bus serializes subsequent drains.
	d2 := h.WriteLineToL2(0, 0x100040)
	if d2 <= done-20 { // allowing L2 latency overlap
		t.Errorf("second drain done = %d vs first %d", d2, done)
	}
}

// Property: a cache only holds lines it was asked for, and occupancy
// never exceeds capacity (no phantom fills).
func TestQuickCacheContents(t *testing.T) {
	back := &fixedPort{latency: 30}
	c := NewCache(testCacheCfg(), back)
	asked := map[uint64]bool{}
	var now uint64
	f := func(raw uint16, write bool) bool {
		addr := uint64(raw) * 8
		asked[addr>>6] = true
		done, _ := c.Access(now, addr, write)
		now = done
		if c.ValidLines() > c.Cfg.Lines() {
			return false
		}
		// Every resident line must correspond to an accessed line.
		for la := range asked {
			_ = la
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	// Spot-check residency provenance: probe a few lines never asked for.
	for probe := uint64(1 << 30); probe < 1<<30+10*64; probe += 64 {
		if !asked[probe>>6] && c.Present(probe) {
			t.Fatalf("phantom line %#x resident", probe)
		}
	}
}

// Property: TLB translation penalty is always 0 or the miss penalty,
// and a repeat access to the same page is always free.
func TestQuickTLBIdempotent(t *testing.T) {
	tlb := NewTLB(64, 2, 8192, 30)
	var now uint64
	f := func(raw uint32) bool {
		addr := uint64(raw) * 64
		p1 := tlb.Translate(now, addr)
		p2 := tlb.Translate(now+1, addr)
		now += 2
		if p1 != 0 && p1 != 30 {
			return false
		}
		return p2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
