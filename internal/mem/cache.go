package mem

import "fmt"

// WritePolicy selects the cache's handling of stores.
type WritePolicy uint8

const (
	// WriteThrough: stores update the line if present and are passed to
	// the next level by the owner of the store path (write buffer or
	// Communication Buffer); misses do not allocate. This is the L1
	// policy UnSync requires (paper §III-C1).
	WriteThrough WritePolicy = iota
	// WriteBack: stores allocate and dirty the line; dirty victims are
	// written back on eviction.
	WriteBack
)

// String names the policy.
func (p WritePolicy) String() string {
	if p == WriteThrough {
		return "write-through"
	}
	return "write-back"
}

// Protection is the error-protection scheme on the cache array. It has
// no timing effect in this model; it determines fault-detection coverage
// (internal/fault) and area/power (internal/hwmodel).
type Protection uint8

const (
	ProtNone Protection = iota
	ProtParity
	ProtSECDED
)

// String names the protection scheme.
func (p Protection) String() string {
	switch p {
	case ProtParity:
		return "parity"
	case ProtSECDED:
		return "secded"
	}
	return "none"
}

// CacheConfig describes one cache.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Ways       int
	LineBytes  int
	HitLatency uint64
	MSHRs      int
	Policy     WritePolicy
	Protect    Protection
}

// Validate checks structural invariants.
func (c *CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("mem: cache %q: non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("mem: cache %q: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: cache %q: %d sets not a power of two", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.MSHRs < 1 {
		return fmt.Errorf("mem: cache %q: needs at least one MSHR", c.Name)
	}
	return nil
}

// Sets returns the number of sets.
func (c *CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Lines returns the total number of lines.
func (c *CacheConfig) Lines() int { return c.SizeBytes / c.LineBytes }

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

type mshr struct {
	lineAddr uint64
	done     uint64
}

// CacheStats counts cache events.
type CacheStats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	Coalesced   uint64 // misses merged into an in-flight MSHR
	MSHRStalls  uint64 // misses delayed waiting for a free MSHR
	Writebacks  uint64 // dirty evictions (write-back policy)
	Fills       uint64 // lines installed
	Invalidates uint64
}

// MissRate returns misses per access.
func (s *CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative, LRU, timing-only cache with a finite number
// of MSHRs. It implements Port.
type Cache struct {
	Cfg   CacheConfig
	Stats CacheStats

	next     Port
	sets     [][]line
	mshrs    []mshr
	setShift uint
	setMask  uint64
}

// NewCache builds a cache on top of the given next level. It panics on
// invalid configuration (configurations are static data).
func NewCache(cfg CacheConfig, next Port) *Cache {
	if err := cfg.Validate(); err != nil {
		//unsync:allow-panic cache geometries are validated at the public API boundary
		panic(err)
	}
	if next == nil {
		//unsync:allow-panic invariant: the hierarchy always wires a next level below every cache
		panic(fmt.Sprintf("mem: cache %q: nil next level", cfg.Name))
	}
	c := &Cache{Cfg: cfg, next: next}
	nSets := cfg.Sets()
	c.sets = make([][]line, nSets)
	backing := make([]line, nSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	c.mshrs = make([]mshr, cfg.MSHRs)
	for shift := uint(0); ; shift++ {
		if 1<<shift == cfg.LineBytes {
			c.setShift = shift
			break
		}
	}
	c.setMask = uint64(nSets - 1)
	return c
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.setShift }
func (c *Cache) setOf(la uint64) int         { return int(la & c.setMask) }
func (c *Cache) tagOf(la uint64) uint64      { return la >> uint(popShift(c.setMask)) }

func popShift(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// lookup finds the way of la in its set, or -1.
func (c *Cache) lookup(la uint64) int {
	set := c.sets[c.setOf(la)]
	tag := c.tagOf(la)
	for w := range set {
		if set[w].valid && set[w].tag == tag {
			return w
		}
	}
	return -1
}

// Access implements Port. For WriteThrough caches a store miss does not
// allocate; propagation of store data to the next level is the
// responsibility of the store-path owner (write buffer / CB), not the
// cache.
func (c *Cache) Access(now uint64, addr uint64, write bool) (done uint64, hit bool) {
	c.Stats.Accesses++
	la := c.lineAddr(addr)
	set := c.sets[c.setOf(la)]

	if w := c.lookup(la); w >= 0 {
		c.Stats.Hits++
		set[w].lastUse = now
		if write && c.Cfg.Policy == WriteBack {
			set[w].dirty = true
		}
		// If the line's fill is still in flight, the access completes
		// when the fill does.
		for i := range c.mshrs {
			if c.mshrs[i].done > now && c.mshrs[i].lineAddr == la {
				c.Stats.Coalesced++
				done = c.mshrs[i].done
				if min := now + c.Cfg.HitLatency; done < min {
					done = min
				}
				return done, true
			}
		}
		return now + c.Cfg.HitLatency, true
	}

	c.Stats.Misses++

	// Store misses never fetch synchronously: under write-through the
	// line is simply not allocated (no-write-allocate); under
	// write-back the line is installed dirty without a fill
	// (write-validate), which is how a store buffer keeps store misses
	// off the commit critical path.
	if write {
		if c.Cfg.Policy == WriteBack {
			c.install(la, now, true)
		}
		return now + c.Cfg.HitLatency, false
	}

	// Coalesce with an in-flight miss to the same line.
	for i := range c.mshrs {
		if c.mshrs[i].done > now && c.mshrs[i].lineAddr == la {
			c.Stats.Coalesced++
			return c.mshrs[i].done, false
		}
	}

	// Claim an MSHR, stalling until one frees if all are busy.
	issue := now
	slot := -1
	var earliest uint64 = ^uint64(0)
	for i := range c.mshrs {
		if c.mshrs[i].done <= now {
			slot = i
			break
		}
		if c.mshrs[i].done < earliest {
			earliest = c.mshrs[i].done
			slot = i
		}
	}
	if c.mshrs[slot].done > now {
		c.Stats.MSHRStalls++
		issue = c.mshrs[slot].done
	}

	fillDone, _ := c.next.Access(issue+c.Cfg.HitLatency, la<<c.setShift, false)
	c.mshrs[slot] = mshr{lineAddr: la, done: fillDone}

	c.install(la, now, write && c.Cfg.Policy == WriteBack)
	return fillDone, false
}

// install places la in its set, evicting LRU and writing back dirty
// victims at the request time now. (The writeback must not be issued at
// the future fill-completion time: the bus model books occupancy from
// the requested cycle, and a far-future reservation would serialize
// every later request behind it.)
func (c *Cache) install(la uint64, now uint64, dirty bool) {
	set := c.sets[c.setOf(la)]
	victim := 0
	for w := range set {
		if !set[w].valid {
			victim = w
			break
		}
		if set[w].lastUse < set[victim].lastUse {
			victim = w
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.Stats.Writebacks++
		// Reconstruct the victim's address and push it down.
		victimLA := set[victim].tag<<uint(popShift(c.setMask)) | uint64(c.setOf(la))
		c.next.Access(now, victimLA<<c.setShift, true)
	}
	set[victim] = line{tag: c.tagOf(la), valid: true, dirty: dirty, lastUse: now}
	c.Stats.Fills++
}

// ResetStats zeroes the counters without disturbing the cache contents
// (warmed lines stay resident). Measurement engines call it at the
// warmup→measure transition via Hierarchy.ResetStats.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

// Present reports whether addr's line is resident (for tests and fault
// targeting).
func (c *Cache) Present(addr uint64) bool { return c.lookup(c.lineAddr(addr)) >= 0 }

// ValidLines returns the number of resident lines.
func (c *Cache) ValidLines() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.valid {
				n++
			}
		}
	}
	return n
}

// DirtyLines returns the number of resident dirty lines.
func (c *Cache) DirtyLines() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.valid && l.dirty {
				n++
			}
		}
	}
	return n
}

// InvalidateAll empties the cache (UnSync recovery invalidates the
// erroneous core's L1; clean lines can simply be refetched from the
// ECC-protected L2).
func (c *Cache) InvalidateAll() {
	for _, set := range c.sets {
		for w := range set {
			if set[w].valid {
				c.Stats.Invalidates++
			}
			set[w] = line{}
		}
	}
}
