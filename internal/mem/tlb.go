package mem

import "fmt"

// TLB is a set-associative translation lookaside buffer modeled as a
// hit/miss latency filter: a hit is free, a miss adds a fixed fill
// penalty (page-table walk). Table I: I-TLB 48 entries 2-way, D-TLB 64
// entries 2-way.
type TLB struct {
	Entries     int
	Ways        int
	PageBytes   int
	MissPenalty uint64

	sets  [][]line
	nSets uint64

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB. Entries must be divisible by ways; the set count
// need not be a power of two (Table I's 48-entry 2-way I-TLB has 24
// sets), so indexing is modulo.
func NewTLB(entries, ways, pageBytes int, missPenalty uint64) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		//unsync:allow-panic TLB shapes are validated by mem.Config.Validate at the public API boundary
		panic(fmt.Sprintf("mem: bad TLB shape %d/%d", entries, ways))
	}
	if pageBytes&(pageBytes-1) != 0 || pageBytes == 0 {
		//unsync:allow-panic page size is validated by mem.Config.Validate at the public API boundary
		panic("mem: TLB page size not a power of two")
	}
	nSets := entries / ways
	t := &TLB{Entries: entries, Ways: ways, PageBytes: pageBytes, MissPenalty: missPenalty}
	t.sets = make([][]line, nSets)
	backing := make([]line, nSets*ways)
	for i := range t.sets {
		t.sets[i] = backing[i*ways : (i+1)*ways]
	}
	t.nSets = uint64(nSets)
	return t
}

// Translate looks up addr's page at cycle now and returns the added
// latency (0 on hit, MissPenalty on miss).
func (t *TLB) Translate(now uint64, addr uint64) uint64 {
	t.Accesses++
	page := addr / uint64(t.PageBytes)
	set := t.sets[page%t.nSets]
	tag := page / t.nSets
	for w := range set {
		if set[w].valid && set[w].tag == tag {
			set[w].lastUse = now
			return 0
		}
	}
	t.Misses++
	victim := 0
	for w := range set {
		if !set[w].valid {
			victim = w
			break
		}
		if set[w].lastUse < set[victim].lastUse {
			victim = w
		}
	}
	set[victim] = line{tag: tag, valid: true, lastUse: now}
	return t.MissPenalty
}

// ResetStats zeroes the counters without disturbing the translations.
func (t *TLB) ResetStats() { t.Accesses, t.Misses = 0, 0 }

// MissRate returns misses per access.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
