// Package mem models the timing of the memory hierarchy of Table I:
// split write-through L1 caches, a shared ECC-protected L2, TLBs, the
// L1↔L2 bus, and DRAM. The model is timing-only — data values live in
// the functional emulator — and single-threaded: callers advance it by
// asking components for absolute completion cycles.
package mem

// Bus models a shared, in-order, non-pipelined transfer link (the paper's
// "L1-L2 data bus"). Each transfer occupies the bus for a fixed number of
// cycles per beat; requests that find the bus busy queue behind it.
type Bus struct {
	// BeatCycles is the occupancy per beat (one beat = one line or one
	// message, depending on the caller).
	BeatCycles uint64

	busyUntil uint64
	transfers uint64
	busyTotal uint64
}

// NewBus creates a bus with the given per-beat occupancy.
func NewBus(beatCycles uint64) *Bus {
	if beatCycles == 0 {
		beatCycles = 1
	}
	return &Bus{BeatCycles: beatCycles}
}

// FreeAt reports whether the bus is idle at the given cycle. The paper's
// CB drains "as and when the L1-L2 data bus is free".
func (b *Bus) FreeAt(now uint64) bool { return b.busyUntil <= now }

// Reserve books the bus for beats beats starting no earlier than now.
// It returns the cycle the transfer starts and the cycle it completes.
func (b *Bus) Reserve(now uint64, beats int) (start, done uint64) {
	start = now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	done = start + uint64(beats)*b.BeatCycles
	b.busyTotal += done - start
	b.busyUntil = done
	b.transfers++
	return start, done
}

// BusyUntil returns the cycle at which the bus next becomes free.
func (b *Bus) BusyUntil() uint64 { return b.busyUntil }

// Transfers returns the number of reservations made.
func (b *Bus) Transfers() uint64 { return b.transfers }

// Utilization returns the fraction of cycles the bus was occupied, given
// the total elapsed cycles of the simulation.
func (b *Bus) Utilization(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	u := float64(b.busyTotal) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// DRAM is a fixed-latency main memory (Table I: 400-cycle access).
// Bandwidth contention is modeled with a per-access channel occupancy.
type DRAM struct {
	Latency   uint64 // access latency in cycles
	Occupancy uint64 // channel occupancy per access

	busyUntil uint64
	accesses  uint64
}

// NewDRAM creates a DRAM model.
func NewDRAM(latency, occupancy uint64) *DRAM {
	return &DRAM{Latency: latency, Occupancy: occupancy}
}

// Access services a memory request issued at cycle now and returns the
// absolute completion cycle.
func (d *DRAM) Access(now uint64, addr uint64, write bool) (done uint64, hit bool) {
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.busyUntil = start + d.Occupancy
	d.accesses++
	return start + d.Latency, false
}

// Accesses returns the number of requests serviced.
func (d *DRAM) Accesses() uint64 { return d.accesses }

// Port is any component that can service a timed memory access.
type Port interface {
	// Access issues a request at cycle now for the given address and
	// returns the absolute cycle at which it completes, plus whether it
	// hit at this level.
	Access(now uint64, addr uint64, write bool) (done uint64, hit bool)
}

// BusPort interposes a shared bus in front of a port: every access first
// occupies the bus for a fixed number of beats. It is used to carry L1
// refill and writeback traffic over the same L1↔L2 bus that the
// Communication Buffer drains on, so CB drain and refill traffic contend
// as in the paper.
type BusPort struct {
	Bus   *Bus
	Beats int
	Next  Port
}

// NewBusPort wraps next behind bus with the given per-access beats.
func NewBusPort(bus *Bus, beats int, next Port) *BusPort {
	if beats < 1 {
		beats = 1
	}
	return &BusPort{Bus: bus, Beats: beats, Next: next}
}

// Access implements Port.
func (b *BusPort) Access(now uint64, addr uint64, write bool) (done uint64, hit bool) {
	_, busDone := b.Bus.Reserve(now, b.Beats)
	return b.Next.Access(busDone, addr, write)
}

var (
	_ Port = (*DRAM)(nil)
	_ Port = (*Cache)(nil)
	_ Port = (*BusPort)(nil)
)
