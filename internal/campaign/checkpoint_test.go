package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/cmlasu/unsync/internal/journaltest"
)

// checkpointLines marshals n well-formed trial records under key, one
// journal line each (no trailing newline — journaltest adds those).
func checkpointLines(t testing.TB, key string, n int) [][]byte {
	t.Helper()
	lines := make([][]byte, n)
	for i := range lines {
		b, err := json.Marshal(TrialRecord{
			Key: key, Prog: "checksum", Seed: 7, Index: i,
			Space: "int-reg", Reg: uint8(i % 16), Bit: uint8(i % 64),
			Step: uint64(10 + i), Detected: i%2 == 0, Attempts: 1,
			Outcome: "benign",
		})
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = b
	}
	return lines
}

// TestLoadJournalCorruptionCorpus runs the shared tail-corruption
// corpus against the checkpoint loader. The checkpoint is the LENIENT
// loader: journals are shared across specs, so unparseable lines are
// skipped wherever they appear and only the matching-key records
// survive.
func TestLoadJournalCorruptionCorpus(t *testing.T) {
	lines := checkpointLines(t, "deadbeef", 12)
	journaltest.Check(t, lines, false, func(path string) (int, error) {
		recs, _, err := loadJournal(path, "deadbeef")
		return len(recs), err
	})
}

// FuzzLoadJournalTornTail asserts the kill-tolerance invariant under
// arbitrary tail bytes: appending any unterminated fragment to a valid
// checkpoint must never change what resume recovers and never error.
func FuzzLoadJournalTornTail(f *testing.F) {
	for _, seed := range journaltest.Seeds() {
		f.Add(seed)
	}
	lines := checkpointLines(f, "deadbeef", 5)
	var base []byte
	for _, line := range lines {
		base = append(base, line...)
		base = append(base, '\n')
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ck.jsonl")
		torn := append(append([]byte(nil), base...), journaltest.TornTail(data)...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, _, err := loadJournal(path, "deadbeef")
		if err != nil {
			t.Fatalf("torn tail broke the loader: %v", err)
		}
		if len(recs) != len(lines) {
			t.Fatalf("recovered %d records, want %d", len(recs), len(lines))
		}
		for i := range lines {
			if _, ok := recs[i]; !ok {
				t.Fatalf("record %d lost to a torn tail", i)
			}
		}
	})
}
