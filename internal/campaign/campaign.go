// Package campaign is the resilient fault-injection campaign engine:
// the production-scale successor to the small serial loops in
// internal/fault. It reproduces the paper's §VI-D claim — "both
// architectures execute programs correctly in the presence of errors" —
// at statistical scale, with the robustness properties a long campaign
// needs:
//
//   - coverage-driven detection: whether a flip is detected is resolved
//     per trial from the scheme's fault.Coverage map (never hardwired),
//     so the SDC/DUE split of an unprotected structure is measurable;
//   - an expanded fault-site space: int/fp registers, the PC, data
//     memory (SpaceMem) and the uncore Communication Buffer (SpaceCB,
//     the dominant unprotected contributor in Cho et al.'s study);
//   - a worker pool with per-trial step-budget watchdogs (a livelocked
//     trial is killed and classified OutcomeHang, never looped on),
//     panic isolation, and one retry-with-reseed on harness errors;
//   - graceful degradation: a campaign always returns its partial
//     Result plus the joined per-trial errors;
//   - a JSONL checkpoint journal keyed by (program hash, seed, trial
//     index): an interrupted campaign resumes deterministically, and a
//     kill+resume run bit-matches an uninterrupted one;
//   - early stopping once the Wilson confidence interval on the SDC
//     rate narrows below a threshold.
//
// Determinism contract: every trial's fault site derives from
// (Seed, trial index, attempt) alone — never from a shared stream or
// the worker schedule — so results are identical across worker counts,
// interruptions and resumes.
package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/stats"
	"github.com/cmlasu/unsync/internal/sweep"
)

// Scheme names accepted by Spec.Scheme.
const (
	SchemeUnSync  = "unsync"
	SchemeReunion = "reunion"
)

// Spec configures one campaign.
type Spec struct {
	// Scheme selects the recovery semantics: "unsync" or "reunion".
	Scheme string
	// Trials is the number of injection trials (default 100).
	Trials int
	// Seed drives every per-trial site derivation (default 1).
	Seed uint64
	// MaxSteps bounds the fault-free golden run (default 1_000_000).
	MaxSteps uint64
	// StepBudget is the per-trial watchdog: a faulted pair exceeding it
	// is killed and classified OutcomeHang (default 4×MaxSteps).
	StepBudget uint64
	// Spaces are the fault sites drawn from (default: all spaces).
	Spaces []fault.Space
	// Coverage resolves per-trial detection (default: the scheme's own
	// coverage map).
	Coverage fault.Coverage
	// FI is Reunion's fingerprint interval (default 10).
	FI int
	// Workers bounds the worker pool (default NumCPU via sweep.Map).
	Workers int
	// CIWidth, when positive, stops the campaign early once the Wilson
	// interval on the SDC rate is narrower than this width. Early
	// stopping is evaluated at fixed round boundaries so the stopping
	// point does not depend on the worker schedule.
	CIWidth float64
	// Z is the Wilson confidence multiplier (default 1.96 ≈ 95%).
	Z float64
	// Checkpoint is the JSONL journal path ("" disables journaling).
	Checkpoint string
	// Resume loads completed trials from Checkpoint instead of
	// re-running them.
	Resume bool
	// Retries is the number of retry-with-reseed attempts after a
	// harness (non-outcome) trial error (default 1; negative disables).
	Retries int
	// StopAfter, when positive, aborts the campaign after that many
	// newly executed trials, returning ErrInterrupted with the partial
	// Result — a deterministic stand-in for a mid-campaign kill, used
	// by tests and the CI kill+resume exercise.
	StopAfter int
	// TrialTimeout, when positive, is a wall-clock watchdog on each
	// trial attempt: the step budget bounds emulated work, but on a
	// slow or overloaded host even a budgeted trial can outlive any
	// useful deadline, so a trial whose attempt exceeds this duration
	// is killed and classified OutcomeHang — the same bucket as a
	// step-budget livelock. 0 disables the wall clock and keeps trial
	// outcomes strictly deterministic; with a timeout set, an outcome
	// can depend on host speed, so resumed runs must use the same
	// timeout (it is part of the journal key). A positive TrialTimeout
	// also forces the scalar trial path: a per-lane wall clock cannot
	// be enforced inside a shared batch kernel.
	TrialTimeout time.Duration
	// Batch is the lane width of the batched structure-of-arrays trial
	// engine: workers claim trials in groups of up to Batch lanes and
	// classify them against the shared golden run in one kernel call
	// (fault.UnSyncTrialBatch / fault.ReunionTrialBatch). 1 selects the
	// scalar path — the semantic reference — and 0 selects
	// DefaultBatch. Outcomes, journal records and the final Result are
	// bit-identical across batch widths, so Batch — like Workers — is
	// excluded from the journal key.
	Batch int
	// Stats, when non-nil, accumulates lane-engine scheduling counters
	// (shortcut / lockstep / retired-to-scalar lanes) across the
	// campaign. It is a side channel rather than a Result field
	// precisely so the Result stays bit-identical across batch widths.
	Stats *BatchStats
	// Observer, when non-nil, receives every classified trial record:
	// newly executed records in worker-completion order and
	// resumed-from-journal records in index order, each exactly once
	// per RunContext invocation. It is called from worker goroutines
	// and must be safe for concurrent use — the streaming results
	// plane (internal/stream) plugs in here. The hook is strictly
	// observational: it cannot alter outcomes, the Result, or journal
	// bytes, and — like Workers — it is excluded from the journal key.
	Observer func(TrialRecord)
}

// DefaultBatch is the default lane width of the batched trial engine.
// Wide enough to amortize the shared golden-replay cursor across the
// batch, narrow enough that a campaign of a few hundred trials still
// spreads across a worker pool.
const DefaultBatch = 32

// BatchStats aggregates fault.BatchStats across a campaign's worker
// batches. Safe for concurrent use; read it after the campaign
// returns.
type BatchStats struct {
	lanes, shortcut, lockstep, retired atomic.Uint64
}

// add folds one kernel invocation's counters in. A nil receiver
// ignores the sample so callers can pass Spec.Stats through unchecked.
func (s *BatchStats) add(b fault.BatchStats) {
	if s == nil {
		return
	}
	s.lanes.Add(b.Lanes)
	s.shortcut.Add(b.Shortcut)
	s.lockstep.Add(b.Lockstep)
	s.retired.Add(b.Retired)
}

// Lanes returns the number of trials classified by batch kernels.
func (s *BatchStats) Lanes() uint64 { return s.lanes.Load() }

// Shortcut returns the lanes classified statically against the golden
// run, without emulating an instruction.
func (s *BatchStats) Shortcut() uint64 { return s.shortcut.Load() }

// Lockstep returns the lanes that completed inside the lockstep group.
func (s *BatchStats) Lockstep() uint64 { return s.lockstep.Load() }

// Retired returns the lanes that retired to the scalar finishing path.
func (s *BatchStats) Retired() uint64 { return s.retired.Load() }

// RetiredFrac returns the fraction of batch lanes that retired to the
// scalar path (0 when no lanes ran batched).
func (s *BatchStats) RetiredFrac() float64 {
	if n := s.lanes.Load(); n > 0 {
		return float64(s.retired.Load()) / float64(n)
	}
	return 0
}

// Normalized returns the spec with every default applied — the exact
// spec a campaign runs under. Exported for the distributed fabric,
// which must know the defaulted trial count (and batch width) to split
// the trial space without re-implementing the defaulting rules.
// Idempotent: Normalized(Normalized(s)) == Normalized(s).
func (s Spec) Normalized() Spec { return s.withDefaults() }

func (s Spec) withDefaults() Spec {
	if s.Scheme == "" {
		s.Scheme = SchemeUnSync
	}
	if s.Trials == 0 {
		s.Trials = 100
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.MaxSteps == 0 {
		s.MaxSteps = 1_000_000
	}
	if s.StepBudget == 0 {
		s.StepBudget = 4 * s.MaxSteps
	}
	if len(s.Spaces) == 0 {
		s.Spaces = AllSpaces()
	}
	if s.Coverage == nil {
		switch s.Scheme {
		case SchemeReunion:
			s.Coverage = fault.ReunionCoverage()
		default:
			s.Coverage = fault.UnSyncCoverage()
		}
	}
	if s.FI == 0 {
		s.FI = 10
	}
	if s.Z == 0 {
		s.Z = 1.96
	}
	if s.Retries == 0 {
		s.Retries = 1
	}
	if s.Retries < 0 {
		s.Retries = 0
	}
	if s.Batch == 0 {
		s.Batch = DefaultBatch
	}
	if s.Batch < 1 {
		s.Batch = 1
	}
	return s
}

// AllSpaces returns every injectable fault space.
func AllSpaces() []fault.Space {
	out := make([]fault.Space, 0, fault.NumSpaces)
	for sp := fault.Space(0); sp < fault.NumSpaces; sp++ {
		out = append(out, sp)
	}
	return out
}

// Result is the aggregated campaign outcome. Every field derives
// deterministically from (program, Spec), so an interrupted-and-resumed
// campaign reproduces the uninterrupted Result bit for bit.
type Result struct {
	Scheme    string
	Prog      string // program hash
	Seed      uint64
	Requested int  // Spec.Trials
	Ran       int  // trials evaluated (early stopping may cut below Requested)
	Failed    int  // trials that errored even after retries (excluded from Tally)
	EarlyStop bool // the Wilson interval narrowed below Spec.CIWidth

	Tally   fault.CampaignResult
	BySpace map[string]fault.CampaignResult

	// Events mirrors the Tally under the repository-wide counter
	// taxonomy (internal/events), so campaign outcomes surface on the
	// same /metrics and BENCH.json paths as pipeline counters. Derived
	// purely from the final Tally, never from scheduling order, so a
	// resumed campaign reproduces it bit for bit.
	Events events.Counts

	// SDCRate is SDC / successful trials, with its Wilson interval.
	SDCRate      float64
	SDCLo, SDCHi float64
}

// ErrInterrupted reports a campaign aborted by Spec.StopAfter; the
// Result returned alongside holds the partial tally.
var ErrInterrupted = errors.New("campaign: interrupted")

// ErrKeyMismatch reports a resume pointed at a checkpoint journal whose
// records were written under a different params key: the journaled
// trials belong to a different program, scheme, seed, space set, budget
// or trial timeout, so none of them can satisfy this campaign.
var ErrKeyMismatch = errors.New("campaign: checkpoint params key mismatch")

// describeForeign summarizes the foreign keys found in a mismatched
// journal, sorted so the message is stable.
func describeForeign(foreign map[string]int) string {
	keys := make([]string, 0, len(foreign))
	//unsync:allow-maprange keys are sorted immediately below; order-independent
	for k := range foreign {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += foreign[k]
	}
	const show = 3
	shown := keys
	more := ""
	if len(shown) > show {
		shown = shown[:show]
		more = fmt.Sprintf(" (+%d more)", len(keys)-show)
	}
	return fmt.Sprintf("%d record(s) under key(s) %s%s", total, strings.Join(shown, ", "), more)
}

// roundSize is the early-stopping granularity. It is a fixed constant —
// not derived from Workers — so the stopping point, and therefore the
// Result, is identical for any worker count.
const roundSize = 64

// Run executes the campaign. The error joins every per-trial failure
// (and ErrInterrupted when StopAfter fired); the Result is always
// meaningful — partial if interrupted, complete otherwise.
func Run(prog *asm.Program, spec Spec) (Result, error) {
	return RunContext(context.Background(), prog, spec)
}

// RunContext is Run under a context. Cancelling ctx degrades the
// campaign instead of aborting it: scheduling stops within one trial
// quantum, in-flight trials are interrupted (they observe ctx through
// the trial runners), every completed trial is already flushed to the
// checkpoint journal, and the partial Result comes back alongside
// errors.Join(ErrInterrupted, cause) — so a cancelled campaign is a
// resumable checkpoint, not a wasted run.
func RunContext(ctx context.Context, prog *asm.Program, spec Spec) (Result, error) {
	spec = spec.withDefaults()
	res := Result{
		Scheme:    spec.Scheme,
		Seed:      spec.Seed,
		Requested: spec.Trials,
		BySpace:   make(map[string]fault.CampaignResult),
	}
	if spec.Scheme != SchemeUnSync && spec.Scheme != SchemeReunion {
		return res, fmt.Errorf("campaign: unknown scheme %q (want %s or %s)",
			spec.Scheme, SchemeUnSync, SchemeReunion)
	}
	for _, sp := range spec.Spaces {
		if sp >= fault.NumSpaces {
			return res, fmt.Errorf("campaign: invalid space %d", sp)
		}
	}

	g, err := fault.Golden(prog, spec.MaxSteps)
	if err != nil {
		return res, err
	}
	res.Prog = ProgHash(prog)
	key := spec.Key(res.Prog)

	var loaded map[int]TrialRecord
	var journal *journalWriter
	if spec.Checkpoint != "" {
		if spec.Resume {
			var foreign map[string]int
			loaded, foreign, err = loadJournal(spec.Checkpoint, key)
			if err != nil {
				return res, err
			}
			if len(loaded) == 0 && len(foreign) > 0 {
				// The journal holds records — just none for this campaign.
				// Starting fresh here would silently discard the work the
				// user pointed -resume at: the flags (or the program) no
				// longer match the journaled params key. Fail loudly.
				return res, fmt.Errorf("%w: journal %s holds %s but none for params key %s — the program, scheme, seed, spaces, budgets or trial timeout differ from the journaled run (re-run with the original flags, or drop -resume to start fresh against a new journal)",
					ErrKeyMismatch, spec.Checkpoint, describeForeign(foreign), key)
			}
		}
		journal, err = openJournal(spec.Checkpoint)
		if err != nil {
			return res, err
		}
		defer journal.close()
	}

	recs := make([]*TrialRecord, spec.Trials)
	newly := 0 // trials executed (not resumed) by this invocation
	interrupted := false
	for lo := 0; lo < spec.Trials && !interrupted; lo += roundSize {
		hi := lo + roundSize
		if hi > spec.Trials {
			hi = spec.Trials
		}
		var todo []int
		for i := lo; i < hi; i++ {
			if r, ok := loaded[i]; ok {
				r := r
				recs[i] = &r
				// Resumed records replay through the observer so a
				// streaming plane sees the whole campaign, not just the
				// tail executed after the restart; its dedupe absorbs
				// any overlap with an already-captured DLQ entry.
				if spec.Observer != nil {
					spec.Observer(r)
				}
			} else {
				todo = append(todo, i)
			}
		}
		if spec.StopAfter > 0 && newly+len(todo) > spec.StopAfter {
			todo = todo[:spec.StopAfter-newly]
			interrupted = true
		}
		// Workers claim trials in batches of up to Spec.Batch lanes.
		// sweep.MapContext recovers per-batch panics into indexed
		// errors (one corrupted trial cannot take down the campaign)
		// and stops scheduling batches once ctx is cancelled or a
		// batch panics.
		chunks := chunkIndices(todo, spec.Batch)
		out, mapErr := sweep.MapContext(ctx, chunks, spec.Workers, func(ctx context.Context, chunk []int) ([]TrialRecord, error) {
			crecs, err := runTrialChunk(ctx, prog, g, spec, key, chunk)
			// Journal every classified lane — including the ones a
			// cancelled batch completed before the interrupt — in
			// trial-index order, so the journal byte stream is
			// identical across batch widths.
			for j := range crecs {
				if crecs[j].Key == "" {
					continue
				}
				if spec.Observer != nil {
					spec.Observer(crecs[j])
				}
				if journal == nil {
					continue
				}
				if jerr := journal.append(crecs[j]); jerr != nil {
					return crecs, jerr
				}
			}
			return crecs, err
		})
		cancelled := ctx.Err() != nil
		for k, chunk := range chunks {
			for j, i := range chunk {
				if k >= len(out) || j >= len(out[k]) {
					continue
				}
				rec := out[k][j]
				if rec.Key == "" {
					// No record: the trial was cancelled, never scheduled
					// (sweep aborted), or panicked before producing one.
					// Under cancellation these are simply not-run; after a
					// panic the campaign returns below with mapErr naming
					// the failed batch, so either way the index stays nil
					// and is excluded from the tally.
					continue
				}
				recs[i] = &rec
			}
		}
		newly += len(todo)
		if mapErr != nil || cancelled {
			done := 0
			for _, r := range recs {
				if r != nil {
					done++
				}
			}
			aggErr := res.finish(recs, done, spec)
			if cancelled {
				return res, errors.Join(ErrInterrupted, context.Cause(ctx), mapErr, aggErr)
			}
			return res, errors.Join(mapErr, aggErr)
		}
		if interrupted {
			break
		}
		res.Ran = hi
		if spec.CIWidth > 0 {
			k, n := sdcOf(recs[:hi])
			if lo95, hi95 := stats.Wilson(k, n, spec.Z); n > 0 && hi95-lo95 < spec.CIWidth {
				res.EarlyStop = true
				break
			}
		}
	}

	if interrupted {
		// Graceful degradation: tally what completed, then report the
		// interruption alongside any per-trial errors.
		done := 0
		for _, r := range recs {
			if r != nil {
				done++
			}
		}
		err := res.finish(recs, done, spec)
		return res, errors.Join(ErrInterrupted, err)
	}
	return res, res.finish(recs, res.Ran, spec)
}

// finish aggregates the first `ran` trial records into the Result in
// index order (never worker-completion order) and returns the joined
// per-trial errors.
func (r *Result) finish(recs []*TrialRecord, ran int, spec Spec) error {
	r.Ran = ran
	var errs []error
	seen := 0
	for i := 0; i < len(recs) && seen < ran; i++ {
		rec := recs[i]
		if rec == nil {
			continue
		}
		seen++
		if rec.Err != "" {
			r.Failed++
			if len(rec.AttemptErrs) > 0 {
				// Surface the full retry chain, not just the terminal
				// attempt — each reseeded site failed differently and
				// the earlier causes are what make the failure
				// diagnosable.
				errs = append(errs, fmt.Errorf("campaign: trial %d: %s [%s]",
					rec.Index, rec.Err, strings.Join(rec.AttemptErrs, "; ")))
			} else {
				errs = append(errs, fmt.Errorf("campaign: trial %d: %s", rec.Index, rec.Err))
			}
			continue
		}
		o, ok := fault.OutcomeByName(rec.Outcome)
		if !ok {
			r.Failed++
			errs = append(errs, fmt.Errorf("campaign: trial %d: bad journaled outcome %q", rec.Index, rec.Outcome))
			continue
		}
		r.Tally.Add(o)
		by := r.BySpace[rec.Space]
		by.Add(o)
		r.BySpace[rec.Space] = by
	}
	if n := uint64(r.Tally.Trials); n > 0 {
		r.SDCRate = float64(r.Tally.SDC) / float64(n)
		r.SDCLo, r.SDCHi = stats.Wilson(uint64(r.Tally.SDC), n, spec.Z)
	} else {
		r.SDCLo, r.SDCHi = stats.Wilson(0, 0, spec.Z)
	}
	r.Events = events.Counts{
		events.CampaignTrials:        uint64(r.Tally.Trials),
		events.CampaignBenign:        uint64(r.Tally.Benign),
		events.CampaignRecovered:     uint64(r.Tally.Recovered),
		events.CampaignUnrecoverable: uint64(r.Tally.Unrecoverable),
		events.CampaignSDC:           uint64(r.Tally.SDC),
		events.CampaignHang:          uint64(r.Tally.Hangs),
	}
	return errors.Join(errs...)
}

// sdcOf counts (SDC trials, successful trials) over a record prefix.
func sdcOf(recs []*TrialRecord) (k, n uint64) {
	for _, rec := range recs {
		if rec == nil || rec.Err != "" {
			continue
		}
		n++
		if rec.Outcome == fault.OutcomeSDC.String() {
			k++
		}
	}
	return k, n
}

// errTrialTimeout is the cancellation cause of a per-trial wall-clock
// expiry, distinguishable from the campaign's own cancellation.
var errTrialTimeout = errors.New("campaign: trial wall-clock timeout")

// executeTrial is the trial executor; a package variable so tests can
// inject harness failures (execute itself cannot fail for derived
// sites, which are valid by construction).
var executeTrial = execute

// runTrial executes one trial, retrying with a reseeded site on harness
// (non-outcome) errors. It returns a record for every completed trial —
// on repeated harness failure the record carries the last error plus
// the full per-attempt chain (AttemptErrs: each attempt's reseeded
// site and its cause, so no earlier failure is lost to the retry
// loop) — and a wall-clock watchdog expiry (Spec.TrialTimeout) is
// classified OutcomeHang like a step-budget livelock. The returned
// error is non-nil only when ctx was cancelled mid-trial: the trial has
// no outcome and must not be journaled or tallied.
func runTrial(ctx context.Context, prog *asm.Program, g *emu.Machine, spec Spec, key string, idx int) (TrialRecord, error) {
	rec := TrialRecord{Key: key, Prog: ProgHash(prog), Seed: spec.Seed, Index: idx}
	var lastErr error
	var chain []string
	for attempt := 0; attempt <= spec.Retries; attempt++ {
		step, f := deriveSite(spec, g.InstCount, prog, idx, attempt)
		tctx := ctx
		var cancel context.CancelFunc
		if spec.TrialTimeout > 0 {
			tctx, cancel = context.WithTimeoutCause(ctx, spec.TrialTimeout, errTrialTimeout)
		}
		o, detected, err := executeTrial(tctx, prog, g, spec, step, f)
		if cancel != nil {
			cancel()
		}
		rec.Space = f.Space.String()
		rec.Reg = f.Index
		rec.Bit = f.Bit
		rec.Addr = f.Addr
		rec.Step = step
		rec.Detected = detected
		rec.Attempts = attempt + 1
		if err == nil {
			rec.Outcome = o.String()
			return rec, nil
		}
		if errors.Is(err, errTrialTimeout) {
			// The wall-clock watchdog fired while the campaign itself is
			// still live: the trial is a hang, exactly as if the step
			// budget had been exhausted.
			rec.Outcome = fault.OutcomeHang.String()
			return rec, nil
		}
		if cerr := context.Cause(ctx); cerr != nil {
			return rec, cerr
		}
		lastErr = err
		chain = append(chain, fmt.Sprintf("attempt %d (space=%s reg=%d bit=%d addr=%#x step=%d): %v",
			attempt+1, rec.Space, rec.Reg, rec.Bit, rec.Addr, rec.Step, err))
	}
	rec.Err = lastErr.Error()
	rec.AttemptErrs = chain
	return rec, nil
}

// chunkIndices groups trial indices into batches of at most width,
// preserving index order.
func chunkIndices(idxs []int, width int) [][]int {
	if width < 1 {
		width = 1
	}
	out := make([][]int, 0, (len(idxs)+width-1)/width)
	for lo := 0; lo < len(idxs); lo += width {
		hi := lo + width
		if hi > len(idxs) {
			hi = len(idxs)
		}
		out = append(out, idxs[lo:hi])
	}
	return out
}

// runTrialChunk executes a group of trials through the batched lane
// kernels. The scalar runTrial path handles chunk width 1, wall-clock
// watchdog campaigns (a per-lane deadline cannot be enforced inside a
// shared kernel), and any lane the kernel hands back with a harness
// error — preserving the scalar retry-with-reseed contract exactly.
// The returned slice parallels chunk; a zero record (empty Key) means
// the trial was interrupted before classification and must not be
// journaled or tallied.
func runTrialChunk(ctx context.Context, prog *asm.Program, g *emu.Machine, spec Spec, key string, chunk []int) ([]TrialRecord, error) {
	recs := make([]TrialRecord, len(chunk))
	if len(chunk) == 1 || spec.Batch <= 1 || spec.TrialTimeout > 0 {
		for j, i := range chunk {
			rec, err := runTrial(ctx, prog, g, spec, key, i)
			if err != nil {
				return recs, err
			}
			recs[j] = rec
		}
		return recs, nil
	}

	// Derive every lane's site (attempt 0, exactly as the scalar path
	// starts) and resolve detection from the coverage map, mirroring
	// execute(). ECC-covered Reunion strikes are corrected before
	// execution ever observes them, so they classify inline.
	hash := ProgHash(prog)
	kTrials := make([]fault.BatchTrial, 0, len(chunk))
	kPos := make([]int, 0, len(chunk)) // kernel lane -> position in chunk
	pending := make([]TrialRecord, 0, len(chunk))
	for j, i := range chunk {
		step, f := deriveSite(spec, g.InstCount, prog, i, 0)
		rec := TrialRecord{
			Key: key, Prog: hash, Seed: spec.Seed, Index: i,
			Space: f.Space.String(), Reg: f.Index, Bit: f.Bit, Addr: f.Addr,
			Step: step, Attempts: 1,
		}
		det := spec.Coverage.Detects(f.Space)
		bt := fault.BatchTrial{Step: step, Flip: f}
		if spec.Scheme == SchemeReunion {
			switch det {
			case fault.DetectECC:
				rec.Detected = true
				rec.Outcome = fault.OutcomeRecovered.String()
				recs[j] = rec
				continue
			case fault.DetectFingerprint:
				bt.Transient = true
				bt.Detected = true
			default:
				bt.Detected = det != fault.DetectNone
			}
		} else {
			bt.Detected = det != fault.DetectNone
		}
		rec.Detected = bt.Detected
		kTrials = append(kTrials, bt)
		kPos = append(kPos, j)
		pending = append(pending, rec)
	}
	if len(kTrials) == 0 {
		return recs, nil
	}

	opts := fault.TrialOpts{MaxSteps: spec.MaxSteps, StepBudget: spec.StepBudget, Golden: g, Ctx: ctx}
	var out []fault.BatchResult
	var bs fault.BatchStats
	var kerr error
	if spec.Scheme == SchemeReunion {
		out, bs, kerr = fault.ReunionTrialBatch(prog, kTrials, spec.FI, opts)
	} else {
		out, bs, kerr = fault.UnSyncTrialBatch(prog, kTrials, opts)
	}
	spec.Stats.add(bs)

	for k := range out {
		j := kPos[k]
		switch {
		case out[k].Err != nil:
			// The kernel could not classify the lane (an invalid site,
			// unreachable for derived sites): the scalar path owns it,
			// including retries.
			rec, err := runTrial(ctx, prog, g, spec, key, chunk[j])
			if err != nil {
				return recs, err
			}
			recs[j] = rec
		case out[k].Done:
			rec := pending[k]
			rec.Outcome = out[k].Outcome.String()
			recs[j] = rec
		}
	}
	return recs, kerr
}

// execute runs one derived site through the scheme's recovery
// semantics, resolving detection from the coverage map.
func execute(ctx context.Context, prog *asm.Program, g *emu.Machine, spec Spec, step uint64, f fault.Flip) (fault.Outcome, bool, error) {
	opts := fault.TrialOpts{MaxSteps: spec.MaxSteps, StepBudget: spec.StepBudget, Golden: g, Ctx: ctx}
	det := spec.Coverage.Detects(f.Space)
	switch spec.Scheme {
	case SchemeReunion:
		switch det {
		case fault.DetectFingerprint:
			// Inside Reunion's ROEC: the corruption is in flight and
			// the window comparison catches it before commit.
			o, err := fault.RunReunionTrial(prog, step, f, true, spec.FI, opts)
			return o, true, err
		case fault.DetectECC:
			// SECDED corrects the single-bit upset at the next access;
			// execution never observes it.
			return fault.OutcomeRecovered, true, nil
		default:
			// Outside the ROEC: a persistent state upset that rollback
			// cannot scrub.
			o, err := fault.RunReunionTrial(prog, step, f, false, spec.FI, opts)
			return o, det != fault.DetectNone, err
		}
	default: // SchemeUnSync
		detected := det != fault.DetectNone
		o, err := fault.RunUnSyncTrial(prog, step, f, detected, opts)
		return o, detected, err
	}
}

// deriveSite maps (seed, trial index, attempt) to a fault site through
// a private splitmix64 stream. Sites are independent per trial — no
// shared stream — so any subset of trials can run in any order, on any
// number of workers, and reproduce identically. Every drawn flip is in
// range by construction and passes fault.Flip.Validate.
func deriveSite(spec Spec, instCount uint64, prog *asm.Program, idx, attempt int) (uint64, fault.Flip) {
	r := newSiteRNG(spec.Seed, idx, attempt)
	step := r.next() % instCount
	f := fault.Flip{Space: spec.Spaces[r.next()%uint64(len(spec.Spaces))]}
	switch f.Space {
	case fault.SpaceIntReg:
		f.Index = uint8(1 + r.next()%uint64(isa.NumRegs-1))
		f.Bit = uint8(r.next() % 64)
	case fault.SpaceFPReg:
		f.Index = uint8(r.next() % uint64(isa.NumRegs))
		f.Bit = uint8(r.next() % 64)
	case fault.SpacePC:
		f.Bit = uint8(r.next() % 6)
	case fault.SpaceMem:
		span := uint64(len(prog.Data))
		if span == 0 {
			span = 8
		}
		f.Addr = prog.DataBase + r.next()%span
		f.Bit = uint8(r.next() % 64)
	case fault.SpaceCB:
		f.Bit = uint8(r.next() % 64)
	}
	return step, f
}

// siteRNG is a splitmix64 stream; unlike fault.Arrivals it is keyed per
// (seed, index, attempt) so trials never share state.
type siteRNG struct{ s uint64 }

func newSiteRNG(seed uint64, idx, attempt int) *siteRNG {
	s := seed ^ 0x9e3779b97f4a7c15
	s = mix64(s + uint64(idx)*0xbf58476d1ce4e5b9)
	s = mix64(s + uint64(attempt)*0x94d049bb133111eb)
	return &siteRNG{s: s}
}

func (r *siteRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return mix64(r.s)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ProgHash is a stable content hash of an assembled program — the
// checkpoint key component that ties journaled trials to the exact
// workload they ran.
func ProgHash(p *asm.Program) string {
	h := sha256.New()
	for _, in := range p.Insts {
		fmt.Fprintf(h, "%d %d %d %d %d\n", in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm)
	}
	fmt.Fprintf(h, "@%d\n", p.DataBase)
	h.Write(p.Data)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Key fingerprints everything that affects a trial's derivation and
// semantics. Journaled records from a different key never satisfy a
// resume — a changed program, seed, coverage or budget re-runs cleanly.
// Trials, CIWidth, Workers and Batch are deliberately excluded: they
// select which trials run and how they are scheduled, not what any one
// trial computes (batch kernels classify bit-identically to the scalar
// path), so a journal remains valid across them. TrialTimeout IS included: with a wall
// clock in play a trial's outcome can depend on host speed, so a
// resume must not mix records from runs with different deadlines.
//
// Exported because the distributed fabric (internal/fabric) uses the
// key as the lease-protocol contract: a worker recomputes it from the
// shard request's params and refuses ranges whose key disagrees.
//
// The spec is normalized (withDefaults) before hashing, so a raw spec
// and its defaulted form derive the same key: the coordinator, the
// worker and the journal all agree regardless of which fields were
// spelled out.
func (s Spec) Key(progHash string) string {
	s = s.withDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d|%d|%d|", progHash, s.Scheme, s.Seed, s.MaxSteps, s.StepBudget, s.FI, int64(s.TrialTimeout))
	for _, sp := range s.Spaces {
		fmt.Fprintf(h, "%d,", sp)
	}
	h.Write([]byte("|"))
	targets := make([]int, 0, len(s.Coverage))
	//unsync:allow-maprange keys are sorted before hashing; order-independent
	for t := range s.Coverage {
		targets = append(targets, int(t))
	}
	sort.Ints(targets)
	for _, t := range targets {
		fmt.Fprintf(h, "%d=%d,", t, s.Coverage[fault.Target(t)])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
