package campaign

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/fault"
)

// collector is a concurrency-safe Spec.Observer that records every
// delivery.
type collector struct {
	mu   sync.Mutex
	recs []TrialRecord
}

func (c *collector) observe(r TrialRecord) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

func (c *collector) byIndex() map[int]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	counts := make(map[int]int)
	for _, r := range c.recs {
		counts[r.Index]++
	}
	return counts
}

// The observer sees every classified trial exactly once per
// invocation, and wiring it changes neither the Result nor what runs.
func TestObserverSeesEveryTrialOnce(t *testing.T) {
	prog := mustProg(t, testProgram)
	spec := Spec{
		Scheme:   SchemeUnSync,
		Trials:   60,
		Seed:     7,
		MaxSteps: 20_000,
		Workers:  4,
	}
	want, err := Run(prog, spec)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}

	var c collector
	spec.Observer = c.observe
	got, err := Run(prog, spec)
	if err != nil {
		t.Fatalf("observed run: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("observer changed the Result:\nplain:    %+v\nobserved: %+v", want, got)
	}
	counts := c.byIndex()
	if len(counts) != got.Ran {
		t.Fatalf("observer saw %d distinct trials, campaign ran %d", len(counts), got.Ran)
	}
	for i := 0; i < got.Ran; i++ {
		if counts[i] != 1 {
			t.Fatalf("trial %d delivered %d times, want exactly once", i, counts[i])
		}
	}
}

// A resumed campaign replays journaled records through the observer
// (in index order) before running the remainder, so a streaming plane
// attached after a restart still sees the whole campaign.
func TestObserverReplaysResumedRecords(t *testing.T) {
	prog := mustProg(t, testProgram)
	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	spec := Spec{
		Scheme:     SchemeUnSync,
		Trials:     60,
		Seed:       7,
		MaxSteps:   20_000,
		Workers:    2,
		Checkpoint: ck,
	}
	killed := spec
	killed.StopAfter = 25
	if _, err := Run(prog, killed); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("StopAfter run: %v, want ErrInterrupted", err)
	}

	var c collector
	resumed := spec
	resumed.Resume = true
	resumed.Observer = c.observe
	res, err := Run(prog, resumed)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	counts := c.byIndex()
	if len(counts) != res.Ran {
		t.Fatalf("observer saw %d distinct trials over the resumed run, campaign ran %d", len(counts), res.Ran)
	}
	for i, n := range counts {
		if n != 1 {
			t.Fatalf("trial %d delivered %d times on resume, want exactly once", i, n)
		}
	}
}

// When every retry-with-reseed attempt fails, the record must carry
// the complete per-attempt error chain — each attempt's reseeded site
// and cause — and the campaign error must surface it. This pins the
// bugfix: before, only the terminal attempt's error survived.
func TestRetryExhaustedPreservesAttemptChain(t *testing.T) {
	prog := mustProg(t, testProgram)
	orig := executeTrial
	defer func() { executeTrial = orig }()
	executeTrial = func(ctx context.Context, prog *asm.Program, g *emu.Machine, spec Spec, step uint64, f fault.Flip) (fault.Outcome, bool, error) {
		return 0, false, fmt.Errorf("injected harness fault at step %d", step)
	}

	var c collector
	spec := Spec{
		Scheme:   SchemeUnSync,
		Trials:   3,
		Seed:     7,
		MaxSteps: 20_000,
		Workers:  1,
		Batch:    1, // scalar path: the retry loop under test
		Retries:  2,
		Observer: c.observe,
	}
	res, err := Run(prog, spec)
	if err == nil {
		t.Fatal("campaign with a always-failing executor returned no error")
	}
	if res.Failed != 3 {
		t.Fatalf("Failed=%d, want all 3 trials", res.Failed)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.recs) != 3 {
		t.Fatalf("observer saw %d records, want 3", len(c.recs))
	}
	for _, r := range c.recs {
		if r.Err == "" {
			t.Fatalf("trial %d lost its terminal error", r.Index)
		}
		if r.Attempts != 3 {
			t.Fatalf("trial %d ran %d attempts, want Retries+1 = 3", r.Index, r.Attempts)
		}
		if len(r.AttemptErrs) != 3 {
			t.Fatalf("trial %d chain holds %d attempts, want 3: %v", r.Index, len(r.AttemptErrs), r.AttemptErrs)
		}
		for i, line := range r.AttemptErrs {
			if !strings.Contains(line, fmt.Sprintf("attempt %d ", i+1)) {
				t.Fatalf("chain entry %d misnumbered: %q", i, line)
			}
			if !strings.Contains(line, "space=") || !strings.Contains(line, "injected harness fault") {
				t.Fatalf("chain entry lost the reseeded site or cause: %q", line)
			}
		}
		// Reseeding must actually vary the site across attempts — the
		// chain is only diagnostic if each line names a different draw.
		if r.AttemptErrs[0] == r.AttemptErrs[1] && r.AttemptErrs[1] == r.AttemptErrs[2] {
			t.Fatalf("trial %d: every attempt drew the identical site: %v", r.Index, r.AttemptErrs)
		}
	}

	// The joined campaign error carries the chain, not just the tail.
	if msg := err.Error(); !strings.Contains(msg, "attempt 1 ") || !strings.Contains(msg, "; attempt 2 ") {
		t.Fatalf("campaign error dropped the attempt chain: %s", msg)
	}
}

// The attempt chain survives the journal round trip, so a resumed
// campaign (and the DLQ replaying a sidecar) still has every cause.
func TestAttemptChainSurvivesJournal(t *testing.T) {
	prog := mustProg(t, testProgram)
	orig := executeTrial
	defer func() { executeTrial = orig }()
	executeTrial = func(ctx context.Context, prog *asm.Program, g *emu.Machine, spec Spec, step uint64, f fault.Flip) (fault.Outcome, bool, error) {
		return 0, false, errors.New("injected harness fault")
	}

	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	spec := Spec{
		Scheme:     SchemeUnSync,
		Trials:     2,
		Seed:       7,
		MaxSteps:   20_000,
		Workers:    1,
		Batch:      1,
		Checkpoint: ck,
	}
	if _, err := Run(prog, spec); err == nil {
		t.Fatal("failing campaign returned no error")
	}

	key := spec.Key(ProgHash(prog))
	loaded, _, err := loadJournal(ck, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("journal recovered %d records, want 2", len(loaded))
	}
	for i, r := range loaded {
		if len(r.AttemptErrs) != 2 { // default Retries=1 → 2 attempts
			t.Fatalf("journaled trial %d chain: %v, want 2 attempts", i, r.AttemptErrs)
		}
	}
}
