package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// TrialRecord is one journaled trial outcome. It is both the JSONL
// checkpoint line and the unit the aggregator consumes: everything a
// resumed campaign needs to reproduce the trial's contribution to the
// final Result without re-running it.
type TrialRecord struct {
	// Key identifies the campaign this record belongs to (Spec.key):
	// a hash over program, scheme, seed and every parameter that
	// changes what an individual trial computes. Records with a
	// different key in the same journal file are ignored on resume.
	Key  string `json:"key"`
	Prog string `json:"prog"`
	Seed uint64 `json:"seed"`
	// Index is the trial's position in the campaign's deterministic
	// trial sequence; (Key, Index) uniquely identifies a trial.
	Index int `json:"i"`

	// Fault site, as derived by deriveSite for this index.
	Space string `json:"space"`
	Reg   uint8  `json:"reg,omitempty"`
	Bit   uint8  `json:"bit"`
	Addr  uint64 `json:"addr,omitempty"`
	Step  uint64 `json:"step"`

	// Detected records the coverage-map resolution for the site.
	Detected bool `json:"detected"`
	// Attempts counts harness executions (1 = no retry needed).
	Attempts int `json:"attempts"`
	// Outcome is the fault.Outcome string, empty if the trial failed.
	Outcome string `json:"outcome,omitempty"`
	// Err carries the final harness error after retries, if any.
	Err string `json:"err,omitempty"`
	// AttemptErrs is the full per-attempt error chain behind Err, one
	// entry per failed retry-with-reseed attempt (its reseeded site and
	// cause). Journaled so a resumed run — and the dead-letter queue —
	// keeps every attempt's failure, not just the terminal one.
	AttemptErrs []string `json:"attempt_errs,omitempty"`
}

// Equal reports whether two records are identical field-for-field —
// the bit-identity check behind replay dedupe (internal/stream) and
// the fabric's duplicate-arrival verification. TrialRecord stopped
// being ==-comparable when AttemptErrs made it carry a slice; this is
// the comparison call sites use instead.
func (r TrialRecord) Equal(o TrialRecord) bool {
	if len(r.AttemptErrs) != len(o.AttemptErrs) {
		return false
	}
	for i := range r.AttemptErrs {
		if r.AttemptErrs[i] != o.AttemptErrs[i] {
			return false
		}
	}
	return r.Key == o.Key && r.Prog == o.Prog && r.Seed == o.Seed && r.Index == o.Index &&
		r.Space == o.Space && r.Reg == o.Reg && r.Bit == o.Bit && r.Addr == o.Addr &&
		r.Step == o.Step && r.Detected == o.Detected && r.Attempts == o.Attempts &&
		r.Outcome == o.Outcome && r.Err == o.Err
}

// loadJournal reads a JSONL checkpoint and returns the records whose
// Key matches key, indexed by trial index, plus a count of well-formed
// records carrying each other key seen in the file. A missing file is
// not an error (nothing to resume). Unparseable lines — typically one
// partial trailing line from a killed writer — are skipped, not fatal:
// resume must tolerate exactly the interruptions it exists for.
func loadJournal(path, key string) (map[int]TrialRecord, map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[int]TrialRecord{}, nil, nil
		}
		return nil, nil, fmt.Errorf("campaign: open checkpoint: %w", err)
	}
	defer f.Close()

	recs := make(map[int]TrialRecord)
	foreign := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec TrialRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn write from a killed run
		}
		if rec.Key != key {
			if rec.Key != "" {
				foreign[rec.Key]++
			}
			continue
		}
		recs[rec.Index] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	return recs, foreign, nil
}

// journalWriter appends TrialRecords to a JSONL file. Appends are
// serialized by a mutex because trials complete concurrently on the
// worker pool; each record is written as one line so a kill can tear
// at most the final line.
type journalWriter struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// openJournal opens (creating if needed) the checkpoint file for
// appending.
func openJournal(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint for append: %w", err)
	}
	return &journalWriter{f: f, w: bufio.NewWriter(f)}, nil
}

// append journals one record and flushes it to the OS, so a completed
// trial survives a kill of the campaign process.
func (j *journalWriter) append(rec TrialRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: marshal trial record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("campaign: journal trial %d: %w", rec.Index, err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("campaign: flush journal: %w", err)
	}
	return nil
}

// close flushes and closes the underlying file.
func (j *journalWriter) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
