package campaign

import (
	"context"
	"fmt"
	"sync"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/sweep"
)

// RunShard executes the trial range [lo, hi) of a campaign, skipping
// the indices in skip, and hands every classified TrialRecord to emit.
// It is the worker half of the distributed campaign fabric: a shard is
// just a contiguous slice of the deterministic trial sequence, so any
// worker can run any range — sites derive from (Seed, index, attempt)
// alone — and the records it emits are bit-identical to the ones a
// single-node run would journal for the same indices.
//
// emit is called exactly once per classified trial, serialized (never
// concurrently), in trial-index order within each worker chunk but in
// completion order across chunks — the same ordering contract as the
// single-node checkpoint journal under multiple workers. An emit error
// aborts the shard. Spec.Checkpoint, Resume, CIWidth and StopAfter are
// ignored: journaling, dedupe and stopping policy belong to the
// coordinator, not the shard.
//
// The returned error is non-nil when the shard was cut short (context
// cancellation, a panicking batch, or an emit failure): some records
// may have been emitted, none were lost. Per-trial harness failures do
// NOT abort the shard — they are emitted as records carrying Err,
// exactly as the single-node path journals them.
func RunShard(ctx context.Context, prog *asm.Program, spec Spec, lo, hi int, skip map[int]bool, emit func(TrialRecord) error) error {
	spec = spec.withDefaults()
	if spec.Scheme != SchemeUnSync && spec.Scheme != SchemeReunion {
		return fmt.Errorf("campaign: unknown scheme %q (want %s or %s)",
			spec.Scheme, SchemeUnSync, SchemeReunion)
	}
	for _, sp := range spec.Spaces {
		if sp >= fault.NumSpaces {
			return fmt.Errorf("campaign: invalid space %d", sp)
		}
	}
	if lo < 0 || hi > spec.Trials || lo > hi {
		return fmt.Errorf("campaign: shard range [%d, %d) outside trial space [0, %d)", lo, hi, spec.Trials)
	}

	g, err := fault.Golden(prog, spec.MaxSteps)
	if err != nil {
		return err
	}
	key := spec.Key(ProgHash(prog))

	var todo []int
	for i := lo; i < hi; i++ {
		if !skip[i] {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return nil
	}

	var emitMu sync.Mutex
	chunks := chunkIndices(todo, spec.Batch)
	_, mapErr := sweep.MapContext(ctx, chunks, spec.Workers, func(ctx context.Context, chunk []int) (struct{}, error) {
		crecs, err := runTrialChunk(ctx, prog, g, spec, key, chunk)
		emitMu.Lock()
		defer emitMu.Unlock()
		for j := range crecs {
			if crecs[j].Key == "" {
				continue // interrupted before classification
			}
			if eerr := emit(crecs[j]); eerr != nil {
				return struct{}{}, eerr
			}
		}
		return struct{}{}, err
	})
	return mapErr
}

// AggregateRecords rebuilds the campaign Result that a completed
// single-node run over the same trial records would report: the same
// tally, per-space split, Wilson interval and event counters, bit for
// bit. recs must hold exactly one record per trial index in
// [0, spec.Trials) — the merge layer's dedupe and completeness check
// run first — and every record must carry the spec's params key.
func AggregateRecords(spec Spec, progHash string, recs []*TrialRecord) (Result, error) {
	spec = spec.withDefaults()
	res := Result{
		Scheme:    spec.Scheme,
		Prog:      progHash,
		Seed:      spec.Seed,
		Requested: spec.Trials,
		BySpace:   make(map[string]fault.CampaignResult),
	}
	if len(recs) != spec.Trials {
		return res, fmt.Errorf("campaign: aggregate wants %d records, got %d", spec.Trials, len(recs))
	}
	key := spec.Key(progHash)
	for i, rec := range recs {
		if rec == nil {
			return res, fmt.Errorf("campaign: aggregate missing record for trial %d", i)
		}
		if rec.Index != i {
			return res, fmt.Errorf("campaign: aggregate record %d carries index %d; records must be in trial order", i, rec.Index)
		}
		if rec.Key != key {
			return res, fmt.Errorf("%w: record %d carries key %s, want %s", ErrKeyMismatch, i, rec.Key, key)
		}
	}
	return res, res.finish(recs, spec.Trials, spec)
}
