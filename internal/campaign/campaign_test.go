package campaign

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/fault"
)

// tearJournalTail truncates the journal mid-way through its final
// record, simulating a writer killed between write and flush.
func tearJournalTail(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.TrimRight(b, "\n")
	last := bytes.LastIndexByte(trimmed, '\n') + 1
	cut := last + (len(trimmed)-last)/2
	if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
}

// testProgram computes a checksum over a small array — enough live
// state that most injected flips matter.
const testProgram = `
	la r10, buf
	li r1, 0        ; checksum
	li r2, 0        ; i
	li r3, 64       ; n
init:
	mul r4, r2, r2
	sw r4, 0(r10)
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, init
	la r10, buf
	li r2, 0
sum:
	lw r5, 0(r10)
	add r1, r1, r5
	slli r6, r1, 1
	xor r1, r1, r6
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, sum
	mv r4, r1
	li r2, 1
	syscall
	halt
.data
buf: .space 256
`

// spinProgram livelocks when the loop bound in r1 is corrupted — the
// campaign watchdog case.
const spinProgram = `
	li r1, 100
	li r2, 0
spin:
	addi r2, r2, 1
	blt r2, r1, spin
	mv r4, r2
	li r2, 1
	syscall
	halt
`

func mustProg(t *testing.T, src string) *asm.Program {
	t.Helper()
	return asm.MustAssemble(src)
}

// TestKillResumeBitMatch is the tentpole acceptance criterion: a
// campaign interrupted mid-run and resumed from its JSONL checkpoint
// produces a Result identical (reflect.DeepEqual) to the uninterrupted
// run with the same seed — even on a different worker count.
func TestKillResumeBitMatch(t *testing.T) {
	prog := mustProg(t, testProgram)
	spec := Spec{
		Scheme:   SchemeUnSync,
		Trials:   150,
		Seed:     42,
		MaxSteps: 100_000,
		Workers:  4,
	}
	full, err := Run(prog, spec)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	killed := spec
	killed.Checkpoint = ck
	killed.StopAfter = 37
	partial, err := Run(prog, killed)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run err = %v, want ErrInterrupted", err)
	}
	if partial.Ran == 0 || partial.Ran >= spec.Trials {
		t.Fatalf("interrupted run tallied %d trials, want partial coverage", partial.Ran)
	}

	resumed := spec
	resumed.Checkpoint = ck
	resumed.Resume = true
	resumed.Workers = 2 // the schedule must not matter
	got, err := Run(prog, resumed)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(full, got) {
		t.Errorf("resumed result differs from uninterrupted run:\nfull:    %+v\nresumed: %+v", full, got)
	}
}

// TestWorkerCountInvariance pins the determinism contract directly:
// identical Results for 1 and 8 workers.
func TestWorkerCountInvariance(t *testing.T) {
	prog := mustProg(t, testProgram)
	spec := Spec{Scheme: SchemeReunion, Trials: 80, Seed: 5, MaxSteps: 100_000}
	spec.Workers = 1
	one, err := Run(prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 8
	eight, err := Run(prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Errorf("results differ across worker counts:\n1: %+v\n8: %+v", one, eight)
	}
}

// TestCoverageDrivenSDC is the coverage acceptance criterion: under
// UnSync the uncovered Communication Buffer space reports nonzero SDC
// while every covered space stays SDC-free.
func TestCoverageDrivenSDC(t *testing.T) {
	prog := mustProg(t, testProgram)
	base := Spec{Scheme: SchemeUnSync, Trials: 60, Seed: 9, MaxSteps: 100_000}

	cb := base
	cb.Spaces = []fault.Space{fault.SpaceCB}
	res, err := Run(prog, cb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.SDC == 0 {
		t.Errorf("uncovered CB campaign reported zero SDC (%+v)", res.Tally)
	}

	covered := base
	covered.Spaces = []fault.Space{fault.SpaceIntReg, fault.SpaceFPReg, fault.SpacePC, fault.SpaceMem}
	res, err = Run(prog, covered)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.SDC != 0 {
		t.Errorf("covered-space campaign reported SDC (%+v, by space %+v)", res.Tally, res.BySpace)
	}
	if res.Tally.Recovered == 0 {
		t.Errorf("covered-space campaign never recovered (%+v)", res.Tally)
	}
}

// TestCampaignWatchdog: on the livelock workload with detection
// disabled, some trials must be killed by the step budget and
// classified OutcomeHang — never looped on forever.
func TestCampaignWatchdog(t *testing.T) {
	prog := mustProg(t, spinProgram)
	none := fault.Coverage{} // nothing detected anywhere
	spec := Spec{
		Scheme:     SchemeUnSync,
		Trials:     256,
		Seed:       3,
		MaxSteps:   10_000,
		StepBudget: 1_000,
		Spaces:     []fault.Space{fault.SpaceIntReg},
		Coverage:   none,
	}
	res, err := Run(prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Hangs == 0 {
		t.Errorf("no trial hit the watchdog on the livelock workload (%+v)", res.Tally)
	}
	if res.Tally.Trials != spec.Trials {
		t.Errorf("tallied %d trials, want %d", res.Tally.Trials, spec.Trials)
	}
}

// TestEarlyStop: a loose CI-width threshold stops the campaign at the
// first round boundary.
func TestEarlyStop(t *testing.T) {
	prog := mustProg(t, testProgram)
	spec := Spec{
		Scheme:   SchemeUnSync,
		Trials:   500,
		Seed:     11,
		MaxSteps: 100_000,
		CIWidth:  0.9,
	}
	res, err := Run(prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStop {
		t.Fatal("campaign did not stop early under a 0.9 CI-width threshold")
	}
	if res.Ran != roundSize {
		t.Errorf("early stop after %d trials, want one round (%d)", res.Ran, roundSize)
	}
	if res.SDCHi-res.SDCLo >= 0.9 {
		t.Errorf("reported CI [%g,%g] wider than the threshold", res.SDCLo, res.SDCHi)
	}
}

// TestResumeIgnoresForeignJournal: records journaled under a different
// campaign key (here, a different seed) must not satisfy a resume.
// TestResumeKeyMismatchFailsLoudly: pointing -resume at a journal
// whose records all carry a different params key must fail with
// ErrKeyMismatch and a message naming both keys — never silently
// re-run the campaign from scratch. res.Ran == 0 with a non-interrupt
// error is exactly the unsync-fault fatal() path, so the CLI exits 1.
func TestResumeKeyMismatchFailsLoudly(t *testing.T) {
	prog := mustProg(t, testProgram)
	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	first := Spec{Scheme: SchemeUnSync, Trials: 30, Seed: 1, MaxSteps: 100_000, Checkpoint: ck}
	if _, err := Run(prog, first); err != nil {
		t.Fatal(err)
	}
	second := first
	second.Seed = 2
	second.Resume = true
	res, err := Run(prog, second)
	if !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("resume against a foreign journal: got %v, want ErrKeyMismatch", err)
	}
	if res.Ran != 0 {
		t.Fatalf("mismatched resume ran %d trials; it must run none (the CLI exit-1 fatal path requires Ran == 0)", res.Ran)
	}
	wantKey := second.Key(ProgHash(prog))
	foreignKey := first.Key(ProgHash(prog))
	for _, frag := range []string{wantKey, foreignKey, "-resume"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}

	// A journal that holds records for THIS key (alongside foreign
	// ones) still resumes: the mismatch error fires only when nothing
	// in the journal can satisfy the campaign.
	if _, err := Run(prog, Spec{Scheme: SchemeUnSync, Trials: 30, Seed: 2, MaxSteps: 100_000, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	res2, err := Run(prog, second)
	if err != nil {
		t.Fatalf("resume with matching records present: %v", err)
	}
	want, err := Run(prog, Spec{Scheme: SchemeUnSync, Trials: 30, Seed: 2, MaxSteps: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2, want) {
		t.Errorf("mixed-journal resume changed the result:\ngot:  %+v\nwant: %+v", res2, want)
	}
}

// TestJournalToleratesTornTail: a partial trailing line (a killed
// writer) is skipped, not fatal, and the campaign re-runs that trial.
func TestJournalToleratesTornTail(t *testing.T) {
	prog := mustProg(t, testProgram)
	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	spec := Spec{Scheme: SchemeUnSync, Trials: 20, Seed: 6, MaxSteps: 100_000, Checkpoint: ck}
	want, err := Run(prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the journal: truncate the last line mid-record.
	tearJournalTail(t, ck)
	spec.Resume = true
	got, err := Run(prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("torn-tail resume changed the result:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestRunRejectsBadSpec covers the validation surface.
func TestRunRejectsBadSpec(t *testing.T) {
	prog := mustProg(t, testProgram)
	if _, err := Run(prog, Spec{Scheme: "tmr"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Run(prog, Spec{Spaces: []fault.Space{fault.NumSpaces}}); err == nil {
		t.Error("invalid space accepted")
	}
}

// TestDeriveSiteAlwaysValid: every derived flip must pass validation
// for any index and attempt.
func TestDeriveSiteAlwaysValid(t *testing.T) {
	prog := mustProg(t, testProgram)
	spec := Spec{}.withDefaults()
	for idx := 0; idx < 500; idx++ {
		for attempt := 0; attempt < 2; attempt++ {
			step, f := deriveSite(spec, 1000, prog, idx, attempt)
			if err := f.Validate(); err != nil {
				t.Fatalf("idx %d attempt %d: invalid site %+v: %v", idx, attempt, f, err)
			}
			if step >= 1000 {
				t.Fatalf("idx %d: step %d out of range", idx, step)
			}
		}
	}
}

// TestProgHashDistinguishes: different programs, different hashes; the
// same program, the same hash.
func TestProgHashDistinguishes(t *testing.T) {
	a := mustProg(t, testProgram)
	b := mustProg(t, spinProgram)
	if ProgHash(a) == ProgHash(b) {
		t.Error("distinct programs share a hash")
	}
	if ProgHash(a) != ProgHash(mustProg(t, testProgram)) {
		t.Error("identical programs hash differently")
	}
}

// longSpinProgram runs well past the per-trial context-poll quantum
// (4096 emulated steps) before halting, so a wall-clock trial timeout
// is guaranteed to be observed mid-trial. Every library program halts
// earlier than the quantum, which makes them useless for this test.
const longSpinProgram = `
	li r1, 4000
	li r2, 0
spin:
	addi r2, r2, 1
	blt r2, r1, spin
	mv r4, r2
	li r2, 1
	syscall
	halt
`

// TestRunContextCancelResumesBitIdentical is the cancellation twin of
// TestKillResumeBitMatch: instead of StopAfter simulating a kill, a
// real context cancellation lands mid-campaign. The run must return
// ErrInterrupted joined with the cancellation cause plus a partial
// Result, and a resumed run must reproduce the uninterrupted Result
// bit-identically.
func TestRunContextCancelResumesBitIdentical(t *testing.T) {
	prog := mustProg(t, testProgram)
	spec := Spec{
		Scheme:   SchemeUnSync,
		Trials:   2000,
		Seed:     11,
		MaxSteps: 100_000,
		Workers:  4,
	}
	full, err := Run(prog, spec)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	interrupted := spec
	interrupted.Checkpoint = ck
	cause := errors.New("operator shutdown")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		// Cancel once the journal proves the campaign is mid-run: some
		// trials durable, far more still to go.
		for i := 0; i < 4000; i++ {
			if b, err := os.ReadFile(ck); err == nil && bytes.Count(b, []byte{'\n'}) >= 25 {
				break
			}
			time.Sleep(500 * time.Microsecond) //unsync:allow-sleep test poll
		}
		cancel(cause)
	}()
	partial, err := RunContext(ctx, prog, interrupted)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("cancelled run err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("cancelled run err = %v, want the cancellation cause joined in", err)
	}
	if partial.Ran == 0 || partial.Ran >= spec.Trials {
		t.Fatalf("cancelled run tallied %d trials, want partial coverage", partial.Ran)
	}

	resumed := spec
	resumed.Checkpoint = ck
	resumed.Resume = true
	resumed.Workers = 2 // the schedule must not matter
	got, err := Run(prog, resumed)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(full, got) {
		t.Errorf("resumed result differs from uninterrupted run:\nfull:    %+v\nresumed: %+v", full, got)
	}
}

// TestRunContextPreCancelled: a context cancelled before the campaign
// starts yields ErrInterrupted with zero trials tallied.
func TestRunContextPreCancelled(t *testing.T) {
	prog := mustProg(t, testProgram)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, prog, Spec{Scheme: SchemeUnSync, Trials: 50, Seed: 1, MaxSteps: 100_000})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("pre-cancelled run err = %v, want ErrInterrupted", err)
	}
	if res.Ran != 0 {
		t.Errorf("pre-cancelled run tallied %d trials, want 0", res.Ran)
	}
}

// TestTrialTimeoutClassifiesHang: with a wall-clock trial watchdog
// that has already expired, every trial of a program running past the
// context-poll quantum must be classified OutcomeHang — the same
// bucket as a step-budget livelock — while the campaign itself
// completes normally (no ErrInterrupted).
func TestTrialTimeoutClassifiesHang(t *testing.T) {
	prog := mustProg(t, longSpinProgram)
	spec := Spec{
		Scheme:       SchemeUnSync,
		Trials:       8,
		Seed:         3,
		MaxSteps:     100_000,
		Workers:      2,
		TrialTimeout: time.Nanosecond,
	}
	res, err := Run(prog, spec)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if res.Ran != spec.Trials {
		t.Fatalf("ran %d trials, want %d", res.Ran, spec.Trials)
	}
	if res.Tally.Hangs != spec.Trials {
		t.Errorf("tallied %d hangs, want all %d trials (tally %+v)", res.Tally.Hangs, spec.Trials, res.Tally)
	}
}

// TestSpecKeyIncludesTrialTimeout: the watchdog changes what a trial
// can observe (a hang classification depends on wall time), so two
// specs differing only in TrialTimeout must not share a journal key.
func TestSpecKeyIncludesTrialTimeout(t *testing.T) {
	a := Spec{Scheme: SchemeUnSync, Trials: 10, Seed: 1, MaxSteps: 1000}
	b := a
	b.TrialTimeout = time.Second
	if a.Key("prog") == b.Key("prog") {
		t.Error("specs differing only in TrialTimeout share a journal key")
	}
}

// TestBatchBitIdentity is the batched-engine acceptance criterion:
// with the same seed, a campaign run through the lane engine (Batch:N)
// produces the same journal bytes and the same final Result — Events
// included — as the scalar path (Batch:1). Workers is pinned to 1 so
// the journal write order is deterministic on both sides.
func TestBatchBitIdentity(t *testing.T) {
	prog := mustProg(t, testProgram)
	for _, scheme := range []string{SchemeUnSync, SchemeReunion} {
		base := Spec{
			Scheme:   scheme,
			Trials:   90,
			Seed:     11,
			MaxSteps: 100_000,
			Workers:  1,
		}

		dir := t.TempDir()
		scalar := base
		scalar.Batch = 1
		scalar.Checkpoint = filepath.Join(dir, "scalar.jsonl")
		sres, err := Run(prog, scalar)
		if err != nil {
			t.Fatalf("%s scalar: %v", scheme, err)
		}

		stats := &BatchStats{}
		batched := base
		batched.Batch = 7 // deliberately not a divisor of roundSize
		batched.Checkpoint = filepath.Join(dir, "batched.jsonl")
		batched.Stats = stats
		bres, err := Run(prog, batched)
		if err != nil {
			t.Fatalf("%s batched: %v", scheme, err)
		}

		if !reflect.DeepEqual(sres, bres) {
			t.Errorf("%s: batched Result differs from scalar:\nscalar:  %+v\nbatched: %+v", scheme, sres, bres)
		}
		sb, err := os.ReadFile(scalar.Checkpoint)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(batched.Checkpoint)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, bb) {
			t.Errorf("%s: journal bytes differ between batch widths", scheme)
		}
		if stats.Lanes() == 0 {
			t.Errorf("%s: BatchStats recorded no lanes", scheme)
		}
		if stats.Shortcut()+stats.Lockstep()+stats.Retired() != stats.Lanes() {
			t.Errorf("%s: BatchStats do not sum: %d+%d+%d != %d",
				scheme, stats.Shortcut(), stats.Lockstep(), stats.Retired(), stats.Lanes())
		}
	}
}

// TestBatchResumeBitMatch re-runs the kill+resume criterion through
// the batched engine: an interrupted batched campaign resumed on a
// different batch width still reproduces the uninterrupted Result.
func TestBatchResumeBitMatch(t *testing.T) {
	prog := mustProg(t, testProgram)
	spec := Spec{
		Scheme:   SchemeUnSync,
		Trials:   150,
		Seed:     42,
		MaxSteps: 100_000,
		Workers:  4,
	}
	full, err := Run(prog, spec)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	killed := spec
	killed.Checkpoint = ck
	killed.StopAfter = 37
	killed.Batch = 9
	if _, err := Run(prog, killed); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run err = %v, want ErrInterrupted", err)
	}

	resumed := spec
	resumed.Checkpoint = ck
	resumed.Resume = true
	resumed.Batch = 3 // resume on a different width
	resumed.Workers = 2
	got, err := Run(prog, resumed)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(full, got) {
		t.Errorf("resumed batched result differs:\nfull:    %+v\nresumed: %+v", full, got)
	}
}

// TestSpecKeyExcludesBatch: batch width is pure scheduling — outcomes
// are bit-identical across widths — so it must not partition journals.
func TestSpecKeyExcludesBatch(t *testing.T) {
	a := Spec{Scheme: SchemeUnSync, Trials: 10, Seed: 1, MaxSteps: 1000}
	b := a
	b.Batch = 17
	if a.Key("prog") != b.Key("prog") {
		t.Error("specs differing only in Batch do not share a journal key")
	}
}
