// Package reunion implements the comparison baseline: Reunion
// (Smolens et al., MICRO'06) as analyzed in §IV of the paper.
//
// Two loosely coupled cores run the same thread. Every committed
// instruction deposits its result into the CHECK Stage Buffer (CSB) and
// contributes to a CRC-16 fingerprint. A fingerprint closes every FI
// instructions (the fingerprint interval) and is exchanged with the
// partner core; the comparison takes CompareLatency cycles end to end.
// CSB entries are released only when their fingerprint has been
// verified, so a full CSB back-pressures commit and inflates ROB
// occupancy (Figure 5's mechanism). Serializing instructions (traps,
// memory barriers, atomics) must execute in a fingerprint of their own
// with every earlier fingerprint verified, and later instructions wait
// for the serializing fingerprint's verification — the synchronization
// cost Figure 4 measures.
package reunion

import (
	"fmt"

	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/reunion/crc"
	"github.com/cmlasu/unsync/internal/ring"
	"github.com/cmlasu/unsync/internal/stats"
	"github.com/cmlasu/unsync/internal/trace"
)

// Config holds the Reunion parameters.
type Config struct {
	// FI is the fingerprint interval in instructions (paper baseline:
	// 10, the minimum indicated by the Reunion authors).
	FI int
	// CompareLatency is the total time to generate, transfer and
	// compare a fingerprint between the cores (paper: minimum 6
	// cycles; Fig 5 sweeps 10→40).
	CompareLatency uint64
	// CSBEntries is the CHECK Stage Buffer capacity. Zero means derive
	// from FI with CSBForFI (17 entries at FI=10, as synthesized in
	// §IV-A3).
	CSBEntries int

	// RollbackPenalty is the pair-stall cost of a fingerprint mismatch
	// (serial rollback to the last verified fingerprint and
	// re-execution). Zero means derive: 2*CompareLatency + 2*FI.
	RollbackPenalty uint64
}

// CSBForFI returns the CSB capacity the paper derives for a fingerprint
// interval: one full window in comparison plus the partial window the
// pipeline keeps filling, i.e. FI+7 entries — 17 at FI=10 (§IV-A3) and
// 57 at FI=50 (the 39125 µm² CSB of §IV-A3 at 10.40 µm²/bit × 66 bits).
// This also keeps the buffer larger than one window, which commit
// liveness requires.
func CSBForFI(fi int) int { return fi + 7 }

// DefaultConfig returns the paper's Reunion operating point: FI=10
// (the minimum the Reunion authors indicate) and the 6-cycle minimum
// fingerprint communicate-and-compare latency of §IV-A3. Figure 5
// sweeps both knobs upward explicitly.
func DefaultConfig() Config {
	return Config{FI: 10, CompareLatency: 6}
}

// Validate checks configuration invariants.
func (c *Config) Validate() error {
	if c.FI < 1 {
		return fmt.Errorf("reunion: FI %d < 1", c.FI)
	}
	if c.CompareLatency < 1 {
		return fmt.Errorf("reunion: CompareLatency %d < 1", c.CompareLatency)
	}
	if c.CSBEntries < 0 {
		return fmt.Errorf("reunion: negative CSBEntries")
	}
	return nil
}

func (c *Config) csbEntries() int {
	if c.CSBEntries >= c.FI+1 {
		return c.CSBEntries
	}
	return CSBForFI(c.FI)
}

// CSBCapacity exposes the effective CHECK Stage Buffer capacity.
func (c *Config) CSBCapacity() int { return c.csbEntries() }

func (c *Config) rollbackPenalty() uint64 {
	if c.RollbackPenalty > 0 {
		return c.RollbackPenalty
	}
	return 2*c.CompareLatency + 2*uint64(c.FI)
}

// fingerprint tracks one fingerprint window across the pair.
type fingerprint struct {
	count  [2]int    // instructions folded per core
	value  [2]uint16 // CRC-16 per core
	closed [2]bool
	closeT [2]uint64
}

// verifiedAt returns the cycle at which the fingerprint comparison
// completes, and whether both sides have closed it.
func (f *fingerprint) verifiedAt(lat uint64) (uint64, bool) {
	if !f.closed[0] || !f.closed[1] {
		return 0, false
	}
	t := f.closeT[0]
	if f.closeT[1] > t {
		t = f.closeT[1]
	}
	return t + lat, true
}

// PairStats aggregates pair-level counters.
type PairStats struct {
	Fingerprints   uint64 // fingerprints closed (per pair)
	Mismatches     uint64 // fingerprint comparison failures
	Rollbacks      uint64
	RollbackCycles uint64

	CSBFullStall   [2]uint64 // commit blocks: CSB full
	SerializeStall [2]uint64 // commit blocks: serializing synchronization

	CSBOcc [2]*stats.Occupancy
}

// Pair is one Reunion redundant core-pair.
type Pair struct {
	Cfg   Config
	A, B  *pipeline.Core
	Hier  *mem.Hierarchy
	Stats PairStats

	cycle uint64

	// fps holds the in-flight fingerprint windows, oldest (fps front)
	// to newest. The CSB capacity bounds the population in steady
	// state, so the preallocated ring rarely (if ever) grows.
	fps      *ring.Buffer[fingerprint]
	fpBase   uint64    // global index of the front window
	cur      [2]uint64 // index of the fingerprint each core is filling
	csbOcc   [2]int
	gateFp   [2]int64       // fp id that must verify before the core commits again (-1: none)
	serWait  [2]bool        // core stalled on serializing synchronization
	injected map[uint64]int // fp id -> core whose fingerprint is corrupted
}

// MemConfig adapts a hierarchy configuration to Reunion's assumptions:
// write-back SECDED L1s over the shared ECC L2 (the Reunion design
// assumes an ECC-protected cache, §VI-D).
func MemConfig(memCfg mem.Config) mem.Config {
	memCfg.L1D.Policy = mem.WriteBack
	memCfg.L1D.Protect = mem.ProtSECDED
	memCfg.L1I.Protect = mem.ProtSECDED
	memCfg.L2.Protect = mem.ProtSECDED
	return memCfg
}

// NewPair builds a Reunion pair over its own two-core hierarchy.
func NewPair(coreCfg pipeline.Config, memCfg mem.Config, cfg Config, streamA, streamB trace.Stream) *Pair {
	h := mem.NewHierarchy(MemConfig(memCfg), 2)
	return NewPairOn(coreCfg, cfg, h, 0, 1, streamA, streamB)
}

// NewPairOn builds a Reunion pair on an existing hierarchy, occupying
// core slots idA and idB (multi-pair chips share one hierarchy).
func NewPairOn(coreCfg pipeline.Config, cfg Config, h *mem.Hierarchy, idA, idB int, streamA, streamB trace.Stream) *Pair {
	if err := cfg.Validate(); err != nil {
		//unsync:allow-panic configs are validated at the public API boundary; an invalid one here is a programming error
		panic(err)
	}
	p := &Pair{Cfg: cfg, Hier: h, injected: make(map[uint64]int)}
	p.fps = ring.New[fingerprint](cfg.csbEntries() + 2)
	p.gateFp[0], p.gateFp[1] = -1, -1
	p.A = pipeline.NewCore(coreCfg, idA, h, streamA)
	p.B = pipeline.NewCore(coreCfg, idB, h, streamB)
	csb := cfg.csbEntries()
	p.Stats.CSBOcc[0] = stats.NewOccupancy(csb)
	p.Stats.CSBOcc[1] = stats.NewOccupancy(csb)
	p.attach(0, p.A)
	p.attach(1, p.B)
	return p
}

func (p *Pair) attach(side int, c *pipeline.Core) {
	c.CommitGate = func(rec trace.Record, cycle uint64) bool { return p.gate(side, rec, cycle) }
	c.OnCommit = func(rec trace.Record, cycle uint64) { p.onCommit(side, rec, cycle) }
	// While a serializing instruction synchronizes the pair, the whole
	// pipeline stalls — not just commit (§IV-A5).
	c.IssueGate = func(cycle uint64) bool { return !p.serWait[side] }
	// No DrainEmpty hook: Reunion has no separate store path — stores
	// are architecturally committed once their fingerprint verifies,
	// which the commit gate's serializing rule already enforces. Gating
	// barriers on an empty CSB would deadlock (the barrier itself must
	// commit to close the window that empties the CSB).
}

// fp returns the fingerprint window with global index id, growing the
// window list as needed. The pointer is invalidated by the next fp
// call with a larger id (the ring may grow); callers finish with it
// before opening new windows.
func (p *Pair) fp(id uint64) *fingerprint {
	for id >= p.fpBase+uint64(p.fps.Len()) {
		p.fps.PushBack(fingerprint{})
	}
	return p.fps.At(int(id - p.fpBase))
}

// gate decides whether instruction rec may commit on side this cycle.
func (p *Pair) gate(side int, rec trace.Record, cycle uint64) bool {
	// Blocked behind a serializing fingerprint's verification?
	if g := p.gateFp[side]; g >= 0 {
		if uint64(g) >= p.fpBase { // not yet retired
			v, ok := p.fp(uint64(g)).verifiedAt(p.Cfg.CompareLatency)
			if !ok || cycle < v {
				p.Stats.SerializeStall[side]++
				p.serWait[side] = true
				return false
			}
		}
		p.gateFp[side] = -1
		p.serWait[side] = false
	}
	if p.csbOcc[side] >= p.Cfg.csbEntries() {
		p.Stats.CSBFullStall[side]++
		return false
	}
	if rec.Serializing() {
		// The serializing instruction must start its own fingerprint:
		// close the current partial window (once) and wait until every
		// earlier fingerprint of this core has been verified.
		cur := p.fp(p.cur[side])
		if cur.count[side] > 0 {
			p.closeFp(side, cycle)
		}
		if p.unverified(side, cycle) {
			p.Stats.SerializeStall[side]++
			p.serWait[side] = true
			return false
		}
		p.serWait[side] = false
	}
	return true
}

// unverified reports whether the core still has any closed-but-not-yet-
// verified fingerprint at the given cycle.
func (p *Pair) unverified(side int, cycle uint64) bool {
	for i := 0; i < p.fps.Len(); i++ {
		f := p.fps.At(i)
		if f.count[side] == 0 {
			continue
		}
		if !f.closed[side] {
			return true
		}
		v, ok := f.verifiedAt(p.Cfg.CompareLatency)
		if !ok || cycle < v {
			return true
		}
	}
	return false
}

// onCommit folds the committed instruction into the core's current
// fingerprint and closes the window at the fingerprint interval or
// around serializing instructions.
func (p *Pair) onCommit(side int, rec trace.Record, cycle uint64) {
	f := p.fp(p.cur[side])
	f.count[side]++
	f.value[side] = crc.Update64(f.value[side], rec.PC)
	f.value[side] = crc.Update64(f.value[side], rec.Data)
	p.csbOcc[side]++

	if rec.Serializing() {
		// The serializing instruction is the sole member of its
		// window; later commits wait for its verification.
		id := p.cur[side]
		p.closeFp(side, cycle)
		p.gateFp[side] = int64(id)
		return
	}
	if f.count[side] >= p.Cfg.FI {
		p.closeFp(side, cycle)
	}
}

func (p *Pair) closeFp(side int, cycle uint64) {
	f := p.fp(p.cur[side])
	f.closed[side] = true
	f.closeT[side] = cycle
	if f.closed[0] && f.closed[1] {
		p.Stats.Fingerprints++
	}
	p.cur[side]++
}

// retire releases CSB entries whose fingerprints have verified, and
// detects mismatches.
func (p *Pair) retire() {
	for p.fps.Len() > 0 {
		f := p.fps.Front()
		v, ok := f.verifiedAt(p.Cfg.CompareLatency)
		if !ok || p.cycle < v {
			return
		}
		mismatch := f.value[0] != f.value[1]
		if inj, isInj := p.injected[p.fpBase]; isInj {
			mismatch = true
			_ = inj
			delete(p.injected, p.fpBase)
		}
		if mismatch {
			p.Stats.Mismatches++
			p.rollback()
		}
		p.csbOcc[0] -= f.count[0]
		p.csbOcc[1] -= f.count[1]
		p.fps.PopFront()
		p.fpBase++
	}
}

// rollback models recovery from a fingerprint mismatch: both cores
// squash back to the last verified fingerprint and re-execute.
func (p *Pair) rollback() {
	cost := p.Cfg.rollbackPenalty()
	until := p.cycle + cost
	p.A.FreezeUntil(until)
	p.B.FreezeUntil(until)
	p.Stats.Rollbacks++
	p.Stats.RollbackCycles += cost
}

// InjectMismatch marks the fingerprint window that contains the next
// commit of the given core as corrupted, forcing a mismatch when it is
// compared (fault-injection hook).
func (p *Pair) InjectMismatch(core int) {
	p.injected[p.cur[core]] = core
}

// Committed returns the pair's committed-instruction clock: the minimum
// over both replicas (the engine's one warmup rule — see cmp.Drive).
func (p *Pair) Committed() uint64 {
	if p.A.Stats.Insts < p.B.Stats.Insts {
		return p.A.Stats.Insts
	}
	return p.B.Stats.Insts
}

// Replicas returns the number of cores a soft error can strike.
func (p *Pair) Replicas() int { return 2 }

// InjectError models a soft-error strike on the given core: the upset
// corrupts the fingerprint window in flight, so it surfaces as a
// detected mismatch when that window's comparison completes — the
// detection latency is the fingerprint mechanism itself, not a separate
// parameter.
func (p *Pair) InjectError(cycle uint64, core int) {
	p.InjectMismatch(core)
}

// Cycle returns the pair's cycle counter.
func (p *Pair) Cycle() uint64 { return p.cycle }

// CSBLen returns the CSB occupancy of one core.
func (p *Pair) CSBLen(side int) int { return p.csbOcc[side] }

// Step advances the pair by one cycle.
func (p *Pair) Step() {
	p.retire()
	p.A.Step()
	p.B.Step()
	p.Stats.CSBOcc[0].Sample(p.csbOcc[0])
	p.Stats.CSBOcc[1].Sample(p.csbOcc[1])
	p.cycle++
}

// Done reports whether both cores have finished and every fingerprint
// has been verified and retired.
func (p *Pair) Done() bool {
	if !p.A.Done() || !p.B.Done() {
		return false
	}
	// Close any trailing partial windows so the final entries retire.
	for side := 0; side < 2; side++ {
		if f := p.fp(p.cur[side]); f.count[side] > 0 && !f.closed[side] {
			p.closeFp(side, p.cycle)
		}
	}
	return p.csbOcc[0] == 0 && p.csbOcc[1] == 0
}

// Run steps the pair to completion or until maxCycles.
func (p *Pair) Run(maxCycles uint64) error {
	for !p.Done() {
		if p.cycle >= maxCycles {
			return pipeline.ErrCycleBudget
		}
		p.Step()
	}
	return nil
}

// ResetStats clears all statistics (pair, cores and the pair's memory
// hierarchy) after warmup, so every event counter covers only the
// measurement window.
func (p *Pair) ResetStats() {
	p.A.ResetStats()
	p.B.ResetStats()
	p.Hier.ResetStats()
	csb := p.Cfg.csbEntries()
	p.Stats = PairStats{
		CSBOcc: [2]*stats.Occupancy{stats.NewOccupancy(csb), stats.NewOccupancy(csb)},
	}
}

// Events returns the pair-level event counts of the Reunion scheme
// under the repository-wide taxonomy (internal/events): CHECK Stage
// Buffer waits, fingerprint traffic and rollback costs. Per-replica
// stall counters are summed; core- and memory-side events are merged
// in by the measurement engine (cmp).
func (p *Pair) Events() events.Counts {
	return events.Counts{
		events.CSBFullStall:      p.Stats.CSBFullStall[0] + p.Stats.CSBFullStall[1],
		events.CSBSerializeStall: p.Stats.SerializeStall[0] + p.Stats.SerializeStall[1],
		events.FPClosed:          p.Stats.Fingerprints,
		events.FPMismatch:        p.Stats.Mismatches,
		events.RollbackCount:     p.Stats.Rollbacks,
		events.RollbackCycles:    p.Stats.RollbackCycles,
	}
}

// IPC returns the pair's architectural throughput. A pair that never
// stepped reports 0.
func (p *Pair) IPC() float64 {
	if p.cycle == 0 {
		return 0
	}
	insts := p.A.Stats.Insts
	if p.B.Stats.Insts < insts {
		insts = p.B.Stats.Insts
	}
	return float64(insts) / float64(p.cycle)
}
