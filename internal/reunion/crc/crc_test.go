package crc

import (
	"testing"
	"testing/quick"
)

func TestKnownVector(t *testing.T) {
	// CRC-16/XMODEM ("123456789") == 0x31C3 — the CCITT polynomial with
	// zero init, which is exactly this implementation.
	if got := Checksum([]byte("123456789")); got != 0x31c3 {
		t.Errorf("Checksum(123456789) = %#04x, want 0x31c3", got)
	}
}

func TestEmptyAndZeroData(t *testing.T) {
	if Checksum(nil) != 0 {
		t.Error("empty checksum != 0")
	}
	// Zero state + zero bytes stays zero (linearity of CRC).
	if Checksum(make([]byte, 16)) != 0 {
		t.Error("all-zero data from zero state should stay zero")
	}
}

func TestSerialEqualsTable(t *testing.T) {
	f := func(state uint16, b byte) bool {
		return SerialUpdate(state, b) == Update(state, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestUpdateWordEqualsBytes(t *testing.T) {
	f := func(state uint16, w uint16) bool {
		byByte := Update(Update(state, byte(w>>8)), byte(w))
		return UpdateWord(state, w) == byByte
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestUpdate64EqualsBytes(t *testing.T) {
	f := func(state uint16, v uint64) bool {
		s := state
		for shift := 56; shift >= 0; shift -= 8 {
			s = Update(s, byte(v>>uint(shift)))
		}
		return Update64(state, v) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Error-detection property: any single-bit flip in the data changes the
// fingerprint (CRC-16 detects all single-bit errors).
func TestSingleBitFlipDetected(t *testing.T) {
	data := []byte("reunion fingerprint window 0123456789abcdef")
	base := Checksum(data)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			flipped := make([]byte, len(data))
			copy(flipped, data)
			flipped[i] ^= 1 << bit
			if Checksum(flipped) == base {
				t.Fatalf("bit flip at byte %d bit %d undetected", i, bit)
			}
		}
	}
}

// Burst-error property: CRC-16 detects all burst errors up to 16 bits.
func TestShortBurstsDetected(t *testing.T) {
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i * 37)
	}
	base := Checksum(data)
	for start := 0; start < len(data)-2; start++ {
		for pattern := 1; pattern < 1<<16; pattern += 257 {
			flipped := make([]byte, len(data))
			copy(flipped, data)
			flipped[start] ^= byte(pattern >> 8)
			flipped[start+1] ^= byte(pattern)
			if pattern>>8 == 0 && byte(pattern) == 0 {
				continue
			}
			if Checksum(flipped) == base {
				t.Fatalf("burst %#x at %d undetected", pattern, start)
			}
		}
	}
}

func TestGateCountMatchesPaper(t *testing.T) {
	if GateCount != 238 {
		t.Errorf("GateCount = %d, want 238 (paper §IV-A2)", GateCount)
	}
}

func BenchmarkUpdate64(b *testing.B) {
	var s uint16
	for i := 0; i < b.N; i++ {
		s = Update64(s, uint64(i)*0x9e3779b97f4a7c15)
	}
	_ = s
}
