// Package crc implements the 16-bit cyclic redundancy check used by the
// Reunion fingerprint generator (CRC-16-CCITT, polynomial 0x1021), in
// two formulations:
//
//   - a bitwise/serial reference implementation, and
//   - the two-stage parallel formulation of Albertengo & Sisto ("Parallel
//     CRC generation", IEEE Micro 1990 — the paper's reference [28]),
//     which processes a full 16-bit word per step via a precomputed
//     table and is the shape of the 238-gate hardware block the paper
//     synthesizes.
//
// Both produce identical results; a property test in this package pins
// that equivalence.
package crc

// Poly is the CRC-16-CCITT generator polynomial x^16+x^12+x^5+1.
const Poly uint16 = 0x1021

// SerialUpdate folds one byte into the CRC state bit by bit (reference
// implementation).
func SerialUpdate(state uint16, b byte) uint16 {
	state ^= uint16(b) << 8
	for i := 0; i < 8; i++ {
		if state&0x8000 != 0 {
			state = state<<1 ^ Poly
		} else {
			state <<= 1
		}
	}
	return state
}

// table is the byte-parallel lookup table (first stage of the parallel
// formulation).
var table = func() [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		t[i] = SerialUpdate(0, byte(i))
	}
	return t
}()

// Update folds one byte into the CRC state using the table (parallel
// formulation).
func Update(state uint16, b byte) uint16 {
	return state<<8 ^ table[byte(state>>8)^b]
}

// UpdateWord folds a 16-bit word in two table steps — the "two stage
// parallel" organization of the hardware fingerprint generator, which
// consumes one word per pipeline cycle.
func UpdateWord(state uint16, w uint16) uint16 {
	state = Update(state, byte(w>>8))
	return Update(state, byte(w))
}

// Update64 folds a 64-bit value, most significant word first.
func Update64(state uint16, v uint64) uint16 {
	state = UpdateWord(state, uint16(v>>48))
	state = UpdateWord(state, uint16(v>>32))
	state = UpdateWord(state, uint16(v>>16))
	return UpdateWord(state, uint16(v))
}

// Checksum computes the CRC-16 of a byte slice from a zero initial
// state.
func Checksum(data []byte) uint16 {
	var s uint16
	for _, b := range data {
		s = Update(s, b)
	}
	return s
}

// GateCount is the combinational size of the two-stage parallel 16-bit
// CRC block reported by the paper's synthesis reference [28]. The
// hardware model (internal/hwmodel) prices the fingerprint generator
// with it.
const GateCount = 238
