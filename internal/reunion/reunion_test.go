package reunion

import (
	"testing"

	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/trace"
)

// mkStream builds a simple looping workload with a serializing
// instruction every serEvery instructions (0 = none).
func mkStream(n, serEvery int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		switch {
		case serEvery > 0 && i%serEvery == serEvery/2:
			recs[i] = trace.Record{Class: isa.ClassTrap, Dst: -1, Src1: -1, Src2: -1, Taken: true}
		case i%7 == 3:
			recs[i] = trace.Record{Class: isa.ClassStore, Dst: -1, Src1: -1, Src2: -1,
				Addr: uint64(0x100000 + (i%512)*8)}
		default:
			recs[i] = trace.Record{Class: isa.ClassIntALU, Dst: int8(1 + i%40), Src1: -1, Src2: -1}
		}
		recs[i].Seq = uint64(i)
		recs[i].PC = 0x4000 + uint64(i%64)*4
		recs[i].Data = uint64(i) * 0x9e3779b9
	}
	return recs
}

func newPair(t *testing.T, recs []trace.Record, cfg Config) *Pair {
	t.Helper()
	a := make([]trace.Record, len(recs))
	b := make([]trace.Record, len(recs))
	copy(a, recs)
	copy(b, recs)
	return NewPair(pipeline.DefaultConfig(), mem.DefaultConfig(), cfg,
		trace.NewSliceStream(a), trace.NewSliceStream(b))
}

func TestConfigValidateAndDerived(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if CSBForFI(10) != 17 {
		t.Errorf("CSBForFI(10) = %d, want 17 (paper §IV-A3)", CSBForFI(10))
	}
	if CSBForFI(50) != 57 {
		// 57 entries x 66 bits x 10.40 um^2/bit = 39125 um^2 (SIV-A3).
		t.Errorf("CSBForFI(50) = %d, want 57", CSBForFI(50))
	}
	if CSBForFI(1) < 2 || CSBForFI(2) < 3 {
		t.Error("CSBForFI must keep the buffer larger than one window")
	}
	if (&Config{FI: 0, CompareLatency: 1}).Validate() == nil {
		t.Error("FI=0 accepted")
	}
	if (&Config{FI: 1, CompareLatency: 0}).Validate() == nil {
		t.Error("CompareLatency=0 accepted")
	}
	// Explicit CSB below the deadlock bound is overridden.
	c := Config{FI: 10, CompareLatency: 10, CSBEntries: 5}
	if c.CSBCapacity() < 11 {
		t.Errorf("CSBCapacity = %d, must be > FI", c.CSBCapacity())
	}
}

func TestPairRunsToCompletion(t *testing.T) {
	recs := mkStream(5_000, 0)
	p := newPair(t, recs, DefaultConfig())
	if err := p.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if p.A.Stats.Insts != 5_000 || p.B.Stats.Insts != 5_000 {
		t.Errorf("insts = %d/%d", p.A.Stats.Insts, p.B.Stats.Insts)
	}
	if p.CSBLen(0) != 0 || p.CSBLen(1) != 0 {
		t.Error("CSB not empty at completion")
	}
	// ~500 fingerprints at FI=10.
	if p.Stats.Fingerprints < 490 || p.Stats.Fingerprints > 510 {
		t.Errorf("Fingerprints = %d, want ~500", p.Stats.Fingerprints)
	}
	if p.Stats.Mismatches != 0 {
		t.Errorf("Mismatches = %d in an error-free run", p.Stats.Mismatches)
	}
}

func TestIdenticalStreamsNeverMismatch(t *testing.T) {
	prof, _ := trace.ByName("gcc")
	p := NewPair(pipeline.DefaultConfig(), mem.DefaultConfig(), DefaultConfig(),
		trace.NewLimit(trace.NewGenerator(prof), 20_000),
		trace.NewLimit(trace.NewGenerator(prof), 20_000))
	if err := p.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Stats.Mismatches != 0 {
		t.Errorf("Mismatches = %d", p.Stats.Mismatches)
	}
}

func TestSerializingCostsMoreThanWithout(t *testing.T) {
	with := newPair(t, mkStream(20_000, 50), DefaultConfig())
	without := newPair(t, mkStream(20_000, 0), DefaultConfig())
	if err := with.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := without.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if with.Cycle() <= without.Cycle() {
		t.Errorf("serializing run %d cycles <= plain run %d", with.Cycle(), without.Cycle())
	}
	if with.Stats.SerializeStall[0] == 0 {
		t.Error("no serialize stalls recorded")
	}
}

func TestLongerCompareLatencyHurts(t *testing.T) {
	fast := DefaultConfig()
	fast.CompareLatency = 10
	slow := DefaultConfig()
	slow.CompareLatency = 40
	pf := newPair(t, mkStream(20_000, 100), fast)
	ps := newPair(t, mkStream(20_000, 100), slow)
	if err := pf.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := ps.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if ps.IPC() >= pf.IPC() {
		t.Errorf("latency-40 IPC %.3f not below latency-10 IPC %.3f (Fig 5 property)",
			ps.IPC(), pf.IPC())
	}
}

func TestLargerFIIncreasesCSBPressure(t *testing.T) {
	fi10 := Config{FI: 10, CompareLatency: 20}
	fi30 := Config{FI: 30, CompareLatency: 20}
	p10 := newPair(t, mkStream(20_000, 0), fi10)
	p30 := newPair(t, mkStream(20_000, 0), fi30)
	if err := p10.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := p30.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	// Larger FI holds instructions longer: CSB mean occupancy grows.
	if p30.Stats.CSBOcc[0].Mean() <= p10.Stats.CSBOcc[0].Mean() {
		t.Errorf("FI=30 CSB occupancy %.1f not above FI=10 %.1f",
			p30.Stats.CSBOcc[0].Mean(), p10.Stats.CSBOcc[0].Mean())
	}
}

func TestCommitGatingInflatesROBOccupancy(t *testing.T) {
	recs := mkStream(20_000, 0)
	reun := newPair(t, recs, Config{FI: 10, CompareLatency: 40})
	if err := reun.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	// Baseline: same stream, no gating.
	h := mem.NewHierarchy(mem.DefaultConfig(), 1)
	b := make([]trace.Record, len(recs))
	copy(b, recs)
	base := pipeline.NewCore(pipeline.DefaultConfig(), 0, h, trace.NewSliceStream(b))
	if err := base.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if reun.A.Stats.ROBOcc.Mean() <= base.Stats.ROBOcc.Mean() {
		t.Errorf("Reunion ROB occupancy %.1f not above baseline %.1f (§IV-A5)",
			reun.A.Stats.ROBOcc.Mean(), base.Stats.ROBOcc.Mean())
	}
}

func TestInjectMismatchTriggersRollback(t *testing.T) {
	recs := mkStream(5_000, 0)
	p := newPair(t, recs, DefaultConfig())
	for i := 0; i < 200; i++ {
		p.Step()
	}
	p.InjectMismatch(0)
	if err := p.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Stats.Mismatches != 1 || p.Stats.Rollbacks != 1 {
		t.Errorf("mismatches=%d rollbacks=%d, want 1/1", p.Stats.Mismatches, p.Stats.Rollbacks)
	}
	if p.Stats.RollbackCycles == 0 {
		t.Error("rollback cost not accounted")
	}
	if p.A.Stats.Insts != 5_000 {
		t.Error("run did not complete after rollback")
	}
}

func TestRollbackPenaltyDerivation(t *testing.T) {
	c := Config{FI: 10, CompareLatency: 10}
	if c.rollbackPenalty() != 40 {
		t.Errorf("derived rollback penalty = %d, want 40", c.rollbackPenalty())
	}
	c.RollbackPenalty = 7
	if c.rollbackPenalty() != 7 {
		t.Error("explicit rollback penalty ignored")
	}
}

func TestFingerprintValuesMatchAcrossCores(t *testing.T) {
	recs := mkStream(1_000, 0)
	p := newPair(t, recs, DefaultConfig())
	if err := p.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	// All fingerprints retired without mismatch means the CRC-16 values
	// agreed pairwise; spot-check the counter.
	if p.Stats.Fingerprints == 0 || p.Stats.Mismatches != 0 {
		t.Errorf("fps=%d mismatches=%d", p.Stats.Fingerprints, p.Stats.Mismatches)
	}
}

func TestMemConfigSECDED(t *testing.T) {
	cfg := MemConfig(mem.DefaultConfig())
	if cfg.L1D.Policy != mem.WriteBack || cfg.L1D.Protect != mem.ProtSECDED {
		t.Error("Reunion L1 must be write-back with SECDED")
	}
}

func TestResetStats(t *testing.T) {
	p := newPair(t, mkStream(10_000, 0), DefaultConfig())
	for i := 0; i < 2_000; i++ {
		p.Step()
	}
	p.ResetStats()
	if p.Stats.Fingerprints != 0 || p.A.Stats.Insts != 0 {
		t.Error("ResetStats incomplete")
	}
	if err := p.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	prof, _ := trace.ByName("ammp")
	run := func() uint64 {
		p := NewPair(pipeline.DefaultConfig(), mem.DefaultConfig(), DefaultConfig(),
			trace.NewLimit(trace.NewGenerator(prof), 15_000),
			trace.NewLimit(trace.NewGenerator(prof), 15_000))
		if err := p.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return p.Cycle()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %d vs %d", a, b)
	}
}

// TestPairIPCZeroCycles pins the divide-by-zero guard: an unstepped
// pair reports IPC 0, never NaN.
func TestPairIPCZeroCycles(t *testing.T) {
	p := newPair(t, mkStream(16, 0), DefaultConfig())
	if got := p.IPC(); got != 0 {
		t.Errorf("unstepped pair IPC = %v, want 0", got)
	}
}

// TestPairEvents pins that the pair's event map mirrors PairStats under
// the repository-wide taxonomy, including the summed per-replica CSB
// stall counters.
func TestPairEvents(t *testing.T) {
	p := newPair(t, mkStream(600, 24), DefaultConfig())
	if err := p.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	ev := p.Events()
	if ev[events.FPClosed] != p.Stats.Fingerprints || p.Stats.Fingerprints == 0 {
		t.Errorf("FP.CLOSED = %d, PairStats.Fingerprints = %d", ev[events.FPClosed], p.Stats.Fingerprints)
	}
	if want := p.Stats.SerializeStall[0] + p.Stats.SerializeStall[1]; ev[events.CSBSerializeStall] != want {
		t.Errorf("CSB.SERIALIZE_STALL = %d, want summed %d", ev[events.CSBSerializeStall], want)
	}
}

// TestResetStatsClearsHierarchy pins that the pair's warmup reset also
// covers the memory hierarchy.
func TestResetStatsClearsHierarchy(t *testing.T) {
	p := newPair(t, mkStream(400, 0), DefaultConfig())
	if err := p.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Hier.Cores[p.A.ID].L1D.Stats.Accesses == 0 {
		t.Fatal("no L1D traffic before reset — test is vacuous")
	}
	p.ResetStats()
	if got := p.Hier.Cores[p.A.ID].L1D.Stats.Accesses; got != 0 {
		t.Errorf("L1D accesses after ResetStats = %d, want 0", got)
	}
}
