package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"github.com/cmlasu/unsync/internal/resilience"
	"github.com/cmlasu/unsync/internal/stream"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (version 0.0.4). It exposes the server's own operational
// gauges (in-flight jobs, queue depth, shed submits, breaker state,
// jobs by state) and, for every finished job whose result carries an
// "Events" map under the repository-wide counter taxonomy
// (internal/events), one `unsync_job_event_total` sample per counter,
// labeled with the job ID and event name.
//
// The snapshot is taken under the server lock; rendering happens
// outside it so a slow scrape cannot stall job admission.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}

	type jobEvents struct {
		id     string
		counts map[string]uint64
	}
	type jobPlane struct {
		id    string
		frame stream.Frame
	}
	s.mu.Lock()
	inflight := s.gate.InFlight()
	queued := s.gate.Queued()
	shed := s.shed
	shardsActive := s.shardsActive
	shardsTotal := s.shardsTotal
	shardTrials := s.shardTrials
	shardFailures := s.shardFailures
	byState := map[JobState]int{}
	var finished []jobEvents
	var planes []jobPlane
	for _, id := range s.order {
		job := s.jobs[id]
		byState[job.State]++
		if pl := s.planes[id]; pl != nil {
			// Snapshot takes only the plane's own lock; no path from it
			// back to s.mu.
			planes = append(planes, jobPlane{id: id, frame: pl.Snapshot()})
		}
		if job.State != StateDone || len(job.Result) == 0 {
			continue
		}
		// The result is campaign.Result or a figure payload; only the
		// former carries an Events map. A partial decode keeps the
		// handler independent of the concrete result type.
		var payload struct {
			Events map[string]uint64 `json:"Events"`
		}
		if err := json.Unmarshal(job.Result, &payload); err == nil && len(payload.Events) > 0 {
			finished = append(finished, jobEvents{id: id, counts: payload.Events})
		}
	}
	s.mu.Unlock()

	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("unsync_serve_inflight_jobs", "Jobs currently holding a worker slot.", float64(inflight))
	gauge("unsync_serve_queue_depth", "Admitted jobs waiting for a worker slot.", float64(queued))
	gauge("unsync_serve_breaker_state", "Runner circuit breaker state (0=closed, 1=half-open, 2=open).",
		float64(breakerStateValue(s.breaker.State())))

	fmt.Fprintf(&b, "# HELP unsync_serve_shed_total Submits rejected with 429 since process start.\n")
	fmt.Fprintf(&b, "# TYPE unsync_serve_shed_total counter\nunsync_serve_shed_total %d\n", shed)

	if s.cfg.EnableShards {
		gauge("unsync_serve_shards_active", "Leased shard streams executing now (worker mode).", float64(shardsActive))
		counter := func(name, help string, v uint64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		counter("unsync_serve_shards_total", "Shard leases accepted since process start.", shardsTotal)
		counter("unsync_serve_shard_trials_total", "Trial records streamed to coordinators since process start.", shardTrials)
		counter("unsync_serve_shard_failures_total", "Shards cut short worker-side since process start.", shardFailures)
	}

	if len(planes) > 0 {
		labeled := func(name, help string, sample func(jobPlane) float64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, jp := range planes {
				fmt.Fprintf(&b, "%s{job=%q} %g\n", name, jp.id, sample(jp))
			}
		}
		labeled("unsync_job_trials_done", "Trial records the job's streaming plane has admitted.",
			func(jp jobPlane) float64 { return float64(jp.frame.Done) })
		labeled("unsync_job_window_sdc_rate", "SDC rate over the plane's sliding window.",
			func(jp jobPlane) float64 { return jp.frame.WindowRate })
		labeled("unsync_job_dlq_depth", "Distinct dead-lettered trials in the job's DLQ sidecar.",
			func(jp jobPlane) float64 { return float64(jp.frame.DLQDepth) })
	}

	fmt.Fprintf(&b, "# HELP unsync_serve_jobs Jobs known to the server, by state.\n# TYPE unsync_serve_jobs gauge\n")
	states := make([]string, 0, len(byState))
	for st := range byState {
		states = append(states, string(st))
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(&b, "unsync_serve_jobs{state=%q} %d\n", st, byState[JobState(st)])
	}

	if len(finished) > 0 {
		fmt.Fprintf(&b, "# HELP unsync_job_event_total Per-job hardware/campaign counters under the internal/events taxonomy.\n")
		fmt.Fprintf(&b, "# TYPE unsync_job_event_total counter\n")
		for _, je := range finished {
			names := make([]string, 0, len(je.counts))
			for name := range je.counts {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(&b, "unsync_job_event_total{job=%q,event=%q} %d\n", je.id, name, je.counts[name])
			}
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// breakerStateValue maps the breaker state onto the stable numeric
// encoding the metric documents.
func breakerStateValue(st resilience.State) int {
	switch st {
	case resilience.Open:
		return 2
	case resilience.HalfOpen:
		return 1
	default:
		return 0
	}
}
