package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/experiments"
	"github.com/cmlasu/unsync/internal/stream"
)

// Runner executes one job and returns its JSON result. The server's
// default runner dispatches on the job kind; tests inject slow or
// failing runners to exercise overload and breaker behavior.
type Runner func(ctx context.Context, job *Job) (json.RawMessage, error)

// defaultRunner is the production Runner.
func (s *Server) defaultRunner(ctx context.Context, job *Job) (json.RawMessage, error) {
	switch job.Kind {
	case KindCampaign:
		return s.runCampaign(ctx, job)
	case KindFigure:
		return runFigure(ctx, job.Request.Figure)
	}
	return nil, fmt.Errorf("serve: unknown job kind %q", job.Kind)
}

// runCampaign executes a campaign job against the job's own
// checkpoint journal, with a streaming plane tapped in for the SSE
// progress endpoint, the /metrics gauges and the per-job dead-letter
// sidecar. An interrupted campaign (drain or deadline) propagates
// campaign.ErrInterrupted so the server can classify it; the completed
// trials are already flushed to the checkpoint.
func (s *Server) runCampaign(ctx context.Context, job *Job) (json.RawMessage, error) {
	p := job.Request.Campaign
	prog, err := p.Program()
	if err != nil {
		return nil, err // validated at submit; unreachable in practice
	}
	spec := p.spec(s.checkpointPath(job.ID))
	plane, perr := stream.NewPlane(stream.PlaneConfig{
		DLQ: s.dlqPath(job.ID),
		Key: spec.Normalized().Key(campaign.ProgHash(prog)),
		// Progress frames are cosmetic; 100 ms keeps a busy campaign
		// from flooding SSE subscribers. The inlet stays Block policy,
		// so the plane's own accounting (DLQ, convergence) is lossless.
		EmitEvery: 100 * time.Millisecond,
	})
	if perr != nil {
		return nil, perr
	}
	spec.Observer = plane.Observe
	s.mu.Lock()
	s.planes[job.ID] = plane
	s.mu.Unlock()

	res, err := campaign.RunContext(ctx, prog, spec)
	// Close stays registered: Subscribe-after-close hands late SSE
	// clients the final frame, and /metrics keeps reporting the job's
	// terminal DLQ depth.
	if cerr := plane.Close(); cerr != nil && err == nil {
		// A determinism violation or a dead-letter write failure is a
		// real fault even when every trial classified.
		err = cerr
	}
	if err != nil {
		if errors.Is(err, campaign.ErrInterrupted) {
			return nil, err
		}
		if res.Ran == 0 {
			return nil, err
		}
		// Trials failed but the campaign completed: the tally itself
		// records the failures; report the result.
	}
	return json.Marshal(res)
}

// figureRunners dispatches figure jobs. Each runner owns its options
// scaling.
var figureRunners = map[string]func(ctx context.Context, p *FigureParams) (any, error){
	"fig4": func(ctx context.Context, p *FigureParams) (any, error) {
		return experiments.Fig4(ctx, figureOptions(p))
	},
	"fig5": func(ctx context.Context, p *FigureParams) (any, error) {
		return experiments.Fig5(ctx, figureOptions(p), nil, nil)
	},
	"fig6": func(ctx context.Context, p *FigureParams) (any, error) {
		return experiments.Fig6(ctx, figureOptions(p), nil, nil)
	},
	"ser": func(ctx context.Context, p *FigureParams) (any, error) {
		return experiments.SERSweep(ctx, figureOptions(p))
	},
	"roec": func(ctx context.Context, p *FigureParams) (any, error) {
		return experiments.ROEC(ctx, figureTrials(p))
	},
	"coverage": func(ctx context.Context, p *FigureParams) (any, error) {
		us, re, err := experiments.CoverageStudy(ctx, figureTrials(p), figureOptions(p).Workers)
		if err != nil {
			return nil, err
		}
		return map[string]any{"unsync": us, "reunion": re}, nil
	},
}

func figureOptions(p *FigureParams) experiments.Options {
	if p.Quick {
		return experiments.QuickOptions()
	}
	return experiments.DefaultOptions()
}

func figureTrials(p *FigureParams) int {
	if p.Trials > 0 {
		return p.Trials
	}
	return 100
}

// figureNames lists the known figure studies, sorted.
func figureNames() string {
	names := make([]string, 0, len(figureRunners))
	for name := range figureRunners {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// runFigure executes a figure job.
func runFigure(ctx context.Context, p *FigureParams) (json.RawMessage, error) {
	run := figureRunners[strings.ToLower(p.Name)]
	out, err := run(ctx, p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(out)
}
