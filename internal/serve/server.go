package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/resilience"
	"github.com/cmlasu/unsync/internal/stream"
)

// ErrDraining is the cancellation cause of every in-flight job when
// the server drains (SIGTERM): jobs cut short by it are journaled as
// interrupted — not failed — and re-enter the queue on restart.
var ErrDraining = errors.New("serve: server draining")

// errDeadline is the cancellation cause when a job's own wall-clock
// deadline expires; unlike a drain it is terminal.
var errDeadline = errors.New("serve: job deadline exceeded")

// Config tunes a Server. The zero value of each field selects the
// default noted on it.
type Config struct {
	// StateDir holds the jobs journal and the per-job campaign
	// checkpoints. Required.
	StateDir string
	// MaxConcurrent bounds how many jobs run at once (default 2).
	MaxConcurrent int
	// QueueDepth bounds how many admitted jobs may wait for a worker
	// slot; a submit beyond MaxConcurrent+QueueDepth is shed with
	// 429 Retry-After (default 8).
	QueueDepth int
	// DefaultDeadline bounds jobs that set no deadline (default 10 m).
	DefaultDeadline time.Duration
	// MaxDeadline clamps requested deadlines (default 1 h).
	MaxDeadline time.Duration
	// RetryAfter is the hint returned with a 429 (default 1 s).
	RetryAfter time.Duration
	// Breaker guards the runner: consecutive job failures trip it and
	// the server answers 503 until a cooldown probe succeeds. Zero
	// values select the resilience defaults.
	Breaker resilience.BreakerConfig

	// EnableShards mounts POST /api/v1/shards, the worker half of the
	// distributed campaign fabric: leased trial ranges execute here and
	// stream their records back as flushed JSONL. Off by default — a
	// plain job server should not accept fleet work it was never sized
	// for; cmd/unsync-serve turns it on with -worker.
	EnableShards bool

	// Runner overrides job execution in tests; nil selects the real
	// campaign/figure runner.
	Runner Runner
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Minute
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = time.Hour
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the campaign job service. Create with New, mount Handler
// on an http.Server, and call Drain before exit.
type Server struct {
	cfg     Config
	runner  Runner
	gate    *resilience.Gate
	breaker *resilience.Breaker
	journal *jobJournal
	mux     *http.ServeMux

	// jobsCtx is the parent of every job context; drainCause cancels
	// it with ErrDraining.
	jobsCtx    context.Context
	drainCause context.CancelCauseFunc
	wg         sync.WaitGroup // one per admitted job goroutine

	mu       sync.Mutex
	jobs     map[string]*Job
	planes   map[string]*stream.Plane // per campaign job, kept after completion
	order    []string                 // submit order, for listing
	seq      uint64
	shed     uint64 // submits rejected 429 since process start
	draining bool

	// Shard-execution counters (worker mode), under mu.
	shardsActive  int    // shard streams running now
	shardsTotal   uint64 // shard leases accepted since process start
	shardTrials   uint64 // trial records streamed since process start
	shardFailures uint64 // shards cut short worker-side
}

// New builds a server over StateDir, replaying the jobs journal and
// re-enqueueing every job that was queued, running or interrupted when
// the previous process exited. Campaign jobs resume from their
// checkpoint journals, so a drained campaign completes bit-identically
// to an uninterrupted one.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDir == "" {
		return nil, errors.New("serve: Config.StateDir is required")
	}
	prior, maxSeq, err := loadJournal(filepath.Join(cfg.StateDir, "jobs.jsonl"))
	if err != nil {
		return nil, err
	}
	journal, err := openJournal(filepath.Join(cfg.StateDir, "jobs.jsonl"))
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.StateDir, "checkpoints"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(cfg.StateDir, "dlq"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: dlq dir: %w", err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		gate:       resilience.NewGate(cfg.MaxConcurrent, cfg.QueueDepth),
		breaker:    resilience.NewBreaker(cfg.Breaker),
		journal:    journal,
		jobsCtx:    ctx,
		drainCause: cancel,
		jobs:       map[string]*Job{},
		planes:     map[string]*stream.Plane{},
		seq:        maxSeq,
	}
	s.runner = cfg.Runner
	if s.runner == nil {
		s.runner = s.defaultRunner
	}
	s.routes()

	// Re-enqueue unfinished work from the previous process. Admission
	// is bypassed — these jobs were admitted once already; a restart
	// must not shed them.
	for _, job := range prior {
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		if job.State == StateDone || job.State == StateFailed {
			continue
		}
		s.setState(job, StateQueued, "", nil)
		res, rerr := s.gate.Reserve()
		if rerr != nil {
			// More unfinished jobs than gate capacity: run the overflow
			// anyway (capacity was already granted in a previous life),
			// waiting for a slot without holding a queue ticket.
			s.startJob(job, nil)
			continue
		}
		s.startJob(job, res)
	}
	return s, nil
}

// checkpointPath is the campaign checkpoint journal of one job.
func (s *Server) checkpointPath(jobID string) string {
	return filepath.Join(s.cfg.StateDir, "checkpoints", jobID+".jsonl")
}

// dlqPath is the dead-letter sidecar of one campaign job.
func (s *Server) dlqPath(jobID string) string {
	return filepath.Join(s.cfg.StateDir, "dlq", jobID+".jsonl")
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/api/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/api/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/api/v1/shards", s.handleShards)
}

// handleHealthz reports liveness: the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports readiness: 503 while draining or while the
// breaker holds the circuit open.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	switch {
	case draining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.breaker.State() == resilience.Open:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "circuit-open"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// handleJobs serves POST (submit) and GET (list) on /api/v1/jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		s.handleList(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleSubmit admits one job: validate, reserve gate capacity (429 on
// saturation), journal the submit, and start the job goroutine.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if err := req.validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	if s.breaker.State() == resilience.Open {
		s.mu.Unlock()
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.Breaker.Cooldown))
		httpError(w, http.StatusServiceUnavailable, "job runner circuit open")
		return
	}
	res, err := s.gate.Reserve()
	if err != nil {
		s.shed++
		s.mu.Unlock()
		// The bounded queue is full: shed the request instead of
		// growing memory. Retry-After tells well-behaved clients when
		// to come back.
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		httpError(w, http.StatusTooManyRequests, "job queue saturated")
		return
	}
	s.seq++
	job := &Job{
		ID:         jobID(s.seq, req),
		Kind:       req.Kind,
		State:      StateQueued,
		Request:    req,
		DeadlineMS: s.deadlineMS(req.DeadlineMS),
	}
	if prev := s.jobs[job.ID]; prev != nil {
		// Same request re-submitted in the same sequence slot cannot
		// happen (seq is monotone), so an ID collision is a bug.
		s.mu.Unlock()
		res.Release()
		httpError(w, http.StatusInternalServerError, "job ID collision: %s", job.ID)
		return
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	seq := s.seq
	s.mu.Unlock()

	if err := s.journal.append(jobEvent{
		Event: "submit", Seq: seq, ID: job.ID,
		Request: &job.Request, DeadlineMS: job.DeadlineMS,
	}); err != nil {
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		res.Release()
		httpError(w, http.StatusInternalServerError, "journal submit: %v", err)
		return
	}
	s.startJob(job, res)
	writeJSON(w, http.StatusAccepted, job.snapshot(&s.mu))
}

// deadlineMS clamps a requested deadline to the server bounds.
func (s *Server) deadlineMS(requested int64) int64 {
	d := time.Duration(requested) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d.Milliseconds()
}

// startJob launches the job goroutine. res may be nil (restart
// overflow), in which case the goroutine acquires a slot directly.
func (s *Server) startJob(job *Job, res *resilience.Reservation) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if res != nil {
			if err := res.Wait(s.jobsCtx); err != nil {
				s.finishJob(job, nil, err)
				return
			}
			defer res.Release()
		} else {
			if err := s.gate.Acquire(s.jobsCtx); err != nil && !errors.Is(err, resilience.ErrSaturated) {
				s.finishJob(job, nil, err)
				return
			} else if err == nil {
				defer s.gate.Release()
			}
			// ErrSaturated cannot happen here: Acquire blocks on the
			// running channel only after claiming a ticket, and restart
			// overflow jobs skip the ticket path via nil res. Treat a
			// saturated error defensively as "run unthrottled".
		}

		s.setState(job, StateRunning, "", nil)
		ctx, cancel := context.WithTimeoutCause(s.jobsCtx,
			time.Duration(job.DeadlineMS)*time.Millisecond, errDeadline)
		defer cancel()
		done, berr := s.breaker.Allow()
		if berr != nil {
			s.finishJob(job, nil, berr)
			return
		}
		result, err := s.runner(ctx, job)
		// Only infrastructure failures should trip the breaker: a
		// drain or a job deadline says nothing about the runner's
		// health.
		if isInterrupt(err) || errors.Is(err, errDeadline) {
			done(nil)
		} else {
			done(err)
		}
		s.finishJob(job, result, err)
	}()
}

// isInterrupt reports whether err marks a drain-style interruption
// (job must resume on restart) rather than a terminal failure.
func isInterrupt(err error) bool {
	return errors.Is(err, ErrDraining) ||
		(errors.Is(err, campaign.ErrInterrupted) && !errors.Is(err, errDeadline))
}

// finishJob journals the job's terminal (or interrupted) state.
func (s *Server) finishJob(job *Job, result json.RawMessage, err error) {
	switch {
	case err == nil:
		s.setState(job, StateDone, "", result)
	case isInterrupt(err):
		s.setState(job, StateInterrupted, err.Error(), nil)
	default:
		s.setState(job, StateFailed, err.Error(), nil)
	}
}

// setState mutates the job under the lock and journals the change.
func (s *Server) setState(job *Job, state JobState, msg string, result json.RawMessage) {
	s.mu.Lock()
	job.State = state
	job.Error = msg
	if result != nil {
		job.Result = result
	}
	s.mu.Unlock()
	if err := s.journal.append(jobEvent{Event: "state", ID: job.ID, State: state, Error: msg, Result: result}); err != nil {
		// The in-memory state is still correct; a restart may redo the
		// transition. Resumable by design, so log-and-continue would be
		// the production move — with no logger dependency, the error is
		// folded into the job record instead.
		s.mu.Lock()
		if job.Error == "" {
			job.Error = fmt.Sprintf("journal append failed: %v", err)
		}
		s.mu.Unlock()
	}
}

// snapshot returns a copy of the job safe to marshal outside the lock.
func (j *Job) snapshot(mu *sync.Mutex) Job {
	mu.Lock()
	defer mu.Unlock()
	cp := *j
	return cp
}

// handleList serves GET /api/v1/jobs.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// handleJob serves GET /api/v1/jobs/{id} and dispatches the
// GET /api/v1/jobs/{id}/progress SSE stream.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	if rest, ok := strings.CutSuffix(id, "/progress"); ok {
		s.handleProgress(w, r, rest)
		return
	}
	s.mu.Lock()
	job, ok := s.jobs[id]
	var cp Job
	if ok {
		cp = *job
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, cp)
}

// Drain stops admitting jobs, cancels every in-flight job with
// ErrDraining, and waits (bounded by ctx) until all job goroutines
// have journaled their final state. Campaign jobs flush their
// checkpoint journals on the way out, so a restarted server resumes
// them bit-identically. The jobs journal is closed on return.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.drainCause(ErrDraining)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("serve: drain cut short: %w", context.Cause(ctx))
	}
	if cerr := s.journal.close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// ---- small HTTP helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retryAfterSeconds renders a Retry-After header value: the duration
// in whole seconds, rounded UP, at least 1. Rounding down would tell
// clients to come back before the window ends (a 2.5 s cooldown would
// advertise "2"), re-shedding well-behaved retries.
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
