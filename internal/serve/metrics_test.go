package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRetryAfterSecondsRoundsUp is the regression test for the
// truncated Retry-After hint: a fractional cooldown must round up so
// clients do not retry into a still-closed window.
func TestRetryAfterSecondsRoundsUp(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{300 * time.Millisecond, "1"},
		{time.Second, "1"},
		{2500 * time.Millisecond, "3"},
		{3 * time.Second, "3"},
		{3*time.Second + time.Millisecond, "4"},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// TestOverloadShedFractionalRetryAfter drives the 429 path with a
// fractional RetryAfter and checks the header advertises the rounded-UP
// wait, end to end through the handler.
func TestOverloadShedFractionalRetryAfter(t *testing.T) {
	release := make(chan struct{})
	ran := make(chan string, 16)
	runner := func(ctx context.Context, job *Job) (json.RawMessage, error) {
		ran <- job.ID
		select {
		case <-release:
			return json.RawMessage(`"ok"`), nil
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1, Runner: runner,
		RetryAfter: 2500 * time.Millisecond})

	resp1, job1 := submit(t, ts, campaignReq(5))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("job1 status = %d", resp1.StatusCode)
	}
	<-ran
	resp2, job2 := submit(t, ts, campaignReq(6))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("job2 status = %d", resp2.StatusCode)
	}
	resp3, _ := submit(t, ts, campaignReq(7))
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job3 status = %d, want 429", resp3.StatusCode)
	}
	if got := resp3.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After for a 2.5s hint = %q, want \"3\" (rounded up)", got)
	}
	close(release)
	waitState(t, ts, job1.ID, StateDone)
	waitState(t, ts, job2.ID, StateDone)

	// The shed submit must show up on /metrics.
	body := scrapeMetrics(t, ts.URL)
	if !strings.Contains(body, "unsync_serve_shed_total 1\n") {
		t.Errorf("metrics missing shed count:\n%s", body)
	}
}

// scrapeMetrics GETs /metrics and returns the body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsExposesJobEvents runs a real campaign job to completion
// and checks its campaign counters appear as per-job event samples in
// the Prometheus text output, alongside the serve gauges.
func TestMetricsExposesJobEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, job := submit(t, ts, campaignReq(20))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	waitState(t, ts, job.ID, StateDone)

	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"# TYPE unsync_serve_inflight_jobs gauge",
		"# TYPE unsync_serve_breaker_state gauge",
		"unsync_serve_breaker_state 0",
		`unsync_serve_jobs{state="done"} 1`,
		"# TYPE unsync_job_event_total counter",
		`unsync_job_event_total{job="` + job.ID + `",event="CAMPAIGN.TRIALS"} 20`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	// Every exposition line must be a comment or `name{labels} value` —
	// a cheap parse check that keeps the output scrapeable.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("unscrapeable metrics line %q", line)
		}
	}

	// POST must be rejected: the endpoint is read-only.
	post, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", post.StatusCode)
	}
}
