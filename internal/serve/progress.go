package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/stream"
)

// handleProgress serves GET /api/v1/jobs/{id}/progress as a
// Server-Sent-Events stream of stream.Frame JSON documents, one
// `data:` event per frame, ending with a frame marked "final": true.
//
// The stream is a drop-throttled tap on the job's streaming plane: a
// slow or stalled subscriber sheds intermediate frames (each frame
// carries the full cumulative state, so nothing is lost but
// granularity) and can never backpressure trial execution — the
// plane's fanout uses non-blocking sends. The final frame is
// guaranteed delivery even to a reader that never kept up.
//
// A job that ran in a previous process has no live plane; the endpoint
// then synthesizes one final frame from the journaled Result so late
// clients still get a terminal answer.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request, id string) {
	state, result, plane, ok := s.progressState(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeFrame := func(fr stream.Frame) bool {
		b, err := json.Marshal(fr)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	// A client can connect in the submit→run gap, before the runner
	// registers the job's plane. Wait for the plane (or a terminal
	// state) rather than answering with an empty non-final frame; the
	// wait is bounded by the client's own connection lifetime.
	if plane == nil && state != StateDone && state != StateFailed {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for plane == nil && state != StateDone && state != StateFailed {
			select {
			case <-tick.C:
				state, result, plane, _ = s.progressState(id)
			case <-r.Context().Done():
				return
			}
		}
	}

	if plane == nil {
		// No live plane: the job ran in a previous process (journal
		// replay keeps terminal jobs but not planes) or is not a
		// campaign. Synthesize the one terminal frame the client can
		// still be given.
		writeFrame(finalFrame(state, result))
		return
	}

	tap := plane.Subscribe(8)
	defer tap.Cancel()
	for {
		select {
		case fr, open := <-tap.C:
			if !open {
				return
			}
			if !writeFrame(fr) || fr.Final {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// progressState snapshots the fields handleProgress needs under one
// lock acquisition.
func (s *Server) progressState(id string) (JobState, json.RawMessage, *stream.Plane, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return "", nil, nil, false
	}
	return job.State, job.Result, s.planes[id], true
}

// finalFrame builds the terminal frame of a job with no live plane. A
// done campaign job contributes its Result statistics; anything else
// yields an empty final frame.
func finalFrame(state JobState, result json.RawMessage) stream.Frame {
	fr := stream.Frame{Final: state == StateDone || state == StateFailed}
	if len(result) == 0 {
		return fr
	}
	var res campaign.Result
	if err := json.Unmarshal(result, &res); err != nil || res.Ran == 0 {
		return fr
	}
	fr.Done = uint64(res.Ran)
	fr.Failed = uint64(res.Failed)
	fr.Rate = res.SDCRate
	fr.Lo = res.SDCLo
	fr.Hi = res.SDCHi
	fr.Width = res.SDCHi - res.SDCLo
	return fr
}
