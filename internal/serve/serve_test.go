package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/resilience"
)

// compactJSON normalizes whitespace so results can be compared
// byte-for-byte regardless of the transport's indentation.
func compactJSON(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatalf("compact %q: %v", b, err)
	}
	return buf.Bytes()
}

// newTestServer builds a server over a fresh state dir.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// submit POSTs a job and decodes the response.
func submit(t *testing.T, ts *httptest.Server, req JobRequest) (*http.Response, Job) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
	}
	return resp, job
}

// getJob fetches one job's state.
func getJob(t *testing.T, ts *httptest.Server, id string) Job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

// waitState polls until the job reaches a wanted state or the budget
// runs out.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...JobState) Job {
	t.Helper()
	var job Job
	for i := 0; i < 2000; i++ {
		job = getJob(t, ts, id)
		for _, w := range want {
			if job.State == w {
				return job
			}
		}
		time.Sleep(5 * time.Millisecond) //unsync:allow-sleep test poll for job state
	}
	t.Fatalf("job %s stuck in state %s (err %q), want one of %v", id, job.State, job.Error, want)
	return job
}

// campaignReq is the standard small campaign used across tests.
func campaignReq(trials int) JobRequest {
	return JobRequest{
		Kind: KindCampaign,
		Campaign: &CampaignParams{
			Prog:     "checksum",
			Scheme:   campaign.SchemeUnSync,
			Trials:   trials,
			Seed:     7,
			MaxSteps: 20_000,
			Workers:  2,
		},
	}
}

// directResult runs the same campaign uninterrupted, without any
// journal, and returns its marshaled result — the bit-identical
// reference for the service runs.
func directResult(t *testing.T, req JobRequest) []byte {
	t.Helper()
	prog, err := req.Campaign.Program()
	if err != nil {
		t.Fatal(err)
	}
	spec := req.Campaign.spec("")
	spec.Resume = false
	res, err := campaign.Run(prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSubmitStatusResult(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := campaignReq(20)
	resp, job := submit(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if job.ID == "" || job.Kind != KindCampaign {
		t.Fatalf("bad job echo: %+v", job)
	}
	done := waitState(t, ts, job.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	if !bytes.Equal(compactJSON(t, done.Result), directResult(t, req)) {
		t.Fatalf("service result differs from direct run:\n%s", done.Result)
	}
	// The result must also decode as a campaign.Result with every
	// trial accounted for.
	var res campaign.Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Ran != 20 || res.Failed != 0 {
		t.Fatalf("ran %d/%d, failed %d", res.Ran, res.Requested, res.Failed)
	}
}

func TestOverloadSheds429(t *testing.T) {
	release := make(chan struct{})
	ran := make(chan string, 16)
	runner := func(ctx context.Context, job *Job) (json.RawMessage, error) {
		ran <- job.ID
		select {
		case <-release:
			return json.RawMessage(`"ok"`), nil
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1, Runner: runner, RetryAfter: 3 * time.Second})

	resp1, job1 := submit(t, ts, campaignReq(5))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("job1 status = %d", resp1.StatusCode)
	}
	<-ran // job1 holds the only worker slot
	resp2, job2 := submit(t, ts, campaignReq(6))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("job2 status = %d (should occupy the queue)", resp2.StatusCode)
	}
	// Slot busy, queue full: the third submit must be shed.
	resp3, _ := submit(t, ts, campaignReq(7))
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job3 status = %d, want 429", resp3.StatusCode)
	}
	if got := resp3.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	close(release)
	if j := waitState(t, ts, job1.ID, StateDone); !bytes.Equal(compactJSON(t, j.Result), []byte(`"ok"`)) {
		t.Fatalf("job1 result = %s", j.Result)
	}
	waitState(t, ts, job2.ID, StateDone)
}

func TestDrainRestartResumesBitIdentical(t *testing.T) {
	stateDir := t.TempDir()
	req := campaignReq(1500)
	srv, ts := newTestServer(t, Config{StateDir: stateDir})
	resp, job := submit(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	// Wait until the campaign has journaled some completed trials,
	// proving the drain hits it mid-run.
	ckpt := filepath.Join(stateDir, "checkpoints", job.ID+".jsonl")
	for i := 0; ; i++ {
		if b, err := os.ReadFile(ckpt); err == nil && bytes.Count(b, []byte("\n")) >= 10 {
			break
		}
		if i > 2000 {
			t.Fatal("campaign never journaled 10 trials")
		}
		time.Sleep(5 * time.Millisecond) //unsync:allow-sleep test poll for checkpoint growth
	}

	// SIGTERM path: drain cancels the job and waits for the journals.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	trialsAtDrain := 0
	if b, err := os.ReadFile(ckpt); err == nil {
		trialsAtDrain = bytes.Count(b, []byte("\n"))
	}
	if trialsAtDrain >= 1500 {
		t.Skip("campaign finished before the drain; host too fast for this cut")
	}

	// Restart over the same state dir: the interrupted job re-enters
	// the queue and resumes from its checkpoint.
	srv2, ts2 := newTestServer(t, Config{StateDir: stateDir})
	done := waitState(t, ts2, job.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("resumed job failed: %s", done.Error)
	}
	if err := srv2.Drain(context.Background()); err != nil {
		t.Fatalf("final drain: %v", err)
	}

	// The resumed run must be bit-identical to one uninterrupted run.
	if want := directResult(t, req); !bytes.Equal(compactJSON(t, done.Result), want) {
		t.Fatalf("resumed result differs from uninterrupted run\n got: %s\nwant: %s", done.Result, want)
	}
	// And the checkpoint must not have re-run the pre-drain trials.
	var res campaign.Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Ran != 1500 {
		t.Fatalf("resumed campaign ran %d trials, want 1500", res.Ran)
	}
}

func TestJobDeadlineFailsTerminally(t *testing.T) {
	runner := func(ctx context.Context, job *Job) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}
	_, ts := newTestServer(t, Config{Runner: runner})
	req := campaignReq(5)
	req.DeadlineMS = 30
	_, job := submit(t, ts, req)
	failed := waitState(t, ts, job.ID, StateFailed, StateDone, StateInterrupted)
	if failed.State != StateFailed {
		t.Fatalf("state = %s, want failed (a deadline is terminal, not resumable)", failed.State)
	}
	if !strings.Contains(failed.Error, "deadline") {
		t.Fatalf("error = %q, want a deadline cause", failed.Error)
	}
}

func TestDeadlineClamping(t *testing.T) {
	s, ts := newTestServer(t, Config{DefaultDeadline: 2 * time.Second, MaxDeadline: 5 * time.Second,
		Runner: func(ctx context.Context, job *Job) (json.RawMessage, error) {
			return json.RawMessage(`"ok"`), nil
		}})
	_ = s
	req := campaignReq(1)
	_, job := submit(t, ts, req)
	if job.DeadlineMS != 2000 {
		t.Fatalf("default deadline = %d ms, want 2000", job.DeadlineMS)
	}
	req2 := campaignReq(2)
	req2.DeadlineMS = 60_000
	_, job2 := submit(t, ts, req2)
	if job2.DeadlineMS != 5000 {
		t.Fatalf("clamped deadline = %d ms, want 5000", job2.DeadlineMS)
	}
}

func TestBreakerOpensAfterRunnerFailures(t *testing.T) {
	boom := errors.New("runner broken")
	runner := func(ctx context.Context, job *Job) (json.RawMessage, error) { return nil, boom }
	_, ts := newTestServer(t, Config{
		Runner:  runner,
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
	})
	_, j1 := submit(t, ts, campaignReq(1))
	waitState(t, ts, j1.ID, StateFailed)
	_, j2 := submit(t, ts, campaignReq(2))
	waitState(t, ts, j2.ID, StateFailed)

	// Circuit open: submissions are rejected and readiness reports it.
	resp, _ := submit(t, ts, campaignReq(3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with open circuit = %d, want 503", resp.StatusCode)
	}
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open circuit = %d, want 503", ready.StatusCode)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", ep, resp.StatusCode)
		}
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	// Liveness stays green during a drain.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d", resp.StatusCode)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []JobRequest{
		{Kind: "nonsense"},
		{Kind: KindCampaign},
		{Kind: KindCampaign, Campaign: &CampaignParams{Prog: "no-such-prog"}},
		{Kind: KindCampaign, Campaign: &CampaignParams{Prog: "checksum", Spaces: []string{"warp-core"}}},
		{Kind: KindCampaign, Campaign: &CampaignParams{Prog: "checksum", Scheme: "tmr"}},
		{Kind: KindFigure},
		{Kind: KindFigure, Figure: &FigureParams{Name: "fig99"}},
	}
	for i, req := range cases {
		resp, _ := submit(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
	// Inline source assembles at submit time.
	resp, _ := submit(t, ts, JobRequest{Kind: KindCampaign,
		Campaign: &CampaignParams{Source: "this is not assembly"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad source: status = %d, want 400", resp.StatusCode)
	}
}

func TestJournalReplayKeepsDoneJobs(t *testing.T) {
	stateDir := t.TempDir()
	srv, ts := newTestServer(t, Config{StateDir: stateDir, Runner: func(ctx context.Context, job *Job) (json.RawMessage, error) {
		return json.RawMessage(`{"answer":42}`), nil
	}})
	_, job := submit(t, ts, campaignReq(3))
	waitState(t, ts, job.ID, StateDone)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	srv2, ts2 := newTestServer(t, Config{StateDir: stateDir})
	got := getJob(t, ts2, job.ID)
	if got.State != StateDone || !bytes.Equal(compactJSON(t, got.Result), []byte(`{"answer":42}`)) {
		t.Fatalf("replayed job = %s result %s", got.State, got.Result)
	}
	// A done job must not re-run after restart.
	list, err := http.Get(ts2.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var body struct{ Jobs []Job }
	if err := json.NewDecoder(list.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Jobs) != 1 || body.Jobs[0].State != StateDone {
		t.Fatalf("job list after restart: %+v", body.Jobs)
	}
	if err := srv2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/api/v1/jobs/j999999-deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestFigureJob(t *testing.T) {
	if testing.Short() {
		t.Skip("figure job runs a full quick study")
	}
	_, ts := newTestServer(t, Config{})
	_, job := submit(t, ts, JobRequest{Kind: KindFigure, Figure: &FigureParams{Name: "roec", Trials: 6}})
	done := waitState(t, ts, job.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("figure job failed: %s", done.Error)
	}
	if !bytes.Contains(done.Result, []byte("UnSyncCampaign")) {
		t.Fatalf("figure result lacks campaign tally: %.200s", done.Result)
	}
}

// TestDeterministicJobIDs pins the no-wall-clock ID rule: the same
// request at the same sequence number always maps to the same ID, so
// checkpoint paths survive a restart.
func TestDeterministicJobIDs(t *testing.T) {
	req := campaignReq(9)
	a, b := jobID(12, req), jobID(12, req)
	if a != b {
		t.Fatalf("jobID not deterministic: %s vs %s", a, b)
	}
	if c := jobID(13, req); c == a {
		t.Fatalf("sequence number ignored: %s", c)
	}
	if !strings.HasPrefix(a, fmt.Sprintf("j%06d-", 12)) {
		t.Fatalf("ID format drifted: %s", a)
	}
}
