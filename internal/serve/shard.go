package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/campaign"
)

// ShardRequest is the body of POST /api/v1/shards: one leased slice of
// a campaign's deterministic trial space. The coordinator (internal/
// fabric) derives Key from the same params on its side; the worker
// recomputes it and refuses a range whose key disagrees — a fleet must
// never mix trials from two different campaigns into one journal.
type ShardRequest struct {
	Campaign CampaignParams `json:"campaign"`
	// Lo and Hi bound the trial range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Skip lists trial indices inside [Lo, Hi) already completed
	// elsewhere (a re-lease after a partial stream, or a resumed
	// coordinator): the worker does not re-run them.
	Skip []int `json:"skip,omitempty"`
	// Key is the campaign params key the coordinator derived
	// (campaign.Spec.Key). Mandatory; a mismatch is answered 409.
	Key string `json:"key"`
}

// ShardLine is one line of the shard response stream: a trial record,
// a terminal EOF marker (clean worker-side completion), or a terminal
// worker-side error. Exactly one of the fields is set per line. A
// stream that ends without an EOF or Err line was torn — the client
// must treat the unreceived remainder of the range as never run.
type ShardLine struct {
	Rec *campaign.TrialRecord `json:"rec,omitempty"`
	// EOF marks clean completion; Sent counts the records streamed.
	EOF  bool `json:"eof,omitempty"`
	Sent int  `json:"sent,omitempty"`
	// Err reports a shard cut short worker-side (cancellation, panic
	// isolation). Records already streamed remain valid.
	Err string `json:"err,omitempty"`
}

// handleShards serves POST /api/v1/shards: execute one leased trial
// range and stream its records back as JSONL, flushed per record so
// the stream doubles as the lease heartbeat — every line resets the
// coordinator's deadline, and a SIGKILLed worker tears the connection
// within one TCP timeout instead of silently holding the lease.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.EnableShards {
		httpError(w, http.StatusNotFound, "shard execution disabled; run this node with -worker")
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req ShardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode shard request: %v", err)
		return
	}
	prog, spec, err := req.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := spec.Key(campaign.ProgHash(prog))
	if req.Key != key {
		// 409, not 400: the request is well-formed, but this worker's
		// view of the campaign params disagrees with the coordinator's —
		// running it would poison the merged journal.
		httpError(w, http.StatusConflict, "params key mismatch: coordinator sent %s, worker derived %s", req.Key, key)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.mu.Unlock()
	res, rerr := s.gate.Reserve()
	if rerr != nil {
		s.mu.Lock()
		s.shed++
		s.mu.Unlock()
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		httpError(w, http.StatusTooManyRequests, "worker saturated")
		return
	}
	defer res.Release()
	if err := res.Wait(r.Context()); err != nil {
		httpError(w, http.StatusServiceUnavailable, "waiting for a slot: %v", err)
		return
	}

	s.mu.Lock()
	s.shardsActive++
	s.shardsTotal++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.shardsActive--
		s.mu.Unlock()
	}()

	// A server drain must cut shard streams exactly like jobs: the
	// coordinator sees a torn stream and re-leases the remainder.
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stop := context.AfterFunc(s.jobsCtx, func() { cancel(ErrDraining) })
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	emit := func(rec campaign.TrialRecord) error {
		if err := enc.Encode(ShardLine{Rec: &rec}); err != nil {
			return err // client gone; stop the shard
		}
		if flusher != nil {
			flusher.Flush()
		}
		sent++
		s.mu.Lock()
		s.shardTrials++
		s.mu.Unlock()
		return nil
	}

	skip := make(map[int]bool, len(req.Skip))
	for _, i := range req.Skip {
		skip[i] = true
	}
	runErr := campaign.RunShard(ctx, prog, spec, req.Lo, req.Hi, skip, emit)
	if runErr != nil {
		s.mu.Lock()
		s.shardFailures++
		s.mu.Unlock()
		// The status line is long gone; the terminal Err line is the
		// in-band failure signal. A torn connection drops it too — the
		// coordinator treats "no terminal line" exactly like Err.
		_ = enc.Encode(ShardLine{Err: runErr.Error()})
	} else {
		_ = enc.Encode(ShardLine{EOF: true, Sent: sent})
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// resolve validates the shard request and builds its program and spec.
func (req *ShardRequest) resolve() (*asm.Program, campaign.Spec, error) {
	var spec campaign.Spec
	if err := req.Campaign.Validate(); err != nil {
		return nil, spec, err
	}
	prog, err := req.Campaign.Program()
	if err != nil {
		return nil, spec, err // validate assembled it; unreachable in practice
	}
	spec = req.Campaign.Spec()
	if req.Key == "" {
		return nil, spec, errors.New("shard request missing the campaign params key")
	}
	trials := spec.Trials
	if trials == 0 {
		trials = 100 // withDefaults mirror, for the bounds check message
	}
	if req.Lo < 0 || req.Hi > trials || req.Lo >= req.Hi {
		return nil, spec, fmt.Errorf("shard range [%d, %d) outside trial space [0, %d)", req.Lo, req.Hi, trials)
	}
	return prog, spec, nil
}
