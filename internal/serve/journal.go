package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/cmlasu/unsync/internal/resilience"
)

// jobEvent is one line of the jobs journal: a submit (full request) or
// a state transition. The journal is append-only JSONL — the same
// durability design as the campaign checkpoint (PR 4): every event is
// flushed as written, a torn tail from a kill is tolerated on load,
// and replaying the file reconstructs every job's latest state.
type jobEvent struct {
	Event string `json:"event"` // "submit" or "state"
	Seq   uint64 `json:"seq,omitempty"`
	ID    string `json:"id"`

	// submit fields
	Request    *JobRequest `json:"request,omitempty"`
	DeadlineMS int64       `json:"deadline_ms,omitempty"`

	// state fields
	State  JobState        `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// jobJournal appends job events durably and replays them at startup.
type jobJournal struct {
	mu sync.Mutex
	f  *os.File
}

// journalRetry is the backoff schedule for journal appends: a
// transient filesystem error (EINTR, brief ENOSPC) should not lose a
// job transition when a short retry absorbs it.
var journalRetry = resilience.Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Attempts: 3}

// openJournal opens (creating if absent) the jobs journal for append.
func openJournal(path string) (*jobJournal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open journal: %w", err)
	}
	return &jobJournal{f: f}, nil
}

// append writes one event and flushes it to the OS: a job transition
// survives a SIGKILL the instant append returns.
//
// The mutex guards only line-atomicity of the write itself. The retry
// sleeps and the fsync happen outside it: a stalled disk must not make
// every other job's transition queue behind this one's backoff, and
// Sync flushes the whole file, so a concurrent append's bytes are
// flushed either by its own Sync or by ours — both orders are durable.
func (j *jobJournal) append(ev jobEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("serve: marshal journal event: %w", err)
	}
	b = append(b, '\n')
	return resilience.Retry(context.Background(), journalRetry, func(context.Context) error {
		if err := j.write(b); err != nil {
			return err
		}
		return j.f.Sync()
	})
}

// write appends one marshalled line under the mutex. A short write
// rolls the file back to its pre-write size so a retry (or a later
// append from another job) never interleaves with a torn fragment:
// the journal stays line-aligned even across in-process write errors,
// not just across kills.
func (j *jobJournal) write(b []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	st, err := j.f.Stat()
	if err != nil {
		return err
	}
	if _, werr := j.f.Write(b); werr != nil {
		_ = j.f.Truncate(st.Size())
		return werr
	}
	return nil
}

// close closes the journal file.
func (j *jobJournal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// loadJournal replays the jobs journal: it returns every job keyed by
// ID at its latest recorded state, in submit order, plus the highest
// sequence number seen. A torn final line (a crash mid-append) is
// skipped; any other malformed line fails the load loudly.
func loadJournal(path string) (jobs []*Job, maxSeq uint64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serve: open journal: %w", err)
	}
	defer f.Close()

	byID := map[string]*Job{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev jobEvent
		if uerr := json.Unmarshal(raw, &ev); uerr != nil {
			// A torn tail is expected after a kill; anything earlier is
			// corruption worth failing over.
			if peekEOF(sc) {
				break
			}
			return nil, 0, fmt.Errorf("serve: journal line %d: %w", line, uerr)
		}
		switch ev.Event {
		case "submit":
			if ev.Request == nil {
				return nil, 0, fmt.Errorf("serve: journal line %d: submit without request", line)
			}
			job := &Job{
				ID:         ev.ID,
				Kind:       ev.Request.Kind,
				State:      StateQueued,
				Request:    *ev.Request,
				DeadlineMS: ev.DeadlineMS,
			}
			byID[ev.ID] = job
			jobs = append(jobs, job)
			if ev.Seq > maxSeq {
				maxSeq = ev.Seq
			}
		case "state":
			job, ok := byID[ev.ID]
			if !ok {
				return nil, 0, fmt.Errorf("serve: journal line %d: state for unknown job %s", line, ev.ID)
			}
			job.State = ev.State
			job.Error = ev.Error
			if ev.Result != nil {
				job.Result = ev.Result
			}
		default:
			return nil, 0, fmt.Errorf("serve: journal line %d: unknown event %q", line, ev.Event)
		}
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, fmt.Errorf("serve: read journal: %w", serr)
	}
	return jobs, maxSeq, nil
}

// peekEOF reports whether the scanner has no further lines — i.e. the
// just-failed line is the file's torn tail.
func peekEOF(sc *bufio.Scanner) bool {
	return !sc.Scan() && sc.Err() == nil
}
