// Package serve implements the campaign job service behind
// cmd/unsync-serve: an HTTP API that accepts fault-injection campaign
// and figure-experiment jobs as JSON, runs them on a bounded worker
// pool with per-job deadlines, sheds load when the admission queue is
// full, and journals every job so a drained (SIGTERM) server resumes
// interrupted campaigns bit-identically after restart.
package serve

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/progs"
)

// JobKind names what a job runs.
type JobKind string

// Job kinds.
const (
	// KindCampaign runs a fault-injection campaign (internal/campaign)
	// with a per-job checkpoint journal, so an interrupted job resumes.
	KindCampaign JobKind = "campaign"
	// KindFigure regenerates one of the paper's figure/table studies.
	KindFigure JobKind = "figure"
)

// JobState is a job's lifecycle position.
type JobState string

// Job states. Queued and Running are live; Done and Failed are
// terminal; Interrupted marks a job cut short by a drain — it is NOT
// terminal and re-enters the queue when the server restarts.
const (
	StateQueued      JobState = "queued"
	StateRunning     JobState = "running"
	StateDone        JobState = "done"
	StateFailed      JobState = "failed"
	StateInterrupted JobState = "interrupted"
)

// CampaignParams is the JSON body of a campaign job: the unsync-fault
// flag surface, minus host-local paths (the server owns the
// checkpoint placement).
type CampaignParams struct {
	// Prog names a library program (progs.ByName). Empty selects
	// Source instead.
	Prog string `json:"prog,omitempty"`
	// Source is inline assembly text, the alternative to Prog.
	Source string `json:"source,omitempty"`

	Scheme     string   `json:"scheme,omitempty"`
	Trials     int      `json:"trials,omitempty"`
	Seed       uint64   `json:"seed,omitempty"`
	Spaces     []string `json:"spaces,omitempty"`
	FI         int      `json:"fi,omitempty"`
	MaxSteps   uint64   `json:"max_steps,omitempty"`
	StepBudget uint64   `json:"step_budget,omitempty"`
	Workers    int      `json:"workers,omitempty"`
	CIWidth    float64  `json:"ci_width,omitempty"`
	// TrialTimeoutMS is the per-trial wall-clock watchdog in
	// milliseconds (campaign.Spec.TrialTimeout).
	TrialTimeoutMS int64 `json:"trial_timeout_ms,omitempty"`
}

// FigureParams is the JSON body of a figure job.
type FigureParams struct {
	// Name selects the study: fig4, fig5, fig6, ser, roec, coverage.
	Name string `json:"name"`
	// Quick selects the scaled-down smoke configuration instead of the
	// full-fidelity one.
	Quick bool `json:"quick,omitempty"`
	// Trials parameterizes roec and coverage (default 100).
	Trials int `json:"trials,omitempty"`
}

// JobRequest is the submit body (POST /api/v1/jobs).
type JobRequest struct {
	Kind JobKind `json:"kind"`
	// DeadlineMS bounds the job's wall-clock runtime in milliseconds.
	// Zero selects the server default; values above the server maximum
	// are clamped.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	Campaign *CampaignParams `json:"campaign,omitempty"`
	Figure   *FigureParams   `json:"figure,omitempty"`
}

// validate checks the request shape and resolves what it can without
// running anything; it returns the assembled program for campaign
// jobs (proving the source assembles before the job is admitted).
func (r *JobRequest) validate() error {
	switch r.Kind {
	case KindCampaign:
		if r.Campaign == nil {
			return fmt.Errorf("campaign job missing the campaign params object")
		}
		if err := r.Campaign.Validate(); err != nil {
			return err
		}
	case KindFigure:
		if r.Figure == nil {
			return fmt.Errorf("figure job missing the figure params object")
		}
		if _, ok := figureRunners[strings.ToLower(r.Figure.Name)]; !ok {
			return fmt.Errorf("unknown figure %q (want one of %s)", r.Figure.Name, figureNames())
		}
	default:
		return fmt.Errorf("unknown job kind %q (want %s or %s)", r.Kind, KindCampaign, KindFigure)
	}
	return nil
}

// Validate checks the campaign params without running anything: the
// program assembles, the space names resolve, the scheme is known. It
// is shared by job submission, shard execution, and the fabric
// coordinator (which validates params before splitting the space).
func (p *CampaignParams) Validate() error {
	if _, err := p.Program(); err != nil {
		return err
	}
	if _, err := p.spaces(); err != nil {
		return err
	}
	if s := p.Scheme; s != "" && s != campaign.SchemeUnSync && s != campaign.SchemeReunion {
		return fmt.Errorf("unknown scheme %q (want %s or %s)", s, campaign.SchemeUnSync, campaign.SchemeReunion)
	}
	return nil
}

// Program assembles the campaign workload. Exported for the fabric
// coordinator, which needs the program hash to derive the params key.
func (p *CampaignParams) Program() (*asm.Program, error) {
	switch {
	case p.Prog != "" && p.Source != "":
		return nil, fmt.Errorf("campaign job sets both prog and source; pick one")
	case p.Prog != "":
		lib, ok := progs.ByName(p.Prog)
		if !ok {
			return nil, fmt.Errorf("unknown library program %q", p.Prog)
		}
		return lib.Assemble()
	case p.Source != "":
		prog, err := asm.Assemble(p.Source)
		if err != nil {
			return nil, fmt.Errorf("assemble source: %w", err)
		}
		return prog, nil
	default:
		return nil, fmt.Errorf("campaign job needs a prog name or inline source")
	}
}

// spaces resolves the fault-space names.
func (p *CampaignParams) spaces() ([]fault.Space, error) {
	var out []fault.Space
	for _, name := range p.Spaces {
		sp, ok := fault.SpaceByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown fault space %q (want int-reg, fp-reg, pc, mem or cb)", name)
		}
		out = append(out, sp)
	}
	return out, nil
}

// Spec builds the campaign.Spec these params describe, with no
// checkpoint wiring. Exported because the distributed fabric derives
// the campaign params key — the lease-protocol contract between
// coordinator and workers — from exactly this Spec.
func (p *CampaignParams) Spec() campaign.Spec {
	spaces, _ := p.spaces() // validated at submit
	return campaign.Spec{
		Scheme:       p.Scheme,
		Trials:       p.Trials,
		Seed:         p.Seed,
		MaxSteps:     p.MaxSteps,
		StepBudget:   p.StepBudget,
		Spaces:       spaces,
		FI:           p.FI,
		Workers:      p.Workers,
		CIWidth:      p.CIWidth,
		TrialTimeout: time.Duration(p.TrialTimeoutMS) * time.Millisecond,
	}
}

// spec builds the campaign.Spec for this job. checkpoint is the
// server-owned journal path; Resume is always on, so a job restarted
// after a drain continues from its completed trials bit-identically.
func (p *CampaignParams) spec(checkpoint string) campaign.Spec {
	s := p.Spec()
	s.Checkpoint = checkpoint
	s.Resume = true
	return s
}

// Job is one unit of server work. All fields are immutable after
// submit except State, Error and Result, which the server mutates
// under its lock.
type Job struct {
	ID         string     `json:"id"`
	Kind       JobKind    `json:"kind"`
	State      JobState   `json:"state"`
	Request    JobRequest `json:"request"`
	DeadlineMS int64      `json:"deadline_ms"`
	// Error is the terminal failure (or interruption cause).
	Error string `json:"error,omitempty"`
	// Result is the job's JSON output (campaign.Result or the figure
	// study's rows).
	Result json.RawMessage `json:"result,omitempty"`
}

// jobID derives the deterministic job identifier: a monotone sequence
// number plus a content hash of the request. No wall-clock component —
// a restarted server must regenerate the same checkpoint paths.
func jobID(seq uint64, req JobRequest) string {
	b, _ := json.Marshal(req)
	sum := sha256.Sum256(b)
	return fmt.Sprintf("j%06d-%08x", seq, sum[:4])
}
