package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/cmlasu/unsync/internal/journaltest"
)

// journalLines marshals n well-formed submit events, one journal line
// each (no trailing newline — journaltest adds those).
func journalLines(t testing.TB, n int) [][]byte {
	t.Helper()
	lines := make([][]byte, n)
	for i := range lines {
		b, err := json.Marshal(jobEvent{
			Event: "submit",
			Seq:   uint64(i + 1),
			ID:    fmt.Sprintf("job-%04d", i),
			Request: &JobRequest{
				Kind:     KindCampaign,
				Campaign: &CampaignParams{Prog: "checksum", Scheme: "unsync", Trials: 10, Seed: 7},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = b
	}
	return lines
}

// TestLoadJournalCorruptionCorpus runs the shared tail-corruption
// corpus against the jobs-journal loader. This is the STRICT loader:
// a torn (or garbage) final line is the expected residue of a kill and
// is skipped, but corruption followed by valid lines means the file
// was damaged and must fail the load loudly.
func TestLoadJournalCorruptionCorpus(t *testing.T) {
	lines := journalLines(t, 9)
	journaltest.Check(t, lines, true, func(path string) (int, error) {
		jobs, _, err := loadJournal(path)
		return len(jobs), err
	})
}

// FuzzLoadJournalTornTail asserts kill tolerance under arbitrary tail
// bytes: any unterminated fragment appended to a valid jobs journal
// must neither error nor change the replayed jobs.
func FuzzLoadJournalTornTail(f *testing.F) {
	for _, seed := range journaltest.Seeds() {
		f.Add(seed)
	}
	lines := journalLines(f, 4)
	var base []byte
	for _, line := range lines {
		base = append(base, line...)
		base = append(base, '\n')
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "jobs.jsonl")
		torn := append(append([]byte(nil), base...), journaltest.TornTail(data)...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		jobs, maxSeq, err := loadJournal(path)
		if err != nil {
			t.Fatalf("torn tail broke the loader: %v", err)
		}
		if len(jobs) != len(lines) {
			t.Fatalf("replayed %d jobs, want %d", len(jobs), len(lines))
		}
		if maxSeq != uint64(len(lines)) {
			t.Fatalf("maxSeq = %d, want %d", maxSeq, len(lines))
		}
	})
}
