package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/cmlasu/unsync/internal/campaign"
)

// shardKey derives the params key the coordinator would send for req.
func shardKey(t *testing.T, params CampaignParams) string {
	t.Helper()
	prog, err := params.Program()
	if err != nil {
		t.Fatal(err)
	}
	return params.Spec().Key(campaign.ProgHash(prog))
}

// postShard POSTs a shard request and decodes the NDJSON stream.
func postShard(t *testing.T, ts *httptest.Server, req ShardRequest) (*http.Response, []ShardLine) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/shards", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []ShardLine
	if resp.StatusCode == http.StatusOK {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() {
			var line ShardLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("shard stream line %q: %v", sc.Bytes(), err)
			}
			lines = append(lines, line)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return resp, lines
}

func TestShardsDisabledWithoutWorkerMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	params := *campaignReq(10).Campaign
	resp, _ := postShard(t, ts, ShardRequest{Campaign: params, Lo: 0, Hi: 10, Key: shardKey(t, params)})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("shards on a non-worker node: status %d, want 404", resp.StatusCode)
	}
}

func TestShardKeyMismatchIs409(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableShards: true})
	params := *campaignReq(10).Campaign
	resp, _ := postShard(t, ts, ShardRequest{Campaign: params, Lo: 0, Hi: 10, Key: "0000000000000000"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched params key: status %d, want 409", resp.StatusCode)
	}
}

func TestShardRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableShards: true})
	params := *campaignReq(10).Campaign
	key := shardKey(t, params)
	for _, tc := range []struct {
		name string
		req  ShardRequest
	}{
		{"inverted-range", ShardRequest{Campaign: params, Lo: 5, Hi: 5, Key: key}},
		{"past-trial-space", ShardRequest{Campaign: params, Lo: 0, Hi: 11, Key: key}},
		{"negative-lo", ShardRequest{Campaign: params, Lo: -1, Hi: 5, Key: key}},
		{"missing-key", ShardRequest{Campaign: params, Lo: 0, Hi: 10}},
		{"bad-params", ShardRequest{Campaign: CampaignParams{Prog: "no-such-prog", Trials: 10}, Lo: 0, Hi: 10, Key: key}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postShard(t, ts, tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestShardStreamsRangeWithTerminalEOF(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableShards: true})
	params := *campaignReq(20).Campaign
	req := ShardRequest{Campaign: params, Lo: 5, Hi: 15, Key: shardKey(t, params)}
	resp, lines := postShard(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if len(lines) != 11 {
		t.Fatalf("got %d stream lines, want 10 records + EOF", len(lines))
	}
	last := lines[len(lines)-1]
	if !last.EOF || last.Sent != 10 {
		t.Fatalf("terminal line = %+v, want EOF with Sent=10", last)
	}
	for i, line := range lines[:10] {
		if line.Rec == nil {
			t.Fatalf("line %d is not a record: %+v", i, line)
		}
		if line.Rec.Index != req.Lo+i {
			t.Fatalf("record %d has index %d, want %d (in-order range)", i, line.Rec.Index, req.Lo+i)
		}
		if line.Rec.Key != req.Key {
			t.Fatalf("record %d carries key %s, want %s", i, line.Rec.Key, req.Key)
		}
	}

	// Determinism across executions: the same range streams the same
	// bytes — the property every fabric re-lease and dedupe rests on.
	_, again := postShard(t, ts, req)
	a, _ := json.Marshal(lines)
	b, _ := json.Marshal(again)
	if !bytes.Equal(a, b) {
		t.Fatal("re-running the same shard produced different records")
	}
}

func TestShardSkipListSuppressesDoneTrials(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableShards: true})
	params := *campaignReq(20).Campaign
	req := ShardRequest{Campaign: params, Lo: 5, Hi: 15, Skip: []int{6, 9, 14}, Key: shardKey(t, params)}
	resp, lines := postShard(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	last := lines[len(lines)-1]
	if !last.EOF || last.Sent != 7 {
		t.Fatalf("terminal line = %+v, want EOF with Sent=7", last)
	}
	seen := map[int]bool{}
	for _, line := range lines[:len(lines)-1] {
		seen[line.Rec.Index] = true
	}
	for _, skipped := range req.Skip {
		if seen[skipped] {
			t.Errorf("skipped trial %d was streamed anyway", skipped)
		}
	}
	if len(seen) != 7 {
		t.Fatalf("streamed %d distinct indices, want 7", len(seen))
	}
}
