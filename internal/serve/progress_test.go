package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/stream"
)

// readSSE consumes an SSE response body into its frames, stopping at
// the final frame or stream end.
func readSSE(t *testing.T, resp *http.Response) []stream.Frame {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var frames []stream.Frame
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var fr stream.Frame
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &fr); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		frames = append(frames, fr)
		if fr.Final {
			break
		}
	}
	return frames
}

// openProgress starts the SSE stream for a job.
func openProgress(t *testing.T, tsURL, id string) *http.Response {
	t.Helper()
	resp, err := http.Get(tsURL + "/api/v1/jobs/" + id + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// The progress stream's final frame must agree with the job's Result:
// same trial count, same failure count, same Wilson interval — the SSE
// surface and the result surface describe one campaign.
func TestProgressFinalFrameMatchesResult(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, job := submit(t, ts, campaignReq(40))
	resp := openProgress(t, ts.URL, job.ID)
	frames := readSSE(t, resp)

	done := waitState(t, ts, job.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	var res campaign.Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}

	if len(frames) == 0 {
		t.Fatal("progress stream delivered no frames")
	}
	last := frames[len(frames)-1]
	if !last.Final {
		t.Fatalf("stream ended without a final frame: %+v", last)
	}
	if last.Done != uint64(res.Ran) || last.Failed != uint64(res.Failed) {
		t.Fatalf("final frame done=%d failed=%d, result ran=%d failed=%d",
			last.Done, last.Failed, res.Ran, res.Failed)
	}
	if last.Rate != res.SDCRate || last.Lo != res.SDCLo || last.Hi != res.SDCHi {
		t.Fatalf("final frame interval (%v [%v,%v]) disagrees with result (%v [%v,%v])",
			last.Rate, last.Lo, last.Hi, res.SDCRate, res.SDCLo, res.SDCHi)
	}
	// Cumulative frames are monotone in Done — a frame can be shed but
	// never regress.
	for i := 1; i < len(frames); i++ {
		if frames[i].Done < frames[i-1].Done {
			t.Fatalf("frame %d regressed: %d < %d", i, frames[i].Done, frames[i-1].Done)
		}
	}
}

// A subscriber that never reads its stream must not slow the job: the
// fanout sheds frames at the stalled tap while the campaign finishes
// on its own schedule. The late drain still ends with the final frame.
func TestProgressStalledSubscriberDoesNotDelayJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, job := submit(t, ts, campaignReq(300))
	resp := openProgress(t, ts.URL, job.ID)
	// Do NOT read resp.Body while the job runs: the tap stalls.
	start := time.Now() //unsync:allow-wallclock test wall-time bound, not a trial outcome
	done := waitState(t, ts, job.ID, StateDone, StateFailed)
	elapsed := time.Since(start)
	if done.State != StateDone {
		t.Fatalf("job failed under a stalled subscriber: %s", done.Error)
	}
	// waitState polls up to 10s; a subscriber-coupled pipeline would
	// block the campaign forever and trip waitState's own fatal. The
	// explicit bound documents the contract.
	if elapsed > 30*time.Second {
		t.Fatalf("job took %v with a stalled SSE subscriber", elapsed)
	}
	frames := readSSE(t, resp)
	if len(frames) == 0 || !frames[len(frames)-1].Final {
		t.Fatalf("stalled subscriber never got the final frame: %v", frames)
	}
}

// A client arriving after the job finished still gets the terminal
// frame (the plane outlives its job), and a restarted server — no live
// plane at all — synthesizes one from the journaled Result.
func TestProgressLateAndRestartedClients(t *testing.T) {
	stateDir := t.TempDir()
	srv, ts := newTestServer(t, Config{StateDir: stateDir})
	_, job := submit(t, ts, campaignReq(40))
	done := waitState(t, ts, job.ID, StateDone)
	var res campaign.Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}

	// Late client, same process: the kept plane serves the final frame.
	frames := readSSE(t, openProgress(t, ts.URL, job.ID))
	if len(frames) != 1 || !frames[0].Final || frames[0].Done != uint64(res.Ran) {
		t.Fatalf("late client frames = %+v, want exactly the final frame", frames)
	}

	// Restarted server: journal replay restores the job, no plane
	// exists, the final frame is synthesized from the Result.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	_, ts2 := newTestServer(t, Config{StateDir: stateDir})
	frames = readSSE(t, openProgress(t, ts2.URL, job.ID))
	if len(frames) != 1 || !frames[0].Final {
		t.Fatalf("restarted server frames = %+v, want one synthesized final frame", frames)
	}
	if frames[0].Done != uint64(res.Ran) || frames[0].Rate != res.SDCRate {
		t.Fatalf("synthesized frame done=%d rate=%v, result ran=%d rate=%v",
			frames[0].Done, frames[0].Rate, res.Ran, res.SDCRate)
	}
}

func TestProgressUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/api/v1/jobs/nope/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job progress status = %d, want 404", resp.StatusCode)
	}
}

// The per-job plane gauges surface on /metrics once a campaign runs,
// and keep their terminal values after it completes.
func TestMetricsExposePlaneGauges(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, job := submit(t, ts, campaignReq(40))
	waitState(t, ts, job.ID, StateDone)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	body := sb.String()
	for _, gauge := range []string{
		`unsync_job_trials_done{job="` + job.ID + `"} 40`,
		`unsync_job_dlq_depth{job="` + job.ID + `"} 0`,
		`unsync_job_window_sdc_rate{job="` + job.ID + `"}`,
	} {
		if !strings.Contains(body, gauge) {
			t.Errorf("metrics missing %q", gauge)
		}
	}
}
