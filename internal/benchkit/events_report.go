package benchkit

import (
	"fmt"

	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/report"
)

// RenderTopdown renders the slot-level topdown decomposition of an
// event study, one row per scheme.
func RenderTopdown(evs []SchemeEvents) *report.Table {
	t := report.New("Topdown decomposition (gzip kernel window)",
		"Scheme", "Slots", "Retiring", "Frontend", "Backend", "BadGate")
	for _, se := range evs {
		if se.Topdown == nil {
			t.Row(se.Scheme, "-", "-", "-", "-", "-")
			continue
		}
		td := se.Topdown
		t.Row(se.Scheme, report.I(td.Slots),
			report.Pct(100*td.Retiring), report.Pct(100*td.Frontend),
			report.Pct(100*td.Backend), report.Pct(100*td.BadGate))
	}
	t.Note("slots = width × cycles; the four buckets partition them exactly")
	return t
}

// RenderEvents renders the per-event counts of an event study: one row
// per event observed by any scheme, one column per scheme, with the
// delta against the baseline in parentheses for the redundant schemes.
func RenderEvents(evs []SchemeEvents) *report.Table {
	cols := []string{"Event", "Unit"}
	union := events.Counts{}
	for _, se := range evs {
		cols = append(cols, se.Scheme)
		union.Merge(se.Counts)
	}
	t := report.New("Hardware counters (gzip kernel window)", cols...)
	for _, name := range union.Names() {
		unit := "?"
		if e, ok := events.Lookup(name); ok {
			unit = string(e.Unit)
		}
		row := []string{name, unit}
		for _, se := range evs {
			cell := report.I(se.Counts[name])
			if d, ok := se.Delta[name]; ok && d != 0 {
				cell = fmt.Sprintf("%s (%+d)", cell, d)
			}
			row = append(row, cell)
		}
		t.Row(row...)
	}
	t.Note("(±n) is the delta against the baseline scheme on the same window")
	return t
}

// RenderCampaign renders the campaign-throughput study: the batched
// lane engine against the scalar reference path on the same campaign.
func RenderCampaign(cb *CampaignBench) *report.Table {
	t := report.New(fmt.Sprintf("Campaign throughput (%s, %d trials)", cb.Prog, cb.Trials),
		"Engine", "Batch", "Trials/s", "Speedup")
	t.Row("scalar", report.I(1), report.F(cb.ScalarTrialsPerSec, 0), report.F(1, 2))
	t.Row("batched", report.I(uint64(cb.Batch)), report.F(cb.TrialsPerSec, 0), report.F(cb.Speedup, 2))
	t.Note("%.1f%% of batch lanes retired to the scalar finishing path; outcomes are bit-identical across engines",
		100*cb.LanesRetiredFrac)
	return t
}
