// Package benchkit defines the simulator's microbenchmark kernels in
// one place so that `go test -bench` and `unsync-bench -json` measure
// exactly the same code, and provides the BENCH.json report format the
// CI pipeline archives per commit.
package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/trace"
)

// Schema identifies the BENCH.json layout; bump it when a field
// changes meaning so downstream tooling can refuse unknown versions.
const Schema = "unsync-bench/v1"

// Kernel is one named microbenchmark.
type Kernel struct {
	Name  string
	Bench func(*testing.B)
}

// Kernels returns the four simulator kernels in reporting order.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "BaselineCore", Bench: BaselineCore},
		{Name: "UnSyncPair", Bench: UnSyncPair},
		{Name: "ReunionPair", Bench: ReunionPair},
		{Name: "TraceGenerator", Bench: TraceGenerator},
	}
}

// kernelRC is the fixed operating point of the pipeline kernels: long
// enough to exercise steady-state commit, short enough to iterate.
func kernelRC() cmp.RunConfig {
	rc := cmp.DefaultRunConfig()
	rc.WarmupInsts = 2_000
	rc.MeasureInsts = 20_000
	return rc
}

// kernelProfile fetches a benchmark profile or fails the benchmark.
func kernelProfile(b *testing.B, name string) trace.Profile {
	p, ok := trace.ByName(name)
	if !ok {
		b.Fatalf("benchkit: no %q profile", name)
	}
	return p
}

// runScheme is the shared body of the three pipeline kernels.
func runScheme(b *testing.B, s cmp.Scheme) {
	rc := kernelRC()
	p := kernelProfile(b, "gzip")
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := cmp.Run(s, rc, p)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BaselineCore measures raw single-core simulation speed.
func BaselineCore(b *testing.B) { runScheme(b, cmp.Baseline) }

// UnSyncPair measures redundant-pair simulation speed.
func UnSyncPair(b *testing.B) { runScheme(b, cmp.UnSync) }

// ReunionPair measures fingerprinted-pair simulation speed.
func ReunionPair(b *testing.B) { runScheme(b, cmp.Reunion) }

// TraceGenerator measures workload-generation throughput (one record
// per iteration).
func TraceGenerator(b *testing.B) {
	p := kernelProfile(b, "bzip2")
	g := trace.NewGenerator(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("benchkit: generator ended")
		}
	}
}

// Result is one kernel's measurement in BENCH.json.
type Result struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	CyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
}

// FigureTime records the wall time one figure or table took to
// regenerate.
type FigureTime struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
}

// Report is the whole BENCH.json document.
type Report struct {
	Schema  string       `json:"schema"`
	Quick   bool         `json:"quick"`
	Kernels []Result     `json:"kernels"`
	Figures []FigureTime `json:"figures,omitempty"`
}

// Run executes one kernel under the standard benchmark harness and
// converts its result. Allocation stats are always collected by
// testing.Benchmark, so allocs/op needs no -benchmem here.
func Run(k Kernel) Result {
	r := testing.Benchmark(k.Bench)
	out := Result{Name: k.Name, Iterations: r.N}
	if r.N > 0 {
		out.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
		out.AllocsPerOp = r.AllocsPerOp()
		out.BytesPerOp = r.AllocedBytesPerOp()
		out.CyclesPerSec = r.Extra["sim-cycles/s"]
	}
	return out
}

// RunAll measures every kernel in order.
func RunAll() []Result {
	ks := Kernels()
	out := make([]Result, 0, len(ks))
	for _, k := range ks {
		out = append(out, Run(k))
	}
	return out
}

// WriteFile marshals the report (indented, trailing newline) to path.
func (r Report) WriteFile(path string) error {
	if r.Schema == "" {
		r.Schema = Schema
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchkit: marshal report: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("benchkit: write %s: %w", path, err)
	}
	return nil
}
