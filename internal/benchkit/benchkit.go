// Package benchkit defines the simulator's microbenchmark kernels in
// one place so that `go test -bench` and `unsync-bench -json` measure
// exactly the same code, and provides the BENCH.json report format the
// CI pipeline archives per commit.
package benchkit

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/progs"
	"github.com/cmlasu/unsync/internal/trace"
)

// Schema identifies the BENCH.json layout; bump it when a field
// changes meaning so downstream tooling can refuse unknown versions.
const Schema = "unsync-bench/v1"

// Kernel is one named microbenchmark.
type Kernel struct {
	Name  string
	Bench func(*testing.B)
}

// Kernels returns the four simulator kernels in reporting order.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "BaselineCore", Bench: BaselineCore},
		{Name: "UnSyncPair", Bench: UnSyncPair},
		{Name: "ReunionPair", Bench: ReunionPair},
		{Name: "TraceGenerator", Bench: TraceGenerator},
	}
}

// kernelRC is the fixed operating point of the pipeline kernels: long
// enough to exercise steady-state commit, short enough to iterate.
func kernelRC() cmp.RunConfig {
	rc := cmp.DefaultRunConfig()
	rc.WarmupInsts = 2_000
	rc.MeasureInsts = 20_000
	return rc
}

// kernelProfile fetches a benchmark profile or fails the benchmark.
func kernelProfile(b *testing.B, name string) trace.Profile {
	p, ok := trace.ByName(name)
	if !ok {
		b.Fatalf("benchkit: no %q profile", name)
	}
	return p
}

// runScheme is the shared body of the three pipeline kernels.
func runScheme(b *testing.B, s cmp.Scheme) {
	rc := kernelRC()
	p := kernelProfile(b, "gzip")
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := cmp.Run(s, rc, p)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	// A fast machine (or a -quick run under the benchmark harness's
	// calibration pass) can finish with a zero-duration timer; dividing
	// by it would put ±Inf into the metric and make the whole BENCH.json
	// unmarshalable (encoding/json refuses non-finite floats).
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(cycles)/secs, "sim-cycles/s")
	}
}

// BaselineCore measures raw single-core simulation speed.
func BaselineCore(b *testing.B) { runScheme(b, cmp.Baseline) }

// UnSyncPair measures redundant-pair simulation speed.
func UnSyncPair(b *testing.B) { runScheme(b, cmp.UnSync) }

// ReunionPair measures fingerprinted-pair simulation speed.
func ReunionPair(b *testing.B) { runScheme(b, cmp.Reunion) }

// TraceGenerator measures workload-generation throughput (one record
// per iteration).
func TraceGenerator(b *testing.B) {
	p := kernelProfile(b, "bzip2")
	g := trace.NewGenerator(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("benchkit: generator ended")
		}
	}
}

// finite maps NaN and ±Inf to 0 so every derived rate in the report
// stays representable in JSON. encoding/json rejects non-finite floats
// outright, so a single poisoned metric would otherwise fail the whole
// BENCH.json write.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Result is one kernel's measurement in BENCH.json.
type Result struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	CyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
}

// FigureTime records the wall time one figure or table took to
// regenerate.
type FigureTime struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
}

// TopdownJSON is the slot-level decomposition of one scheme's
// measurement window, fractions of the total slot capacity
// (Width × Cycles). The four fractions sum to 1 by construction
// (pipeline.Stats.Events partitions the slots exactly).
type TopdownJSON struct {
	Slots    uint64  `json:"slots"`
	Retiring float64 `json:"retiring"`
	Frontend float64 `json:"frontend"`
	Backend  float64 `json:"backend"`
	BadGate  float64 `json:"bad_gate"`
}

// SchemeEvents is one scheme's hardware-counter readout in BENCH.json:
// the raw taxonomy counters, the per-event delta against the baseline
// scheme of the same study (absent for the baseline itself), and the
// derived topdown decomposition.
type SchemeEvents struct {
	Scheme  string           `json:"scheme"`
	Counts  events.Counts    `json:"counts"`
	Delta   map[string]int64 `json:"delta_vs_baseline,omitempty"`
	Topdown *TopdownJSON     `json:"topdown,omitempty"`
}

// CampaignBench is the campaign-throughput section of BENCH.json: the
// batched structure-of-arrays trial engine measured against the scalar
// reference path on the same workload, seed and worker count.
type CampaignBench struct {
	Prog   string `json:"prog"`
	Trials int    `json:"trials"`
	Batch  int    `json:"batch"`
	// TrialsPerSec is the batched engine's throughput; ScalarTrialsPerSec
	// is the Batch=1 reference on the identical campaign.
	TrialsPerSec       float64 `json:"trials_per_sec"`
	ScalarTrialsPerSec float64 `json:"scalar_trials_per_sec"`
	Speedup            float64 `json:"speedup"`
	// LanesRetiredFrac is the fraction of batch lanes that left the
	// lockstep group and finished on the per-lane scalar path.
	LanesRetiredFrac float64 `json:"lanes_retired_frac"`
}

// Report is the whole BENCH.json document.
type Report struct {
	Schema   string         `json:"schema"`
	Quick    bool           `json:"quick"`
	Kernels  []Result       `json:"kernels"`
	Figures  []FigureTime   `json:"figures,omitempty"`
	Events   []SchemeEvents `json:"events,omitempty"`
	Campaign *CampaignBench `json:"campaign,omitempty"`
}

// Run executes one kernel under the standard benchmark harness and
// converts its result. Allocation stats are always collected by
// testing.Benchmark, so allocs/op needs no -benchmem here.
func Run(k Kernel) Result {
	r := testing.Benchmark(k.Bench)
	out := Result{Name: k.Name, Iterations: r.N}
	if r.N > 0 {
		out.NsPerOp = finite(float64(r.T.Nanoseconds()) / float64(r.N))
		out.AllocsPerOp = r.AllocsPerOp()
		out.BytesPerOp = r.AllocedBytesPerOp()
		out.CyclesPerSec = finite(r.Extra["sim-cycles/s"])
	}
	return out
}

// EventStudy runs the four built-in schemes on the gzip kernel
// workload at the kernel operating point and returns their
// hardware-counter readouts, baseline first so per-event deltas are
// well defined. quick shrinks the window for CI smoke runs.
func EventStudy(quick bool) ([]SchemeEvents, error) {
	rc := kernelRC()
	if quick {
		rc.WarmupInsts = 1_000
		rc.MeasureInsts = 8_000
	}
	prof, ok := trace.ByName("gzip")
	if !ok {
		return nil, fmt.Errorf("benchkit: no gzip profile")
	}
	schemes := []cmp.Scheme{cmp.Baseline, cmp.UnSync, cmp.Reunion, cmp.TMR}
	out := make([]SchemeEvents, 0, len(schemes))
	var base events.Counts
	for _, s := range schemes {
		res, err := cmp.Run(s, rc, prof)
		if err != nil {
			return nil, fmt.Errorf("benchkit: event study %s: %w", s, err)
		}
		se := SchemeEvents{Scheme: string(s), Counts: res.Events}
		if td, ok := events.TopdownOf(res.Events); ok {
			se.Topdown = &TopdownJSON{
				Slots:    td.Slots,
				Retiring: finite(td.Retiring),
				Frontend: finite(td.Frontend),
				Backend:  finite(td.Backend),
				BadGate:  finite(td.BadGate),
			}
		}
		if s == cmp.Baseline {
			base = res.Events
		} else {
			se.Delta = events.Delta(res.Events, base)
		}
		out = append(out, se)
	}
	return out, nil
}

// CampaignStudy measures fault-campaign throughput through the batched
// lane engine against the scalar reference path: the same checksum
// workload, seed and single worker on both sides, so the ratio
// isolates the engine. quick shrinks the trial count for CI smoke
// runs. Timing goes through testing.Benchmark so the wall clock is
// read by the benchmark harness, not by simulator code.
func CampaignStudy(quick bool) (*CampaignBench, error) {
	prog, err := progs.Checksum.Assemble()
	if err != nil {
		return nil, fmt.Errorf("benchkit: campaign study: %w", err)
	}
	trials := 600
	if quick {
		trials = 150
	}
	spec := campaign.Spec{
		Scheme:   campaign.SchemeUnSync,
		Trials:   trials,
		Seed:     1,
		MaxSteps: 100_000,
		// One worker on both sides: the study measures the lane engine,
		// not the worker pool.
		Workers: 1,
	}
	rate := func(batch int, stats *campaign.BatchStats) (float64, error) {
		s := spec
		s.Batch = batch
		s.Stats = stats
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := campaign.Run(prog, s); err != nil {
					runErr = err
					b.FailNow()
				}
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(trials*b.N)/secs, "trials/s")
			}
		})
		if runErr != nil {
			return 0, fmt.Errorf("benchkit: campaign study (batch %d): %w", batch, runErr)
		}
		return r.Extra["trials/s"], nil
	}

	scalar, err := rate(1, nil)
	if err != nil {
		return nil, err
	}
	stats := &campaign.BatchStats{}
	batched, err := rate(campaign.DefaultBatch, stats)
	if err != nil {
		return nil, err
	}
	cb := &CampaignBench{
		Prog:               "checksum",
		Trials:             trials,
		Batch:              campaign.DefaultBatch,
		TrialsPerSec:       finite(batched),
		ScalarTrialsPerSec: finite(scalar),
		LanesRetiredFrac:   finite(stats.RetiredFrac()),
	}
	if scalar > 0 {
		cb.Speedup = finite(batched / scalar)
	}
	return cb, nil
}

// RunAll measures every kernel in order.
func RunAll() []Result {
	ks := Kernels()
	out := make([]Result, 0, len(ks))
	for _, k := range ks {
		out = append(out, Run(k))
	}
	return out
}

// sanitized returns a copy of the report with every float forced
// finite, deep-copying the slices so the caller's report is untouched.
// This is the last line of defense: Run and EventStudy already emit
// finite values, but a report assembled by hand (or an older producer)
// must still marshal.
func (r Report) sanitized() Report {
	kernels := make([]Result, len(r.Kernels))
	for i, k := range r.Kernels {
		k.NsPerOp = finite(k.NsPerOp)
		k.CyclesPerSec = finite(k.CyclesPerSec)
		kernels[i] = k
	}
	r.Kernels = kernels
	figures := make([]FigureTime, len(r.Figures))
	for i, f := range r.Figures {
		f.WallMs = finite(f.WallMs)
		figures[i] = f
	}
	r.Figures = figures
	if r.Events != nil {
		evs := make([]SchemeEvents, len(r.Events))
		for i, e := range r.Events {
			if e.Topdown != nil {
				td := *e.Topdown
				td.Retiring = finite(td.Retiring)
				td.Frontend = finite(td.Frontend)
				td.Backend = finite(td.Backend)
				td.BadGate = finite(td.BadGate)
				e.Topdown = &td
			}
			evs[i] = e
		}
		r.Events = evs
	}
	if r.Campaign != nil {
		cb := *r.Campaign
		cb.TrialsPerSec = finite(cb.TrialsPerSec)
		cb.ScalarTrialsPerSec = finite(cb.ScalarTrialsPerSec)
		cb.Speedup = finite(cb.Speedup)
		cb.LanesRetiredFrac = finite(cb.LanesRetiredFrac)
		r.Campaign = &cb
	}
	return r
}

// WriteFile marshals the report (indented, trailing newline) to path.
func (r Report) WriteFile(path string) error {
	if r.Schema == "" {
		r.Schema = Schema
	}
	buf, err := json.MarshalIndent(r.sanitized(), "", "  ")
	if err != nil {
		return fmt.Errorf("benchkit: marshal report: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("benchkit: write %s: %w", path, err)
	}
	return nil
}
