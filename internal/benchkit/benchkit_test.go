package benchkit

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/cmlasu/unsync/internal/events"
)

// TestWriteFileSanitizesNonFinite is the regression test for the
// BENCH.json marshal failure: a report carrying ±Inf or NaN rates
// (e.g. sim-cycles/s computed against a zero-duration timer) must
// still write, with the poisoned values zeroed, and must not mutate
// the caller's report.
func TestWriteFileSanitizesNonFinite(t *testing.T) {
	rep := Report{
		Quick: true,
		Kernels: []Result{
			{Name: "poisoned", Iterations: 1, NsPerOp: math.NaN(), CyclesPerSec: math.Inf(1)},
			{Name: "clean", Iterations: 2, NsPerOp: 42, CyclesPerSec: 1e6},
		},
		Figures: []FigureTime{{Name: "fig4", WallMs: math.Inf(-1)}},
		Events: []SchemeEvents{{
			Scheme:  "baseline",
			Counts:  events.Counts{events.Cycles: 10},
			Topdown: &TopdownJSON{Slots: 10, Retiring: math.NaN()},
		}},
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile with non-finite rates: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("written BENCH.json does not parse: %v", err)
	}
	if got.Kernels[0].NsPerOp != 0 || got.Kernels[0].CyclesPerSec != 0 {
		t.Errorf("poisoned kernel not zeroed: %+v", got.Kernels[0])
	}
	if got.Kernels[1].NsPerOp != 42 || got.Kernels[1].CyclesPerSec != 1e6 {
		t.Errorf("clean kernel altered: %+v", got.Kernels[1])
	}
	if got.Figures[0].WallMs != 0 {
		t.Errorf("figure wall time not zeroed: %+v", got.Figures[0])
	}
	if got.Events[0].Topdown.Retiring != 0 {
		t.Errorf("topdown fraction not zeroed: %+v", got.Events[0].Topdown)
	}
	// Sanitizing must not write through to the caller's report.
	if !math.IsNaN(rep.Kernels[0].NsPerOp) || !math.IsNaN(rep.Events[0].Topdown.Retiring) {
		t.Error("WriteFile mutated the caller's report")
	}
}

func TestFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := finite(v); got != 0 {
			t.Errorf("finite(%v) = %v, want 0", v, got)
		}
	}
	if got := finite(3.5); got != 3.5 {
		t.Errorf("finite(3.5) = %v", got)
	}
}

// TestEventStudyQuick runs the quick event study end to end: all four
// schemes report, topdown fractions partition the slots, and the
// non-baseline schemes carry deltas.
func TestEventStudyQuick(t *testing.T) {
	evs, err := EventStudy(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("EventStudy returned %d schemes, want 4", len(evs))
	}
	if evs[0].Scheme != "baseline" || evs[0].Delta != nil {
		t.Fatalf("first entry must be the baseline without a delta: %+v", evs[0].Scheme)
	}
	for _, se := range evs {
		if len(se.Counts) == 0 {
			t.Errorf("%s: empty counts", se.Scheme)
		}
		if se.Topdown == nil {
			t.Fatalf("%s: missing topdown", se.Scheme)
		}
		sum := se.Topdown.Retiring + se.Topdown.Frontend + se.Topdown.Backend + se.Topdown.BadGate
		if math.Abs(sum-1.0) > 1e-9 {
			t.Errorf("%s: topdown fractions sum to %.12f, want 1.0", se.Scheme, sum)
		}
		if se.Scheme != "baseline" && len(se.Delta) == 0 {
			t.Errorf("%s: missing delta vs baseline", se.Scheme)
		}
	}
}
