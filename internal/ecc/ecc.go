// Package ecc implements the error-detection and -correction codes the
// architecture relies on, at the bit level:
//
//   - even parity over arbitrary words (the 1-bit-per-line L1 protection
//     of §III-B1), and
//   - a (72,64) Hamming SECDED code (single-error-correct,
//     double-error-detect — the L2/ECC protection of Table I and the
//     22%-area reference design of §III-B1's discussion).
//
// The timing model treats protection behaviorally; this package is the
// functional ground truth the fault studies and the hardware model's
// check-bit arithmetic rest on, with exhaustive tests pinning the
// correct/detect guarantees.
package ecc

import "math/bits"

// Parity returns the even-parity bit of v: 1 if v has an odd number of
// ones, so that appending Parity(v) makes the total even.
func Parity(v uint64) uint8 {
	return uint8(bits.OnesCount64(v) & 1)
}

// ParityWords folds even parity across a sequence of words (a cache
// line is several words wide; the paper uses one parity bit per line).
func ParityWords(ws []uint64) uint8 {
	var p uint8
	for _, w := range ws {
		p ^= Parity(w)
	}
	return p
}

// CheckParity reports whether data matches its stored parity bit.
func CheckParity(v uint64, stored uint8) bool { return Parity(v) == stored&1 }

// The (72,64) SECDED layout: 8 check bits for 64 data bits — exactly
// the "8 check bits for every 64 bit data chunk" of §VI-A1. Check bits
// c0..c6 are Hamming bits over the expanded 71-bit positions; c7 is the
// overall parity making double-bit errors distinguishable from single.

// secdedPositions maps data bit i (0..63) to its position in the
// expanded codeword (positions that are not powers of two, 1-indexed).
var secdedPositions = func() [64]uint {
	var pos [64]uint
	p := uint(1)
	for i := 0; i < 64; {
		p++
		if p&(p-1) == 0 { // power of two: reserved for a check bit
			continue
		}
		pos[i] = p
		i++
	}
	return pos
}()

// Encode returns the 8 check bits for a 64-bit word.
func Encode(data uint64) uint8 {
	var hamming uint8
	for i := 0; i < 64; i++ {
		if data&(1<<uint(i)) == 0 {
			continue
		}
		p := secdedPositions[i]
		for b := 0; b < 7; b++ {
			if p&(1<<uint(b)) != 0 {
				hamming ^= 1 << uint(b)
			}
		}
	}
	// Overall parity over data plus the 7 Hamming bits.
	overall := Parity(data) ^ uint8(bits.OnesCount8(hamming&0x7f)&1)
	return hamming&0x7f | overall<<7
}

// Result classifies a SECDED decode.
type Result uint8

const (
	// OK: no error detected.
	OK Result = iota
	// Corrected: a single-bit error was corrected (possibly in the
	// check bits themselves).
	Corrected
	// Detected: an uncorrectable (double-bit) error was detected.
	Detected
)

// String names the decode result.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	}
	return "result(?)"
}

// Decode checks data against its stored check bits, correcting a
// single-bit error in place. It returns the (possibly corrected) data
// and the classification.
func Decode(data uint64, stored uint8) (uint64, Result) {
	expect := Encode(data)
	syndrome := (expect ^ stored) & 0x7f
	// Overall parity is evaluated over the received codeword (data +
	// stored check bits): any odd number of flipped bits anywhere makes
	// it 1, including flips in the check bits themselves.
	received := Parity(data) ^ uint8(bits.OnesCount8(stored)&1)
	parityErr := received != 0

	switch {
	case syndrome == 0 && !parityErr:
		return data, OK
	case syndrome == 0 && parityErr:
		// The overall parity bit itself flipped.
		return data, Corrected
	case parityErr:
		// Single-bit error at expanded position `syndrome`.
		pos := uint(syndrome)
		if pos&(pos-1) == 0 {
			// A check bit flipped; data is intact.
			return data, Corrected
		}
		for i, p := range secdedPositions {
			if p == pos {
				return data ^ 1<<uint(i), Corrected
			}
		}
		// Syndrome points outside the codeword: treat as detected.
		return data, Detected
	default:
		// Non-zero syndrome with even overall parity: double-bit error.
		return data, Detected
	}
}

// CheckBits is the SECDED storage overhead per 64-bit word.
const CheckBits = 8

// Overhead returns the SECDED storage overhead as a fraction (12.5%).
func Overhead() float64 { return float64(CheckBits) / 64 }

// Line models one protected memory line: data words plus their check
// bits, with parity- or SECDED-style protection applied word-wise.
type Line struct {
	Words  []uint64
	Checks []uint8
}

// NewLine encodes a protected line from words.
func NewLine(words []uint64) *Line {
	l := &Line{Words: append([]uint64(nil), words...), Checks: make([]uint8, len(words))}
	for i, w := range l.Words {
		l.Checks[i] = Encode(w)
	}
	return l
}

// FlipBit injects a single-bit fault into word w of the line.
func (l *Line) FlipBit(w int, bit uint) { l.Words[w] ^= 1 << (bit % 64) }

// FlipCheckBit injects a fault into the check bits of word w.
func (l *Line) FlipCheckBit(w int, bit uint) { l.Checks[w] ^= 1 << (bit % 8) }

// Scrub decodes every word, correcting what it can. It returns the
// worst classification encountered.
func (l *Line) Scrub() Result {
	worst := OK
	for i := range l.Words {
		var r Result
		l.Words[i], r = Decode(l.Words[i], l.Checks[i])
		if r == Corrected {
			l.Checks[i] = Encode(l.Words[i])
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}
