package ecc

import (
	"testing"
	"testing/quick"
)

func TestParity(t *testing.T) {
	if Parity(0) != 0 || Parity(1) != 1 || Parity(3) != 0 || Parity(7) != 1 {
		t.Error("parity basics wrong")
	}
	if ParityWords([]uint64{1, 2}) != 0 || ParityWords([]uint64{1, 2, 4}) != 1 {
		t.Error("word-folded parity wrong")
	}
	if !CheckParity(5, Parity(5)) || CheckParity(5, Parity(5)^1) {
		t.Error("CheckParity wrong")
	}
}

// Parity detects every single-bit flip (property).
func TestQuickParityDetectsSingleFlips(t *testing.T) {
	f := func(v uint64, bit uint8) bool {
		p := Parity(v)
		return !CheckParity(v^1<<(bit%64), p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Parity misses every double-bit flip — the reason the architecture
// pairs parity detection with redundancy instead of trusting it alone.
func TestParityMissesDoubleFlips(t *testing.T) {
	v := uint64(0xdeadbeefcafef00d)
	p := Parity(v)
	for i := uint(0); i < 64; i += 7 {
		for j := uint(1); j < 64; j += 11 {
			if i == (i+j)%64 {
				continue
			}
			if !CheckParity(v^1<<i^1<<((i+j)%64), p) {
				t.Fatalf("double flip (%d,%d) unexpectedly detected", i, (i+j)%64)
			}
		}
	}
}

func TestSECDEDCleanDecode(t *testing.T) {
	for _, v := range []uint64{0, 1, ^uint64(0), 0xdeadbeef, 1 << 63} {
		got, r := Decode(v, Encode(v))
		if r != OK || got != v {
			t.Errorf("clean decode of %#x: %v, %v", v, got, r)
		}
	}
}

// Exhaustive: every single data-bit error is corrected.
func TestSECDEDCorrectsEverySingleBit(t *testing.T) {
	for _, v := range []uint64{0, 0x0123456789abcdef, ^uint64(0)} {
		c := Encode(v)
		for bit := uint(0); bit < 64; bit++ {
			got, r := Decode(v^1<<bit, c)
			if r != Corrected {
				t.Fatalf("bit %d: result %v", bit, r)
			}
			if got != v {
				t.Fatalf("bit %d: corrected to %#x, want %#x", bit, got, v)
			}
		}
	}
}

// Every check-bit error is recognized as correctable (data intact).
func TestSECDEDCorrectsCheckBitErrors(t *testing.T) {
	v := uint64(0x5555aaaa3333cccc)
	c := Encode(v)
	for bit := uint(0); bit < 8; bit++ {
		got, r := Decode(v, c^1<<bit)
		if r != Corrected || got != v {
			t.Fatalf("check bit %d: %v, data %#x", bit, r, got)
		}
	}
}

// Exhaustive-ish: double data-bit errors are detected, never
// miscorrected silently.
func TestSECDEDDetectsDoubleBit(t *testing.T) {
	v := uint64(0x0f0f0f0f0f0f0f0f)
	c := Encode(v)
	for i := uint(0); i < 64; i++ {
		for j := i + 1; j < 64; j += 3 {
			_, r := Decode(v^1<<i^1<<j, c)
			if r != Detected {
				t.Fatalf("double (%d,%d): result %v", i, j, r)
			}
		}
	}
}

// Property: random word + random single flip always corrects back.
func TestQuickSECDEDRoundTrip(t *testing.T) {
	f := func(v uint64, bit uint8) bool {
		got, r := Decode(v^1<<(bit%64), Encode(v))
		return r == Corrected && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSECDEDOverheadMatchesPaper(t *testing.T) {
	// §VI-A1: 8 check bits per 64-bit chunk = 12.5% storage.
	if CheckBits != 8 || Overhead() != 0.125 {
		t.Errorf("CheckBits=%d Overhead=%g", CheckBits, Overhead())
	}
}

func TestLineScrub(t *testing.T) {
	words := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	l := NewLine(words)
	if l.Scrub() != OK {
		t.Fatal("clean line not OK")
	}
	l.FlipBit(3, 17)
	if l.Scrub() != Corrected {
		t.Fatal("single flip not corrected")
	}
	if l.Words[3] != 4 {
		t.Fatalf("word 3 = %d after scrub", l.Words[3])
	}
	// After correction the line is clean again.
	if l.Scrub() != OK {
		t.Fatal("line dirty after correction")
	}
	// Check-bit flip is also corrected.
	l.FlipCheckBit(0, 2)
	if l.Scrub() != Corrected {
		t.Fatal("check-bit flip not handled")
	}
	// Double flip in one word is detected, not silently corrected.
	l.FlipBit(5, 1)
	l.FlipBit(5, 2)
	if l.Scrub() != Detected {
		t.Fatal("double flip not detected")
	}
}

func TestResultString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Detected.String() != "detected" {
		t.Error("result names wrong")
	}
}

func BenchmarkEncode(b *testing.B) {
	var c uint8
	for i := 0; i < b.N; i++ {
		c ^= Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = c
}

func BenchmarkDecodeClean(b *testing.B) {
	v := uint64(0xdeadbeefcafef00d)
	c := Encode(v)
	for i := 0; i < b.N; i++ {
		Decode(v, c)
	}
}
