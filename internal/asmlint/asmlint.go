// Package asmlint statically verifies assembled ISA workloads before
// they are simulated. The fault-injection campaigns (§VI-D) and the
// timing model both assume the program library in internal/progs is
// well-formed; a workload that reads an uninitialized register or runs
// off the end of its text section would corrupt a campaign silently,
// because the sparse emulator memory reads zeros instead of faulting.
//
// The verifier builds a control-flow graph over the instruction stream
// and runs a forward dataflow analysis (must-defined registers plus a
// small constant propagation lattice) to report:
//
//   - rule "bad-target": branches or jumps to addresses outside the
//     text section or not instruction-aligned;
//   - rule "no-halt": control that can fall off the end of the text
//     section without executing HALT;
//   - rule "unreachable": basic blocks no path from the entry reaches;
//   - rule "undef-read": registers read on some path before any
//     instruction has written them (r0 is hardwired zero and always
//     defined);
//   - rule "oob-mem": loads and stores whose effective address is
//     statically provable and falls outside the data segment.
//
// Calls (JAL) add both the target edge and a fall-through edge at the
// call site; returns (JR/JALR) end their path. Across a call the
// analysis conservatively forgets constants and assumes the callee may
// have defined any register, so findings never depend on interprocedural
// reasoning.
package asmlint

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/isa"
)

// Finding is one verifier diagnostic.
type Finding struct {
	Idx  int    // instruction index, -1 for program-level findings
	PC   uint64 // instruction address (4*Idx)
	Rule string
	Msg  string
}

// String renders the finding as pc=0x..: rule: message.
func (f Finding) String() string {
	if f.Idx < 0 {
		return fmt.Sprintf("%s: %s", f.Rule, f.Msg)
	}
	return fmt.Sprintf("pc=%#06x: %s: %s", f.PC, f.Rule, f.Msg)
}

// regVal is the constant-propagation lattice for one register:
// unvisited (bottom), a known constant, or varying (top).
type regVal struct {
	kind uint8 // rBot, rConst, rTop
	val  int64
}

const (
	rBot uint8 = iota
	rConst
	rTop
)

// flowState is the dataflow fact at an instruction boundary.
type flowState struct {
	defs uint64 // must-defined bitmask over the flat register space
	regs [isa.TotalDepRegs]regVal
}

func mergeVal(a, b regVal) regVal {
	switch {
	case a.kind == rBot:
		return b
	case b.kind == rBot:
		return a
	case a.kind == rConst && b.kind == rConst && a.val == b.val:
		return a
	default:
		return regVal{kind: rTop}
	}
}

// merge folds b into a, reporting whether a changed.
func (a *flowState) merge(b *flowState) bool {
	changed := false
	if d := a.defs & b.defs; d != a.defs {
		a.defs = d
		changed = true
	}
	for i := range a.regs {
		m := mergeVal(a.regs[i], b.regs[i])
		if m != a.regs[i] {
			a.regs[i] = m
			changed = true
		}
	}
	return changed
}

// linter carries the per-program analysis state.
type linter struct {
	prog    *asm.Program
	n       int
	in      []flowState
	visited []bool
}

// Lint verifies the assembled program and returns findings ordered by
// instruction address.
func Lint(p *asm.Program) []Finding {
	n := len(p.Insts)
	if n == 0 {
		return []Finding{{Idx: -1, Rule: "no-halt", Msg: "program has no text section"}}
	}
	l := &linter{prog: p, n: n, in: make([]flowState, n), visited: make([]bool, n)}
	l.fixpoint()
	var fs []Finding
	fs = append(fs, l.report()...)
	fs = append(fs, l.unreachable()...)
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Idx < fs[j].Idx })
	return fs
}

// fixpoint runs the worklist until the in-states converge. Only
// reachable instructions are ever visited.
func (l *linter) fixpoint() {
	work := []int{0}
	l.visited[0] = true
	// The entry state: nothing defined, nothing constant (r0 is
	// handled specially by constOf and the flat register mapping).
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		st := l.in[i]
		out, _ := l.transfer(i, st)
		for _, e := range l.successors(i) {
			succ := out
			if e.havoc {
				// Call fall-through: the callee may have defined and
				// modified any register.
				succ.defs = ^uint64(0)
				for r := range succ.regs {
					succ.regs[r] = regVal{kind: rTop}
				}
			}
			if !l.visited[e.to] {
				l.visited[e.to] = true
				l.in[e.to] = succ
				work = append(work, e.to)
			} else if l.in[e.to].merge(&succ) {
				work = append(work, e.to)
			}
		}
	}
}

type edge struct {
	to    int
	havoc bool // fall-through across a call (JAL)
}

// successors returns the CFG edges of instruction i, ignoring invalid
// targets (those are reported separately by report).
func (l *linter) successors(i int) []edge {
	in := l.prog.Insts[i]
	pc := int64(4 * i)
	var out []edge
	fall := func(havoc bool) {
		if i+1 < l.n {
			out = append(out, edge{to: i + 1, havoc: havoc})
		}
	}
	switch {
	case in.Op == isa.HALT:
	case in.Op == isa.JR || in.Op == isa.JALR:
		// Return / indirect jump: path ends here for the analysis.
	case in.Op == isa.J:
		if t, ok := l.textIndex(in.Imm); ok {
			out = append(out, edge{to: t})
		}
	case in.Op == isa.JAL:
		if t, ok := l.textIndex(in.Imm); ok {
			out = append(out, edge{to: t})
		}
		fall(true)
	case in.Op.Class() == isa.ClassBranch:
		if t, ok := l.textIndex(pc + in.Imm); ok {
			out = append(out, edge{to: t})
		}
		fall(false)
	default:
		fall(false)
	}
	return out
}

// textIndex maps a byte address to an instruction index.
func (l *linter) textIndex(addr int64) (int, bool) {
	if addr < 0 || addr%4 != 0 || addr/4 >= int64(l.n) {
		return 0, false
	}
	return int(addr / 4), true
}

// constOf returns the lattice value of a raw register operand.
func constOf(st *flowState, f isa.RegFile, idx uint8) regVal {
	if f == isa.RegInt && idx == 0 {
		return regVal{kind: rConst, val: 0}
	}
	r := isa.DepReg(f, idx)
	if r < 0 {
		return regVal{kind: rTop}
	}
	return st.regs[r]
}

// transfer computes the out-state of instruction i and the flat
// registers it reads.
func (l *linter) transfer(i int, st flowState) (flowState, []int) {
	in := l.prog.Insts[i]
	var reads []int
	if s1, s2 := in.SrcRegs(); true {
		if s1 >= 0 {
			reads = append(reads, s1)
		}
		if s2 >= 0 {
			reads = append(reads, s2)
		}
	}
	if in.Op == isa.SYSCALL {
		// The service code is selected by r2 by convention.
		reads = append(reads, isa.DepReg(isa.RegInt, 2))
	}

	out := st
	dst := in.DestReg()
	if dst >= 0 {
		out.defs |= 1 << uint(dst)
		out.regs[dst] = l.evaluate(i, &st)
	}
	return out, reads
}

// evaluate computes the constant lattice value produced by instruction
// i, for the handful of opcodes the address checks need (li/la are
// ADDI, address arithmetic is ADD/SUB/SLLI, LUI builds large values).
func (l *linter) evaluate(i int, st *flowState) regVal {
	in := l.prog.Insts[i]
	rs1 := constOf(st, in.Op.Rs1File(), in.Rs1)
	rs2 := constOf(st, in.Op.Rs2File(), in.Rs2)
	switch in.Op {
	case isa.ADDI:
		if rs1.kind == rConst {
			return regVal{kind: rConst, val: rs1.val + in.Imm}
		}
	case isa.LUI:
		return regVal{kind: rConst, val: in.Imm << 16}
	case isa.ADD:
		if rs1.kind == rConst && rs2.kind == rConst {
			return regVal{kind: rConst, val: rs1.val + rs2.val}
		}
	case isa.SUB:
		if rs1.kind == rConst && rs2.kind == rConst {
			return regVal{kind: rConst, val: rs1.val - rs2.val}
		}
	case isa.SLLI:
		if rs1.kind == rConst {
			return regVal{kind: rConst, val: rs1.val << (uint64(in.Imm) & 63)}
		}
	case isa.JAL:
		return regVal{kind: rConst, val: int64(4*i) + 4}
	}
	return regVal{kind: rTop}
}

// report walks every reachable instruction with its converged in-state
// and emits the per-instruction findings.
func (l *linter) report() []Finding {
	var fs []Finding
	add := func(i int, rule, format string, args ...any) {
		fs = append(fs, Finding{Idx: i, PC: uint64(4 * i), Rule: rule, Msg: fmt.Sprintf(format, args...)})
	}
	for i := 0; i < l.n; i++ {
		if !l.visited[i] {
			continue
		}
		in := l.prog.Insts[i]
		st := l.in[i]
		_, reads := l.transfer(i, st)

		var reported uint64
		for _, r := range reads {
			if st.defs&(1<<uint(r)) == 0 && reported&(1<<uint(r)) == 0 {
				reported |= 1 << uint(r)
				add(i, "undef-read", "%v reads %s before any instruction writes it", in, flatRegName(r))
			}
		}

		// Control-flow target validation.
		pc := int64(4 * i)
		switch {
		case in.Op == isa.J || in.Op == isa.JAL:
			if _, ok := l.textIndex(in.Imm); !ok {
				add(i, "bad-target", "%v targets %#x, outside the text section [0, %#x)", in, in.Imm, 4*l.n)
			}
		case in.Op.Class() == isa.ClassBranch:
			if _, ok := l.textIndex(pc + in.Imm); !ok {
				add(i, "bad-target", "%v targets %#x, outside the text section [0, %#x)", in, pc+in.Imm, 4*l.n)
			}
		}

		// Fall-through off the end of the text section.
		if l.fallsOffEnd(i) {
			add(i, "no-halt", "control falls off the end of the text section after %v; end every path with HALT", in)
		}

		// Statically provable out-of-range memory accesses.
		if in.Op.IsLoad() || in.Op.IsStore() {
			base := constOf(&st, isa.RegInt, in.Rs1)
			if base.kind == rConst {
				addr := base.val
				if in.Op != isa.AMOADD {
					addr += in.Imm
				}
				width := int64(in.Op.MemWidth())
				lo := int64(l.prog.DataBase)
				hi := lo + int64(len(l.prog.Data))
				if addr < lo || addr+width > hi {
					add(i, "oob-mem", "%v accesses %#x..%#x, outside the data segment [%#x, %#x)", in, addr, addr+width, lo, hi)
				}
			}
		}
	}
	return fs
}

// flatRegName renders a flat dependence-register number (integer
// registers 0..31, FP registers 32..63).
func flatRegName(r int) string {
	if r < isa.NumRegs {
		return fmt.Sprintf("r%d", r)
	}
	return fmt.Sprintf("f%d", r-isa.NumRegs)
}

// fallsOffEnd reports whether instruction i is the last one and can
// continue past it.
func (l *linter) fallsOffEnd(i int) bool {
	if i != l.n-1 {
		return false
	}
	in := l.prog.Insts[i]
	switch {
	case in.Op == isa.HALT, in.Op == isa.J, in.Op == isa.JR, in.Op == isa.JALR:
		return false
	case in.Op == isa.JAL:
		return true // the call returns to the fall-through
	default:
		return true
	}
}

// unreachable reports maximal runs of instructions the entry never
// reaches, labeled when the program has a label there.
func (l *linter) unreachable() []Finding {
	labelAt := make(map[uint64][]string)
	for name, addr := range l.prog.Labels {
		labelAt[addr] = append(labelAt[addr], name)
	}
	var fs []Finding
	for i := 0; i < l.n; {
		if l.visited[i] {
			i++
			continue
		}
		j := i
		for j < l.n && !l.visited[j] {
			j++
		}
		names := labelAt[uint64(4*i)]
		sort.Strings(names)
		label := ""
		if len(names) > 0 {
			label = fmt.Sprintf(" (label %s)", strings.Join(names, ", "))
		}
		fs = append(fs, Finding{
			Idx: i, PC: uint64(4 * i), Rule: "unreachable",
			Msg: fmt.Sprintf("instructions %#06x..%#06x%s are unreachable from the entry", 4*i, 4*(j-1), label),
		})
		i = j
	}
	return fs
}
