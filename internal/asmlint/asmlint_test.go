package asmlint

import (
	"strings"
	"testing"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/progs"
)

// TestLintWorkloads is the tier-1 guard for the workload library: every
// built-in program must assemble and verify with zero findings. A
// workload edit that leaves an uninitialized register or drops a HALT
// fails the ordinary `go test ./...` run.
func TestLintWorkloads(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := asm.Assemble(p.Source)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			for _, f := range Lint(prog) {
				t.Errorf("%s", f)
			}
		})
	}
}

// mustLint assembles src and returns the findings matching rule.
func mustLint(t *testing.T, src, rule string) []Finding {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	var out []Finding
	for _, f := range Lint(prog) {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// assertNoOtherFindings fails the test when src produces findings of a
// rule other than the expected one (guards heuristic precision).
func assertOnlyRule(t *testing.T, src, rule string) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	for _, f := range Lint(prog) {
		if f.Rule != rule {
			t.Errorf("unexpected %s finding: %s", f.Rule, f)
		}
	}
}

func TestUnreachableBlock(t *testing.T) {
	src := `
	li r1, 1
	j end
dead:
	li r2, 2
	li r3, 3
end:
	halt
`
	fs := mustLint(t, src, "unreachable")
	if len(fs) != 1 {
		t.Fatalf("got %d unreachable findings (%v), want 1", len(fs), fs)
	}
	// The dead run starts at the third instruction (pc 8) and the
	// finding names the label.
	if fs[0].Idx != 2 {
		t.Errorf("finding index = %d, want 2", fs[0].Idx)
	}
	if !strings.Contains(fs[0].Msg, "dead") {
		t.Errorf("message %q does not name label dead", fs[0].Msg)
	}
	assertOnlyRule(t, src, "unreachable")
}

func TestReadBeforeWrite(t *testing.T) {
	src := `
	add r2, r1, r1
	halt
`
	fs := mustLint(t, src, "undef-read")
	if len(fs) != 1 {
		t.Fatalf("got %d undef-read findings (%v), want 1", len(fs), fs)
	}
	if fs[0].Idx != 0 || !strings.Contains(fs[0].Msg, "r1") {
		t.Errorf("finding = %v, want r1 read at index 0", fs[0])
	}
	assertOnlyRule(t, src, "undef-read")
}

// TestReadDefinedOnOnePathOnly: a register defined on only one branch
// arm is not must-defined at the join.
func TestReadDefinedOnOnePathOnly(t *testing.T) {
	src := `
	li r1, 1
	beq r1, r0, join
	li r2, 7
join:
	add r3, r2, r2
	halt
`
	fs := mustLint(t, src, "undef-read")
	if len(fs) != 1 {
		t.Fatalf("got %d undef-read findings (%v), want 1 at the join", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "r2") {
		t.Errorf("finding %v should name r2", fs[0])
	}
}

func TestMissingHalt(t *testing.T) {
	src := `
	li r1, 1
	add r2, r1, r1
`
	fs := mustLint(t, src, "no-halt")
	if len(fs) != 1 {
		t.Fatalf("got %d no-halt findings (%v), want 1", len(fs), fs)
	}
	if fs[0].Idx != 1 {
		t.Errorf("finding index = %d, want the last instruction (1)", fs[0].Idx)
	}
	assertOnlyRule(t, src, "no-halt")
}

func TestEmptyProgram(t *testing.T) {
	fs := mustLint(t, ".data\nx: .word 1\n", "no-halt")
	if len(fs) != 1 || fs[0].Idx != -1 {
		t.Fatalf("got %v, want one program-level no-halt finding", fs)
	}
}

func TestOutOfRangeLoad(t *testing.T) {
	src := `
	.data
arr:	.word32 1
	.word32 2
	.word32 3
	.text
	la r1, arr
	lw r2, 12(r1)
	halt
`
	fs := mustLint(t, src, "oob-mem")
	if len(fs) != 1 {
		t.Fatalf("got %d oob-mem findings (%v), want 1", len(fs), fs)
	}
	if fs[0].Idx != 1 || !strings.Contains(fs[0].Msg, "outside the data segment") {
		t.Errorf("finding = %v, want oob load at index 1", fs[0])
	}
	assertOnlyRule(t, src, "oob-mem")
}

// TestInBoundsLoadAtSegmentEnd: the last word of the segment is legal
// (regression guard for an off-by-one in the bounds check).
func TestInBoundsLoadAtSegmentEnd(t *testing.T) {
	src := `
	.data
arr:	.word32 1
	.word32 2
	.word32 3
	.text
	la r1, arr
	lw r2, 8(r1)
	halt
`
	if fs := mustLint(t, src, "oob-mem"); len(fs) != 0 {
		t.Fatalf("last in-bounds word flagged: %v", fs)
	}
}

func TestOutOfRangeStoreBelowSegment(t *testing.T) {
	src := `
	.data
arr:	.word32 1
	.text
	la r1, arr
	sw r0, -4(r1)
	halt
`
	fs := mustLint(t, src, "oob-mem")
	if len(fs) != 1 {
		t.Fatalf("got %d oob-mem findings (%v), want 1", len(fs), fs)
	}
}

func TestBadBranchTarget(t *testing.T) {
	src := `
	li r1, 1
	beq r1, r0, 64
	halt
`
	fs := mustLint(t, src, "bad-target")
	if len(fs) != 1 {
		t.Fatalf("got %d bad-target findings (%v), want 1", len(fs), fs)
	}
	if fs[0].Idx != 1 {
		t.Errorf("finding index = %d, want 1", fs[0].Idx)
	}
}

// TestCallHavocsState: after a jal returns, the callee may have written
// anything, so reads of caller-unwritten registers are not flagged and
// constants no longer prove addresses.
func TestCallHavocsState(t *testing.T) {
	src := `
	j main
init:
	li r5, 42
	jr r31
main:
	jal r31, init
	add r6, r5, r5
	halt
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if fs := Lint(prog); len(fs) != 0 {
		t.Fatalf("call/return idiom flagged: %v", fs)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Idx: 3, PC: 12, Rule: "oob-mem", Msg: "x"}
	if got := f.String(); !strings.Contains(got, "0x00000c") || !strings.Contains(got, "oob-mem") {
		t.Errorf("String() = %q", got)
	}
}
