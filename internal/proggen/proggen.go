// Package proggen generates random, deterministic, guaranteed-halting
// programs for differential testing: the batched lane engine and the
// scalar emulator must agree bit for bit on every generated program,
// with and without injected flips. Programs exercise integer and float
// ALU ops, loads, stores, atomics, bounded backward loops, forward
// branches, and observable output via SysPrintInt/SysPrintFloat.
//
// Generation is driven by a private splitmix64 stream keyed by the
// caller's seed — no math/rand — so a failing seed reproduces exactly.
package proggen

import (
	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/isa"
)

// rng is a splitmix64 stream.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Scratch registers the generator may clobber. r2 is reserved for the
// syscall selector, r9 for loop counters, r10 for the data base
// pointer; r0 is hardwired.
var scratch = []uint8{1, 3, 4, 5, 6, 7, 8, 11, 12, 13, 14, 15}

// dataSpan is the byte span of the generated data section — small so
// random SpaceMem flips (drawn over len(Data)) land on bytes the
// program actually loads.
const dataSpan = 64

// Random returns a deterministic random program for the given seed.
// Every program halts within a few thousand committed instructions and
// prints at least one value, so golden runs always terminate and
// output comparisons are meaningful.
func Random(seed uint64) *asm.Program {
	r := &rng{s: seed ^ 0xdeadbeefcafef00d}
	var insts []isa.Inst
	emit := func(in isa.Inst) { insts = append(insts, in) }

	data := make([]byte, dataSpan)
	for i := range data {
		data[i] = byte(r.next())
	}

	// r10 = DataBase (0x10000 = 1 << 16), r2 = SysPrintInt.
	emit(isa.Inst{Op: isa.LUI, Rd: 10, Imm: 1})
	emit(isa.Inst{Op: isa.ADDI, Rd: 2, Rs1: 0, Imm: 1})
	// Seed a few scratch registers with random constants.
	for _, reg := range scratch[:4] {
		emit(isa.Inst{Op: isa.ADDI, Rd: reg, Rs1: 0, Imm: int64(int16(r.next()))})
	}

	blocks := 3 + r.intn(5)
	for b := 0; b < blocks; b++ {
		genBlock(r, emit)
	}

	// Print an accumulated value and a float so output depends on the
	// whole run, then exit via the syscall path about half the time to
	// exercise both halt mechanisms.
	emit(isa.Inst{Op: isa.ADDI, Rd: 4, Rs1: scratch[r.intn(len(scratch))], Imm: 0})
	emit(isa.Inst{Op: isa.SYSCALL})
	if r.intn(2) == 0 {
		emit(isa.Inst{Op: isa.ADDI, Rd: 2, Rs1: 0, Imm: 10}) // SysExit
		emit(isa.Inst{Op: isa.SYSCALL})
		emit(isa.Inst{Op: isa.HALT}) // unreachable backstop
	} else {
		emit(isa.Inst{Op: isa.HALT})
	}
	return &asm.Program{Insts: insts, Data: data, DataBase: 0x10000}
}

// genBlock appends one random block: ALU traffic, memory traffic, a
// bounded loop or a forward branch, and occasionally a print.
func genBlock(r *rng, emit func(isa.Inst)) {
	rnd := func() uint8 { return scratch[r.intn(len(scratch))] }
	off := func() int64 { return int64(r.intn(dataSpan-8) &^ 7) }

	n := 3 + r.intn(6)
	for i := 0; i < n; i++ {
		a, b, d := rnd(), rnd(), rnd()
		switch r.intn(16) {
		case 0:
			emit(isa.Inst{Op: isa.ADD, Rd: d, Rs1: a, Rs2: b})
		case 1:
			emit(isa.Inst{Op: isa.SUB, Rd: d, Rs1: a, Rs2: b})
		case 2:
			emit(isa.Inst{Op: isa.XOR, Rd: d, Rs1: a, Rs2: b})
		case 3:
			emit(isa.Inst{Op: isa.MUL, Rd: d, Rs1: a, Rs2: b})
		case 4:
			emit(isa.Inst{Op: isa.SLT, Rd: d, Rs1: a, Rs2: b})
		case 5:
			emit(isa.Inst{Op: isa.SRAI, Rd: d, Rs1: a, Imm: int64(r.intn(63))})
		case 6:
			emit(isa.Inst{Op: isa.DIV, Rd: d, Rs1: a, Rs2: b})
		case 7:
			emit(isa.Inst{Op: isa.ADDI, Rd: d, Rs1: a, Imm: int64(int16(r.next()))})
		case 8:
			emit(isa.Inst{Op: isa.LW, Rd: d, Rs1: 10, Imm: off()})
		case 9:
			emit(isa.Inst{Op: isa.LD, Rd: d, Rs1: 10, Imm: off()})
		case 10:
			emit(isa.Inst{Op: isa.SW, Rs1: 10, Rs2: a, Imm: off()})
		case 11:
			emit(isa.Inst{Op: isa.SD, Rs1: 10, Rs2: a, Imm: off()})
		case 12:
			emit(isa.Inst{Op: isa.AMOADD, Rd: d, Rs1: 10, Rs2: a})
		case 13:
			// Float round trip: convert, arithmetic, convert back.
			emit(isa.Inst{Op: isa.FCVTIF, Rd: 12, Rs1: a})
			emit(isa.Inst{Op: isa.FCVTIF, Rd: 13, Rs1: b})
			emit(isa.Inst{Op: isa.FADD, Rd: 12, Rs1: 12, Rs2: 13})
			emit(isa.Inst{Op: isa.FCVTFI, Rd: d, Rs1: 12})
		case 14:
			emit(isa.Inst{Op: isa.SB, Rs1: 10, Rs2: a, Imm: int64(r.intn(dataSpan - 1))})
		case 15:
			emit(isa.Inst{Op: isa.LBU, Rd: d, Rs1: 10, Imm: int64(r.intn(dataSpan - 1))})
		}
	}

	switch r.intn(3) {
	case 0:
		// Bounded backward loop: r9 counts down over a small body.
		iters := 2 + r.intn(6)
		emit(isa.Inst{Op: isa.ADDI, Rd: 9, Rs1: 0, Imm: int64(iters)})
		body := 1 + r.intn(3)
		for i := 0; i < body; i++ {
			a, d := rnd(), rnd()
			emit(isa.Inst{Op: isa.ADD, Rd: d, Rs1: d, Rs2: a})
		}
		emit(isa.Inst{Op: isa.ADDI, Rd: 9, Rs1: 9, Imm: -1})
		// Branch back over the body and the decrement.
		emit(isa.Inst{Op: isa.BNE, Rs1: 9, Rs2: 0, Imm: int64(-4 * (body + 1))})
	case 1:
		// Forward branch skipping a couple of instructions.
		skip := 1 + r.intn(3)
		emit(isa.Inst{Op: isa.BLT, Rs1: rnd(), Rs2: rnd(), Imm: int64(4 * (skip + 1))})
		for i := 0; i < skip; i++ {
			a, d := rnd(), rnd()
			emit(isa.Inst{Op: isa.XOR, Rd: d, Rs1: d, Rs2: a})
		}
	case 2:
		// Print the current value of a scratch register (r2 is already
		// SysPrintInt; blocks never clobber r2).
		emit(isa.Inst{Op: isa.ADDI, Rd: 4, Rs1: rnd(), Imm: 0})
		emit(isa.Inst{Op: isa.SYSCALL})
	}
}
