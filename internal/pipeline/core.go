package pipeline

import (
	"errors"

	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/ring"
	"github.com/cmlasu/unsync/internal/stats"
	"github.com/cmlasu/unsync/internal/trace"
)

// Stats aggregates per-core performance counters.
type Stats struct {
	Cycles uint64
	// Insts is the architectural committed-instruction counter; recovery
	// Restarts adjust it to the resumed position, so it feeds IPC and
	// the committed clock but NOT the topdown slot accounting.
	Insts uint64
	// Retired counts microarchitectural retires only — one per commit,
	// never adjusted by Restart — so the topdown retiring bucket cannot
	// exceed the slot capacity even across recoveries.
	Retired uint64

	Loads       uint64
	Stores      uint64
	Branches    uint64
	Mispredicts uint64
	Serializing uint64

	// Commit-slot-0 accounting. Exactly one of CommitCycles, StallEmpty,
	// StallExec, StallGate increments per unfrozen cycle, and frozen
	// cycles increment FrozenCycles, so
	//
	//	Cycles == CommitCycles + StallEmpty + StallExec + StallGate + FrozenCycles
	//
	// holds over any window that starts at a ResetStats — the accounting
	// identity the topdown report depends on (pinned in internal/cmp).
	CommitCycles uint64 // cycles in which slot 0 committed
	StallEmpty   uint64 // ROB empty (frontend-bound)
	StallExec    uint64 // head not finished executing
	StallGate    uint64 // blocked by the redundancy scheme / drain

	// Dispatch stall cycles by cause.
	DispatchStallROB uint64
	DispatchStallIQ  uint64
	DispatchStallLSQ uint64

	FetchStall   uint64 // cycles the frontend was stalled
	FrozenCycles uint64 // cycles spent frozen in a recovery window

	ROBOcc *stats.Occupancy
	IQOcc  *stats.Occupancy
	LSQOcc *stats.Occupancy
}

// IPC returns committed instructions per cycle. A window of zero
// cycles (a machine that never stepped) reports 0, not NaN.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// Events exports the counters under the repository-wide taxonomy
// (internal/events) for a core of the given commit width, including
// the derived topdown slot buckets:
//
//	slots    = width × Cycles
//	frontend = width × StallEmpty
//	bad-gate = width × (StallGate + FrozenCycles)
//	retiring = Retired
//	backend  = width × (StallExec + CommitCycles) − Retired
//
// The backend bucket absorbs both execution-bound slot-0 stalls and the
// partial-width slack of commit cycles (slot 0 committed, later slots
// did not), so the five buckets partition the slot capacity exactly.
func (s *Stats) Events(width int) events.Counts {
	w := uint64(width)
	return events.Counts{
		events.Cycles:           s.Cycles,
		events.InstRetired:      s.Retired,
		events.InstSerializing:  s.Serializing,
		events.MemInstLoads:     s.Loads,
		events.MemInstStores:    s.Stores,
		events.BranchFetched:    s.Branches,
		events.BranchMispredict: s.Mispredicts,

		events.CommitCycles:     s.CommitCycles,
		events.CommitStallEmpty: s.StallEmpty,
		events.CommitStallExec:  s.StallExec,
		events.CommitStallGate:  s.StallGate,
		events.FrozenCycles:     s.FrozenCycles,

		events.DispatchStallROBFull: s.DispatchStallROB,
		events.DispatchStallIQFull:  s.DispatchStallIQ,
		events.DispatchStallLSQFull: s.DispatchStallLSQ,
		events.FetchStall:           s.FetchStall,

		events.TopdownSlots:         w * s.Cycles,
		events.TopdownRetiringSlots: s.Retired,
		events.TopdownFrontendSlots: w * s.StallEmpty,
		events.TopdownBackendSlots:  w*(s.StallExec+s.CommitCycles) - s.Retired,
		events.TopdownBadGateSlots:  w * (s.StallGate + s.FrozenCycles),
	}
}

// entry is one reorder-buffer slot.
type entry struct {
	rec trace.Record

	dep1, dep2       int // ROB index of producer, or -1
	dep1Seq, dep2Seq uint64
	ready1At         uint64 // used when dep == -1
	ready2At         uint64

	issued     bool
	complete   uint64
	mispredict bool
}

type fetched struct {
	rec        trace.Record
	mispredict bool
}

// Core is one out-of-order core fed by a trace stream.
type Core struct {
	Cfg  Config
	ID   int // index into the hierarchy's core sides
	Hier *mem.Hierarchy
	Pred *Bimodal

	// CommitGate, when non-nil, is consulted before each commit; return
	// false to block commit this cycle (the scheme's backpressure).
	CommitGate func(rec trace.Record, cycle uint64) bool
	// OnCommit, when non-nil, observes every commit.
	OnCommit func(rec trace.Record, cycle uint64)
	// DrainEmpty gates memory-barrier commit on the scheme's store path
	// being empty. nil means always empty.
	DrainEmpty func(cycle uint64) bool
	// IssueGate, when non-nil, can block instruction issue for a cycle
	// (Reunion stalls the whole pipeline while a serializing
	// instruction's fingerprint is being verified, §IV-A5).
	IssueGate func(cycle uint64) bool

	Stats Stats

	stream   trace.Stream
	cycle    uint64
	position uint64 // absolute committed-instruction position (survives ResetStats)

	rob   []entry
	head  int
	count int

	regProd    [isa.TotalDepRegs]int
	regProdSeq [isa.TotalDepRegs]uint64
	regReadyAt [isa.TotalDepRegs]uint64

	unissued int // dispatched but not yet issued (issue-queue occupancy)
	memInROB int // memory ops in flight (LSQ occupancy)

	// storeList holds ROB indices of in-flight stores in program order.
	// Occupancy is bounded by the LSQ, so the preallocated ring never
	// grows on the cycle loop.
	storeList *ring.Buffer[int]

	fetchQ        *ring.Buffer[fetched] // bounded by Cfg.FetchQueue
	pendingFetch  trace.Record          // valid when hasPending
	hasPending    bool
	fetchResumeAt uint64
	waitRedirect  bool
	curFetchLine  uint64
	streamDone    bool

	frozenUntil uint64

	alu, mul, fp, memPorts *fuPool
}

// NewCore builds a core over the given hierarchy slot and stream. It
// panics on invalid configuration.
func NewCore(cfg Config, id int, hier *mem.Hierarchy, stream trace.Stream) *Core {
	if err := cfg.Validate(); err != nil {
		//unsync:allow-panic core configs are validated at the public API boundary
		panic(err)
	}
	if id < 0 || id >= len(hier.Cores) {
		//unsync:allow-panic invariant: chip assembly allocates hierarchy slots before building cores
		panic("pipeline: core id out of range of hierarchy")
	}
	c := &Core{
		Cfg:          cfg,
		ID:           id,
		Hier:         hier,
		Pred:         NewBimodal(cfg.PredictorEntries),
		stream:       stream,
		rob:          make([]entry, cfg.ROBSize),
		storeList:    ring.New[int](cfg.LSQSize),
		fetchQ:       ring.New[fetched](cfg.FetchQueue),
		curFetchLine: ^uint64(0),
		alu:          newFUPool(cfg.IntALUs, true),
		mul:          newFUPool(cfg.IntMuls, true),
		fp:           newFUPool(cfg.FPUs, true),
		memPorts:     newFUPool(cfg.MemPorts, true),
	}
	for i := range c.regProd {
		c.regProd[i] = -1
	}
	c.Stats.ROBOcc = stats.NewOccupancy(cfg.ROBSize)
	c.Stats.IQOcc = stats.NewOccupancy(cfg.IQSize)
	c.Stats.LSQOcc = stats.NewOccupancy(cfg.LSQSize)
	return c
}

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// ROBCount returns the current reorder-buffer occupancy.
func (c *Core) ROBCount() int { return c.count }

// HeadInfo returns the record at the ROB head and its issue state, for
// diagnostics. ok is false when the ROB is empty.
func (c *Core) HeadInfo() (rec trace.Record, issued bool, complete uint64, ok bool) {
	if c.count == 0 {
		return trace.Record{}, false, 0, false
	}
	e := &c.rob[c.head]
	return e.rec, e.issued, e.complete, true
}

// ResetStats zeroes all performance counters without disturbing the
// microarchitectural state. Experiments call it after a warmup phase so
// cold-cache effects do not dominate short measurement windows.
func (c *Core) ResetStats() {
	c.Stats = Stats{
		ROBOcc: stats.NewOccupancy(c.Cfg.ROBSize),
		IQOcc:  stats.NewOccupancy(c.Cfg.IQSize),
		LSQOcc: stats.NewOccupancy(c.Cfg.LSQSize),
	}
}

// Events exports the core's counters under the repository-wide event
// taxonomy, topdown buckets included (see Stats.Events).
func (c *Core) Events() events.Counts { return c.Stats.Events(c.Cfg.Width) }

// Done reports whether the stream is exhausted and the pipeline drained.
func (c *Core) Done() bool {
	return c.streamDone && c.count == 0 && c.fetchQ.Empty() && !c.hasPending
}

// FreezeUntil stalls the whole core (all stages) until the given cycle.
// UnSync recovery uses this to model the stop-copy-resume window.
func (c *Core) FreezeUntil(cycle uint64) {
	if cycle > c.frozenUntil {
		c.frozenUntil = cycle
	}
}

// Frozen reports whether the core is inside a recovery freeze window.
func (c *Core) Frozen() bool { return c.cycle < c.frozenUntil }

// Position returns the absolute committed-instruction position (it is
// not reset by ResetStats).
func (c *Core) Position() uint64 { return c.position }

// Restart flushes the whole pipeline and repositions the core so its
// next fetched instruction is sequence number to. The workload stream
// must be trace.Seekable. UnSync recovery uses this to resume the
// erroneous core from the error-free core's architectural position —
// forward if it was behind, re-tracing if it was ahead.
func (c *Core) Restart(to uint64) {
	s, ok := c.stream.(trace.Seekable)
	if !ok {
		//unsync:allow-panic invariant: recovery is only wired onto cores with Seekable workload streams
		panic("pipeline: Restart requires a seekable stream")
	}
	s.Seek(to)

	// Flush every in-flight structure.
	c.head, c.count = 0, 0
	c.unissued, c.memInROB = 0, 0
	c.storeList.Clear()
	c.fetchQ.Clear()
	c.hasPending = false
	c.waitRedirect = false
	c.curFetchLine = ^uint64(0)
	c.streamDone = false
	for i := range c.regProd {
		c.regProd[i] = -1
		c.regReadyAt[i] = 0
	}

	// Adjust the committed counters to the new position.
	delta := int64(to) - int64(c.position)
	if d := int64(c.Stats.Insts) + delta; d > 0 {
		c.Stats.Insts = uint64(d)
	} else {
		c.Stats.Insts = 0
	}
	c.position = to
}

// Step advances the core by one cycle.
func (c *Core) Step() {
	if c.cycle < c.frozenUntil {
		c.Stats.FrozenCycles++
	} else {
		c.commit()
		c.issue()
		c.dispatch()
		c.fetch()
	}
	c.Stats.ROBOcc.Sample(c.count)
	c.Stats.IQOcc.Sample(c.unissued)
	c.Stats.LSQOcc.Sample(c.memInROB)
	c.cycle++
	c.Stats.Cycles++
}

// ErrCycleBudget is returned by Run when maxCycles elapses first.
var ErrCycleBudget = errors.New("pipeline: cycle budget exhausted")

// Run steps the core until it is done or maxCycles elapse.
func (c *Core) Run(maxCycles uint64) error {
	for !c.Done() {
		if c.cycle >= maxCycles {
			return ErrCycleBudget
		}
		c.Step()
	}
	return nil
}

// ---- commit stage ----

func (c *Core) commit() {
	for n := 0; n < c.Cfg.Width; n++ {
		if c.count == 0 {
			if n == 0 {
				c.Stats.StallEmpty++
			}
			return
		}
		e := &c.rob[c.head]
		if !e.issued || c.cycle < e.complete {
			if n == 0 {
				c.Stats.StallExec++
			}
			return
		}
		if e.rec.Class == isa.ClassMembar && c.DrainEmpty != nil && !c.DrainEmpty(c.cycle) {
			if n == 0 {
				c.Stats.StallGate++
			}
			return
		}
		if c.CommitGate != nil && !c.CommitGate(e.rec, c.cycle) {
			if n == 0 {
				c.Stats.StallGate++
			}
			return
		}
		if n == 0 {
			c.Stats.CommitCycles++
		}

		// Commit actions.
		if e.rec.IsStore() {
			c.Hier.StoreAccess(c.ID, c.cycle, e.rec.Addr)
			c.Stats.Stores++
			if c.storeList.Len() > 0 && *c.storeList.Front() == c.head {
				c.storeList.PopFront()
			}
		}
		if e.rec.IsLoad() {
			c.Stats.Loads++
		}
		if e.rec.Serializing() {
			c.Stats.Serializing++
		}
		if c.OnCommit != nil {
			c.OnCommit(e.rec, c.cycle)
		}
		if d := e.rec.Dst; d >= 0 && c.regProd[d] == c.head && c.regProdSeq[d] == e.rec.Seq {
			c.regProd[d] = -1
			c.regReadyAt[d] = e.complete
		}
		if e.rec.Class == isa.ClassTrap {
			// Traps flush the frontend at commit.
			if r := c.cycle + c.Cfg.TrapFlush; r > c.fetchResumeAt {
				c.fetchResumeAt = r
			}
		}
		if e.rec.IsMem() {
			c.memInROB--
		}
		c.head = (c.head + 1) % c.Cfg.ROBSize
		c.count--
		c.Stats.Insts++
		c.Stats.Retired++
		c.position++
	}
}

// ---- issue/execute stage ----

// srcReady resolves one dependence: ok=false means the producer has not
// issued yet; otherwise at is the cycle the value is available.
func (c *Core) srcReady(dep int, depSeq, readyAt uint64) (at uint64, ok bool) {
	if dep < 0 {
		return readyAt, true
	}
	p := &c.rob[dep]
	if p.rec.Seq != depSeq {
		// Producer has committed (slot reused or freed): value ready.
		return 0, true
	}
	if !p.issued {
		return 0, false
	}
	return p.complete + c.Cfg.BypassDelay, true
}

func (c *Core) issue() {
	if c.IssueGate != nil && !c.IssueGate(c.cycle) {
		return
	}
	issued := 0
	for i := 0; i < c.count && issued < c.Cfg.Width; i++ {
		idx := (c.head + i) % c.Cfg.ROBSize
		e := &c.rob[idx]
		if e.issued {
			continue
		}
		r1, ok := c.srcReady(e.dep1, e.dep1Seq, e.ready1At)
		if !ok || r1 > c.cycle {
			continue
		}
		r2, ok := c.srcReady(e.dep2, e.dep2Seq, e.ready2At)
		if !ok || r2 > c.cycle {
			continue
		}

		cl := e.rec.Class
		lat := uint64(isa.Latency(cl))
		var complete uint64

		switch {
		case cl.MemoryOp():
			if cl == isa.ClassAtomic && idx != c.head {
				continue // atomics issue non-speculatively, at ROB head
			}
			if e.rec.IsLoad() || e.rec.IsStore() {
				if e.rec.IsLoad() {
					fwd, wait, found := c.forwardFrom(e.rec)
					if wait {
						continue // older matching store not yet executed
					}
					if !c.memPorts.tryIssue(c.cycle, 1) {
						continue
					}
					if found {
						complete = maxU64(c.cycle, fwd) + 1
					} else {
						done, _ := c.Hier.LoadAccess(c.ID, c.cycle+1, e.rec.Addr)
						complete = done
					}
					if cl == isa.ClassAtomic {
						complete++ // read-modify-write
					}
				} else { // plain store: address generation only
					if !c.memPorts.tryIssue(c.cycle, 1) {
						continue
					}
					complete = c.cycle + lat
				}
			}
		case cl == isa.ClassIntMul || cl == isa.ClassIntDiv:
			busy := uint64(1)
			if !isa.Pipelined(cl) {
				busy = lat
			}
			if !c.mul.tryIssue(c.cycle, busy) {
				continue
			}
			complete = c.cycle + lat
		case cl == isa.ClassFPALU || cl == isa.ClassFPMul || cl == isa.ClassFPDiv:
			busy := uint64(1)
			if !isa.Pipelined(cl) {
				busy = lat
			}
			if !c.fp.tryIssue(c.cycle, busy) {
				continue
			}
			complete = c.cycle + lat
		default: // ALU, branches, jumps, traps, barriers, nops
			if !c.alu.tryIssue(c.cycle, 1) {
				continue
			}
			complete = c.cycle + lat
		}

		e.issued = true
		e.complete = complete
		c.unissued--
		issued++

		if e.mispredict {
			if r := complete + c.Cfg.BranchPenalty; r > c.fetchResumeAt {
				c.fetchResumeAt = r
			}
			c.waitRedirect = false
		}
	}
}

// forwardFrom finds the youngest older in-flight store writing the
// load's 8-byte word. found reports a forwarding match (fwd = cycle the
// data is available); wait reports that a matching store has not
// executed yet, so the load must hold.
func (c *Core) forwardFrom(ld trace.Record) (fwd uint64, wait, found bool) {
	word := ld.Addr &^ 7
	for i := 0; i < c.storeList.Len(); i++ {
		st := &c.rob[*c.storeList.At(i)]
		if st.rec.Seq >= ld.Seq {
			break
		}
		if st.rec.Addr&^7 != word {
			continue
		}
		if !st.issued {
			return 0, true, false
		}
		fwd, found = st.complete, true
	}
	return fwd, false, found
}

// ---- dispatch stage ----

func (c *Core) dispatch() {
	for n := 0; n < c.Cfg.Width; n++ {
		if c.fetchQ.Empty() {
			return
		}
		if c.count == c.Cfg.ROBSize {
			if n == 0 {
				c.Stats.DispatchStallROB++
			}
			return
		}
		if c.unissued == c.Cfg.IQSize {
			if n == 0 {
				c.Stats.DispatchStallIQ++
			}
			return
		}
		f := *c.fetchQ.Front()
		if f.rec.IsMem() && c.memInROB == c.Cfg.LSQSize {
			if n == 0 {
				c.Stats.DispatchStallLSQ++
			}
			return
		}
		c.fetchQ.PopFront()

		idx := (c.head + c.count) % c.Cfg.ROBSize
		e := entry{rec: f.rec, mispredict: f.mispredict, dep1: -1, dep2: -1}
		if s := f.rec.Src1; s >= 0 {
			if p := c.regProd[s]; p >= 0 {
				e.dep1, e.dep1Seq = p, c.regProdSeq[s]
			} else {
				e.ready1At = c.regReadyAt[s]
			}
		}
		if s := f.rec.Src2; s >= 0 {
			if p := c.regProd[s]; p >= 0 {
				e.dep2, e.dep2Seq = p, c.regProdSeq[s]
			} else {
				e.ready2At = c.regReadyAt[s]
			}
		}
		if d := f.rec.Dst; d >= 0 {
			c.regProd[d] = idx
			c.regProdSeq[d] = f.rec.Seq
		}
		c.rob[idx] = e
		c.count++
		c.unissued++
		if f.rec.IsMem() {
			c.memInROB++
			if f.rec.IsStore() {
				c.storeList.PushBack(idx)
			}
		}
		// Note: traps and barriers do not drain dispatch in the baseline
		// core — they flush the frontend at commit (traps) or gate
		// commit on the store path (barriers). The redundancy schemes
		// impose their own, stronger serialization via CommitGate.
	}
}

// ---- fetch stage ----

func (c *Core) fetch() {
	if c.streamDone && !c.hasPending {
		return
	}
	if c.cycle < c.fetchResumeAt || c.waitRedirect {
		c.Stats.FetchStall++
		return
	}
	for n := 0; n < c.Cfg.Width && c.fetchQ.Len() < c.Cfg.FetchQueue; n++ {
		var rec trace.Record
		if c.hasPending {
			rec = c.pendingFetch
			c.hasPending = false
		} else {
			r, ok := c.stream.Next()
			if !ok {
				c.streamDone = true
				return
			}
			rec = r
		}
		line := rec.PC >> 6
		if line != c.curFetchLine {
			done, _ := c.Hier.FetchAccess(c.ID, c.cycle, rec.PC)
			// Next-line prefetch: sequential fetch misses are hidden on
			// real frontends; model that by touching the following line.
			c.Hier.FetchAccess(c.ID, c.cycle, (line+1)<<6)
			c.curFetchLine = line
			if done > c.cycle+c.Hier.Cfg.L1I.HitLatency {
				c.pendingFetch = rec
				c.hasPending = true
				if done > c.fetchResumeAt {
					c.fetchResumeAt = done
				}
				return
			}
		}
		mispred := false
		if rec.Class == isa.ClassBranch {
			c.Stats.Branches++
			if !c.Pred.Predict(rec.PC, rec.Taken) {
				mispred = true
				c.Stats.Mispredicts++
			}
		}
		c.fetchQ.PushBack(fetched{rec: rec, mispredict: mispred})
		if mispred {
			c.waitRedirect = true
			return
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
