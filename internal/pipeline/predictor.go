package pipeline

// Bimodal is a classic 2-bit saturating-counter branch predictor. The
// table is indexed by the branch PC; counters start weakly taken.
type Bimodal struct {
	table []uint8
	mask  uint64

	Lookups     uint64
	Mispredicts uint64
}

// NewBimodal creates a predictor with the given power-of-two table size.
func NewBimodal(entries int) *Bimodal {
	if entries < 2 || entries&(entries-1) != 0 {
		//unsync:allow-panic predictor geometry is validated by Config.Validate at the public API boundary
		panic("pipeline: predictor entries must be a power of two >= 2")
	}
	t := make([]uint8, entries)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Bimodal{table: t, mask: uint64(entries - 1)}
}

// Predict consults and updates the predictor with the actual outcome,
// returning whether the prediction was correct. (Trace-driven models
// update at fetch; the misprediction cost is applied by the frontend.)
func (b *Bimodal) Predict(pc uint64, taken bool) (correct bool) {
	b.Lookups++
	i := (pc >> 2) & b.mask
	pred := b.table[i] >= 2
	if taken && b.table[i] < 3 {
		b.table[i]++
	}
	if !taken && b.table[i] > 0 {
		b.table[i]--
	}
	if pred != taken {
		b.Mispredicts++
		return false
	}
	return true
}

// MispredictRate returns mispredictions per lookup.
func (b *Bimodal) MispredictRate() float64 {
	if b.Lookups == 0 {
		return 0
	}
	return float64(b.Mispredicts) / float64(b.Lookups)
}

// fuPool models one class of functional units. Pipelined units accept a
// new operation every cycle; unpipelined units are busy for the whole
// latency.
type fuPool struct {
	freeAt    []uint64
	pipelined bool
}

func newFUPool(n int, pipelined bool) *fuPool {
	return &fuPool{freeAt: make([]uint64, n), pipelined: pipelined}
}

// tryIssue attempts to claim a unit at the given cycle for an operation
// of the given latency. It reports whether a unit was available.
func (f *fuPool) tryIssue(cycle uint64, latency uint64) bool {
	for i := range f.freeAt {
		if f.freeAt[i] <= cycle {
			if f.pipelined {
				f.freeAt[i] = cycle + 1
			} else {
				f.freeAt[i] = cycle + latency
			}
			return true
		}
	}
	return false
}
