package pipeline

import (
	"testing"
	"testing/quick"

	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/trace"
)

// mkStream builds a SliceStream with Seq filled in and PCs looping over
// a 256 B code footprint (real workloads loop; straight-line multi-MB
// text would make every test I-cache-bound).
func mkStream(recs []trace.Record) *trace.SliceStream {
	for i := range recs {
		recs[i].Seq = uint64(i)
		if recs[i].PC == 0 {
			recs[i].PC = 0x4000 + uint64(i%64)*4
		}
	}
	return trace.NewSliceStream(recs)
}

// repeat builds n copies of a template record.
func repeat(tmpl trace.Record, n int) []trace.Record {
	out := make([]trace.Record, n)
	for i := range out {
		out[i] = tmpl
	}
	return out
}

func newTestCore(recs []trace.Record) *Core {
	h := mem.NewHierarchy(mem.DefaultConfig(), 1)
	return NewCore(DefaultConfig(), 0, h, mkStream(recs))
}

func mustRun(t *testing.T, c *Core) {
	t.Helper()
	if err := c.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.ROBSize = 2 },
		func(c *Config) { c.IQSize = 0 },
		func(c *Config) { c.LSQSize = 0 },
		func(c *Config) { c.FetchQueue = 1 },
		func(c *Config) { c.IntALUs = 0 },
		func(c *Config) { c.PredictorEntries = 100 },
	}
	for i, mut := range cases {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestIndependentALUStreamNearWidth(t *testing.T) {
	// Fully independent single-cycle ALU ops: IPC should approach the
	// machine width (4) once warmed up.
	recs := repeat(trace.Record{Class: isa.ClassIntALU, Dst: 1, Src1: -1, Src2: -1}, 20_000)
	for i := range recs {
		recs[i].Dst = int8(1 + i%40) // avoid WAW serialization artifacts
	}
	c := newTestCore(recs)
	mustRun(t, c)
	if ipc := c.Stats.IPC(); ipc < 3.0 {
		t.Errorf("independent ALU IPC = %.2f, want >= 3.0", ipc)
	}
	if c.Stats.Insts != 20_000 {
		t.Errorf("Insts = %d", c.Stats.Insts)
	}
}

func TestDependenceChainIPC1(t *testing.T) {
	// Every op depends on the previous one: IPC can't exceed 1.
	recs := repeat(trace.Record{Class: isa.ClassIntALU, Dst: 1, Src1: 1, Src2: -1}, 10_000)
	c := newTestCore(recs)
	mustRun(t, c)
	if ipc := c.Stats.IPC(); ipc > 1.05 {
		t.Errorf("chain IPC = %.2f, want <= 1.05", ipc)
	}
	if ipc := c.Stats.IPC(); ipc < 0.8 {
		t.Errorf("chain IPC = %.2f, suspiciously low", ipc)
	}
}

func TestFPChainSlower(t *testing.T) {
	// An FP-ALU chain (4-cycle latency) must run ~4x slower than an
	// integer chain.
	fp := repeat(trace.Record{Class: isa.ClassFPALU, Dst: 33, Src1: 33, Src2: -1}, 5_000)
	c := newTestCore(fp)
	mustRun(t, c)
	if ipc := c.Stats.IPC(); ipc > 0.27 {
		t.Errorf("FP chain IPC = %.3f, want ~0.25", ipc)
	}
}

func TestLoadMissesHurt(t *testing.T) {
	// Loads striding far apart (one per line, gigantic footprint) miss
	// continuously and should be much slower than L1-resident loads.
	far := make([]trace.Record, 4_000)
	near := make([]trace.Record, 4_000)
	for i := range far {
		far[i] = trace.Record{Class: isa.ClassLoad, Dst: int8(1 + i%30), Src1: -1, Src2: -1,
			Addr: uint64(0x100000 + i*4096)}
		near[i] = trace.Record{Class: isa.ClassLoad, Dst: int8(1 + i%30), Src1: -1, Src2: -1,
			Addr: uint64(0x100000 + (i%64)*8)}
	}
	cf := newTestCore(far)
	cn := newTestCore(near)
	mustRun(t, cf)
	mustRun(t, cn)
	if cf.Stats.IPC() >= cn.Stats.IPC()/2 {
		t.Errorf("missing IPC %.3f not clearly below hitting IPC %.3f",
			cf.Stats.IPC(), cn.Stats.IPC())
	}
	if cf.Hier.Cores[0].L1D.Stats.MissRate() < 0.5 {
		t.Errorf("far stream miss rate = %.2f, want high", cf.Hier.Cores[0].L1D.Stats.MissRate())
	}
}

func TestBranchMispredictionPenalty(t *testing.T) {
	// Alternating taken/not-taken from one site defeats a 2-bit
	// counter; a always-taken site is perfectly predicted after warmup.
	mkBranches := func(alternate bool) []trace.Record {
		recs := make([]trace.Record, 8_000)
		for i := range recs {
			taken := true
			if alternate {
				taken = i%2 == 0
			}
			recs[i] = trace.Record{Class: isa.ClassBranch, Dst: -1, Src1: -1, Src2: -1,
				PC: 0x4000, Taken: taken}
		}
		return recs
	}
	cAlt := newTestCore(mkBranches(true))
	cBias := newTestCore(mkBranches(false))
	mustRun(t, cAlt)
	mustRun(t, cBias)
	if cAlt.Stats.IPC() >= cBias.Stats.IPC() {
		t.Errorf("alternating branches IPC %.3f should be below biased %.3f",
			cAlt.Stats.IPC(), cBias.Stats.IPC())
	}
	if cBias.Pred.MispredictRate() > 0.01 {
		t.Errorf("biased mispredict rate = %.3f", cBias.Pred.MispredictRate())
	}
	if cAlt.Pred.MispredictRate() < 0.4 {
		t.Errorf("alternating mispredict rate = %.3f", cAlt.Pred.MispredictRate())
	}
}

func TestSerializingDrainsPipeline(t *testing.T) {
	// A trap every 50 instructions must cost noticeably more than the
	// same stream without traps (dispatch drains + frontend flush).
	mk := func(withTraps bool) []trace.Record {
		recs := make([]trace.Record, 10_000)
		for i := range recs {
			if withTraps && i%50 == 25 {
				recs[i] = trace.Record{Class: isa.ClassTrap, Dst: -1, Src1: -1, Src2: -1, Taken: true}
			} else {
				recs[i] = trace.Record{Class: isa.ClassIntALU, Dst: int8(1 + i%40), Src1: -1, Src2: -1}
			}
		}
		return recs
	}
	ct := newTestCore(mk(true))
	cn := newTestCore(mk(false))
	mustRun(t, ct)
	mustRun(t, cn)
	if ct.Stats.Cycles <= cn.Stats.Cycles {
		t.Errorf("traps: %d cycles vs %d without; expected a flush cost",
			ct.Stats.Cycles, cn.Stats.Cycles)
	}
	if ct.Stats.Serializing != 200 {
		t.Errorf("Serializing = %d, want 200", ct.Stats.Serializing)
	}
}

func TestCommitGateBackpressure(t *testing.T) {
	recs := repeat(trace.Record{Class: isa.ClassIntALU, Dst: 1, Src1: -1, Src2: -1}, 1_000)
	for i := range recs {
		recs[i].Dst = int8(1 + i%40)
	}
	c := newTestCore(recs)
	// Allow one commit every 4th cycle only.
	c.CommitGate = func(rec trace.Record, cycle uint64) bool { return cycle%4 == 0 }
	mustRun(t, c)
	if c.Stats.StallGate == 0 {
		t.Error("gate stalls not recorded")
	}
	if ipc := c.Stats.IPC(); ipc > 1.1 {
		t.Errorf("gated IPC = %.2f, want ~1 (4 commits every 4 cycles)", ipc)
	}
	// Gating must inflate ROB occupancy versus ungated.
	c2 := newTestCore(repeat(trace.Record{Class: isa.ClassIntALU, Dst: 1, Src1: -1, Src2: -1}, 1_000))
	mustRun(t, c2)
	if c.Stats.ROBOcc.Mean() <= c2.Stats.ROBOcc.Mean() {
		t.Errorf("gated ROB occupancy %.1f not above ungated %.1f",
			c.Stats.ROBOcc.Mean(), c2.Stats.ROBOcc.Mean())
	}
}

func TestMembarWaitsForDrain(t *testing.T) {
	recs := []trace.Record{
		{Class: isa.ClassIntALU, Dst: 1, Src1: -1, Src2: -1},
		{Class: isa.ClassMembar, Dst: -1, Src1: -1, Src2: -1},
		{Class: isa.ClassIntALU, Dst: 2, Src1: -1, Src2: -1},
	}
	c := newTestCore(recs)
	drainUntil := uint64(500)
	c.DrainEmpty = func(cycle uint64) bool { return cycle >= drainUntil }
	mustRun(t, c)
	if c.Stats.Cycles < 500 {
		t.Errorf("membar committed before drain: %d cycles", c.Stats.Cycles)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// A load that hits an older in-flight store's address must not pay
	// a cache miss: compare against the same load without the store.
	mkRecs := func(withStore bool) []trace.Record {
		var recs []trace.Record
		// Long dependence chain to keep the store in the ROB.
		for i := 0; i < 20; i++ {
			recs = append(recs, trace.Record{Class: isa.ClassFPALU, Dst: 40, Src1: 40, Src2: -1})
		}
		if withStore {
			recs = append(recs, trace.Record{Class: isa.ClassStore, Dst: -1, Src1: -1, Src2: -1, Addr: 0x900000})
		}
		recs = append(recs, trace.Record{Class: isa.ClassLoad, Dst: 5, Src1: -1, Src2: -1, Addr: 0x900000})
		recs = append(recs, trace.Record{Class: isa.ClassIntALU, Dst: 6, Src1: 5, Src2: -1})
		return recs
	}
	cf := newTestCore(mkRecs(true))
	mustRun(t, cf)
	// The forwarded load must not have touched the D-cache at all.
	if got := cf.Hier.Cores[0].L1D.Stats.Accesses; got != 1 { // just the store's commit write
		t.Errorf("L1D accesses = %d, want 1 (forwarded load bypasses cache)", got)
	}
	cn := newTestCore(mkRecs(false))
	mustRun(t, cn)
	if got := cn.Hier.Cores[0].L1D.Stats.Accesses; got == 0 {
		t.Error("unforwarded load should access the cache")
	}
}

func TestROBFillsUnderLongMiss(t *testing.T) {
	// A cold load miss at the head with plenty of independent work
	// behind it should fill the ROB (memory-level parallelism window).
	recs := []trace.Record{{Class: isa.ClassLoad, Dst: 1, Src1: -1, Src2: -1, Addr: 0xdead000}}
	recs = append(recs, repeat(trace.Record{Class: isa.ClassIntALU, Dst: 2, Src1: 2, Src2: -1}, 2000)...)
	c := newTestCore(recs)
	mustRun(t, c)
	if c.Stats.ROBOcc.Peak() < c.Cfg.ROBSize/2 {
		t.Errorf("ROB peak = %d, want at least half of %d", c.Stats.ROBOcc.Peak(), c.Cfg.ROBSize)
	}
}

func TestFreezeUntil(t *testing.T) {
	recs := repeat(trace.Record{Class: isa.ClassIntALU, Dst: 1, Src1: -1, Src2: -1}, 100)
	c := newTestCore(recs)
	c.FreezeUntil(1000)
	if !c.Frozen() {
		t.Error("core should be frozen")
	}
	mustRun(t, c)
	if c.Stats.FrozenCycles != 1000 {
		t.Errorf("FrozenCycles = %d, want 1000", c.Stats.FrozenCycles)
	}
	if c.Stats.Cycles < 1000 {
		t.Error("frozen cycles must still elapse")
	}
	// A shorter freeze must not shrink the window.
	c2 := newTestCore(repeat(trace.Record{Class: isa.ClassIntALU, Dst: 1, Src1: -1, Src2: -1}, 10))
	c2.FreezeUntil(100)
	c2.FreezeUntil(50)
	mustRun(t, c2)
	if c2.Stats.FrozenCycles != 100 {
		t.Errorf("FrozenCycles = %d, want 100", c2.Stats.FrozenCycles)
	}
}

func TestRunBudget(t *testing.T) {
	recs := repeat(trace.Record{Class: isa.ClassIntALU, Dst: 1, Src1: 1, Src2: -1}, 100_000)
	c := newTestCore(recs)
	if err := c.Run(100); err != ErrCycleBudget {
		t.Errorf("Run = %v, want ErrCycleBudget", err)
	}
}

func TestDeterminism(t *testing.T) {
	p, _ := trace.ByName("bzip2")
	run := func() Stats {
		h := mem.NewHierarchy(mem.DefaultConfig(), 1)
		c := NewCore(DefaultConfig(), 0, h, trace.NewLimit(trace.NewGenerator(p), 30_000))
		if err := c.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Stats
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Insts != b.Insts || a.Mispredicts != b.Mispredicts {
		t.Errorf("nondeterministic: %+v vs %+v", a.Cycles, b.Cycles)
	}
}

func TestRealisticWorkloadsSanity(t *testing.T) {
	// Every benchmark profile must produce a plausible IPC on the
	// baseline core: between 0.05 and the machine width.
	for _, name := range []string{"bzip2", "galgel", "mcf", "sha", "swim"} {
		p, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		h := mem.NewHierarchy(mem.DefaultConfig(), 1)
		c := NewCore(DefaultConfig(), 0, h, trace.NewLimit(trace.NewGenerator(p), 50_000))
		if err := c.Run(50_000_000); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ipc := c.Stats.IPC()
		if ipc < 0.03 || ipc > 4 {
			t.Errorf("%s: IPC = %.3f out of sane range", name, ipc)
		}
		if c.Stats.Insts != 50_000 {
			t.Errorf("%s: committed %d", name, c.Stats.Insts)
		}
	}
}

func TestGalgelLowerIPCThanSha(t *testing.T) {
	// galgel (long FP chains) must be clearly slower than sha
	// (ALU-dense, high ILP) — the property Figs 4/5 rely on.
	ipc := func(name string) float64 {
		p, _ := trace.ByName(name)
		h := mem.NewHierarchy(mem.DefaultConfig(), 1)
		c := NewCore(DefaultConfig(), 0, h, trace.NewLimit(trace.NewGenerator(p), 50_000))
		if err := c.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Stats.IPC()
	}
	g, s := ipc("galgel"), ipc("sha")
	if g >= s {
		t.Errorf("galgel IPC %.3f not below sha IPC %.3f", g, s)
	}
}

func TestOnCommitObservesEverything(t *testing.T) {
	recs := repeat(trace.Record{Class: isa.ClassIntALU, Dst: 1, Src1: -1, Src2: -1}, 500)
	c := newTestCore(recs)
	var seen uint64
	var lastSeq = ^uint64(0)
	c.OnCommit = func(rec trace.Record, cycle uint64) {
		if lastSeq != ^uint64(0) && rec.Seq != lastSeq+1 {
			t.Fatalf("out-of-order commit: %d after %d", rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		seen++
	}
	mustRun(t, c)
	if seen != 500 {
		t.Errorf("OnCommit saw %d, want 500", seen)
	}
}

func TestBimodalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two predictor")
		}
	}()
	NewBimodal(3)
}

func TestFUPoolNonPipelined(t *testing.T) {
	f := newFUPool(1, false)
	if !f.tryIssue(0, 10) {
		t.Fatal("first issue should succeed")
	}
	if f.tryIssue(5, 10) {
		t.Error("non-pipelined unit accepted work while busy")
	}
	if !f.tryIssue(10, 10) {
		t.Error("unit should be free at its completion cycle")
	}
}

func TestFUPoolPipelined(t *testing.T) {
	f := newFUPool(2, true)
	if !f.tryIssue(0, 4) || !f.tryIssue(0, 4) {
		t.Fatal("two units should accept two ops in one cycle")
	}
	if f.tryIssue(0, 4) {
		t.Error("third op in one cycle should be rejected")
	}
	if !f.tryIssue(1, 4) {
		t.Error("pipelined unit should accept next cycle")
	}
}

// Property: the core commits exactly the records it was fed, in order,
// for arbitrary class mixes (conservation), and can never beat the
// machine width.
func TestQuickConservation(t *testing.T) {
	classes := []isa.Class{
		isa.ClassIntALU, isa.ClassIntMul, isa.ClassFPALU, isa.ClassLoad,
		isa.ClassStore, isa.ClassBranch, isa.ClassJump, isa.ClassTrap,
		isa.ClassMembar, isa.ClassAtomic,
	}
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 600 {
			raw = raw[:600]
		}
		recs := make([]trace.Record, len(raw))
		for i, r := range raw {
			cl := classes[int(r)%len(classes)]
			rec := trace.Record{Class: cl, Dst: -1, Src1: -1, Src2: -1,
				Seq: uint64(i), PC: 0x4000 + uint64(i%64)*4}
			switch {
			case cl.MemoryOp():
				rec.Addr = 0x100000 + uint64(r%512)*8
				if cl != isa.ClassStore {
					rec.Dst = int8(1 + r%30)
				}
			case cl == isa.ClassBranch:
				rec.Taken = r&1 == 0
			default:
				if cl != isa.ClassJump && cl != isa.ClassTrap && cl != isa.ClassMembar {
					rec.Dst = int8(1 + r%30)
					rec.Src1 = int8(1 + (r>>5)%30)
				}
			}
			recs[i] = rec
		}
		h := mem.NewHierarchy(mem.DefaultConfig(), 1)
		c := NewCore(DefaultConfig(), 0, h, trace.NewSliceStream(recs))
		if err := c.Run(50_000_000); err != nil {
			return false
		}
		if c.Stats.Insts != uint64(len(recs)) {
			return false
		}
		// Throughput can never exceed the machine width.
		return c.Stats.Cycles*uint64(c.Cfg.Width) >= c.Stats.Insts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: commit order equals program order for arbitrary mixes.
func TestQuickInOrderCommit(t *testing.T) {
	p, _ := trace.ByName("gcc")
	h := mem.NewHierarchy(mem.DefaultConfig(), 1)
	c := NewCore(DefaultConfig(), 0, h, trace.NewLimit(trace.NewGenerator(p), 20_000))
	var last int64 = -1
	c.OnCommit = func(rec trace.Record, cycle uint64) {
		if int64(rec.Seq) != last+1 {
			t.Fatalf("out-of-order commit: %d after %d", rec.Seq, last)
		}
		last = int64(rec.Seq)
	}
	if err := c.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
}

// TestIPCZeroCycles pins the divide-by-zero guard: a core (or bare
// Stats) that ran zero cycles reports IPC 0, never NaN.
func TestIPCZeroCycles(t *testing.T) {
	var s Stats
	if got := s.IPC(); got != 0 {
		t.Errorf("zero-cycle Stats.IPC() = %v, want 0", got)
	}
	c := newTestCore(repeat(trace.Record{Class: isa.ClassIntALU, Dst: 1}, 16))
	if got := c.Stats.IPC(); got != 0 {
		t.Errorf("unstepped core IPC = %v, want 0", got)
	}
}

// TestStatsEventsTopdownPartition pins, on a hand-stepped core, that
// the exported event map keeps both accounting identities: per-cause
// commit-slot counters partition cycles, and the four topdown slot
// buckets partition Width × Cycles exactly.
func TestStatsEventsTopdownPartition(t *testing.T) {
	c := newTestCore(repeat(trace.Record{Class: isa.ClassIntALU, Dst: 1, Src1: 1}, 4_000))
	mustRun(t, c)
	st := c.Stats
	if sum := st.CommitCycles + st.StallEmpty + st.StallExec + st.StallGate + st.FrozenCycles; sum != st.Cycles {
		t.Fatalf("commit-slot causes sum to %d, want Cycles %d", sum, st.Cycles)
	}
	ev := c.Events()
	slots := ev["TOPDOWN.SLOTS"]
	if want := uint64(c.Cfg.Width) * st.Cycles; slots != want {
		t.Fatalf("TOPDOWN.SLOTS = %d, want Width*Cycles = %d", slots, want)
	}
	sum := ev["TOPDOWN.RETIRING_SLOTS"] + ev["TOPDOWN.FRONTEND_SLOTS"] +
		ev["TOPDOWN.BACKEND_SLOTS"] + ev["TOPDOWN.BAD_GATE_SLOTS"]
	if sum != slots {
		t.Fatalf("topdown buckets sum to %d, want %d", sum, slots)
	}
	if ev["INST.RETIRED"] != st.Retired || st.Retired == 0 {
		t.Fatalf("INST.RETIRED = %d, Stats.Retired = %d", ev["INST.RETIRED"], st.Retired)
	}
}

// TestRetiredSurvivesRestart pins the counter split Restart depends
// on: Restart adjusts the architectural Insts counter to the resumed
// position but must never touch Retired, which feeds the topdown
// retiring bucket and would otherwise exceed the slot capacity.
func TestRetiredSurvivesRestart(t *testing.T) {
	c := newTestCore(repeat(trace.Record{Class: isa.ClassIntALU, Dst: 1}, 2_000))
	for c.Stats.Insts < 500 && !c.Done() {
		c.Step()
	}
	retired := c.Stats.Retired
	if retired == 0 {
		t.Fatal("core committed nothing in 500-inst prefix")
	}
	c.Restart(c.Position() + 300) // jump forward: Insts is adjusted up
	if c.Stats.Insts <= retired {
		t.Fatalf("Restart did not adjust Insts (insts=%d retired=%d)", c.Stats.Insts, retired)
	}
	if c.Stats.Retired != retired {
		t.Fatalf("Restart changed Retired: %d -> %d", retired, c.Stats.Retired)
	}
}
