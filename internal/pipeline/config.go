// Package pipeline implements the cycle-stepped out-of-order core timing
// model of Table I: 4-wide fetch/dispatch/issue/commit, a reorder buffer,
// issue queue and load/store queue, per-class functional units, a bimodal
// branch predictor, and trace-driven wrong-path modeling (mispredicted
// branches insert frontend bubbles until resolution).
//
// The redundancy schemes (internal/core for UnSync, internal/reunion for
// Reunion) attach to a core through three hooks:
//
//   - CommitGate is consulted before each in-order commit and may block
//     it (fingerprint not verified, CHECK-stage buffer full,
//     Communication Buffer full);
//   - OnCommit observes every architectural commit (to build
//     fingerprints and Communication Buffer entries);
//   - DrainEmpty gates memory-barrier commit on the scheme's store path
//     being empty.
package pipeline

import "fmt"

// Config describes one core. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	Width   int // fetch/dispatch/issue/commit width
	ROBSize int
	IQSize  int // issue-queue capacity (Table I: 64)
	LSQSize int

	FetchQueue int // fetch-buffer depth in instructions

	IntALUs  int // also executes branches, jumps, traps, barriers
	IntMuls  int // integer multiply/divide units
	FPUs     int
	MemPorts int

	// BranchPenalty is the frontend redirect penalty in cycles after a
	// mispredicted branch resolves.
	BranchPenalty uint64
	// TrapFlush is the frontend refill penalty after a trap commits.
	TrapFlush uint64

	// PredictorEntries is the size of the bimodal predictor table.
	PredictorEntries int

	// BypassDelay is added to every produced value's availability time
	// before a consumer may issue. Zero models full bypassing (the
	// normal configuration); the Reunion no-forwarding ablation
	// (§IV-A4) sets it to the fingerprint comparison latency, since
	// without the CSB forwarding datapaths a result is unreadable until
	// verification releases it.
	BypassDelay uint64
}

// DefaultConfig returns the Table I core: 4-wide out-of-order with a
// 64-entry issue queue.
func DefaultConfig() Config {
	return Config{
		Width:            4,
		ROBSize:          128,
		IQSize:           64,
		LSQSize:          64,
		FetchQueue:       16,
		IntALUs:          4,
		IntMuls:          1,
		FPUs:             2,
		MemPorts:         2,
		BranchPenalty:    6,
		TrapFlush:        8,
		PredictorEntries: 4096,
	}
}

// Validate checks configuration invariants.
func (c *Config) Validate() error {
	switch {
	case c.Width < 1:
		return fmt.Errorf("pipeline: width %d < 1", c.Width)
	case c.ROBSize < c.Width:
		return fmt.Errorf("pipeline: ROB %d smaller than width", c.ROBSize)
	case c.IQSize < 1 || c.LSQSize < 1:
		return fmt.Errorf("pipeline: IQ/LSQ must be positive")
	case c.FetchQueue < c.Width:
		return fmt.Errorf("pipeline: fetch queue %d smaller than width", c.FetchQueue)
	case c.IntALUs < 1 || c.IntMuls < 1 || c.FPUs < 1 || c.MemPorts < 1:
		return fmt.Errorf("pipeline: every FU pool needs at least one unit")
	case c.PredictorEntries < 2 || c.PredictorEntries&(c.PredictorEntries-1) != 0:
		return fmt.Errorf("pipeline: predictor entries %d not a power of two", c.PredictorEntries)
	}
	return nil
}
