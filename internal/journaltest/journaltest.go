// Package journaltest generates tail-corruption scenarios for the
// repository's append-only JSONL journals (the campaign checkpoint,
// the serve jobs journal, the fabric coordinator journal). All three
// share one durability design — every record is a newline-terminated
// line, flushed as written — so all three must tolerate exactly one
// corruption shape: a final unterminated line, the fragment a SIGKILL
// mid-append leaves behind. This package builds those shapes (and the
// adjacent ones that are NOT torn tails) so each journal's loader can
// table-test and fuzz its own tolerance policy against a common
// corpus instead of hand-rolling corruption cases.
package journaltest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Case is one corrupted-journal scenario built from intact lines.
type Case struct {
	// Name identifies the scenario in test output.
	Name string
	// Data is the journal file content.
	Data []byte
	// Intact is how many of the input lines survive whole (newline-
	// terminated) in Data. A loader must recover exactly the records
	// of these lines.
	Intact int
	// TornTail reports whether the corruption is confined to the
	// file's final line — the shape every loader must tolerate. (A
	// newline-TERMINATED garbage final line counts: scanner-based
	// loaders see it exactly as they see a torn fragment, and the
	// append paths never produce one anyway.) Cases with
	// TornTail=false hold corruption strictly BEFORE valid lines;
	// loaders differ there by design: the campaign checkpoint skips
	// foreign garbage silently because journals are shared across
	// specs, while the serve and fabric journals fail loudly because
	// mid-file corruption can only mean the file was damaged.
	TornTail bool
}

// junkTails are newline-free fragments appended as torn tails: partial
// JSON at several cut points, binary junk, and a lone brace.
var junkTails = [][]byte{
	[]byte(`{`),
	[]byte(`{"key":"abc","i":4`),
	[]byte(`{"key":"abc","i":4,"space":"int-reg","outcome":`),
	{0x00, 0xff, 0x1b, 0x80, 0x7f, 0x00},
	[]byte(`not json at all`),
}

// TailCases builds the corruption corpus from intact journal lines
// (each given WITHOUT its trailing newline). The clean journal is
// included as the baseline case.
func TailCases(lines [][]byte) []Case {
	journal := func(n int) []byte {
		var buf bytes.Buffer
		for _, line := range lines[:n] {
			buf.Write(line)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}
	n := len(lines)
	cases := []Case{
		{Name: "clean", Data: journal(n), Intact: n, TornTail: true},
		{Name: "empty-trailing-lines", Data: append(journal(n), '\n', '\n'), Intact: n, TornTail: true},
	}
	for i, junk := range junkTails {
		cases = append(cases, Case{
			Name:     fmt.Sprintf("junk-tail-%d", i),
			Data:     append(journal(n), junk...),
			Intact:   n,
			TornTail: true,
		})
	}
	if n > 0 {
		last := lines[n-1]
		for _, cut := range []int{1, len(last) / 2, len(last) - 1} {
			if cut <= 0 || cut >= len(last) {
				continue
			}
			cases = append(cases, Case{
				Name:     fmt.Sprintf("last-line-truncated-at-%d", cut),
				Data:     append(journal(n-1), last[:cut]...),
				Intact:   n - 1,
				TornTail: true,
			})
		}
	}
	cases = append(cases,
		// A terminated garbage FINAL line is indistinguishable from a
		// torn tail to a line scanner, so it rides the tolerant path.
		Case{
			Name:     "garbage-line-terminated",
			Data:     append(journal(n), []byte("!!corrupt!!\n")...),
			Intact:   n,
			TornTail: true,
		},
		// Mid-file garbage followed by valid lines cannot come from a
		// kill — the newline lands only after a complete write — so
		// strict loaders must fail it loudly.
		Case{
			Name:     "garbage-line-mid-file",
			Data:     append([]byte("!!corrupt!!\n"), journal(n)...),
			Intact:   n,
			TornTail: false,
		},
	)
	return cases
}

// Check runs the corruption corpus against a journal loader. lines are
// the intact journal lines (without trailing newlines); load reads the
// journal at path and returns how many records it recovered. Every
// loader must recover exactly Intact records from TornTail cases with
// no error. For mid-file corruption, strict loaders must return an
// error while lenient ones must still recover exactly the intact
// records.
func Check(t *testing.T, lines [][]byte, strict bool, load func(path string) (int, error)) {
	t.Helper()
	for _, tc := range TailCases(lines) {
		t.Run(tc.Name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.jsonl")
			if err := os.WriteFile(path, tc.Data, 0o644); err != nil {
				t.Fatal(err)
			}
			n, err := load(path)
			if !tc.TornTail && strict {
				if err == nil {
					t.Fatalf("strict loader accepted mid-file corruption (recovered %d records)", n)
				}
				return
			}
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if n != tc.Intact {
				t.Fatalf("recovered %d records, want %d", n, tc.Intact)
			}
		})
	}
}

// TornTail derives a pure torn-tail fragment from arbitrary fuzz
// bytes: newlines are stripped so the fragment can only ever be the
// file's final unterminated line. Appending the result to any valid
// journal must never change what its loader recovers.
func TornTail(data []byte) []byte {
	return bytes.ReplaceAll(data, []byte("\n"), nil)
}

// Seeds returns the junk fragments as fuzz-corpus seed inputs.
func Seeds() [][]byte {
	out := make([][]byte, len(junkTails))
	for i, j := range junkTails {
		out[i] = append([]byte(nil), j...)
	}
	return out
}
