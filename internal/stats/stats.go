// Package stats provides the small statistical primitives the simulator
// uses for per-run accounting: running means/variances, bucketed
// histograms, and occupancy trackers.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Running accumulates a stream of float64 samples using Welford's online
// algorithm. The zero value is ready to use.
type Running struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples.
func (r *Running) N() uint64 { return r.n }

// Mean returns the sample mean (0 if empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the population variance (0 if fewer than 2 samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min and Max return the extremes (0 if empty).
func (r *Running) Min() float64 { return r.min }
func (r *Running) Max() float64 { return r.max }

// Merge folds another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// Histogram is a linear-bucket histogram over [0, buckets*width), with an
// overflow bucket. It is used for occupancy distributions (ROB, CB, CSB).
type Histogram struct {
	width    float64
	counts   []uint64
	overflow uint64
	total    uint64
}

// NewHistogram creates a histogram with the given bucket count and width.
func NewHistogram(buckets int, width float64) *Histogram {
	if buckets < 1 || width <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{width: width, counts: make([]uint64, buckets)}
}

// Add records a sample. NaN and ±Inf samples land in the overflow
// bucket: converting a non-finite quotient to int is
// implementation-defined in Go and could otherwise index out of range.
func (h *Histogram) Add(x float64) {
	h.total++
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.overflow++
		return
	}
	if x < 0 {
		x = 0
	}
	i := int(x / h.width)
	// i < 0 guards finite x so large that the int conversion wrapped.
	if i < 0 || i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the count in bucket i; i == len buckets means overflow.
func (h *Histogram) Count(i int) uint64 {
	if i == len(h.counts) {
		return h.overflow
	}
	return h.counts[i]
}

// Buckets returns the number of regular buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Quantile returns an upper bound for the q-quantile using bucket
// upper edges; +Inf if the quantile falls in the overflow bucket. q is
// clamped into [0, 1] (NaN clamps to 0), so a caller asking for a
// nonsense quantile gets the nearest defined one instead of garbage.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if !(q >= 0) { // also catches NaN
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return float64(i+1) * h.width
		}
	}
	return math.Inf(1)
}

// String renders a compact textual sparkline of the histogram.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty)"
	}
	glyphs := []rune(" .:-=+*#%@")
	var maxC uint64 = 1
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for _, c := range h.counts {
		idx := int(float64(c) / float64(maxC) * float64(len(glyphs)-1))
		b.WriteRune(glyphs[idx])
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, " +%d", h.overflow)
	}
	return b.String()
}

// Occupancy tracks the time-weighted occupancy of a finite resource
// (entries in a buffer) sampled once per cycle.
type Occupancy struct {
	sum    uint64
	cycles uint64
	peak   int
	cap    int
	fullCy uint64
}

// NewOccupancy creates a tracker for a resource with the given capacity.
func NewOccupancy(capacity int) *Occupancy { return &Occupancy{cap: capacity} }

// Sample records the occupancy for one cycle.
func (o *Occupancy) Sample(n int) {
	o.cycles++
	o.sum += uint64(n)
	if n > o.peak {
		o.peak = n
	}
	if o.cap > 0 && n >= o.cap {
		o.fullCy++
	}
}

// Mean returns the average occupancy per cycle.
func (o *Occupancy) Mean() float64 {
	if o.cycles == 0 {
		return 0
	}
	return float64(o.sum) / float64(o.cycles)
}

// Peak returns the maximum observed occupancy.
func (o *Occupancy) Peak() int { return o.peak }

// FullFrac returns the fraction of cycles the resource was full.
func (o *Occupancy) FullFrac() float64 {
	if o.cycles == 0 {
		return 0
	}
	return float64(o.fullCy) / float64(o.cycles)
}

// Cycles returns the number of samples taken.
func (o *Occupancy) Cycles() uint64 { return o.cycles }

// Ratio returns a/b, or 0 when b == 0; a convenience for rate reporting.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Pct returns 100*(a-b)/b — the percentage change of a relative to b —
// or 0 when b == 0.
func Pct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a - b) / b
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Wilson returns the Wilson score interval for a binomial proportion:
// k successes out of n trials at confidence multiplier z (1.96 for a
// 95% interval). Unlike the normal approximation it stays inside [0,1]
// and behaves sensibly at k=0 and k=n — exactly the regime of SDC-rate
// estimation, where observed rates are often 0 over thousands of
// trials. n == 0 returns the vacuous interval [0, 1].
func Wilson(k, n uint64, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	if z <= 0 {
		z = 1.96
	}
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	margin := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
