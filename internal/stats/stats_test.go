package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{1, 2, 3, 4, 5} {
		r.Add(x)
	}
	if r.N() != 5 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-3) > 1e-12 {
		t.Errorf("Mean = %g", r.Mean())
	}
	if math.Abs(r.Var()-2) > 1e-12 {
		t.Errorf("Var = %g, want 2", r.Var())
	}
	if r.Min() != 1 || r.Max() != 5 {
		t.Errorf("Min/Max = %g/%g", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Std() != 0 || r.N() != 0 {
		t.Error("empty Running should be all zeros")
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Add(7)
	if r.Var() != 0 || r.Mean() != 7 || r.Min() != 7 || r.Max() != 7 {
		t.Error("single-sample stats wrong")
	}
}

func TestRunningMerge(t *testing.T) {
	var a, b, all Running
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	for i, x := range xs {
		if i < 4 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Errorf("merge: mean %g vs %g, var %g vs %g", a.Mean(), all.Mean(), a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merge min/max wrong")
	}
}

func TestRunningMergeEmptySides(t *testing.T) {
	var a, b Running
	b.Add(2)
	a.Merge(b) // empty <- nonempty
	if a.N() != 1 || a.Mean() != 2 {
		t.Error("merge into empty failed")
	}
	var c Running
	a.Merge(c) // nonempty <- empty
	if a.N() != 1 {
		t.Error("merge of empty changed state")
	}
}

// Property: merging a randomly split stream equals accumulating it whole.
func TestQuickMerge(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		k := 0
		if len(xs) > 0 {
			k = int(split) % (len(xs) + 1)
		}
		var a, b, all Running
		for i, x := range xs {
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
			all.Add(x)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return math.Abs(a.Mean()-all.Mean())/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4, 10)
	for _, x := range []float64{0, 5, 15, 25, 35, 45, -1} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(0) != 3 { // 0, 5, -1(clamped)
		t.Errorf("bucket 0 = %d", h.Count(0))
	}
	if h.Count(1) != 1 || h.Count(2) != 1 || h.Count(3) != 1 {
		t.Error("mid buckets wrong")
	}
	if h.Count(4) != 1 { // overflow: 45
		t.Errorf("overflow = %d", h.Count(4))
	}
	if h.Buckets() != 4 {
		t.Errorf("Buckets = %d", h.Buckets())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 1)
	for i := 0; i < 100; i++ {
		h.Add(float64(i % 10))
	}
	if q := h.Quantile(0.5); q != 5 {
		t.Errorf("median = %g, want 5", q)
	}
	if q := h.Quantile(1.0); q != 10 {
		t.Errorf("q100 = %g, want 10", q)
	}
	h2 := NewHistogram(2, 1)
	h2.Add(100)
	if !math.IsInf(h2.Quantile(0.99), 1) {
		t.Error("overflow quantile should be +Inf")
	}
	var empty Histogram
	if (&empty).Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

// TestHistogramNonFinite proves NaN and ±Inf samples land in the
// overflow bucket instead of producing an implementation-defined index.
func TestHistogramNonFinite(t *testing.T) {
	h := NewHistogram(4, 10)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300} {
		h.Add(x)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(4) != 4 {
		t.Errorf("overflow = %d, want all 4 non-bucketable samples", h.Count(4))
	}
	for i := 0; i < 4; i++ {
		if h.Count(i) != 0 {
			t.Errorf("bucket %d = %d, want 0", i, h.Count(i))
		}
	}
}

// TestQuantileClamped proves out-of-range and NaN q values clamp to the
// nearest defined quantile instead of returning garbage.
func TestQuantileClamped(t *testing.T) {
	h := NewHistogram(10, 1)
	for i := 0; i < 100; i++ {
		h.Add(float64(i % 10))
	}
	if got, want := h.Quantile(-0.5), h.Quantile(0); got != want {
		t.Errorf("Quantile(-0.5) = %g, want Quantile(0) = %g", got, want)
	}
	if got, want := h.Quantile(2), h.Quantile(1); got != want {
		t.Errorf("Quantile(2) = %g, want Quantile(1) = %g", got, want)
	}
	if got, want := h.Quantile(math.NaN()), h.Quantile(0); got != want {
		t.Errorf("Quantile(NaN) = %g, want Quantile(0) = %g", got, want)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(3, 1)
	if h.String() != "(empty)" {
		t.Errorf("empty String = %q", h.String())
	}
	h.Add(0)
	h.Add(10)
	s := h.String()
	if s == "" || s == "(empty)" {
		t.Errorf("String = %q", s)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(0, 1) should panic")
		}
	}()
	NewHistogram(0, 1)
}

func TestOccupancy(t *testing.T) {
	o := NewOccupancy(4)
	for _, n := range []int{0, 2, 4, 4, 2} {
		o.Sample(n)
	}
	if o.Cycles() != 5 {
		t.Errorf("Cycles = %d", o.Cycles())
	}
	if math.Abs(o.Mean()-2.4) > 1e-12 {
		t.Errorf("Mean = %g", o.Mean())
	}
	if o.Peak() != 4 {
		t.Errorf("Peak = %d", o.Peak())
	}
	if math.Abs(o.FullFrac()-0.4) > 1e-12 {
		t.Errorf("FullFrac = %g", o.FullFrac())
	}
}

func TestOccupancyEmpty(t *testing.T) {
	o := NewOccupancy(4)
	if o.Mean() != 0 || o.FullFrac() != 0 {
		t.Error("empty occupancy should be zero")
	}
}

func TestRatioPct(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
	if Pct(110, 100) != 10 || Pct(90, 100) != -10 || Pct(5, 0) != 0 {
		t.Error("Pct wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean = %g", g)
	}
	if g := GeoMean([]float64{2, 8, 0, -1}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean with non-positive = %g", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestWilson(t *testing.T) {
	// Vacuous interval with no data.
	if lo, hi := Wilson(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("Wilson(0,0) = [%g,%g], want [0,1]", lo, hi)
	}
	// k=0 keeps a nonzero upper bound (the rule-of-three regime).
	lo, hi := Wilson(0, 100, 1.96)
	if lo != 0 {
		t.Errorf("Wilson(0,100) lo = %g, want 0", lo)
	}
	if hi <= 0 || hi > 0.06 {
		t.Errorf("Wilson(0,100) hi = %g, want ~0.037", hi)
	}
	// Symmetric case: p=0.5 with n=100 gives roughly ±0.097.
	lo, hi = Wilson(50, 100, 1.96)
	if math.Abs(lo-0.404) > 0.005 || math.Abs(hi-0.596) > 0.005 {
		t.Errorf("Wilson(50,100) = [%g,%g], want ~[0.404,0.596]", lo, hi)
	}
	// The interval narrows as n grows.
	lo2, hi2 := Wilson(500, 1000, 1.96)
	if hi2-lo2 >= hi-lo {
		t.Error("Wilson interval must narrow with more trials")
	}
	// k=n stays inside [0,1].
	if lo, hi := Wilson(100, 100, 1.96); hi > 1 || hi < 0.96 || lo < 0.9 {
		t.Errorf("Wilson(100,100) = [%g,%g], want roughly [0.963,1]", lo, hi)
	}
	// A non-positive z falls back to 1.96.
	lo3, hi3 := Wilson(50, 100, 0)
	if lo3 != lo || hi3 != hi {
		t.Error("Wilson z<=0 should default to 1.96")
	}
}
