package cmp

import (
	"testing"

	"github.com/cmlasu/unsync/internal/trace"
)

func smallRC() RunConfig {
	rc := DefaultRunConfig()
	rc.WarmupInsts = 20_000
	rc.MeasureInsts = 60_000
	return rc
}

func TestSchemeString(t *testing.T) {
	if Baseline.String() != "baseline" || UnSync.String() != "unsync" ||
		Reunion.String() != "reunion" || TMR.String() != "tmr" {
		t.Error("scheme names wrong")
	}
	if Scheme("custom").String() != "custom" {
		t.Error("unregistered scheme should still print")
	}
}

func TestRunAllSchemes(t *testing.T) {
	prof, _ := trace.ByName("gzip")
	rc := smallRC()
	for _, s := range []Scheme{Baseline, UnSync, Reunion, TMR} {
		res, err := Run(s, rc, prof)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		// Warmup can overshoot by up to the commit width.
		if res.Insts > rc.MeasureInsts || res.Insts < rc.MeasureInsts-8 {
			t.Errorf("%v: measured %d insts, want ~%d", s, res.Insts, rc.MeasureInsts)
		}
		if res.IPC <= 0 || res.IPC > 4 {
			t.Errorf("%v: IPC = %.3f", s, res.IPC)
		}
		if res.Benchmark != "gzip" || res.Scheme != s {
			t.Errorf("%v: result labels wrong: %+v", s, res)
		}
	}
	if _, err := Run(Scheme("nope"), rc, prof); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeSpecificStatsPresent(t *testing.T) {
	prof, _ := trace.ByName("bzip2")
	rc := smallRC()
	u, err := Run(UnSync, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	if u.UnSyncStats == nil || u.ReunionStats != nil {
		t.Error("UnSync result stats wiring wrong")
	}
	if u.UnSyncStats.Drained == 0 {
		t.Error("no CB drains recorded")
	}
	r, err := Run(Reunion, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReunionStats == nil || r.UnSyncStats != nil {
		t.Error("Reunion result stats wiring wrong")
	}
	if r.ReunionStats.Fingerprints == 0 {
		t.Error("no fingerprints recorded")
	}
	b, err := Run(Baseline, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	if b.UnSyncStats != nil || b.ReunionStats != nil || b.TMRStats != nil {
		t.Error("baseline must not carry scheme stats")
	}
	tr, err := Run(TMR, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TMRStats == nil || tr.UnSyncStats != nil || tr.ReunionStats != nil {
		t.Error("TMR result stats wiring wrong")
	}
	if tr.TMRStats.Drained == 0 {
		t.Error("no majority-voted drains recorded")
	}
}

// The paper's headline property (Fig 4): on serializing-heavy workloads
// Reunion pays a clearly larger overhead over baseline than UnSync.
func TestUnSyncBeatsReunionOnSerializingWorkload(t *testing.T) {
	prof, _ := trace.ByName("bzip2") // 2% serializing instructions
	rc := smallRC()
	base, err := Run(Baseline, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Run(UnSync, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Reunion, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	ovU := Overhead(base, u)
	ovR := Overhead(base, r)
	t.Logf("bzip2 overheads: unsync=%.1f%% reunion=%.1f%%", ovU, ovR)
	if ovU >= ovR {
		t.Errorf("UnSync overhead %.1f%% not below Reunion %.1f%%", ovU, ovR)
	}
}

func TestOverheadHelper(t *testing.T) {
	base := Result{Cycles: 1000, Insts: 1000}
	slow := Result{Cycles: 1200, Insts: 1000}
	if got := Overhead(base, slow); got < 19.999 || got > 20.001 {
		t.Errorf("Overhead = %g, want 20", got)
	}
	if Overhead(Result{}, slow) != 0 {
		t.Error("zero base should yield 0")
	}
}

func TestDeterministicResults(t *testing.T) {
	prof, _ := trace.ByName("sha")
	rc := smallRC()
	a, err := Run(UnSync, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(UnSync, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Insts != b.Insts {
		t.Errorf("nondeterministic: %d/%d vs %d/%d", a.Cycles, a.Insts, b.Cycles, b.Insts)
	}
}

func TestChip(t *testing.T) {
	rc := smallRC()
	mk := func(name string) StreamFactory {
		return func() trace.Stream {
			p, _ := trace.ByName(name)
			return trace.NewLimit(trace.NewGenerator(p), 20_000)
		}
	}
	// The Table I chip: 4 logical cores = 2 UnSync pairs.
	ch, err := NewChip(UnSync, rc, []StreamFactory{mk("sha"), mk("crc32")})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Pairs() != 2 || len(ch.Hier.Cores) != 4 {
		t.Fatalf("chip shape wrong: %d pairs, %d cores", ch.Pairs(), len(ch.Hier.Cores))
	}
	if err := ch.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ch.Pairs(); i++ {
		if ipc := ch.PairIPC(i); ipc <= 0 {
			t.Errorf("pair %d IPC = %g", i, ipc)
		}
	}
	// Reunion chip works too.
	ch2, err := NewChip(Reunion, rc, []StreamFactory{mk("sha")})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch2.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	// Error cases.
	if _, err := NewChip(Baseline, rc, []StreamFactory{mk("sha")}); err == nil {
		t.Error("baseline chip should be rejected")
	}
	if _, err := NewChip(UnSync, rc, nil); err == nil {
		t.Error("empty chip should be rejected")
	}
}

func TestMixedChip(t *testing.T) {
	rc := smallRC()
	mk := func(name string) StreamFactory {
		return func() trace.Stream {
			p, _ := trace.ByName(name)
			return trace.NewLimit(trace.NewGenerator(p), 15_000)
		}
	}
	// One protected pair + two unprotected solo cores: the mixed
	// reliability configuration of §I.
	ch, err := NewMixedChip(UnSync, rc, []StreamFactory{mk("bzip2")},
		[]StreamFactory{mk("sha"), mk("crc32")})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Hier.Cores) != 4 || ch.Pairs() != 1 || len(ch.Solo) != 2 {
		t.Fatalf("chip shape: %d cores, %d pairs, %d solo",
			len(ch.Hier.Cores), ch.Pairs(), len(ch.Solo))
	}
	if err := ch.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if ch.PairIPC(0) <= 0 {
		t.Error("pair IPC <= 0")
	}
	for i := range ch.Solo {
		if ch.SoloIPC(i) <= 0 {
			t.Errorf("solo %d IPC <= 0", i)
		}
	}
	// Solo-only chip is also legal.
	solo, err := NewMixedChip(UnSync, rc, nil, []StreamFactory{mk("qsort")})
	if err != nil {
		t.Fatal(err)
	}
	_ = solo
	// Empty chip is not.
	if _, err := NewMixedChip(UnSync, rc, nil, nil); err == nil {
		t.Error("empty mixed chip accepted")
	}
}
