package cmp

import (
	"context"
	"fmt"
	"sort"
	"sync"

	unsync "github.com/cmlasu/unsync/internal/core"
	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/reunion"
	"github.com/cmlasu/unsync/internal/tmr"
	"github.com/cmlasu/unsync/internal/trace"
)

// Machine is one runnable redundancy organization: a baseline core, an
// UnSync or Reunion pair, a TMR triple, or any future scheme. Drive is
// the only loop that advances a Machine through the paper's
// measurement discipline; implementations supply the per-cycle step
// and the bookkeeping hooks.
type Machine interface {
	// Step advances the machine by one cycle.
	Step()
	// Cycle returns the machine's cycle counter.
	Cycle() uint64
	// Done reports whether every replica finished and all scheme
	// buffers drained.
	Done() bool
	// ResetStats clears statistics after warmup.
	ResetStats()
	// Committed returns the committed-instruction clock: the MINIMUM
	// over all replicas. Warmup gating and fault-arrival sampling both
	// read this one clock (the engine's single warmup rule).
	Committed() uint64
	// Collect fills the measurement-window result (IPC, cycles,
	// instructions, core stats, scheme-specific stats).
	Collect(*Result)
}

// Injector is the fault-injection surface of a Machine. A scheme
// translates a strike into its own detection/recovery mechanism:
// UnSync schedules an EIH pair recovery, Reunion corrupts the
// in-flight fingerprint window, TMR schedules a masked single-core
// resynchronization. Machines without the interface (the unprotected
// baseline) reject injected runs.
type Injector interface {
	// Replicas returns how many cores a strike can hit.
	Replicas() int
	// InjectError models a strike on the given core at the given cycle.
	InjectError(cycle uint64, core int)
}

// FaultPlan configures the Poisson soft-error process of a run. The
// zero value injects nothing.
type FaultPlan struct {
	SER  fault.SER
	Seed uint64
}

// active reports whether the plan injects any errors.
func (fp FaultPlan) active() bool { return fp.SER.PerInst > 0 }

// Drive runs the canonical measurement discipline on m — THE one
// warmup/measure/inject loop of the repository:
//
//  1. warm up until the committed-instruction clock (min across
//     replicas) reaches rc.WarmupInsts;
//  2. reset statistics;
//  3. run to completion within rc.MaxCycles.
//
// Under an active FaultPlan, error arrivals are sampled per committed
// instruction on the same min-replica clock (continuing across the
// statistics reset) and delivered through the machine's Injector
// surface.
func Drive(m Machine, rc RunConfig, plan FaultPlan) error {
	return DriveContext(context.Background(), m, rc, plan)
}

// ctxQuantum is the cancellation check interval of DriveContext, in
// machine cycles. A cancelled context stops the engine within this many
// cycles; between checks the hot loop pays nothing for cancellation.
const ctxQuantum = 4096

// ctxErr returns the context's cancellation cause, or nil — a cheap
// non-blocking check for the engine's hot loop.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	default:
		return nil
	}
}

// DriveContext is Drive under a context: cancelling ctx abandons the
// run within one step quantum (ctxQuantum cycles) and returns the
// cancellation cause. Cancellation does not corrupt m — it simply stops
// advancing — but a cancelled run's statistics cover an arbitrary
// prefix of the window and must not be Collected as a measurement.
func DriveContext(ctx context.Context, m Machine, rc RunConfig, plan FaultPlan) error {
	var (
		inj        Injector
		arr        *fault.Arrivals
		nextErr    uint64
		warmupBase uint64
	)
	if plan.active() {
		var ok bool
		if inj, ok = m.(Injector); !ok {
			return fmt.Errorf("cmp: %T does not support fault injection", m)
		}
		arr = fault.NewArrivals(plan.SER, plan.Seed)
		nextErr = arr.Next()
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	sinceCheck := 0
	step := func() {
		m.Step()
		if arr == nil {
			return
		}
		for warmupBase+m.Committed() >= nextErr {
			inj.InjectError(m.Cycle(), arr.Pick(inj.Replicas()))
			nextErr += arr.Next()
		}
	}
	for m.Committed() < rc.WarmupInsts && !m.Done() {
		if m.Cycle() >= rc.MaxCycles {
			return pipeline.ErrCycleBudget
		}
		if sinceCheck++; sinceCheck >= ctxQuantum {
			sinceCheck = 0
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		step()
	}
	warmupBase = m.Committed()
	m.ResetStats()
	for !m.Done() {
		if m.Cycle() >= rc.MaxCycles {
			return pipeline.ErrCycleBudget
		}
		if sinceCheck++; sinceCheck >= ctxQuantum {
			sinceCheck = 0
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		step()
	}
	return nil
}

// Builder constructs a fresh Machine for one run of the profile under
// the configuration.
type Builder func(rc RunConfig, prof trace.Profile) (Machine, error)

var (
	registryMu sync.RWMutex
	registry   = map[Scheme]Builder{}
)

// RegisterScheme installs (or replaces) a scheme builder under the
// given name. The four built-in organizations register at init; tests
// and extensions may add more.
func RegisterScheme(name Scheme, b Builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = b
}

// Schemes returns the registered scheme names, sorted.
func Schemes() []Scheme {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Scheme, 0, len(registry))
	for name := range registry { //unsync:allow-maprange sorted below
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// builderFor looks up a scheme's builder.
func builderFor(s Scheme) (Builder, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := registry[s]
	return b, ok
}

// Run executes the named profile on the selected scheme, error-free.
func Run(s Scheme, rc RunConfig, prof trace.Profile) (Result, error) {
	return RunInjectedContext(context.Background(), s, rc, prof, FaultPlan{})
}

// RunContext is Run under a context: cancelling ctx abandons the run
// within one step quantum and returns the cancellation cause.
func RunContext(ctx context.Context, s Scheme, rc RunConfig, prof trace.Profile) (Result, error) {
	return RunInjectedContext(ctx, s, rc, prof, FaultPlan{})
}

// RunInjected executes the profile on the selected scheme under the
// fault plan: build the machine from the registry, Drive it through
// the measurement discipline, and collect the windowed result.
func RunInjected(s Scheme, rc RunConfig, prof trace.Profile, plan FaultPlan) (Result, error) {
	return RunInjectedContext(context.Background(), s, rc, prof, plan)
}

// RunInjectedContext is RunInjected under a context (see DriveContext
// for the cancellation contract).
func RunInjectedContext(ctx context.Context, s Scheme, rc RunConfig, prof trace.Profile, plan FaultPlan) (Result, error) {
	if err := validateRun(&rc, &prof); err != nil {
		return Result{}, err
	}
	b, ok := builderFor(s)
	if !ok {
		return Result{}, fmt.Errorf("cmp: unknown scheme %q (registered: %v)", s, Schemes())
	}
	m, err := b(rc, prof)
	if err != nil {
		return Result{}, fmt.Errorf("cmp: build %s machine: %w", s, err)
	}
	if err := DriveContext(ctx, m, rc, plan); err != nil {
		return Result{}, err
	}
	res := Result{Scheme: s, Benchmark: prof.Name}
	m.Collect(&res)
	return res, nil
}

// ---- event collection ----

// hierEvents exports the memory-side counters of one core slot (plus
// the shared L2) under the event taxonomy. Multi-replica machines
// report the first replica's private levels — replicas run the same
// stream, so the first core is representative, and it matches the
// Result.Core convention.
func hierEvents(h *mem.Hierarchy, core int) events.Counts {
	cs := h.Cores[core]
	return events.Counts{
		events.L1DMiss:        cs.L1D.Stats.Misses,
		events.L1DReplacement: cs.L1D.Stats.Fills,
		events.L1DMSHRStall:   cs.L1D.Stats.MSHRStalls,
		events.L1IMiss:        cs.L1I.Stats.Misses,
		events.L1IReplacement: cs.L1I.Stats.Fills,
		events.L2Miss:         h.L2.Stats.Misses,
		events.L2Replacement:  h.L2.Stats.Fills,
		events.DTLBMiss:       cs.DTLB.Misses,
		events.ITLBMiss:       cs.ITLB.Misses,
		events.PrefetchIssued: cs.Prefetches,
	}
}

// collectEvents assembles a Result's event map: the core's pipeline
// counters (topdown buckets included), the memory hierarchy's, and the
// scheme's own (nil for the baseline). Every registry scheme reports
// through this one helper so the taxonomy stays uniform.
func collectEvents(core *pipeline.Core, h *mem.Hierarchy, scheme events.Counts) events.Counts {
	ev := core.Events()
	ev.Merge(hierEvents(h, core.ID))
	ev.Merge(scheme)
	return ev
}

// ---- built-in machines ----

func init() {
	RegisterScheme(Baseline, buildBaseline)
	RegisterScheme(UnSync, buildUnSync)
	RegisterScheme(Reunion, buildReunion)
	RegisterScheme(TMR, buildTMR)
}

// baselineMachine wraps a single unprotected core. It implements
// Machine but not Injector: with no redundancy there is no recovery
// mechanism to exercise.
type baselineMachine struct{ *pipeline.Core }

func buildBaseline(rc RunConfig, prof trace.Profile) (Machine, error) {
	h := mem.NewHierarchy(baselineMemConfig(rc.Mem), 1)
	return baselineMachine{pipeline.NewCore(rc.Core, 0, h, rc.Stream(prof))}, nil
}

func (m baselineMachine) Committed() uint64 { return m.Core.Stats.Insts }

// ResetStats also resets the core's memory hierarchy so baseline event
// counts cover the measurement window only, mirroring what the
// redundant pairs and triple do in their own ResetStats.
func (m baselineMachine) ResetStats() {
	m.Core.ResetStats()
	m.Core.Hier.ResetStats()
}

func (m baselineMachine) Collect(r *Result) {
	r.IPC = m.Core.Stats.IPC()
	r.Cycles = m.Core.Stats.Cycles
	r.Insts = m.Core.Stats.Insts
	r.Core = m.Core.Stats
	r.Events = collectEvents(m.Core, m.Core.Hier, nil)
}

// unsyncMachine adapts an UnSync pair (Step/Cycle/Done/ResetStats/
// Committed/Replicas/InjectError come from the pair itself).
type unsyncMachine struct{ *unsync.Pair }

func buildUnSync(rc RunConfig, prof trace.Profile) (Machine, error) {
	p := unsync.NewPair(rc.Core, rc.Mem, rc.UnSync, rc.Stream(prof), rc.Stream(prof))
	return unsyncMachine{p}, nil
}

func (m unsyncMachine) Collect(r *Result) {
	st := m.Pair.Stats
	r.IPC = m.A.Stats.IPC()
	r.Cycles = m.A.Stats.Cycles
	r.Insts = m.A.Stats.Insts
	r.Core = m.A.Stats
	r.Events = collectEvents(m.A, m.Pair.Hier, m.Pair.Events())
	r.UnSyncStats = &st
}

// reunionMachine adapts a Reunion pair.
type reunionMachine struct{ *reunion.Pair }

func buildReunion(rc RunConfig, prof trace.Profile) (Machine, error) {
	p := reunion.NewPair(rc.Core, rc.Mem, rc.Reunion, rc.Stream(prof), rc.Stream(prof))
	return reunionMachine{p}, nil
}

func (m reunionMachine) Collect(r *Result) {
	st := m.Pair.Stats
	r.IPC = m.A.Stats.IPC()
	r.Cycles = m.A.Stats.Cycles
	r.Insts = m.A.Stats.Insts
	r.Core = m.A.Stats
	r.Events = collectEvents(m.A, m.Pair.Hier, m.Pair.Events())
	r.ReunionStats = &st
}

// tmrMachine adapts a TMR triple.
type tmrMachine struct{ *tmr.Triple }

func buildTMR(rc RunConfig, prof trace.Profile) (Machine, error) {
	var streams [3]trace.Stream
	for i := range streams {
		streams[i] = rc.Stream(prof)
	}
	return tmrMachine{tmr.NewTriple(rc.Core, rc.Mem, rc.TMR, streams)}, nil
}

func (m tmrMachine) Collect(r *Result) {
	st := m.Triple.Stats
	r.IPC = m.Triple.IPC() // quorum pace: median core over the window
	r.Cycles = m.Cores[0].Stats.Cycles
	r.Insts = m.Cores[0].Stats.Insts
	r.Core = m.Cores[0].Stats
	r.Events = collectEvents(m.Cores[0], m.Triple.Hier, m.Triple.Events())
	r.TMRStats = &st
}
