package cmp

import (
	"context"
	"errors"
	"reflect"
	"testing"

	unsync "github.com/cmlasu/unsync/internal/core"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/reunion"
	"github.com/cmlasu/unsync/internal/trace"
)

// The reference runners below are verbatim transcriptions of the
// scheme-specific run loops the Drive engine replaced. They exist only
// to pin engine equivalence: Drive must produce bit-identical Results.

func refRunBaseline(rc RunConfig, prof trace.Profile) (Result, error) {
	h := mem.NewHierarchy(baselineMemConfig(rc.Mem), 1)
	c := pipeline.NewCore(rc.Core, 0, h, rc.Stream(prof))
	for c.Stats.Insts < rc.WarmupInsts && !c.Done() {
		if c.Cycle() >= rc.MaxCycles {
			return Result{}, pipeline.ErrCycleBudget
		}
		c.Step()
	}
	c.ResetStats()
	h.ResetStats()
	if err := c.Run(rc.MaxCycles); err != nil {
		return Result{}, err
	}
	return Result{
		Scheme: Baseline, Benchmark: prof.Name,
		IPC: c.Stats.IPC(), Cycles: c.Stats.Cycles, Insts: c.Stats.Insts,
		Core: c.Stats, Events: collectEvents(c, h, nil),
	}, nil
}

func refMinInsts(a, b *pipeline.Core) uint64 {
	if a.Stats.Insts < b.Stats.Insts {
		return a.Stats.Insts
	}
	return b.Stats.Insts
}

func refRunUnSync(rc RunConfig, prof trace.Profile) (Result, error) {
	p := unsync.NewPair(rc.Core, rc.Mem, rc.UnSync, rc.Stream(prof), rc.Stream(prof))
	for refMinInsts(p.A, p.B) < rc.WarmupInsts && !p.Done() {
		if p.Cycle() >= rc.MaxCycles {
			return Result{}, pipeline.ErrCycleBudget
		}
		p.Step()
	}
	p.ResetStats()
	if err := p.Run(rc.MaxCycles); err != nil {
		return Result{}, err
	}
	st := p.Stats
	return Result{
		Scheme: UnSync, Benchmark: prof.Name,
		IPC: p.A.Stats.IPC(), Cycles: p.A.Stats.Cycles, Insts: p.A.Stats.Insts,
		Core: p.A.Stats, Events: collectEvents(p.A, p.Hier, p.Events()),
		UnSyncStats: &st,
	}, nil
}

func refRunReunion(rc RunConfig, prof trace.Profile) (Result, error) {
	p := reunion.NewPair(rc.Core, rc.Mem, rc.Reunion, rc.Stream(prof), rc.Stream(prof))
	for refMinInsts(p.A, p.B) < rc.WarmupInsts && !p.Done() {
		if p.Cycle() >= rc.MaxCycles {
			return Result{}, pipeline.ErrCycleBudget
		}
		p.Step()
	}
	p.ResetStats()
	if err := p.Run(rc.MaxCycles); err != nil {
		return Result{}, err
	}
	st := p.Stats
	return Result{
		Scheme: Reunion, Benchmark: prof.Name,
		IPC: p.A.Stats.IPC(), Cycles: p.A.Stats.Cycles, Insts: p.A.Stats.Insts,
		Core: p.A.Stats, Events: collectEvents(p.A, p.Hier, p.Events()),
		ReunionStats: &st,
	}, nil
}

// TestDriveMatchesReferenceRunners: for every scheme the engine
// replaced a hand-rolled loop for, the Drive result must be deeply
// equal to the reference loop's, across multiple workload profiles.
func TestDriveMatchesReferenceRunners(t *testing.T) {
	refs := map[Scheme]func(RunConfig, trace.Profile) (Result, error){
		Baseline: refRunBaseline,
		UnSync:   refRunUnSync,
		Reunion:  refRunReunion,
	}
	rc := smallRC()
	for _, bench := range []string{"gzip", "bzip2", "sha"} {
		prof, ok := trace.ByName(bench)
		if !ok {
			t.Fatalf("no %s profile", bench)
		}
		for s, ref := range refs { //unsync:allow-maprange order-independent comparisons
			want, err := ref(rc, prof)
			if err != nil {
				t.Fatalf("%s/%s reference: %v", s, bench, err)
			}
			got, err := Run(s, rc, prof)
			if err != nil {
				t.Fatalf("%s/%s engine: %v", s, bench, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: engine diverged from reference:\nref:    %+v\nengine: %+v",
					s, bench, want, got)
			}
		}
	}
}

// refInjected is the unified-warmup injected reference loop: the
// committed clock is min across replicas both for warmup gating and
// for Poisson arrival sampling.
func refInjected(p interface {
	Step()
	Cycle() uint64
	Done() bool
	ResetStats()
	Committed() uint64
	Replicas() int
	InjectError(cycle uint64, core int)
}, rc RunConfig, rate float64, seed uint64) error {
	arr := fault.NewArrivals(fault.SER{PerInst: rate}, seed)
	var warmupBase uint64
	nextErr := arr.Next()
	step := func() {
		p.Step()
		for warmupBase+p.Committed() >= nextErr {
			p.InjectError(p.Cycle(), arr.Pick(p.Replicas()))
			nextErr += arr.Next()
		}
	}
	for p.Committed() < rc.WarmupInsts && !p.Done() {
		if p.Cycle() >= rc.MaxCycles {
			return pipeline.ErrCycleBudget
		}
		step()
	}
	warmupBase = p.Committed()
	p.ResetStats()
	for !p.Done() {
		if p.Cycle() >= rc.MaxCycles {
			return pipeline.ErrCycleBudget
		}
		step()
	}
	return nil
}

// TestDriveInjectedMatchesReference pins the injected path: the same
// Poisson seed through RunInjected and through the reference loop must
// strike the same instructions and land on the same IPC.
func TestDriveInjectedMatchesReference(t *testing.T) {
	const rate, seed = 1e-3, 0xfeed
	rc := smallRC()
	prof, _ := trace.ByName("gzip")
	plan := FaultPlan{SER: fault.SER{PerInst: rate}, Seed: seed}

	t.Run("unsync", func(t *testing.T) {
		p := unsync.NewPair(rc.Core, rc.Mem, rc.UnSync, rc.Stream(prof), rc.Stream(prof))
		if err := refInjected(p, rc, rate, seed); err != nil {
			t.Fatal(err)
		}
		got, err := RunInjected(UnSync, rc, prof, plan)
		if err != nil {
			t.Fatal(err)
		}
		if got.IPC != p.A.Stats.IPC() || got.Cycles != p.A.Stats.Cycles || got.Insts != p.A.Stats.Insts {
			t.Errorf("engine %+v diverged from reference IPC %.6f cycles %d insts %d",
				got, p.A.Stats.IPC(), p.A.Stats.Cycles, p.A.Stats.Insts)
		}
		if got.UnSyncStats.Recoveries == 0 {
			t.Error("no recoveries at 1e-3 errors/inst — injection not reaching the pair")
		}
	})
	t.Run("reunion", func(t *testing.T) {
		p := reunion.NewPair(rc.Core, rc.Mem, rc.Reunion, rc.Stream(prof), rc.Stream(prof))
		if err := refInjected(p, rc, rate, seed); err != nil {
			t.Fatal(err)
		}
		got, err := RunInjected(Reunion, rc, prof, plan)
		if err != nil {
			t.Fatal(err)
		}
		if got.IPC != p.A.Stats.IPC() || got.Cycles != p.A.Stats.Cycles || got.Insts != p.A.Stats.Insts {
			t.Errorf("engine %+v diverged from reference IPC %.6f cycles %d insts %d",
				got, p.A.Stats.IPC(), p.A.Stats.Cycles, p.A.Stats.Insts)
		}
		if got.ReunionStats.Rollbacks == 0 {
			t.Error("no rollbacks at 1e-3 errors/inst — injection not reaching the pair")
		}
	})
}

// fakeMachine has two replicas committing at different paces; it
// records the committed counts at ResetStats time so the test can pin
// WHICH clock gated warmup.
type fakeMachine struct {
	cycle      uint64
	fast, slow uint64
	resetAt    []uint64 // [fast, slow] at ResetStats
	injected   []uint64 // cycles of InjectError calls
}

func (f *fakeMachine) Step() {
	f.cycle++
	f.fast += 2 // the leading replica runs ahead...
	f.slow++    // ...the trailing one sets the committed clock
}
func (f *fakeMachine) Cycle() uint64 { return f.cycle }
func (f *fakeMachine) Done() bool    { return f.slow >= 400 }
func (f *fakeMachine) ResetStats()   { f.resetAt = []uint64{f.fast, f.slow} }
func (f *fakeMachine) Committed() uint64 {
	if f.slow < f.fast {
		return f.slow
	}
	return f.fast
}
func (f *fakeMachine) Collect(*Result) {}
func (f *fakeMachine) Replicas() int   { return 2 }
func (f *fakeMachine) InjectError(cycle uint64, core int) {
	f.injected = append(f.injected, cycle)
}

// TestDriveWarmupGatesOnMinReplica pins the engine's single warmup
// rule: statistics reset only once the SLOWEST replica has committed
// WarmupInsts, not when the leader has.
func TestDriveWarmupGatesOnMinReplica(t *testing.T) {
	m := &fakeMachine{}
	rc := RunConfig{WarmupInsts: 100, MaxCycles: 1 << 20}
	if err := Drive(m, rc, FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if m.resetAt == nil {
		t.Fatal("ResetStats never called")
	}
	// If warmup gated on the fast replica, reset would land at
	// fast=100/slow=50; the min rule demands slow=100.
	if m.resetAt[1] != 100 {
		t.Errorf("reset at slow=%d, want 100 (min-replica warmup rule)", m.resetAt[1])
	}
	if m.resetAt[0] != 200 {
		t.Errorf("reset at fast=%d, want 200", m.resetAt[0])
	}
}

// TestDriveInjectionClockSpansReset pins that the Poisson arrival
// clock keeps counting across the statistics reset: with one expected
// error per 150 committed instructions and 400 total, strikes keep
// arriving in the measurement window.
func TestDriveInjectionClockSpansReset(t *testing.T) {
	m := &fakeMachine{}
	rc := RunConfig{WarmupInsts: 100, MaxCycles: 1 << 20}
	plan := FaultPlan{SER: fault.SER{PerInst: 1.0 / 150}, Seed: 7}
	if err := Drive(m, rc, plan); err != nil {
		t.Fatal(err)
	}
	if len(m.injected) == 0 {
		t.Fatal("no injections at 1/150 errors per instruction over 400 insts")
	}
	var post int
	resetCycle := uint64(100) // slow hits 100 at cycle 100
	for _, c := range m.injected {
		if c > resetCycle {
			post++
		}
	}
	if post == 0 {
		t.Error("no strikes after the stats reset — arrival clock restarted at warmup")
	}
}

// TestInjectionRequiresInjector: schemes without a recovery mechanism
// (the unprotected baseline) must reject injected runs loudly.
func TestInjectionRequiresInjector(t *testing.T) {
	prof, _ := trace.ByName("gzip")
	rc := smallRC()
	plan := FaultPlan{SER: fault.SER{PerInst: 1e-3}, Seed: 1}
	if _, err := RunInjected(Baseline, rc, prof, plan); err == nil {
		t.Error("baseline accepted an injected run")
	}
	// An inactive plan on the same scheme is fine.
	if _, err := RunInjected(Baseline, rc, prof, FaultPlan{}); err != nil {
		t.Errorf("error-free baseline run failed: %v", err)
	}
}

// TestRegisterScheme exercises the registry surface: a custom scheme
// becomes runnable by name and listed (sorted) alongside the built-ins.
func TestRegisterScheme(t *testing.T) {
	RegisterScheme("test-dmr", buildUnSync)
	res, err := Run("test-dmr", smallRC(), mustProfile(t, "sha"))
	if err != nil {
		t.Fatalf("custom scheme: %v", err)
	}
	if res.Scheme != "test-dmr" || res.UnSyncStats == nil {
		t.Errorf("custom scheme result wrong: %+v", res)
	}
	names := Schemes()
	found := false
	for i, n := range names {
		if i > 0 && names[i-1] >= n {
			t.Errorf("Schemes() not sorted: %v", names)
		}
		if n == "test-dmr" {
			found = true
		}
	}
	if !found {
		t.Errorf("custom scheme missing from %v", names)
	}
}

func mustProfile(t *testing.T, name string) trace.Profile {
	t.Helper()
	p, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("no %s profile", name)
	}
	return p
}

// TestRunValidates pins that bad configs surface as errors, not panics.
func TestRunValidates(t *testing.T) {
	prof := mustProfile(t, "gzip")
	rc := smallRC()
	rc.MeasureInsts = 0
	if _, err := Run(UnSync, rc, prof); err == nil {
		t.Error("zero MeasureInsts accepted")
	}
	rc = smallRC()
	rc.MaxCycles = 10 // absurdly small budget
	_, err := Run(UnSync, rc, prof)
	if !errors.Is(err, pipeline.ErrCycleBudget) {
		t.Errorf("want ErrCycleBudget, got %v", err)
	}
}

// cancellingMachine is a Machine stub that cancels its own context from
// inside Step after a fixed cycle count and never finishes: the only
// way DriveContext can return is through its in-loop cancellation
// check, which makes the quantum-bounded abandon latency testable
// without any goroutine races.
type cancellingMachine struct {
	cycles   uint64
	cancelAt uint64
	cancel   context.CancelCauseFunc
	cause    error
}

func (m *cancellingMachine) Step() {
	m.cycles++
	if m.cycles == m.cancelAt {
		m.cancel(m.cause)
	}
}
func (m *cancellingMachine) Cycle() uint64     { return m.cycles }
func (m *cancellingMachine) Done() bool        { return false }
func (m *cancellingMachine) ResetStats()       {}
func (m *cancellingMachine) Committed() uint64 { return m.cycles }
func (m *cancellingMachine) Collect(*Result)   {}

// TestDriveContextCancelMidRun pins the engine's cancellation
// contract: once the context is cancelled mid-run, DriveContext stops
// within one step quantum and returns the cancellation cause.
func TestDriveContextCancelMidRun(t *testing.T) {
	cause := errors.New("operator abort")
	ctx, cancel := context.WithCancelCause(context.Background())
	m := &cancellingMachine{cancelAt: 10_000, cancel: cancel, cause: cause}
	rc := RunConfig{MaxCycles: 1 << 30} // no warmup: straight into the measurement loop

	err := DriveContext(ctx, m, rc, FaultPlan{})
	if !errors.Is(err, cause) {
		t.Fatalf("DriveContext = %v, want the cancellation cause %v", err, cause)
	}
	if m.cycles < m.cancelAt {
		t.Fatalf("returned after %d cycles, before the cancel at %d", m.cycles, m.cancelAt)
	}
	if slack := m.cycles - m.cancelAt; slack > ctxQuantum {
		t.Errorf("ran %d cycles past the cancel, want at most one quantum (%d)", slack, ctxQuantum)
	}
}

// TestRunContextPreCancelled: an already-cancelled context aborts the
// run before any machine is stepped, returning the cause.
func TestRunContextPreCancelled(t *testing.T) {
	cause := errors.New("never started")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	prof, _ := trace.ByName("gzip")
	if _, err := RunContext(ctx, UnSync, smallRC(), prof); !errors.Is(err, cause) {
		t.Fatalf("RunContext on cancelled ctx = %v, want %v", err, cause)
	}
	plan := FaultPlan{SER: fault.SER{PerInst: 1e-3}, Seed: 1}
	if _, err := RunInjectedContext(ctx, UnSync, smallRC(), prof, plan); !errors.Is(err, cause) {
		t.Fatalf("RunInjectedContext on cancelled ctx = %v, want %v", err, cause)
	}
}
