package cmp

import (
	"testing"

	"github.com/cmlasu/unsync/internal/asm"
	unsync "github.com/cmlasu/unsync/internal/core"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/reunion"
	"github.com/cmlasu/unsync/internal/trace"
)

// The integration path the examples rely on: assemble a real program,
// capture its commit stream with the functional emulator, and replay it
// through the timing model on all three architectures.
const integrationProgram = `
	; matrix-ish workload: fill, then row sums with a serializing
	; checkpoint every row (fence) and an atomic counter update.
	la r10, data
	li r1, 0
	li r2, 256
fill:
	mul r3, r1, r1
	sw r3, 0(r10)
	addi r10, r10, 4
	addi r1, r1, 1
	blt r1, r2, fill

	la r10, data
	la r11, sums
	li r1, 0          ; row
	li r2, 16         ; rows
rows:
	li r4, 0          ; acc
	li r5, 0          ; col
cols:
	lw r6, 0(r10)
	add r4, r4, r6
	addi r10, r10, 4
	addi r5, r5, 1
	slti r7, r5, 16
	bne r7, r0, cols
	sw r4, 0(r11)
	addi r11, r11, 8
	fence
	la r12, counter
	li r13, 1
	amoadd r14, r13, (r12)
	addi r1, r1, 1
	blt r1, r2, rows

	la r12, counter
	lw r4, 0(r12)
	li r2, 1
	syscall
	halt
.data
data:    .space 1024
sums:    .space 128
counter: .word32 0
`

func captureProgram(t *testing.T) []trace.Record {
	t.Helper()
	prog := asm.MustAssemble(integrationProgram)
	m := emu.New(prog)
	recs, err := trace.Capture(m, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatal("program did not halt")
	}
	if len(m.Output) != 1 || m.Output[0] != 16 {
		t.Fatalf("program output = %v, want [16]", m.Output)
	}
	return recs
}

func TestRealProgramOnAllArchitectures(t *testing.T) {
	recs := captureProgram(t)
	n := uint64(len(recs))

	clone := func() *trace.SliceStream {
		c := make([]trace.Record, len(recs))
		copy(c, recs)
		return trace.NewSliceStream(c)
	}

	// Baseline single core.
	hb := mem.NewHierarchy(mem.DefaultConfig(), 1)
	base := pipeline.NewCore(pipeline.DefaultConfig(), 0, hb, clone())
	if err := base.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if base.Stats.Insts != n {
		t.Fatalf("baseline committed %d of %d", base.Stats.Insts, n)
	}

	// UnSync pair.
	up := unsync.NewPair(pipeline.DefaultConfig(), mem.DefaultConfig(), unsync.DefaultConfig(),
		clone(), clone())
	if err := up.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if up.A.Stats.Insts != n || up.B.Stats.Insts != n {
		t.Fatal("UnSync pair lost instructions")
	}
	if up.Stats.Divergences != 0 {
		t.Errorf("divergences = %d", up.Stats.Divergences)
	}
	// Every store must have drained exactly once.
	var stores uint64
	for _, r := range recs {
		if r.IsStore() {
			stores++
		}
	}
	if up.Stats.Drained != stores {
		t.Errorf("drained %d, stores %d", up.Stats.Drained, stores)
	}

	// Reunion pair.
	rp := reunion.NewPair(pipeline.DefaultConfig(), mem.DefaultConfig(), reunion.DefaultConfig(),
		clone(), clone())
	if err := rp.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if rp.A.Stats.Insts != n {
		t.Fatal("Reunion pair lost instructions")
	}
	if rp.Stats.Mismatches != 0 {
		t.Errorf("mismatches = %d on identical streams", rp.Stats.Mismatches)
	}

	// The paper's ordering: UnSync clearly faster than Reunion, which
	// pays for the fences/atomics in this program (32 of them). At this
	// tiny scale cold-start effects dominate the baseline/UnSync gap
	// (different L1 write policies warm differently), so only sanity-
	// bound that pairing costs stay small.
	if !(up.A.Stats.Cycles < rp.A.Stats.Cycles) {
		t.Errorf("UnSync (%d cycles) not faster than Reunion (%d)",
			up.A.Stats.Cycles, rp.A.Stats.Cycles)
	}
	if up.A.Stats.Cycles > 2*base.Stats.Cycles {
		t.Errorf("UnSync (%d cycles) far above baseline (%d)",
			up.A.Stats.Cycles, base.Stats.Cycles)
	}
}

func TestRealProgramRecoveryMidRun(t *testing.T) {
	recs := captureProgram(t)
	clone := func() *trace.SliceStream {
		c := make([]trace.Record, len(recs))
		copy(c, recs)
		return trace.NewSliceStream(c)
	}
	p := unsync.NewPair(pipeline.DefaultConfig(), mem.DefaultConfig(), unsync.DefaultConfig(),
		clone(), clone())
	p.ScheduleRecovery(300, 0)
	p.ScheduleRecovery(900, 1)
	if err := p.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Stats.Recoveries != 2 {
		t.Fatalf("recoveries = %d", p.Stats.Recoveries)
	}
	// Always-forward execution: the full program still commits.
	if p.A.Stats.Insts != uint64(len(recs)) {
		t.Error("recovery lost instructions")
	}
}
