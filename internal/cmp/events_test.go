package cmp

import (
	"math"
	"testing"

	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/trace"
)

// kernelRC mirrors benchkit's kernel operating point (warmup 2k,
// measure 20k) so the identity is pinned on the same windows the
// BENCH.json kernels run.
func eventsRC() RunConfig {
	rc := DefaultRunConfig()
	rc.WarmupInsts = 2_000
	rc.MeasureInsts = 20_000
	return rc
}

// checkAccounting asserts the two invariants the topdown report
// depends on, for one Result:
//
//  1. the per-cause commit-slot counters partition the window's cycles:
//     CommitCycles + StallEmpty + StallExec + StallGate + FrozenCycles == Cycles;
//  2. the derived slot buckets partition the slot capacity exactly, so
//     the topdown fractions sum to 1 (±1e-9).
func checkAccounting(t *testing.T, label string, res Result) {
	t.Helper()
	st := res.Core
	sum := st.CommitCycles + st.StallEmpty + st.StallExec + st.StallGate + st.FrozenCycles
	if sum != st.Cycles {
		t.Errorf("%s: stall accounting broken: commit %d + empty %d + exec %d + gate %d + frozen %d = %d, want Cycles %d",
			label, st.CommitCycles, st.StallEmpty, st.StallExec, st.StallGate, st.FrozenCycles, sum, st.Cycles)
	}

	ev := res.Events
	if len(ev) == 0 {
		t.Fatalf("%s: Result.Events empty", label)
	}
	slotSum := ev[events.TopdownRetiringSlots] + ev[events.TopdownFrontendSlots] +
		ev[events.TopdownBackendSlots] + ev[events.TopdownBadGateSlots]
	if slotSum != ev[events.TopdownSlots] {
		t.Errorf("%s: slot buckets sum to %d, want TOPDOWN.SLOTS %d", label, slotSum, ev[events.TopdownSlots])
	}
	td, ok := events.TopdownOf(ev)
	if !ok {
		t.Fatalf("%s: TopdownOf rejected a measured window", label)
	}
	if fsum := td.Retiring + td.Frontend + td.Backend + td.BadGate; math.Abs(fsum-1.0) > 1e-9 {
		t.Errorf("%s: topdown fractions sum to %.12f, want 1.0 (±1e-9)", label, fsum)
	}

	// Every reported event must be registered, and the headline
	// counters must agree with the Result's own fields.
	for _, name := range ev.Names() {
		if _, ok := events.Lookup(name); !ok {
			t.Errorf("%s: unregistered event %q in Result.Events", label, name)
		}
	}
	if ev[events.Cycles] != res.Cycles {
		t.Errorf("%s: CYCLES event %d != Result.Cycles %d", label, ev[events.Cycles], res.Cycles)
	}
}

// TestStallAccountingIdentity pins, for every registered built-in
// scheme on the benchkit kernel workloads, that per-cause stall
// counters partition cycles and the topdown buckets partition slots.
// This is the invariant that makes the -events report trustworthy: a
// stage that stalls without charging a cause breaks it.
func TestStallAccountingIdentity(t *testing.T) {
	rc := eventsRC()
	for _, bench := range []string{"gzip", "bzip2"} {
		prof, ok := trace.ByName(bench)
		if !ok {
			t.Fatalf("no %s profile", bench)
		}
		for _, s := range []Scheme{Baseline, UnSync, Reunion, TMR} {
			res, err := Run(s, rc, prof)
			if err != nil {
				t.Fatalf("%s/%s: %v", s, bench, err)
			}
			checkAccounting(t, string(s)+"/"+bench, res)
		}
	}
}

// TestStallAccountingIdentityUnderInjection stresses the identity
// across the recovery path: UnSync recoveries freeze both cores and
// Restart adjusts the architectural instruction counter, which is
// exactly where a naive retiring-slots computation would underflow.
func TestStallAccountingIdentityUnderInjection(t *testing.T) {
	rc := eventsRC()
	prof, _ := trace.ByName("gzip")
	plan := FaultPlan{SER: fault.SER{PerInst: 1e-3}, Seed: 0xbeef}
	for _, s := range []Scheme{UnSync, Reunion, TMR} {
		res, err := RunInjected(s, rc, prof, plan)
		if err != nil {
			t.Fatalf("%s injected: %v", s, err)
		}
		checkAccounting(t, string(s)+"/injected", res)
		if res.Core.FrozenCycles == 0 && s != TMR {
			t.Errorf("%s injected: no frozen cycles at 1e-3 errors/inst — recovery path not exercised", s)
		}
	}
}

// TestSchemeEventsPresent pins that each scheme's own counters reach
// Result.Events through the shared collection path, and that the
// memory-side events are populated.
func TestSchemeEventsPresent(t *testing.T) {
	rc := eventsRC()
	prof, _ := trace.ByName("gzip")

	base, err := Run(Baseline, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{events.L1DReplacement, events.L2Miss, events.InstRetired} {
		if _, ok := base.Events[name]; !ok {
			t.Errorf("baseline missing %s", name)
		}
	}

	us, err := Run(UnSync, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	if us.Events[events.CBDrained] == 0 {
		t.Error("unsync: CB.DRAINED is zero over a 20k-inst window")
	}
	if us.Events[events.CBDrained] != us.UnSyncStats.Drained {
		t.Errorf("unsync: CB.DRAINED %d != PairStats.Drained %d",
			us.Events[events.CBDrained], us.UnSyncStats.Drained)
	}

	re, err := Run(Reunion, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	if re.Events[events.FPClosed] == 0 {
		t.Error("reunion: FP.CLOSED is zero over a 20k-inst window")
	}

	tm, err := Run(TMR, rc, prof)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Events[events.CBDrained] == 0 {
		t.Error("tmr: CB.DRAINED is zero over a 20k-inst window")
	}
}

// TestZeroCycleIPCGuards pins the divide-by-zero audit: every IPC
// surface reports 0 — never NaN — for a machine that ran zero cycles,
// so downstream Events/topdown ratios cannot be poisoned.
func TestZeroCycleIPCGuards(t *testing.T) {
	rc := smallRC()
	prof, _ := trace.ByName("gzip")

	w := func() trace.Stream { return rc.Stream(prof) }
	ch, err := NewMixedChip(UnSync, rc, []StreamFactory{w}, []StreamFactory{w})
	if err != nil {
		t.Fatal(err)
	}
	// Never stepped: zero cycles everywhere.
	if got := ch.PairIPC(0); got != 0 || math.IsNaN(got) {
		t.Errorf("PairIPC on an unstepped chip = %v, want 0", got)
	}
	if got := ch.SoloIPC(0); got != 0 || math.IsNaN(got) {
		t.Errorf("SoloIPC on an unstepped chip = %v, want 0", got)
	}
}
