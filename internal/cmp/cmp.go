// Package cmp assembles full chip configurations and runs workloads on
// the redundancy organizations the paper compares and extends:
//
//   - Baseline: an unprotected CMP core (write-back L1, no redundancy);
//   - UnSync: redundant core-pairs with Communication Buffers
//     (internal/core);
//   - Reunion: redundant core-pairs with fingerprint comparison
//     (internal/reunion);
//   - TMR: the §VIII triple-modular-redundant extension with majority
//     voting (internal/tmr).
//
// The measurement discipline every experiment uses — a warmup phase
// (caches and predictors settle), a statistics reset, and a
// fixed-length measurement window over an identical instruction
// stream, optionally under a Poisson soft-error process — lives in ONE
// place: the Drive engine over the Machine interface (engine.go).
// Schemes are registered by name (RegisterScheme), so adding an
// organization is O(1): implement Machine, register a builder, and
// every experiment, sweep and tool can run it.
package cmp

import (
	"fmt"

	unsync "github.com/cmlasu/unsync/internal/core"
	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/reunion"
	"github.com/cmlasu/unsync/internal/tmr"
	"github.com/cmlasu/unsync/internal/trace"
)

// Scheme names an architecture in the scheme registry. The four
// built-in organizations are registered at init; RegisterScheme adds
// more.
type Scheme string

// Built-in schemes.
const (
	Baseline Scheme = "baseline"
	UnSync   Scheme = "unsync"
	Reunion  Scheme = "reunion"
	TMR      Scheme = "tmr"
)

// String names the scheme.
func (s Scheme) String() string { return string(s) }

// RunConfig bundles every knob of a simulation run.
type RunConfig struct {
	Core    pipeline.Config
	Mem     mem.Config
	UnSync  unsync.Config
	Reunion reunion.Config
	TMR     tmr.Config

	// WarmupInsts instructions run before statistics are reset;
	// MeasureInsts are then measured. MaxCycles is the safety budget.
	WarmupInsts  uint64
	MeasureInsts uint64
	MaxCycles    uint64

	// Source supplies the workload streams. nil selects
	// GeneratorSource (regenerate per run); experiment suites install
	// a CachedSource so sweeps replay one materialized trace per
	// benchmark instead of re-synthesizing it at every point.
	Source StreamSource
}

// DefaultRunConfig returns the Table I machine with the paper's scheme
// parameters and a measurement window suitable for the figures.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Core:         pipeline.DefaultConfig(),
		Mem:          mem.DefaultConfig(),
		UnSync:       unsync.DefaultConfig(),
		Reunion:      reunion.DefaultConfig(),
		TMR:          tmr.DefaultConfig(),
		WarmupInsts:  50_000,
		MeasureInsts: 200_000,
		MaxCycles:    500_000_000,
	}
}

// Result is the outcome of one run.
type Result struct {
	Scheme    Scheme
	Benchmark string

	IPC    float64
	Cycles uint64
	Insts  uint64

	Core pipeline.Stats // measurement-window stats of (the first) core

	// Events holds the measurement-window counters of the run under the
	// repository-wide taxonomy (internal/events): core pipeline events
	// (topdown slot buckets included), memory hierarchy events of the
	// first replica plus the shared L2, and the scheme's own counters.
	// Every registered scheme fills it through the same helpers
	// (collectEvents in engine.go), so consumers never dispatch on the
	// scheme to read a counter.
	Events events.Counts

	// Scheme-specific statistics (nil for the others).
	UnSyncStats  *unsync.PairStats
	ReunionStats *reunion.PairStats
	TMRStats     *tmr.TripleStats
}

// baselineMemConfig strips redundancy-oriented choices: a conventional
// write-back L1 with no protection.
func baselineMemConfig(memCfg mem.Config) mem.Config {
	memCfg.L1D.Policy = mem.WriteBack
	memCfg.L1D.Protect = mem.ProtNone
	memCfg.L1I.Protect = mem.ProtNone
	memCfg.L2.Protect = mem.ProtSECDED
	return memCfg
}

// TotalInsts returns the warmup plus measurement instruction count.
func (rc *RunConfig) TotalInsts() uint64 { return rc.WarmupInsts + rc.MeasureInsts }

// Validate checks every sub-configuration, so that a bad RunConfig
// surfaces as a returned error at the API boundary instead of a panic
// inside a constructor.
func (rc *RunConfig) Validate() error {
	if err := rc.Core.Validate(); err != nil {
		return fmt.Errorf("cmp: core config: %w", err)
	}
	if err := rc.Mem.Validate(); err != nil {
		return fmt.Errorf("cmp: mem config: %w", err)
	}
	if err := rc.UnSync.Validate(); err != nil {
		return fmt.Errorf("cmp: unsync config: %w", err)
	}
	if err := rc.Reunion.Validate(); err != nil {
		return fmt.Errorf("cmp: reunion config: %w", err)
	}
	if err := rc.TMR.Validate(); err != nil {
		return fmt.Errorf("cmp: tmr config: %w", err)
	}
	if rc.MeasureInsts == 0 {
		return fmt.Errorf("cmp: MeasureInsts must be positive")
	}
	if rc.MaxCycles == 0 {
		return fmt.Errorf("cmp: MaxCycles must be positive")
	}
	return nil
}

// validateRun checks the run configuration and the workload profile.
func validateRun(rc *RunConfig, prof *trace.Profile) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	if err := prof.Validate(); err != nil {
		return fmt.Errorf("cmp: %w", err)
	}
	return nil
}

// Overhead returns the percentage slowdown of res relative to base
// (positive = slower than baseline), computed from cycles per
// instruction so differing instruction windows compare fairly.
func Overhead(base, res Result) float64 {
	if base.Insts == 0 || res.Insts == 0 || base.Cycles == 0 {
		return 0
	}
	cpiBase := float64(base.Cycles) / float64(base.Insts)
	cpiRes := float64(res.Cycles) / float64(res.Insts)
	return 100 * (cpiRes - cpiBase) / cpiBase
}
