// Package cmp assembles full chip configurations and runs workloads on
// the three architectures the paper compares:
//
//   - Baseline: an unprotected CMP core (write-back L1, no redundancy);
//   - UnSync: redundant core-pairs with Communication Buffers
//     (internal/core);
//   - Reunion: redundant core-pairs with fingerprint comparison
//     (internal/reunion).
//
// The runners implement the measurement discipline every experiment
// uses: a warmup phase (caches and predictors settle), a statistics
// reset, and a fixed-length measurement window over an identical
// instruction stream.
package cmp

import (
	"fmt"

	unsync "github.com/cmlasu/unsync/internal/core"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/reunion"
	"github.com/cmlasu/unsync/internal/trace"
)

// Scheme selects the architecture.
type Scheme uint8

const (
	Baseline Scheme = iota
	UnSync
	Reunion
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case UnSync:
		return "unsync"
	case Reunion:
		return "reunion"
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// RunConfig bundles every knob of a simulation run.
type RunConfig struct {
	Core    pipeline.Config
	Mem     mem.Config
	UnSync  unsync.Config
	Reunion reunion.Config

	// WarmupInsts instructions run before statistics are reset;
	// MeasureInsts are then measured. MaxCycles is the safety budget.
	WarmupInsts  uint64
	MeasureInsts uint64
	MaxCycles    uint64

	// Source supplies the workload streams. nil selects
	// GeneratorSource (regenerate per run); experiment suites install
	// a CachedSource so sweeps replay one materialized trace per
	// benchmark instead of re-synthesizing it at every point.
	Source StreamSource
}

// DefaultRunConfig returns the Table I machine with the paper's scheme
// parameters and a measurement window suitable for the figures.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Core:         pipeline.DefaultConfig(),
		Mem:          mem.DefaultConfig(),
		UnSync:       unsync.DefaultConfig(),
		Reunion:      reunion.DefaultConfig(),
		WarmupInsts:  50_000,
		MeasureInsts: 200_000,
		MaxCycles:    500_000_000,
	}
}

// Result is the outcome of one run.
type Result struct {
	Scheme    Scheme
	Benchmark string

	IPC    float64
	Cycles uint64
	Insts  uint64

	Core pipeline.Stats // measurement-window stats of (the first) core

	// Scheme-specific pair statistics (nil for the others).
	UnSyncStats  *unsync.PairStats
	ReunionStats *reunion.PairStats
}

// baselineMemConfig strips redundancy-oriented choices: a conventional
// write-back L1 with no protection.
func baselineMemConfig(memCfg mem.Config) mem.Config {
	memCfg.L1D.Policy = mem.WriteBack
	memCfg.L1D.Protect = mem.ProtNone
	memCfg.L1I.Protect = mem.ProtNone
	memCfg.L2.Protect = mem.ProtSECDED
	return memCfg
}

// Run executes the named profile on the selected scheme.
func Run(s Scheme, rc RunConfig, prof trace.Profile) (Result, error) {
	switch s {
	case Baseline:
		return RunBaseline(rc, prof)
	case UnSync:
		return RunUnSync(rc, prof)
	case Reunion:
		return RunReunion(rc, prof)
	}
	return Result{}, fmt.Errorf("cmp: unknown scheme %v", s)
}

// TotalInsts returns the warmup plus measurement instruction count.
func (rc *RunConfig) TotalInsts() uint64 { return rc.WarmupInsts + rc.MeasureInsts }

// Validate checks every sub-configuration, so that a bad RunConfig
// surfaces as a returned error at the API boundary instead of a panic
// inside a constructor.
func (rc *RunConfig) Validate() error {
	if err := rc.Core.Validate(); err != nil {
		return fmt.Errorf("cmp: core config: %w", err)
	}
	if err := rc.Mem.Validate(); err != nil {
		return fmt.Errorf("cmp: mem config: %w", err)
	}
	if err := rc.UnSync.Validate(); err != nil {
		return fmt.Errorf("cmp: unsync config: %w", err)
	}
	if err := rc.Reunion.Validate(); err != nil {
		return fmt.Errorf("cmp: reunion config: %w", err)
	}
	if rc.MeasureInsts == 0 {
		return fmt.Errorf("cmp: MeasureInsts must be positive")
	}
	if rc.MaxCycles == 0 {
		return fmt.Errorf("cmp: MaxCycles must be positive")
	}
	return nil
}

// validateRun checks the run configuration and the workload profile.
func validateRun(rc *RunConfig, prof *trace.Profile) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	if err := prof.Validate(); err != nil {
		return fmt.Errorf("cmp: %w", err)
	}
	return nil
}

// RunBaseline runs the profile on a single unprotected core.
func RunBaseline(rc RunConfig, prof trace.Profile) (Result, error) {
	if err := validateRun(&rc, &prof); err != nil {
		return Result{}, err
	}
	h := mem.NewHierarchy(baselineMemConfig(rc.Mem), 1)
	c := pipeline.NewCore(rc.Core, 0, h, rc.Stream(prof))
	for c.Stats.Insts < rc.WarmupInsts && !c.Done() {
		if c.Cycle() >= rc.MaxCycles {
			return Result{}, pipeline.ErrCycleBudget
		}
		c.Step()
	}
	c.ResetStats()
	if err := c.Run(rc.MaxCycles); err != nil {
		return Result{}, err
	}
	return Result{
		Scheme: Baseline, Benchmark: prof.Name,
		IPC: c.Stats.IPC(), Cycles: c.Stats.Cycles, Insts: c.Stats.Insts,
		Core: c.Stats,
	}, nil
}

// RunUnSync runs the profile on an UnSync pair.
func RunUnSync(rc RunConfig, prof trace.Profile) (Result, error) {
	if err := validateRun(&rc, &prof); err != nil {
		return Result{}, err
	}
	sA := rc.Stream(prof)
	sB := rc.Stream(prof)
	p := unsync.NewPair(rc.Core, rc.Mem, rc.UnSync, sA, sB)
	for minInsts(p.A, p.B) < rc.WarmupInsts && !p.Done() {
		if p.Cycle() >= rc.MaxCycles {
			return Result{}, pipeline.ErrCycleBudget
		}
		p.Step()
	}
	p.ResetStats()
	if err := p.Run(rc.MaxCycles); err != nil {
		return Result{}, err
	}
	st := p.Stats
	return Result{
		Scheme: UnSync, Benchmark: prof.Name,
		IPC: p.A.Stats.IPC(), Cycles: p.A.Stats.Cycles, Insts: p.A.Stats.Insts,
		Core: p.A.Stats, UnSyncStats: &st,
	}, nil
}

// RunReunion runs the profile on a Reunion pair.
func RunReunion(rc RunConfig, prof trace.Profile) (Result, error) {
	if err := validateRun(&rc, &prof); err != nil {
		return Result{}, err
	}
	sA := rc.Stream(prof)
	sB := rc.Stream(prof)
	p := reunion.NewPair(rc.Core, rc.Mem, rc.Reunion, sA, sB)
	for minInsts(p.A, p.B) < rc.WarmupInsts && !p.Done() {
		if p.Cycle() >= rc.MaxCycles {
			return Result{}, pipeline.ErrCycleBudget
		}
		p.Step()
	}
	p.ResetStats()
	if err := p.Run(rc.MaxCycles); err != nil {
		return Result{}, err
	}
	st := p.Stats
	return Result{
		Scheme: Reunion, Benchmark: prof.Name,
		IPC: p.A.Stats.IPC(), Cycles: p.A.Stats.Cycles, Insts: p.A.Stats.Insts,
		Core: p.A.Stats, ReunionStats: &st,
	}, nil
}

func minInsts(a, b *pipeline.Core) uint64 {
	if a.Stats.Insts < b.Stats.Insts {
		return a.Stats.Insts
	}
	return b.Stats.Insts
}

// Overhead returns the percentage slowdown of res relative to base
// (positive = slower than baseline), computed from cycles per
// instruction so differing instruction windows compare fairly.
func Overhead(base, res Result) float64 {
	if base.Insts == 0 || res.Insts == 0 || base.Cycles == 0 {
		return 0
	}
	cpiBase := float64(base.Cycles) / float64(base.Insts)
	cpiRes := float64(res.Cycles) / float64(res.Insts)
	return 100 * (cpiRes - cpiBase) / cpiBase
}
