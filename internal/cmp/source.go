package cmp

import "github.com/cmlasu/unsync/internal/trace"

// StreamSource produces the workload stream for one simulation run: n
// records of the profile's deterministic stream. Every stream it
// returns must be bit-identical for the same (profile, n) — the
// redundancy schemes and the baseline-relative figures depend on every
// run of a benchmark consuming the same instructions.
//
// RunConfig.Source selects the implementation; nil means
// GeneratorSource (re-synthesize per run), the historical behavior.
type StreamSource interface {
	Stream(p trace.Profile, n uint64) trace.Stream
}

// GeneratorSource synthesizes a fresh trace for every stream. It is
// stateless and allocation-light per call, but a sweep that runs the
// same benchmark at many operating points pays the full generation
// cost every time.
type GeneratorSource struct{}

// Stream returns a fresh generator truncated to n records.
func (GeneratorSource) Stream(p trace.Profile, n uint64) trace.Stream {
	return trace.NewLimit(trace.NewGenerator(p), n)
}

// CachedSource materializes each (profile, n) trace once into a shared
// replay cache and hands out read-only replay cursors. Baseline,
// UnSync and Reunion runs of the same benchmark — and every sweep
// point of a figure — then consume the identical packed buffer without
// regeneration.
type CachedSource struct {
	Cache *trace.Cache
}

// NewCachedSource returns a CachedSource over a fresh cache bounded to
// budgetBytes (use trace.DefaultCacheBudget for experiment suites).
func NewCachedSource(budgetBytes int64) CachedSource {
	return CachedSource{Cache: trace.NewCache(budgetBytes)}
}

// Stream returns a replay cursor over the cached materialization.
func (s CachedSource) Stream(p trace.Profile, n uint64) trace.Stream {
	return s.Cache.Get(p, n).Stream()
}

// Stream returns the workload stream for one run of the profile under
// this configuration: TotalInsts records from the configured Source
// (or a fresh generator when Source is nil).
func (rc *RunConfig) Stream(prof trace.Profile) trace.Stream {
	if rc.Source != nil {
		return rc.Source.Stream(prof, rc.TotalInsts())
	}
	return GeneratorSource{}.Stream(prof, rc.TotalInsts())
}
