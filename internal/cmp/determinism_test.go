package cmp

import (
	"bytes"
	"crypto/sha256"
	"reflect"
	"testing"

	"github.com/cmlasu/unsync/internal/trace"
)

// TestRunsAreDeterministic is the regression guard for the invariant the
// whole evaluation rests on: two runs of the same RunConfig and workload
// seed produce bit-identical results on every scheme. Any wall-clock
// read, map-iteration dependence or unseeded RNG that sneaks into the
// simulation path shows up here as a diff between the two runs.
func TestRunsAreDeterministic(t *testing.T) {
	rc := DefaultRunConfig()
	rc.WarmupInsts = 2_000
	rc.MeasureInsts = 5_000
	prof, ok := trace.ByName("gzip")
	if !ok {
		t.Fatal("no gzip profile in the catalog")
	}

	for _, s := range []Scheme{Baseline, UnSync, Reunion, TMR} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			first, err := Run(s, rc, prof)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := Run(s, rc, prof)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Errorf("results differ between identical runs:\n first: %+v\nsecond: %+v", first, second)
			}
		})
	}
}

// TestTraceStreamIsDeterministic pins the workload generator itself:
// identical profiles produce byte-identical serialized streams.
func TestTraceStreamIsDeterministic(t *testing.T) {
	prof, ok := trace.ByName("gzip")
	if !ok {
		t.Fatal("no gzip profile in the catalog")
	}
	hash := func() [32]byte {
		recs := trace.Collect(trace.NewGenerator(prof), 10_000)
		var buf bytes.Buffer
		if err := trace.WriteTrace(&buf, recs); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		return sha256.Sum256(buf.Bytes())
	}
	h1, h2 := hash(), hash()
	if h1 != h2 {
		t.Errorf("trace hashes differ between identical generators: %x vs %x", h1, h2)
	}

	// A different seed must change the stream, or the hash above proves
	// nothing.
	other := prof.Reseeded(1)
	recs := trace.Collect(trace.NewGenerator(other), 10_000)
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, recs); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	if sha256.Sum256(buf.Bytes()) == h1 {
		t.Error("reseeded profile produced an identical stream")
	}
}
