package cmp

import (
	"fmt"

	unsync "github.com/cmlasu/unsync/internal/core"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/reunion"
	"github.com/cmlasu/unsync/internal/trace"
)

// Chip is the full Table I CMP: multiple redundant core-pairs sharing
// one L2 and L1↔L2 bus (4 logical cores = 2 pairs), optionally mixed
// with unprotected solo cores. Because every UnSync core is identical,
// the number and pairing of redundant cores is a user choice — the
// configurability the paper highlights in §I ("the number and pairs of
// redundant cores in the multi-core system can be configured by the
// user, based on reliability and performance requirements").
type Chip struct {
	Scheme Scheme
	Hier   *mem.Hierarchy

	UnSyncPairs  []*unsync.Pair
	ReunionPairs []*reunion.Pair
	Solo         []*pipeline.Core // unprotected cores sharing the L2/bus

	cycle uint64
}

// StreamFactory produces a fresh stream for one core; it is called twice
// per pair so both cores replay identical instructions.
type StreamFactory func() trace.Stream

// NewChip builds a chip with one redundant pair per workload.
func NewChip(s Scheme, rc RunConfig, workloads []StreamFactory) (*Chip, error) {
	return NewMixedChip(s, rc, workloads, nil)
}

// NewMixedChip builds a chip with one redundant pair per entry of
// pairWorkloads and one unprotected solo core per entry of
// soloWorkloads, all sharing the L2 and the L1↔L2 bus — the mixed
// reliability/performance configuration §I describes. Solo cores get
// no detection hardware and no store pairing.
func NewMixedChip(s Scheme, rc RunConfig, pairWorkloads, soloWorkloads []StreamFactory) (*Chip, error) {
	if len(pairWorkloads) == 0 && len(soloWorkloads) == 0 {
		return nil, fmt.Errorf("cmp: chip needs at least one workload")
	}
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	ch := &Chip{Scheme: s}
	nCores := 2*len(pairWorkloads) + len(soloWorkloads)
	switch s {
	case UnSync:
		ch.Hier = mem.NewHierarchy(unsync.MemConfig(rc.Mem), nCores)
		for i, w := range pairWorkloads {
			p := unsync.NewPairOn(rc.Core, rc.UnSync, ch.Hier, 2*i, 2*i+1, w(), w())
			ch.UnSyncPairs = append(ch.UnSyncPairs, p)
		}
	case Reunion:
		ch.Hier = mem.NewHierarchy(reunion.MemConfig(rc.Mem), nCores)
		for i, w := range pairWorkloads {
			p := reunion.NewPairOn(rc.Core, rc.Reunion, ch.Hier, 2*i, 2*i+1, w(), w())
			ch.ReunionPairs = append(ch.ReunionPairs, p)
		}
	default:
		return nil, fmt.Errorf("cmp: chip scheme must be UnSync or Reunion, got %v", s)
	}
	base := 2 * len(pairWorkloads)
	for i, w := range soloWorkloads {
		ch.Solo = append(ch.Solo, pipeline.NewCore(rc.Core, base+i, ch.Hier, w()))
	}
	return ch, nil
}

// Step advances every pair and solo core by one cycle.
func (ch *Chip) Step() {
	for _, p := range ch.UnSyncPairs {
		p.Step()
	}
	for _, p := range ch.ReunionPairs {
		p.Step()
	}
	for _, c := range ch.Solo {
		c.Step()
	}
	ch.cycle++
}

// Done reports whether every pair and solo core has finished.
func (ch *Chip) Done() bool {
	for _, p := range ch.UnSyncPairs {
		if !p.Done() {
			return false
		}
	}
	for _, p := range ch.ReunionPairs {
		if !p.Done() {
			return false
		}
	}
	for _, c := range ch.Solo {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Run steps the chip to completion or until maxCycles.
func (ch *Chip) Run(maxCycles uint64) error {
	for !ch.Done() {
		if ch.cycle >= maxCycles {
			return pipeline.ErrCycleBudget
		}
		ch.Step()
	}
	return nil
}

// Cycle returns the chip cycle counter.
func (ch *Chip) Cycle() uint64 { return ch.cycle }

// Pairs returns the number of redundant pairs on the chip.
func (ch *Chip) Pairs() int { return len(ch.UnSyncPairs) + len(ch.ReunionPairs) }

// PairIPC returns the architectural IPC of pair i.
func (ch *Chip) PairIPC(i int) float64 {
	if i < len(ch.UnSyncPairs) {
		return ch.UnSyncPairs[i].IPC()
	}
	i -= len(ch.UnSyncPairs)
	return ch.ReunionPairs[i].IPC()
}

// SoloIPC returns the IPC of unprotected solo core i.
func (ch *Chip) SoloIPC(i int) float64 { return ch.Solo[i].Stats.IPC() }
