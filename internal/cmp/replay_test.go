package cmp

import (
	"reflect"
	"testing"

	"github.com/cmlasu/unsync/internal/trace"
)

// replayRC is a short but non-trivial operating point: big enough to
// exercise warmup, recovery seeks and steady-state commit.
func replayRC() RunConfig {
	rc := DefaultRunConfig()
	rc.WarmupInsts = 2_000
	rc.MeasureInsts = 10_000
	return rc
}

func replayProfile(t *testing.T) trace.Profile {
	t.Helper()
	p, ok := trace.ByName("gzip")
	if !ok {
		t.Fatal("no gzip profile")
	}
	return p
}

// runBoth executes the same run twice — once regenerating the trace,
// once replaying it from a shared cache — and demands bit-identical
// results. This is the contract that lets experiments swap sources
// freely: a cached replay is indistinguishable from fresh generation.
func runBoth(t *testing.T, s Scheme) {
	t.Helper()
	prof := replayProfile(t)

	fresh := replayRC()
	fresh.Source = GeneratorSource{}
	want, err := Run(s, fresh, prof)
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}

	cached := replayRC()
	cached.Source = NewCachedSource(trace.DefaultCacheBudget)
	// Run twice through the same cache: the first materializes, the
	// second replays a warm entry. Both must match the fresh run.
	for i := 0; i < 2; i++ {
		got, err := Run(s, cached, prof)
		if err != nil {
			t.Fatalf("cached run %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cached run %d diverged from fresh generation:\nfresh:  %+v\ncached: %+v", i, want, got)
		}
	}
}

func TestReplayBaseline(t *testing.T) { runBoth(t, Baseline) }
func TestReplayUnSync(t *testing.T)   { runBoth(t, UnSync) }
func TestReplayReunion(t *testing.T)  { runBoth(t, Reunion) }
func TestReplayTMR(t *testing.T)      { runBoth(t, TMR) }

// TestReplaySourceSelection pins the nil-Source fallback: a zero
// RunConfig generates, an explicit CachedSource replays.
func TestReplaySourceSelection(t *testing.T) {
	prof := replayProfile(t)
	rc := replayRC()
	if rc.Source != nil {
		t.Fatal("DefaultRunConfig must not silently install a source")
	}
	s := rc.Stream(prof)
	if _, ok := s.(*trace.ReplayStream); ok {
		t.Fatal("nil Source must generate, not replay")
	}

	src := NewCachedSource(trace.DefaultCacheBudget)
	rc.Source = src
	if _, ok := rc.Stream(prof).(*trace.ReplayStream); !ok {
		t.Fatal("CachedSource must hand out replay cursors")
	}
	st := src.Cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("cache stats after one Stream: %+v, want one miss", st)
	}
	// A redundant pair takes two streams; the second is a hit.
	rc.Stream(prof)
	if st := src.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("second Stream of the same run must hit: %+v", st)
	}
}
