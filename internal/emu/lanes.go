package emu

import (
	"encoding/binary"
	"fmt"
	"maps"
	"math"

	"github.com/cmlasu/unsync/internal/isa"
)

// Overlay is a per-lane copy-on-write view over a shared base memory.
// The base is the program's immutable initial image (one per decoded
// program); every write lands in the lane's private dirty-byte map, so
// B trial lanes share one data image instead of holding B clones.
type Overlay struct {
	base  *Memory
	dirty map[uint64]byte
}

// NewOverlay returns an empty overlay over base. The base is read
// through, never written.
func NewOverlay(base *Memory) Overlay {
	return Overlay{base: base, dirty: make(map[uint64]byte)}
}

// LoadByte returns the byte at addr, preferring the lane's own writes.
func (o *Overlay) LoadByte(addr uint64) byte {
	if b, ok := o.dirty[addr]; ok {
		return b
	}
	return o.base.LoadByte(addr)
}

// StoreByte stores b at addr in the lane's private dirty set.
func (o *Overlay) StoreByte(addr uint64, b byte) { o.dirty[addr] = b }

// Read returns width bytes at addr as a little-endian unsigned
// integer, mirroring Memory.Read.
func (o *Overlay) Read(addr uint64, width int) uint64 {
	var buf [8]byte
	for i := 0; i < width; i++ {
		buf[i] = o.LoadByte(addr + uint64(i))
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// Write stores the low width bytes of v at addr, mirroring
// Memory.Write.
func (o *Overlay) Write(addr uint64, v uint64, width int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	for i := 0; i < width; i++ {
		o.StoreByte(addr+uint64(i), buf[i])
	}
}

// Clone returns a copy-on-write fork of the overlay: the base stays
// shared, the dirty set is copied. Cost is proportional to the bytes
// the source lane has written, not to the memory image.
func (o *Overlay) Clone() Overlay {
	return Overlay{base: o.base, dirty: maps.Clone(o.dirty)}
}

// Dirty returns the number of privately written bytes (for stats and
// tests).
func (o *Overlay) Dirty() int { return len(o.dirty) }

// Lanes is a batch of B architectural states executing one shared
// program in lockstep: the structure-of-arrays counterpart of
// Machine. Register files are stored as per-register columns
// (Regs[r][lane]), so state shared by a step — the instruction, its
// decode, its class and width — is fetched once for the whole batch
// while per-lane values stay a column index apart.
//
// Lanes executing the same control-flow path are stepped through
// StepShared with a pre-fetched instruction; a lane whose PC departs
// the shared path falls back to Step, which fetches from the lane's
// own PC with scalar Machine semantics.
type Lanes struct {
	d *Decoded

	// Regs and FRegs hold per-register columns: Regs[r][lane].
	Regs  [isa.NumRegs][]uint64
	FRegs [isa.NumRegs][]uint64

	PC        []uint64
	Halted    []bool
	InstCount []uint64

	// Output collects each lane's SysPrint* values.
	Output [][]uint64

	// Mem is each lane's copy-on-write view of the shared initial
	// image.
	Mem []Overlay
}

// NewLanes returns n reset lanes over the shared decode: PC 0, zero
// registers, and the program's initial data image.
func NewLanes(d *Decoded, n int) *Lanes {
	l := &Lanes{
		d:         d,
		PC:        make([]uint64, n),
		Halted:    make([]bool, n),
		InstCount: make([]uint64, n),
		Output:    make([][]uint64, n),
		Mem:       make([]Overlay, n),
	}
	// One backing array per register file keeps the columns contiguous.
	ints := make([]uint64, isa.NumRegs*n)
	fps := make([]uint64, isa.NumRegs*n)
	for r := 0; r < isa.NumRegs; r++ {
		l.Regs[r] = ints[r*n : (r+1)*n : (r+1)*n]
		l.FRegs[r] = fps[r*n : (r+1)*n : (r+1)*n]
	}
	for i := 0; i < n; i++ {
		l.Mem[i] = NewOverlay(d.image)
	}
	return l
}

// Len returns the number of lanes.
func (l *Lanes) Len() int { return len(l.PC) }

// Fork copies lane src's architectural state into lane dst: registers,
// PC, halt flag, instruction count, output prefix, and a copy-on-write
// clone of the memory overlay.
func (l *Lanes) Fork(dst, src int) {
	for r := 0; r < isa.NumRegs; r++ {
		l.Regs[r][dst] = l.Regs[r][src]
		l.FRegs[r][dst] = l.FRegs[r][src]
	}
	l.PC[dst] = l.PC[src]
	l.Halted[dst] = l.Halted[src]
	l.InstCount[dst] = l.InstCount[src]
	//unsync:allow-alloc fork runs once per lane, outside the step loop; the copy is bounded by the source output length
	l.Output[dst] = append(l.Output[dst][:0], l.Output[src]...)
	l.Mem[dst] = l.Mem[src].Clone()
}

// Step executes one instruction on lane i, fetching from the lane's
// own PC — the scalar path for lanes that have diverged from the
// shared trace. Stepping a halted lane is a no-op.
func (l *Lanes) Step(i int) (Commit, error) {
	if l.Halted[i] {
		return Commit{}, nil
	}
	pc := l.PC[i]
	idx := pc / 4
	if pc%4 != 0 || idx >= uint64(len(l.d.Insts)) {
		return Commit{}, fmt.Errorf("%w: pc=%#x", ErrNoProgram, pc)
	}
	return l.step(i, l.d.Insts[idx], l.d.Class[idx], int(l.d.Width[idx]))
}

// StepShared executes one instruction on lane i using a pre-fetched
// decode — the lockstep path. The caller guarantees l.PC[i] equals the
// PC the instruction was fetched from; idx is the instruction index
// (PC/4).
func (l *Lanes) StepShared(i int, idx int) (Commit, error) {
	return l.step(i, l.d.Insts[idx], l.d.Class[idx], int(l.d.Width[idx]))
}

// step mirrors Machine.Step exactly, operating on lane i's columns.
// Any semantic change here must be made in Machine.Step too; the
// differential fuzz test in lanes_test.go pins the equivalence.
func (l *Lanes) step(i int, in isa.Inst, cls isa.Class, w int) (Commit, error) {
	pc := l.PC[i]
	c := Commit{Seq: l.InstCount[i], PC: pc, Inst: in, NextPC: pc + 4}

	rs1 := l.Regs[in.Rs1][i]

	switch in.Op {
	case isa.NOP:

	case isa.ADD:
		l.setReg(i, in.Rd, rs1+l.Regs[in.Rs2][i])
	case isa.SUB:
		l.setReg(i, in.Rd, rs1-l.Regs[in.Rs2][i])
	case isa.AND:
		l.setReg(i, in.Rd, rs1&l.Regs[in.Rs2][i])
	case isa.OR:
		l.setReg(i, in.Rd, rs1|l.Regs[in.Rs2][i])
	case isa.XOR:
		l.setReg(i, in.Rd, rs1^l.Regs[in.Rs2][i])
	case isa.NOR:
		l.setReg(i, in.Rd, ^(rs1 | l.Regs[in.Rs2][i]))
	case isa.SLT:
		l.setReg(i, in.Rd, b2u(int64(rs1) < int64(l.Regs[in.Rs2][i])))
	case isa.SLTU:
		l.setReg(i, in.Rd, b2u(rs1 < l.Regs[in.Rs2][i]))
	case isa.SLL:
		l.setReg(i, in.Rd, rs1<<(l.Regs[in.Rs2][i]&63))
	case isa.SRL:
		l.setReg(i, in.Rd, rs1>>(l.Regs[in.Rs2][i]&63))
	case isa.SRA:
		l.setReg(i, in.Rd, uint64(int64(rs1)>>(l.Regs[in.Rs2][i]&63)))
	case isa.MUL:
		l.setReg(i, in.Rd, rs1*l.Regs[in.Rs2][i])
	case isa.MULH:
		l.setReg(i, in.Rd, mulh(int64(rs1), int64(l.Regs[in.Rs2][i])))
	case isa.DIV:
		l.setReg(i, in.Rd, sdiv(int64(rs1), int64(l.Regs[in.Rs2][i])))
	case isa.REM:
		l.setReg(i, in.Rd, srem(int64(rs1), int64(l.Regs[in.Rs2][i])))

	case isa.ADDI:
		l.setReg(i, in.Rd, rs1+uint64(in.Imm))
	case isa.ANDI:
		l.setReg(i, in.Rd, rs1&uint64(in.Imm))
	case isa.ORI:
		l.setReg(i, in.Rd, rs1|uint64(in.Imm))
	case isa.XORI:
		l.setReg(i, in.Rd, rs1^uint64(in.Imm))
	case isa.SLTI:
		l.setReg(i, in.Rd, b2u(int64(rs1) < in.Imm))
	case isa.SLLI:
		l.setReg(i, in.Rd, rs1<<(uint64(in.Imm)&63))
	case isa.SRLI:
		l.setReg(i, in.Rd, rs1>>(uint64(in.Imm)&63))
	case isa.SRAI:
		l.setReg(i, in.Rd, uint64(int64(rs1)>>(uint64(in.Imm)&63)))
	case isa.LUI:
		l.setReg(i, in.Rd, uint64(in.Imm)<<16)

	case isa.LB, isa.LH, isa.LW, isa.LD:
		c.Addr = rs1 + uint64(in.Imm)
		v := l.Mem[i].Read(c.Addr, w)
		v = signExtend(v, w)
		c.Data = v
		l.setReg(i, in.Rd, v)
	case isa.LBU, isa.LHU, isa.LWU:
		c.Addr = rs1 + uint64(in.Imm)
		v := l.Mem[i].Read(c.Addr, w)
		c.Data = v
		l.setReg(i, in.Rd, v)
	case isa.FLD:
		c.Addr = rs1 + uint64(in.Imm)
		c.Data = l.Mem[i].Read(c.Addr, 8)
		l.FRegs[in.Rd][i] = c.Data
	case isa.SB, isa.SH, isa.SW, isa.SD:
		c.Addr = rs1 + uint64(in.Imm)
		c.Data = l.Regs[in.Rs2][i]
		l.Mem[i].Write(c.Addr, c.Data, w)
	case isa.FSD:
		c.Addr = rs1 + uint64(in.Imm)
		c.Data = l.FRegs[in.Rs2][i]
		l.Mem[i].Write(c.Addr, c.Data, 8)

	case isa.BEQ:
		c.Taken = rs1 == l.Regs[in.Rs2][i]
	case isa.BNE:
		c.Taken = rs1 != l.Regs[in.Rs2][i]
	case isa.BLT:
		c.Taken = int64(rs1) < int64(l.Regs[in.Rs2][i])
	case isa.BGE:
		c.Taken = int64(rs1) >= int64(l.Regs[in.Rs2][i])
	case isa.BLTU:
		c.Taken = rs1 < l.Regs[in.Rs2][i]
	case isa.BGEU:
		c.Taken = rs1 >= l.Regs[in.Rs2][i]

	case isa.J:
		c.Taken = true
		c.NextPC = uint64(in.Imm)
	case isa.JAL:
		c.Taken = true
		l.setReg(i, in.Rd, pc+4)
		c.NextPC = uint64(in.Imm)
	case isa.JR:
		c.Taken = true
		c.NextPC = rs1
	case isa.JALR:
		c.Taken = true
		target := rs1 // read before link in case Rd == Rs1
		l.setReg(i, in.Rd, pc+4)
		c.NextPC = target

	case isa.FADD:
		l.setF(i, in.Rd, l.f(i, in.Rs1)+l.f(i, in.Rs2))
	case isa.FSUB:
		l.setF(i, in.Rd, l.f(i, in.Rs1)-l.f(i, in.Rs2))
	case isa.FMUL:
		l.setF(i, in.Rd, l.f(i, in.Rs1)*l.f(i, in.Rs2))
	case isa.FDIV:
		l.setF(i, in.Rd, l.f(i, in.Rs1)/l.f(i, in.Rs2))
	case isa.FMIN:
		l.setF(i, in.Rd, math.Min(l.f(i, in.Rs1), l.f(i, in.Rs2)))
	case isa.FMAX:
		l.setF(i, in.Rd, math.Max(l.f(i, in.Rs1), l.f(i, in.Rs2)))
	case isa.FCVTIF:
		l.setF(i, in.Rd, float64(int64(rs1)))
	case isa.FCVTFI:
		l.setReg(i, in.Rd, uint64(int64(l.f(i, in.Rs1))))
	case isa.FEQ:
		l.setReg(i, in.Rd, b2u(l.f(i, in.Rs1) == l.f(i, in.Rs2)))
	case isa.FLT:
		l.setReg(i, in.Rd, b2u(l.f(i, in.Rs1) < l.f(i, in.Rs2)))

	case isa.AMOADD:
		c.Addr = rs1
		old := signExtend(l.Mem[i].Read(c.Addr, 4), 4)
		l.Mem[i].Write(c.Addr, old+l.Regs[in.Rs2][i], 4)
		c.Data = old
		l.setReg(i, in.Rd, old)

	case isa.FENCE:
		// Architecturally a no-op in a single-thread machine.

	case isa.SYSCALL:
		c.Taken = true
		switch l.Regs[2][i] {
		case SysPrintInt:
			c.Data = l.Regs[4][i]
			//unsync:allow-alloc syscall output is rare and bounded by the program's print count; amortized append growth
			l.Output[i] = append(l.Output[i], l.Regs[4][i])
		case SysPrintFloat:
			c.Data = l.FRegs[12][i]
			//unsync:allow-alloc syscall output is rare and bounded by the program's print count; amortized append growth
			l.Output[i] = append(l.Output[i], l.FRegs[12][i])
		case SysExit:
			l.Halted[i] = true
		}

	case isa.HALT:
		c.Taken = true
		l.Halted[i] = true

	default:
		return Commit{}, fmt.Errorf("emu: unimplemented opcode %v at pc=%#x", in.Op, pc)
	}

	if cls == isa.ClassBranch && c.Taken {
		c.NextPC = pc + uint64(in.Imm)
	}
	l.PC[i] = c.NextPC
	l.InstCount[i]++
	return c, nil
}

func (l *Lanes) setReg(i int, rd uint8, v uint64) {
	if rd != 0 {
		l.Regs[rd][i] = v
	}
}

func (l *Lanes) f(i int, r uint8) float64       { return math.Float64frombits(l.FRegs[r][i]) }
func (l *Lanes) setF(i int, r uint8, v float64) { l.FRegs[r][i] = math.Float64bits(v) }

// Snapshot captures lane i's architectural state in the same shape a
// scalar Machine snapshot uses.
func (l *Lanes) Snapshot(i int) ArchState {
	var s ArchState
	for r := 0; r < isa.NumRegs; r++ {
		s.Regs[r] = l.Regs[r][i]
		s.FRegs[r] = l.FRegs[r][i]
	}
	s.PC = l.PC[i]
	return s
}

// XorReg flips bits of lane i's integer register r by mask. The write
// is unconditional and branch-free so a batch kernel can apply a
// per-lane fault as column ^= mask with mask 0 for non-firing lanes;
// r0 stays hardwired to zero.
func (l *Lanes) XorReg(i int, r uint8, mask uint64) {
	l.Regs[r][i] ^= mask
	l.Regs[0][i] = 0
}

// XorFReg flips bits of lane i's float register r by mask.
func (l *Lanes) XorFReg(i int, r uint8, mask uint64) {
	l.FRegs[r][i] ^= mask
}

// XorPC flips bits of lane i's PC by mask.
func (l *Lanes) XorPC(i int, mask uint64) {
	l.PC[i] ^= mask
}
