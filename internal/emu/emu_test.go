package emu

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/isa"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	m := New(asm.MustAssemble(src))
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestSumLoop(t *testing.T) {
	m := run(t, `
		li r1, 0      ; sum
		li r2, 1      ; i
		li r3, 101    ; bound
	loop:
		add r1, r1, r2
		addi r2, r2, 1
		blt r2, r3, loop
		mv r4, r1
		li r2, 1
		syscall       ; print r4
		halt
	`)
	if len(m.Output) != 1 || m.Output[0] != 5050 {
		t.Errorf("sum = %v, want [5050]", m.Output)
	}
}

func TestFibonacciMemory(t *testing.T) {
	m := run(t, `
		la r10, buf
		li r1, 0
		li r2, 1
		sd r1, 0(r10)
		sd r2, 8(r10)
		addi r11, r10, 16  ; write pointer
		li r5, 2           ; index
		li r6, 20          ; count
	loop:
		ld r3, -16(r11)
		ld r4, -8(r11)
		add r7, r3, r4
		sd r7, 0(r11)
		addi r5, r5, 1
		addi r11, r11, 8
		blt r5, r6, loop
		halt
	.data
	buf: .space 256
	`)
	// fib(19) = 4181 is the last value written, at buf+19*8.
	if got := m.Mem.Read(asm.DataBase+19*8, 8); got != 4181 {
		t.Errorf("fib(19) in memory = %d, want 4181", got)
	}
}

func TestFibonacciSimple(t *testing.T) {
	m := run(t, `
		li r1, 0
		li r2, 1
		li r3, 0     ; i
		li r4, 30
	loop:
		add r5, r1, r2
		mv r1, r2
		mv r2, r5
		addi r3, r3, 1
		blt r3, r4, loop
		mv r4, r1
		li r2, 1
		syscall
		halt
	`)
	if m.Output[0] != 832040 { // fib(30)
		t.Errorf("fib(30) = %d, want 832040", m.Output[0])
	}
}

func TestMemoryOpsWidths(t *testing.T) {
	m := run(t, `
		la r10, buf
		li r1, -1
		sb r1, 0(r10)
		lb r2, 0(r10)     ; sign-extended -1
		li r3, 0x7fff
		sh r3, 8(r10)
		lh r4, 8(r10)
		li r5, 0x12345678
		sw r5, 16(r10)
		lw r6, 16(r10)
		halt
	.data
	buf: .space 64
	`)
	if int64(m.Regs[2]) != -1 {
		t.Errorf("lb = %d, want -1", int64(m.Regs[2]))
	}
	if m.Regs[4] != 0x7fff {
		t.Errorf("lh = %#x", m.Regs[4])
	}
	if m.Regs[6] != 0x12345678 {
		t.Errorf("lw = %#x", m.Regs[6])
	}
}

func TestSignExtendNegativeWord(t *testing.T) {
	m := run(t, `
		la r10, buf
		li r1, -5
		sw r1, 0(r10)
		lw r2, 0(r10)
		halt
	.data
	buf: .space 8
	`)
	if int64(m.Regs[2]) != -5 {
		t.Errorf("lw sign extension: got %d", int64(m.Regs[2]))
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
		li r1, 3
		li r2, 4
		fcvt.i.f f1, r1
		fcvt.i.f f2, r2
		fmul f3, f1, f1    ; 9
		fmul f4, f2, f2    ; 16
		fadd f5, f3, f4    ; 25
		fdiv f6, f5, f1    ; 25/3
		flt r3, f3, f4     ; 1
		feq r4, f3, f3     ; 1
		fcvt.f.i r5, f5    ; 25
		halt
	`)
	if m.Regs[3] != 1 || m.Regs[4] != 1 {
		t.Errorf("fp compares: flt=%d feq=%d", m.Regs[3], m.Regs[4])
	}
	if m.Regs[5] != 25 {
		t.Errorf("fcvt.f.i = %d, want 25", m.Regs[5])
	}
	got := math.Float64frombits(m.FRegs[6])
	if math.Abs(got-25.0/3.0) > 1e-12 {
		t.Errorf("fdiv = %g", got)
	}
}

func TestFPLoadStore(t *testing.T) {
	m := run(t, `
		la r1, buf
		fld f1, 0(r1)
		fadd f2, f1, f1
		fsd f2, 8(r1)
		fld f3, 8(r1)
		halt
	.data
	buf: .word 0x4008000000000000   ; 3.0
	     .space 8
	`)
	if got := math.Float64frombits(m.FRegs[3]); got != 6.0 {
		t.Errorf("fld/fsd round trip = %g, want 6.0", got)
	}
}

func TestJalJrCall(t *testing.T) {
	m := run(t, `
		li r4, 5
		jal r31, double
		mv r6, r4
		halt
	double:
		add r4, r4, r4
		jr r31
	`)
	if m.Regs[6] != 10 {
		t.Errorf("call result = %d, want 10", m.Regs[6])
	}
}

func TestJalr(t *testing.T) {
	m := run(t, `
		la r1, target
		jalr r2, r1
		halt
	target:
		li r5, 77
		halt
	`)
	if m.Regs[5] != 77 {
		t.Errorf("jalr did not reach target, r5=%d", m.Regs[5])
	}
	if m.Regs[2] != 8 {
		t.Errorf("jalr link = %d, want 8", m.Regs[2])
	}
}

func TestAmoAdd(t *testing.T) {
	m := run(t, `
		la r1, ctr
		li r2, 5
		amoadd r3, r2, (r1)
		amoadd r4, r2, (r1)
		lw r5, 0(r1)
		halt
	.data
	ctr: .word32 100
	`)
	if m.Regs[3] != 100 || m.Regs[4] != 105 || m.Regs[5] != 110 {
		t.Errorf("amoadd: old1=%d old2=%d final=%d", m.Regs[3], m.Regs[4], m.Regs[5])
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	m := run(t, `
		li r1, 7
		li r2, 0
		div r3, r1, r2     ; div by zero -> all ones
		rem r4, r1, r2     ; rem by zero -> dividend
		li r5, -9
		li r6, 2
		div r7, r5, r6     ; -4
		rem r8, r5, r6     ; -1
		halt
	`)
	if m.Regs[3] != ^uint64(0) {
		t.Errorf("div/0 = %#x", m.Regs[3])
	}
	if m.Regs[4] != 7 {
		t.Errorf("rem/0 = %d", m.Regs[4])
	}
	if int64(m.Regs[7]) != -4 || int64(m.Regs[8]) != -1 {
		t.Errorf("signed div/rem = %d, %d", int64(m.Regs[7]), int64(m.Regs[8]))
	}
}

func TestR0Hardwired(t *testing.T) {
	m := run(t, `
		li r0, 99
		add r0, r0, r0
		mv r1, r0
		halt
	`)
	if m.Regs[0] != 0 || m.Regs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d; want 0, 0", m.Regs[0], m.Regs[1])
	}
}

func TestMulh(t *testing.T) {
	cases := []struct{ a, b int64 }{
		{1 << 40, 1 << 40},
		{-(1 << 40), 1 << 40},
		{math.MaxInt64, math.MaxInt64},
		{math.MinInt64, 2},
		{12345, -67890},
	}
	for _, c := range cases {
		want := func(a, b int64) uint64 {
			// reference via big-int-free double check using math/bits semantics
			hi, _ := umul128(absU(a), absU(b))
			lo := absU(a) * absU(b)
			if (a < 0) != (b < 0) {
				lo2 := ^lo + 1
				hi = ^hi
				if lo2 == 0 {
					hi++
				}
			}
			return hi
		}(c.a, c.b)
		if got := mulh(c.a, c.b); got != want {
			t.Errorf("mulh(%d,%d) = %#x, want %#x", c.a, c.b, got, want)
		}
	}
}

func absU(a int64) uint64 {
	if a < 0 {
		return uint64(-a)
	}
	return uint64(a)
}

// Property: umul128 agrees with native multiplication on the low word.
func TestQuickUmul128Low(t *testing.T) {
	f := func(a, b uint64) bool {
		_, lo := umul128(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSyscallExit(t *testing.T) {
	m := run(t, `
		li r2, 10
		syscall
		li r1, 1   ; must not execute
	`)
	if !m.Halted || m.Regs[1] == 1 {
		t.Error("SysExit did not halt the machine")
	}
}

func TestPCOutOfRange(t *testing.T) {
	m := New(asm.MustAssemble("nop"))
	m.PC = 400
	if _, err := m.Step(); err == nil {
		t.Error("expected ErrNoProgram")
	}
}

func TestRunBudget(t *testing.T) {
	m := New(asm.MustAssemble("loop: j loop"))
	if err := m.Run(100); err != ErrMaxSteps {
		t.Errorf("Run = %v, want ErrMaxSteps", err)
	}
	if m.InstCount != 100 {
		t.Errorf("InstCount = %d", m.InstCount)
	}
}

func TestStepHaltedNoOp(t *testing.T) {
	m := run(t, "halt")
	n := m.InstCount
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.InstCount != n {
		t.Error("stepping a halted machine advanced state")
	}
}

func TestOnCommitHook(t *testing.T) {
	var commits []Commit
	m := New(asm.MustAssemble(`
		li r1, 3
		la r2, buf
		sw r1, 0(r2)
		lw r3, 0(r2)
		beq r1, r3, ok
		halt
	ok:	halt
	.data
	buf: .space 8
	`))
	m.OnCommit = func(c Commit) { commits = append(commits, c) }
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(commits) != 6 {
		t.Fatalf("got %d commits, want 6", len(commits))
	}
	if commits[2].Inst.Op != isa.SW || commits[2].Addr != asm.DataBase || commits[2].Data != 3 {
		t.Errorf("store commit = %+v", commits[2])
	}
	if !commits[4].Taken {
		t.Error("beq should be taken")
	}
	if commits[4].NextPC != commits[5].PC {
		t.Error("commit NextPC chain broken")
	}
	for i, c := range commits {
		if c.Seq != uint64(i) {
			t.Errorf("commit %d has Seq %d", i, c.Seq)
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := run(t, "li r1, 42\nli r2, 43\nhalt")
	s := m.Snapshot()
	var m2 Machine
	m2.Mem = NewMemory()
	m2.Restore(s)
	if m2.Regs[1] != 42 || m2.Regs[2] != 43 || m2.PC != m.PC {
		t.Error("Restore did not reproduce the snapshot")
	}
}

func TestRestoreKeepsR0Zero(t *testing.T) {
	var s ArchState
	s.Regs[0] = 99
	var m Machine
	m.Restore(s)
	if m.Regs[0] != 0 {
		t.Error("Restore must keep r0 hardwired to zero")
	}
}

func TestSameArchStateAndOutput(t *testing.T) {
	a := run(t, "li r1, 1\nli r2, 1\nli r4, 5\nsyscall\nhalt")
	b := run(t, "li r1, 1\nli r2, 1\nli r4, 5\nsyscall\nhalt")
	if !SameArchState(a, b) || !SameOutput(a, b) {
		t.Error("identical runs should have identical state and output")
	}
	b.Regs[7] = 1
	if SameArchState(a, b) {
		t.Error("diverged registers not detected")
	}
	b.Regs[7] = 0
	b.Output = append(b.Output, 1)
	if SameOutput(a, b) {
		t.Error("diverged output not detected")
	}
	c := run(t, "li r4, 6\nli r2, 1\nsyscall\nhalt")
	if SameOutput(a, c) {
		t.Error("different output values not detected")
	}
}

func TestMemoryCloneEqual(t *testing.T) {
	m := NewMemory()
	m.Write(0x1234, 0xdeadbeef, 4)
	m.Write(1<<30, 42, 8)
	c := m.Clone()
	if !m.Equal(c) {
		t.Error("clone differs")
	}
	c.StoreByte(0x1234, 0)
	if m.Equal(c) {
		t.Error("mutated clone compares equal")
	}
}

func TestMemoryZeroPageEqual(t *testing.T) {
	a := NewMemory()
	b := NewMemory()
	a.StoreByte(100, 0) // allocates an all-zero page in a only
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("all-zero page should compare equal to absent page")
	}
}

func TestMemoryStraddlePage(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3)
	m.Write(addr, 0x1122334455667788, 8)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Errorf("straddling read = %#x", got)
	}
	if m.Pages() != 2 {
		t.Errorf("pages = %d, want 2", m.Pages())
	}
}

func TestMemoryReadStoreBytes(t *testing.T) {
	m := NewMemory()
	m.StoreBytes(10, []byte{1, 2, 3})
	got := m.LoadBytes(9, 5)
	want := []byte{0, 1, 2, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LoadBytes = %v, want %v", got, want)
		}
	}
}

// Property: for any small program of straight-line ALU ops, executing
// twice from the same initial state yields identical final state
// (determinism — the foundation of redundant execution).
func TestQuickDeterminism(t *testing.T) {
	f := func(seedRegs [8]uint64, opsRaw [16]uint16) bool {
		build := func() *Machine {
			prog := make([]isa.Inst, 0, len(opsRaw)+1)
			for _, raw := range opsRaw {
				ops := []isa.Opcode{isa.ADD, isa.SUB, isa.XOR, isa.MUL, isa.SLT, isa.SLL, isa.AND, isa.OR}
				in := isa.Inst{
					Op:  ops[int(raw)%len(ops)],
					Rd:  uint8(raw>>3) % 8,
					Rs1: uint8(raw>>6) % 8,
					Rs2: uint8(raw>>9) % 8,
				}
				prog = append(prog, in)
			}
			prog = append(prog, isa.Inst{Op: isa.HALT})
			m := &Machine{Mem: NewMemory(), Prog: prog}
			copy(m.Regs[1:], seedRegs[1:])
			return m
		}
		m1, m2 := build(), build()
		if err := m1.Run(100); err != nil {
			return false
		}
		if err := m2.Run(100); err != nil {
			return false
		}
		return SameArchState(m1, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnsignedLoadsAndBranches(t *testing.T) {
	m := run(t, `
		la r10, buf
		li r1, -1
		sb r1, 0(r10)
		lbu r2, 0(r10)     ; 0xff zero-extended
		sh r1, 8(r10)
		lhu r3, 8(r10)     ; 0xffff
		sw r1, 16(r10)
		lwu r4, 16(r10)    ; 0xffffffff
		li r5, -1          ; unsigned max
		li r6, 1
		bltu r6, r5, t1    ; 1 < max unsigned: taken
		li r7, 99
	t1:
		bgeu r5, r6, t2    ; max >= 1 unsigned: taken
		li r8, 99
	t2:
		halt
	.data
	buf: .space 32
	`)
	if m.Regs[2] != 0xff || m.Regs[3] != 0xffff || m.Regs[4] != 0xffffffff {
		t.Errorf("unsigned loads: %#x %#x %#x", m.Regs[2], m.Regs[3], m.Regs[4])
	}
	if m.Regs[7] == 99 || m.Regs[8] == 99 {
		t.Error("unsigned branches mispredicted direction")
	}
}
