package emu_test

import (
	"testing"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/proggen"
)

// fuzzSeeds is how many random programs the differential tests sweep.
// Kept modest so the -race -count=3 CI job stays fast; any failing
// seed reproduces deterministically.
const fuzzSeeds = 60

// sameLaneState fails the test unless lane i of L matches machine m
// bit for bit: registers, PC, halt flag, instruction count and output.
func sameLaneState(t *testing.T, L *emu.Lanes, i int, m *emu.Machine, tag string) {
	t.Helper()
	s := L.Snapshot(i)
	if s.Regs != m.Regs || s.FRegs != m.FRegs || s.PC != m.PC {
		t.Fatalf("%s: architectural state diverged (lane pc=%#x machine pc=%#x)", tag, s.PC, m.PC)
	}
	if L.Halted[i] != m.Halted || L.InstCount[i] != m.InstCount {
		t.Fatalf("%s: halted/instcount diverged: lane (%v,%d) machine (%v,%d)",
			tag, L.Halted[i], L.InstCount[i], m.Halted, m.InstCount)
	}
	out := L.Output[i]
	if len(out) != len(m.Output) {
		t.Fatalf("%s: output length diverged: lane %d machine %d", tag, len(out), len(m.Output))
	}
	for k := range out {
		if out[k] != m.Output[k] {
			t.Fatalf("%s: output[%d] diverged: lane %#x machine %#x", tag, k, out[k], m.Output[k])
		}
	}
}

// TestLanesMatchMachine steps a lane and a scalar machine over random
// programs in lockstep, comparing full architectural state after every
// instruction. This is the semantic contract of the SoA engine: the
// lane step switch must mirror Machine.Step exactly.
func TestLanesMatchMachine(t *testing.T) {
	for seed := uint64(1); seed <= fuzzSeeds; seed++ {
		prog := proggen.Random(seed)
		m := emu.New(prog)
		L := emu.NewLanes(emu.Decode(prog), 1)
		for step := 0; step < 100_000 && !m.Halted; step++ {
			cm, errM := m.Step()
			cl, errL := L.Step(0)
			if (errM == nil) != (errL == nil) {
				t.Fatalf("seed %d step %d: error mismatch: machine %v lane %v", seed, step, errM, errL)
			}
			if errM != nil {
				break
			}
			if cm != cl {
				t.Fatalf("seed %d step %d: commit mismatch:\nmachine %+v\nlane    %+v", seed, step, cm, cl)
			}
			sameLaneState(t, L, 0, m, "clean run")
		}
		if !m.Halted {
			t.Fatalf("seed %d: program did not halt", seed)
		}
	}
}

// TestLanesMatchMachineWithFlips injects the same random bit flip into
// a lane and a scalar machine mid-run, then runs both to completion
// (or a budget), asserting bit-identical architectural state, halt
// behavior and output per trial — the lane engine must corrupt exactly
// like the scalar engine does.
func TestLanesMatchMachineWithFlips(t *testing.T) {
	rng := newTestRNG(0x51a7e5)
	for seed := uint64(1); seed <= fuzzSeeds; seed++ {
		prog := proggen.Random(seed)
		g := emu.New(prog)
		if err := g.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: golden: %v", seed, err)
		}
		for trial := 0; trial < 6; trial++ {
			strike := rng.next() % (g.InstCount + 2)
			reg := uint8(1 + rng.next()%uint64(isa.NumRegs-1))
			mask := uint64(1) << (rng.next() % 64)
			fp := rng.next()%4 == 0
			pcFlip := rng.next()%8 == 0

			m := emu.New(prog)
			L := emu.NewLanes(emu.Decode(prog), 2)
			// Step both to the strike point, flip, then continue on the
			// scalar per-lane path (the lockstep path is exercised by
			// the fault kernel tests).
			budget := g.InstCount * 4
			for i := uint64(0); i < strike && !m.Halted; i++ {
				stepBoth(t, seed, m, L)
			}
			switch {
			case pcFlip:
				m.PC ^= 0x14
				L.XorPC(1, 0x14)
			case fp:
				m.FRegs[reg] ^= mask
				L.XorFReg(1, reg, mask)
			default:
				m.Regs[reg] ^= mask
				L.XorReg(1, reg, mask)
			}
			for i := uint64(0); i < budget && !m.Halted; i++ {
				stepBoth(t, seed, m, L)
			}
			sameLaneState(t, L, 1, m, "post-flip")
		}
	}
}

// stepBoth advances machine and lane 1 together, requiring identical
// error behavior and state.
func stepBoth(t *testing.T, seed uint64, m *emu.Machine, L *emu.Lanes) {
	t.Helper()
	_, errM := m.Step()
	_, errL := L.Step(1)
	if (errM == nil) != (errL == nil) {
		t.Fatalf("seed %d: error mismatch: machine %v lane %v", seed, errM, errL)
	}
	if errM != nil {
		// Both faulted the fetch identically; the machines stay frozen.
		if m.Halted != L.Halted[1] {
			t.Fatalf("seed %d: halt mismatch after fetch fault", seed)
		}
	}
	sameLaneState(t, L, 1, m, "lockstep")
}

// TestLanesForkAndOverlay checks the copy-on-write fork contract: a
// forked lane reproduces the source state, then diverges privately —
// writes in one lane never leak into another or into the shared image.
func TestLanesForkAndOverlay(t *testing.T) {
	prog := proggen.Random(7)
	dec := emu.Decode(prog)
	L := emu.NewLanes(dec, 3)
	for i := 0; i < 20; i++ {
		if _, err := L.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	L.Fork(1, 0)
	L.Fork(2, 0)
	if L.Snapshot(1) != L.Snapshot(0) || L.PC[2] != L.PC[0] {
		t.Fatal("fork did not reproduce source state")
	}
	// Private writes: lane 1 writes a sentinel; lanes 0 and 2 and the
	// shared image must not observe it.
	addr := prog.DataBase + 3
	L.Mem[1].Write(addr, 0xabcdef, 8)
	if got := L.Mem[1].Read(addr, 8); got != 0xabcdef {
		t.Fatalf("lane 1 readback: %#x", got)
	}
	if L.Mem[0].Read(addr, 8) == 0xabcdef || L.Mem[2].Read(addr, 8) == 0xabcdef {
		t.Fatal("overlay write leaked across lanes")
	}
	if dec.Image().Read(addr, 8) == 0xabcdef {
		t.Fatal("overlay write leaked into the shared image")
	}
	if L.Mem[1].Dirty() == 0 {
		t.Fatal("dirty tracking lost the write")
	}
}

// TestDecodeShared pins the decode-cache satellite: two machines (and
// the lanes) built from one *asm.Program share one Decoded value, and
// machines still start from identical, independent memory.
func TestDecodeShared(t *testing.T) {
	prog := proggen.Random(11)
	if emu.Decode(prog) != emu.Decode(prog) {
		t.Fatal("Decode did not cache")
	}
	a, b := emu.New(prog), emu.New(prog)
	a.Mem.StoreByte(prog.DataBase, 0xff)
	if b.Mem.LoadByte(prog.DataBase) == 0xff {
		t.Fatal("machines share memory")
	}
	if &a.Prog[0] != &b.Prog[0] {
		t.Fatal("machines do not share the decoded instruction slice")
	}
}

// TestDecodeCacheBounded pins the cache reset: decoding far more
// programs than the cap must not grow the cache without bound (the
// serve plane assembles per-request programs).
func TestDecodeCacheBounded(t *testing.T) {
	for i := uint64(0); i < 600; i++ {
		p := proggen.Random(1000 + i)
		if emu.Decode(p) == nil {
			t.Fatal("nil decode")
		}
	}
}

// testRNG is a private splitmix64 for test-site derivation.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed} }

func (r *testRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

var _ = asm.Program{} // keep the asm import for the DataBase reference
