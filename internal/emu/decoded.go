package emu

import (
	"sync"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/isa"
)

// Decoded is a program decoded once and shared by every machine that
// executes it: both cores of a redundant pair, the golden reference
// run, and every lane of a batched fault campaign. It precomputes the
// per-instruction metadata the hot loops would otherwise re-derive
// from the opcode table on every fetch, plus the initial data image so
// each new machine clones pages instead of replaying byte stores.
type Decoded struct {
	Prog  *asm.Program
	Insts []isa.Inst
	// Class[i] and Width[i] cache Insts[i].Class() and
	// Insts[i].Op.MemWidth() (Width is 0 for non-memory ops).
	Class []isa.Class
	Width []uint8

	// image is the initial memory contents (the assembled data section
	// at prog.DataBase). It is built once and never written again; lane
	// overlays read through to it and machines clone it.
	image *Memory
}

// decCache shares Decoded programs across machines. Entries are keyed
// by program identity, so re-decoding only happens for genuinely new
// *asm.Program values. The cache is reset when it grows past
// decCacheMax so long-lived servers that assemble per-request programs
// do not accumulate dead entries.
var (
	decCacheMu sync.Mutex
	decCache   = make(map[*asm.Program]*Decoded)
)

const decCacheMax = 128

// Decode returns the shared pre-decoded form of prog, building and
// caching it on first use.
func Decode(prog *asm.Program) *Decoded {
	decCacheMu.Lock()
	d := decCache[prog]
	decCacheMu.Unlock()
	if d != nil {
		return d
	}
	d = &Decoded{
		Prog:  prog,
		Insts: prog.Insts,
		Class: make([]isa.Class, len(prog.Insts)),
		Width: make([]uint8, len(prog.Insts)),
		image: NewMemory(),
	}
	for i, in := range prog.Insts {
		d.Class[i] = in.Class()
		d.Width[i] = uint8(in.Op.MemWidth())
	}
	d.image.StoreBytes(prog.DataBase, prog.Data)
	decCacheMu.Lock()
	if len(decCache) >= decCacheMax {
		decCache = make(map[*asm.Program]*Decoded)
	}
	decCache[prog] = d
	decCacheMu.Unlock()
	return d
}

// Image returns the program's initial memory contents. The returned
// memory is shared and must not be written; clone it (or read through
// an Overlay) instead.
func (d *Decoded) Image() *Memory { return d.image }

// NewMachine creates a scalar machine over the shared decode, cloning
// the initial data image instead of re-storing the data section.
func (d *Decoded) NewMachine() *Machine {
	return &Machine{Mem: d.image.Clone(), Prog: d.Insts}
}
