package emu

import "encoding/binary"

const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse, paged, little-endian byte-addressable memory.
// Pages are allocated on first touch; unwritten bytes read as zero.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&(pageSize-1)]
	}
	return 0
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.page(addr, true)[addr&(pageSize-1)] = b
}

// Read returns width bytes at addr as a little-endian unsigned integer.
// Width must be 1, 2, 4 or 8; accesses may straddle page boundaries.
func (m *Memory) Read(addr uint64, width int) uint64 {
	var buf [8]byte
	for i := 0; i < width; i++ {
		buf[i] = m.LoadByte(addr + uint64(i))
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// Write stores the low width bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, v uint64, width int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	for i := 0; i < width; i++ {
		m.StoreByte(addr+uint64(i), buf[i])
	}
}

// StoreBytes copies b into memory starting at addr.
func (m *Memory) StoreBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.StoreByte(addr+uint64(i), v)
	}
}

// LoadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) LoadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint64(i))
	}
	return out
}

// Clone returns a deep copy of the memory. Used by fault-injection
// campaigns to snapshot and compare machine states.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pn, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		c.pages[pn] = cp
	}
	return c
}

// Equal reports whether two memories have identical contents. Pages of
// all zeros are treated as absent.
func (m *Memory) Equal(o *Memory) bool {
	return m.coveredBy(o) && o.coveredBy(m)
}

func (m *Memory) coveredBy(o *Memory) bool {
	for pn, p := range m.pages {
		op := o.pages[pn]
		if op == nil {
			if *p != ([pageSize]byte{}) {
				return false
			}
			continue
		}
		if *p != *op {
			return false
		}
	}
	return true
}

// Pages returns the number of allocated pages (for tests and stats).
func (m *Memory) Pages() int { return len(m.pages) }
