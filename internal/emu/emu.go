// Package emu is the functional (architecturally exact) emulator for the
// simulator's ISA. It executes assembled programs instruction by
// instruction, maintaining the architectural register files, PC and data
// memory.
//
// The emulator plays three roles in the reproduction:
//
//  1. it generates execution-derived traces for the timing model
//     (internal/trace adapts the commit hook);
//  2. it is the golden reference for fault-injection campaigns — a fault
//     is "recovered" iff the faulted redundant pair finishes with the
//     same architectural state and output as an un-faulted run;
//  3. it runs the example programs.
package emu

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/isa"
)

// Syscall service codes (selected by r2 at a SYSCALL instruction).
const (
	SysPrintInt   = 1  // append r4 to Output
	SysPrintFloat = 2  // append bits of f12 to Output
	SysExit       = 10 // halt the machine
)

// Commit describes one architecturally committed instruction. It is the
// payload of the OnCommit hook and carries everything the timing model
// and the redundancy schemes need: the PC, the instruction, the effective
// address of memory operations, branch direction, and the next PC.
type Commit struct {
	Seq    uint64 // dynamic instruction number, starting at 0
	PC     uint64
	Inst   isa.Inst
	Addr   uint64 // effective address (memory ops only)
	Data   uint64 // value stored / loaded (memory ops only)
	Taken  bool   // branches: condition outcome; jumps/traps: true
	NextPC uint64
}

// Machine is a single functional core.
type Machine struct {
	Regs  [isa.NumRegs]uint64 // integer registers; r0 reads as zero
	FRegs [isa.NumRegs]uint64 // float64 bit patterns
	PC    uint64
	Mem   *Memory

	Prog   []isa.Inst
	Halted bool

	// Output collects SysPrint* values, the program's observable result.
	Output []uint64

	// InstCount is the number of instructions committed so far.
	InstCount uint64

	// OnCommit, when non-nil, is invoked after every committed
	// instruction.
	OnCommit func(Commit)
}

// New creates a machine loaded with the given program. The data section
// is copied into memory at prog.DataBase and the PC is set to 0. The
// program is decoded through the shared decode cache, so both cores of
// a redundant pair and every trial of a campaign reuse one decode and
// one initial data image.
func New(prog *asm.Program) *Machine {
	return Decode(prog).NewMachine()
}

// ErrNoProgram is returned by Step when the PC points outside the text
// section.
var ErrNoProgram = errors.New("emu: PC outside program text")

// ErrMaxSteps is returned by Run when the step budget is exhausted.
var ErrMaxSteps = errors.New("emu: step budget exhausted")

// Step executes one instruction. It returns the commit record and any
// execution error. Stepping a halted machine is a no-op.
func (m *Machine) Step() (Commit, error) {
	if m.Halted {
		return Commit{}, nil
	}
	idx := m.PC / 4
	if m.PC%4 != 0 || idx >= uint64(len(m.Prog)) {
		return Commit{}, fmt.Errorf("%w: pc=%#x", ErrNoProgram, m.PC)
	}
	in := m.Prog[idx]
	c := Commit{Seq: m.InstCount, PC: m.PC, Inst: in, NextPC: m.PC + 4}

	rs1 := m.Regs[in.Rs1]

	switch in.Op {
	case isa.NOP:

	case isa.ADD:
		m.setReg(in.Rd, rs1+m.Regs[in.Rs2])
	case isa.SUB:
		m.setReg(in.Rd, rs1-m.Regs[in.Rs2])
	case isa.AND:
		m.setReg(in.Rd, rs1&m.Regs[in.Rs2])
	case isa.OR:
		m.setReg(in.Rd, rs1|m.Regs[in.Rs2])
	case isa.XOR:
		m.setReg(in.Rd, rs1^m.Regs[in.Rs2])
	case isa.NOR:
		m.setReg(in.Rd, ^(rs1 | m.Regs[in.Rs2]))
	case isa.SLT:
		m.setReg(in.Rd, b2u(int64(rs1) < int64(m.Regs[in.Rs2])))
	case isa.SLTU:
		m.setReg(in.Rd, b2u(rs1 < m.Regs[in.Rs2]))
	case isa.SLL:
		m.setReg(in.Rd, rs1<<(m.Regs[in.Rs2]&63))
	case isa.SRL:
		m.setReg(in.Rd, rs1>>(m.Regs[in.Rs2]&63))
	case isa.SRA:
		m.setReg(in.Rd, uint64(int64(rs1)>>(m.Regs[in.Rs2]&63)))
	case isa.MUL:
		m.setReg(in.Rd, rs1*m.Regs[in.Rs2])
	case isa.MULH:
		m.setReg(in.Rd, mulh(int64(rs1), int64(m.Regs[in.Rs2])))
	case isa.DIV:
		m.setReg(in.Rd, sdiv(int64(rs1), int64(m.Regs[in.Rs2])))
	case isa.REM:
		m.setReg(in.Rd, srem(int64(rs1), int64(m.Regs[in.Rs2])))

	case isa.ADDI:
		m.setReg(in.Rd, rs1+uint64(in.Imm))
	case isa.ANDI:
		m.setReg(in.Rd, rs1&uint64(in.Imm))
	case isa.ORI:
		m.setReg(in.Rd, rs1|uint64(in.Imm))
	case isa.XORI:
		m.setReg(in.Rd, rs1^uint64(in.Imm))
	case isa.SLTI:
		m.setReg(in.Rd, b2u(int64(rs1) < in.Imm))
	case isa.SLLI:
		m.setReg(in.Rd, rs1<<(uint64(in.Imm)&63))
	case isa.SRLI:
		m.setReg(in.Rd, rs1>>(uint64(in.Imm)&63))
	case isa.SRAI:
		m.setReg(in.Rd, uint64(int64(rs1)>>(uint64(in.Imm)&63)))
	case isa.LUI:
		m.setReg(in.Rd, uint64(in.Imm)<<16)

	case isa.LB, isa.LH, isa.LW, isa.LD:
		c.Addr = rs1 + uint64(in.Imm)
		w := in.Op.MemWidth()
		v := m.Mem.Read(c.Addr, w)
		v = signExtend(v, w)
		c.Data = v
		m.setReg(in.Rd, v)
	case isa.LBU, isa.LHU, isa.LWU:
		c.Addr = rs1 + uint64(in.Imm)
		v := m.Mem.Read(c.Addr, in.Op.MemWidth())
		c.Data = v
		m.setReg(in.Rd, v)
	case isa.FLD:
		c.Addr = rs1 + uint64(in.Imm)
		c.Data = m.Mem.Read(c.Addr, 8)
		m.FRegs[in.Rd] = c.Data
	case isa.SB, isa.SH, isa.SW, isa.SD:
		c.Addr = rs1 + uint64(in.Imm)
		c.Data = m.Regs[in.Rs2]
		m.Mem.Write(c.Addr, c.Data, in.Op.MemWidth())
	case isa.FSD:
		c.Addr = rs1 + uint64(in.Imm)
		c.Data = m.FRegs[in.Rs2]
		m.Mem.Write(c.Addr, c.Data, 8)

	case isa.BEQ:
		c.Taken = rs1 == m.Regs[in.Rs2]
	case isa.BNE:
		c.Taken = rs1 != m.Regs[in.Rs2]
	case isa.BLT:
		c.Taken = int64(rs1) < int64(m.Regs[in.Rs2])
	case isa.BGE:
		c.Taken = int64(rs1) >= int64(m.Regs[in.Rs2])
	case isa.BLTU:
		c.Taken = rs1 < m.Regs[in.Rs2]
	case isa.BGEU:
		c.Taken = rs1 >= m.Regs[in.Rs2]

	case isa.J:
		c.Taken = true
		c.NextPC = uint64(in.Imm)
	case isa.JAL:
		c.Taken = true
		m.setReg(in.Rd, m.PC+4)
		c.NextPC = uint64(in.Imm)
	case isa.JR:
		c.Taken = true
		c.NextPC = rs1
	case isa.JALR:
		c.Taken = true
		target := rs1 // read before link in case Rd == Rs1
		m.setReg(in.Rd, m.PC+4)
		c.NextPC = target

	case isa.FADD:
		m.setF(in.Rd, m.f(in.Rs1)+m.f(in.Rs2))
	case isa.FSUB:
		m.setF(in.Rd, m.f(in.Rs1)-m.f(in.Rs2))
	case isa.FMUL:
		m.setF(in.Rd, m.f(in.Rs1)*m.f(in.Rs2))
	case isa.FDIV:
		m.setF(in.Rd, m.f(in.Rs1)/m.f(in.Rs2))
	case isa.FMIN:
		m.setF(in.Rd, math.Min(m.f(in.Rs1), m.f(in.Rs2)))
	case isa.FMAX:
		m.setF(in.Rd, math.Max(m.f(in.Rs1), m.f(in.Rs2)))
	case isa.FCVTIF:
		m.setF(in.Rd, float64(int64(rs1)))
	case isa.FCVTFI:
		m.setReg(in.Rd, uint64(int64(m.f(in.Rs1))))
	case isa.FEQ:
		m.setReg(in.Rd, b2u(m.f(in.Rs1) == m.f(in.Rs2)))
	case isa.FLT:
		m.setReg(in.Rd, b2u(m.f(in.Rs1) < m.f(in.Rs2)))

	case isa.AMOADD:
		c.Addr = rs1
		old := signExtend(m.Mem.Read(c.Addr, 4), 4)
		m.Mem.Write(c.Addr, old+m.Regs[in.Rs2], 4)
		c.Data = old
		m.setReg(in.Rd, old)

	case isa.FENCE:
		// Architecturally a no-op in a single-thread machine.

	case isa.SYSCALL:
		c.Taken = true
		switch m.Regs[2] {
		case SysPrintInt:
			c.Data = m.Regs[4] // expose the output to fingerprinting
			m.Output = append(m.Output, m.Regs[4])
		case SysPrintFloat:
			c.Data = m.FRegs[12]
			m.Output = append(m.Output, m.FRegs[12])
		case SysExit:
			m.Halted = true
		}

	case isa.HALT:
		c.Taken = true
		m.Halted = true

	default:
		return Commit{}, fmt.Errorf("emu: unimplemented opcode %v at pc=%#x", in.Op, m.PC)
	}

	if in.Class() == isa.ClassBranch && c.Taken {
		c.NextPC = m.PC + uint64(in.Imm)
	}
	m.PC = c.NextPC
	m.InstCount++
	if m.OnCommit != nil {
		m.OnCommit(c)
	}
	return c, nil
}

// Run executes until the machine halts or maxSteps instructions have
// been committed, whichever comes first.
func (m *Machine) Run(maxSteps uint64) error {
	for i := uint64(0); i < maxSteps; i++ {
		if m.Halted {
			return nil
		}
		if _, err := m.Step(); err != nil {
			return err
		}
	}
	if m.Halted {
		return nil
	}
	return ErrMaxSteps
}

func (m *Machine) setReg(rd uint8, v uint64) {
	if rd != 0 {
		m.Regs[rd] = v
	}
}

func (m *Machine) f(r uint8) float64       { return math.Float64frombits(m.FRegs[r]) }
func (m *Machine) setF(r uint8, v float64) { m.FRegs[r] = math.Float64bits(v) }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func signExtend(v uint64, width int) uint64 {
	switch width {
	case 1:
		return uint64(int64(int8(v)))
	case 2:
		return uint64(int64(int16(v)))
	case 4:
		return uint64(int64(int32(v)))
	}
	return v
}

func mulh(a, b int64) uint64 {
	// 128-bit signed high product via 32-bit limbs.
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
	}
	if b < 0 {
		ub = uint64(-b)
	}
	hi, lo := umul128(ua, ub)
	if neg {
		// two's complement negate the 128-bit product
		lo = ^lo + 1
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return hi
}

func umul128(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	carry := t >> 32
	t = a1*b0 + carry
	m0 := t & mask
	m1 := t >> 32
	t = a0*b1 + m0
	lo |= (t & mask) << 32
	hi = a1*b1 + m1 + t>>32
	return hi, lo
}

func sdiv(a, b int64) uint64 {
	if b == 0 {
		return ^uint64(0) // RISC-V style: all ones
	}
	if a == math.MinInt64 && b == -1 {
		return uint64(a) // overflow wraps
	}
	return uint64(a / b)
}

func srem(a, b int64) uint64 {
	if b == 0 {
		return uint64(a)
	}
	if a == math.MinInt64 && b == -1 {
		return 0
	}
	return uint64(a % b)
}

// ArchState is a snapshot of the architectural state a redundant core
// pair copies during UnSync recovery: register files and PC. Memory is
// deliberately excluded — under a write-through L1, memory below the L1
// is already consistent (see paper §III-C1).
type ArchState struct {
	Regs  [isa.NumRegs]uint64
	FRegs [isa.NumRegs]uint64
	PC    uint64
}

// Snapshot captures the architectural state.
func (m *Machine) Snapshot() ArchState {
	return ArchState{Regs: m.Regs, FRegs: m.FRegs, PC: m.PC}
}

// Restore overwrites the architectural state — the emulator-level
// equivalent of UnSync's "copy architectural state from the error-free
// core".
func (m *Machine) Restore(s ArchState) {
	m.Regs = s.Regs
	m.FRegs = s.FRegs
	m.PC = s.PC
	m.Regs[0] = 0
}

// SameArchState reports whether two machines agree on registers and PC.
func SameArchState(a, b *Machine) bool {
	return a.Regs == b.Regs && a.FRegs == b.FRegs && a.PC == b.PC
}

// SameOutput reports whether two machines produced identical output.
func SameOutput(a, b *Machine) bool {
	return slices.Equal(a.Output, b.Output)
}
