package experiments

import (
	"context"

	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/stats"
	"github.com/cmlasu/unsync/internal/sweep"
	"github.com/cmlasu/unsync/internal/trace"
)

// SERPoint is one error-rate sample of the §VI-C sweep.
type SERPoint struct {
	Rate       float64 // errors per instruction
	UnSyncIPC  float64
	ReunionIPC float64
}

// SERResult captures the soft-error-rate study: the analytic IPC curves
// across rates, timing-simulated validation points at high rates, and
// the break-even SER at which the two schemes' throughput crosses.
type SERResult struct {
	ErrorFreeUnSync  float64 // suite-mean IPC, no errors
	ErrorFreeReunion float64
	CostUnSync       float64 // recovery stall cycles per error
	CostReunion      float64 // rollback stall cycles per error

	Analytic []SERPoint // over Logspace(1e-17, 1e-2)
	Injected []SERPoint // timing-simulated with injected errors

	BreakEvenSER float64
}

// serInjectionRates are the (unrealistically high) rates at which
// error injection measurably moves IPC within a short window; they
// validate the analytic model.
var serInjectionRates = []float64{1e-4, 1e-3}

// serSeed seeds the Poisson arrival process of the injected validation
// points, so reruns land errors on the same committed instructions.
const serSeed = 0xfeed

// SERSweep reproduces §VI-C: projected IPC for both schemes across SER
// rates from 1e-17 (the 90 nm reality, 2.89e-17) up to the hypothetical
// break-even region (~1.29e-3 in the paper). Below ~1e-7 the curves are
// flat — errors are simply too rare to matter — so UnSync's error-free
// advantage decides, and only at ~1e-3 errors/instruction does
// Reunion's cheaper recovery catch up.
func SERSweep(ctx context.Context, o Options) (SERResult, error) {
	type pairIPC struct{ us, re float64 }
	runs, err := sweep.MapContext(ctx, o.Benchmarks, o.Workers, func(ctx context.Context, p trace.Profile) (pairIPC, error) {
		us, err := cmp.RunContext(ctx, cmp.UnSync, o.RC, p)
		if err != nil {
			return pairIPC{}, err
		}
		re, err := cmp.RunContext(ctx, cmp.Reunion, o.RC, p)
		if err != nil {
			return pairIPC{}, err
		}
		return pairIPC{us: us.IPC, re: re.IPC}, nil
	})
	if err != nil {
		return SERResult{}, err
	}
	var usIPCs, reIPCs []float64
	for _, r := range runs {
		usIPCs = append(usIPCs, r.us)
		reIPCs = append(reIPCs, r.re)
	}

	res := SERResult{
		ErrorFreeUnSync:  stats.Mean(usIPCs),
		ErrorFreeReunion: stats.Mean(reIPCs),
	}

	// Per-error costs from the configured recovery models: UnSync
	// copies the architectural state and a (nearly full) L1 through
	// the L2; Reunion rolls back one fingerprint window.
	uc := o.RC.UnSync
	l1Lines := uint64(o.RC.Mem.L1D.SizeBytes / o.RC.Mem.L1D.LineBytes)
	res.CostUnSync = float64(uc.RecoveryBase +
		uint64(2*isa.NumRegs+1)*uc.RecoveryPerReg + l1Lines*uc.RecoveryPerLine)
	res.CostReunion = float64(2*o.RC.Reunion.CompareLatency + 2*uint64(o.RC.Reunion.FI))

	for _, rate := range sweep.Logspace(1e-17, 1e-2, 16) {
		res.Analytic = append(res.Analytic, SERPoint{
			Rate:       rate,
			UnSyncIPC:  fault.EffectiveIPC(res.ErrorFreeUnSync, res.CostUnSync, rate),
			ReunionIPC: fault.EffectiveIPC(res.ErrorFreeReunion, res.CostReunion, rate),
		})
	}

	res.BreakEvenSER = fault.BreakEven(
		res.ErrorFreeUnSync, res.CostUnSync,
		res.ErrorFreeReunion, res.CostReunion)

	// Timing-simulated validation on one representative benchmark,
	// through the same Drive engine as every other run: each arrival
	// reaches the scheme's own Injector (UnSync schedules an EIH
	// recovery after its configured detection latency; Reunion corrupts
	// the fingerprint window in flight, forcing a detected mismatch and
	// rollback).
	prof := o.Benchmarks[0]
	for _, rate := range serInjectionRates {
		plan := cmp.FaultPlan{SER: fault.SER{PerInst: rate}, Seed: serSeed}
		us, err := cmp.RunInjectedContext(ctx, cmp.UnSync, o.RC, prof, plan)
		if err != nil {
			return res, err
		}
		re, err := cmp.RunInjectedContext(ctx, cmp.Reunion, o.RC, prof, plan)
		if err != nil {
			return res, err
		}
		res.Injected = append(res.Injected, SERPoint{Rate: rate, UnSyncIPC: us.IPC, ReunionIPC: re.IPC})
	}
	return res, nil
}

// Render produces the sweep's table form.
func (r SERResult) Render() *report.Table {
	t := report.New("SER sweep (§VI-C) — effective IPC vs soft-error rate",
		"SER (errors/instr)", "UnSync IPC", "Reunion IPC", "winner")
	for _, p := range r.Analytic {
		winner := "unsync"
		if p.ReunionIPC > p.UnSyncIPC {
			winner = "reunion"
		}
		t.Row(report.E(p.Rate), report.F(p.UnSyncIPC, 3), report.F(p.ReunionIPC, 3), winner)
	}
	for _, p := range r.Injected {
		t.Row(report.E(p.Rate)+" (injected)", report.F(p.UnSyncIPC, 3), report.F(p.ReunionIPC, 3), "")
	}
	t.Note("per-error cost: UnSync %.0f cycles (state+L1 copy), Reunion %.0f cycles (rollback)",
		r.CostUnSync, r.CostReunion)
	t.Note("break-even SER = %s errors/instruction (paper: 1.29e-03)", report.E(r.BreakEvenSER))
	t.Note("at the real 90nm rate (2.89e-17) both curves are flat; UnSync's error-free advantage decides")
	return t
}
