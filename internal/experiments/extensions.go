package experiments

import (
	"context"

	"fmt"

	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/hwmodel"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/sweep"
	"github.com/cmlasu/unsync/internal/trace"
)

// This file holds the extension studies beyond the paper's evaluation:
// the §VIII "varied degrees of redundancy" trade-off (DMR pair vs TMR
// triple) and a chip-level co-scheduling interference study on the
// 4-core Table I machine.

// ---- §VIII: DMR vs TMR redundancy degrees ----

// RedundancyPoint compares the two degrees at one error rate.
type RedundancyPoint struct {
	Rate   float64 // errors per instruction
	DMRIPC float64 // UnSync pair, stop-copy-resume recovery
	TMRIPC float64 // TMR triple, majority masking
}

// RedundancyResult is the whole §VIII study.
type RedundancyResult struct {
	Benchmark string
	Points    []RedundancyPoint

	// Hardware cost of the third core (from the synthesis model).
	DMRAreaUM2 float64 // 2 cores + CB
	TMRAreaUM2 float64 // 3 cores + voter/CB
}

// redundancySeed seeds the Poisson process of the §VIII study.
const redundancySeed = 0xabcd

// RedundancyStudy measures, on one benchmark, how the DMR pair and the
// TMR triple degrade as the error rate grows: the pair pays a
// stop-both-cores recovery per error, the triple masks errors by
// resynchronizing only the struck core while the quorum keeps running.
// The flip side — the third core's area and power — comes from the
// synthesis model. The TMR triple reports quorum-pace IPC (the median
// core's committed count over the window; see tmr.Triple.IPC).
func RedundancyStudy(ctx context.Context, o Options, benchmark string, rates []float64) (RedundancyResult, error) {
	prof, ok := trace.ByName(benchmark)
	if !ok {
		return RedundancyResult{}, fmt.Errorf("experiments: unknown benchmark %q", benchmark)
	}
	if len(rates) == 0 {
		rates = []float64{0, 1e-5, 1e-4, 1e-3}
	}

	// The triple's buffers mirror the pair's CB sizing so the two
	// degrees differ only in replica count and recovery mechanism.
	rc := o.RC
	rc.TMR.CBEntries = rc.UnSync.CBEntries

	res := RedundancyResult{Benchmark: benchmark}
	core := hwmodel.UnSyncCore().AreaUM2()
	res.DMRAreaUM2 = 2*core + hwmodel.CBAreaUM2(rc.UnSync.CBEntries)
	res.TMRAreaUM2 = 3*core + 1.5*hwmodel.CBAreaUM2(rc.UnSync.CBEntries) // voter + third buffer

	pts, err := sweep.MapContext(ctx, rates, o.Workers, func(ctx context.Context, rate float64) (RedundancyPoint, error) {
		pt := RedundancyPoint{Rate: rate}
		plan := cmp.FaultPlan{SER: fault.SER{PerInst: rate}, Seed: redundancySeed}
		dmr, err := cmp.RunInjectedContext(ctx, cmp.UnSync, rc, prof, plan)
		if err != nil {
			return pt, err
		}
		pt.DMRIPC = dmr.IPC
		tmrRes, err := cmp.RunInjectedContext(ctx, cmp.TMR, rc, prof, plan)
		if err != nil {
			return pt, err
		}
		pt.TMRIPC = tmrRes.IPC
		return pt, nil
	})
	if err != nil {
		return res, err
	}
	res.Points = pts
	return res, nil
}

// Render produces the study's table form.
func (r RedundancyResult) Render() *report.Table {
	t := report.New(fmt.Sprintf("Extension §VIII — redundancy degrees on %s (DMR pair vs TMR triple)", r.Benchmark),
		"SER (errors/instr)", "DMR pair IPC", "TMR triple IPC", "TMR advantage")
	for _, p := range r.Points {
		adv := "-"
		if p.DMRIPC > 0 {
			adv = report.Pct(100 * (p.TMRIPC - p.DMRIPC) / p.DMRIPC)
		}
		rate := report.E(p.Rate)
		if p.Rate == 0 {
			rate = "error-free"
		}
		t.Row(rate, report.F(p.DMRIPC, 3), report.F(p.TMRIPC, 3), adv)
	}
	t.Row("silicon (um^2)", report.F(r.DMRAreaUM2, 0), report.F(r.TMRAreaUM2, 0),
		report.Pct(100*(r.TMRAreaUM2-r.DMRAreaUM2)/r.DMRAreaUM2))
	t.Note("TMR masks errors (only the struck core resyncs; the quorum never stalls) at ~50%% more silicon")
	return t
}

// ---- chip-level co-scheduling interference ----

// InterferenceRow compares a pair running alone against the same pair
// co-running with a neighbor pair on the shared L2 and bus.
type InterferenceRow struct {
	Benchmark   string
	Neighbor    string
	AloneIPC    float64
	CoRunIPC    float64
	SlowdownPct float64
}

// ChipInterference runs each (benchmark, neighbor) pair on the 4-core
// Table I chip — two UnSync pairs sharing the L2 and the L1↔L2 bus —
// and measures the slowdown versus running alone. The CB drain
// discipline makes the bus a first-order shared resource, so
// write-heavy neighbors interfere most.
func ChipInterference(ctx context.Context, o Options, pairs [][2]string, insts uint64) ([]InterferenceRow, error) {
	if len(pairs) == 0 {
		pairs = [][2]string{
			{"sha", "crc32"},
			{"bzip2", "mcf"},
			{"galgel", "swim"},
		}
	}
	if insts == 0 {
		insts = o.RC.MeasureInsts
	}
	return sweep.MapContext(ctx, pairs, o.Workers, func(ctx context.Context, pr [2]string) (InterferenceRow, error) {
		row := InterferenceRow{Benchmark: pr[0], Neighbor: pr[1]}
		p0, ok := trace.ByName(pr[0])
		if !ok {
			return row, fmt.Errorf("experiments: unknown benchmark %q", pr[0])
		}
		p1, ok := trace.ByName(pr[1])
		if !ok {
			return row, fmt.Errorf("experiments: unknown benchmark %q", pr[1])
		}

		mk := func(p trace.Profile) cmp.StreamFactory {
			return func() trace.Stream { return trace.NewLimit(trace.NewGenerator(p), insts) }
		}

		// Alone: a single pair on the chip.
		alone, err := cmp.NewChip(cmp.UnSync, o.RC, []cmp.StreamFactory{mk(p0)})
		if err != nil {
			return row, err
		}
		if err := alone.Run(o.RC.MaxCycles); err != nil {
			return row, err
		}
		row.AloneIPC = alone.PairIPC(0)

		// Co-running with the neighbor pair.
		co, err := cmp.NewChip(cmp.UnSync, o.RC, []cmp.StreamFactory{mk(p0), mk(p1)})
		if err != nil {
			return row, err
		}
		if err := co.Run(o.RC.MaxCycles); err != nil {
			return row, err
		}
		row.CoRunIPC = co.PairIPC(0)
		if row.AloneIPC > 0 {
			row.SlowdownPct = 100 * (row.AloneIPC - row.CoRunIPC) / row.AloneIPC
		}
		return row, nil
	})
}

// RenderInterference renders the study.
func RenderInterference(rows []InterferenceRow) *report.Table {
	t := report.New("Chip study — co-scheduling interference on the 4-core CMP (2 UnSync pairs)",
		"Benchmark", "Neighbor pair", "Alone IPC", "Co-run IPC", "Slowdown")
	for _, r := range rows {
		t.Row(r.Benchmark, r.Neighbor, report.F(r.AloneIPC, 3), report.F(r.CoRunIPC, 3),
			report.Pct(r.SlowdownPct))
	}
	t.Note("the shared L2 and the CB drain bus are the contended resources")
	return t
}
