package experiments

import (
	"context"

	"fmt"

	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/sweep"
	"github.com/cmlasu/unsync/internal/trace"
)

// Fig6Point is one Communication Buffer size of Figure 6.
type Fig6Point struct {
	CBEntries int
	CBBytes   int
	// Relative performance (UnSync IPC / baseline IPC) per benchmark.
	Relative []float64
	// CBFullStallFrac is the mean fraction of commit-block cycles due
	// to a full CB across benchmarks (the bottleneck indicator).
	MeanCBFullStalls float64
}

// Fig6Result is the whole sweep.
type Fig6Result struct {
	Benchmarks []string
	Points     []Fig6Point
}

// DefaultFig6Sizes sweeps the CB from a few entries to the paper's
// 2 KB / 4 KB points (12 bytes per entry).
func DefaultFig6Sizes() []int {
	return []int{2, 5, 10, 21, 42, 85, 170, 341}
}

// Fig6Benchmarks selects write-intensive workloads, where a small CB
// throttles commit.
func Fig6Benchmarks() []trace.Profile {
	var out []trace.Profile
	for _, name := range []string{"bzip2", "gzip", "qsort", "susan", "mesa", "equake"} {
		if p, ok := trace.ByName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

// Fig6 sweeps the UnSync Communication Buffer size. The paper: small
// CBs stall the cores; 2 KB and 4 KB buffers eliminate the resource
// bottleneck entirely, making UnSync perform almost identically to the
// baseline CMP.
func Fig6(ctx context.Context, o Options, benches []trace.Profile, sizes []int) (Fig6Result, error) {
	if len(benches) == 0 {
		benches = Fig6Benchmarks()
	}
	if len(sizes) == 0 {
		sizes = DefaultFig6Sizes()
	}

	bases, err := sweep.MapContext(ctx, benches, o.Workers, func(ctx context.Context, p trace.Profile) (cmp.Result, error) {
		return cmp.RunContext(ctx, cmp.Baseline, o.RC, p)
	})
	if err != nil {
		return Fig6Result{}, err
	}

	type job struct{ bench, size int }
	var jobs []job
	for si := range sizes {
		for bi := range benches {
			jobs = append(jobs, job{bench: bi, size: si})
		}
	}
	type outcome struct {
		rel       float64
		stallFrac float64
	}
	outs, err := sweep.MapContext(ctx, jobs, o.Workers, func(ctx context.Context, j job) (outcome, error) {
		rc := o.RC
		rc.UnSync.CBEntries = sizes[j.size]
		res, err := cmp.RunContext(ctx, cmp.UnSync, rc, benches[j.bench])
		if err != nil {
			return outcome{}, err
		}
		st := res.UnSyncStats
		var frac float64
		if res.Cycles > 0 && st != nil {
			frac = float64(st.CBFullStall[0]) / float64(res.Cycles)
		}
		return outcome{rel: res.IPC / bases[j.bench].IPC, stallFrac: frac}, nil
	})
	if err != nil {
		return Fig6Result{}, err
	}

	out := Fig6Result{}
	for _, p := range benches {
		out.Benchmarks = append(out.Benchmarks, p.Name)
	}
	entryBytes := o.RC.UnSync.CBEntryBytes
	if entryBytes == 0 {
		entryBytes = 12
	}
	for _, n := range sizes {
		out.Points = append(out.Points, Fig6Point{
			CBEntries: n, CBBytes: n * entryBytes,
			Relative: make([]float64, len(benches)),
		})
	}
	// Index by the job structs themselves (see Fig5): job order and
	// result placement cannot drift apart.
	for i, j := range jobs {
		out.Points[j.size].Relative[j.bench] = outs[i].rel
		out.Points[j.size].MeanCBFullStalls += outs[i].stallFrac / float64(len(benches))
	}
	return out, nil
}

// Render produces the figure's table form.
func (r Fig6Result) Render() *report.Table {
	cols := append([]string{"CB size"}, r.Benchmarks...)
	cols = append(cols, "CB-full stall frac")
	t := report.New("Figure 6 — UnSync performance vs Communication Buffer size (relative to baseline)", cols...)
	for _, p := range r.Points {
		cells := []string{fmt.Sprintf("%d entries (%dB)", p.CBEntries, p.CBBytes)}
		for _, v := range p.Relative {
			cells = append(cells, report.F(v, 3))
		}
		cells = append(cells, report.F(p.MeanCBFullStalls, 4))
		t.Row(cells...)
	}
	t.Note("paper: 2KB/4KB CBs eliminate the occupancy bottleneck; UnSync then matches the baseline CMP")
	return t
}

// Chart renders the sweep as a line chart (the paper's Figure 6 shape).
func (r Fig6Result) Chart() string {
	c := report.NewLineChart("Figure 6 — UnSync relative performance vs CB size", "IPC relative to baseline")
	var xs []string
	for _, p := range r.Points {
		xs = append(xs, fmt.Sprintf("%dB", p.CBBytes))
	}
	c.X(xs...)
	for i, b := range r.Benchmarks {
		var vs []float64
		for _, p := range r.Points {
			vs = append(vs, p.Relative[i])
		}
		c.Series(b, vs...)
	}
	return c.Render()
}

// MeanRelative returns the across-benchmark mean relative performance
// at point index i.
func (r Fig6Result) MeanRelative(i int) float64 {
	if i >= len(r.Points) || len(r.Points[i].Relative) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.Points[i].Relative {
		sum += v
	}
	return sum / float64(len(r.Points[i].Relative))
}
