package experiments

import (
	"context"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/report"
)

// CoverageRow is one fault space's campaign outcome under a scheme: the
// measured SDC/DUE split with its Wilson interval. Together the rows
// reproduce the paper's §VI-D claim quantitatively — covered spaces stay
// SDC-free while the unprotected uncore Communication Buffer (the
// dominant contributor in Cho et al.'s study) shows nonzero SDC.
type CoverageRow struct {
	Space     fault.Space
	Detection fault.Detection
	Result    campaign.Result
}

// CoverageStudy runs one coverage-driven campaign per fault space for
// both schemes, trials injections each, on the ROEC workload.
func CoverageStudy(ctx context.Context, trials, workers int) ([]CoverageRow, []CoverageRow, error) {
	prog := asm.MustAssemble(roecProgram)
	run := func(scheme string, seed uint64) ([]CoverageRow, error) {
		cov := fault.UnSyncCoverage()
		if scheme == campaign.SchemeReunion {
			cov = fault.ReunionCoverage()
		}
		var rows []CoverageRow
		for sp := fault.Space(0); sp < fault.NumSpaces; sp++ {
			res, err := campaign.RunContext(ctx, prog, campaign.Spec{
				Scheme:  scheme,
				Trials:  trials,
				Seed:    seed + uint64(sp),
				Spaces:  []fault.Space{sp},
				Workers: workers,
			})
			if err != nil {
				return rows, err
			}
			rows = append(rows, CoverageRow{
				Space:     sp,
				Detection: cov.Detects(sp),
				Result:    res,
			})
		}
		return rows, nil
	}
	u, err := run(campaign.SchemeUnSync, 201)
	if err != nil {
		return nil, nil, err
	}
	r, err := run(campaign.SchemeReunion, 301)
	if err != nil {
		return u, nil, err
	}
	return u, r, nil
}

// RenderCoverage renders a scheme's per-space campaign table.
func RenderCoverage(scheme string, rows []CoverageRow) *report.Table {
	t := report.New("Coverage-driven injection campaign — "+scheme,
		"Space", "Detection", "Trials", "Benign", "Recovered", "Unrec", "Hang", "SDC", "SDC rate (95% CI)")
	for _, row := range rows {
		c := row.Result.Tally
		t.Row(row.Space.String(), row.Detection.String(),
			report.I(uint64(c.Trials)), report.I(uint64(c.Benign)),
			report.I(uint64(c.Recovered)), report.I(uint64(c.Unrecoverable)),
			report.I(uint64(c.Hangs)), report.I(uint64(c.SDC)),
			report.F(100*row.Result.SDCRate, 1)+"% ["+
				report.F(100*row.Result.SDCLo, 1)+", "+
				report.F(100*row.Result.SDCHi, 1)+"]")
	}
	t.Note("detection resolved per trial from the scheme's coverage map; comm-buffer is the unprotected uncore case")
	return t
}
