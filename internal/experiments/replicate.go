package experiments

import (
	"context"

	"fmt"

	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/stats"
	"github.com/cmlasu/unsync/internal/sweep"
)

// ReplicaStats summarizes one quantity across replicated runs.
type ReplicaStats struct {
	Mean float64
	Std  float64
	N    int
}

// ReplicatedRow is one benchmark's replicated overhead measurement.
type ReplicatedRow struct {
	Benchmark string
	UnSync    ReplicaStats
	Reunion   ReplicaStats
}

// ReplicatedFig4 repeats the Figure 4 measurement with n independently
// reseeded instances of each workload and reports mean ± std of the
// overheads — the synthetic-workload analogue of running multiple
// input sets per benchmark. It quantifies how much of the figure is
// signal versus generator noise.
func ReplicatedFig4(ctx context.Context, o Options, replicas int) ([]ReplicatedRow, error) {
	if replicas < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 replicas, got %d", replicas)
	}
	type job struct {
		bench   int
		replica uint64
	}
	var jobs []job
	for b := range o.Benchmarks {
		for r := 0; r < replicas; r++ {
			jobs = append(jobs, job{bench: b, replica: uint64(r)})
		}
	}
	type pair struct{ us, re float64 }
	outs, err := sweep.MapContext(ctx, jobs, o.Workers, func(ctx context.Context, j job) (pair, error) {
		p := o.Benchmarks[j.bench].Reseeded(j.replica)
		base, err := cmp.RunContext(ctx, cmp.Baseline, o.RC, p)
		if err != nil {
			return pair{}, err
		}
		us, err := cmp.RunContext(ctx, cmp.UnSync, o.RC, p)
		if err != nil {
			return pair{}, err
		}
		re, err := cmp.RunContext(ctx, cmp.Reunion, o.RC, p)
		if err != nil {
			return pair{}, err
		}
		return pair{us: cmp.Overhead(base, us), re: cmp.Overhead(base, re)}, nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]ReplicatedRow, len(o.Benchmarks))
	k := 0
	for b, prof := range o.Benchmarks {
		var us, re stats.Running
		for r := 0; r < replicas; r++ {
			us.Add(outs[k].us)
			re.Add(outs[k].re)
			k++
		}
		rows[b] = ReplicatedRow{
			Benchmark: prof.Name,
			UnSync:    ReplicaStats{Mean: us.Mean(), Std: us.Std(), N: replicas},
			Reunion:   ReplicaStats{Mean: re.Mean(), Std: re.Std(), N: replicas},
		}
	}
	return rows, nil
}

// RenderReplicated renders the replicated measurement.
func RenderReplicated(rows []ReplicatedRow) *report.Table {
	t := report.New("Figure 4, replicated — overhead mean ± std across reseeded workloads",
		"Benchmark", "UnSync ovh %", "Reunion ovh %", "replicas")
	for _, r := range rows {
		t.Row(r.Benchmark,
			fmt.Sprintf("%.1f ± %.1f", r.UnSync.Mean, r.UnSync.Std),
			fmt.Sprintf("%.1f ± %.1f", r.Reunion.Mean, r.Reunion.Std),
			fmt.Sprintf("%d", r.UnSync.N))
	}
	t.Note("a gap larger than ~2 std separates architecture signal from workload-generator noise")
	return t
}

// SignalToNoise reports, for each row, whether the UnSync-vs-Reunion
// gap exceeds k standard deviations of the noisier measurement.
func SignalToNoise(rows []ReplicatedRow, k float64) (clear int) {
	for _, r := range rows {
		gap := r.Reunion.Mean - r.UnSync.Mean
		noise := r.Reunion.Std
		if r.UnSync.Std > noise {
			noise = r.UnSync.Std
		}
		if noise == 0 || gap > k*noise {
			clear++
		}
	}
	return clear
}
