package experiments

import (
	"context"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/report"
)

// roecProgram is the workload for the functional fault-injection
// campaigns: it fills an array, folds it into a checksum with data
// dependences everywhere, and prints the result — so almost every live
// register matters.
const roecProgram = `
	la r10, buf
	li r1, 0        ; checksum
	li r2, 0        ; i
	li r3, 96       ; n
init:
	mul r4, r2, r2
	xori r4, r4, 0x5a
	sw r4, 0(r10)
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, init
	la r10, buf
	li r2, 0
sum:
	lw r5, 0(r10)
	add r1, r1, r5
	slli r6, r1, 3
	xor r1, r1, r6
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, sum
	mv r4, r1
	li r2, 1
	syscall
	halt
.data
buf: .space 512
`

// ROECResult is the §VI-D study: the structural coverage comparison and
// the functional verification that each scheme recovers what its region
// of error coverage promises.
type ROECResult struct {
	UnSyncBits  float64
	ReunionBits float64
	TotalBits   float64
	UnSyncFrac  float64
	ReunionFrac float64

	UnSyncCampaign    fault.CampaignResult // parity/DMR-detected upsets
	ReunionTransient  fault.CampaignResult // in-flight upsets (inside ROEC)
	ReunionPersistent fault.CampaignResult // ARF upsets (outside ROEC)
}

// ROEC runs the coverage study with the given number of functional
// injection trials per campaign.
func ROEC(ctx context.Context, trials int) (ROECResult, error) {
	prog := asm.MustAssemble(roecProgram)

	res := ROECResult{
		UnSyncBits:  fault.ROECBits(fault.UnSyncCoverage()),
		ReunionBits: fault.ROECBits(fault.ReunionCoverage()),
		TotalBits:   fault.TotalBits(),
	}
	res.UnSyncFrac = res.UnSyncBits / res.TotalBits
	res.ReunionFrac = res.ReunionBits / res.TotalBits

	var err error
	res.UnSyncCampaign, err = fault.UnSyncCampaignContext(ctx, prog, trials, 101, 1_000_000)
	if err != nil {
		return res, err
	}
	res.ReunionTransient, err = fault.ReunionCampaignContext(ctx, prog, trials, true, 10, 102, 1_000_000)
	if err != nil {
		return res, err
	}
	res.ReunionPersistent, err = fault.ReunionCampaignContext(ctx, prog, trials, false, 10, 103, 1_000_000)
	if err != nil {
		return res, err
	}
	return res, nil
}

// Render produces the study's table form.
func (r ROECResult) Render() *report.Table {
	t := report.New("ROEC (§VI-D) — region of error coverage and functional recovery",
		"Quantity", "UnSync", "Reunion")
	t.Row("Covered bits", report.F(r.UnSyncBits, 0), report.F(r.ReunionBits, 0))
	t.Row("Coverage fraction", report.F(100*r.UnSyncFrac, 1)+"%", report.F(100*r.ReunionFrac, 1)+"%")

	camp := func(c fault.CampaignResult) string {
		return report.F(100*c.CorrectRate(), 1) + "% correct"
	}
	t.Row("Detected-upset campaign", camp(r.UnSyncCampaign), "")
	t.Row("In-flight upset campaign", "", camp(r.ReunionTransient))
	t.Row("Persistent ARF upset campaign", "", camp(r.ReunionPersistent))
	t.Row("  of which unrecoverable", report.I(uint64(r.UnSyncCampaign.Unrecoverable)),
		report.I(uint64(r.ReunionPersistent.Unrecoverable)))
	t.Note("UnSync covers every sequential block and the L1 (parity/DMR); Reunion's fingerprint covers only pre-commit pipeline state — ARF/TLB upsets are outside its ROEC")
	return t
}

// StructuralTable renders the per-structure detection assignment.
func StructuralTable() *report.Table {
	u := fault.UnSyncCoverage()
	r := fault.ReunionCoverage()
	t := report.New("Per-structure detection assignment",
		"Structure", "Vulnerable bits", "UnSync", "Reunion")
	for tgt := fault.Target(0); tgt < fault.NumTargets; tgt++ {
		t.Row(tgt.String(), report.F(fault.Bits(tgt), 0), u[tgt].String(), r[tgt].String())
	}
	return t
}
