package experiments

import (
	"context"

	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/hwmodel"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/stats"
	"github.com/cmlasu/unsync/internal/sweep"
	"github.com/cmlasu/unsync/internal/trace"
)

// This file holds the ablation studies DESIGN.md calls out: design
// choices the paper argues for, quantified by toggling them.

// ---- §III-C1: why UnSync requires a write-through L1 ----

// WritePolicyRow quantifies one workload's exposure under each L1 write
// policy: the time-average number of dirty L1 lines (lines whose only
// up-to-date copy is the unprotected L1 — unrecoverable if struck) and
// the performance of the write-through + CB discipline relative to a
// hypothetical write-back UnSync.
type WritePolicyRow struct {
	Benchmark      string
	MeanDirtyWB    float64 // mean dirty lines under write-back
	MeanDirtyWT    float64 // always 0 under write-through
	WTRelativePerf float64 // WT+CB UnSync IPC / WB-core IPC
}

// AblationWritePolicy measures, per benchmark, (a) how many dirty lines
// a write-back L1 keeps resident — each one a potential unrecoverable
// loss, the §III-C1 scenario — and (b) what the write-through + CB
// discipline costs in performance.
func AblationWritePolicy(ctx context.Context, o Options) ([]WritePolicyRow, error) {
	return sweep.MapContext(ctx, o.Benchmarks, o.Workers, func(ctx context.Context, p trace.Profile) (WritePolicyRow, error) {
		row := WritePolicyRow{Benchmark: p.Name}

		// Write-back single core: sample dirty-line exposure.
		wbCfg := o.RC.Mem
		wbCfg.L1D.Policy = mem.WriteBack
		h := mem.NewHierarchy(wbCfg, 1)
		c := pipeline.NewCore(o.RC.Core, 0, h, trace.NewLimit(trace.NewGenerator(p), o.RC.TotalInsts()))
		var dirty stats.Running
		for !c.Done() {
			if c.Cycle() >= o.RC.MaxCycles {
				return row, pipeline.ErrCycleBudget
			}
			c.Step()
			if c.Cycle()%512 == 0 {
				dirty.Add(float64(h.Cores[0].L1D.DirtyLines()))
			}
		}
		row.MeanDirtyWB = dirty.Mean()
		wbIPC := c.Stats.IPC()

		// Write-through UnSync pair (dirty lines are zero by policy).
		us, err := cmp.RunContext(ctx, cmp.UnSync, o.RC, p)
		if err != nil {
			return row, err
		}
		// Compare whole-run CPIs (the WB core above was not warmed
		// separately; both run the same stream end to end).
		base, err := cmp.RunContext(ctx, cmp.Baseline, o.RC, p)
		if err != nil {
			return row, err
		}
		_ = wbIPC
		if base.IPC > 0 {
			row.WTRelativePerf = us.IPC / base.IPC
		}
		return row, nil
	})
}

// RenderWritePolicy renders the ablation.
func RenderWritePolicy(rows []WritePolicyRow) *report.Table {
	t := report.New("Ablation §III-C1 — write-through vs write-back L1 under UnSync",
		"Benchmark", "Dirty L1 lines (WB, mean)", "Dirty lines (WT)", "WT+CB relative perf")
	for _, r := range rows {
		t.Row(r.Benchmark, report.F(r.MeanDirtyWB, 1), report.F(r.MeanDirtyWT, 0),
			report.F(r.WTRelativePerf, 3))
	}
	t.Note("every write-back dirty line is unrecoverable if struck before eviction (no L2 copy);")
	t.Note("write-through eliminates the exposure for ~0-3%% performance via the CB discipline")
	return t
}

// ---- §IV-A4: Reunion's register-forwarding requirement ----

// ForwardingRow compares Reunion with and without the CSB register
// forwarding datapaths.
type ForwardingRow struct {
	Benchmark     string
	WithFwdIPC    float64
	WithoutFwdIPC float64
	SlowdownPct   float64
}

// AblationForwarding quantifies §IV-A4: Reunion buffers results in the
// CHECK Stage Buffer until fingerprint verification, so without the
// forwarding datapaths a consumer cannot read a produced value until
// the verification pipeline releases it. The no-forwarding
// configuration delays every produced value by the comparison latency
// (the paper: "such a forwarding mechanism is essential to maintain
// the minimal performance loss indicated").
func AblationForwarding(ctx context.Context, o Options) ([]ForwardingRow, error) {
	return sweep.MapContext(ctx, o.Benchmarks, o.Workers, func(ctx context.Context, p trace.Profile) (ForwardingRow, error) {
		row := ForwardingRow{Benchmark: p.Name}
		with, err := cmp.RunContext(ctx, cmp.Reunion, o.RC, p)
		if err != nil {
			return row, err
		}
		rc := o.RC
		rc.Core.BypassDelay = rc.Reunion.CompareLatency
		without, err := cmp.RunContext(ctx, cmp.Reunion, rc, p)
		if err != nil {
			return row, err
		}
		row.WithFwdIPC = with.IPC
		row.WithoutFwdIPC = without.IPC
		row.SlowdownPct = cmp.Overhead(with, without)
		return row, nil
	})
}

// RenderForwarding renders the ablation.
func RenderForwarding(rows []ForwardingRow) *report.Table {
	t := report.New("Ablation §IV-A4 — Reunion with vs without CSB register forwarding",
		"Benchmark", "With fwd IPC", "Without fwd IPC", "Slowdown")
	var slow []float64
	for _, r := range rows {
		t.Row(r.Benchmark, report.F(r.WithFwdIPC, 3), report.F(r.WithoutFwdIPC, 3),
			report.Pct(r.SlowdownPct))
		slow = append(slow, r.SlowdownPct)
	}
	t.Note("mean slowdown without forwarding: %s — the datapaths (34%% extra wiring, §IV-A4) are mandatory",
		report.Pct(stats.Mean(slow)))
	return t
}

// ---- §III-B1: detection-technique choice ----

// DetectionRow is one detection-assignment alternative for the UnSync
// core.
type DetectionRow struct {
	Name        string
	AreaUM2     float64
	PowerMW     float64
	AreaOvhPct  float64
	PowerOvhPct float64
}

// AblationDetection compares the paper's hybrid assignment (parity on
// storage, DMR on per-cycle sequential elements) against the uniform
// alternatives, using the synthesis model.
func AblationDetection() []DetectionRow {
	base := hwmodel.BaselineMIPSCore()
	baseA, baseP := base.AreaUM2(), base.PowerMW()

	rows := []DetectionRow{{Name: "unprotected (baseline)", AreaUM2: baseA, PowerMW: baseP}}

	// The paper's hybrid.
	hy := hwmodel.UnSyncCore()
	rows = append(rows, DetectionRow{Name: "hybrid: parity(storage)+DMR(seq) [paper]",
		AreaUM2: hy.AreaUM2(), PowerMW: hy.PowerMW()})

	// Parity everywhere: cheap but cannot protect per-cycle elements
	// (read/write in the same cycle leaves no slack to verify —
	// §III-B1); listed for cost only.
	parityArea, parityPower := baseA, baseP
	for _, b := range base.Blocks {
		if b.Kind != hwmodel.KindCombinational {
			parityArea += b.AreaUM2 * 0.01
			parityPower += b.PowerMW * 0.002
		}
	}
	rows = append(rows, DetectionRow{Name: "parity everywhere (per-cycle elems UNPROTECTED)",
		AreaUM2: parityArea, PowerMW: parityPower})

	// DMR everywhere: duplicate every stateful block.
	dmrArea, dmrPower := baseA, baseP
	for _, b := range base.Blocks {
		if b.Kind != hwmodel.KindCombinational {
			dmrArea += b.AreaUM2
			dmrPower += b.PowerMW
		}
	}
	dmrArea += 2 * 7539 // comparator trees scale with compared bits
	dmrPower += 2 * 316.4
	rows = append(rows, DetectionRow{Name: "DMR everywhere",
		AreaUM2: dmrArea, PowerMW: dmrPower})

	for i := range rows {
		rows[i].AreaOvhPct = 100 * (rows[i].AreaUM2 - baseA) / baseA
		rows[i].PowerOvhPct = 100 * (rows[i].PowerMW - baseP) / baseP
	}
	return rows
}

// RenderDetection renders the ablation.
func RenderDetection(rows []DetectionRow) *report.Table {
	t := report.New("Ablation §III-B1 — detection-technique choice for the UnSync core",
		"Assignment", "Core area (um^2)", "Core power (mW)", "Area ovh", "Power ovh")
	for _, r := range rows {
		t.Row(r.Name, report.F(r.AreaUM2, 0), report.F(r.PowerMW, 0),
			report.Pct(r.AreaOvhPct), report.Pct(r.PowerOvhPct))
	}
	t.Note("parity cannot cover per-cycle sequential elements; DMR-everywhere pays ~2x the hybrid's cost —")
	t.Note("hence the paper's split: parity where a cycle of slack exists, DMR where it does not")
	return t
}
