package experiments

import (
	"context"

	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/sweep"
	"github.com/cmlasu/unsync/internal/trace"
)

// AVFRow is one benchmark's architectural-vulnerability estimate: the
// structural bit counts of §VI-D weighted by measured residency
// (occupied entries are the ones a strike can actually corrupt — the
// AVF idea of the paper's reference [25]).
type AVFRow struct {
	Benchmark string

	// Effective vulnerable bits, residency-weighted.
	TotalBits float64
	// Residual vulnerable bits outside each scheme's ROEC.
	UnSyncExposed  float64
	ReunionExposed float64
}

// AVFEstimate runs each benchmark on an UnSync pair, measures the mean
// occupancy of the queue structures, and weights each structure's
// vulnerable bits by its residency. The exposed remainder is the
// residency-weighted mass outside each scheme's region of error
// coverage: zero for UnSync (full coverage), the ARF + TLB mass for
// Reunion.
func AVFEstimate(ctx context.Context, o Options) ([]AVFRow, error) {
	return sweep.MapContext(ctx, o.Benchmarks, o.Workers, func(ctx context.Context, p trace.Profile) (AVFRow, error) {
		row := AVFRow{Benchmark: p.Name}
		res, err := cmp.RunContext(ctx, cmp.UnSync, o.RC, p)
		if err != nil {
			return row, err
		}

		// Residency weights per structure (fraction of entries live).
		occ := map[fault.Target]float64{
			fault.TargetRegFile:      1, // architectural state is always live
			fault.TargetPC:           1,
			fault.TargetTLB:          1,
			fault.TargetL1Data:       1, // valid lines dominate after warmup
			fault.TargetL1Tags:       1,
			fault.TargetPipelineRegs: 1,
			fault.TargetROB:          res.Core.ROBOcc.Mean() / float64(o.RC.Core.ROBSize),
			fault.TargetIssueQueue:   res.Core.IQOcc.Mean() / float64(o.RC.Core.IQSize),
			fault.TargetLSQ:          res.Core.LSQOcc.Mean() / float64(o.RC.Core.LSQSize),
		}

		us := fault.UnSyncCoverage()
		re := fault.ReunionCoverage()
		for t := fault.Target(0); t < fault.NumTargets; t++ {
			w := occ[t]
			if w < 0 {
				w = 0
			}
			if w > 1 {
				w = 1
			}
			mass := fault.Bits(t) * w
			row.TotalBits += mass
			if us[t] == fault.DetectNone {
				row.UnSyncExposed += mass
			}
			if re[t] == fault.DetectNone {
				row.ReunionExposed += mass
			}
		}
		return row, nil
	})
}

// RenderAVF renders the study.
func RenderAVF(rows []AVFRow) *report.Table {
	t := report.New("AVF estimate — residency-weighted vulnerable bits and residual exposure",
		"Benchmark", "Weighted bits", "UnSync exposed", "Reunion exposed", "Reunion exposure %")
	for _, r := range rows {
		pct := 0.0
		if r.TotalBits > 0 {
			pct = 100 * r.ReunionExposed / r.TotalBits
		}
		t.Row(r.Benchmark, report.F(r.TotalBits, 0), report.F(r.UnSyncExposed, 0),
			report.F(r.ReunionExposed, 0), report.F(pct, 1))
	}
	t.Note("occupancy weighting follows the AVF idea of the paper's reference [25]: only live entries matter")
	t.Note("UnSync's exposure is zero — every structure is inside its ROEC (§VI-D)")
	return t
}
