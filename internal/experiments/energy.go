package experiments

import (
	"context"

	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/hwmodel"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/stats"
	"github.com/cmlasu/unsync/internal/sweep"
	"github.com/cmlasu/unsync/internal/trace"
)

// EnergyRow joins the synthesis power model with measured throughput:
// energy per (architecturally useful) instruction for each scheme, at
// the 300 MHz synthesis clock. Both redundant schemes burn two cores'
// power for one thread's instructions; what separates them is the
// static power gap and the throughput gap.
type EnergyRow struct {
	Benchmark string

	BaselineNJ float64 // nJ per instruction, single unprotected core
	UnSyncNJ   float64 // nJ per instruction, pair (both cores + CB)
	ReunionNJ  float64 // nJ per instruction, pair (both cores)
}

// EnergyStudy computes energy-per-instruction across the suite: the
// Table II total power of each configuration (doubled for the
// redundant pairs) divided by the measured instruction throughput
// (IPC × 300 MHz).
func EnergyStudy(ctx context.Context, o Options) ([]EnergyRow, error) {
	tab := hwmodel.Compute(hwmodel.DefaultParams())
	const freqHz = 300e6
	basePowerW := tab.Basic.TotalPowerW
	usPowerW := 2 * tab.UnSync.TotalPowerW
	rePowerW := 2 * tab.Reunion.TotalPowerW

	return sweep.MapContext(ctx, o.Benchmarks, o.Workers, func(ctx context.Context, p trace.Profile) (EnergyRow, error) {
		row := EnergyRow{Benchmark: p.Name}
		base, err := cmp.RunContext(ctx, cmp.Baseline, o.RC, p)
		if err != nil {
			return row, err
		}
		us, err := cmp.RunContext(ctx, cmp.UnSync, o.RC, p)
		if err != nil {
			return row, err
		}
		re, err := cmp.RunContext(ctx, cmp.Reunion, o.RC, p)
		if err != nil {
			return row, err
		}
		nj := func(powerW, ipc float64) float64 {
			if ipc <= 0 {
				return 0
			}
			return powerW / (ipc * freqHz) * 1e9
		}
		row.BaselineNJ = nj(basePowerW, base.IPC)
		row.UnSyncNJ = nj(usPowerW, us.IPC)
		row.ReunionNJ = nj(rePowerW, re.IPC)
		return row, nil
	})
}

// RenderEnergy renders the study.
func RenderEnergy(rows []EnergyRow) *report.Table {
	t := report.New("Energy per instruction at 300 MHz (synthesis power x measured throughput)",
		"Benchmark", "Baseline (nJ)", "UnSync pair (nJ)", "Reunion pair (nJ)", "UnSync saving")
	var savings []float64
	for _, r := range rows {
		var s float64
		if r.ReunionNJ > 0 {
			s = 100 * (r.ReunionNJ - r.UnSyncNJ) / r.ReunionNJ
		}
		savings = append(savings, s)
		t.Row(r.Benchmark, report.F(r.BaselineNJ, 2), report.F(r.UnSyncNJ, 2),
			report.F(r.ReunionNJ, 2), report.Pct(s))
	}
	t.Note("mean UnSync energy saving over Reunion: %s — the power gap compounds with the throughput gap",
		report.Pct(stats.Mean(savings)))
	t.Note("redundancy costs energy by construction (two cores per thread); the choice is how much")
	return t
}
