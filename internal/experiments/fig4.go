package experiments

import (
	"context"

	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/stats"
	"github.com/cmlasu/unsync/internal/sweep"
	"github.com/cmlasu/unsync/internal/trace"
)

// Fig4Row is one benchmark bar group of Figure 4.
type Fig4Row struct {
	Benchmark       string
	SerializingFrac float64 // fraction of dynamic instructions
	BaselineIPC     float64
	UnSyncIPC       float64
	ReunionIPC      float64
	UnSyncOvhPct    float64 // slowdown over baseline
	ReunionOvhPct   float64
}

// Fig4Result is the whole figure.
type Fig4Result struct {
	Rows           []Fig4Row
	MeanUnSyncPct  float64
	MeanReunionPct float64
}

// Fig4 measures the performance overhead of the two redundant schemes
// over the baseline across the benchmark suite, at the paper's Reunion
// operating point (FI=10, comparison latency 10). The paper reports a
// ~8% average Reunion overhead, >10% for the serializing-heavy bzip2 /
// ammp / galgel, and a consistently negligible (~2%) UnSync overhead.
func Fig4(ctx context.Context, o Options) (Fig4Result, error) {
	type triple struct {
		base, us, re cmp.Result
		prof         trace.Profile
	}
	trips, err := sweep.MapContext(ctx, o.Benchmarks, o.Workers, func(ctx context.Context, p trace.Profile) (triple, error) {
		base, err := cmp.RunContext(ctx, cmp.Baseline, o.RC, p)
		if err != nil {
			return triple{}, err
		}
		us, err := cmp.RunContext(ctx, cmp.UnSync, o.RC, p)
		if err != nil {
			return triple{}, err
		}
		re, err := cmp.RunContext(ctx, cmp.Reunion, o.RC, p)
		if err != nil {
			return triple{}, err
		}
		return triple{base: base, us: us, re: re, prof: p}, nil
	})
	if err != nil {
		return Fig4Result{}, err
	}

	var res Fig4Result
	var ovU, ovR []float64
	for _, tr := range trips {
		row := Fig4Row{
			Benchmark:       tr.prof.Name,
			SerializingFrac: tr.prof.Mix.SerializingFrac(),
			BaselineIPC:     tr.base.IPC,
			UnSyncIPC:       tr.us.IPC,
			ReunionIPC:      tr.re.IPC,
			UnSyncOvhPct:    cmp.Overhead(tr.base, tr.us),
			ReunionOvhPct:   cmp.Overhead(tr.base, tr.re),
		}
		res.Rows = append(res.Rows, row)
		ovU = append(ovU, row.UnSyncOvhPct)
		ovR = append(ovR, row.ReunionOvhPct)
	}
	res.MeanUnSyncPct = stats.Mean(ovU)
	res.MeanReunionPct = stats.Mean(ovR)
	return res, nil
}

// Render produces the figure's table form.
func (r Fig4Result) Render() *report.Table {
	t := report.New("Figure 4 — Performance overhead from serializing instructions (FI=10, cmp latency=6)",
		"Benchmark", "Ser. instr %", "Baseline IPC", "UnSync IPC", "Reunion IPC",
		"UnSync ovh %", "Reunion ovh %")
	for _, row := range r.Rows {
		t.Row(row.Benchmark,
			report.F(100*row.SerializingFrac, 2),
			report.F(row.BaselineIPC, 3),
			report.F(row.UnSyncIPC, 3),
			report.F(row.ReunionIPC, 3),
			report.F(row.UnSyncOvhPct, 1),
			report.F(row.ReunionOvhPct, 1))
	}
	t.Row("MEAN", "", "", "", "",
		report.F(r.MeanUnSyncPct, 1), report.F(r.MeanReunionPct, 1))
	t.Note("paper: Reunion averages ~8%% overhead (bzip2/ammp/galgel >10%%); UnSync ~2%%")
	return t
}

// Chart renders the figure as a horizontal bar chart (one bar pair per
// benchmark, as in the paper's Figure 4).
func (r Fig4Result) Chart() string {
	c := report.NewBarChart("Figure 4 — Reunion overhead over baseline", "%")
	for _, row := range r.Rows {
		c.Bar(row.Benchmark, row.ReunionOvhPct)
	}
	u := report.NewBarChart("Figure 4 — UnSync overhead over baseline", "%")
	for _, row := range r.Rows {
		u.Bar(row.Benchmark, row.UnSyncOvhPct)
	}
	return c.Render() + "\n" + u.Render()
}

// Row returns the named benchmark's row, if present.
func (r Fig4Result) Row(name string) (Fig4Row, bool) {
	for _, row := range r.Rows {
		if row.Benchmark == name {
			return row, true
		}
	}
	return Fig4Row{}, false
}
