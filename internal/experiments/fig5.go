package experiments

import (
	"context"

	"fmt"

	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/report"
	"github.com/cmlasu/unsync/internal/sweep"
	"github.com/cmlasu/unsync/internal/trace"
)

// Fig5Point is one (FI, comparison-latency) operating point of Figure 5.
type Fig5Point struct {
	FI         int
	CmpLatency uint64
	// Relative performance (Reunion IPC / baseline IPC) per benchmark,
	// keyed in the same order as Fig5Result.Benchmarks.
	Relative []float64
}

// Fig5Result is the whole sweep.
type Fig5Result struct {
	Benchmarks []string
	Points     []Fig5Point
}

// DefaultFig5Points mirrors the paper's axis: starting at FI=1 and a
// comparison latency of 10 cycles, then continuously increasing to
// FI=30 / 40 cycles.
func DefaultFig5Points() []sweep.Pair[int, uint64] {
	return []sweep.Pair[int, uint64]{
		{X: 1, Y: 10}, {X: 5, Y: 15}, {X: 10, Y: 20},
		{X: 15, Y: 25}, {X: 20, Y: 30}, {X: 25, Y: 35}, {X: 30, Y: 40},
	}
}

// Fig5Benchmarks are the workloads the paper highlights: ammp and
// galgel saturate the ROB and suffer most.
func Fig5Benchmarks() []trace.Profile {
	var out []trace.Profile
	for _, name := range []string{"ammp", "galgel", "gzip", "mesa"} {
		if p, ok := trace.ByName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

// Fig5 sweeps Reunion's fingerprint interval and comparison latency and
// reports performance relative to the baseline core. The paper: at
// FI=30 / latency=40, ammp and galgel lose 27% and 41%; UnSync (no
// inter-core comparison) is unaffected by either parameter.
func Fig5(ctx context.Context, o Options, benches []trace.Profile, points []sweep.Pair[int, uint64]) (Fig5Result, error) {
	if len(benches) == 0 {
		benches = Fig5Benchmarks()
	}
	if len(points) == 0 {
		points = DefaultFig5Points()
	}

	// Baselines once per benchmark.
	bases, err := sweep.MapContext(ctx, benches, o.Workers, func(ctx context.Context, p trace.Profile) (cmp.Result, error) {
		return cmp.RunContext(ctx, cmp.Baseline, o.RC, p)
	})
	if err != nil {
		return Fig5Result{}, err
	}

	type job struct {
		bench int
		point int
	}
	var jobs []job
	for pi := range points {
		for bi := range benches {
			jobs = append(jobs, job{bench: bi, point: pi})
		}
	}
	rels, err := sweep.MapContext(ctx, jobs, o.Workers, func(ctx context.Context, j job) (float64, error) {
		rc := o.RC
		rc.Reunion.FI = points[j.point].X
		rc.Reunion.CompareLatency = points[j.point].Y
		rc.Reunion.CSBEntries = 0 // derive from FI
		res, err := cmp.RunContext(ctx, cmp.Reunion, rc, benches[j.bench])
		if err != nil {
			return 0, err
		}
		if bases[j.bench].IPC == 0 {
			return 0, fmt.Errorf("experiments: zero baseline IPC for %s", benches[j.bench].Name)
		}
		return res.IPC / bases[j.bench].IPC, nil
	})
	if err != nil {
		return Fig5Result{}, err
	}

	out := Fig5Result{}
	for _, p := range benches {
		out.Benchmarks = append(out.Benchmarks, p.Name)
	}
	for _, pt := range points {
		out.Points = append(out.Points, Fig5Point{
			FI: pt.X, CmpLatency: pt.Y,
			Relative: make([]float64, len(benches)),
		})
	}
	// Place each result by the indices recorded in its own job, so a
	// reordering of job construction cannot misattribute a result to
	// the wrong (benchmark, point) cell.
	for i, j := range jobs {
		out.Points[j.point].Relative[j.bench] = rels[i]
	}
	return out, nil
}

// Render produces the figure's table form.
func (r Fig5Result) Render() *report.Table {
	cols := append([]string{"FI / cmp latency"}, r.Benchmarks...)
	t := report.New("Figure 5 — Reunion performance vs fingerprint interval and comparison latency (relative to baseline)", cols...)
	for _, p := range r.Points {
		cells := []string{fmt.Sprintf("FI=%d, L=%d", p.FI, p.CmpLatency)}
		for _, v := range p.Relative {
			cells = append(cells, report.F(v, 3))
		}
		t.Row(cells...)
	}
	t.Note("paper: at FI=30/L=40 ammp loses ~27%%, galgel ~41%%; UnSync is insensitive to both knobs")
	return t
}

// Chart renders the sweep as a line chart (the paper's Figure 5 shape).
func (r Fig5Result) Chart() string {
	c := report.NewLineChart("Figure 5 — Reunion relative performance vs (FI, latency)", "IPC relative to baseline")
	var xs []string
	for _, p := range r.Points {
		xs = append(xs, fmt.Sprintf("%d/%d", p.FI, p.CmpLatency))
	}
	c.X(xs...)
	for i, b := range r.Benchmarks {
		var vs []float64
		for _, p := range r.Points {
			vs = append(vs, p.Relative[i])
		}
		c.Series(b, vs...)
	}
	return c.Render()
}

// Relative returns the relative performance of the named benchmark at a
// point index.
func (r Fig5Result) Relative(point int, bench string) (float64, bool) {
	for i, b := range r.Benchmarks {
		if b == bench && point < len(r.Points) {
			return r.Points[point].Relative[i], true
		}
	}
	return 0, false
}
