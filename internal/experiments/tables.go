package experiments

import (
	"fmt"

	"github.com/cmlasu/unsync/internal/dies"
	"github.com/cmlasu/unsync/internal/hwmodel"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/report"
)

// TableI renders the simulated baseline CMP parameters (paper Table I)
// from the live default configurations, so the report always reflects
// what the simulator actually runs.
func TableI() *report.Table {
	core := pipeline.DefaultConfig()
	m := mem.DefaultConfig()
	t := report.New("Table I — Simulated baseline CMP parameters", "Parameter", "Configuration")
	t.Row("Processor Cores", "4 logical cores (2 redundant pairs), out-of-order")
	t.Row("Pipeline", fmt.Sprintf("%d-wide fetch/issue/commit, %d-entry ROB", core.Width, core.ROBSize))
	t.Row("Issue Queue", fmt.Sprintf("%d", core.IQSize))
	t.Row("LSQ", fmt.Sprintf("%d", core.LSQSize))
	t.Row("L1 Cache", fmt.Sprintf("%dKB split I/D, %d-way, %d MSHRs, %d-cycle, %dB lines (%s)",
		m.L1D.SizeBytes>>10, m.L1D.Ways, m.L1D.MSHRs, m.L1D.HitLatency, m.L1D.LineBytes, m.L1D.Policy))
	t.Row("Shared L2 Cache", fmt.Sprintf("%dMB, %d-way, %dB lines, %d-cycle, %d MSHRs (%s)",
		m.L2.SizeBytes>>20, m.L2.Ways, m.L2.LineBytes, m.L2.HitLatency, m.L2.MSHRs, m.L2.Protect))
	t.Row("I-TLB", fmt.Sprintf("%d entries, %d-way", m.ITLBEntries, m.TLBWays))
	t.Row("D-TLB", fmt.Sprintf("%d entries, %d-way", m.DTLBEntries, m.TLBWays))
	t.Row("Memory", fmt.Sprintf("%d-cycle access latency", m.DRAMLatency))
	return t
}

// TableIIResult bundles the computed hardware comparison with the
// headline deltas.
type TableIIResult struct {
	Table         hwmodel.TableII
	AreaSavingPP  float64
	PowerSavingPP float64
	CAOReunion    float64
	CAOUnSync     float64
}

// TableII computes the hardware overhead comparison (paper Table II)
// from the synthesis model.
func TableII() (TableIIResult, *report.Table) {
	tab := hwmodel.Compute(hwmodel.DefaultParams())
	res := TableIIResult{
		Table:         tab,
		AreaSavingPP:  tab.AreaSavingPP(),
		PowerSavingPP: tab.PowerSavingPP(),
		CAOReunion:    tab.CoreAreaOverhead(tab.Reunion),
		CAOUnSync:     tab.CoreAreaOverhead(tab.UnSync),
	}

	t := report.New("Table II — Hardware overhead comparison (65nm, 300MHz)",
		"Parameter", "Basic MIPS", "Reunion", "UnSync")
	rowF := func(name string, f func(hwmodel.ConfigRow) string) {
		t.Row(name, f(tab.Basic), f(tab.Reunion), f(tab.UnSync))
	}
	rowF("Core (um^2)", func(r hwmodel.ConfigRow) string { return report.F(r.CoreAreaUM2, 0) })
	rowF("L1 Cache (mm^2)", func(r hwmodel.ConfigRow) string { return report.F(r.L1AreaMM2, 4) })
	rowF("CB (mm^2)", func(r hwmodel.ConfigRow) string {
		if r.CBAreaMM2 == 0 {
			return "N/A"
		}
		return report.F(r.CBAreaMM2, 5)
	})
	rowF("Total Area (um^2)", func(r hwmodel.ConfigRow) string { return report.F(r.TotalAreaUM2, 0) })
	t.Row("Area Overhead (%)", "N/A",
		report.F(tab.Reunion.AreaOverheadPct(tab.Basic), 2),
		report.F(tab.UnSync.AreaOverheadPct(tab.Basic), 2))
	rowF("Core Power (W)", func(r hwmodel.ConfigRow) string { return report.F(r.CorePowerW, 3) })
	rowF("L1 Power (mW)", func(r hwmodel.ConfigRow) string { return report.F(r.L1PowerMW, 2) })
	rowF("CB Power (mW)", func(r hwmodel.ConfigRow) string {
		if r.CBPowerMW == 0 {
			return "N/A"
		}
		return report.F(r.CBPowerMW, 5)
	})
	rowF("Total Power (W)", func(r hwmodel.ConfigRow) string { return report.F(r.TotalPowerW, 2) })
	t.Row("Power Overhead (%)", "N/A",
		report.F(tab.Reunion.PowerOverheadPct(tab.Basic), 2),
		report.F(tab.UnSync.PowerOverheadPct(tab.Basic), 2))
	t.Note("paper: area overheads 20.77%% vs 7.45%% (Δ 13.32pp); power 74.79%% vs 40.34%% (Δ 34.45pp)")
	t.Note("computed savings: %.2fpp area, %.2fpp power", res.AreaSavingPP, res.PowerSavingPP)
	return res, t
}

// TableIII projects the die sizes (paper Table III), using the CAOs
// computed from the Table II model.
func TableIII() ([]dies.Projection, *report.Table) {
	res, _ := TableII()
	rows := dies.TableIII(res.CAOReunion, res.CAOUnSync)

	t := report.New("Table III — Projected die sizes of many-core processors",
		"Parameter", rows[0].Processor.Vendor+" "+rows[0].Processor.Name,
		rows[1].Processor.Vendor+" "+rows[1].Processor.Name,
		rows[2].Processor.Vendor+" "+rows[2].Processor.Name)
	get := func(f func(dies.Projection) string) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = f(r)
		}
		return out
	}
	addRow := func(name string, f func(dies.Projection) string) {
		cells := append([]string{name}, get(f)...)
		t.Row(cells...)
	}
	addRow("Technology node", func(r dies.Projection) string { return r.Processor.TechNode })
	addRow("No. of Cores", func(r dies.Projection) string { return fmt.Sprintf("%d", r.Processor.Cores) })
	addRow("Per-core Area (mm^2)", func(r dies.Projection) string { return report.F(r.Processor.CoreAreaMM2, 1) })
	addRow("Original Die Area (mm^2)", func(r dies.Projection) string { return report.F(r.Processor.DieAreaMM2, 0) })
	addRow("Reunion Die Area (mm^2)", func(r dies.Projection) string { return report.F(r.ReunionMM2, 2) })
	addRow("UnSync Die Area (mm^2)", func(r dies.Projection) string { return report.F(r.UnSyncMM2, 2) })
	addRow("Difference (mm^2)", func(r dies.Projection) string { return report.F(r.DifferenceMM2(), 2) })
	t.Note("paper values: 316.54/289.90/26.64, 377.85/347.16/30.69, 549.76/498.61/51.15")
	return rows, t
}
