package experiments

import (
	"context"

	"math"
	"strings"
	"testing"

	"github.com/cmlasu/unsync/internal/sweep"
	"github.com/cmlasu/unsync/internal/trace"
)

func TestTableI(t *testing.T) {
	s := TableI().Text()
	for _, want := range []string{"Issue Queue", "64", "4MB", "400-cycle", "write-through"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q:\n%s", want, s)
		}
	}
}

func TestTableIIHeadlines(t *testing.T) {
	res, tab := TableII()
	if math.Abs(res.AreaSavingPP-13.32) > 0.7 {
		t.Errorf("area saving = %.2f pp", res.AreaSavingPP)
	}
	if math.Abs(res.PowerSavingPP-34.45) > 2 {
		t.Errorf("power saving = %.2f pp", res.PowerSavingPP)
	}
	if math.Abs(res.CAOReunion-0.2077) > 0.005 || math.Abs(res.CAOUnSync-0.0745) > 0.005 {
		t.Errorf("CAOs = %.4f / %.4f", res.CAOReunion, res.CAOUnSync)
	}
	if !strings.Contains(tab.Text(), "Total Area") {
		t.Error("render missing rows")
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	rows, tab := TableIII()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// With the computed (not paper-constant) CAOs, the projections must
	// still land within 2 mm² of the paper's numbers.
	want := map[string][2]float64{
		"Polaris": {316.54, 289.90},
		"Tile64":  {377.85, 347.16},
		"GeForce": {549.76, 498.61},
	}
	for _, r := range rows {
		w := want[r.Processor.Name]
		if math.Abs(r.ReunionMM2-w[0]) > 2 || math.Abs(r.UnSyncMM2-w[1]) > 2 {
			t.Errorf("%s projection = %.2f/%.2f, want ~%.2f/%.2f",
				r.Processor.Name, r.ReunionMM2, r.UnSyncMM2, w[0], w[1])
		}
	}
	if !strings.Contains(tab.Text(), "Difference") {
		t.Error("render missing difference row")
	}
}

func TestFig4QuickShape(t *testing.T) {
	o := QuickOptions()
	res, err := Fig4(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(o.Benchmarks) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Headline shape: Reunion's mean overhead clearly above UnSync's.
	if res.MeanReunionPct <= res.MeanUnSyncPct {
		t.Errorf("mean overheads: reunion %.1f%% <= unsync %.1f%%",
			res.MeanReunionPct, res.MeanUnSyncPct)
	}
	// UnSync stays near the baseline (paper: ~2%).
	if res.MeanUnSyncPct > 8 {
		t.Errorf("UnSync mean overhead %.1f%% too large", res.MeanUnSyncPct)
	}
	// The serializing-heavy benchmarks hurt Reunion most.
	bz, ok := res.Row("bzip2")
	if !ok {
		t.Fatal("bzip2 missing")
	}
	if bz.ReunionOvhPct < 5 {
		t.Errorf("bzip2 Reunion overhead %.1f%%, expected >5%%", bz.ReunionOvhPct)
	}
	if bz.UnSyncOvhPct >= bz.ReunionOvhPct {
		t.Error("bzip2: UnSync overhead not below Reunion")
	}
	if _, ok := res.Row("nonexistent"); ok {
		t.Error("Row found a nonexistent benchmark")
	}
	if !strings.Contains(res.Render().Text(), "MEAN") {
		t.Error("render missing MEAN row")
	}
}

func TestFig5QuickShape(t *testing.T) {
	o := QuickOptions()
	var benches []trace.Profile
	for _, n := range []string{"ammp", "galgel"} {
		p, _ := trace.ByName(n)
		benches = append(benches, p)
	}
	points := []sweep.Pair[int, uint64]{{X: 1, Y: 10}, {X: 10, Y: 20}, {X: 30, Y: 40}}
	res, err := Fig5(context.Background(), o, benches, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 || len(res.Benchmarks) != 2 {
		t.Fatalf("shape: %d points, %d benches", len(res.Points), len(res.Benchmarks))
	}
	// Performance must degrade monotonically-ish along the sweep for
	// the ROB-saturating benchmarks: last point clearly below first.
	for i, b := range res.Benchmarks {
		first := res.Points[0].Relative[i]
		last := res.Points[len(res.Points)-1].Relative[i]
		if last >= first {
			t.Errorf("%s: relative perf did not degrade (%.3f -> %.3f)", b, first, last)
		}
	}
	// galgel's endpoint loss should exceed ammp's (paper: 41% vs 27%).
	g0, _ := res.Relative(0, "galgel")
	gN, _ := res.Relative(len(res.Points)-1, "galgel")
	a0, _ := res.Relative(0, "ammp")
	aN, _ := res.Relative(len(res.Points)-1, "ammp")
	lossG := (g0 - gN) / g0
	lossA := (a0 - aN) / a0
	if lossG <= 0 || lossA <= 0 {
		t.Errorf("losses not positive: galgel %.3f ammp %.3f", lossG, lossA)
	}
	if !strings.Contains(res.Render().Text(), "FI=30") {
		t.Error("render missing sweep points")
	}
	if _, ok := res.Relative(0, "nope"); ok {
		t.Error("Relative found a nonexistent benchmark")
	}
}

func TestFig6QuickShape(t *testing.T) {
	o := QuickOptions()
	var benches []trace.Profile
	for _, n := range []string{"bzip2", "qsort"} {
		p, _ := trace.ByName(n)
		benches = append(benches, p)
	}
	res, err := Fig6(context.Background(), o, benches, []int{2, 10, 170})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Larger CBs must not perform worse; the 2 KB point approaches the
	// baseline (paper: identical performance).
	small := res.MeanRelative(0)
	big := res.MeanRelative(len(res.Points) - 1)
	if big < small {
		t.Errorf("bigger CB slower: %.3f vs %.3f", big, small)
	}
	if big < 0.93 {
		t.Errorf("2KB CB relative performance %.3f, want near baseline", big)
	}
	// Stall fraction shrinks with size.
	if res.Points[0].MeanCBFullStalls < res.Points[2].MeanCBFullStalls {
		t.Error("CB-full stalls did not shrink with size")
	}
	if res.Points[2].CBBytes != 170*12 {
		t.Errorf("CBBytes = %d", res.Points[2].CBBytes)
	}
	if !strings.Contains(res.Render().Text(), "entries") {
		t.Error("render missing size labels")
	}
}

func TestSERSweepQuick(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = o.Benchmarks[:2]
	res, err := SERSweep(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorFreeUnSync <= res.ErrorFreeReunion {
		t.Errorf("error-free IPC: unsync %.3f <= reunion %.3f",
			res.ErrorFreeUnSync, res.ErrorFreeReunion)
	}
	if res.CostUnSync <= res.CostReunion {
		t.Error("UnSync recovery must cost more per error than Reunion rollback")
	}
	if res.BreakEvenSER <= 0 {
		t.Fatal("no break-even SER found")
	}
	if res.BreakEvenSER < 1e-7 || res.BreakEvenSER > 1e-1 {
		t.Errorf("break-even SER = %g, expected in the paper's ballpark (~1e-3)", res.BreakEvenSER)
	}
	// Flatness: across 1e-17..1e-7 the IPC varies by < 0.1%.
	var lo, hi float64 = math.Inf(1), 0
	for _, p := range res.Analytic {
		if p.Rate <= 1e-7 {
			if p.UnSyncIPC < lo {
				lo = p.UnSyncIPC
			}
			if p.UnSyncIPC > hi {
				hi = p.UnSyncIPC
			}
		}
	}
	if (hi-lo)/hi > 0.001 {
		t.Errorf("IPC not flat across low SER: %.5f..%.5f", lo, hi)
	}
	// Injected validation points exist and degrade with rate.
	if len(res.Injected) != len(serInjectionRates) {
		t.Fatalf("injected points = %d", len(res.Injected))
	}
	last := res.Injected[len(res.Injected)-1]
	if last.UnSyncIPC >= res.ErrorFreeUnSync {
		t.Error("injected errors did not reduce UnSync IPC")
	}
	if !strings.Contains(res.Render().Text(), "break-even") {
		t.Error("render missing break-even note")
	}
}

func TestROECQuick(t *testing.T) {
	res, err := ROEC(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnSyncFrac != 1 {
		t.Errorf("UnSync coverage fraction = %.3f", res.UnSyncFrac)
	}
	if res.ReunionFrac >= res.UnSyncFrac {
		t.Error("Reunion ROEC must be smaller")
	}
	if res.UnSyncCampaign.CorrectRate() != 1 {
		t.Errorf("UnSync campaign correct rate = %.2f", res.UnSyncCampaign.CorrectRate())
	}
	if res.ReunionTransient.CorrectRate() != 1 {
		t.Errorf("Reunion transient correct rate = %.2f", res.ReunionTransient.CorrectRate())
	}
	if res.ReunionPersistent.Unrecoverable == 0 {
		t.Error("persistent campaign should show unrecoverable upsets")
	}
	if !strings.Contains(res.Render().Text(), "Coverage fraction") {
		t.Error("render incomplete")
	}
	if !strings.Contains(StructuralTable().Text(), "regfile") {
		t.Error("structural table incomplete")
	}
}

func TestOptionsHelpers(t *testing.T) {
	o := DefaultOptions()
	if len(o.Benchmarks) != 28 {
		t.Errorf("default benchmarks = %d, want 28", len(o.Benchmarks))
	}
	q := QuickOptions()
	if len(q.Benchmarks) == 0 || q.RC.MeasureInsts >= o.RC.MeasureInsts {
		t.Error("quick options not scaled down")
	}
	if len(q.names()) != len(q.Benchmarks) {
		t.Error("names helper wrong")
	}
}

func TestAblationWritePolicy(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = o.Benchmarks[:2]
	rows, err := AblationWritePolicy(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MeanDirtyWB <= 0 {
			t.Errorf("%s: no dirty-line exposure measured under write-back", r.Benchmark)
		}
		if r.MeanDirtyWT != 0 {
			t.Errorf("%s: write-through must have zero dirty lines", r.Benchmark)
		}
		if r.WTRelativePerf < 0.9 || r.WTRelativePerf > 1.1 {
			t.Errorf("%s: WT relative perf = %.3f", r.Benchmark, r.WTRelativePerf)
		}
	}
	if !strings.Contains(RenderWritePolicy(rows).Text(), "Dirty") {
		t.Error("render incomplete")
	}
}

func TestAblationForwarding(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = o.Benchmarks[:2]
	rows, err := AblationForwarding(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.WithoutFwdIPC >= r.WithFwdIPC {
			t.Errorf("%s: removing forwarding did not slow Reunion (%.3f vs %.3f)",
				r.Benchmark, r.WithoutFwdIPC, r.WithFwdIPC)
		}
		if r.SlowdownPct < 5 {
			t.Errorf("%s: no-forwarding slowdown only %.1f%% — should be substantial",
				r.Benchmark, r.SlowdownPct)
		}
	}
	if !strings.Contains(RenderForwarding(rows).Text(), "forwarding") {
		t.Error("render incomplete")
	}
}

func TestAblationDetection(t *testing.T) {
	rows := AblationDetection()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var hybrid, parity, dmr DetectionRow
	for _, r := range rows {
		switch {
		case strings.Contains(r.Name, "hybrid"):
			hybrid = r
		case strings.Contains(r.Name, "parity"):
			parity = r
		case strings.Contains(r.Name, "DMR"):
			dmr = r
		}
	}
	// The paper's argument: parity-everywhere is cheapest but leaves
	// per-cycle elements unprotected; DMR-everywhere costs far more
	// than the hybrid.
	if !(parity.AreaUM2 < hybrid.AreaUM2 && hybrid.AreaUM2 < dmr.AreaUM2) {
		t.Errorf("area ordering wrong: parity %.0f, hybrid %.0f, dmr %.0f",
			parity.AreaUM2, hybrid.AreaUM2, dmr.AreaUM2)
	}
	if dmr.PowerOvhPct < 1.5*hybrid.PowerOvhPct {
		t.Errorf("DMR-everywhere power overhead %.1f%% not clearly above hybrid %.1f%%",
			dmr.PowerOvhPct, hybrid.PowerOvhPct)
	}
	if !strings.Contains(RenderDetection(rows).Text(), "hybrid") {
		t.Error("render incomplete")
	}
}

func TestRedundancyStudyQuick(t *testing.T) {
	o := QuickOptions()
	res, err := RedundancyStudy(context.Background(), o, "gzip", []float64{0, 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	clean, hot := res.Points[0], res.Points[1]
	// Error-free: the two degrees run at essentially the same pace.
	if clean.TMRIPC < 0.9*clean.DMRIPC {
		t.Errorf("error-free TMR %.3f far below DMR %.3f", clean.TMRIPC, clean.DMRIPC)
	}
	// Under heavy errors TMR's masking must beat the pair-wide stall.
	if hot.TMRIPC <= hot.DMRIPC {
		t.Errorf("at 1e-3 TMR %.3f not above DMR %.3f", hot.TMRIPC, hot.DMRIPC)
	}
	// Silicon: the triple costs ~50% more.
	ratio := res.TMRAreaUM2 / res.DMRAreaUM2
	if ratio < 1.4 || ratio > 1.6 {
		t.Errorf("TMR/DMR silicon ratio = %.2f", ratio)
	}
	if !strings.Contains(res.Render().Text(), "TMR triple") {
		t.Error("render incomplete")
	}
	if _, err := RedundancyStudy(context.Background(), o, "bogus", nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestChipInterferenceQuick(t *testing.T) {
	o := QuickOptions()
	rows, err := ChipInterference(context.Background(), o, [][2]string{{"sha", "crc32"}}, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.AloneIPC <= 0 || r.CoRunIPC <= 0 {
		t.Fatalf("IPCs: %v", r)
	}
	// Sharing the L2/bus can only slow the pair down (or leave it flat).
	if r.CoRunIPC > r.AloneIPC*1.02 {
		t.Errorf("co-running sped the pair up: %.3f vs %.3f", r.CoRunIPC, r.AloneIPC)
	}
	if !strings.Contains(RenderInterference(rows).Text(), "Neighbor") {
		t.Error("render incomplete")
	}
	if _, err := ChipInterference(context.Background(), o, [][2]string{{"bogus", "sha"}}, 1000); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFigureCharts(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = o.Benchmarks[:2]
	f4, err := Fig4(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f4.Chart(), "#") {
		t.Error("Fig4 chart empty")
	}
	var benches []trace.Profile
	p, _ := trace.ByName("ammp")
	benches = append(benches, p)
	f5, err := Fig5(context.Background(), o, benches, []sweep.Pair[int, uint64]{{X: 1, Y: 10}, {X: 30, Y: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f5.Chart(), "ammp") {
		t.Error("Fig5 chart missing series")
	}
	f6, err := Fig6(context.Background(), o, benches, []int{2, 170})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f6.Chart(), "2040B") {
		t.Error("Fig6 chart missing x labels")
	}
}

func TestAVFEstimateQuick(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = o.Benchmarks[:2]
	rows, err := AVFEstimate(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TotalBits <= 0 {
			t.Errorf("%s: no vulnerable mass", r.Benchmark)
		}
		if r.UnSyncExposed != 0 {
			t.Errorf("%s: UnSync exposure %.0f, want 0 (full ROEC)", r.Benchmark, r.UnSyncExposed)
		}
		if r.ReunionExposed <= 0 || r.ReunionExposed >= r.TotalBits {
			t.Errorf("%s: Reunion exposure %.0f of %.0f", r.Benchmark, r.ReunionExposed, r.TotalBits)
		}
	}
	if !strings.Contains(RenderAVF(rows).Text(), "exposure") {
		t.Error("render incomplete")
	}
}

func TestReplicatedFig4(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = o.Benchmarks[:2]
	o.RC.MeasureInsts = 25_000
	rows, err := ReplicatedFig4(context.Background(), o, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.UnSync.N != 3 || r.Reunion.N != 3 {
			t.Errorf("%s: replica counts wrong", r.Benchmark)
		}
		if r.Reunion.Mean <= r.UnSync.Mean {
			t.Errorf("%s: replicated means lost the ordering (%.1f vs %.1f)",
				r.Benchmark, r.Reunion.Mean, r.UnSync.Mean)
		}
	}
	// The architecture gap must be clear of generator noise for at
	// least one of the two benchmarks at 2 sigma.
	if SignalToNoise(rows, 2) == 0 {
		t.Error("no benchmark separates signal from noise at 2 sigma")
	}
	if !strings.Contains(RenderReplicated(rows).Text(), "±") {
		t.Error("render incomplete")
	}
	if _, err := ReplicatedFig4(context.Background(), o, 1); err == nil {
		t.Error("single replica accepted")
	}
}

func TestReseededChangesStream(t *testing.T) {
	p, _ := trace.ByName("gzip")
	a := trace.Collect(trace.NewGenerator(p.Reseeded(0)), 100)
	b := trace.Collect(trace.NewGenerator(p.Reseeded(1)), 100)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("reseeding did not change the stream")
	}
	c := trace.Collect(trace.NewGenerator(p.Reseeded(0)), 100)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("k=0 must be the canonical stream")
		}
	}
}

func TestEnergyStudyQuick(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = o.Benchmarks[:2]
	rows, err := EnergyStudy(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BaselineNJ <= 0 || r.UnSyncNJ <= 0 || r.ReunionNJ <= 0 {
			t.Fatalf("%s: non-positive energies: %+v", r.Benchmark, r)
		}
		// Redundancy costs energy: a pair must burn more per
		// instruction than the single core.
		if r.UnSyncNJ <= r.BaselineNJ {
			t.Errorf("%s: UnSync pair cheaper than a single core", r.Benchmark)
		}
		// The headline: UnSync beats Reunion on energy per instruction
		// (lower power AND higher throughput).
		if r.UnSyncNJ >= r.ReunionNJ {
			t.Errorf("%s: UnSync %.2f nJ not below Reunion %.2f nJ",
				r.Benchmark, r.UnSyncNJ, r.ReunionNJ)
		}
	}
	if !strings.Contains(RenderEnergy(rows).Text(), "nJ") {
		t.Error("render incomplete")
	}
}
