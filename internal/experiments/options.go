// Package experiments contains one entry point per table and figure of
// the paper's evaluation (§V–§VI). Each returns both structured results
// (asserted by tests and benchmarks) and a rendered report table.
//
// Index:
//
//	TableI   – simulated baseline CMP parameters
//	TableII  – hardware overhead comparison (synthesis model)
//	TableIII – projected die sizes of many-core processors
//	Fig4     – performance overhead from serializing instructions
//	Fig5     – Reunion sensitivity to FI and comparison latency
//	Fig6     – UnSync sensitivity to Communication Buffer size
//	SERSweep – IPC across soft-error rates + break-even SER (§VI-C)
//	ROEC     – region-of-error-coverage comparison (§VI-D)
package experiments

import (
	"runtime"

	"github.com/cmlasu/unsync/internal/cmp"
	"github.com/cmlasu/unsync/internal/trace"
)

// Options configures a whole experiment run.
type Options struct {
	RC         cmp.RunConfig
	Benchmarks []trace.Profile
	Workers    int
}

// DefaultOptions returns the full-fidelity configuration: the Table I
// machine, all 20 benchmark profiles, 50k-instruction warmup and
// 200k-instruction measurement windows. The RunConfig carries a shared
// replay cache so every scheme and sweep point of an experiment replays
// the same materialized trace instead of regenerating it.
func DefaultOptions() Options {
	o := Options{
		RC:         cmp.DefaultRunConfig(),
		Benchmarks: trace.Benchmarks(),
		Workers:    runtime.NumCPU(),
	}
	o.RC.Source = cmp.NewCachedSource(trace.DefaultCacheBudget)
	return o
}

// QuickOptions returns a scaled-down configuration for tests and smoke
// runs: shorter windows and a representative benchmark subset.
func QuickOptions() Options {
	o := DefaultOptions()
	o.RC.WarmupInsts = 10_000
	o.RC.MeasureInsts = 40_000
	o.Benchmarks = o.Benchmarks[:0:0]
	for _, name := range []string{"bzip2", "ammp", "galgel", "gzip", "sha", "qsort"} {
		p, ok := trace.ByName(name)
		if ok {
			o.Benchmarks = append(o.Benchmarks, p)
		}
	}
	return o
}

// names returns the benchmark names of the option set.
func (o *Options) names() []string {
	out := make([]string, len(o.Benchmarks))
	for i, p := range o.Benchmarks {
		out[i] = p.Name
	}
	return out
}
