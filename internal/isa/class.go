// Package isa defines the MIPS-like instruction set used throughout the
// simulator: opcodes, resource classes, functional-unit latencies, and a
// compact binary encoding.
//
// The ISA is deliberately small — a classic RISC integer core plus a
// floating-point coprocessor and the three kinds of serializing
// instructions the paper's evaluation depends on (traps, memory barriers,
// and non-idempotent atomics). It is rich enough to run real programs on
// the functional emulator (internal/emu) and to drive the cycle-accurate
// timing model (internal/pipeline).
package isa

import "fmt"

// Class is the resource class of an instruction as seen by the timing
// model: it selects the functional unit, the execution latency, and
// whether the instruction serializes the pipeline.
type Class uint8

// Resource classes. Serializing classes (Trap, Membar, Atomic) force
// redundant-core synchronization in the Reunion scheme; they are ordinary
// instructions under UnSync.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPALU
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassTrap   // system calls, software interrupts
	ClassMembar // memory barriers / fences
	ClassAtomic // non-idempotent read-modify-write
	NumClasses
)

var classNames = [NumClasses]string{
	"nop", "int-alu", "int-mul", "int-div",
	"fp-alu", "fp-mul", "fp-div",
	"load", "store", "branch", "jump",
	"trap", "membar", "atomic",
}

// String names the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Serializing reports whether the class is a serializing instruction:
// one that, in a fingerprint-compared redundant scheme like Reunion,
// cannot retire until every preceding instruction has been verified.
func (c Class) Serializing() bool {
	switch c {
	case ClassTrap, ClassMembar, ClassAtomic:
		return true
	}
	return false
}

// MemoryOp reports whether the class accesses data memory.
func (c Class) MemoryOp() bool {
	switch c {
	case ClassLoad, ClassStore, ClassAtomic:
		return true
	}
	return false
}

// ControlOp reports whether the class redirects the instruction stream.
func (c Class) ControlOp() bool {
	switch c {
	case ClassBranch, ClassJump, ClassTrap:
		return true
	}
	return false
}

// Latency returns the execution latency of the class in cycles, excluding
// any memory-hierarchy time (loads/stores/atomics add cache latency on
// top). The values follow the Alpha-21264-like configuration of Table I.
func Latency(c Class) int {
	switch c {
	case ClassNop:
		return 1
	case ClassIntALU, ClassBranch, ClassJump:
		return 1
	case ClassIntMul:
		return 3
	case ClassIntDiv:
		return 12
	case ClassFPALU:
		return 4
	case ClassFPMul:
		return 4
	case ClassFPDiv:
		return 16
	case ClassLoad, ClassStore, ClassAtomic:
		return 1 // address generation; memory time added by the cache model
	case ClassTrap, ClassMembar:
		return 1
	}
	return 1
}

// Pipelined reports whether the functional unit for the class accepts a
// new operation every cycle (fully pipelined) or blocks until done.
func Pipelined(c Class) bool {
	switch c {
	case ClassIntDiv, ClassFPDiv:
		return false
	}
	return true
}
