package isa

import "fmt"

// Opcode enumerates the architectural instructions.
type Opcode uint8

// Integer register-register ops.
const (
	NOP Opcode = iota
	ADD
	SUB
	AND
	OR
	XOR
	NOR
	SLT  // set if less than (signed)
	SLTU // set if less than (unsigned)
	SLL  // shift left logical (by Rs2 low 6 bits)
	SRL
	SRA
	MUL
	MULH
	DIV
	REM

	// Integer register-immediate ops.
	ADDI
	ANDI
	ORI
	XORI
	SLTI
	SLLI
	SRLI
	SRAI
	LUI // Rd = Imm << 16

	// Memory ops (base Rs1 + Imm).
	LB
	LH
	LW
	LD
	LBU // unsigned (zero-extending) loads
	LHU
	LWU
	SB
	SH
	SW
	SD

	// Control flow.
	BEQ
	BNE
	BLT
	BGE
	BLTU // unsigned compares
	BGEU
	J
	JAL // link into Rd
	JR  // jump to Rs1
	JALR

	// Floating point (operands in the FP register file).
	FADD
	FSUB
	FMUL
	FDIV
	FMIN
	FMAX
	FCVTIF // int (Rs1, GPR) -> float (Rd, FPR)
	FCVTFI // float (Rs1, FPR) -> int (Rd, GPR)
	FEQ    // FP compare, writes GPR Rd
	FLT
	FLD // FP load (FPR Rd)
	FSD // FP store (FPR Rs2)

	// Serializing instructions.
	SYSCALL // trap; service selected by r2 by convention
	FENCE   // memory barrier
	AMOADD  // atomic fetch-and-add word: Rd = mem[Rs1]; mem[Rs1] += Rs2

	HALT // stop the machine

	NumOpcodes
)

// RegFile identifies which register file an operand lives in.
type RegFile uint8

const (
	RegNone RegFile = iota
	RegInt
	RegFP
)

// opInfo is the static metadata for one opcode.
type opInfo struct {
	name  string
	class Class
	// register usage: file of each operand slot, RegNone if unused.
	rd, rs1, rs2 RegFile
	hasImm       bool
	store        bool // writes data memory
	load         bool // reads data memory
}

var opTable = [NumOpcodes]opInfo{
	NOP: {name: "nop", class: ClassNop},

	ADD:  {name: "add", class: ClassIntALU, rd: RegInt, rs1: RegInt, rs2: RegInt},
	SUB:  {name: "sub", class: ClassIntALU, rd: RegInt, rs1: RegInt, rs2: RegInt},
	AND:  {name: "and", class: ClassIntALU, rd: RegInt, rs1: RegInt, rs2: RegInt},
	OR:   {name: "or", class: ClassIntALU, rd: RegInt, rs1: RegInt, rs2: RegInt},
	XOR:  {name: "xor", class: ClassIntALU, rd: RegInt, rs1: RegInt, rs2: RegInt},
	NOR:  {name: "nor", class: ClassIntALU, rd: RegInt, rs1: RegInt, rs2: RegInt},
	SLT:  {name: "slt", class: ClassIntALU, rd: RegInt, rs1: RegInt, rs2: RegInt},
	SLTU: {name: "sltu", class: ClassIntALU, rd: RegInt, rs1: RegInt, rs2: RegInt},
	SLL:  {name: "sll", class: ClassIntALU, rd: RegInt, rs1: RegInt, rs2: RegInt},
	SRL:  {name: "srl", class: ClassIntALU, rd: RegInt, rs1: RegInt, rs2: RegInt},
	SRA:  {name: "sra", class: ClassIntALU, rd: RegInt, rs1: RegInt, rs2: RegInt},
	MUL:  {name: "mul", class: ClassIntMul, rd: RegInt, rs1: RegInt, rs2: RegInt},
	MULH: {name: "mulh", class: ClassIntMul, rd: RegInt, rs1: RegInt, rs2: RegInt},
	DIV:  {name: "div", class: ClassIntDiv, rd: RegInt, rs1: RegInt, rs2: RegInt},
	REM:  {name: "rem", class: ClassIntDiv, rd: RegInt, rs1: RegInt, rs2: RegInt},

	ADDI: {name: "addi", class: ClassIntALU, rd: RegInt, rs1: RegInt, hasImm: true},
	ANDI: {name: "andi", class: ClassIntALU, rd: RegInt, rs1: RegInt, hasImm: true},
	ORI:  {name: "ori", class: ClassIntALU, rd: RegInt, rs1: RegInt, hasImm: true},
	XORI: {name: "xori", class: ClassIntALU, rd: RegInt, rs1: RegInt, hasImm: true},
	SLTI: {name: "slti", class: ClassIntALU, rd: RegInt, rs1: RegInt, hasImm: true},
	SLLI: {name: "slli", class: ClassIntALU, rd: RegInt, rs1: RegInt, hasImm: true},
	SRLI: {name: "srli", class: ClassIntALU, rd: RegInt, rs1: RegInt, hasImm: true},
	SRAI: {name: "srai", class: ClassIntALU, rd: RegInt, rs1: RegInt, hasImm: true},
	LUI:  {name: "lui", class: ClassIntALU, rd: RegInt, hasImm: true},

	LB:  {name: "lb", class: ClassLoad, rd: RegInt, rs1: RegInt, hasImm: true, load: true},
	LH:  {name: "lh", class: ClassLoad, rd: RegInt, rs1: RegInt, hasImm: true, load: true},
	LW:  {name: "lw", class: ClassLoad, rd: RegInt, rs1: RegInt, hasImm: true, load: true},
	LD:  {name: "ld", class: ClassLoad, rd: RegInt, rs1: RegInt, hasImm: true, load: true},
	LBU: {name: "lbu", class: ClassLoad, rd: RegInt, rs1: RegInt, hasImm: true, load: true},
	LHU: {name: "lhu", class: ClassLoad, rd: RegInt, rs1: RegInt, hasImm: true, load: true},
	LWU: {name: "lwu", class: ClassLoad, rd: RegInt, rs1: RegInt, hasImm: true, load: true},
	SB:  {name: "sb", class: ClassStore, rs1: RegInt, rs2: RegInt, hasImm: true, store: true},
	SH:  {name: "sh", class: ClassStore, rs1: RegInt, rs2: RegInt, hasImm: true, store: true},
	SW:  {name: "sw", class: ClassStore, rs1: RegInt, rs2: RegInt, hasImm: true, store: true},
	SD:  {name: "sd", class: ClassStore, rs1: RegInt, rs2: RegInt, hasImm: true, store: true},

	BEQ:  {name: "beq", class: ClassBranch, rs1: RegInt, rs2: RegInt, hasImm: true},
	BNE:  {name: "bne", class: ClassBranch, rs1: RegInt, rs2: RegInt, hasImm: true},
	BLT:  {name: "blt", class: ClassBranch, rs1: RegInt, rs2: RegInt, hasImm: true},
	BGE:  {name: "bge", class: ClassBranch, rs1: RegInt, rs2: RegInt, hasImm: true},
	BLTU: {name: "bltu", class: ClassBranch, rs1: RegInt, rs2: RegInt, hasImm: true},
	BGEU: {name: "bgeu", class: ClassBranch, rs1: RegInt, rs2: RegInt, hasImm: true},
	J:    {name: "j", class: ClassJump, hasImm: true},
	JAL:  {name: "jal", class: ClassJump, rd: RegInt, hasImm: true},
	JR:   {name: "jr", class: ClassJump, rs1: RegInt},
	JALR: {name: "jalr", class: ClassJump, rd: RegInt, rs1: RegInt},

	FADD:   {name: "fadd", class: ClassFPALU, rd: RegFP, rs1: RegFP, rs2: RegFP},
	FSUB:   {name: "fsub", class: ClassFPALU, rd: RegFP, rs1: RegFP, rs2: RegFP},
	FMUL:   {name: "fmul", class: ClassFPMul, rd: RegFP, rs1: RegFP, rs2: RegFP},
	FDIV:   {name: "fdiv", class: ClassFPDiv, rd: RegFP, rs1: RegFP, rs2: RegFP},
	FMIN:   {name: "fmin", class: ClassFPALU, rd: RegFP, rs1: RegFP, rs2: RegFP},
	FMAX:   {name: "fmax", class: ClassFPALU, rd: RegFP, rs1: RegFP, rs2: RegFP},
	FCVTIF: {name: "fcvt.i.f", class: ClassFPALU, rd: RegFP, rs1: RegInt},
	FCVTFI: {name: "fcvt.f.i", class: ClassFPALU, rd: RegInt, rs1: RegFP},
	FEQ:    {name: "feq", class: ClassFPALU, rd: RegInt, rs1: RegFP, rs2: RegFP},
	FLT:    {name: "flt", class: ClassFPALU, rd: RegInt, rs1: RegFP, rs2: RegFP},
	FLD:    {name: "fld", class: ClassLoad, rd: RegFP, rs1: RegInt, hasImm: true, load: true},
	FSD:    {name: "fsd", class: ClassStore, rs1: RegInt, rs2: RegFP, hasImm: true, store: true},

	SYSCALL: {name: "syscall", class: ClassTrap},
	FENCE:   {name: "fence", class: ClassMembar},
	AMOADD:  {name: "amoadd", class: ClassAtomic, rd: RegInt, rs1: RegInt, rs2: RegInt, load: true, store: true},

	HALT: {name: "halt", class: ClassTrap},
}

// Valid reports whether the opcode is in range.
func (o Opcode) Valid() bool { return o < NumOpcodes }

// String returns the assembler mnemonic.
func (o Opcode) String() string {
	if o.Valid() {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class returns the resource class of the opcode.
func (o Opcode) Class() Class {
	if o.Valid() {
		return opTable[o].class
	}
	return ClassNop
}

// RdFile, Rs1File, Rs2File return the register file of each operand slot
// (RegNone when the slot is unused by the opcode).
func (o Opcode) RdFile() RegFile  { return opTable[o].rd }
func (o Opcode) Rs1File() RegFile { return opTable[o].rs1 }
func (o Opcode) Rs2File() RegFile { return opTable[o].rs2 }

// HasImm reports whether the opcode carries an immediate.
func (o Opcode) HasImm() bool { return opTable[o].hasImm }

// IsStore / IsLoad report data-memory access. AMOADD is both.
func (o Opcode) IsStore() bool { return opTable[o].store }
func (o Opcode) IsLoad() bool  { return opTable[o].load }

// MemWidth returns the access width in bytes for memory opcodes (0 for
// non-memory opcodes).
func (o Opcode) MemWidth() int {
	switch o {
	case LB, SB, LBU:
		return 1
	case LH, SH, LHU:
		return 2
	case LW, SW, LWU, AMOADD:
		return 4
	case LD, SD, FLD, FSD:
		return 8
	}
	return 0
}

// OpcodeByName resolves an assembler mnemonic; ok is false if unknown.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

var nameToOp = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for o := Opcode(0); o < NumOpcodes; o++ {
		m[opTable[o].name] = o
	}
	return m
}()
