package isa

import (
	"errors"
	"fmt"
)

// NumRegs is the number of registers in each architectural register file.
const NumRegs = 32

// Inst is one decoded instruction. Register indices address the file
// given by the opcode's operand metadata (integer or floating point).
type Inst struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int64
}

// Class is a convenience shorthand for i.Op.Class().
func (i Inst) Class() Class { return i.Op.Class() }

// String disassembles the instruction.
func (i Inst) String() string {
	info := opTable[i.Op]
	switch {
	case i.Op == NOP || i.Op == SYSCALL || i.Op == FENCE || i.Op == HALT:
		return info.name
	case i.Op.IsLoad() && !i.Op.IsStore(): // loads: rd, imm(rs1)
		return fmt.Sprintf("%s %s, %d(%s)", info.name, regName(info.rd, i.Rd), i.Imm, regName(info.rs1, i.Rs1))
	case i.Op.IsStore() && !i.Op.IsLoad(): // stores: rs2, imm(rs1)
		return fmt.Sprintf("%s %s, %d(%s)", info.name, regName(info.rs2, i.Rs2), i.Imm, regName(info.rs1, i.Rs1))
	case i.Op == AMOADD:
		return fmt.Sprintf("%s %s, %s, (%s)", info.name, regName(info.rd, i.Rd), regName(info.rs2, i.Rs2), regName(info.rs1, i.Rs1))
	case i.Op == J:
		return fmt.Sprintf("%s %d", info.name, i.Imm)
	case i.Op == JAL:
		return fmt.Sprintf("%s %s, %d", info.name, regName(info.rd, i.Rd), i.Imm)
	case i.Op == JR:
		return fmt.Sprintf("%s %s", info.name, regName(info.rs1, i.Rs1))
	case i.Op == JALR:
		return fmt.Sprintf("%s %s, %s", info.name, regName(info.rd, i.Rd), regName(info.rs1, i.Rs1))
	case i.Op.Class() == ClassBranch:
		return fmt.Sprintf("%s %s, %s, %d", info.name, regName(info.rs1, i.Rs1), regName(info.rs2, i.Rs2), i.Imm)
	case i.Op == LUI:
		return fmt.Sprintf("%s %s, %d", info.name, regName(info.rd, i.Rd), i.Imm)
	case info.hasImm:
		return fmt.Sprintf("%s %s, %s, %d", info.name, regName(info.rd, i.Rd), regName(info.rs1, i.Rs1), i.Imm)
	case info.rs2 != RegNone:
		return fmt.Sprintf("%s %s, %s, %s", info.name, regName(info.rd, i.Rd), regName(info.rs1, i.Rs1), regName(info.rs2, i.Rs2))
	case info.rs1 != RegNone && info.rd != RegNone:
		return fmt.Sprintf("%s %s, %s", info.name, regName(info.rd, i.Rd), regName(info.rs1, i.Rs1))
	default:
		return info.name
	}
}

func regName(f RegFile, idx uint8) string {
	switch f {
	case RegInt:
		return fmt.Sprintf("r%d", idx)
	case RegFP:
		return fmt.Sprintf("f%d", idx)
	}
	return "?"
}

// Binary encoding: a fixed 64-bit word.
//
//	bits  0..7   opcode
//	bits  8..12  rd
//	bits 13..17  rs1
//	bits 18..22  rs2
//	bits 23..24  reserved (zero)
//	bits 25..63  immediate, two's complement, 39 bits
//
// The wide immediate keeps the encoding trivially reversible for the full
// int64 ranges the assembler accepts in practice (±2^38).
const (
	immBits = 39
	immMax  = int64(1)<<(immBits-1) - 1
	immMin  = -int64(1) << (immBits - 1)
)

// ErrImmRange is returned by Encode when the immediate does not fit.
var ErrImmRange = errors.New("isa: immediate out of encodable range")

// ErrBadWord is returned by Decode for malformed instruction words.
var ErrBadWord = errors.New("isa: malformed instruction word")

// Encode packs the instruction into its 64-bit binary form.
func (i Inst) Encode() (uint64, error) {
	if !i.Op.Valid() {
		return 0, fmt.Errorf("%w: opcode %d", ErrBadWord, i.Op)
	}
	if i.Rd >= NumRegs || i.Rs1 >= NumRegs || i.Rs2 >= NumRegs {
		return 0, fmt.Errorf("%w: register index out of range", ErrBadWord)
	}
	if i.Imm > immMax || i.Imm < immMin {
		return 0, fmt.Errorf("%w: %d", ErrImmRange, i.Imm)
	}
	w := uint64(i.Op)
	w |= uint64(i.Rd) << 8
	w |= uint64(i.Rs1) << 13
	w |= uint64(i.Rs2) << 18
	w |= (uint64(i.Imm) & (1<<immBits - 1)) << 25
	return w, nil
}

// Decode unpacks a 64-bit instruction word.
func Decode(w uint64) (Inst, error) {
	op := Opcode(w & 0xff)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("%w: opcode %d", ErrBadWord, uint8(op))
	}
	if (w>>23)&0x3 != 0 {
		return Inst{}, fmt.Errorf("%w: reserved bits set", ErrBadWord)
	}
	imm := int64(w>>25) & (1<<immBits - 1)
	if imm&(1<<(immBits-1)) != 0 { // sign extend
		imm |= ^int64(0) << immBits
	}
	return Inst{
		Op:  op,
		Rd:  uint8((w >> 8) & 0x1f),
		Rs1: uint8((w >> 13) & 0x1f),
		Rs2: uint8((w >> 18) & 0x1f),
		Imm: imm,
	}, nil
}

// DepReg maps an operand (file, index) to a flat dependence-tracking
// register number: integer registers occupy 0..31, FP registers 32..63.
// It returns -1 for unused operands and for integer r0 (hardwired zero).
func DepReg(f RegFile, idx uint8) int {
	switch f {
	case RegInt:
		if idx == 0 {
			return -1
		}
		return int(idx)
	case RegFP:
		return NumRegs + int(idx)
	}
	return -1
}

// TotalDepRegs is the size of the flat dependence-register space.
const TotalDepRegs = 2 * NumRegs

// Dests returns the flat destination register of the instruction, or -1.
func (i Inst) DestReg() int { return DepReg(i.Op.RdFile(), i.Rd) }

// SrcRegs returns the flat source registers (each -1 if unused).
func (i Inst) SrcRegs() (int, int) {
	return DepReg(i.Op.Rs1File(), i.Rs1), DepReg(i.Op.Rs2File(), i.Rs2)
}
