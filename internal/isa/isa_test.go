package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	if ClassIntALU.String() != "int-alu" {
		t.Errorf("ClassIntALU.String() = %q", ClassIntALU.String())
	}
	if ClassFPDiv.String() != "fp-div" {
		t.Errorf("ClassFPDiv.String() = %q", ClassFPDiv.String())
	}
	if got := Class(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range class String() = %q", got)
	}
}

func TestSerializingClasses(t *testing.T) {
	want := map[Class]bool{
		ClassTrap: true, ClassMembar: true, ClassAtomic: true,
	}
	for c := Class(0); c < NumClasses; c++ {
		if got := c.Serializing(); got != want[c] {
			t.Errorf("%v.Serializing() = %v, want %v", c, got, want[c])
		}
	}
}

func TestMemoryAndControlOps(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		wantMem := c == ClassLoad || c == ClassStore || c == ClassAtomic
		if got := c.MemoryOp(); got != wantMem {
			t.Errorf("%v.MemoryOp() = %v, want %v", c, got, wantMem)
		}
		wantCtl := c == ClassBranch || c == ClassJump || c == ClassTrap
		if got := c.ControlOp(); got != wantCtl {
			t.Errorf("%v.ControlOp() = %v, want %v", c, got, wantCtl)
		}
	}
}

func TestLatencyPositive(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if Latency(c) < 1 {
			t.Errorf("Latency(%v) = %d, want >= 1", c, Latency(c))
		}
	}
	if Latency(ClassIntMul) <= Latency(ClassIntALU) {
		t.Error("multiply should be slower than ALU")
	}
	if Latency(ClassFPDiv) <= Latency(ClassFPALU) {
		t.Error("FP divide should be slower than FP ALU")
	}
}

func TestPipelined(t *testing.T) {
	if Pipelined(ClassIntDiv) || Pipelined(ClassFPDiv) {
		t.Error("dividers must not be pipelined")
	}
	if !Pipelined(ClassIntALU) || !Pipelined(ClassFPMul) {
		t.Error("ALU and FP multiplier must be pipelined")
	}
}

func TestOpcodeMetadataConsistency(t *testing.T) {
	for o := Opcode(0); o < NumOpcodes; o++ {
		info := opTable[o]
		if info.name == "" {
			t.Fatalf("opcode %d has no name", o)
		}
		if info.load && o.Class() != ClassLoad && o.Class() != ClassAtomic {
			t.Errorf("%v: load flag on non-load class %v", o, o.Class())
		}
		if info.store && o.Class() != ClassStore && o.Class() != ClassAtomic {
			t.Errorf("%v: store flag on non-store class %v", o, o.Class())
		}
		if o.Class().MemoryOp() != (info.load || info.store) && o.Class() != ClassLoad {
			t.Errorf("%v: memory class/flags disagree", o)
		}
		// Every named opcode must round-trip through the name table.
		got, ok := OpcodeByName(info.name)
		if !ok || got != o {
			t.Errorf("OpcodeByName(%q) = %v, %v; want %v, true", info.name, got, ok, o)
		}
	}
}

func TestOpcodeByNameUnknown(t *testing.T) {
	if _, ok := OpcodeByName("bogus"); ok {
		t.Error("OpcodeByName accepted an unknown mnemonic")
	}
}

func TestMemWidth(t *testing.T) {
	cases := map[Opcode]int{
		LB: 1, SB: 1, LH: 2, SH: 2, LW: 4, SW: 4,
		LD: 8, SD: 8, FLD: 8, FSD: 8, AMOADD: 4,
		ADD: 0, BEQ: 0, NOP: 0,
	}
	for op, want := range cases {
		if got := op.MemWidth(); got != want {
			t.Errorf("%v.MemWidth() = %d, want %d", op, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: ADDI, Rd: 5, Rs1: 0, Imm: -42},
		{Op: LW, Rd: 7, Rs1: 29, Imm: 1 << 20},
		{Op: SW, Rs1: 29, Rs2: 7, Imm: -(1 << 20)},
		{Op: BEQ, Rs1: 1, Rs2: 2, Imm: -4096},
		{Op: LUI, Rd: 31, Imm: 0x7fff},
		{Op: FADD, Rd: 3, Rs1: 4, Rs2: 5},
		{Op: SYSCALL},
		{Op: HALT},
		{Op: ADDI, Rd: 1, Rs1: 1, Imm: immMax},
		{Op: ADDI, Rd: 1, Rs1: 1, Imm: immMin},
	}
	for _, in := range cases {
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", in, err)
		}
		if out != in {
			t.Errorf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := (Inst{Op: ADDI, Imm: immMax + 1}).Encode(); err == nil {
		t.Error("Encode accepted an oversized immediate")
	}
	if _, err := (Inst{Op: ADDI, Imm: immMin - 1}).Encode(); err == nil {
		t.Error("Encode accepted an undersized immediate")
	}
	if _, err := (Inst{Op: NumOpcodes}).Encode(); err == nil {
		t.Error("Encode accepted an invalid opcode")
	}
	if _, err := (Inst{Op: ADD, Rd: 32}).Encode(); err == nil {
		t.Error("Encode accepted register index 32")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(uint64(NumOpcodes)); err == nil {
		t.Error("Decode accepted an invalid opcode")
	}
	w, _ := (Inst{Op: ADD, Rd: 1}).Encode()
	if _, err := Decode(w | 1<<23); err == nil {
		t.Error("Decode accepted reserved bits")
	}
}

// Property: Encode∘Decode is the identity over the valid instruction space.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int64) bool {
		in := Inst{
			Op:  Opcode(op) % NumOpcodes,
			Rd:  rd % NumRegs,
			Rs1: rs1 % NumRegs,
			Rs2: rs2 % NumRegs,
			Imm: imm % immMax,
		}
		w, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Rd: 1, Rs1: 2, Imm: 10}, "addi r1, r2, 10"},
		{Inst{Op: LW, Rd: 4, Rs1: 29, Imm: 8}, "lw r4, 8(r29)"},
		{Inst{Op: SW, Rs2: 4, Rs1: 29, Imm: -8}, "sw r4, -8(r29)"},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 16}, "beq r1, r2, 16"},
		{Inst{Op: J, Imm: 64}, "j 64"},
		{Inst{Op: JAL, Rd: 31, Imm: 128}, "jal r31, 128"},
		{Inst{Op: JR, Rs1: 31}, "jr r31"},
		{Inst{Op: FADD, Rd: 1, Rs1: 2, Rs2: 3}, "fadd f1, f2, f3"},
		{Inst{Op: FLD, Rd: 2, Rs1: 4, Imm: 0}, "fld f2, 0(r4)"},
		{Inst{Op: FSD, Rs2: 2, Rs1: 4, Imm: 0}, "fsd f2, 0(r4)"},
		{Inst{Op: FCVTFI, Rd: 3, Rs1: 7}, "fcvt.f.i r3, f7"},
		{Inst{Op: LUI, Rd: 9, Imm: 4}, "lui r9, 4"},
		{Inst{Op: SYSCALL}, "syscall"},
		{Inst{Op: FENCE}, "fence"},
		{Inst{Op: AMOADD, Rd: 1, Rs2: 2, Rs1: 3}, "amoadd r1, r2, (r3)"},
		{Inst{Op: HALT}, "halt"},
		{Inst{Op: NOP}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestDepReg(t *testing.T) {
	if DepReg(RegInt, 0) != -1 {
		t.Error("integer r0 must not create dependences")
	}
	if DepReg(RegInt, 5) != 5 {
		t.Error("integer registers map to 0..31")
	}
	if DepReg(RegFP, 0) != 32 {
		t.Error("fp f0 maps to 32")
	}
	if DepReg(RegNone, 0) != -1 {
		t.Error("unused operands map to -1")
	}
}

func TestDestAndSrcRegs(t *testing.T) {
	add := Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}
	if add.DestReg() != 1 {
		t.Errorf("DestReg = %d", add.DestReg())
	}
	s1, s2 := add.SrcRegs()
	if s1 != 2 || s2 != 3 {
		t.Errorf("SrcRegs = %d, %d", s1, s2)
	}
	fadd := Inst{Op: FADD, Rd: 1, Rs1: 2, Rs2: 3}
	if fadd.DestReg() != 33 {
		t.Errorf("FP DestReg = %d, want 33", fadd.DestReg())
	}
	st := Inst{Op: SW, Rs1: 4, Rs2: 5}
	if st.DestReg() != -1 {
		t.Error("store has no destination")
	}
}
