package sweep

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	items := Ints(0, 99, 1)
	out, err := Map(items, 8, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapSerialFallback(t *testing.T) {
	out, err := Map([]int{1, 2, 3}, 1, func(x int) (int, error) { return x + 1, nil })
	if err != nil || out[2] != 4 {
		t.Fatalf("serial map wrong: %v %v", out, err)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map([]int{1, 2, 3}, 2, func(x int) (int, error) {
		if x == 2 {
			return 0, boom
		}
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

// TestMapPanicRecovered proves a panicking item becomes that item's
// error — with its index — instead of killing the process, and that a
// panic stops scheduling of not-yet-started items (a panic marks a
// broken harness; grinding through the rest of the list would repeat
// it).
func TestMapPanicRecovered(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, err := Map([]int{0, 1, 2, 3}, workers, func(x int) (int, error) {
			if x == 2 {
				panic("kaboom")
			}
			return x * 10, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic was swallowed", workers)
		}
		msg := err.Error()
		if !strings.Contains(msg, "item 2") || !strings.Contains(msg, "kaboom") {
			t.Errorf("workers=%d: error %q lacks item index or panic value", workers, msg)
		}
		// Items completed before the panic kept their results.
		for _, i := range []int{0, 1} {
			if workers == 1 && out[i] != i*10 {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], i*10)
			}
		}
	}
}

// TestMapPanicStopsScheduling pins the abort contract serially, where
// scheduling order is deterministic: the item after the panic never
// runs and the joined error carries ErrAborted.
func TestMapPanicStopsScheduling(t *testing.T) {
	ran := make([]bool, 4)
	out, err := Map([]int{0, 1, 2, 3}, 1, func(x int) (int, error) {
		ran[x] = true
		if x == 1 {
			panic("kaboom")
		}
		return x * 10, nil
	})
	if ran[2] || ran[3] {
		t.Fatalf("items after the panic still ran: %v", ran)
	}
	if out[3] != 0 {
		t.Errorf("skipped item has non-zero result %d", out[3])
	}
	if !errors.Is(err, ErrAborted) {
		t.Errorf("err = %v, want ErrAborted joined in", err)
	}
}

// TestMapContextCancel proves cancelling the context stops scheduling
// within one item quantum: the partial results survive, the skipped
// items are reported via ErrAborted, and the cancellation cause is
// joined into the error.
func TestMapContextCancel(t *testing.T) {
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		items := Ints(0, 99, 1)
		out, err := MapContext(ctx, items, workers, func(ctx context.Context, x int) (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			return x * 10, nil
		})
		if got := int(ran.Load()); got >= len(items) {
			t.Fatalf("workers=%d: all %d items ran despite cancellation", workers, got)
		}
		if !errors.Is(err, ErrAborted) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want ErrAborted and context.Canceled", workers, err)
		}
		if workers == 1 {
			// Serial scheduling is deterministic: exactly 3 items ran.
			for i, v := range out[:3] {
				if v != i*10 {
					t.Errorf("out[%d] = %d, want %d", i, v, i*10)
				}
			}
			if out[3] != 0 {
				t.Errorf("skipped item has result %d", out[3])
			}
		}
	}
}

// TestMapContextPreCancelled proves an already-cancelled context runs
// nothing at all.
func TestMapContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	_, err := MapContext(ctx, Ints(0, 9, 1), 4, func(context.Context, int) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	if ran.Load() != 0 {
		t.Errorf("%d items ran under a pre-cancelled context", ran.Load())
	}
	if !errors.Is(err, ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

// TestMapAllFailuresReported proves every failing item is joined into
// the returned error, not just the first.
func TestMapAllFailuresReported(t *testing.T) {
	e1 := errors.New("first")
	e2 := errors.New("second")
	_, err := Map([]int{0, 1, 2, 3}, 2, func(x int) (int, error) {
		switch x {
		case 1:
			return 0, e1
		case 3:
			return 0, e2
		}
		return x, nil
	})
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("joined error must carry both failures, got: %v", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "item 1") || !strings.Contains(msg, "item 3") {
		t.Errorf("error %q should name both failing indices", msg)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(nil, 4, func(x int) (int, error) { return x, nil })
	if err != nil || len(out) != 0 {
		t.Error("empty map misbehaved")
	}
}

func TestInts(t *testing.T) {
	got := Ints(1, 7, 2)
	want := []int{1, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Ints = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ints = %v", got)
		}
	}
	down := Ints(5, 1, 2)
	if len(down) != 3 || down[0] != 5 || down[2] != 1 {
		t.Errorf("descending Ints = %v", down)
	}
	if got := Ints(1, 3, 0); len(got) != 3 {
		t.Errorf("zero step not clamped: %v", got)
	}
}

func TestCrossAndZip(t *testing.T) {
	c := Cross([]int{1, 2}, []string{"a", "b", "c"})
	if len(c) != 6 || c[0] != (Pair[int, string]{1, "a"}) || c[5] != (Pair[int, string]{2, "c"}) {
		t.Errorf("Cross = %v", c)
	}
	z := Zip([]int{1, 2, 3}, []string{"x", "y"})
	if len(z) != 2 || z[1] != (Pair[int, string]{2, "y"}) {
		t.Errorf("Zip = %v", z)
	}
}

func TestLogspace(t *testing.T) {
	pts := Logspace(1e-17, 1e-7, 11)
	if len(pts) != 11 {
		t.Fatalf("len = %d", len(pts))
	}
	if math.Abs(pts[0]-1e-17)/1e-17 > 1e-9 || math.Abs(pts[10]-1e-7)/1e-7 > 1e-9 {
		t.Errorf("endpoints: %g %g", pts[0], pts[10])
	}
	// Each step is one decade.
	for i := 1; i < len(pts); i++ {
		if r := pts[i] / pts[i-1]; math.Abs(r-10) > 1e-6 {
			t.Errorf("step %d ratio = %g", i, r)
		}
	}
	if got := Logspace(5, 50, 1); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate Logspace = %v", got)
	}
}
