// Package sweep provides the parameter-sweep plumbing the figure
// experiments share: deterministic parallel mapping over a work list
// and small grid helpers.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrAborted reports that a sweep stopped scheduling new items before
// the work list was exhausted — because the context was cancelled or a
// worker panicked. It is joined alongside the per-item failures so
// callers can distinguish "every item ran, some failed" from "the sweep
// was cut short".
var ErrAborted = errors.New("sweep: aborted before all items ran")

// Map applies f to every item on up to workers goroutines and returns
// the results in input order. An error in one item cancels nothing —
// the remaining items still run and every failure is reported, joined
// into one error carrying each failing item's index. A panic inside f
// is recovered into that item's error AND stops scheduling of not-yet-
// started items (a panic marks a broken harness, not a bad data point;
// grinding through the rest of the list would repeat it): the joined
// error then also carries ErrAborted with the count of skipped items.
// workers <= 0 selects NumCPU.
func Map[T, R any](items []T, workers int, f func(T) (R, error)) ([]R, error) {
	return MapContext(context.Background(), items, workers,
		func(_ context.Context, item T) (R, error) { return f(item) })
}

// MapContext is Map under a context: cancelling ctx stops scheduling
// new items within one item quantum (items already running finish —
// or observe ctx themselves and return early). The partial results are
// still returned in input order, with the zero R for items that never
// ran, and the joined error carries ErrAborted and ctx's cancellation
// cause alongside any per-item failures.
func MapContext[T, R any](ctx context.Context, items []T, workers int, f func(context.Context, T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	errs := make([]error, len(items))
	started := make([]bool, len(items))
	var panicked atomic.Bool
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicked.Store(true)
				errs[i] = fmt.Errorf("panic: %v", r)
			}
		}()
		out[i], errs[i] = f(ctx, items[i])
	}
	// abort reports whether scheduling must stop before the next item.
	abort := func() bool { return panicked.Load() || ctx.Err() != nil }
	if workers <= 1 {
		for i := range items {
			if abort() {
				break
			}
			started[i] = true
			run(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					run(i)
				}
			}()
		}
	dispatch:
		for i := range items {
			if abort() {
				break
			}
			// Block handing the item to a worker, but keep watching the
			// context so a cancel with every worker busy still stops the
			// dispatch loop rather than queueing the whole remainder.
			select {
			case next <- i:
				started[i] = true
			case <-ctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
	}
	var failures []error
	skipped := 0
	for i, err := range errs {
		if !started[i] {
			skipped++
			continue
		}
		if err != nil {
			failures = append(failures, fmt.Errorf("sweep: item %d: %w", i, err))
		}
	}
	if skipped > 0 {
		failures = append(failures, fmt.Errorf("%w: %d of %d items never ran", ErrAborted, skipped, len(items)))
		if cause := context.Cause(ctx); cause != nil {
			failures = append(failures, cause)
		}
	}
	return out, errors.Join(failures...)
}

// Ints returns the inclusive range [from, to] with the given step.
func Ints(from, to, step int) []int {
	if step <= 0 {
		step = 1
	}
	var out []int
	if from <= to {
		for v := from; v <= to; v += step {
			out = append(out, v)
		}
	} else {
		for v := from; v >= to; v -= step {
			out = append(out, v)
		}
	}
	return out
}

// Pair is one point of a 2-dimensional sweep.
type Pair[A, B any] struct {
	X A
	Y B
}

// Cross returns the full cross product of xs and ys, xs-major.
func Cross[A, B any](xs []A, ys []B) []Pair[A, B] {
	out := make([]Pair[A, B], 0, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out = append(out, Pair[A, B]{X: x, Y: y})
		}
	}
	return out
}

// Zip pairs xs[i] with ys[i]; the shorter slice bounds the result.
func Zip[A, B any](xs []A, ys []B) []Pair[A, B] {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	out := make([]Pair[A, B], n)
	for i := 0; i < n; i++ {
		out[i] = Pair[A, B]{X: xs[i], Y: ys[i]}
	}
	return out
}

// Logspace returns n points spread multiplicatively from start to end
// (inclusive); start and end must be positive.
func Logspace(start, end float64, n int) []float64 {
	if n < 2 {
		return []float64{start}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = start * math.Pow(end/start, float64(i)/float64(n-1))
	}
	return out
}
