// Package sweep provides the parameter-sweep plumbing the figure
// experiments share: deterministic parallel mapping over a work list
// and small grid helpers.
package sweep

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Map applies f to every item on up to workers goroutines and returns
// the results in input order. An error (or panic) in one item cancels
// nothing — all items still run — and every failure is reported,
// joined into one error carrying each failing item's index. A panic
// inside f is recovered into that item's error instead of killing the
// whole process with no item context. workers <= 0 selects NumCPU.
func Map[T, R any](items []T, workers int, f func(T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	errs := make([]error, len(items))
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("panic: %v", r)
			}
		}()
		out[i], errs[i] = f(items[i])
	}
	if workers <= 1 {
		for i := range items {
			run(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					run(i)
				}
			}()
		}
		for i := range items {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	var failures []error
	for i, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("sweep: item %d: %w", i, err))
		}
	}
	return out, errors.Join(failures...)
}

// Ints returns the inclusive range [from, to] with the given step.
func Ints(from, to, step int) []int {
	if step <= 0 {
		step = 1
	}
	var out []int
	if from <= to {
		for v := from; v <= to; v += step {
			out = append(out, v)
		}
	} else {
		for v := from; v >= to; v -= step {
			out = append(out, v)
		}
	}
	return out
}

// Pair is one point of a 2-dimensional sweep.
type Pair[A, B any] struct {
	X A
	Y B
}

// Cross returns the full cross product of xs and ys, xs-major.
func Cross[A, B any](xs []A, ys []B) []Pair[A, B] {
	out := make([]Pair[A, B], 0, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out = append(out, Pair[A, B]{X: x, Y: y})
		}
	}
	return out
}

// Zip pairs xs[i] with ys[i]; the shorter slice bounds the result.
func Zip[A, B any](xs []A, ys []B) []Pair[A, B] {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	out := make([]Pair[A, B], n)
	for i := 0; i < n; i++ {
		out[i] = Pair[A, B]{X: xs[i], Y: ys[i]}
	}
	return out
}

// Logspace returns n points spread multiplicatively from start to end
// (inclusive); start and end must be positive.
func Logspace(start, end float64, n int) []float64 {
	if n < 2 {
		return []float64{start}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = start * math.Pow(end/start, float64(i)/float64(n-1))
	}
	return out
}
