// Package sweep provides the parameter-sweep plumbing the figure
// experiments share: deterministic parallel mapping over a work list
// and small grid helpers.
package sweep

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Map applies f to every item on up to workers goroutines and returns
// the results in input order. The first error cancels nothing (all
// items still run) but is returned. workers <= 0 selects NumCPU.
func Map[T, R any](items []T, workers int, f func(T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	errs := make([]error, len(items))
	if workers <= 1 {
		for i, it := range items {
			out[i], errs[i] = f(it)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					out[i], errs[i] = f(items[i])
				}
			}()
		}
		for i := range items {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("sweep: item %d: %w", i, err)
		}
	}
	return out, nil
}

// Ints returns the inclusive range [from, to] with the given step.
func Ints(from, to, step int) []int {
	if step <= 0 {
		step = 1
	}
	var out []int
	if from <= to {
		for v := from; v <= to; v += step {
			out = append(out, v)
		}
	} else {
		for v := from; v >= to; v -= step {
			out = append(out, v)
		}
	}
	return out
}

// Pair is one point of a 2-dimensional sweep.
type Pair[A, B any] struct {
	X A
	Y B
}

// Cross returns the full cross product of xs and ys, xs-major.
func Cross[A, B any](xs []A, ys []B) []Pair[A, B] {
	out := make([]Pair[A, B], 0, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out = append(out, Pair[A, B]{X: x, Y: y})
		}
	}
	return out
}

// Zip pairs xs[i] with ys[i]; the shorter slice bounds the result.
func Zip[A, B any](xs []A, ys []B) []Pair[A, B] {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	out := make([]Pair[A, B], n)
	for i := 0; i < n; i++ {
		out[i] = Pair[A, B]{X: xs[i], Y: ys[i]}
	}
	return out
}

// Logspace returns n points spread multiplicatively from start to end
// (inclusive); start and end must be positive.
func Logspace(start, end float64, n int) []float64 {
	if n < 2 {
		return []float64{start}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = start * math.Pow(end/start, float64(i)/float64(n-1))
	}
	return out
}
