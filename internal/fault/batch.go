package fault

import (
	"fmt"
	"sort"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/isa"
)

// This file implements the batched trial kernels: B injection trials of
// the same program classified against one shared golden run. The
// scalar kernels in functional.go remain the semantic reference — the
// batched kernels must classify every trial exactly as the scalar ones
// would, and the differential tests in batch_test.go pin that
// equivalence trial by trial.
//
// The UnSync kernel exploits two structural facts of RunUnSyncTrial:
//
//  1. Core B is never faulted, so B always replays the golden
//     trajectory. A detected flip striking before program completion is
//     therefore always OutcomeRecovered: recovery copies B's clean
//     state (or clean memory word) over A at the strike point, after
//     which A rejoins the golden trajectory and both cores halt with
//     the golden output. A strike at or past the golden instruction
//     count is OutcomeBenign by the same argument the scalar kernel
//     makes. Neither case needs to emulate a single instruction once
//     the golden run is known.
//  2. An undetected flip leaves core A on the golden control-flow path
//     until the corruption steers a branch, jump or fetch differently.
//     Until that point every live lane executes the same instruction at
//     the same PC as the golden run, so one shared fetch+decode drives
//     the whole batch; a lane whose PC departs the cursor's retires to
//     a scalar finishing loop with the exact watchdog contract of the
//     scalar kernel.

// BatchTrial describes one lane of a batched trial kernel, mirroring
// the per-trial arguments of RunUnSyncTrial / RunReunionTrial.
type BatchTrial struct {
	Step     uint64
	Flip     Flip
	Detected bool
	// Transient selects the in-flight (fingerprint-covered) injection
	// model; Reunion kernel only.
	Transient bool
}

// BatchResult is one lane's classification.
type BatchResult struct {
	Outcome Outcome
	// Err is a per-lane harness error (an invalid flip site). The
	// caller re-runs such lanes on the scalar path, which reproduces
	// the scalar retry contract exactly.
	Err error
	// Done reports that the lane was classified. Lanes interrupted by
	// context cancellation are left not-Done so a resumed campaign
	// re-runs them.
	Done bool
}

// BatchStats counts how a batch was executed, for throughput reporting:
// lanes classified statically against the golden run (Shortcut), lanes
// that completed inside the lockstep group (Lockstep), and lanes that
// retired to the scalar finishing path (Retired).
type BatchStats struct {
	Lanes    uint64
	Shortcut uint64
	Lockstep uint64
	Retired  uint64
}

// add accumulates another batch's counters.
func (s *BatchStats) add(o BatchStats) {
	s.Lanes += o.Lanes
	s.Shortcut += o.Shortcut
	s.Lockstep += o.Lockstep
	s.Retired += o.Retired
}

// UnSyncTrialBatch classifies a batch of UnSync injection trials
// against one shared golden run, with outcomes identical to calling
// RunUnSyncTrial once per trial. TrialOpts carries the same budgets,
// shared golden machine and context as the scalar kernel; the context
// is polled at the same trialCtxQuantum, so cancellation latency is
// unchanged. On a batch-level error (golden failure or cancellation)
// the partial results are returned: lanes already classified stay
// Done.
func UnSyncTrialBatch(prog *asm.Program, trials []BatchTrial, opts TrialOpts) ([]BatchResult, BatchStats, error) {
	res := make([]BatchResult, len(trials))
	stats := BatchStats{Lanes: uint64(len(trials))}
	opts = opts.withDefaults()
	g, err := opts.golden(prog)
	if err != nil {
		return res, stats, err
	}

	// Static classification: detected strikes recover, post-completion
	// strikes are benign (see the file comment), and invalid sites are
	// handed back for the scalar path to reject. Only undetected
	// pre-completion flips need emulation.
	work := make([]int, 0, len(trials))
	for i, t := range trials {
		if err := t.Flip.Validate(); err != nil {
			res[i] = BatchResult{Err: err}
			continue
		}
		switch {
		case t.Step >= g.InstCount:
			res[i] = BatchResult{Outcome: OutcomeBenign, Done: true}
			stats.Shortcut++
		case t.Detected:
			res[i] = BatchResult{Outcome: OutcomeRecovered, Done: true}
			stats.Shortcut++
		default:
			work = append(work, i)
		}
	}
	if len(work) == 0 {
		return res, stats, nil
	}
	// Lanes fork from the cursor in strike order; the stable sort keeps
	// equal strike steps in trial order for determinism.
	sort.SliceStable(work, func(a, b int) bool {
		return trials[work[a]].Step < trials[work[b]].Step
	})

	dec := emu.Decode(prog)
	nw := len(work)
	// Lane slot j executes trial work[j]; the extra lane is the cursor,
	// which replays the golden run and feeds the shared fetch.
	L := emu.NewLanes(dec, nw+1)
	cur := nw
	chk := interruptChecker{ctx: opts.Ctx}

	// cbLimit[j], when non-zero, is the armed CB corruption's deadline:
	// the highest instruction count at which the lane's next committed
	// store may still take the flip (the scalar kernel bounds its store
	// search by StepBudget steps).
	cbLimit := make([]uint64, nw)
	live := make([]int, 0, nw)
	retired := make([]int, 0, nw)
	next := 0

	for step := uint64(0); step < g.InstCount; step++ {
		if err := chk.check(); err != nil {
			return res, stats, err
		}
		// Fork every lane whose strike is this step: copy the cursor's
		// architectural state and land the flip. Register and PC flips
		// are branch-free column XORs; CB flips arm a pending
		// corruption of the lane's next committed store.
		for next < nw && trials[work[next]].Step == step {
			slot := next
			L.Fork(slot, cur)
			f := trials[work[next]].Flip
			switch f.Space {
			case SpaceIntReg:
				L.XorReg(slot, f.Index, 1<<f.Bit)
			case SpaceFPReg:
				L.XorFReg(slot, f.Index, 1<<f.Bit)
			case SpacePC:
				L.XorPC(slot, 1<<(2+f.Bit))
			case SpaceMem:
				m := &L.Mem[slot]
				m.Write(f.Addr, m.Read(f.Addr, 8)^1<<f.Bit, 8)
			case SpaceCB:
				cbLimit[slot] = step + opts.StepBudget
			}
			live = append(live, slot)
			next++
		}

		pc := L.PC[cur]
		idx := int(pc / 4)
		cls := dec.Class[idx]

		// Step live lanes over the shared fetch. A lane whose PC left
		// the golden trace retires to the scalar finishing path; a lane
		// that halts on-trace classifies immediately.
		k := 0
		for _, slot := range live {
			if L.PC[slot] != pc {
				retired = append(retired, slot)
				continue
			}
			c, err := L.StepShared(slot, idx)
			if err != nil {
				// Unreachable on-trace (the cursor fetched this very
				// instruction), but mirror the scalar contract.
				res[work[slot]] = BatchResult{Outcome: OutcomeUnrecoverable, Done: true}
				continue
			}
			if cbLimit[slot] != 0 && cls == isa.ClassStore {
				// The armed CB flip lands on the first committed store
				// within the scalar kernel's search budget. Until it
				// lands the lane's state is bit-identical to the
				// cursor's, so an armed lane can never diverge or halt
				// out of sync — it is always classified here or after
				// the flip fires.
				if L.InstCount[slot] <= cbLimit[slot] {
					w := int(c.Inst.Op.MemWidth())
					bit := uint64(trials[work[slot]].Flip.Bit) % uint64(8*w)
					m := &L.Mem[slot]
					m.Write(c.Addr, m.Read(c.Addr, w)^1<<bit, w)
				}
				cbLimit[slot] = 0
			}
			if L.Halted[slot] {
				res[work[slot]] = BatchResult{Outcome: classifyOutput(L.Output[slot], g.Output), Done: true}
				continue
			}
			live[k] = slot
			k++
		}
		live = live[:k]

		if _, err := L.StepShared(cur, idx); err != nil {
			return res, stats, fmt.Errorf("fault: batch cursor diverged from golden run: %w", err)
		}
	}

	// The cursor halted at the end of the golden trace. Live lanes that
	// did not halt with it (a corrupted SysExit operand, say) retire to
	// the scalar path.
	retired = append(retired, live...)

	stats.Retired = uint64(len(retired))
	stats.Lockstep = uint64(nw) - stats.Retired

	for _, slot := range retired {
		o, err := finishLane(L, slot, g, opts, &chk)
		if err != nil {
			return res, stats, err
		}
		res[work[slot]] = BatchResult{Outcome: o, Done: true}
	}
	return res, stats, nil
}

// finishLane runs a retired lane to completion under the scalar
// kernel's watchdog contract: at most StepBudget instructions beyond
// the golden count, a fetch fault is unrecoverable, a non-halting lane
// hangs, and a halted lane classifies by its output against the golden
// run.
func finishLane(L *emu.Lanes, slot int, g *emu.Machine, opts TrialOpts, chk *interruptChecker) (Outcome, error) {
	bound := g.InstCount + opts.StepBudget
	for !L.Halted[slot] && L.InstCount[slot] <= bound {
		if err := chk.check(); err != nil {
			return OutcomeBenign, err
		}
		if _, err := L.Step(slot); err != nil {
			return OutcomeUnrecoverable, nil
		}
	}
	if !L.Halted[slot] {
		return OutcomeHang, nil
	}
	return classifyOutput(L.Output[slot], g.Output), nil
}

// classifyOutput is the undetected-lane endgame of the scalar kernel:
// the partner core is clean by construction, so the trial is benign
// iff the faulted lane's output matches the golden output, else SDC.
func classifyOutput(out, golden []uint64) Outcome {
	if sameOutput(out, golden) {
		return OutcomeBenign
	}
	return OutcomeSDC
}

// ReunionTrialBatch classifies a batch of Reunion injection trials
// against one shared golden run. Reunion's windowed fingerprint
// compare-and-rollback is a per-lane state machine — rollback rewinds a
// lane to its own checkpoint, off any shared trace — so lanes that
// need emulation run the scalar kernel and are accounted as retired;
// the batch still shares the decode and golden run, and strikes at or
// past program completion classify statically (the injection condition
// can never fire, so the pair stays clean and halts with the golden
// output).
func ReunionTrialBatch(prog *asm.Program, trials []BatchTrial, fi int, opts TrialOpts) ([]BatchResult, BatchStats, error) {
	res := make([]BatchResult, len(trials))
	stats := BatchStats{Lanes: uint64(len(trials))}
	opts = opts.withDefaults()
	g, err := opts.golden(prog)
	if err != nil {
		return res, stats, err
	}
	opts.Golden = g
	for i, t := range trials {
		// Mirror the scalar kernel's validation order: transient
		// non-CB strikes ignore the site fields and skip validation.
		if !t.Transient || t.Flip.Space == SpaceCB {
			if err := t.Flip.Validate(); err != nil {
				res[i] = BatchResult{Err: err}
				continue
			}
		}
		if t.Step >= g.InstCount {
			res[i] = BatchResult{Outcome: OutcomeBenign, Done: true}
			stats.Shortcut++
			continue
		}
		o, err := RunReunionTrial(prog, t.Step, t.Flip, t.Transient, fi, opts)
		if err != nil {
			// The scalar kernel only errors on invalid sites (handled
			// above), golden failures (handled above) or cancellation;
			// treat any error here as fatal to the batch so a resumed
			// campaign re-runs the lane.
			return res, stats, err
		}
		res[i] = BatchResult{Outcome: o, Done: true}
		stats.Retired++
	}
	return res, stats, nil
}
