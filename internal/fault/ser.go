// Package fault models soft errors: the SER process that drives the
// §VI-C sweep, the region-of-error-coverage (ROEC) accounting of §VI-D,
// and functional (emulator-level) fault-injection campaigns that verify
// the recovery mechanisms end to end.
package fault

import "math"

// SER is a soft-error process expressed per committed instruction, the
// paper's unit (2.89e-17 errors/instruction at the 90 nm node, §VI-C).
type SER struct {
	PerInst float64
}

// Paper90nm is the 90 nm SER operating point from [41].
func Paper90nm() SER { return SER{PerInst: 2.89e-17} }

// ExpectedErrors returns the mean number of errors over a run.
func (s SER) ExpectedErrors(insts uint64) float64 {
	return s.PerInst * float64(insts)
}

// rng is a private xorshift64* for deterministic arrival sampling.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng{s: seed}
}

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Arrivals samples a Poisson error process deterministically: Next
// returns the number of instructions until the next error (exponential
// inter-arrival, inverse-CDF).
type Arrivals struct {
	r    rng
	rate float64
}

// NewArrivals creates an arrival sampler. A zero or negative rate never
// fires (Next returns the maximum count).
func NewArrivals(ser SER, seed uint64) *Arrivals {
	return &Arrivals{r: newRNG(seed), rate: ser.PerInst}
}

// Next returns instructions until the next error.
func (a *Arrivals) Next() uint64 {
	if a.rate <= 0 {
		return math.MaxUint64
	}
	u := a.r.float()
	for u == 0 {
		u = a.r.float()
	}
	gap := -math.Log(u) / a.rate
	if gap >= float64(math.MaxUint64)/2 {
		return math.MaxUint64
	}
	if gap < 1 {
		gap = 1
	}
	return uint64(gap)
}

// Pick returns a uniform integer in [0, n) from the sampler's stream
// (used to choose the erroneous core / target / bit deterministically).
func (a *Arrivals) Pick(n int) int {
	if n <= 1 {
		return 0
	}
	return int(a.r.next() % uint64(n))
}

// BreakEven solves for the SER (errors/instruction) at which two
// schemes' throughputs match: scheme 1 runs at ipc1 with cost1 stall
// cycles per error, scheme 2 at ipc2 with cost2. Below the break-even
// rate the faster error-free scheme wins; the paper's hypothetical
// analysis (§VI-C) lands at ~1.29e-3 for UnSync vs Reunion.
//
// With error rate r per instruction, effective cycles per instruction
// become 1/ipc + r*cost; equating the two sides:
//
//	r* = (1/ipc2 − 1/ipc1) / (cost1 − cost2)
//
// It returns 0 when no positive break-even exists (one scheme dominates).
func BreakEven(ipc1, cost1, ipc2, cost2 float64) float64 {
	if ipc1 <= 0 || ipc2 <= 0 {
		return 0
	}
	num := 1/ipc2 - 1/ipc1
	den := cost1 - cost2
	if den == 0 {
		return 0
	}
	r := num / den
	if r <= 0 {
		return 0
	}
	return r
}

// EffectiveIPC returns the throughput of a scheme at error rate r given
// its error-free IPC and per-error stall cost in cycles.
func EffectiveIPC(ipc, costPerError, ratePerInst float64) float64 {
	if ipc <= 0 {
		return 0
	}
	cpi := 1/ipc + ratePerInst*costPerError
	return 1 / cpi
}
