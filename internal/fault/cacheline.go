package fault

import "github.com/cmlasu/unsync/internal/ecc"

// This file studies cache-line protection at the bit level, using the
// real parity and SECDED codes of internal/ecc:
//
//   - UnSync's L1 carries one parity bit per line (§III-B1): a single
//     strike is detected on the next read; the line is invalidated and
//     refetched from the ECC L2 (write-through guarantees a clean copy);
//   - the shared L2 carries SECDED: single strikes are corrected in
//     place, double strikes are detected (and, in the architecture,
//     recovered from memory).

// LineOutcome classifies one cache-line strike experiment.
type LineOutcome uint8

const (
	// LineClean: the protection saw nothing wrong (no strike or a
	// silent multi-bit escape).
	LineClean LineOutcome = iota
	// LineDetected: the error was detected (parity or SECDED double).
	LineDetected
	// LineCorrected: the error was corrected in place (SECDED single).
	LineCorrected
	// LineSilent: the data is wrong but the code saw nothing — an
	// escape (even number of flips under parity).
	LineSilent
)

// String names the line outcome.
func (o LineOutcome) String() string {
	switch o {
	case LineClean:
		return "clean"
	case LineDetected:
		return "detected"
	case LineCorrected:
		return "corrected"
	case LineSilent:
		return "silent"
	}
	return "line(?)"
}

// ParityLineStrike builds a line of the given words, applies the flips
// (word index, bit) pairs, and reports what per-line even parity sees.
func ParityLineStrike(words []uint64, flips [][2]uint) LineOutcome {
	stored := ecc.ParityWords(words)
	struck := append([]uint64(nil), words...)
	for _, f := range flips {
		struck[int(f[0])%len(struck)] ^= 1 << (f[1] % 64)
	}
	changed := false
	for i := range words {
		if struck[i] != words[i] {
			changed = true
		}
	}
	if ecc.ParityWords(struck) == stored {
		if changed {
			return LineSilent
		}
		return LineClean
	}
	return LineDetected
}

// SECDEDLineStrike builds a SECDED-protected line, applies flips to one
// word, scrubs, and classifies. The data is compared against the
// original to distinguish correction from escape.
func SECDEDLineStrike(words []uint64, word int, bits []uint) LineOutcome {
	l := ecc.NewLine(words)
	for _, b := range bits {
		l.FlipBit(word, b)
	}
	res := l.Scrub()
	switch res {
	case ecc.OK:
		if len(bits) == 0 {
			return LineClean
		}
		// An even set of flips cancelling out is clean; otherwise an
		// escape would show as wrong data.
		if l.Words[word] == words[word%len(words)] {
			return LineClean
		}
		return LineSilent
	case ecc.Corrected:
		if l.Words[word] == words[word%len(words)] {
			return LineCorrected
		}
		return LineSilent
	default:
		return LineDetected
	}
}

// LineStudy tallies strike outcomes over deterministic single- and
// double-bit campaigns.
type LineStudy struct {
	ParitySingleDetected float64 // fraction of single strikes detected
	ParityDoubleSilent   float64 // fraction of double strikes escaping
	SECDEDSingleFixed    float64 // fraction of single strikes corrected
	SECDEDDoubleCaught   float64 // fraction of double strikes detected
}

// RunLineStudy runs n trials of each campaign with the given seed.
func RunLineStudy(n int, seed uint64) LineStudy {
	arr := NewArrivals(SER{PerInst: 1}, seed)
	words := make([]uint64, 8)
	for i := range words {
		words[i] = arr.r.next()
	}
	var st LineStudy
	var pd, ps, sf, sd int
	for i := 0; i < n; i++ {
		w := uint(arr.Pick(8))
		b1 := uint(arr.Pick(64))
		b2 := uint(arr.Pick(64))
		for b2 == b1 {
			b2 = uint(arr.Pick(64))
		}
		if ParityLineStrike(words, [][2]uint{{w, b1}}) == LineDetected {
			pd++
		}
		if ParityLineStrike(words, [][2]uint{{w, b1}, {w, b2}}) == LineSilent {
			ps++
		}
		if SECDEDLineStrike(words, int(w), []uint{b1}) == LineCorrected {
			sf++
		}
		if SECDEDLineStrike(words, int(w), []uint{b1, b2}) == LineDetected {
			sd++
		}
	}
	st.ParitySingleDetected = float64(pd) / float64(n)
	st.ParityDoubleSilent = float64(ps) / float64(n)
	st.SECDEDSingleFixed = float64(sf) / float64(n)
	st.SECDEDDoubleCaught = float64(sd) / float64(n)
	return st
}
