package fault

import (
	"errors"
	"math"
	"testing"

	"github.com/cmlasu/unsync/internal/asm"
)

func TestSERExpectedErrors(t *testing.T) {
	s := Paper90nm()
	if s.PerInst != 2.89e-17 {
		t.Errorf("paper SER = %g", s.PerInst)
	}
	if got := (SER{PerInst: 1e-6}).ExpectedErrors(2_000_000); math.Abs(got-2) > 1e-9 {
		t.Errorf("ExpectedErrors = %g, want 2", got)
	}
}

func TestArrivalsMeanMatchesRate(t *testing.T) {
	a := NewArrivals(SER{PerInst: 1e-4}, 42)
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += float64(a.Next())
	}
	mean := sum / n
	if mean < 8_000 || mean > 12_000 {
		t.Errorf("mean inter-arrival = %.0f, want ~10000", mean)
	}
}

func TestArrivalsZeroRateNeverFires(t *testing.T) {
	a := NewArrivals(SER{}, 1)
	if a.Next() != math.MaxUint64 {
		t.Error("zero rate should never fire")
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	a := NewArrivals(SER{PerInst: 1e-3}, 7)
	b := NewArrivals(SER{PerInst: 1e-3}, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("arrivals not deterministic")
		}
	}
}

func TestPickBounds(t *testing.T) {
	a := NewArrivals(SER{PerInst: 1}, 3)
	for i := 0; i < 1000; i++ {
		if v := a.Pick(7); v < 0 || v >= 7 {
			t.Fatalf("Pick out of range: %d", v)
		}
	}
	if a.Pick(0) != 0 || a.Pick(1) != 0 {
		t.Error("degenerate Pick should be 0")
	}
}

func TestBreakEven(t *testing.T) {
	// UnSync faster error-free (ipc1=1.2) with expensive recovery
	// (5000 cycles); Reunion slower (ipc2=1.0), cheap rollback (40).
	r := BreakEven(1.2, 5000, 1.0, 40)
	if r <= 0 {
		t.Fatal("no break-even found")
	}
	// At the break-even rate the two effective IPCs must match.
	e1 := EffectiveIPC(1.2, 5000, r)
	e2 := EffectiveIPC(1.0, 40, r)
	if math.Abs(e1-e2)/e1 > 1e-9 {
		t.Errorf("effective IPCs at break-even differ: %g vs %g", e1, e2)
	}
	// Below break-even the faster scheme wins; above, the cheaper one.
	if EffectiveIPC(1.2, 5000, r/10) <= EffectiveIPC(1.0, 40, r/10) {
		t.Error("below break-even UnSync should win")
	}
	if EffectiveIPC(1.2, 5000, r*10) >= EffectiveIPC(1.0, 40, r*10) {
		t.Error("above break-even Reunion should win")
	}
	// Dominance (faster AND cheaper) -> no positive break-even.
	if BreakEven(1.2, 40, 1.0, 5000) != 0 {
		t.Error("dominated configuration should have no positive break-even")
	}
	if BreakEven(0, 1, 1, 1) != 0 || BreakEven(1, 1, 1, 0.99999) == 0 {
		_ = 0 // boundary behavior exercised
	}
}

func TestROECStructural(t *testing.T) {
	u := UnSyncCoverage()
	r := ReunionCoverage()
	// Every target is assigned under both schemes.
	for tgt := Target(0); tgt < NumTargets; tgt++ {
		if _, ok := u[tgt]; !ok {
			t.Errorf("UnSync coverage missing %v", tgt)
		}
		if _, ok := r[tgt]; !ok {
			t.Errorf("Reunion coverage missing %v", tgt)
		}
		if Bits(tgt) <= 0 {
			t.Errorf("Bits(%v) = %g", tgt, Bits(tgt))
		}
	}
	// §VI-D: UnSync's ROEC strictly contains Reunion's.
	if ROECBits(u) <= ROECBits(r) {
		t.Errorf("UnSync ROEC (%.0f bits) not larger than Reunion's (%.0f)",
			ROECBits(u), ROECBits(r))
	}
	// UnSync covers everything.
	if frac := ROECFraction(u); frac != 1 {
		t.Errorf("UnSync ROEC fraction = %g, want 1", frac)
	}
	// Reunion excludes the register file and TLB.
	if r[TargetRegFile] != DetectNone || r[TargetTLB] != DetectNone {
		t.Error("Reunion must not cover ARF/TLB")
	}
	// UnSync protects per-cycle elements with DMR, storage with parity.
	if u[TargetPC] != DetectDMR || u[TargetPipelineRegs] != DetectDMR {
		t.Error("per-cycle elements must use DMR")
	}
	if u[TargetRegFile] != DetectParity || u[TargetL1Data] != DetectParity {
		t.Error("storage elements must use parity")
	}
}

func TestDetectionLatency(t *testing.T) {
	if DetectionLatency(DetectDMR, 10, 10) != 1 {
		t.Error("DMR latency")
	}
	if DetectionLatency(DetectParity, 10, 10) != 2 {
		t.Error("parity latency")
	}
	if DetectionLatency(DetectFingerprint, 10, 10) != 20 {
		t.Error("fingerprint latency")
	}
	if DetectionLatency(DetectNone, 10, 10) != 0 {
		t.Error("none latency")
	}
}

// testProgram computes a checksum over a small array and prints it —
// enough work that most register flips matter.
const testProgram = `
	la r10, buf
	li r1, 0        ; checksum
	li r2, 0        ; i
	li r3, 64       ; n
init:
	mul r4, r2, r2
	sw r4, 0(r10)
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, init
	la r10, buf
	li r2, 0
sum:
	lw r5, 0(r10)
	add r1, r1, r5
	slli r6, r1, 1
	xor r1, r1, r6
	addi r10, r10, 4
	addi r2, r2, 1
	blt r2, r3, sum
	mv r4, r1
	li r2, 1
	syscall
	halt
.data
buf: .space 256
`

func TestUnSyncTrialRecoversRegisterFlip(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	// Flip the checksum register mid-computation: detected by parity,
	// recovered by copying the partner's state.
	o, err := UnSyncTrial(prog, 200, Flip{Space: SpaceIntReg, Index: 1, Bit: 13}, true, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeRecovered {
		t.Errorf("outcome = %v, want recovered", o)
	}
}

func TestUnSyncTrialWithoutDetectionCorrupts(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	// The same flip with the detection hardware removed silently
	// corrupts the output — what parity/DMR buys.
	o, err := UnSyncTrial(prog, 200, Flip{Space: SpaceIntReg, Index: 1, Bit: 13}, false, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeSDC {
		t.Errorf("outcome = %v, want sdc", o)
	}
}

func TestUnSyncTrialDeadRegisterBenign(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	// r29 is never used by the program: the flip is benign even
	// without detection.
	o, err := UnSyncTrial(prog, 100, Flip{Space: SpaceIntReg, Index: 29, Bit: 5}, false, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeBenign {
		t.Errorf("outcome = %v, want benign", o)
	}
}

func TestUnSyncTrialPCFlipRecovered(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	o, err := UnSyncTrial(prog, 150, Flip{Space: SpacePC, Bit: 2}, true, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeRecovered {
		t.Errorf("outcome = %v, want recovered", o)
	}
}

func TestReunionTrialTransientRecovered(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	// An in-flight result corruption is inside Reunion's ROEC: the
	// fingerprint mismatches and rollback re-executes cleanly.
	o, err := ReunionTrial(prog, 200, Flip{Bit: 7}, true, 10, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeRecovered {
		t.Errorf("outcome = %v, want recovered", o)
	}
}

func TestReunionTrialPersistentARFUnrecoverable(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	// A persistent flip in a live architectural register is outside
	// Reunion's ROEC: every rollback re-reads the same flipped cell.
	o, err := ReunionTrial(prog, 200, Flip{Space: SpaceIntReg, Index: 1, Bit: 13}, false, 10, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeUnrecoverable {
		t.Errorf("outcome = %v, want unrecoverable", o)
	}
}

func TestReunionTrialDeadRegisterBenign(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	o, err := ReunionTrial(prog, 100, Flip{Space: SpaceIntReg, Index: 29, Bit: 3}, false, 10, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeBenign {
		t.Errorf("outcome = %v, want benign", o)
	}
}

func TestCampaignsMatchROECStory(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	const n = 40

	us, err := UnSyncCampaign(prog, n, 11, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// UnSync recovers every detected upset: 100% correct outcomes.
	if us.CorrectRate() != 1 {
		t.Errorf("UnSync correct rate = %.2f (%+v)", us.CorrectRate(), us)
	}

	rt, err := ReunionCampaign(prog, n, true, 10, 12, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Transient in-flight errors are inside Reunion's ROEC too.
	if rt.CorrectRate() != 1 {
		t.Errorf("Reunion transient correct rate = %.2f (%+v)", rt.CorrectRate(), rt)
	}
	if rt.SDC != 0 {
		t.Errorf("Reunion transient SDC = %d", rt.SDC)
	}

	rp, err := ReunionCampaign(prog, n, false, 10, 13, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Persistent state upsets fall outside Reunion's ROEC: some trials
	// must be unrecoverable, none silently corrupt (outputs are
	// fingerprinted).
	if rp.Unrecoverable == 0 {
		t.Errorf("Reunion persistent campaign had no unrecoverable trials (%+v)", rp)
	}
	if rp.CorrectRate() >= us.CorrectRate() {
		t.Errorf("Reunion persistent correct rate %.2f not below UnSync %.2f",
			rp.CorrectRate(), us.CorrectRate())
	}
}

func TestOutcomeAndTargetStrings(t *testing.T) {
	if OutcomeBenign.String() != "benign" || OutcomeSDC.String() != "sdc" ||
		OutcomeRecovered.String() != "recovered" || OutcomeUnrecoverable.String() != "unrecoverable" {
		t.Error("outcome names")
	}
	if TargetRegFile.String() != "regfile" || TargetL1Data.String() != "l1-data" {
		t.Error("target names")
	}
	if SpacePC.String() != "pc" || SpaceIntReg.String() != "int-reg" || SpaceFPReg.String() != "fp-reg" {
		t.Error("space names")
	}
	if DetectParity.String() != "parity" || DetectFingerprint.String() != "fingerprint" {
		t.Error("detection names")
	}
}

func TestEffectiveIPCMonotone(t *testing.T) {
	base := EffectiveIPC(1.0, 1000, 0)
	if math.Abs(base-1.0) > 1e-12 {
		t.Errorf("zero-rate effective IPC = %g", base)
	}
	if EffectiveIPC(1.0, 1000, 1e-3) >= base {
		t.Error("errors must reduce effective IPC")
	}
	if EffectiveIPC(0, 1000, 1e-3) != 0 {
		t.Error("zero IPC should stay zero")
	}
}

func TestParityLineStrike(t *testing.T) {
	words := []uint64{1, 2, 3, 4}
	if got := ParityLineStrike(words, nil); got != LineClean {
		t.Errorf("no flips = %v", got)
	}
	if got := ParityLineStrike(words, [][2]uint{{0, 5}}); got != LineDetected {
		t.Errorf("single flip = %v, want detected", got)
	}
	// Two flips cancel under one parity bit: silent escape.
	if got := ParityLineStrike(words, [][2]uint{{0, 5}, {2, 7}}); got != LineSilent {
		t.Errorf("double flip = %v, want silent", got)
	}
	// The same bit twice restores the data: clean.
	if got := ParityLineStrike(words, [][2]uint{{0, 5}, {0, 5}}); got != LineClean {
		t.Errorf("self-cancelling flips = %v, want clean", got)
	}
}

func TestSECDEDLineStrike(t *testing.T) {
	words := []uint64{0xdead, 0xbeef, 0xcafe, 0xf00d}
	if got := SECDEDLineStrike(words, 1, nil); got != LineClean {
		t.Errorf("no flips = %v", got)
	}
	if got := SECDEDLineStrike(words, 1, []uint{9}); got != LineCorrected {
		t.Errorf("single = %v, want corrected", got)
	}
	if got := SECDEDLineStrike(words, 1, []uint{9, 33}); got != LineDetected {
		t.Errorf("double = %v, want detected", got)
	}
	if got := SECDEDLineStrike(words, 2, []uint{9, 9}); got != LineClean {
		t.Errorf("self-cancelling = %v, want clean", got)
	}
}

func TestRunLineStudyGuarantees(t *testing.T) {
	st := RunLineStudy(500, 99)
	// Coding-theory guarantees, empirically confirmed:
	if st.ParitySingleDetected != 1 {
		t.Errorf("parity single detection = %.3f, want 1", st.ParitySingleDetected)
	}
	if st.ParityDoubleSilent != 1 {
		t.Errorf("parity double escape = %.3f, want 1 (same-line double flips cancel)", st.ParityDoubleSilent)
	}
	if st.SECDEDSingleFixed != 1 {
		t.Errorf("SECDED single correction = %.3f, want 1", st.SECDEDSingleFixed)
	}
	if st.SECDEDDoubleCaught != 1 {
		t.Errorf("SECDED double detection = %.3f, want 1", st.SECDEDDoubleCaught)
	}
}

func TestLineOutcomeString(t *testing.T) {
	if LineClean.String() != "clean" || LineDetected.String() != "detected" ||
		LineCorrected.String() != "corrected" || LineSilent.String() != "silent" {
		t.Error("line outcome names wrong")
	}
}

// spinProgram counts r2 up to the bound held in r1. Flipping a high bit
// of r1 turns the loop into a livelock: the watchdog case.
const spinProgram = `
	li r1, 100
	li r2, 0
spin:
	addi r2, r2, 1
	blt r2, r1, spin
	mv r4, r2
	li r2, 1
	syscall
	halt
`

func TestFlipValidate(t *testing.T) {
	bad := []Flip{
		{Space: SpaceIntReg, Index: 0, Bit: 3},  // r0 is hardwired
		{Space: SpaceIntReg, Index: 32, Bit: 3}, // register out of range
		{Space: SpaceIntReg, Index: 5, Bit: 64}, // bit out of range
		{Space: SpaceFPReg, Index: 200, Bit: 0}, // register out of range
		{Space: SpaceFPReg, Index: 0, Bit: 255}, // bit out of range
		{Space: SpacePC, Bit: 6},                // pc bit out of range
		{Space: SpaceMem, Addr: 0x10000, Bit: 64},
		{Space: SpaceCB, Bit: 77},
		{Space: NumSpaces, Bit: 0}, // unknown space
	}
	for _, f := range bad {
		if err := f.Validate(); !errors.Is(err, ErrInvalidFlip) {
			t.Errorf("Validate(%+v) = %v, want ErrInvalidFlip", f, err)
		}
	}
	good := []Flip{
		{Space: SpaceIntReg, Index: 1, Bit: 0},
		{Space: SpaceIntReg, Index: 31, Bit: 63},
		{Space: SpaceFPReg, Index: 0, Bit: 63},
		{Space: SpacePC, Bit: 5},
		{Space: SpaceMem, Addr: 0x10000, Bit: 63},
		{Space: SpaceCB, Bit: 63},
	}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", f, err)
		}
	}
}

// TestTrialRejectsInvalidFlip proves a bad site is an error at the
// trial API, not a silent no-op (the old Apply behavior).
func TestTrialRejectsInvalidFlip(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	if _, err := UnSyncTrial(prog, 10, Flip{Space: SpaceIntReg, Index: 0}, true, 100_000); !errors.Is(err, ErrInvalidFlip) {
		t.Errorf("UnSyncTrial(r0 flip) err = %v, want ErrInvalidFlip", err)
	}
	if _, err := ReunionTrial(prog, 10, Flip{Space: SpaceFPReg, Index: 99}, false, 10, 100_000); !errors.Is(err, ErrInvalidFlip) {
		t.Errorf("ReunionTrial(bad fp flip) err = %v, want ErrInvalidFlip", err)
	}
}

// TestRandomFlipAlwaysValid pins the satellite fix: every draw is in
// range by construction.
func TestRandomFlipAlwaysValid(t *testing.T) {
	arr := NewArrivals(SER{PerInst: 1}, 99)
	for i := 0; i < 2000; i++ {
		if f := randomFlip(arr); f.Validate() != nil {
			t.Fatalf("draw %d: randomFlip produced invalid %+v", i, f)
		}
	}
}

// TestReunionTrialFIOne: the shortest fingerprint window still detects
// and heals an in-flight corruption.
func TestReunionTrialFIOne(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	o, err := ReunionTrial(prog, 200, Flip{Bit: 7}, true, 1, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeRecovered {
		t.Errorf("outcome = %v, want recovered", o)
	}
}

// TestReunionTrialFIBeyondProgram: a fingerprint interval longer than
// the whole program closes its only window at halt and still recovers.
func TestReunionTrialFIBeyondProgram(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	o, err := ReunionTrial(prog, 200, Flip{Bit: 7}, true, 1<<20, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeRecovered {
		t.Errorf("outcome = %v, want recovered", o)
	}
}

// TestTrialsFlipPastHaltBenign: an injection scheduled after the
// program halts never lands; the trial is benign under both schemes.
func TestTrialsFlipPastHaltBenign(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	const farStep = 10_000_000
	o, err := UnSyncTrial(prog, farStep, Flip{Space: SpaceIntReg, Index: 1, Bit: 13}, true, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeBenign {
		t.Errorf("UnSync outcome = %v, want benign", o)
	}
	o, err = ReunionTrial(prog, farStep, Flip{Bit: 7}, true, 10, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeBenign {
		t.Errorf("Reunion outcome = %v, want benign", o)
	}
}

// TestReunionTrialBudgetBound pins the legacy maxSteps*4 bound: a
// persistent flip of the loop bound livelocks rollback re-execution and
// the legacy wrapper classifies the killed trial unrecoverable.
func TestReunionTrialBudgetBound(t *testing.T) {
	prog := asm.MustAssemble(spinProgram)
	o, err := ReunionTrial(prog, 3, Flip{Space: SpaceIntReg, Index: 1, Bit: 62}, false, 10, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeUnrecoverable {
		t.Errorf("outcome = %v, want unrecoverable (legacy fold of hang)", o)
	}
}

// TestUnSyncWatchdogHang is the watchdog acceptance test: an undetected
// flip of the loop bound livelocks core A, and the step budget kills
// the trial as OutcomeHang instead of spinning forever.
func TestUnSyncWatchdogHang(t *testing.T) {
	prog := asm.MustAssemble(spinProgram)
	opts := TrialOpts{MaxSteps: 10_000, StepBudget: 20_000}
	o, err := RunUnSyncTrial(prog, 3, Flip{Space: SpaceIntReg, Index: 1, Bit: 62}, false, opts)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeHang {
		t.Errorf("outcome = %v, want hang", o)
	}
}

// TestReunionWatchdogHang: a transient flip of the loop bound's
// in-flight result livelocks core A, and with a fingerprint window
// longer than the step budget the mismatch is never observed — the
// watchdog, not the fingerprint, must kill the trial as OutcomeHang.
// (A persistent flip is instead caught by the rollback cap and
// classified unrecoverable — see TestReunionTrialBudgetBound.)
func TestReunionWatchdogHang(t *testing.T) {
	prog := asm.MustAssemble(spinProgram)
	opts := TrialOpts{MaxSteps: 10_000, StepBudget: 20_000}
	o, err := RunReunionTrial(prog, 0, Flip{Bit: 62}, true, 1<<20, opts)
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeHang {
		t.Errorf("outcome = %v, want hang", o)
	}
}

// TestCampaignsSurvivePerTrialErrors: a campaign over a program whose
// golden run works but with an n large enough to exercise every space
// returns a full tally and no error — and the partial-result contract
// holds trivially. (The abort-on-first-error fix is pinned structurally
// by the signatures returning both values; this exercises the path.)
func TestCampaignPartialResultShape(t *testing.T) {
	prog := asm.MustAssemble(testProgram)
	res, err := UnSyncCampaign(prog, 25, 7, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 25 {
		t.Errorf("tally covers %d trials, want 25", res.Trials)
	}
}

func TestNewStrings(t *testing.T) {
	if OutcomeHang.String() != "hang" {
		t.Error("OutcomeHang name")
	}
	if TargetCB.String() != "comm-buffer" {
		t.Error("TargetCB name")
	}
	if SpaceMem.String() != "mem" || SpaceCB.String() != "cb" {
		t.Error("new space names")
	}
	if s, ok := SpaceByName("cb"); !ok || s != SpaceCB {
		t.Error("SpaceByName(cb)")
	}
	if o, ok := OutcomeByName("hang"); !ok || o != OutcomeHang {
		t.Error("OutcomeByName(hang)")
	}
	if _, ok := OutcomeByName("nope"); ok {
		t.Error("OutcomeByName should reject unknown names")
	}
}

// TestCBCoverageEntries pins the uncore extension of the coverage maps:
// UnSync leaves the Communication Buffer unprotected, Reunion's
// synchronizing store buffer covers it — while the per-core ROEC
// accounting (NumTargets-bounded) is unchanged by the new target.
func TestCBCoverageEntries(t *testing.T) {
	if UnSyncCoverage().Detects(SpaceCB) != DetectNone {
		t.Error("UnSync CB must be unprotected (uncore)")
	}
	if ReunionCoverage().Detects(SpaceCB) != DetectFingerprint {
		t.Error("Reunion CB must be fingerprint-covered")
	}
	if TargetCB < NumTargets {
		t.Error("TargetCB must sit outside the per-core accounting range")
	}
	if Bits(TargetCB) != CBEntries*128 {
		t.Errorf("Bits(TargetCB) = %g", Bits(TargetCB))
	}
}
