package fault

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/reunion/crc"
)

// This file implements emulator-level (architecturally exact) fault
// injection — the §VI-D verification that "both UnSync and Reunion
// architectures execute programs correctly in the presence of errors",
// and the demonstration of where their regions of error coverage end.
//
// UnSync semantics: the flipped element is detected locally (parity /
// DMR) and the architectural state of the error-free core is copied
// over the erroneous core; execution is always-forward.
//
// Reunion semantics: the corruption surfaces (or not) in the CRC-16
// fingerprint of the enclosing window. A mismatch rolls both cores back
// to the last verified boundary and re-executes. Transient in-flight
// errors are healed by re-execution; a persistently flipped register
// cell survives rollback (Reunion keeps no ARF checkpoint), so a
// consumed-before-overwritten flip livelocks and is detected but
// unrecoverable — it lies outside Reunion's ROEC.

// Space selects the architectural state a functional flip targets.
type Space uint8

const (
	SpaceIntReg Space = iota
	SpaceFPReg
	SpacePC
	// SpaceMem flips a bit of the 64-bit word at Flip.Addr in the
	// emulator's data memory — the L1-data case of the coverage maps.
	SpaceMem
	// SpaceCB corrupts a Communication Buffer entry: the next store the
	// faulted core commits lands in memory with one flipped bit while
	// its architectural registers stay clean — the uncore case. The
	// flip has no storage of its own, so Flip.Apply is a no-op for it;
	// the trial runners intercept the store in flight.
	SpaceCB
	// NumSpaces bounds the valid Space values.
	NumSpaces
)

// String names the injection space.
func (s Space) String() string {
	switch s {
	case SpaceIntReg:
		return "int-reg"
	case SpaceFPReg:
		return "fp-reg"
	case SpacePC:
		return "pc"
	case SpaceMem:
		return "mem"
	case SpaceCB:
		return "cb"
	}
	return "space(?)"
}

// SpaceByName resolves a space name as printed by String.
func SpaceByName(name string) (Space, bool) {
	for s := Space(0); s < NumSpaces; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// SpaceTarget maps a functional injection space to the structural
// target whose detection assignment (Coverage) governs it.
func SpaceTarget(s Space) Target {
	switch s {
	case SpaceIntReg, SpaceFPReg:
		return TargetRegFile
	case SpacePC:
		return TargetPC
	case SpaceMem:
		return TargetL1Data
	case SpaceCB:
		return TargetCB
	}
	return NumTargets
}

// Detects returns the mechanism covering flips in space s under this
// coverage assignment (DetectNone when the space is unprotected).
func (c Coverage) Detects(s Space) Detection { return c[SpaceTarget(s)] }

// Flip is one single-bit architectural upset.
type Flip struct {
	Space Space
	Index uint8  // register number (int/fp register spaces only)
	Bit   uint8  // 0..63 (0..5 for PC: the flip lands on PC bits 2..7)
	Addr  uint64 // memory address (SpaceMem only)
}

// ErrInvalidFlip reports a flip outside the injectable space.
var ErrInvalidFlip = errors.New("fault: invalid flip")

// Validate rejects flips that Apply could not land exactly where they
// claim: out-of-range registers, the hardwired r0, and out-of-range bit
// positions. The public API and the campaign engine validate every flip
// before running a trial, so a bad site is an error, not a silent no-op
// or a modulo wrap onto some other structure.
func (f Flip) Validate() error {
	switch f.Space {
	case SpaceIntReg:
		if f.Index == 0 {
			return fmt.Errorf("%w: int register r0 is hardwired to zero", ErrInvalidFlip)
		}
		if f.Index >= isa.NumRegs {
			return fmt.Errorf("%w: int register %d out of range [1,%d)", ErrInvalidFlip, f.Index, isa.NumRegs)
		}
		if f.Bit > 63 {
			return fmt.Errorf("%w: bit %d out of range [0,64)", ErrInvalidFlip, f.Bit)
		}
	case SpaceFPReg:
		if f.Index >= isa.NumRegs {
			return fmt.Errorf("%w: fp register %d out of range [0,%d)", ErrInvalidFlip, f.Index, isa.NumRegs)
		}
		if f.Bit > 63 {
			return fmt.Errorf("%w: bit %d out of range [0,64)", ErrInvalidFlip, f.Bit)
		}
	case SpacePC:
		if f.Bit > 5 {
			return fmt.Errorf("%w: pc bit %d out of range [0,6) (flips land on PC bits 2..7)", ErrInvalidFlip, f.Bit)
		}
	case SpaceMem, SpaceCB:
		if f.Bit > 63 {
			return fmt.Errorf("%w: bit %d out of range [0,64)", ErrInvalidFlip, f.Bit)
		}
	default:
		return fmt.Errorf("%w: unknown space %d", ErrInvalidFlip, f.Space)
	}
	return nil
}

// Apply injects a validated flip into a machine. Out-of-range flips are
// skipped rather than wrapped — Validate is the contract, Apply only
// keeps an invalid flip from corrupting an unintended structure.
func (f Flip) Apply(m *emu.Machine) {
	switch f.Space {
	case SpaceIntReg:
		if f.Index != 0 && f.Index < isa.NumRegs && f.Bit < 64 {
			m.Regs[f.Index] ^= 1 << f.Bit
		}
	case SpaceFPReg:
		if f.Index < isa.NumRegs && f.Bit < 64 {
			m.FRegs[f.Index] ^= 1 << f.Bit
		}
	case SpacePC:
		// Flip within the low bits so the PC stays near the text
		// section (a far flip is detected trivially by a fetch fault).
		if f.Bit < 6 {
			m.PC ^= 1 << (2 + f.Bit)
		}
	case SpaceMem:
		if f.Bit < 64 {
			m.Mem.Write(f.Addr, m.Mem.Read(f.Addr, 8)^1<<f.Bit, 8)
		}
	case SpaceCB:
		// No architectural storage of its own: the corruption lands on
		// the next committed store in flight (see the trial runners).
	}
}

// Outcome classifies one injection trial.
type Outcome uint8

const (
	// OutcomeBenign: the flip never affected architectural results.
	OutcomeBenign Outcome = iota
	// OutcomeRecovered: detected and recovered; final output correct.
	OutcomeRecovered
	// OutcomeUnrecoverable: detected but recovery cannot make forward
	// progress (outside the scheme's ROEC).
	OutcomeUnrecoverable
	// OutcomeSDC: silent data corruption — wrong output, no detection.
	OutcomeSDC
	// OutcomeHang: the faulted run exceeded its step budget without
	// halting — a livelock or runaway killed by the trial watchdog
	// (detected in hardware by a timeout, a DUE rather than an SDC).
	OutcomeHang
	// NumOutcomes bounds the valid Outcome values.
	NumOutcomes
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeBenign:
		return "benign"
	case OutcomeRecovered:
		return "recovered"
	case OutcomeUnrecoverable:
		return "unrecoverable"
	case OutcomeSDC:
		return "sdc"
	case OutcomeHang:
		return "hang"
	}
	return "outcome(?)"
}

// OutcomeByName resolves an outcome name as printed by String.
func OutcomeByName(name string) (Outcome, bool) {
	for o := Outcome(0); o < NumOutcomes; o++ {
		if o.String() == name {
			return o, true
		}
	}
	return 0, false
}

// ErrGoldenFailed reports that the fault-free reference run failed.
var ErrGoldenFailed = errors.New("fault: golden run failed")

// Golden executes the program fault-free and returns the halted
// reference machine. Campaigns run it once and share it across trials
// via TrialOpts.Golden.
func Golden(prog *asm.Program, maxSteps uint64) (*emu.Machine, error) {
	return golden(prog, maxSteps)
}

// golden executes the program fault-free and returns the machine.
func golden(prog *asm.Program, maxSteps uint64) (*emu.Machine, error) {
	g := emu.New(prog)
	if err := g.Run(maxSteps); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrGoldenFailed, err)
	}
	if !g.Halted {
		return nil, fmt.Errorf("%w: did not halt", ErrGoldenFailed)
	}
	return g, nil
}

// sameOutput reports whether an observed output stream matches the
// golden one. Shared by the scalar trial kernels and the batched lane
// kernels in batch.go.
func sameOutput(out, golden []uint64) bool {
	return slices.Equal(out, golden)
}

func sameOutputAs(m *emu.Machine, out []uint64) bool {
	return sameOutput(m.Output, out)
}

// TrialOpts bounds one injection trial.
type TrialOpts struct {
	// MaxSteps is the fault-free (golden) run's step budget.
	MaxSteps uint64
	// StepBudget is the watchdog: the faulted pair may run at most this
	// many steps beyond the golden instruction count before the trial
	// is killed and classified OutcomeHang. 0 selects 4×MaxSteps.
	StepBudget uint64
	// Golden, when non-nil, is a pre-run fault-free reference for this
	// program (it must have halted). Campaigns set it so n trials share
	// one golden run instead of recomputing it n times.
	Golden *emu.Machine
	// Ctx, when non-nil, is polled every trialCtxQuantum emulated steps:
	// on cancellation the trial aborts and returns the cancellation
	// cause as its error. The step budget stays the deterministic
	// watchdog; Ctx lets a caller bound a trial in wall-clock time (a
	// per-trial deadline) or abandon it (a cancelled campaign).
	Ctx context.Context
}

// trialCtxQuantum is how many emulated steps may pass between context
// polls inside a trial loop — the trial's cancellation latency.
const trialCtxQuantum = 4096

// interruptChecker polls TrialOpts.Ctx every trialCtxQuantum calls. The
// zero-context checker never interrupts and costs one nil compare per
// step.
type interruptChecker struct {
	ctx   context.Context
	count int
}

// check returns the context's cancellation cause once it fires, nil
// otherwise.
func (c *interruptChecker) check() error {
	if c.ctx == nil {
		return nil
	}
	if c.count++; c.count < trialCtxQuantum {
		return nil
	}
	c.count = 0
	select {
	case <-c.ctx.Done():
		return context.Cause(c.ctx)
	default:
		return nil
	}
}

func (o TrialOpts) withDefaults() TrialOpts {
	if o.MaxSteps == 0 {
		o.MaxSteps = 1_000_000
	}
	if o.StepBudget == 0 {
		o.StepBudget = 4 * o.MaxSteps
	}
	return o
}

func (o TrialOpts) golden(prog *asm.Program) (*emu.Machine, error) {
	if o.Golden != nil {
		return o.Golden, nil
	}
	return golden(prog, o.MaxSteps)
}

// RunUnSyncTrial runs one UnSync functional injection: the flip lands on
// core A after `step` committed instructions. When detected is true
// (the structure is inside UnSync's ROEC — parity/DMR), recovery copies
// the error-free core's state over the erroneous core and both run on.
// When false, the corruption runs silently (the unprotected case,
// quantifying what the detection hardware buys). A faulted pair that
// exceeds the step budget without halting is killed by the watchdog and
// classified OutcomeHang.
func RunUnSyncTrial(prog *asm.Program, step uint64, f Flip, detected bool, opts TrialOpts) (Outcome, error) {
	if err := f.Validate(); err != nil {
		return OutcomeBenign, err
	}
	opts = opts.withDefaults()
	g, err := opts.golden(prog)
	if err != nil {
		return OutcomeBenign, err
	}
	chk := interruptChecker{ctx: opts.Ctx}
	a, b := emu.New(prog), emu.New(prog)
	for i := uint64(0); i < step && !a.Halted; i++ {
		if err := chk.check(); err != nil {
			return OutcomeBenign, err
		}
		if _, err := a.Step(); err != nil {
			return OutcomeBenign, err
		}
		if _, err := b.Step(); err != nil {
			return OutcomeBenign, err
		}
	}
	if a.Halted {
		// The strike point lies past program completion: the output is
		// already architecturally committed and nothing consumes the
		// flipped state, so the upset is benign by construction.
		return OutcomeBenign, nil
	}

	switch f.Space {
	case SpaceCB:
		// The CB entry holds a committed store in flight; run lockstep
		// until core A commits its next store, then flip the stored
		// word behind its back. Detection (hypothetical CB parity)
		// repairs the word from the partner's clean memory.
		for injected, steps := false, uint64(0); !injected && !a.Halted && steps < opts.StepBudget; steps++ {
			if err := chk.check(); err != nil {
				return OutcomeBenign, err
			}
			ca, err := a.Step()
			if err != nil {
				return OutcomeUnrecoverable, nil
			}
			if _, err := b.Step(); err != nil {
				return OutcomeUnrecoverable, nil
			}
			if ca.Inst.Class() == isa.ClassStore {
				w := ca.Inst.Op.MemWidth()
				bit := uint64(f.Bit) % uint64(8*w)
				a.Mem.Write(ca.Addr, a.Mem.Read(ca.Addr, w)^1<<bit, w)
				if detected {
					a.Mem.Write(ca.Addr, b.Mem.Read(ca.Addr, w), w)
				}
				injected = true
			}
		}
	case SpaceMem:
		f.Apply(a)
		if detected {
			// Parity flags the word on its next read; the line is
			// refetched — functionally, repaired from the partner's
			// clean copy (write-through memory below the L1 agrees).
			a.Mem.Write(f.Addr, b.Mem.Read(f.Addr, 8), 8)
		}
	default:
		f.Apply(a)
		if detected {
			// Parity/DMR flags the erroneous element; the EIH stalls
			// both cores and core B's architectural state is copied
			// onto A ("always forward execution" — B resumes exactly
			// where it stopped, A is forwarded to B's position).
			a.Restore(b.Snapshot())
		}
	}

	for (!a.Halted || !b.Halted) && a.InstCount <= g.InstCount+opts.StepBudget {
		if err := chk.check(); err != nil {
			return OutcomeBenign, err
		}
		if _, err := a.Step(); err != nil {
			// A corrupted PC can leave the text section: detected by
			// the fetch fault. Without detection hardware this is
			// still an unrecoverable crash.
			return OutcomeUnrecoverable, nil
		}
		if _, err := b.Step(); err != nil {
			return OutcomeUnrecoverable, nil
		}
	}
	if !a.Halted || !b.Halted {
		return OutcomeHang, nil
	}

	okA := sameOutputAs(a, g.Output)
	okB := sameOutputAs(b, g.Output)
	switch {
	case okA && okB && detected:
		return OutcomeRecovered, nil
	case okA && okB:
		return OutcomeBenign, nil
	default:
		return OutcomeSDC, nil
	}
}

// UnSyncTrial is the legacy fixed-budget entry point: the watchdog
// budget equals maxSteps and a hang is folded into unrecoverable, the
// pre-watchdog classification.
func UnSyncTrial(prog *asm.Program, step uint64, f Flip, detected bool, maxSteps uint64) (Outcome, error) {
	o, err := RunUnSyncTrial(prog, step, f, detected, TrialOpts{MaxSteps: maxSteps, StepBudget: maxSteps})
	if o == OutcomeHang {
		o = OutcomeUnrecoverable
	}
	return o, err
}

// maxRollbacks bounds Reunion's rollback retries before a fault is
// declared detected-but-unrecoverable.
const maxRollbacks = 5

// RunReunionTrial runs one Reunion functional injection. When transient
// is true the flip models an in-flight error: it corrupts the result of
// the instruction committed at `step` (register value and fingerprint
// contribution — or, for SpaceCB, the store datum in flight) but not
// the underlying storage, so rollback re-executes it cleanly. When
// false the flip is a persistent state upset (a struck ARF cell or
// memory word): rollback restores the last verified window but the cell
// remains flipped, so a consumed value mismatches again and again. A
// pair that exceeds the step budget without halting is killed by the
// watchdog and classified OutcomeHang.
func RunReunionTrial(prog *asm.Program, step uint64, f Flip, transient bool, fi int, opts TrialOpts) (Outcome, error) {
	// A transient strike corrupts whatever result is in flight at the
	// strike point — the flip's site fields are ignored, only Bit
	// matters — so full site validation applies to persistent upsets
	// and the in-flight store (CB) case only.
	if !transient || f.Space == SpaceCB {
		if err := f.Validate(); err != nil {
			return OutcomeBenign, err
		}
	}
	if fi < 1 {
		fi = 10
	}
	opts = opts.withDefaults()
	g, err := opts.golden(prog)
	if err != nil {
		return OutcomeBenign, err
	}
	chk := interruptChecker{ctx: opts.Ctx}

	a, b := emu.New(prog), emu.New(prog)

	type checkpoint struct {
		sa, sb   emu.ArchState
		memA     *emu.Memory
		memB     *emu.Memory
		outA     int
		outB     int
		steps    uint64
		injected bool // has the flip already been applied before this point?
	}
	save := func(steps uint64, injected bool) checkpoint {
		return checkpoint{
			sa: a.Snapshot(), sb: b.Snapshot(),
			memA: a.Mem.Clone(), memB: b.Mem.Clone(),
			outA: len(a.Output), outB: len(b.Output),
			steps: steps, injected: injected,
		}
	}
	cp := save(0, false)

	var crcA, crcB uint16
	var windowCount int
	var rollbacks int
	steps := uint64(0)
	injected := false

	for (!a.Halted || !b.Halted) && steps < opts.StepBudget {
		if err := chk.check(); err != nil {
			return OutcomeBenign, err
		}
		ca, err := a.Step()
		if err != nil {
			return OutcomeUnrecoverable, nil
		}
		cb, err := b.Step()
		if err != nil {
			return OutcomeUnrecoverable, nil
		}
		steps++

		if transient && !injected && steps >= step+1 {
			if f.Space == SpaceCB {
				// Corrupt the first store at or after the strike point
				// in flight: the datum lands flipped in memory and in
				// the fingerprint, but no register cell is struck —
				// rollback re-executes the store cleanly.
				if ca.Inst.Class() == isa.ClassStore {
					w := ca.Inst.Op.MemWidth()
					bit := uint64(f.Bit) % uint64(8*w)
					a.Mem.Write(ca.Addr, a.Mem.Read(ca.Addr, w)^1<<bit, w)
					ca.Data ^= 1 << bit
					injected = true
				}
			} else if d := ca.Inst.DestReg(); d >= 0 {
				// Corrupt the in-flight result of the first
				// register-writing instruction at or after the strike
				// point: its destination register and its contribution
				// to the fingerprint.
				if d < isa.NumRegs {
					a.Regs[d] ^= 1 << (f.Bit % 64)
				} else {
					a.FRegs[d-isa.NumRegs] ^= 1 << (f.Bit % 64)
				}
				ca.Data ^= 1 << (f.Bit % 64)
				injected = true
			}
		}
		if !transient && !injected && steps == step+1 {
			f.Apply(a)
			injected = true
		}

		crcA = crc.Update64(crc.Update64(crcA, ca.PC), ca.Data)
		crcB = crc.Update64(crc.Update64(crcB, cb.PC), cb.Data)
		windowCount++

		if windowCount < fi && (!a.Halted || !b.Halted) {
			continue
		}
		// Window boundary: compare fingerprints.
		if crcA == crcB {
			cp = save(steps, injected)
		} else {
			rollbacks++
			if rollbacks > maxRollbacks {
				return OutcomeUnrecoverable, nil
			}
			// Roll both cores back to the last verified boundary. In
			// Reunion the rolled-back window's register writes never
			// reached the ARF, so the architectural state IS the
			// checkpoint state — except that a physical upset struck
			// after the checkpoint persists in its cell (Reunion keeps
			// no ARF checkpoint to scrub it). A checkpoint taken after
			// the strike already contains the corrupted cell.
			a.Restore(cp.sa)
			b.Restore(cp.sb)
			a.Mem = cp.memA.Clone()
			b.Mem = cp.memB.Clone()
			a.Output = a.Output[:cp.outA]
			b.Output = b.Output[:cp.outB]
			a.Halted, b.Halted = false, false
			steps = cp.steps
			if !transient && !cp.injected {
				f.Apply(a)
			}
			// The strike happened in wall-clock time; re-execution is
			// later, so a transient is never re-injected.
			injected = true
		}
		crcA, crcB = 0, 0
		windowCount = 0
	}

	if !a.Halted || !b.Halted {
		return OutcomeHang, nil
	}
	okA := sameOutputAs(a, g.Output)
	okB := sameOutputAs(b, g.Output)
	switch {
	case okA && okB && rollbacks > 0:
		return OutcomeRecovered, nil
	case okA && okB:
		return OutcomeBenign, nil
	default:
		return OutcomeSDC, nil
	}
}

// ReunionTrial is the legacy fixed-budget entry point: the watchdog
// budget equals maxSteps*4 and a hang is folded into unrecoverable, the
// pre-watchdog classification.
func ReunionTrial(prog *asm.Program, step uint64, f Flip, transient bool, fi int, maxSteps uint64) (Outcome, error) {
	o, err := RunReunionTrial(prog, step, f, transient, fi,
		TrialOpts{MaxSteps: maxSteps, StepBudget: maxSteps * 4})
	if o == OutcomeHang {
		o = OutcomeUnrecoverable
	}
	return o, err
}

// CampaignResult aggregates injection outcomes.
type CampaignResult struct {
	Trials        int
	Benign        int
	Recovered     int
	Unrecoverable int
	SDC           int
	Hangs         int
}

// Add tallies one outcome.
func (r *CampaignResult) Add(o Outcome) {
	r.Trials++
	switch o {
	case OutcomeBenign:
		r.Benign++
	case OutcomeRecovered:
		r.Recovered++
	case OutcomeUnrecoverable:
		r.Unrecoverable++
	case OutcomeSDC:
		r.SDC++
	case OutcomeHang:
		r.Hangs++
	}
}

// CorrectRate returns the fraction of trials that finished with correct
// output (benign or recovered).
func (r CampaignResult) CorrectRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Benign+r.Recovered) / float64(r.Trials)
}

// randomFlip draws a deterministic flip in the register/PC space. Every
// draw is in range by construction: PC bits come from [0,6), fp
// registers from [0,NumRegs), int registers from [1,NumRegs) (r0 is
// hardwired) and bits from [0,64) — each flip passes Validate.
func randomFlip(a *Arrivals) Flip {
	switch a.Pick(8) {
	case 0:
		return Flip{Space: SpacePC, Bit: uint8(a.Pick(6))}
	case 1, 2:
		return Flip{Space: SpaceFPReg, Index: uint8(a.Pick(isa.NumRegs)), Bit: uint8(a.Pick(64))}
	default:
		return Flip{Space: SpaceIntReg, Index: uint8(1 + a.Pick(isa.NumRegs-1)), Bit: uint8(a.Pick(64))}
	}
}

// UnSyncCampaign runs n deterministic UnSync injections spread over the
// program's execution and returns the outcome tally. A failing trial no
// longer aborts the campaign: every trial runs, the partial tally is
// always returned, and per-trial errors come back joined.
func UnSyncCampaign(prog *asm.Program, n int, seed uint64, maxSteps uint64) (CampaignResult, error) {
	return UnSyncCampaignContext(context.Background(), prog, n, seed, maxSteps)
}

// UnSyncCampaignContext is UnSyncCampaign under a context: cancelling
// ctx stops the campaign within one trial quantum and returns the
// partial tally with the cancellation cause joined in.
func UnSyncCampaignContext(ctx context.Context, prog *asm.Program, n int, seed uint64, maxSteps uint64) (CampaignResult, error) {
	g, err := golden(prog, maxSteps)
	if err != nil {
		return CampaignResult{}, err
	}
	arr := NewArrivals(SER{PerInst: 1}, seed)
	opts := TrialOpts{MaxSteps: maxSteps, StepBudget: maxSteps, Golden: g, Ctx: ctx}
	var res CampaignResult
	var errs []error
	for i := 0; i < n; i++ {
		if cause := context.Cause(ctx); cause != nil {
			return res, errors.Join(append(errs, cause)...)
		}
		step := uint64(arr.Pick(int(g.InstCount)))
		o, err := RunUnSyncTrial(prog, step, randomFlip(arr), true, opts)
		if err != nil {
			errs = append(errs, fmt.Errorf("fault: trial %d: %w", i, err))
			continue
		}
		if o == OutcomeHang {
			o = OutcomeUnrecoverable
		}
		res.Add(o)
	}
	return res, errors.Join(errs...)
}

// ReunionCampaign runs n deterministic Reunion injections; transient
// selects in-flight (inside ROEC) vs persistent (outside ROEC) upsets.
// Like UnSyncCampaign it accumulates per-trial errors instead of
// aborting, returning the partial tally alongside the joined errors.
func ReunionCampaign(prog *asm.Program, n int, transient bool, fi int, seed uint64, maxSteps uint64) (CampaignResult, error) {
	return ReunionCampaignContext(context.Background(), prog, n, transient, fi, seed, maxSteps)
}

// ReunionCampaignContext is ReunionCampaign under a context (same
// cancellation contract as UnSyncCampaignContext).
func ReunionCampaignContext(ctx context.Context, prog *asm.Program, n int, transient bool, fi int, seed uint64, maxSteps uint64) (CampaignResult, error) {
	g, err := golden(prog, maxSteps)
	if err != nil {
		return CampaignResult{}, err
	}
	arr := NewArrivals(SER{PerInst: 1}, seed)
	opts := TrialOpts{MaxSteps: maxSteps, StepBudget: maxSteps * 4, Golden: g, Ctx: ctx}
	var res CampaignResult
	var errs []error
	for i := 0; i < n; i++ {
		if cause := context.Cause(ctx); cause != nil {
			return res, errors.Join(append(errs, cause)...)
		}
		step := uint64(arr.Pick(int(g.InstCount)))
		o, err := RunReunionTrial(prog, step, randomFlip(arr), transient, fi, opts)
		if err != nil {
			errs = append(errs, fmt.Errorf("fault: trial %d: %w", i, err))
			continue
		}
		if o == OutcomeHang {
			o = OutcomeUnrecoverable
		}
		res.Add(o)
	}
	return res, errors.Join(errs...)
}
