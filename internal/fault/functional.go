package fault

import (
	"errors"
	"fmt"

	"github.com/cmlasu/unsync/internal/asm"
	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/reunion/crc"
)

// This file implements emulator-level (architecturally exact) fault
// injection — the §VI-D verification that "both UnSync and Reunion
// architectures execute programs correctly in the presence of errors",
// and the demonstration of where their regions of error coverage end.
//
// UnSync semantics: the flipped element is detected locally (parity /
// DMR) and the architectural state of the error-free core is copied
// over the erroneous core; execution is always-forward.
//
// Reunion semantics: the corruption surfaces (or not) in the CRC-16
// fingerprint of the enclosing window. A mismatch rolls both cores back
// to the last verified boundary and re-executes. Transient in-flight
// errors are healed by re-execution; a persistently flipped register
// cell survives rollback (Reunion keeps no ARF checkpoint), so a
// consumed-before-overwritten flip livelocks and is detected but
// unrecoverable — it lies outside Reunion's ROEC.

// Space selects the architectural state a functional flip targets.
type Space uint8

const (
	SpaceIntReg Space = iota
	SpaceFPReg
	SpacePC
)

// String names the injection space.
func (s Space) String() string {
	switch s {
	case SpaceIntReg:
		return "int-reg"
	case SpaceFPReg:
		return "fp-reg"
	case SpacePC:
		return "pc"
	}
	return "space(?)"
}

// Flip is one single-bit architectural upset.
type Flip struct {
	Space Space
	Index uint8 // register number (ignored for PC)
	Bit   uint8 // 0..63
}

// Apply injects the flip into a machine.
func (f Flip) Apply(m *emu.Machine) {
	switch f.Space {
	case SpaceIntReg:
		if f.Index%isa.NumRegs != 0 { // r0 is hardwired
			m.Regs[f.Index%isa.NumRegs] ^= 1 << (f.Bit % 64)
		}
	case SpaceFPReg:
		m.FRegs[f.Index%isa.NumRegs] ^= 1 << (f.Bit % 64)
	case SpacePC:
		// Flip within the low bits so the PC stays near the text
		// section (a far flip is detected trivially by a fetch fault).
		m.PC ^= 1 << (2 + f.Bit%6)
	}
}

// Outcome classifies one injection trial.
type Outcome uint8

const (
	// OutcomeBenign: the flip never affected architectural results.
	OutcomeBenign Outcome = iota
	// OutcomeRecovered: detected and recovered; final output correct.
	OutcomeRecovered
	// OutcomeUnrecoverable: detected but recovery cannot make forward
	// progress (outside the scheme's ROEC).
	OutcomeUnrecoverable
	// OutcomeSDC: silent data corruption — wrong output, no detection.
	OutcomeSDC
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeBenign:
		return "benign"
	case OutcomeRecovered:
		return "recovered"
	case OutcomeUnrecoverable:
		return "unrecoverable"
	case OutcomeSDC:
		return "sdc"
	}
	return "outcome(?)"
}

// ErrGoldenFailed reports that the fault-free reference run failed.
var ErrGoldenFailed = errors.New("fault: golden run failed")

// golden executes the program fault-free and returns the machine.
func golden(prog *asm.Program, maxSteps uint64) (*emu.Machine, error) {
	g := emu.New(prog)
	if err := g.Run(maxSteps); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrGoldenFailed, err)
	}
	if !g.Halted {
		return nil, fmt.Errorf("%w: did not halt", ErrGoldenFailed)
	}
	return g, nil
}

func sameOutputAs(m *emu.Machine, out []uint64) bool {
	if len(m.Output) != len(out) {
		return false
	}
	for i := range out {
		if m.Output[i] != out[i] {
			return false
		}
	}
	return true
}

// UnSyncTrial runs one UnSync functional injection: the flip lands on
// core A after `step` committed instructions. When detected is true
// (the structure is inside UnSync's ROEC — parity/DMR), recovery copies
// the error-free core's architectural state over the erroneous core and
// both run on. When false, the corruption runs silently (this models a
// hypothetical unprotected structure and quantifies what the detection
// hardware buys).
func UnSyncTrial(prog *asm.Program, step uint64, f Flip, detected bool, maxSteps uint64) (Outcome, error) {
	g, err := golden(prog, maxSteps)
	if err != nil {
		return OutcomeBenign, err
	}
	a, b := emu.New(prog), emu.New(prog)
	for i := uint64(0); i < step && !a.Halted; i++ {
		if _, err := a.Step(); err != nil {
			return OutcomeBenign, err
		}
		if _, err := b.Step(); err != nil {
			return OutcomeBenign, err
		}
	}
	f.Apply(a)

	if detected {
		// Parity/DMR flags the erroneous element; the EIH stalls both
		// cores and core B's architectural state is copied onto A
		// ("always forward execution" — B resumes exactly where it
		// stopped, A is forwarded to B's position).
		a.Restore(b.Snapshot())
	}

	for !a.Halted || !b.Halted {
		if a.InstCount > g.InstCount+maxSteps {
			return OutcomeUnrecoverable, nil
		}
		if _, err := a.Step(); err != nil {
			// A corrupted PC can leave the text section: detected by
			// the fetch fault. Without detection hardware this is
			// still an unrecoverable crash.
			return OutcomeUnrecoverable, nil
		}
		if _, err := b.Step(); err != nil {
			return OutcomeUnrecoverable, nil
		}
	}

	okA := sameOutputAs(a, g.Output)
	okB := sameOutputAs(b, g.Output)
	switch {
	case okA && okB && detected:
		return OutcomeRecovered, nil
	case okA && okB:
		return OutcomeBenign, nil
	default:
		return OutcomeSDC, nil
	}
}

// maxRollbacks bounds Reunion's rollback retries before a fault is
// declared detected-but-unrecoverable.
const maxRollbacks = 5

// ReunionTrial runs one Reunion functional injection. When transient is
// true the flip models an in-flight error: it corrupts the result of
// the instruction committed at `step` (register value and fingerprint
// contribution) but not the underlying storage, so rollback re-executes
// it cleanly. When false the flip is a persistent state upset (a struck
// ARF cell): rollback restores the last verified window but the cell
// remains flipped, so a consumed value mismatches again and again.
func ReunionTrial(prog *asm.Program, step uint64, f Flip, transient bool, fi int, maxSteps uint64) (Outcome, error) {
	if fi < 1 {
		fi = 10
	}
	g, err := golden(prog, maxSteps)
	if err != nil {
		return OutcomeBenign, err
	}

	a, b := emu.New(prog), emu.New(prog)

	type checkpoint struct {
		sa, sb   emu.ArchState
		memA     *emu.Memory
		memB     *emu.Memory
		outA     int
		outB     int
		steps    uint64
		injected bool // has the flip already been applied before this point?
	}
	save := func(steps uint64, injected bool) checkpoint {
		return checkpoint{
			sa: a.Snapshot(), sb: b.Snapshot(),
			memA: a.Mem.Clone(), memB: b.Mem.Clone(),
			outA: len(a.Output), outB: len(b.Output),
			steps: steps, injected: injected,
		}
	}
	cp := save(0, false)

	var crcA, crcB uint16
	var windowCount int
	var rollbacks int
	steps := uint64(0)
	injected := false

	for (!a.Halted || !b.Halted) && steps < maxSteps*4 {
		ca, err := a.Step()
		if err != nil {
			return OutcomeUnrecoverable, nil
		}
		cb, err := b.Step()
		if err != nil {
			return OutcomeUnrecoverable, nil
		}
		steps++

		if transient && !injected && steps >= step+1 {
			// Corrupt the in-flight result of the first
			// register-writing instruction at or after the strike
			// point: its destination register and its contribution to
			// the fingerprint.
			if d := ca.Inst.DestReg(); d >= 0 {
				if d < isa.NumRegs {
					a.Regs[d] ^= 1 << (f.Bit % 64)
				} else {
					a.FRegs[d-isa.NumRegs] ^= 1 << (f.Bit % 64)
				}
				ca.Data ^= 1 << (f.Bit % 64)
				injected = true
			}
		}
		if !transient && !injected && steps == step+1 {
			f.Apply(a)
			injected = true
		}

		crcA = crc.Update64(crc.Update64(crcA, ca.PC), ca.Data)
		crcB = crc.Update64(crc.Update64(crcB, cb.PC), cb.Data)
		windowCount++

		if windowCount < fi && (!a.Halted || !b.Halted) {
			continue
		}
		// Window boundary: compare fingerprints.
		if crcA == crcB {
			cp = save(steps, injected)
		} else {
			rollbacks++
			if rollbacks > maxRollbacks {
				return OutcomeUnrecoverable, nil
			}
			// Roll both cores back to the last verified boundary. In
			// Reunion the rolled-back window's register writes never
			// reached the ARF, so the architectural state IS the
			// checkpoint state — except that a physical upset struck
			// after the checkpoint persists in its cell (Reunion keeps
			// no ARF checkpoint to scrub it). A checkpoint taken after
			// the strike already contains the corrupted cell.
			a.Restore(cp.sa)
			b.Restore(cp.sb)
			a.Mem = cp.memA.Clone()
			b.Mem = cp.memB.Clone()
			a.Output = a.Output[:cp.outA]
			b.Output = b.Output[:cp.outB]
			a.Halted, b.Halted = false, false
			steps = cp.steps
			if !transient && !cp.injected {
				f.Apply(a)
			}
			// The strike happened in wall-clock time; re-execution is
			// later, so a transient is never re-injected.
			injected = true
		}
		crcA, crcB = 0, 0
		windowCount = 0
	}

	if !a.Halted || !b.Halted {
		return OutcomeUnrecoverable, nil
	}
	okA := sameOutputAs(a, g.Output)
	okB := sameOutputAs(b, g.Output)
	switch {
	case okA && okB && rollbacks > 0:
		return OutcomeRecovered, nil
	case okA && okB:
		return OutcomeBenign, nil
	default:
		return OutcomeSDC, nil
	}
}

// CampaignResult aggregates injection outcomes.
type CampaignResult struct {
	Trials        int
	Benign        int
	Recovered     int
	Unrecoverable int
	SDC           int
}

func (r *CampaignResult) add(o Outcome) {
	r.Trials++
	switch o {
	case OutcomeBenign:
		r.Benign++
	case OutcomeRecovered:
		r.Recovered++
	case OutcomeUnrecoverable:
		r.Unrecoverable++
	case OutcomeSDC:
		r.SDC++
	}
}

// CorrectRate returns the fraction of trials that finished with correct
// output (benign or recovered).
func (r CampaignResult) CorrectRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Benign+r.Recovered) / float64(r.Trials)
}

// randomFlip draws a deterministic flip in the register/PC space.
func randomFlip(a *Arrivals) Flip {
	switch a.Pick(8) {
	case 0:
		return Flip{Space: SpacePC, Bit: uint8(a.Pick(6))}
	case 1, 2:
		return Flip{Space: SpaceFPReg, Index: uint8(a.Pick(isa.NumRegs)), Bit: uint8(a.Pick(64))}
	default:
		return Flip{Space: SpaceIntReg, Index: uint8(1 + a.Pick(isa.NumRegs-1)), Bit: uint8(a.Pick(64))}
	}
}

// UnSyncCampaign runs n deterministic UnSync injections spread over the
// program's execution and returns the outcome tally.
func UnSyncCampaign(prog *asm.Program, n int, seed uint64, maxSteps uint64) (CampaignResult, error) {
	g, err := golden(prog, maxSteps)
	if err != nil {
		return CampaignResult{}, err
	}
	arr := NewArrivals(SER{PerInst: 1}, seed)
	var res CampaignResult
	for i := 0; i < n; i++ {
		step := uint64(arr.Pick(int(g.InstCount)))
		o, err := UnSyncTrial(prog, step, randomFlip(arr), true, maxSteps)
		if err != nil {
			return res, err
		}
		res.add(o)
	}
	return res, nil
}

// ReunionCampaign runs n deterministic Reunion injections; transient
// selects in-flight (inside ROEC) vs persistent (outside ROEC) upsets.
func ReunionCampaign(prog *asm.Program, n int, transient bool, fi int, seed uint64, maxSteps uint64) (CampaignResult, error) {
	g, err := golden(prog, maxSteps)
	if err != nil {
		return CampaignResult{}, err
	}
	arr := NewArrivals(SER{PerInst: 1}, seed)
	var res CampaignResult
	for i := 0; i < n; i++ {
		step := uint64(arr.Pick(int(g.InstCount)))
		o, err := ReunionTrial(prog, step, randomFlip(arr), transient, fi, maxSteps)
		if err != nil {
			return res, err
		}
		res.add(o)
	}
	return res, nil
}
