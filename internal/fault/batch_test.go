package fault_test

import (
	"errors"
	"testing"

	"github.com/cmlasu/unsync/internal/emu"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/proggen"
)

// batchRNG is a private splitmix64 stream for site derivation.
type batchRNG struct{ s uint64 }

func (r *batchRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// randomFlip draws a random valid flip site over all five spaces.
func randomFlip(r *batchRNG, dataBase uint64) fault.Flip {
	switch fault.Space(r.next() % uint64(fault.NumSpaces)) {
	case fault.SpaceIntReg:
		return fault.Flip{Space: fault.SpaceIntReg, Index: uint8(1 + r.next()%uint64(isa.NumRegs-1)), Bit: uint8(r.next() % 64)}
	case fault.SpaceFPReg:
		return fault.Flip{Space: fault.SpaceFPReg, Index: uint8(r.next() % uint64(isa.NumRegs)), Bit: uint8(r.next() % 64)}
	case fault.SpacePC:
		return fault.Flip{Space: fault.SpacePC, Bit: uint8(r.next() % 6)}
	case fault.SpaceMem:
		return fault.Flip{Space: fault.SpaceMem, Addr: dataBase + (r.next()%56)&^7, Bit: uint8(r.next() % 64)}
	default:
		return fault.Flip{Space: fault.SpaceCB, Bit: uint8(r.next() % 64)}
	}
}

// TestUnSyncTrialBatchMatchesScalar fuzzes the batched UnSync kernel
// against the scalar reference: random programs, random strike steps
// (including past program completion), random sites over every space,
// detected and undetected, asserting the batch classifies every trial
// exactly as RunUnSyncTrial does.
func TestUnSyncTrialBatchMatchesScalar(t *testing.T) {
	r := &batchRNG{s: 0xb47c4}
	for seed := uint64(1); seed <= 30; seed++ {
		prog := proggen.Random(seed)
		g := emu.New(prog)
		if err := g.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: golden: %v", seed, err)
		}
		opts := fault.TrialOpts{Golden: g}

		trials := make([]fault.BatchTrial, 24)
		for i := range trials {
			trials[i] = fault.BatchTrial{
				// +8 so some strikes land past program completion and
				// exercise the benign shortcut.
				Step:     r.next() % (g.InstCount + 8),
				Flip:     randomFlip(r, prog.DataBase),
				Detected: r.next()%2 == 0,
			}
		}
		res, stats, err := fault.UnSyncTrialBatch(prog, trials, opts)
		if err != nil {
			t.Fatalf("seed %d: batch: %v", seed, err)
		}
		if stats.Lanes != uint64(len(trials)) {
			t.Fatalf("seed %d: stats.Lanes = %d, want %d", seed, stats.Lanes, len(trials))
		}
		for i, tr := range trials {
			want, werr := fault.RunUnSyncTrial(prog, tr.Step, tr.Flip, tr.Detected, opts)
			if werr != nil {
				t.Fatalf("seed %d trial %d: scalar: %v", seed, i, werr)
			}
			if !res[i].Done || res[i].Err != nil {
				t.Fatalf("seed %d trial %d: batch lane not classified: %+v", seed, i, res[i])
			}
			if res[i].Outcome != want {
				t.Fatalf("seed %d trial %d (%+v): batch %v, scalar %v", seed, i, tr, res[i].Outcome, want)
			}
		}
	}
}

// TestUnSyncTrialBatchOfOne pins the scalar escape hatch: a batch of
// width one classifies like the scalar kernel too.
func TestUnSyncTrialBatchOfOne(t *testing.T) {
	r := &batchRNG{s: 0x0f1}
	prog := proggen.Random(3)
	g := emu.New(prog)
	if err := g.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	opts := fault.TrialOpts{Golden: g}
	for i := 0; i < 40; i++ {
		tr := fault.BatchTrial{Step: r.next() % (g.InstCount + 2), Flip: randomFlip(r, prog.DataBase), Detected: r.next()%3 == 0}
		res, _, err := fault.UnSyncTrialBatch(prog, []fault.BatchTrial{tr}, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fault.RunUnSyncTrial(prog, tr.Step, tr.Flip, tr.Detected, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Outcome != want {
			t.Fatalf("trial %d (%+v): batch %v, scalar %v", i, tr, res[0].Outcome, want)
		}
	}
}

// TestUnSyncTrialBatchInvalidSite pins the per-lane error contract: an
// invalid flip site yields a not-Done lane carrying the validation
// error, without disturbing its neighbors.
func TestUnSyncTrialBatchInvalidSite(t *testing.T) {
	prog := proggen.Random(5)
	g := emu.New(prog)
	if err := g.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	trials := []fault.BatchTrial{
		{Step: 1, Flip: fault.Flip{Space: fault.SpaceIntReg, Index: 0, Bit: 3}}, // r0: invalid
		{Step: 1, Flip: fault.Flip{Space: fault.SpaceIntReg, Index: 4, Bit: 3}},
	}
	res, _, err := fault.UnSyncTrialBatch(prog, trials, fault.TrialOpts{Golden: g})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Done || !errors.Is(res[0].Err, fault.ErrInvalidFlip) {
		t.Fatalf("invalid lane: %+v", res[0])
	}
	if !res[1].Done || res[1].Err != nil {
		t.Fatalf("valid lane: %+v", res[1])
	}
}

// TestReunionTrialBatchMatchesScalar fuzzes the batched Reunion kernel
// against the scalar reference over transient and persistent strikes.
func TestReunionTrialBatchMatchesScalar(t *testing.T) {
	r := &batchRNG{s: 0x4e0210}
	for seed := uint64(1); seed <= 12; seed++ {
		prog := proggen.Random(seed)
		g := emu.New(prog)
		if err := g.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: golden: %v", seed, err)
		}
		opts := fault.TrialOpts{Golden: g}
		const fi = 16

		trials := make([]fault.BatchTrial, 12)
		for i := range trials {
			trials[i] = fault.BatchTrial{
				Step:      r.next() % (g.InstCount + 8),
				Flip:      randomFlip(r, prog.DataBase),
				Transient: r.next()%2 == 0,
			}
		}
		res, stats, err := fault.ReunionTrialBatch(prog, trials, fi, opts)
		if err != nil {
			t.Fatalf("seed %d: batch: %v", seed, err)
		}
		if stats.Shortcut+stats.Retired != stats.Lanes {
			t.Fatalf("seed %d: stats do not sum: %+v", seed, stats)
		}
		for i, tr := range trials {
			want, werr := fault.RunReunionTrial(prog, tr.Step, tr.Flip, tr.Transient, fi, opts)
			if werr != nil {
				t.Fatalf("seed %d trial %d: scalar: %v", seed, i, werr)
			}
			if !res[i].Done || res[i].Outcome != want {
				t.Fatalf("seed %d trial %d (%+v): batch %+v, scalar %v", seed, i, tr, res[i], want)
			}
		}
	}
}
