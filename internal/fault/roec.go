package fault

// Target enumerates the vulnerable sequential/storage structures of one
// core (§III-B1: sequential elements that store data, even for one
// cycle, are the most vulnerable blocks).
type Target uint8

const (
	TargetRegFile Target = iota
	TargetPC
	TargetPipelineRegs
	TargetIssueQueue
	TargetROB
	TargetLSQ
	TargetTLB
	TargetL1Data
	TargetL1Tags
	NumTargets

	// TargetCB is the uncore Communication Buffer between the cores of
	// a redundant pair. It deliberately sits after NumTargets: the
	// §III-B1 per-core accounting loops (Bits sums, ROECBits,
	// TotalBits, the AVF study) keep their per-core meaning, while the
	// campaign engine still resolves SpaceCB detection through the
	// coverage maps. Uncore buffers dominate the unprotected SER
	// contribution in Cho et al.'s study, which is exactly why the
	// campaign engine injects there.
	TargetCB
)

var targetNames = [NumTargets]string{
	"regfile", "pc", "pipeline-regs", "issue-queue", "rob",
	"lsq", "tlb", "l1-data", "l1-tags",
}

// String names the structure.
func (t Target) String() string {
	if t == TargetCB {
		return "comm-buffer"
	}
	if int(t) < len(targetNames) {
		return targetNames[t]
	}
	return "target(?)"
}

// CBEntries is the default Communication Buffer depth (Table I / §VI-B:
// 170 entries absorb the worst-case detection-latency slack).
const CBEntries = 170

// Bits returns the vulnerable bit count of a structure under the
// Table I configuration (32 KB split L1, 64-entry IQ, 128-entry ROB,
// 64-entry LSQ, 48+64-entry TLBs, 64 × 64-bit architectural registers).
func Bits(t Target) float64 {
	switch t {
	case TargetRegFile:
		return 64 * 64
	case TargetPC:
		return 64
	case TargetPipelineRegs:
		return 4 * 400 // four inter-stage latch banks
	case TargetIssueQueue:
		return 64 * 80
	case TargetROB:
		return 128 * 100
	case TargetLSQ:
		return 64 * 80
	case TargetTLB:
		return (48 + 64) * 60
	case TargetL1Data:
		return 2 * 32 * 1024 * 8
	case TargetL1Tags:
		return 2 * 512 * 24
	case TargetCB:
		// 170 entries × (64-bit store datum + 64-bit address/control).
		return CBEntries * 128
	}
	return 0
}

// Detection identifies the mechanism protecting a structure.
type Detection uint8

const (
	DetectNone Detection = iota
	DetectParity
	DetectDMR
	DetectECC         // SECDED (assumed on the Reunion L1)
	DetectFingerprint // covered by Reunion's output comparison while in flight
)

// String names the detection mechanism.
func (d Detection) String() string {
	switch d {
	case DetectParity:
		return "parity"
	case DetectDMR:
		return "dmr"
	case DetectECC:
		return "ecc"
	case DetectFingerprint:
		return "fingerprint"
	}
	return "none"
}

// Coverage maps each structure to its detection mechanism under one
// scheme.
type Coverage map[Target]Detection

// UnSyncCoverage returns the UnSync detection assignment (§III-B1):
// parity on storage structures whose read and write are at least a
// cycle apart (register file, LSQ, TLB, L1, issue queue, ROB payload),
// DMR on per-cycle sequential elements (PC, pipeline registers).
func UnSyncCoverage() Coverage {
	return Coverage{
		TargetRegFile:      DetectParity,
		TargetPC:           DetectDMR,
		TargetPipelineRegs: DetectDMR,
		TargetIssueQueue:   DetectParity,
		TargetROB:          DetectParity,
		TargetLSQ:          DetectParity,
		TargetTLB:          DetectParity,
		TargetL1Data:       DetectParity,
		TargetL1Tags:       DetectParity,
		// The uncore CB is outside §III-B1's parity/DMR assignment: the
		// cores run unsynchronized and drain stores through it with no
		// check — the unprotected-uncore exposure the campaign engine
		// measures (nonzero SDC over SpaceCB).
		TargetCB: DetectNone,
	}
}

// ReunionCoverage returns Reunion's region of error coverage (§VI-D):
// the fingerprint verifies instruction results between Execute and
// Commit, so only in-flight pipeline state is covered; the
// architectural register file and TLB (post-commit state) are not. The
// L1 is assumed ECC-protected but the paper excludes it from the ROEC
// proper; it is marked DetectECC here and excluded by ROECBits.
func ReunionCoverage() Coverage {
	return Coverage{
		TargetRegFile:      DetectNone,
		TargetPC:           DetectFingerprint,
		TargetPipelineRegs: DetectFingerprint,
		TargetIssueQueue:   DetectFingerprint,
		TargetROB:          DetectFingerprint,
		TargetLSQ:          DetectFingerprint,
		TargetTLB:          DetectNone,
		TargetL1Data:       DetectECC,
		TargetL1Tags:       DetectECC,
		// Reunion's synchronizing store buffer releases stores only
		// after the window comparison: an in-flight store corruption is
		// caught by the fingerprint.
		TargetCB: DetectFingerprint,
	}
}

// ROECBits sums the vulnerable bits inside the region of error coverage.
// Following the paper, ECC-assumed structures (the Reunion L1) are not
// counted as part of the scheme's own ROEC.
func ROECBits(c Coverage) float64 {
	var sum float64
	for t := Target(0); t < NumTargets; t++ {
		switch c[t] {
		case DetectParity, DetectDMR, DetectFingerprint:
			sum += Bits(t)
		}
	}
	return sum
}

// TotalBits sums all vulnerable bits.
func TotalBits() float64 {
	var sum float64
	for t := Target(0); t < NumTargets; t++ {
		sum += Bits(t)
	}
	return sum
}

// ROECFraction is the covered fraction of all vulnerable bits.
func ROECFraction(c Coverage) float64 {
	return ROECBits(c) / TotalBits()
}

// DetectionLatency returns the nominal cycles from strike to detection
// for each mechanism: DMR compares every cycle; parity is verified on
// the next read (about one access interval); ECC on access; the
// fingerprint waits for the window comparison.
func DetectionLatency(d Detection, fi int, cmpLatency uint64) uint64 {
	switch d {
	case DetectDMR:
		return 1
	case DetectParity, DetectECC:
		return 2
	case DetectFingerprint:
		return uint64(fi) + cmpLatency
	}
	return 0
}
