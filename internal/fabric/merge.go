package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"github.com/cmlasu/unsync/internal/campaign"
)

// merge turns the deduped record map into the campaign's aggregate
// Result and, when configured, the merged canonical journal.
//
// Determinism proof sketch (the full argument is DESIGN.md §15): every
// record derives from (Seed, trial index, attempt) alone, so for a
// given params key there is exactly one valid record per index — the
// dedupe in record() keeps the first arrival and verifies later copies
// byte-identical. Sorting by index and re-marshalling each record with
// the same json.Marshal the single-node journalWriter uses therefore
// reproduces a single-node -workers 1 checkpoint journal byte for
// byte, and campaign.AggregateRecords folds the same records through
// the same index-ordered aggregation as a single-node finish.
func (c *Coordinator) merge() (campaign.Result, error) {
	c.mu.Lock()
	recs := make([]*campaign.TrialRecord, c.spec.Trials)
	for idx, rec := range c.done {
		if idx >= 0 && idx < len(recs) {
			recs[idx] = rec
		}
	}
	c.mu.Unlock()
	for i, rec := range recs {
		if rec == nil {
			return campaign.Result{}, fmt.Errorf("%w: merge missing trial %d", errFatal, i)
		}
	}

	if c.cfg.Merged != "" {
		if err := writeMerged(c.cfg.Merged, recs); err != nil {
			return campaign.Result{}, err
		}
	}
	res, err := campaign.AggregateRecords(c.spec, c.progHash, recs)
	if err != nil {
		return res, err
	}
	if jerr := c.jn.append(journalEvent{Event: evComplete, Trials: len(recs)}, true); jerr != nil {
		return res, jerr
	}
	c.logf("complete: %d trials merged (%d leases, %d re-leases, %d splits, %d duplicate records)",
		len(recs), c.leases, c.failures, c.splits, c.duplicates)
	return res, nil
}

// writeMerged writes the canonical merged journal: one marshalled
// TrialRecord per line in trial-index order — the byte stream a
// single-node -workers 1 run journals. Written whole then fsync'd; the
// coordinator journal, not this file, is the durable state.
func writeMerged(path string, recs []*campaign.TrialRecord) error {
	var buf bytes.Buffer
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("fabric: marshal merged record %d: %w", rec.Index, err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fabric: create merged journal: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("fabric: write merged journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("fabric: sync merged journal: %w", err)
	}
	return f.Close()
}
