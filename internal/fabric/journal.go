package fabric

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/serve"
)

// journalEvent is one line of the coordinator journal: the campaign
// header, a lease-protocol event, or a received trial record. The file
// is append-only JSONL with the same torn-tail tolerance as the
// campaign checkpoint: a coordinator killed mid-append loses at most
// its final line.
//
// Durability contract: lease-protocol events (campaign, lease, split,
// fail, done, complete) are fsync'd as written — they are the state a
// restarted coordinator resumes from. Trial lines are flushed to the
// OS per record and fsync'd no later than the next protocol event, so
// a shard's "done" event on disk implies every one of its trials is
// too.
type journalEvent struct {
	Event string `json:"event"`

	// campaign header
	Key    string                `json:"key,omitempty"`
	Trials int                   `json:"trials,omitempty"`
	Prog   string                `json:"prog,omitempty"`
	Params *serve.CampaignParams `json:"params,omitempty"`

	// lease protocol (shard ids start at 1 so omitempty stays honest)
	Shard   int    `json:"shard,omitempty"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	At      int    `json:"at,omitempty"`  // split point
	New     int    `json:"new,omitempty"` // split: stolen shard id
	Err     string `json:"err,omitempty"`

	// trial
	Rec *campaign.TrialRecord `json:"rec,omitempty"`
}

// Journal event names.
const (
	evCampaign = "campaign" // header: params key, trial count, params
	evLease    = "lease"    // a shard range leased to a worker
	evSplit    = "split"    // a straggler's tail re-split (work stealing)
	evFail     = "fail"     // a lease failed; the remainder re-pends
	evDone     = "done"     // a lease completed cleanly
	evTrial    = "trial"    // one received trial record
	evComplete = "complete" // every trial received; merge may run
)

// journal is the coordinator's durable state: fsync'd protocol events
// interleaved with flushed trial lines. The mutex guards only the
// write itself (line atomicity); Sync runs outside it, exactly like
// the serve jobs journal, so a stalled disk never serializes every
// stream behind one fsync.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: open journal: %w", err)
	}
	return &journal{f: f}, nil
}

// append writes one event as a line. sync forces an fsync after the
// write — required for every protocol event, optional for trial lines.
func (j *journal) append(ev journalEvent, sync bool) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("fabric: marshal journal event: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	st, serr := j.f.Stat()
	if serr != nil {
		j.mu.Unlock()
		return fmt.Errorf("fabric: journal stat: %w", serr)
	}
	if _, werr := j.f.Write(b); werr != nil {
		// Roll back a short write so the journal stays line-aligned.
		_ = j.f.Truncate(st.Size())
		j.mu.Unlock()
		return fmt.Errorf("fabric: journal write: %w", werr)
	}
	j.mu.Unlock()
	if !sync {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fabric: journal sync: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// replayState is what a journal replay recovers: the campaign header
// and every received trial record, keyed by trial index.
type replayState struct {
	header *journalEvent
	done   map[int]*campaign.TrialRecord
}

// replayJournal reads a coordinator journal back. Records under a
// different params key fail the replay (a fabric journal belongs to
// exactly one campaign — unlike the shared single-node checkpoint,
// mixing keys here can only mean the config changed under a resume).
// Unparseable lines are tolerated only as the torn tail of a kill;
// earlier ones fail loudly, mirroring the serve jobs journal.
func replayJournal(path, key string) (replayState, error) {
	st := replayState{done: map[int]*campaign.TrialRecord{}}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("fabric: open journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev journalEvent
		if uerr := json.Unmarshal(raw, &ev); uerr != nil {
			if peekEOF(sc) {
				break // torn tail from a killed coordinator
			}
			return st, fmt.Errorf("fabric: journal line %d: %w", line, uerr)
		}
		switch ev.Event {
		case evCampaign:
			if ev.Key != key {
				return st, fmt.Errorf("%w: journal %s was written for params key %s, this campaign derives %s — the program, scheme, seed, spaces, budgets or trial timeout changed under -resume",
					campaign.ErrKeyMismatch, path, ev.Key, key)
			}
			e := ev
			st.header = &e
		case evTrial:
			if ev.Rec == nil {
				return st, fmt.Errorf("fabric: journal line %d: trial event without a record", line)
			}
			if ev.Rec.Key != key {
				return st, fmt.Errorf("%w: journal %s trial %d carries key %s, want %s",
					campaign.ErrKeyMismatch, path, ev.Rec.Index, ev.Rec.Key, key)
			}
			rec := *ev.Rec
			st.done[rec.Index] = &rec
		case evLease, evSplit, evFail, evDone, evComplete:
			// Lease-protocol history: informative for the artifact log,
			// not needed for resume — the done map alone decides what is
			// left to lease.
		default:
			return st, fmt.Errorf("fabric: journal line %d: unknown event %q", line, ev.Event)
		}
	}
	if serr := sc.Err(); serr != nil {
		return st, fmt.Errorf("fabric: read journal: %w", serr)
	}
	return st, nil
}

// peekEOF reports whether the scanner has no further lines — i.e. the
// just-failed line is the file's torn tail.
func peekEOF(sc *bufio.Scanner) bool {
	return !sc.Scan() && sc.Err() == nil
}
