// Package fabric is the distributed campaign coordinator: it splits a
// fault-injection campaign's deterministic trial space into leased
// shard ranges, dispatches them to worker nodes over the internal/serve
// HTTP plane (POST /api/v1/shards), and merges the streamed-back trial
// records into one aggregate campaign.Result that is bit-identical to a
// single-node run of the same Spec.
//
// The protocol leans entirely on the campaign determinism contract:
// every trial's fault site derives from (Seed, trial index, attempt)
// alone, so any worker can execute any index range in any order and
// produce the very records a single-node run would journal. That turns
// fault tolerance into bookkeeping:
//
//   - Leases carry heartbeat deadlines: a worker streams one flushed
//     JSONL line per trial, and every line resets the coordinator's
//     timer. A SIGKILLed worker tears the TCP stream (or goes silent
//     past Config.LeaseTimeout); either way the lease fails and the
//     undone remainder of its range is re-leased elsewhere, with the
//     already-received indices in the skip list.
//   - Stragglers are re-split, not waited on: an idle worker steals the
//     tail half of the largest running remainder. The straggler keeps
//     streaming its original range; the overlap arrives twice, is
//     bit-identical by determinism (verified — a byte difference is a
//     determinism violation and aborts the campaign), and is deduped
//     by trial index on merge.
//   - The coordinator journals its own state (campaign header fsync'd
//     at open, lease-protocol events fsync'd as they happen, trial
//     records flushed per line), so a coordinator killed mid-campaign
//     resumes from its journal without re-running any received trial.
//
// Worker failures are absorbed with internal/resilience primitives: a
// per-worker circuit breaker stops leasing to a node that keeps
// failing, and re-leases back off with full jitter.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/resilience"
	"github.com/cmlasu/unsync/internal/serve"
	"github.com/cmlasu/unsync/internal/stream"
)

// Config describes one distributed campaign.
type Config struct {
	// Workers are the base URLs of the worker nodes (unsync-serve
	// -worker), e.g. "http://10.0.0.7:8321". At least one is required.
	Workers []string
	// Params is the campaign definition, shared verbatim with every
	// worker; the params key derived from it is the lease-protocol
	// contract. CIWidth must be zero: early stopping is a sequential
	// policy — where to stop depends on trial order — and cannot be
	// distributed bit-identically.
	Params serve.CampaignParams
	// Journal is the coordinator's durable state file (required).
	Journal string
	// Resume replays Journal before dispatching, so completed trials
	// (and fully-received shards) never re-run.
	Resume bool
	// Merged, when non-empty, receives the merged canonical journal:
	// one JSONL trial record per line in trial-index order — byte-
	// identical to the checkpoint journal of a single-node -workers 1
	// run of the same Spec.
	Merged string

	// Shards is the static split count (default 4 per worker, clamped
	// to the trial count).
	Shards int
	// MinSteal is the smallest remainder worth re-splitting: an idle
	// worker steals the tail half of a running shard only when at least
	// 2*MinSteal trials remain in it (default 8).
	MinSteal int
	// ShardAttempts bounds lease attempts per shard; exceeding it
	// aborts the campaign (default 16).
	ShardAttempts int
	// LeaseTimeout is the heartbeat deadline: the longest silence on a
	// shard stream before the lease is declared dead (default 60s).
	LeaseTimeout time.Duration
	// Retry is the re-lease backoff schedule after a worker failure.
	Retry resilience.Backoff
	// Breaker configures the per-worker circuit breaker.
	Breaker resilience.BreakerConfig
	// Client issues the shard requests (default: a client whose
	// transport bounds the response-header wait by LeaseTimeout).
	Client *http.Client

	// StopAfter, when positive, aborts the campaign after that many
	// newly received trial records, returning campaign.ErrInterrupted —
	// the deterministic stand-in for a coordinator kill, used by tests
	// and the CI restart exercise.
	StopAfter int
	// Plane, when non-nil, observes every trial record the coordinator
	// receives: journal-resumed records replay in index order before
	// dispatch, then live arrivals (including steal-overlap duplicates,
	// which the plane's dedupe absorbs) as they stream in. The plane's
	// own DLQ replay means a restarted coordinator never dead-letters
	// the same trial twice. Strictly observational: the merged Result
	// and journal bytes are identical with or without it.
	Plane *stream.Plane
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards == 0 {
		cfg.Shards = 4 * len(cfg.Workers)
	}
	if cfg.MinSteal <= 0 {
		cfg.MinSteal = 8
	}
	if cfg.ShardAttempts <= 0 {
		cfg.ShardAttempts = 16
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 60 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{
			ResponseHeaderTimeout: cfg.LeaseTimeout,
		}}
	}
	return cfg
}

// shardState is a shard's lease position.
type shardState int

const (
	shardPending shardState = iota
	shardRunning
	shardDone
)

// shard is one leased slice [lo, hi) of the trial space. Ranges only
// ever shrink (a steal moves hi down); records received for a shard are
// tracked globally in the coordinator's done map, never per shard.
type shard struct {
	id       int
	lo, hi   int
	state    shardState
	attempts int
	worker   string // current or last lessee
}

// Sentinel causes distinguishing how a run ended.
var (
	// errCampaignComplete cancels in-flight straggler leases once every
	// trial has been received: their remaining stream is pure overlap.
	errCampaignComplete = errors.New("fabric: campaign complete")
	// errStopAfter cancels the run when Config.StopAfter fires.
	errStopAfter = errors.New("fabric: stop-after threshold reached")
	// errFatal marks failures no re-lease can fix (params key skew, a
	// determinism violation, journal I/O failure): the campaign aborts.
	errFatal = errors.New("fabric: fatal")
)

// Coordinator drives one distributed campaign. Build with New, run
// with Run; Snapshot is safe to call concurrently from a metrics
// handler.
type Coordinator struct {
	cfg      Config
	spec     campaign.Spec // normalized
	progHash string
	key      string
	jn       *journal

	mu        sync.Mutex
	cond      *sync.Cond
	shards    []*shard
	nextID    int
	done      map[int]*campaign.TrialRecord
	received  int  // newly received records this run (StopAfter counter)
	complete  bool // every trial received
	stopped   bool // run context cancelled (complete, fatal, or external)
	fatalErr  error
	cancelRun context.CancelCauseFunc

	leases, failures, splits, duplicates uint64
}

// grant is one lease handed to a worker loop: the request range plus
// the skip snapshot taken at grant time.
type grant struct {
	s       *shard
	lo, hi  int
	skip    []int
	attempt int
}

// New validates the config, opens (and on Resume replays) the
// coordinator journal, and splits the trial space.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fabric: no workers configured")
	}
	if cfg.Journal == "" {
		return nil, errors.New("fabric: no journal path configured")
	}
	if cfg.Params.CIWidth > 0 {
		return nil, errors.New("fabric: CIWidth early stopping is a sequential policy (where to stop depends on trial order); run it single-node with unsync-fault")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("fabric: campaign params: %w", err)
	}
	prog, err := cfg.Params.Program()
	if err != nil {
		return nil, fmt.Errorf("fabric: campaign params: %w", err)
	}
	spec := cfg.Params.Spec().Normalized()
	progHash := campaign.ProgHash(prog)
	key := spec.Key(progHash)

	c := &Coordinator{
		cfg:      cfg,
		spec:     spec,
		progHash: progHash,
		key:      key,
		done:     map[int]*campaign.TrialRecord{},
	}
	c.cond = sync.NewCond(&c.mu)

	var header *journalEvent
	if cfg.Resume {
		st, rerr := replayJournal(cfg.Journal, key)
		if rerr != nil {
			return nil, rerr
		}
		header = st.header
		for idx, rec := range st.done {
			if idx >= 0 && idx < spec.Trials {
				c.done[idx] = rec
			}
		}
	} else if info, serr := fileSize(cfg.Journal); serr != nil {
		return nil, serr
	} else if info > 0 {
		return nil, fmt.Errorf("fabric: journal %s already holds a campaign; pass -resume to continue it or remove the file to start fresh", cfg.Journal)
	}

	c.jn, err = openJournal(cfg.Journal)
	if err != nil {
		return nil, err
	}
	if header == nil {
		params := cfg.Params
		if err := c.jn.append(journalEvent{
			Event: evCampaign, Key: key, Trials: spec.Trials,
			Prog: progHash, Params: &params,
		}, true); err != nil {
			c.jn.close()
			return nil, err
		}
	}

	c.shards = splitRange(spec.Trials, cfg.Shards)
	c.nextID = len(c.shards) + 1
	c.complete = len(c.done) == spec.Trials
	return c, nil
}

// splitRange statically partitions [0, trials) into at most n near-even
// shard ranges, ids starting at 1.
func splitRange(trials, n int) []*shard {
	if n < 1 {
		n = 1
	}
	if n > trials {
		n = trials
	}
	out := make([]*shard, 0, n)
	lo := 0
	for i := 0; i < n; i++ {
		size := trials / n
		if i < trials%n {
			size++
		}
		out = append(out, &shard{id: i + 1, lo: lo, hi: lo + size})
		lo += size
	}
	return out
}

// Close releases the coordinator journal. Run closes it implicitly on
// return; Close exists for New-but-never-Run paths.
func (c *Coordinator) Close() error { return c.jn.close() }

// Run executes the campaign to completion (or interruption) and merges
// the result. On campaign.ErrInterrupted (context cancelled, or
// Config.StopAfter fired) the journal holds every received trial and a
// Resume run completes the campaign without re-running them.
func (c *Coordinator) Run(ctx context.Context) (campaign.Result, error) {
	defer c.jn.close()

	c.replayPlane()

	c.mu.Lock()
	already := c.complete
	c.mu.Unlock()
	if already {
		c.logf("resume: all %d trials already journaled; merging", c.spec.Trials)
		return c.merge()
	}
	c.logf("campaign %s: %d trials over %d workers in %d shards (%d journaled)",
		c.key, c.spec.Trials, len(c.cfg.Workers), len(c.shards), len(c.done))

	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	c.mu.Lock()
	c.cancelRun = cancel
	c.mu.Unlock()

	// Wake cond waiters when the run context dies for any reason —
	// completion, a fatal error, or external cancellation. The watcher
	// exits with the context, which the deferred cancel guarantees.
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		<-rctx.Done()
		c.mu.Lock()
		c.stopped = true
		c.mu.Unlock()
		c.cond.Broadcast()
	}()

	var wg sync.WaitGroup
	for _, url := range c.cfg.Workers {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			c.workerLoop(rctx, url)
		}(url)
	}
	wg.Wait()
	cancel(nil)
	watch.Wait()

	c.mu.Lock()
	complete := c.complete
	fatal := c.fatalErr
	c.mu.Unlock()

	if complete {
		return c.merge()
	}
	if fatal != nil {
		return campaign.Result{}, fatal
	}
	cause := context.Cause(rctx)
	if errors.Is(cause, errStopAfter) {
		return campaign.Result{}, errors.Join(campaign.ErrInterrupted, errStopAfter)
	}
	return campaign.Result{}, errors.Join(campaign.ErrInterrupted, cause)
}

// workerLoop is one worker node's lease pump: pull a grant, execute the
// lease, absorb failures through the breaker and backoff, repeat until
// the campaign completes or the run context dies.
func (c *Coordinator) workerLoop(ctx context.Context, url string) {
	br := resilience.NewBreaker(c.cfg.Breaker)
	fails := 0
	for ctx.Err() == nil {
		done, err := br.Allow()
		if err != nil {
			// Circuit open: this node keeps failing. Sit out a backoff
			// slice without holding any lease; other workers own the
			// trial space meanwhile.
			if !sleepCtx(ctx, c.cfg.Retry.Sleep(fails)) {
				return
			}
			continue
		}
		g, ok := c.next(ctx, url)
		if !ok {
			done(nil)
			return
		}
		err = c.lease(ctx, url, g)
		switch {
		case err == nil:
			done(nil)
			fails = 0
			c.finishShard(g.s)
		case errors.Is(err, errCampaignComplete):
			// The straggler stream was cut because every trial is in:
			// not a worker failure.
			done(nil)
			c.finishShard(g.s)
			return
		case ctx.Err() != nil:
			done(nil) // the run died, not the worker
			c.repend(g, url, context.Cause(ctx))
			return
		case errors.Is(err, errFatal):
			done(err)
			c.fail(err)
			return
		default:
			done(err)
			c.repend(g, url, err)
			fails++
			if !sleepCtx(ctx, c.cfg.Retry.Sleep(fails-1)) {
				return
			}
		}
	}
}

// next blocks until a grant is available (leasing a pending shard, or
// stealing the tail of the largest running remainder) or the run ends.
func (c *Coordinator) next(ctx context.Context, url string) (grant, bool) {
	c.mu.Lock()
	for {
		if c.complete || c.stopped || ctx.Err() != nil {
			c.mu.Unlock()
			return grant{}, false
		}
		g, evs, ok, fatal := c.pickLocked(url)
		if fatal != nil {
			c.mu.Unlock()
			c.fail(fatal)
			return grant{}, false
		}
		if ok {
			c.mu.Unlock()
			// Journal outside the lock: lease events fsync.
			for _, ev := range evs {
				if err := c.jn.append(ev, true); err != nil {
					c.fail(errors.Join(errFatal, err))
					return grant{}, false
				}
			}
			return g, true
		}
		c.cond.Wait()
	}
}

// pickLocked chooses the next lease for url under c.mu: first pending
// shard in id order, else a steal-split of the running shard with the
// most remaining work. Returns the journal events to write after
// unlocking.
func (c *Coordinator) pickLocked(url string) (grant, []journalEvent, bool, error) {
	for _, s := range c.shards {
		if s.state != shardPending {
			continue
		}
		if len(c.remainingLocked(s)) == 0 {
			s.state = shardDone
			continue
		}
		if s.attempts >= c.cfg.ShardAttempts {
			return grant{}, nil, false, fmt.Errorf("%w: shard %d [%d,%d) failed %d lease attempts; giving up",
				errFatal, s.id, s.lo, s.hi, s.attempts)
		}
		g := c.leaseLocked(s, url)
		ev := journalEvent{Event: evLease, Shard: s.id, Lo: g.lo, Hi: g.hi, Worker: url, Attempt: s.attempts}
		return g, []journalEvent{ev}, true, nil
	}

	// Work stealing: split the straggler with the largest remainder.
	var best *shard
	bestRem := 0
	for _, s := range c.shards {
		if s.state != shardRunning {
			continue
		}
		if rem := len(c.remainingLocked(s)); rem > bestRem {
			best, bestRem = s, rem
		}
	}
	if best == nil || bestRem < 2*c.cfg.MinSteal {
		return grant{}, nil, false, nil
	}
	rem := c.remainingLocked(best)
	mid := rem[len(rem)/2]
	ns := &shard{id: c.nextID, lo: mid, hi: best.hi}
	c.nextID++
	best.hi = mid
	c.shards = append(c.shards, ns)
	c.splits++
	evs := []journalEvent{{Event: evSplit, Shard: best.id, Lo: best.lo, Hi: best.hi, At: mid, New: ns.id}}
	g := c.leaseLocked(ns, url)
	evs = append(evs, journalEvent{Event: evLease, Shard: ns.id, Lo: g.lo, Hi: g.hi, Worker: url, Attempt: ns.attempts})
	c.logf("steal: shard %d splits at %d -> shard %d [%d,%d) leased to %s", best.id, mid, ns.id, ns.lo, ns.hi, url)
	return g, evs, true, nil
}

// leaseLocked marks s running for url and snapshots its grant.
func (c *Coordinator) leaseLocked(s *shard, url string) grant {
	s.state = shardRunning
	s.worker = url
	s.attempts++
	c.leases++
	g := grant{s: s, lo: s.lo, hi: s.hi, attempt: s.attempts}
	for i := s.lo; i < s.hi; i++ {
		if _, ok := c.done[i]; ok {
			g.skip = append(g.skip, i)
		}
	}
	sort.Ints(g.skip)
	return g
}

// remainingLocked lists the not-yet-received indices of s's current
// range, ascending. Callers hold c.mu.
func (c *Coordinator) remainingLocked(s *shard) []int {
	var rem []int
	for i := s.lo; i < s.hi; i++ {
		if _, ok := c.done[i]; !ok {
			rem = append(rem, i)
		}
	}
	return rem
}

// replayPlane feeds the journal-resumed records through the streaming
// plane in trial-index order — the same order the merged journal uses —
// so a resumed coordinator's progress readout starts from the full
// campaign state rather than zero. No-op without a plane or resumed
// records.
func (c *Coordinator) replayPlane() {
	if c.cfg.Plane == nil {
		return
	}
	c.mu.Lock()
	recs := make([]*campaign.TrialRecord, 0, len(c.done))
	for i := 0; i < c.spec.Trials; i++ {
		if rec, ok := c.done[i]; ok {
			recs = append(recs, rec)
		}
	}
	c.mu.Unlock()
	for _, rec := range recs {
		c.cfg.Plane.Observe(*rec)
	}
}

// record folds one streamed trial record in. Duplicates (steal overlap,
// re-lease races) must be bit-identical to the stored record — anything
// else is a determinism violation and aborts the campaign.
func (c *Coordinator) record(rec *campaign.TrialRecord) error {
	c.mu.Lock()
	if prev, ok := c.done[rec.Index]; ok {
		c.duplicates++
		c.mu.Unlock()
		if !recordsEqual(prev, rec) {
			return fmt.Errorf("%w: trial %d arrived twice with different payloads — determinism violation (worker skew?)", errFatal, rec.Index)
		}
		// The plane counts the duplicate too (its dedupe re-verifies
		// bit-identity); observed outside c.mu so a Block-policy inlet
		// can never hold the coordinator lock.
		c.cfg.Plane.Observe(*rec)
		return nil
	}
	c.done[rec.Index] = rec
	c.received++
	stopNow := c.cfg.StopAfter > 0 && c.received == c.cfg.StopAfter
	completeNow := len(c.done) == c.spec.Trials
	cancel := c.cancelRun
	c.mu.Unlock()

	c.cfg.Plane.Observe(*rec)
	if err := c.jn.append(journalEvent{Event: evTrial, Rec: rec}, false); err != nil {
		return errors.Join(errFatal, err)
	}
	if completeNow {
		c.mu.Lock()
		c.complete = true
		c.mu.Unlock()
		c.cond.Broadcast()
		if cancel != nil {
			cancel(errCampaignComplete)
		}
	} else if stopNow && cancel != nil {
		cancel(errStopAfter)
	}
	return nil
}

// finishShard marks a shard's lease cleanly completed.
func (c *Coordinator) finishShard(s *shard) {
	c.mu.Lock()
	s.state = shardDone
	id := s.id
	c.mu.Unlock()
	_ = c.jn.append(journalEvent{Event: evDone, Shard: id}, true)
}

// repend returns a failed lease's shard to the pending pool and wakes
// waiting workers; the next lease carries the enlarged skip list.
func (c *Coordinator) repend(g grant, url string, cause error) {
	c.mu.Lock()
	g.s.state = shardPending
	c.failures++
	id, lo, hi, att := g.s.id, g.s.lo, g.s.hi, g.s.attempts
	c.mu.Unlock()
	msg := ""
	if cause != nil {
		msg = cause.Error()
	}
	_ = c.jn.append(journalEvent{Event: evFail, Shard: id, Lo: lo, Hi: hi, Worker: url, Attempt: att, Err: msg}, true)
	c.logf("lease failed: shard %d [%d,%d) on %s (attempt %d): %v", id, lo, hi, url, att, cause)
	c.cond.Broadcast()
}

// fail records the first fatal error and tears the run down.
func (c *Coordinator) fail(err error) {
	c.mu.Lock()
	if c.fatalErr == nil {
		c.fatalErr = err
	}
	cancel := c.cancelRun
	c.mu.Unlock()
	c.logf("fatal: %v", err)
	if cancel != nil {
		cancel(err)
	}
	c.cond.Broadcast()
}

// recordsEqual compares two trial records field-for-field via
// campaign.TrialRecord.Equal (the AttemptErrs slice rules out ==).
func recordsEqual(a, b *campaign.TrialRecord) bool { return a.Equal(*b) }

// sleepCtx sleeps d, returning false if ctx died first. Timer-based so
// the wait is interruptible (and the repo's sleep lint stays clean).
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log == nil {
		return
	}
	fmt.Fprintf(c.cfg.Log, "unsync-fleet: "+format+"\n", args...)
}

// fileSize returns a path's size, 0 for a missing file.
func fileSize(path string) (int64, error) {
	info, err := os.Stat(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("fabric: stat journal: %w", err)
	}
	return info.Size(), nil
}

// Snapshot is a point-in-time view of the coordinator for metrics.
type Snapshot struct {
	Trials        int
	Done          int
	Complete      bool
	Shards        int
	ShardsByState map[string]int
	Leases        uint64
	Failures      uint64
	Splits        uint64
	Duplicates    uint64
}

// Snapshot reports the coordinator's current progress. Safe to call
// concurrently with Run.
func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Trials:        c.spec.Trials,
		Done:          len(c.done),
		Complete:      c.complete,
		Shards:        len(c.shards),
		ShardsByState: map[string]int{},
		Leases:        c.leases,
		Failures:      c.failures,
		Splits:        c.splits,
		Duplicates:    c.duplicates,
	}
	for _, sh := range c.shards {
		switch sh.state {
		case shardPending:
			s.ShardsByState["pending"]++
		case shardRunning:
			s.ShardsByState["running"]++
		default:
			s.ShardsByState["done"]++
		}
	}
	return s
}

// Run is the package-level convenience: New + Run + Close.
func Run(ctx context.Context, cfg Config) (campaign.Result, error) {
	c, err := New(cfg)
	if err != nil {
		return campaign.Result{}, err
	}
	return c.Run(ctx)
}
