package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/stream"
)

// The fleet acceptance pin: a coordinator with a streaming plane
// attached merges the same journal bytes and Result as the single-node
// reference — the plane observes the shard streams, it never reorders
// or rewrites them.
func TestFleetPlaneBitIdentity(t *testing.T) {
	params := testParams(60)
	wantJournal, wantResult := singleNodeRun(t, params)

	prog, err := params.Program()
	if err != nil {
		t.Fatal(err)
	}
	key := params.Spec().Normalized().Key(campaign.ProgHash(prog))
	plane, err := stream.NewPlane(stream.PlaneConfig{
		DLQ: filepath.Join(t.TempDir(), "dlq.jsonl"),
		Key: key,
	})
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	merged, result, snap := runFleet(t, Config{
		Workers:  []string{w1.URL, w2.URL},
		Params:   params,
		Shards:   5,
		MinSteal: 2,
		Plane:    plane,
	})
	if err := plane.Close(); err != nil {
		t.Fatalf("plane close (shard streams must be bit-consistent): %v", err)
	}
	if !bytes.Equal(merged, wantJournal) {
		t.Fatal("merged journal differs from single-node checkpoint with the plane attached")
	}
	if !bytes.Equal(result, wantResult) {
		t.Fatalf("fleet result differs with the plane attached:\nfleet:  %s\nsingle: %s", result, wantResult)
	}
	if snap.Done != 60 {
		t.Fatalf("snapshot done=%d, want 60", snap.Done)
	}
	fr := plane.Snapshot()
	if fr.Done != 60 {
		t.Fatalf("plane admitted %d distinct trials, want 60", fr.Done)
	}
	if fr.DLQDepth != 0 {
		t.Fatalf("clean fleet dead-lettered %d trials", fr.DLQDepth)
	}
}

// A restarted coordinator re-opens its plane over the same DLQ
// sidecar: journal-resumed records replay through the plane in index
// order, live arrivals follow, and nothing is double-counted or
// re-dead-lettered. The merged output stays bit-identical to the
// single-node reference.
func TestFleetPlaneSurvivesCoordinatorRestart(t *testing.T) {
	params := testParams(60)
	wantJournal, wantResult := singleNodeRun(t, params)

	prog, err := params.Program()
	if err != nil {
		t.Fatal(err)
	}
	key := params.Spec().Normalized().Key(campaign.ProgHash(prog))
	dir := t.TempDir()
	dlqPath := filepath.Join(dir, "dlq.jsonl")
	journal := filepath.Join(dir, "fleet.jsonl")
	merged := filepath.Join(dir, "merged.jsonl")

	// Seed the sidecar with a prior dead-letter under this campaign's
	// key, standing in for a failure captured before the crash: the
	// restarted plane must replay it, not duplicate it.
	seeded := campaign.TrialRecord{Key: key, Seed: params.Seed, Index: 999, Err: "seeded failure",
		AttemptErrs: []string{"attempt 1 (space=int-reg reg=1 bit=1 addr=0x0 step=1): seeded failure"}}
	sb, err := json.Marshal(stream.Entry{Reason: stream.ReasonRetryExhausted, Rec: seeded})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dlqPath, append(sb, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	plane1, err := stream.NewPlane(stream.PlaneConfig{DLQ: dlqPath, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if plane1.DLQDepth() != 1 {
		t.Fatalf("first plane replayed depth=%d, want the seeded 1", plane1.DLQDepth())
	}
	cfg := Config{
		Workers:   []string{w1.URL, w2.URL},
		Params:    params,
		Journal:   journal,
		Merged:    merged,
		Shards:    5,
		MinSteal:  2,
		StopAfter: 20,
		Plane:     plane1,
	}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Run(context.Background()); !errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("interrupted run: %v, want ErrInterrupted", err)
	}
	if err := plane1.Close(); err != nil {
		t.Fatalf("first plane close: %v", err)
	}

	plane2, err := stream.NewPlane(stream.PlaneConfig{DLQ: dlqPath, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if plane2.DLQDepth() != 1 {
		t.Fatalf("restarted plane replayed depth=%d, want 1", plane2.DLQDepth())
	}
	cfg.StopAfter = 0
	cfg.Resume = true
	cfg.Plane = plane2
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c2.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := plane2.Close(); err != nil {
		t.Fatalf("restarted plane close (replay must be bit-identical): %v", err)
	}

	fr := plane2.Snapshot()
	if fr.Done != 60 {
		t.Fatalf("restarted plane admitted %d distinct trials, want 60", fr.Done)
	}
	if fr.DLQDepth != 1 {
		t.Fatalf("restarted plane depth=%d, want the seeded 1 (no re-capture)", fr.DLQDepth)
	}
	after, err := os.ReadFile(dlqPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, append(sb, '\n')) {
		t.Fatal("sidecar bytes changed across the restart: an entry was duplicated or rewritten")
	}

	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJournal) {
		t.Fatal("merged journal differs from single-node checkpoint after restart with plane")
	}
	rb, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb, wantResult) {
		t.Fatalf("fleet result differs after restart with plane:\nfleet:  %s\nsingle: %s", rb, wantResult)
	}
}
