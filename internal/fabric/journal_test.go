package fabric

import (
	"encoding/json"
	"testing"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/journaltest"
)

// TestReplayJournalCorruptionCorpus runs the shared tail-corruption
// corpus against the coordinator-journal replay. Like the serve jobs
// journal this is a STRICT loader: corruption is tolerated only on the
// file's final line, where a killed coordinator leaves it.
func TestReplayJournalCorruptionCorpus(t *testing.T) {
	const key = "deadbeef"
	marshal := func(ev journalEvent) []byte {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	lines := [][]byte{marshal(journalEvent{Event: evCampaign, Key: key, Trials: 6, Prog: "checksum"})}
	for i := 0; i < 6; i++ {
		lines = append(lines, marshal(journalEvent{Event: evTrial, Rec: &campaign.TrialRecord{
			Key: key, Index: i, Space: "int-reg", Step: uint64(i + 1), Attempts: 1, Outcome: "benign",
		}}))
	}
	journaltest.Check(t, lines, true, func(path string) (int, error) {
		st, err := replayJournal(path, key)
		if err != nil {
			return 0, err
		}
		n := len(st.done)
		if st.header != nil {
			n++ // the header line is a recovered record too
		}
		return n, nil
	})
}
