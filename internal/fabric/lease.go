package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/cmlasu/unsync/internal/serve"
)

// lease executes one granted shard range on a worker: POST the range,
// then consume the per-record-flushed JSONL stream under a heartbeat
// deadline. Every received line resets the deadline; a stream that goes
// silent past Config.LeaseTimeout, tears (SIGKILLed worker), or ends
// without a terminal line fails the lease — the coordinator's done map
// already holds everything that arrived, so only the remainder is ever
// re-leased.
func (c *Coordinator) lease(ctx context.Context, url string, g grant) error {
	body, err := json.Marshal(serve.ShardRequest{
		Campaign: c.cfg.Params,
		Lo:       g.lo,
		Hi:       g.hi,
		Skip:     g.skip,
		Key:      c.key,
	})
	if err != nil {
		return errors.Join(errFatal, fmt.Errorf("marshal shard request: %w", err))
	}

	// The request context outlives every return path below only until
	// the deferred cancel: cancelling it tears the response body, which
	// in turn unblocks and retires the reader goroutine.
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url+"/api/v1/shards", bytes.NewReader(body))
	if err != nil {
		return errors.Join(errFatal, fmt.Errorf("build shard request: %w", err))
	}
	req.Header.Set("Content-Type", "application/json")

	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("shard %d [%d,%d) on %s: %w", g.s.id, g.lo, g.hi, url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("shard %d on %s: HTTP %d: %s", g.s.id, url, resp.StatusCode, bytes.TrimSpace(msg))
		if resp.StatusCode == http.StatusConflict {
			// The worker derived a different params key from identical
			// params: version skew. No re-lease can fix that, and letting
			// it run would poison the merged journal.
			return errors.Join(errFatal, err)
		}
		return err
	}

	type lineMsg struct {
		line serve.ShardLine
		err  error // io.EOF: stream ended (possibly torn)
	}
	lines := make(chan lineMsg)
	go func() {
		// Exits when the body ends — including the teardown read error
		// forced by cancel(rctx) — or when rctx dies mid-send.
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() {
			raw := sc.Bytes()
			if len(raw) == 0 {
				continue
			}
			var l serve.ShardLine
			if uerr := json.Unmarshal(raw, &l); uerr != nil {
				// A torn final line from a killed worker: the stream is
				// over as far as protocol goes.
				break
			}
			select {
			case lines <- lineMsg{line: l}:
			case <-rctx.Done():
				return
			}
		}
		end := sc.Err()
		if end == nil {
			end = io.EOF
		}
		select {
		case lines <- lineMsg{err: end}:
		case <-rctx.Done():
		}
	}()

	timer := time.NewTimer(c.cfg.LeaseTimeout)
	defer timer.Stop()
	for {
		select {
		case m := <-lines:
			if m.err != nil {
				if errors.Is(m.err, io.EOF) {
					return fmt.Errorf("shard %d on %s: stream torn before a terminal line (worker killed?)", g.s.id, url)
				}
				return fmt.Errorf("shard %d on %s: read stream: %w", g.s.id, url, m.err)
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(c.cfg.LeaseTimeout)
			switch l := m.line; {
			case l.Err != "":
				return fmt.Errorf("shard %d on %s: worker-side failure: %s", g.s.id, url, l.Err)
			case l.EOF:
				return c.verifyEOF(g, url, l.Sent)
			case l.Rec != nil:
				if l.Rec.Key != c.key {
					return errors.Join(errFatal, fmt.Errorf("shard %d on %s: record for trial %d carries key %s, want %s (worker skew)",
						g.s.id, url, l.Rec.Index, l.Rec.Key, c.key))
				}
				if rerr := c.record(l.Rec); rerr != nil {
					return rerr
				}
			default:
				return fmt.Errorf("shard %d on %s: empty stream line", g.s.id, url)
			}
		case <-timer.C:
			cancel(fmt.Errorf("lease heartbeat expired after %s", c.cfg.LeaseTimeout))
			return fmt.Errorf("shard %d on %s: no record for %s; lease heartbeat expired", g.s.id, url, c.cfg.LeaseTimeout)
		case <-rctx.Done():
			return context.Cause(rctx)
		}
	}
}

// verifyEOF checks a clean worker EOF against the coordinator's books:
// every index of the shard's *current* range (a steal may have shrunk
// it since the grant) must have been received. A worker claiming EOF
// with indices missing mis-executed the lease.
func (c *Coordinator) verifyEOF(g grant, url string, sent int) error {
	c.mu.Lock()
	missing := c.remainingLocked(g.s)
	c.mu.Unlock()
	if len(missing) > 0 {
		return fmt.Errorf("shard %d on %s: worker sent EOF (%d records) with %d trials still missing (first: %d)",
			g.s.id, url, sent, len(missing), missing[0])
	}
	return nil
}
