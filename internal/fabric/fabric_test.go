package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cmlasu/unsync/internal/campaign"
	"github.com/cmlasu/unsync/internal/resilience"
	"github.com/cmlasu/unsync/internal/serve"
)

// testParams is the standard small campaign shared by the fabric
// tests; it matches the serve test campaign so golden-run cost stays
// low.
func testParams(trials int) serve.CampaignParams {
	return serve.CampaignParams{
		Prog:     "checksum",
		Scheme:   campaign.SchemeUnSync,
		Trials:   trials,
		Seed:     7,
		MaxSteps: 20_000,
		Workers:  2,
	}
}

// newWorker starts a worker-mode serve node, optionally wrapped by a
// failure-injecting middleware.
func newWorker(t *testing.T, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{
		StateDir:      t.TempDir(),
		MaxConcurrent: 4,
		EnableShards:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := http.Handler(s.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// singleNodeRun executes the same campaign on one node with one worker
// (so its checkpoint journal is written in trial-index order) and
// returns the journal bytes and marshalled Result — the bit-identity
// reference for every fleet run.
func singleNodeRun(t *testing.T, params serve.CampaignParams) ([]byte, []byte) {
	t.Helper()
	prog, err := params.Program()
	if err != nil {
		t.Fatal(err)
	}
	spec := params.Spec()
	spec.Workers = 1
	spec.Checkpoint = filepath.Join(t.TempDir(), "ref.jsonl")
	res, err := campaign.RunContext(context.Background(), prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	journal, err := os.ReadFile(spec.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return journal, rb
}

// runFleet runs a coordinator over the given workers and returns the
// merged journal bytes, the marshalled Result and the final snapshot.
func runFleet(t *testing.T, cfg Config) ([]byte, []byte, Snapshot) {
	t.Helper()
	dir := t.TempDir()
	if cfg.Journal == "" {
		cfg.Journal = filepath.Join(dir, "fleet.jsonl")
	}
	if cfg.Merged == "" {
		cfg.Merged = filepath.Join(dir, "merged.jsonl")
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	merged, err := os.ReadFile(cfg.Merged)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return merged, rb, c.Snapshot()
}

func TestFleetMatchesSingleNode(t *testing.T) {
	params := testParams(60)
	wantJournal, wantResult := singleNodeRun(t, params)

	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	merged, result, snap := runFleet(t, Config{
		Workers:  []string{w1.URL, w2.URL},
		Params:   params,
		Shards:   5,
		MinSteal: 2,
	})
	if !bytes.Equal(merged, wantJournal) {
		t.Fatalf("merged journal differs from single-node checkpoint\nfleet:\n%s\nsingle:\n%s", merged, wantJournal)
	}
	if !bytes.Equal(result, wantResult) {
		t.Fatalf("fleet result differs from single-node result\nfleet:  %s\nsingle: %s", result, wantResult)
	}
	if snap.Done != 60 || !snap.Complete {
		t.Fatalf("snapshot: got %+v, want 60 done and complete", snap)
	}
}

// killAfter aborts a worker's connection mid-stream after n writes on
// the first shard request — the in-process stand-in for SIGKILLing the
// worker: the coordinator sees a torn stream with no terminal line.
func killAfter(n int64) func(http.Handler) http.Handler {
	var used atomic.Bool
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/shards") && used.CompareAndSwap(false, true) {
				kw := &killWriter{ResponseWriter: w}
				kw.remaining.Store(n)
				next.ServeHTTP(kw, r)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

type killWriter struct {
	http.ResponseWriter
	remaining atomic.Int64
}

func (k *killWriter) Write(b []byte) (int, error) {
	if k.remaining.Add(-1) < 0 {
		// net/http tears the TCP connection without a terminal chunk —
		// exactly what a SIGKILL of the worker process produces.
		panic(http.ErrAbortHandler)
	}
	return k.ResponseWriter.Write(b)
}

func (k *killWriter) Flush() {
	if f, ok := k.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func TestFleetWorkerKilledMidShard(t *testing.T) {
	params := testParams(60)
	wantJournal, wantResult := singleNodeRun(t, params)

	// Worker 1 dies 8 records into its first shard; worker 2 is healthy.
	w1 := newWorker(t, killAfter(8))
	w2 := newWorker(t, nil)
	merged, result, snap := runFleet(t, Config{
		Workers:  []string{w1.URL, w2.URL},
		Params:   params,
		Shards:   4,
		MinSteal: 2,
		Retry:    resilience.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
	})
	if snap.Failures == 0 {
		t.Fatal("expected at least one failed lease from the killed worker")
	}
	if !bytes.Equal(merged, wantJournal) {
		t.Fatalf("merged journal differs from single-node checkpoint after mid-shard kill\nfleet:\n%s\nsingle:\n%s", merged, wantJournal)
	}
	if !bytes.Equal(result, wantResult) {
		t.Fatalf("fleet result differs from single-node result after mid-shard kill\nfleet:  %s\nsingle: %s", result, wantResult)
	}
}

func TestFleetCoordinatorRestartResume(t *testing.T) {
	params := testParams(60)
	wantJournal, wantResult := singleNodeRun(t, params)

	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	dir := t.TempDir()
	journal := filepath.Join(dir, "fleet.jsonl")
	merged := filepath.Join(dir, "merged.jsonl")

	// First coordinator dies (deterministically) after 20 received
	// records.
	cfg := Config{
		Workers:   []string{w1.URL, w2.URL},
		Params:    params,
		Journal:   journal,
		Merged:    merged,
		Shards:    5,
		MinSteal:  2,
		StopAfter: 20,
	}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Run(context.Background()); !errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("interrupted run: got %v, want campaign.ErrInterrupted", err)
	}

	// A restarted coordinator replays the journal and completes the
	// campaign without re-running the received trials.
	cfg.StopAfter = 0
	cfg.Resume = true
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2.mu.Lock()
	resumed := len(c2.done)
	c2.mu.Unlock()
	if resumed < 20 {
		t.Fatalf("resume loaded %d records, want >= 20", resumed)
	}
	res, err := c2.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if c2.received >= 60 {
		t.Fatalf("resumed run received %d new records; journaled trials were re-run", c2.received)
	}

	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJournal) {
		t.Fatalf("merged journal differs from single-node checkpoint after restart\nfleet:\n%s\nsingle:\n%s", got, wantJournal)
	}
	rb, _ := json.Marshal(res)
	if !bytes.Equal(rb, wantResult) {
		t.Fatalf("fleet result differs after restart\nfleet:  %s\nsingle: %s", rb, wantResult)
	}
}

func TestFleetResumeFullyJournaledNeedsNoWorkers(t *testing.T) {
	params := testParams(30)
	wantJournal, wantResult := singleNodeRun(t, params)

	w1 := newWorker(t, nil)
	dir := t.TempDir()
	cfg := Config{
		Workers: []string{w1.URL},
		Params:  params,
		Journal: filepath.Join(dir, "fleet.jsonl"),
		Merged:  filepath.Join(dir, "merged.jsonl"),
	}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Every trial is journaled: a resume must merge without leasing —
	// the worker URL is unreachable on purpose.
	cfg.Workers = []string{"http://127.0.0.1:1"}
	cfg.Resume = true
	cfg.Merged = filepath.Join(dir, "merged2.jsonl")
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(cfg.Merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJournal) {
		t.Fatal("merged journal from a fully-journaled resume differs from single-node checkpoint")
	}
	rb, _ := json.Marshal(res)
	if !bytes.Equal(rb, wantResult) {
		t.Fatal("result from a fully-journaled resume differs from single-node result")
	}
}

func TestFleetDeadWorkerHeartbeat(t *testing.T) {
	params := testParams(40)
	wantJournal, wantResult := singleNodeRun(t, params)

	// The dead worker accepts the lease, writes headers, then streams
	// nothing: only the heartbeat deadline can unstick it.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done()
	}))
	t.Cleanup(dead.Close)
	healthy := newWorker(t, nil)

	merged, result, snap := runFleet(t, Config{
		Workers:      []string{dead.URL, healthy.URL},
		Params:       params,
		Shards:       4,
		MinSteal:     2,
		LeaseTimeout: 100 * time.Millisecond,
		Retry:        resilience.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		Breaker:      resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute},
	})
	if snap.Failures == 0 {
		t.Fatal("expected heartbeat-expired leases from the dead worker")
	}
	if !bytes.Equal(merged, wantJournal) {
		t.Fatal("merged journal differs from single-node checkpoint with a silent worker in the fleet")
	}
	if !bytes.Equal(result, wantResult) {
		t.Fatal("fleet result differs from single-node result with a silent worker in the fleet")
	}
}

func TestFleetKeyMismatchIsFatal(t *testing.T) {
	// A worker that answers 409 models params-key skew: no re-lease can
	// fix it, so the campaign must abort instead of retrying forever.
	skewed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"params key mismatch"}`, http.StatusConflict)
	}))
	t.Cleanup(skewed.Close)

	c, err := New(Config{
		Workers: []string{skewed.URL},
		Params:  testParams(20),
		Journal: filepath.Join(t.TempDir(), "fleet.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background())
	if err == nil || errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("got %v, want a fatal (non-interrupted) error", err)
	}
	if !strings.Contains(err.Error(), "409") {
		t.Fatalf("error %q does not surface the 409 conflict", err)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	params := testParams(10)
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no workers", Config{Params: params, Journal: journal}, "no workers"},
		{"no journal", Config{Workers: []string{"http://x"}, Params: params}, "no journal"},
		{"ci-width", Config{Workers: []string{"http://x"}, Journal: journal,
			Params: func() serve.CampaignParams { p := params; p.CIWidth = 0.05; return p }()}, "sequential"},
		{"bad params", Config{Workers: []string{"http://x"}, Journal: journal,
			Params: serve.CampaignParams{Prog: "no-such-program"}}, "unknown library program"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestNewRefusesExistingJournalWithoutResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(journal, []byte(`{"event":"campaign"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{Workers: []string{"http://x"}, Params: testParams(10), Journal: journal})
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("got %v, want refusal pointing at -resume", err)
	}
}

func TestResumeKeyMismatchFails(t *testing.T) {
	params := testParams(10)
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	// A journal written under a different params key (different seed).
	other := params
	other.Seed = 999
	prog, err := other.Program()
	if err != nil {
		t.Fatal(err)
	}
	otherKey := other.Spec().Key(campaign.ProgHash(prog))
	header, _ := json.Marshal(journalEvent{Event: evCampaign, Key: otherKey, Trials: 10})
	if err := os.WriteFile(journal, append(header, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{Workers: []string{"http://x"}, Params: params, Journal: journal, Resume: true})
	if !errors.Is(err, campaign.ErrKeyMismatch) {
		t.Fatalf("got %v, want campaign.ErrKeyMismatch", err)
	}
}

func TestSplitRange(t *testing.T) {
	cases := []struct {
		trials, n int
		want      int // shard count
	}{
		{100, 4, 4},
		{10, 100, 10}, // clamped to trial count
		{7, 3, 3},
		{1, 1, 1},
	}
	for _, tc := range cases {
		shards := splitRange(tc.trials, tc.n)
		if len(shards) != tc.want {
			t.Fatalf("splitRange(%d, %d): %d shards, want %d", tc.trials, tc.n, len(shards), tc.want)
		}
		next := 0
		for _, s := range shards {
			if s.lo != next || s.hi <= s.lo {
				t.Fatalf("splitRange(%d, %d): shard %d is [%d,%d), want contiguous from %d",
					tc.trials, tc.n, s.id, s.lo, s.hi, next)
			}
			next = s.hi
		}
		if next != tc.trials {
			t.Fatalf("splitRange(%d, %d): covers [0,%d), want [0,%d)", tc.trials, tc.n, next, tc.trials)
		}
	}
}

func TestJournalReplayToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	rec := campaign.TrialRecord{Key: "k", Index: 3, Space: "int-reg", Outcome: "benign", Attempts: 1}
	var buf bytes.Buffer
	for _, ev := range []journalEvent{
		{Event: evCampaign, Key: "k", Trials: 10},
		{Event: evLease, Shard: 1, Lo: 0, Hi: 10, Worker: "http://w", Attempt: 1},
		{Event: evTrial, Rec: &rec},
	} {
		b, _ := json.Marshal(ev)
		buf.Write(append(b, '\n'))
	}
	buf.WriteString(`{"event":"trial","rec":{"key":"k","i":4`) // torn tail, no newline
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := replayJournal(path, "k")
	if err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	if st.header == nil || len(st.done) != 1 || st.done[3] == nil {
		t.Fatalf("replay: header=%v done=%v, want header plus trial 3", st.header, st.done)
	}

	// The same corruption mid-file (followed by a valid line) is loud.
	buf.WriteString("\n")
	b, _ := json.Marshal(journalEvent{Event: evDone, Shard: 1})
	buf.Write(append(b, '\n'))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayJournal(path, "k"); err == nil {
		t.Fatal("replay accepted corruption in the middle of the journal")
	}
}
