package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOpen reports that the circuit breaker is open and the call was
// rejected without running.
var ErrOpen = errors.New("resilience: circuit open")

// State is the circuit breaker's position.
type State int

const (
	// Closed passes every call through, counting failures.
	Closed State = iota
	// Open rejects every call until the cooldown elapses.
	Open
	// HalfOpen admits a limited number of probe calls; one success
	// closes the circuit, one failure reopens it.
	HalfOpen
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// BreakerConfig tunes a Breaker. The zero value selects the defaults
// noted per field.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// circuit Closed→Open. Zero selects 5.
	FailureThreshold int
	// Cooldown is how long the circuit stays Open before admitting
	// probes. Zero selects 30 s.
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probe calls HalfOpen
	// admits. Zero selects 1.
	HalfOpenProbes int

	// now overrides the clock in tests; nil uses the wall clock.
	now func() time.Time
}

// Breaker is a three-state circuit breaker guarding a downstream
// dependency: repeated failures trip it open, rejecting calls
// instantly (failing fast instead of queueing doomed work); after a
// cooldown it admits a few probes, and a probe success closes it
// again. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int       // consecutive failures while Closed
	openedAt time.Time // when the circuit tripped
	probes   int       // in-flight HalfOpen probes
}

// NewBreaker builds a breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	if cfg.now == nil {
		cfg.now = time.Now //unsync:allow-wallclock breaker cooldown is real time, never simulated time
	}
	return &Breaker{cfg: cfg}
}

// State reports the breaker's current position (after applying any due
// Open→HalfOpen transition).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	return b.state
}

// tick applies the time-based Open→HalfOpen transition. Callers hold
// b.mu.
func (b *Breaker) tick() {
	if b.state == Open && b.cfg.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = HalfOpen
		b.probes = 0
	}
}

// Allow asks to start one call. It returns a non-nil done func when
// the call is admitted — the caller MUST invoke done(err) with the
// call's outcome — and ErrOpen when the circuit rejects the call.
func (b *Breaker) Allow() (done func(error), err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	switch b.state {
	case Open:
		return nil, ErrOpen
	case HalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return nil, ErrOpen
		}
		b.probes++
	}
	return b.done, nil
}

// done records a call outcome and drives the state machine.
func (b *Breaker) done(callErr error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if callErr == nil {
			b.failures = 0
			return
		}
		if b.failures++; b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		b.probes--
		if callErr == nil {
			b.state = Closed
			b.failures = 0
			return
		}
		b.trip()
	case Open:
		// A HalfOpen probe that finished after another probe already
		// reopened the circuit: nothing further to record.
	}
}

// trip opens the circuit now. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.now()
	b.failures = 0
	b.probes = 0
}

// Do runs f under the breaker: rejected with ErrOpen when open,
// otherwise f's error is recorded as the call outcome.
func (b *Breaker) Do(f func() error) error {
	done, err := b.Allow()
	if err != nil {
		return err
	}
	err = f()
	done(err)
	return err
}
