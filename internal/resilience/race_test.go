package resilience

// Race-focused tests for the primitives the distributed fabric leans
// on hardest: the breaker's half-open probe accounting under a stampede
// of concurrent Allow calls, and reservation release idempotence under
// the serve handler's defer-Release pattern. CI runs this package under
// -race; these tests exist to give the detector real interleavings to
// chew on, not just to assert the final counts.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerHalfOpenConcurrentProbeStampede trips the breaker, lets
// the cooldown elapse, then fires many concurrent Allow calls at the
// half-open circuit: exactly HalfOpenProbes may be admitted, no matter
// how the goroutines interleave.
func TestBreakerHalfOpenConcurrentProbeStampede(t *testing.T) {
	const probes = 3
	const threshold = probes + 2 // stragglers' failures must not re-trip a closed circuit
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		Cooldown:         time.Minute,
		HalfOpenProbes:   probes,
		now:              clk.now,
	})
	for i := 0; i < threshold; i++ {
		if err := b.Do(func() error { return errors.New("boom") }); err == nil {
			t.Fatal("failing call reported success")
		}
	}
	if st := b.State(); st != Open {
		t.Fatalf("state after trip = %s, want open", st)
	}
	clk.advance(time.Minute)

	const callers = 64
	var (
		admitted atomic.Int32
		rejected atomic.Int32
		dones    = make(chan func(error), callers)
		start    = make(chan struct{})
		wg       sync.WaitGroup
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			done, err := b.Allow()
			if err != nil {
				if !errors.Is(err, ErrOpen) {
					t.Errorf("rejected with %v, want ErrOpen", err)
				}
				rejected.Add(1)
				return
			}
			admitted.Add(1)
			dones <- done
		}()
	}
	close(start)
	wg.Wait()
	close(dones)

	if got := admitted.Load(); got != probes {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly %d", got, probes)
	}
	if got := rejected.Load(); got != callers-probes {
		t.Fatalf("rejected %d calls, want %d", got, callers-probes)
	}

	// One probe success closes the circuit; the stragglers' failures
	// then land on a Closed breaker and count as ordinary consecutive
	// failures — below the threshold, the circuit stays closed.
	first := true
	for done := range dones {
		if first {
			done(nil)
			first = false
			continue
		}
		done(errors.New("late straggler"))
	}
	if st := b.State(); st != Closed {
		t.Fatalf("state after probe success = %s, want closed", st)
	}
}

// TestGateReserveDoubleRelease pins the defer-Release idiom the serve
// handlers rely on: Release after Wait already failed (which frees the
// ticket itself), and a plain second Release, must both be no-ops —
// neither panicking nor inflating the gate's capacity.
func TestGateReserveDoubleRelease(t *testing.T) {
	g := NewGate(1, 1)

	holder, err := g.Reserve()
	if err != nil || !holder.slot {
		t.Fatalf("first Reserve = (%+v, %v), want a slot", holder, err)
	}

	queued, err := g.Reserve()
	if err != nil || queued.slot {
		t.Fatalf("second Reserve = (%+v, %v), want a queue ticket", queued, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if werr := queued.Wait(ctx); werr == nil {
		t.Fatal("Wait on a cancelled context succeeded")
	}
	queued.Release() // the handler's deferred Release after a Wait failure
	if n := g.Queued(); n != 0 {
		t.Fatalf("queue depth after Wait-fail + Release = %d, want 0", n)
	}

	holder.Release()
	holder.Release() // double release must not free a second slot
	if n := g.InFlight(); n != 0 {
		t.Fatalf("in-flight after double release = %d, want 0", n)
	}

	// Capacity must be exactly what we started with: one slot, one
	// ticket, then saturation.
	a, err := g.Reserve()
	if err != nil || !a.slot {
		t.Fatalf("Reserve after releases = (%+v, %v), want a slot", a, err)
	}
	bTicket, err := g.Reserve()
	if err != nil || bTicket.slot {
		t.Fatalf("Reserve #2 after releases = (%+v, %v), want a ticket", bTicket, err)
	}
	if _, err := g.Reserve(); !errors.Is(err, ErrSaturated) {
		t.Fatalf("Reserve #3 = %v, want ErrSaturated (double release inflated capacity)", err)
	}
	bTicket.Release()
	a.Release()
}

// TestGateConcurrentReserveReleaseChurn churns reservations across
// goroutines — some run, some abandon, some double-release — and
// asserts the running bound holds throughout. Meant for -race.
func TestGateConcurrentReserveReleaseChurn(t *testing.T) {
	const (
		slots   = 4
		workers = 32
		rounds  = 50
	)
	g := NewGate(slots, workers)
	var (
		inFlight atomic.Int32
		peak     atomic.Int32
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r, err := g.Reserve()
				if err != nil {
					continue // saturated: shed, like the HTTP layer
				}
				if (w+i)%5 == 0 {
					r.Release() // abandon without running
					continue
				}
				if err := r.Wait(context.Background()); err != nil {
					t.Errorf("Wait: %v", err)
					r.Release()
					continue
				}
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				inFlight.Add(-1)
				r.Release()
				if (w+i)%7 == 0 {
					r.Release() // stray double release from a confused caller
				}
			}
		}(w)
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Fatalf("observed %d concurrent slot holders, bound is %d", p, slots)
	}
	if n := g.InFlight(); n != 0 {
		t.Fatalf("in-flight after churn = %d, want 0", n)
	}
	if n := g.Queued(); n != 0 {
		t.Fatalf("queued after churn = %d, want 0", n)
	}
}
