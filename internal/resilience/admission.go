package resilience

import (
	"context"
	"errors"
)

// ErrSaturated reports that the admission gate's bounded queue is full
// and the request was shed rather than enqueued. Servers map it to
// 429 Retry-After.
var ErrSaturated = errors.New("resilience: admission queue saturated")

// Gate is a bounded-queue admission controller: up to Running calls
// execute concurrently, up to Waiting more may queue for a slot, and
// everything beyond that is rejected instantly with ErrSaturated.
// Rejecting at admission keeps memory bounded under overload — the
// alternative, an unbounded queue, converts overload into OOM.
type Gate struct {
	running chan struct{} // slot tokens: buffered to the concurrency limit
	waiting chan struct{} // queue tickets: buffered to the queue depth
}

// NewGate builds a gate admitting running concurrent calls with a
// bounded queue of waiting further calls. Both bounds must be >= 1
// for running and >= 0 for waiting; out-of-range values are clamped.
func NewGate(running, waiting int) *Gate {
	if running < 1 {
		running = 1
	}
	if waiting < 0 {
		waiting = 0
	}
	return &Gate{
		running: make(chan struct{}, running),
		waiting: make(chan struct{}, waiting),
	}
}

// Acquire claims an execution slot, queueing (bounded) when all slots
// are busy. It returns nil once the slot is held, ErrSaturated when
// the queue is full, or the context's cause if ctx is cancelled while
// queued. Every nil return must be paired with one Release.
func (g *Gate) Acquire(ctx context.Context) error {
	// Fast path: a free slot, no queueing.
	select {
	case g.running <- struct{}{}:
		return nil
	default:
	}
	// Claim a queue ticket — or shed the request.
	select {
	case g.waiting <- struct{}{}:
	default:
		return ErrSaturated
	}
	defer func() { <-g.waiting }()
	select {
	case g.running <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// Reservation is a claimed place in the gate: either an execution
// slot (ready to run) or a queue ticket (must Wait for a slot). It is
// the split-phase form of Acquire that servers need — admission is
// decided synchronously at submit time, the wait happens later on the
// job's own goroutine.
type Reservation struct {
	g    *Gate
	slot bool // holds a running slot (vs a waiting ticket)
	done bool // released, or converted and then released
}

// Reserve claims a place without blocking: an execution slot when one
// is free, else a queue ticket, else ErrSaturated. A successful
// reservation must be finished with Wait+Release (run the work) or
// Release alone (abandon it).
func (g *Gate) Reserve() (*Reservation, error) {
	select {
	case g.running <- struct{}{}:
		return &Reservation{g: g, slot: true}, nil
	default:
	}
	select {
	case g.waiting <- struct{}{}:
		return &Reservation{g: g}, nil
	default:
		return nil, ErrSaturated
	}
}

// Wait converts a queue ticket into an execution slot, blocking until
// one frees or ctx is cancelled (returning the cancellation cause and
// releasing the ticket). It returns immediately when the reservation
// already holds a slot.
func (r *Reservation) Wait(ctx context.Context) error {
	if r.slot {
		return nil
	}
	select {
	case r.g.running <- struct{}{}:
		<-r.g.waiting
		r.slot = true
		return nil
	case <-ctx.Done():
		<-r.g.waiting
		r.done = true
		return context.Cause(ctx)
	}
}

// Release returns whatever the reservation holds. Safe to call exactly
// once per reservation (Wait failure releases the ticket itself).
func (r *Reservation) Release() {
	if r.done {
		return
	}
	r.done = true
	if r.slot {
		r.g.Release()
		return
	}
	<-r.g.waiting
}

// Release returns an execution slot claimed by a successful Acquire.
func (g *Gate) Release() {
	select {
	case <-g.running:
	default:
		panic("resilience: Gate.Release without Acquire")
	}
}

// InFlight reports how many execution slots are currently held.
func (g *Gate) InFlight() int { return len(g.running) }

// Queued reports how many calls are waiting for a slot.
func (g *Gate) Queued() int { return len(g.waiting) }
