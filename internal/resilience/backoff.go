// Package resilience provides the failure-handling primitives of the
// campaign job service: retry with exponentially growing, fully
// jittered backoff; a three-state circuit breaker; and a bounded-queue
// admission semaphore for load shedding.
//
// Unlike the simulation packages, resilience is deliberately
// non-deterministic: jitter draws from math/rand/v2 and the breaker
// reads a wall clock. Neither ever feeds a measurement — the
// determinism contract of the engines (and the campaign journal) is
// untouched.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Backoff describes an exponential backoff schedule with full jitter:
// attempt n (0-based) sleeps a uniformly random duration in
// [0, min(Base*Mult^n, Max)]. Full jitter — rather than equal or
// decorrelated jitter — minimizes synchronized retry bursts from many
// clients while keeping the expected total wait close to plain
// exponential backoff.
type Backoff struct {
	// Base is the cap of the first attempt's sleep. Zero selects
	// 100 ms.
	Base time.Duration
	// Max bounds every attempt's sleep cap. Zero selects 10 s.
	Max time.Duration
	// Mult is the per-attempt growth factor. Values <= 1 select 2.
	Mult float64
	// Attempts is the total number of tries (the first call plus
	// retries). Zero selects 4.
	Attempts int

	// rng overrides the jitter source in tests; nil uses the package
	// default (math/rand/v2 top-level, which is safe for concurrent
	// use).
	rng func() float64
}

// withDefaults fills zero fields with the package defaults.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 10 * time.Second
	}
	if b.Mult <= 1 {
		b.Mult = 2
	}
	if b.Attempts <= 0 {
		b.Attempts = 4
	}
	return b
}

// Sleep returns the jittered sleep before retry attempt n (0-based):
// uniform in [0, cap_n] where cap_n = min(Base*Mult^n, Max).
func (b Backoff) Sleep(attempt int) time.Duration {
	b = b.withDefaults()
	limit := float64(b.Base)
	for i := 0; i < attempt; i++ {
		limit *= b.Mult
		if limit >= float64(b.Max) {
			limit = float64(b.Max)
			break
		}
	}
	f := b.rng
	if f == nil {
		f = rand.Float64
	}
	return time.Duration(f() * limit)
}

// Permanent marks an error as not retryable: Retry stops immediately
// and returns it unwrapped to one level (errors.Is/As see through).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err}
}

type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

// Retry runs f up to b.Attempts times, sleeping the jittered backoff
// between failures. It stops early when f succeeds, when f returns an
// error wrapped by Permanent, or when ctx is cancelled (the
// cancellation cause is joined with the last failure). The sleep
// itself is interruptible by ctx.
func Retry(ctx context.Context, b Backoff, f func(ctx context.Context) error) error {
	b = b.withDefaults()
	var last error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return errors.Join(context.Cause(ctx), last)
		}
		err := f(ctx)
		if err == nil {
			return nil
		}
		var perm permanentError
		if errors.As(err, &perm) {
			return err
		}
		last = err
		if attempt == b.Attempts-1 {
			break
		}
		t := time.NewTimer(b.Sleep(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return errors.Join(context.Cause(ctx), last)
		}
	}
	return fmt.Errorf("resilience: %d attempts failed: %w", b.Attempts, last)
}
