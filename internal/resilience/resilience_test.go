package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ---- Backoff ----

func TestBackoffSleepCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Mult: 2, rng: func() float64 { return 1 }}
	want := []time.Duration{
		100 * time.Millisecond, // attempt 0: base
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second, // stays capped
	}
	for n, w := range want {
		if got := b.Sleep(n); got != w {
			t.Errorf("Sleep(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestBackoffFullJitter(t *testing.T) {
	// rng=0 must yield a zero sleep: the jitter range starts at zero
	// (full jitter), not at some floor.
	b := Backoff{Base: time.Second, rng: func() float64 { return 0 }}
	if got := b.Sleep(3); got != 0 {
		t.Errorf("Sleep with rng=0 = %v, want 0", got)
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{Base: time.Microsecond, Attempts: 5}, func(context.Context) error {
		if calls++; calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry(context.Background(), Backoff{Base: time.Microsecond, Attempts: 3}, func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := Retry(context.Background(), Backoff{Base: time.Microsecond, Attempts: 5}, func(context.Context) error {
		calls++
		return Permanent(fatal)
	})
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestRetryCancelledDuringSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	calls := 0
	err := Retry(ctx, Backoff{Base: time.Hour, Mult: 2, Attempts: 5, rng: func() float64 { return 1 }},
		func(context.Context) error {
			calls++
			cancel()
			return boom
		})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancel must interrupt the hour-long sleep)", calls)
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want Canceled and the last failure joined", err)
	}
}

func TestRetryPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, Backoff{}, func(context.Context) error { calls++; return nil })
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("calls = %d, err = %v", calls, err)
	}
}

// ---- Breaker ----

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	return NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		now:              clk.now,
	}), clk
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want Open", got)
	}
	if err := b.Do(func() error { t.Fatal("ran while open"); return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("open call err = %v, want ErrOpen", err)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		b.Do(func() error { return boom })
		b.Do(func() error { return nil }) // resets the consecutive count
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want Closed (failures never consecutive)", got)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Do(func() error { return errors.New("boom") })
	if b.State() != Open {
		t.Fatal("not open after threshold")
	}
	clk.advance(time.Minute)
	if b.State() != HalfOpen {
		t.Fatal("cooldown did not half-open the circuit")
	}
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe err = %v", err)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probe = %v, want Closed", got)
	}
}

func TestBreakerHalfOpenProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Do(func() error { return errors.New("boom") })
	clk.advance(time.Minute)
	if err := b.Do(func() error { return errors.New("still down") }); err == nil {
		t.Fatal("probe error swallowed")
	}
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want Open", got)
	}
	// A second cooldown admits another probe.
	clk.advance(time.Minute)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after second cooldown = %v, want HalfOpen", got)
	}
}

func TestBreakerHalfOpenLimitsProbes(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Do(func() error { return errors.New("boom") })
	clk.advance(time.Minute)
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("first probe rejected: %v", err)
	}
	// Second concurrent probe must be rejected (HalfOpenProbes = 1).
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second probe err = %v, want ErrOpen", err)
	}
	done(nil)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want Closed", got)
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b, _ := newTestBreaker(50, time.Minute)
	boom := errors.New("boom")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Do(func() error {
					if (w+i)%3 == 0 {
						return boom
					}
					return nil
				})
				b.State()
			}
		}(w)
	}
	wg.Wait()
}

// ---- Gate ----

func TestGateAdmitsUpToRunning(t *testing.T) {
	g := NewGate(2, 0)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// No queue: third concurrent call is shed.
	if err := g.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	g.Release()
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("slot freed but acquire failed: %v", err)
	}
	g.Release()
	g.Release()
}

func TestGateBoundedQueue(t *testing.T) {
	g := NewGate(1, 1)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// One caller may wait...
	acquired := make(chan error, 1)
	go func() {
		err := g.Acquire(ctx)
		if err == nil {
			defer g.Release()
		}
		acquired <- err
	}()
	// ...wait until it is actually queued...
	for g.Queued() == 0 {
		time.Sleep(100 * time.Microsecond) //unsync:allow-sleep test poll for queue occupancy
	}
	// ...and the next one is shed instantly.
	if err := g.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow err = %v, want ErrSaturated", err)
	}
	g.Release()
	if err := <-acquired; err != nil {
		t.Fatalf("queued caller err = %v", err)
	}
}

func TestGateCancelWhileQueued(t *testing.T) {
	g := NewGate(1, 4)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- g.Acquire(ctx) }()
	for g.Queued() == 0 {
		time.Sleep(100 * time.Microsecond) //unsync:allow-sleep test poll for queue occupancy
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := g.Queued(); got != 0 {
		t.Fatalf("queue ticket leaked: Queued() = %d", got)
	}
	g.Release()
}

func TestGateConcurrentNeverExceedsLimit(t *testing.T) {
	const limit = 3
	g := NewGate(limit, 64)
	var inFlight, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				return
			}
			defer g.Release()
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			inFlight.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", p, limit)
	}
	if g.InFlight() != 0 {
		t.Fatalf("slots leaked: %d", g.InFlight())
	}
}

func TestGateReserveAdmissionOrder(t *testing.T) {
	g := NewGate(1, 1)
	r1, err := g.Reserve()
	if err != nil || !r1.slot {
		t.Fatalf("first reservation: err=%v slot=%v, want a slot", err, r1 != nil && r1.slot)
	}
	r2, err := g.Reserve()
	if err != nil || r2.slot {
		t.Fatalf("second reservation: err=%v, want a queue ticket", err)
	}
	if _, err := g.Reserve(); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third reservation err = %v, want ErrSaturated", err)
	}
	// Freeing the slot lets the ticket convert.
	waited := make(chan error, 1)
	go func() { waited <- r2.Wait(context.Background()) }()
	r1.Release()
	if err := <-waited; err != nil {
		t.Fatalf("Wait after slot freed: %v", err)
	}
	r2.Release()
	if g.InFlight() != 0 || g.Queued() != 0 {
		t.Fatalf("leaked: inflight=%d queued=%d", g.InFlight(), g.Queued())
	}
}

func TestGateReservationWaitCancel(t *testing.T) {
	g := NewGate(1, 2)
	r1, err := g.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r2.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want Canceled", err)
	}
	r2.Release() // no-op after a failed Wait
	r1.Release()
	if g.InFlight() != 0 || g.Queued() != 0 {
		t.Fatalf("leaked: inflight=%d queued=%d", g.InFlight(), g.Queued())
	}
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Release did not panic")
		}
	}()
	NewGate(1, 0).Release()
}
