package lint

// conc.go is the concurrency-safety layer of the linter: three
// interprocedural rules over the shared call graph (callgraph.go)
// guarding the invariants the campaign/sweep/serve planes depend on —
// deterministic kill/resume needs every goroutine accounted for,
// cancellation needs contexts threaded end to end, and drain/restart
// needs no lock held across a blocking operation.
//
// The rules are interprocedural without SSA: a per-function summary
// pass (concInfo) classifies every declared function as blocking or
// not from its body alone, then a fixpoint propagates blockingness
// over call edges. Rules then combine the summaries with local,
// flow-aware walks (the lock rule tracks the held-lock set through
// defers and early unlocks statement by statement).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// concInfo is the per-module concurrency summary shared by the rules.
type concInfo struct {
	// pairs maps a blocking function to its context-threaded variant:
	// base X (no context.Context parameter) -> X+"Context" in the same
	// package (or on the same receiver type, for methods).
	pairs map[*types.Func]*types.Func
	// blocking marks functions that can block the calling goroutine —
	// directly (channel op, select, sleep, fsync, WaitGroup.Wait),
	// transitively through a call edge, or by having a *Context variant
	// (a long-running engine entry point by construction).
	blocking map[*types.Func]bool
	// why records, per blocking function, the first reason found —
	// either the direct operation or the callee it inherits from.
	why map[*types.Func]string
}

// conc builds the concurrency summaries once and caches them.
func (m *module) conc() *concInfo {
	if m.ci == nil {
		m.ci = newConcInfo(m)
	}
	return m.ci
}

func newConcInfo(m *module) *concInfo {
	g := m.callgraph()
	ci := &concInfo{
		pairs:    buildPairs(m),
		blocking: make(map[*types.Func]bool),
		why:      make(map[*types.Func]string),
	}

	// Deterministic function order (the fixpoint's `why` attribution
	// depends on it).
	fns := make([]*types.Func, 0, len(g.bodies))
	for fn := range g.bodies {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return g.bodies[fns[i]].Pos() < g.bodies[fns[j]].Pos() })

	// Direct blocking operations in each body.
	for _, fn := range fns {
		if desc := directBlock(g.pkgOf[fn], g.bodies[fn]); desc != "" {
			ci.blocking[fn] = true
			ci.why[fn] = desc
		}
	}

	// Every base/variant of a Context pair is long-running by
	// construction (the variant exists precisely because the call can
	// outlive a cancellation window), whether or not its body shows a
	// channel operation.
	mark := func(fn *types.Func) {
		if fn != nil && !ci.blocking[fn] {
			ci.blocking[fn] = true
			ci.why[fn] = "long-running: has a Context variant"
		}
	}
	for base, variant := range ci.pairs {
		mark(base)
		mark(variant)
	}

	// Fixpoint: a function calling a blocking function blocks.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if ci.blocking[fn] {
				continue
			}
			for _, callee := range g.edges[fn] {
				if ci.blocking[callee] {
					ci.blocking[fn] = true
					ci.why[fn] = "calls " + qualified(callee)
					changed = true
					break
				}
			}
		}
	}
	return ci
}

// buildPairs indexes base -> Context-variant pairs: a function or
// method named X+"Context" taking a context.Context, whose counterpart
// X exists in the same scope and takes none.
func buildPairs(m *module) map[*types.Func]*types.Func {
	pairs := make(map[*types.Func]*types.Func)
	for _, p := range m.pkgs {
		scope := p.pkg.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.Func:
				addPair(pairs, obj, func(base string) *types.Func {
					fn, _ := scope.Lookup(base).(*types.Func)
					return fn
				})
			case *types.TypeName:
				if obj.IsAlias() {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				for i := 0; i < named.NumMethods(); i++ {
					addPair(pairs, named.Method(i), func(base string) *types.Func {
						for j := 0; j < named.NumMethods(); j++ {
							if named.Method(j).Name() == base {
								return named.Method(j)
							}
						}
						return nil
					})
				}
			}
		}
	}
	return pairs
}

func addPair(pairs map[*types.Func]*types.Func, variant *types.Func, lookup func(string) *types.Func) {
	const suffix = "Context"
	name := variant.Name()
	if !strings.HasSuffix(name, suffix) || name == suffix {
		return
	}
	vsig, ok := variant.Type().(*types.Signature)
	if !ok || !hasCtxParam(vsig) {
		return
	}
	base := lookup(strings.TrimSuffix(name, suffix))
	if base == nil {
		return
	}
	bsig, ok := base.Type().(*types.Signature)
	if !ok || hasCtxParam(bsig) {
		return
	}
	pairs[base] = variant
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func hasCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func recvTypeString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return sig.Recv().Type().String()
}

func isEmptyStruct(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// directBlock returns a description of the first operation in body that
// can block the calling goroutine, or "". Function literals count only
// when they run on this goroutine (IIFEs and deferred closures); `go`
// statement subtrees execute concurrently and are skipped. A select
// with a default case is non-blocking: its communication clauses are
// skipped but their bodies still scanned.
func directBlock(p *pkgInfo, body *ast.BlockStmt) string {
	// Function literals that execute inline in the enclosing function.
	inline := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				inline[lit] = true
			}
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				inline[lit] = true
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				delete(inline, lit) // `go func(){...}()` runs elsewhere
			}
		}
		return true
	})
	var desc string
	var scan func(ast.Node)
	scan = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if desc != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.FuncLit:
				return inline[n]
			case *ast.SendStmt:
				desc = "channel send"
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					desc = "channel receive"
					return false
				}
			case *ast.RangeStmt:
				if tv, ok := p.info.Types[n.X]; ok {
					if _, isCh := tv.Type.Underlying().(*types.Chan); isCh {
						desc = "range over channel"
						return false
					}
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					desc = "select"
					return false
				}
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							scan(s)
						}
					}
				}
				return false
			case *ast.CallExpr:
				fn := calleeFunc(p.info, n)
				if fn == nil {
					return true
				}
				switch {
				case fn.Name() == "Sleep" && fn.Pkg() != nil && fn.Pkg().Path() == "time":
					desc = "time.Sleep"
					return false
				case fn.Name() == "Sync" && recvTypeString(fn) == "*os.File":
					desc = "fsync"
					return false
				case fn.Name() == "Wait" && recvTypeString(fn) == "*sync.WaitGroup":
					desc = "WaitGroup.Wait"
					return false
				}
			}
			return true
		})
	}
	scan(body)
	return desc
}

// ---------------------------------------------------------------------
// Rule 1: goroutine-leak
// ---------------------------------------------------------------------

// goroutineRule requires every `go` statement in module code to be
// provably joinable: a WaitGroup Done/Wait, a ctx.Done or quit-channel
// receive, or a range over a work channel must be reachable from the
// goroutine's entry through the call graph. A goroutine with none of
// these outlives every drain/kill path, which breaks the deterministic
// resume the campaign journal depends on. Deliberately detached
// goroutines are audited with //unsync:allow-goroutine <reason>.
func (m *module) goroutineRule() []Finding {
	g := m.callgraph()
	var out []Finding
	for _, site := range g.gos {
		if m.joinable(site) {
			continue
		}
		if m.allowed("allow-goroutine", site.pos) {
			continue
		}
		out = append(out, m.finding("goroutine-leak", site.pos,
			"goroutine is not provably joinable: no WaitGroup Done/Wait, ctx.Done or quit-channel receive, or work-channel range is reachable from its body — drain/kill paths cannot account for it (audit a deliberately detached goroutine with //unsync:allow-goroutine <reason>)"))
	}
	return out
}

// joinable reports whether a join signal is reachable from the
// goroutine's entry point: scanned directly in its function literal
// body, or in any module function reachable from the entry through the
// call graph. A dynamically resolved or extra-module entry is never
// provably joinable.
func (m *module) joinable(site goSite) bool {
	g := m.callgraph()
	var roots []*types.Func
	if site.lit != nil {
		if joinSignal(site.p, site.lit.Body) {
			return true
		}
		// Module functions referenced inside the literal seed the
		// reachability sweep.
		ast.Inspect(site.lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if fn, ok := site.p.info.Uses[id].(*types.Func); ok &&
					fn.Pkg() != nil && hasModulePrefix(m.path, fn.Pkg().Path()) {
					roots = append(roots, fn.Origin())
				}
			}
			return true
		})
	} else {
		fn := calleeFunc(site.p.info, site.call)
		if fn == nil || fn.Pkg() == nil || !hasModulePrefix(m.path, fn.Pkg().Path()) {
			return false
		}
		roots = append(roots, fn)
	}
	if len(roots) == 0 {
		return false
	}
	for fn := range g.reach(roots...) {
		if body, ok := g.bodies[fn]; ok && joinSignal(g.pkgOf[fn], body) {
			return true
		}
	}
	return false
}

// joinSignal scans one body for an operation that ties the goroutine's
// lifetime to a collector: WaitGroup Done/Wait, ctx.Done(), a receive
// in a select, a range over a channel, or a bare receive from a
// struct{}-typed quit channel.
func joinSignal(p *pkgInfo, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil && commIsRecv(cc.Comm) {
					found = true
					return false
				}
			}
		case *ast.RangeStmt:
			if tv, ok := p.info.Types[n.X]; ok {
				if _, isCh := tv.Type.Underlying().(*types.Chan); isCh {
					found = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if tv, ok := p.info.Types[n.X]; ok {
					if ch, isCh := tv.Type.Underlying().(*types.Chan); isCh && isEmptyStruct(ch.Elem()) {
						found = true
						return false
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(p.info, n)
			if fn == nil {
				return true
			}
			if (fn.Name() == "Done" || fn.Name() == "Wait") && recvTypeString(fn) == "*sync.WaitGroup" {
				found = true
				return false
			}
			if fn.Name() == "Done" {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isContextType(sig.Recv().Type()) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// commIsRecv reports whether a select communication clause is a receive.
func commIsRecv(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := ast.Unparen(s.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Rule 2: ctx-propagation
// ---------------------------------------------------------------------

// ctxRule flags a call to the context-less base of a Context pair from
// any scope with a context.Context in reach (a parameter of the
// enclosing function or of an enclosing literal): the wrapper silently
// drops cancellation, exactly the bug class the engine's cancellation
// quantum exists to prevent. Audited sites carry //unsync:allow-ctx.
func (m *module) ctxRule() []Finding {
	ci := m.conc()
	var fs []Finding
	for _, p := range m.pkgs {
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				inScope := false
				if sig, ok := fn.Type().(*types.Signature); ok {
					inScope = hasCtxParam(sig)
				}
				m.walkCtx(p, fd.Body, inScope, ci.pairs, &fs)
			}
		}
	}
	return fs
}

func (m *module) walkCtx(p *pkgInfo, body ast.Node, inScope bool, pairs map[*types.Func]*types.Func, fs *[]Finding) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal parameter can bring a context into scope; a
			// captured one stays in scope. Scope never shrinks.
			if !inScope {
				if tv, ok := p.info.Types[n]; ok {
					if sig, ok := tv.Type.(*types.Signature); ok && hasCtxParam(sig) {
						m.walkCtx(p, n.Body, true, pairs, fs)
						return false
					}
				}
			}
			return true
		case *ast.CallExpr:
			if !inScope {
				return true
			}
			fn := calleeFunc(p.info, n)
			if fn == nil {
				return true
			}
			variant, ok := pairs[fn]
			if !ok {
				return true
			}
			if m.allowed("allow-ctx", n.Pos()) {
				return true
			}
			*fs = append(*fs, m.finding("ctx-propagation", n.Pos(),
				"call to %s drops the in-scope context; call %s with it instead so cancellation stays threaded (or audit with //unsync:allow-ctx)",
				qualified(fn), qualified(variant)))
		}
		return true
	})
}

// ---------------------------------------------------------------------
// Rule 3: lock-held-blocking
// ---------------------------------------------------------------------

// lockRule forbids blocking operations while a sync.Mutex/RWMutex is
// provably held: channel sends/receives, selects without default,
// channel ranges, time.Sleep, fsync, WaitGroup.Wait, and calls to
// module functions the summary pass classified as blocking (including
// every Drive/Run Context pair and resilience.Retry). A blocked holder
// stalls every contender — under kill/drain that is a deadlock. The
// walk is flow-aware: early unlocks release, `defer mu.Unlock()` keeps
// the lock to function exit, branch bodies fork the held set, IIFEs and
// deferred closures run with the current set, and `go` bodies start
// empty. Audited sites carry //unsync:allow-lock-held.
func (m *module) lockRule() []Finding {
	ci := m.conc()
	var fs []Finding
	for _, p := range m.pkgs {
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &lockWalker{m: m, p: p, ci: ci, fs: &fs}
				w.stmts(fd.Body.List, make(map[string]bool))
			}
		}
	}
	return fs
}

type lockWalker struct {
	m  *module
	p  *pkgInfo
	ci *concInfo
	fs *[]Finding
}

func cloneHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, op := w.lockOp(call); op != "" {
				if op == "lock" {
					held[key] = true
				} else {
					delete(held, key)
				}
				return
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		if _, op := w.lockOp(s.Call); op == "unlock" {
			return // released at return: held through the rest of the body
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// A deferred closure runs on this goroutine with whatever is
			// still held at return; findings anchor at the inner call.
			w.stmts(lit.Body.List, cloneHeld(held))
		} else {
			w.call(s.Call, held)
		}
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
	case *ast.SendStmt:
		w.block(s.Arrow, "channel send", held)
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		inner := cloneHeld(held)
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.expr(s.Cond, inner)
		}
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		if tv, ok := w.p.info.Types[s.X]; ok {
			if _, isCh := tv.Type.Underlying().(*types.Chan); isCh {
				w.block(s.For, "range over channel", held)
			}
		}
		w.expr(s.X, held)
		w.stmts(s.Body.List, cloneHeld(held))
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.block(s.Select, "select without default", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, make(map[string]bool)) // fresh goroutine: nothing held
		}
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	}
}

// expr scans an expression for blocking operations under the held set.
// Function literal values are skipped (they run later, elsewhere);
// immediately-invoked literals run here and are walked with the current
// held set.
func (w *lockWalker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				w.stmts(lit.Body.List, cloneHeld(held))
				for _, a := range n.Args {
					w.expr(a, held)
				}
				return false
			}
			w.call(n, held)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.block(n.OpPos, "channel receive", held)
			}
		}
		return true
	})
}

func (w *lockWalker) call(call *ast.CallExpr, held map[string]bool) {
	fn := calleeFunc(w.p.info, call)
	if fn == nil {
		return
	}
	switch {
	case fn.Name() == "Sleep" && fn.Pkg() != nil && fn.Pkg().Path() == "time":
		w.block(call.Pos(), "time.Sleep", held)
	case fn.Name() == "Sync" && recvTypeString(fn) == "*os.File":
		w.block(call.Pos(), "fsync", held)
	case fn.Name() == "Wait" && recvTypeString(fn) == "*sync.WaitGroup":
		w.block(call.Pos(), "WaitGroup.Wait", held)
	default:
		if fn.Pkg() != nil && hasModulePrefix(w.m.path, fn.Pkg().Path()) && w.ci.blocking[fn] {
			w.block(call.Pos(), fmt.Sprintf("call to %s, which blocks (%s)", qualified(fn), w.ci.why[fn]), held)
		}
	}
}

func (w *lockWalker) block(pos token.Pos, desc string, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	if w.m.allowed("allow-lock-held", pos) {
		return
	}
	locks := make([]string, 0, len(held))
	for k := range held {
		locks = append(locks, k)
	}
	sort.Strings(locks)
	*w.fs = append(*w.fs, w.m.finding("lock-held-blocking", pos,
		"%s while %s is held; a blocked holder stalls every contender and deadlocks drain/kill paths — move the operation outside the critical section (or audit with //unsync:allow-lock-held)",
		desc, strings.Join(locks, ", ")))
}

// lockOp classifies a call as a mutex acquire or release, keyed by the
// receiver expression (so `s.mu` and `j.mu` track independently, and an
// embedded mutex keys on the embedding value).
func (w *lockWalker) lockOp(call *ast.CallExpr) (key, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := w.p.info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", ""
	}
	if recv := recvTypeString(fn); recv != "*sync.Mutex" && recv != "*sync.RWMutex" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), "lock"
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), "unlock"
	}
	return "", ""
}
