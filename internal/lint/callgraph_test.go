package lint

import (
	"strings"
	"testing"
)

// These tests pin the call-graph growth the concurrency rules depend
// on: edges through method values, deferred method calls, `go`
// statement callees, and instantiated generics folding onto their
// origin declaration. Each fixture routes a panic through the edge
// kind under test and asserts the panic-path rule still sees it from
// the public root.

func TestCallgraphMethodValue(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

type S struct{}

func (s S) boom() { panic("method value") }

// Use reaches boom only through a stored method value.
func Use() {
	f := S{}.boom
	f()
}
`,
	}
	fs := runFixture(t, files, "panic-path")
	if len(fs) != 1 {
		t.Fatalf("panic behind a method value not reached: got %d findings: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "boom") {
		t.Errorf("chain should name the method: %s", fs[0].Msg)
	}
}

func TestCallgraphDeferredMethodCall(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

type S struct{}

func (s S) cleanup() { panic("deferred") }

// Use reaches cleanup only through a defer.
func Use() {
	var s S
	defer s.cleanup()
}
`,
	}
	if fs := runFixture(t, files, "panic-path"); len(fs) != 1 {
		t.Fatalf("panic behind defer m.f() not reached: got %d findings: %v", len(fs), fs)
	}
}

func TestCallgraphGoStatementCallee(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

func helper() { panic("in goroutine") }

// Launch reaches helper only as a go statement's callee.
func Launch() {
	//unsync:allow-goroutine fixture: panic reachability is what is under test
	go helper()
}
`,
	}
	if fs := runFixture(t, files, "panic-path"); len(fs) != 1 {
		t.Fatalf("panic behind a go statement not reached: got %d findings: %v", len(fs), fs)
	}
}

// TestCallgraphGenericOrigin is the regression for instantiated
// generics: the call site resolves to Box[int].Get but the body is
// declared on the generic origin — the edge must fold onto it.
func TestCallgraphGenericOrigin(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

type Box[T any] struct{ v T }

func (b *Box[T]) Get() T {
	if b == nil {
		panic("nil box")
	}
	return b.v
}

// Use calls the int instantiation.
func Use() int {
	b := &Box[int]{v: 1}
	return b.Get()
}
`,
	}
	if fs := runFixture(t, files, "panic-path"); len(fs) != 1 {
		t.Fatalf("panic in a generic method body not reached through its instantiation: got %d findings: %v", len(fs), fs)
	}
}

// TestCallgraphInterfaceSingleImpl: a call through an interface with
// exactly one module implementation resolves to that implementation.
func TestCallgraphInterfaceSingleImpl(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

type closer interface{ close() }

type file struct{}

func (f *file) close() { panic("single impl") }

// Use only ever sees the interface.
func Use(c closer) {
	if c == nil {
		c = &file{}
	}
	c.close()
}
`,
	}
	if fs := runFixture(t, files, "panic-path"); len(fs) != 1 {
		t.Fatalf("panic behind a single-impl interface call not reached: got %d findings: %v", len(fs), fs)
	}
}
