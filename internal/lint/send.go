package lint

import (
	"go/ast"
	"go/types"
)

// Rule: blocking-send
//
// In the streaming/pump packages (cfg.StreamDirs) a bare channel send
// inside a for/range loop is a shutdown hazard: pump loops run until
// cancelled, and a send with no escape hatch deadlocks the loop the
// moment its consumer stops draining — the drain/kill invariants the
// concurrency layer guards then never fire. The rule requires every
// send statement lexically inside a loop to be a communication clause
// of a select that also offers an exit: a receive from a done-style
// channel (a .Done() call or any chan struct{} quit signal) or a
// default clause (the non-blocking fanout idiom — a send that cannot
// stall needs no interrupt).
//
// Function literals reset the loop context: a goroutine or deferred
// closure launched per iteration blocks itself, not the loop (and the
// goroutine-leak rule already polices its joinability). Deliberate
// exceptions are audited with //unsync:allow-send <reason>.
func (m *module) blockingSendRule() []Finding {
	var out []Finding
	for _, p := range m.pkgs {
		if !isDeterministic(m.cfg.StreamDirs, p.relDir) {
			continue
		}
		w := &sendWalker{m: m, p: p}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					w.block(fd.Body, 0)
				}
			}
		}
		out = append(out, w.out...)
	}
	return out
}

// sendWalker walks statements tracking lexical loop depth.
type sendWalker struct {
	m   *module
	p   *pkgInfo
	out []Finding
}

func (w *sendWalker) block(b *ast.BlockStmt, depth int) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.stmt(s, depth)
	}
}

func (w *sendWalker) stmt(s ast.Stmt, depth int) {
	switch st := s.(type) {
	case *ast.SendStmt:
		w.flag(st, depth)
	case *ast.ForStmt:
		w.stmt(st.Init, depth)
		w.stmt(st.Post, depth)
		w.block(st.Body, depth+1)
	case *ast.RangeStmt:
		w.block(st.Body, depth+1)
	case *ast.SelectStmt:
		compliant := w.selectCompliant(st)
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if send, isSend := cc.Comm.(*ast.SendStmt); isSend && !compliant {
				w.flag(send, depth)
			}
			for _, b := range cc.Body {
				w.stmt(b, depth)
			}
		}
	case *ast.BlockStmt:
		w.block(st, depth)
	case *ast.IfStmt:
		w.stmt(st.Init, depth)
		w.block(st.Body, depth)
		w.stmt(st.Else, depth)
	case *ast.SwitchStmt:
		w.stmt(st.Init, depth)
		for _, c := range st.Body.List {
			for _, b := range c.(*ast.CaseClause).Body {
				w.stmt(b, depth)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init, depth)
		for _, c := range st.Body.List {
			for _, b := range c.(*ast.CaseClause).Body {
				w.stmt(b, depth)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, depth)
	case *ast.GoStmt, *ast.DeferStmt:
		// A per-iteration goroutine or deferred closure blocks itself,
		// not the loop; its body starts outside any loop.
		var call *ast.CallExpr
		if g, ok := st.(*ast.GoStmt); ok {
			call = g.Call
		} else {
			call = st.(*ast.DeferStmt).Call
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			w.block(lit.Body, 0)
		}
	case *ast.ExprStmt:
		// IIFEs and other function literals likewise reset the context.
		ast.Inspect(st.X, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.block(lit.Body, 0)
				return false
			}
			return true
		})
	case *ast.AssignStmt, *ast.DeclStmt, *ast.ReturnStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.block(lit.Body, 0)
				return false
			}
			return true
		})
	}
}

// flag reports a send at the given loop depth (bare sends outside any
// loop cannot wedge a pump and pass).
func (w *sendWalker) flag(send *ast.SendStmt, depth int) {
	if depth == 0 {
		return
	}
	if w.m.allowed("allow-send", send.Pos()) {
		return
	}
	w.out = append(w.out, w.m.finding("blocking-send", send.Pos(),
		"channel send inside a pump loop has no shutdown escape: wrap it in a select with a ctx.Done()-style receive (or a default clause for non-blocking taps), or audit with //unsync:allow-send <reason>"))
}

// selectCompliant reports whether a select offers an exit alongside its
// sends: a default clause, or a receive from a done-style channel.
func (w *sendWalker) selectCompliant(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default: the send cannot block
		}
		if recv := commReceiveExpr(cc.Comm); recv != nil && w.isDoneChannel(recv.X) {
			return true
		}
	}
	return false
}

// commReceiveExpr extracts the <-ch receive of a comm clause, if any.
func commReceiveExpr(s ast.Stmt) *ast.UnaryExpr {
	var expr ast.Expr
	switch st := s.(type) {
	case *ast.ExprStmt:
		expr = st.X
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			expr = st.Rhs[0]
		}
	}
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
		return u
	}
	return nil
}

// isDoneChannel reports whether ch is a shutdown signal: a .Done()
// call (context.Context and friends) or any channel of struct{} (the
// quit-channel idiom).
func (w *sendWalker) isDoneChannel(ch ast.Expr) bool {
	if call, ok := ch.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	if tv, ok := w.p.info.Types[ch]; ok {
		if c, ok := tv.Type.Underlying().(*types.Chan); ok {
			if st, ok := c.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}
