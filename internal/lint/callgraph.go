package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// panicRule reports panic sites reachable from the public unsync
// package API. Library users must get errors, not crashes, for bad
// input; panics are reserved for audited internal invariant checks
// annotated //unsync:allow-panic <reason>.
//
// Reachability is computed over a conservative static call graph:
//
//   - every reference to a function or method inside a body adds an
//     edge (this over-approximates calls through stored function
//     values such as commit hooks);
//   - a call through an interface method adds edges to that method on
//     every module type implementing the interface (class-hierarchy
//     style resolution);
//   - panics inside function literals are attributed to the enclosing
//     declared function.
//
// Roots are the exported functions of the public package plus the
// exported methods of every type it exports (including types exported
// through aliases to internal packages).
func (m *module) panicRule() []Finding {
	pub := m.byPath[importPath(m.path, m.cfg.PublicDir)]
	if pub == nil {
		return nil
	}

	g := m.callgraph()

	var roots []*types.Func
	scope := pub.pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			roots = append(roots, o)
		case *types.TypeName:
			ms := types.NewMethodSet(types.NewPointer(o.Type()))
			for i := 0; i < ms.Len(); i++ {
				if fn, ok := ms.At(i).Obj().(*types.Func); ok && fn.Exported() {
					roots = append(roots, fn.Origin())
				}
			}
		}
	}

	// BFS, remembering one shortest call chain per function.
	parent := make(map[*types.Func]*types.Func)
	seen := make(map[*types.Func]bool)
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range g.edges[fn] {
			if !seen[callee] {
				seen[callee] = true
				parent[callee] = fn
				queue = append(queue, callee)
			}
		}
	}

	var fs []Finding
	for _, site := range g.panics {
		if !seen[site.fn] {
			continue
		}
		// Consult the directive only for reachable panics: an
		// //unsync:allow-panic on an unreachable site suppresses nothing
		// and must surface as stale.
		if m.allowed("allow-panic", site.pos) {
			continue
		}
		fs = append(fs, m.finding("panic-path", site.pos,
			"panic reachable from the public unsync API via %s; return an error or audit the invariant with //unsync:allow-panic <reason>",
			chain(parent, site.fn)))
	}
	return fs
}

// chain renders the call chain root -> ... -> fn discovered by the BFS.
func chain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var names []string
	for f := fn; f != nil; f = parent[f] {
		names = append(names, qualified(f))
		if len(names) > 8 {
			names = append(names, "...")
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

func qualified(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + name
	}
	return name
}

type panicSite struct {
	fn  *types.Func
	pos token.Pos
}

// goSite is one `go` statement: a goroutine entry point rooted in the
// call graph. Either lit (a function literal body) or the statically
// resolved callee of the go call identifies the entry; both may be
// missing for calls through plain function values.
type goSite struct {
	pos  token.Pos
	fn   *types.Func // enclosing declared function
	call *ast.CallExpr
	lit  *ast.FuncLit
	p    *pkgInfo
}

type callGraph struct {
	edges map[*types.Func][]*types.Func
	// bodies and pkgOf let rules scan the source of any declared
	// function reached through the graph with the right types.Info.
	bodies map[*types.Func]*ast.BlockStmt
	pkgOf  map[*types.Func]*pkgInfo
	panics []panicSite
	gos    []goSite
}

// callgraph builds the module's call graph once and caches it; the
// panic rule and every concurrency rule share it.
func (m *module) callgraph() *callGraph {
	if m.cg == nil {
		m.cg = newCallGraph(m)
	}
	return m.cg
}

func newCallGraph(m *module) *callGraph {
	g := &callGraph{
		edges:  make(map[*types.Func][]*types.Func),
		bodies: make(map[*types.Func]*ast.BlockStmt),
		pkgOf:  make(map[*types.Func]*pkgInfo),
	}

	// All named (non-interface) types in the module, for interface
	// method resolution.
	var concrete []*types.Named
	for _, p := range m.pkgs {
		pscope := p.pkg.Scope()
		for _, name := range pscope.Names() {
			tn, ok := pscope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			concrete = append(concrete, named)
		}
	}

	abstract := make(map[*types.Func]bool)
	for _, p := range m.pkgs {
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.bodies[fn] = fd.Body
				g.pkgOf[fn] = p
				g.walkBody(m, p, fn, fd.Body, abstract)
			}
		}
	}

	// Resolve interface methods to their module implementations.
	for af := range abstract {
		sig, ok := af.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, named := range concrete {
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
				continue
			}
			ms := types.NewMethodSet(ptr)
			sel := ms.Lookup(af.Pkg(), af.Name())
			if sel == nil {
				continue
			}
			if impl, ok := sel.Obj().(*types.Func); ok {
				g.edges[af] = append(g.edges[af], impl)
			}
		}
	}

	// Deterministic edge order (BFS result does not depend on it, but
	// the lint tool itself must be reproducible).
	for fn, callees := range g.edges {
		sort.Slice(callees, func(i, j int) bool { return qualified(callees[i]) < qualified(callees[j]) })
		g.edges[fn] = callees
	}
	sort.Slice(g.panics, func(i, j int) bool { return g.panics[i].pos < g.panics[j].pos })
	sort.Slice(g.gos, func(i, j int) bool { return g.gos[i].pos < g.gos[j].pos })
	return g
}

// walkBody records panic sites, goroutine launches and call edges of
// one declared function. Every reference to a module function inside
// the body adds an edge — plain calls, method values, deferred calls
// and `go` statement callees alike — which over-approximates calls
// through stored function values.
func (g *callGraph) walkBody(m *module, p *pkgInfo, fn *types.Func, body *ast.BlockStmt, abstract map[*types.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			site := goSite{pos: n.Pos(), fn: fn, call: n.Call, p: p}
			site.lit, _ = n.Call.Fun.(*ast.FuncLit)
			g.gos = append(g.gos, site)
		case *ast.Ident:
			switch obj := p.info.Uses[n].(type) {
			case *types.Builtin:
				if obj.Name() == "panic" {
					g.panics = append(g.panics, panicSite{fn: fn, pos: n.Pos()})
				}
			case *types.Func:
				// Only track the module's own functions; stdlib bodies are
				// out of scope. Origin() folds instantiated generic
				// methods onto the declaration that owns the body.
				if obj.Pkg() != nil && hasModulePrefix(m.path, obj.Pkg().Path()) {
					callee := obj.Origin()
					g.edges[fn] = append(g.edges[fn], callee)
					if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
						if types.IsInterface(sig.Recv().Type()) {
							abstract[callee] = true
						}
					}
				}
			}
		}
		return true
	})
}

// reach returns every function reachable from the roots over the call
// graph, roots included.
func (g *callGraph) reach(roots ...*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range g.edges[fn] {
			if !seen[callee] {
				seen[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return seen
}
