package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// panicRule reports panic sites reachable from the public unsync
// package API. Library users must get errors, not crashes, for bad
// input; panics are reserved for audited internal invariant checks
// annotated //unsync:allow-panic <reason>.
//
// Reachability is computed over a conservative static call graph:
//
//   - every reference to a function or method inside a body adds an
//     edge (this over-approximates calls through stored function
//     values such as commit hooks);
//   - a call through an interface method adds edges to that method on
//     every module type implementing the interface (class-hierarchy
//     style resolution);
//   - panics inside function literals are attributed to the enclosing
//     declared function.
//
// Roots are the exported functions of the public package plus the
// exported methods of every type it exports (including types exported
// through aliases to internal packages).
func (m *module) panicRule() []Finding {
	pub := m.byPath[importPath(m.path, m.cfg.PublicDir)]
	if pub == nil {
		return nil
	}

	g := newCallGraph(m)

	var roots []*types.Func
	scope := pub.pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			roots = append(roots, o)
		case *types.TypeName:
			ms := types.NewMethodSet(types.NewPointer(o.Type()))
			for i := 0; i < ms.Len(); i++ {
				if fn, ok := ms.At(i).Obj().(*types.Func); ok && fn.Exported() {
					roots = append(roots, fn)
				}
			}
		}
	}

	// BFS, remembering one shortest call chain per function.
	parent := make(map[*types.Func]*types.Func)
	seen := make(map[*types.Func]bool)
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range g.edges[fn] {
			if !seen[callee] {
				seen[callee] = true
				parent[callee] = fn
				queue = append(queue, callee)
			}
		}
	}

	var fs []Finding
	for _, site := range g.panics {
		if site.allowed || !seen[site.fn] {
			continue
		}
		fs = append(fs, m.finding("panic-path", site.pos,
			"panic reachable from the public unsync API via %s; return an error or audit the invariant with //unsync:allow-panic <reason>",
			chain(parent, site.fn)))
	}
	return fs
}

// chain renders the call chain root -> ... -> fn discovered by the BFS.
func chain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var names []string
	for f := fn; f != nil; f = parent[f] {
		names = append(names, qualified(f))
		if len(names) > 8 {
			names = append(names, "...")
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

func qualified(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + name
	}
	return name
}

type panicSite struct {
	fn      *types.Func
	pos     token.Pos
	allowed bool
}

type callGraph struct {
	edges  map[*types.Func][]*types.Func
	panics []panicSite
}

func newCallGraph(m *module) *callGraph {
	g := &callGraph{edges: make(map[*types.Func][]*types.Func)}

	// All named (non-interface) types in the module, for interface
	// method resolution.
	var concrete []*types.Named
	for _, p := range m.pkgs {
		pscope := p.pkg.Scope()
		for _, name := range pscope.Names() {
			tn, ok := pscope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			concrete = append(concrete, named)
		}
	}

	abstract := make(map[*types.Func]bool)
	for _, p := range m.pkgs {
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.walkBody(m, p, fn, fd.Body, abstract)
			}
		}
	}

	// Resolve interface methods to their module implementations.
	for af := range abstract {
		sig, ok := af.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, named := range concrete {
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
				continue
			}
			ms := types.NewMethodSet(ptr)
			sel := ms.Lookup(af.Pkg(), af.Name())
			if sel == nil {
				continue
			}
			if impl, ok := sel.Obj().(*types.Func); ok {
				g.edges[af] = append(g.edges[af], impl)
			}
		}
	}

	// Deterministic edge order (BFS result does not depend on it, but
	// the lint tool itself must be reproducible).
	for fn, callees := range g.edges {
		sort.Slice(callees, func(i, j int) bool { return qualified(callees[i]) < qualified(callees[j]) })
		g.edges[fn] = callees
	}
	sort.Slice(g.panics, func(i, j int) bool { return g.panics[i].pos < g.panics[j].pos })
	return g
}

// walkBody records panic sites and call edges of one declared function.
func (g *callGraph) walkBody(m *module, p *pkgInfo, fn *types.Func, body *ast.BlockStmt, abstract map[*types.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		switch obj := p.info.Uses[id].(type) {
		case *types.Builtin:
			if obj.Name() == "panic" {
				g.panics = append(g.panics, panicSite{
					fn:      fn,
					pos:     id.Pos(),
					allowed: m.allowed("allow-panic", id.Pos()),
				})
			}
		case *types.Func:
			// Only track the module's own functions; stdlib bodies are
			// out of scope.
			if obj.Pkg() != nil && hasModulePrefix(m.path, obj.Pkg().Path()) {
				g.edges[fn] = append(g.edges[fn], obj)
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					if types.IsInterface(sig.Recv().Type()) {
						abstract[obj] = true
					}
				}
			}
		}
		return true
	})
}
