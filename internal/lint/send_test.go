package lint

import (
	"strings"
	"testing"
)

// --- blocking-send ----------------------------------------------------

// A bare send inside a pump loop is the canonical violation: nothing
// can interrupt the loop once the consumer stops draining.
func TestBlockingSendBareInLoop(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/stream/pump.go": `package stream

// Pump forwards work with no shutdown escape.
func Pump(in <-chan int, out chan<- int) {
	for v := range in {
		out <- v
	}
}
`,
	}
	fs := runFixture(t, files, "blocking-send")
	if len(fs) != 1 {
		t.Fatalf("want 1 blocking-send finding, got %d: %v", len(fs), fs)
	}
	if fs[0].Pos.Line != 6 {
		t.Errorf("finding at line %d, want 6", fs[0].Pos.Line)
	}
	if !strings.Contains(fs[0].Msg, "select") {
		t.Errorf("message %q does not point at the select idiom", fs[0].Msg)
	}
}

// Sends guarded by a select with a ctx.Done() receive, a quit-channel
// receive, or a default clause are the approved idioms and pass.
func TestBlockingSendGuardedIdiomsPass(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/stream/pump.go": `package stream

import "context"

// PumpCtx forwards work until the context dies.
func PumpCtx(ctx context.Context, in <-chan int, out chan<- int) {
	for v := range in {
		select {
		case out <- v:
		case <-ctx.Done():
			return
		}
	}
}

// PumpQuit forwards work until the quit channel closes.
func PumpQuit(quit <-chan struct{}, in <-chan int, out chan<- int) {
	for v := range in {
		select {
		case out <- v:
		case <-quit:
			return
		}
	}
}

// Shed offers work without ever blocking (the fanout idiom).
func Shed(in <-chan int, out chan<- int) {
	for v := range in {
		select {
		case out <- v:
		default:
		}
	}
}

// Offer sends outside any loop; a single send cannot wedge a pump.
func Offer(out chan<- int, v int) {
	out <- v
}
`,
	}
	if fs := runFixture(t, files, "blocking-send"); len(fs) != 0 {
		t.Fatalf("guarded/loop-free sends flagged: %v", fs)
	}
}

// A select whose only other clause is an unrelated receive (not a done
// signal) still has no shutdown escape and is flagged.
func TestBlockingSendUnrelatedReceiveFlagged(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/stream/pump.go": `package stream

// Pump blocks on either a send or a data receive; neither is an exit.
func Pump(in <-chan int, out chan<- int, more <-chan int) {
	for v := range in {
		select {
		case out <- v:
		case x := <-more:
			_ = x
		}
	}
}
`,
	}
	fs := runFixture(t, files, "blocking-send")
	if len(fs) != 1 {
		t.Fatalf("want 1 blocking-send finding, got %d: %v", len(fs), fs)
	}
}

// Per-iteration goroutines reset the loop context: the goroutine
// blocks itself, not the pump (goroutine-leak polices it separately).
func TestBlockingSendGoroutineResetsLoop(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/stream/pump.go": `package stream

import "sync"

// Fan sends from per-item goroutines joined by the WaitGroup.
func Fan(items []int, out chan<- int) {
	var wg sync.WaitGroup
	for _, v := range items {
		wg.Add(1)
		v := v
		go func() {
			defer wg.Done()
			out <- v
		}()
	}
	wg.Wait()
}
`,
	}
	if fs := runFixture(t, files, "blocking-send"); len(fs) != 0 {
		t.Fatalf("goroutine-body send flagged as loop send: %v", fs)
	}
}

// The rule only guards cfg.StreamDirs; the same loop elsewhere passes.
func TestBlockingSendScopedToStreamDirs(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/other/pump.go": `package other

// Pump is outside the stream dirs and exempt.
func Pump(in <-chan int, out chan<- int) {
	for v := range in {
		out <- v
	}
}
`,
	}
	if fs := runFixture(t, files, "blocking-send"); len(fs) != 0 {
		t.Fatalf("send outside StreamDirs flagged: %v", fs)
	}
}

// An audited send is suppressed, and the directive counts as used (no
// stale-audit follow-up).
func TestBlockingSendAudited(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/stream/pump.go": `package stream

// Pump deliberately backpressures its producer forever.
func Pump(in <-chan int, out chan<- int) {
	for v := range in {
		//unsync:allow-send fixture: consumer lifetime provably exceeds producer's
		out <- v
	}
}
`,
	}
	if fs := runFixture(t, files, "blocking-send"); len(fs) != 0 {
		t.Fatalf("audited send flagged: %v", fs)
	}
	if fs := runFixture(t, files, "stale-audit"); len(fs) != 0 {
		t.Fatalf("used allow-send directive reported stale: %v", fs)
	}
}
