package lint

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintRepo is the tier-1 guard: the repository itself must lint
// clean. Any new wall-clock read, math/rand use, order-sensitive map
// range, discarded simulator error or unaudited public-API panic fails
// the ordinary `go test ./...` run.
func TestLintRepo(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(DefaultConfig(root))
	if err != nil {
		t.Fatalf("lint failed to load the repository: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// writeModule materializes a fixture module in a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func fixtureConfig(root string) Config {
	return Config{
		Root:              root,
		DeterministicDirs: []string{"internal/core"},
		RNGFile:           "internal/trace/rng.go",
		PublicDir:         ".",
		BatchFiles:        []string{"internal/core/lanes.go"},
		StreamDirs:        []string{"internal/stream"},
	}
}

const fixtureGoMod = "module example.com/fixture\n\ngo 1.22\n"

// runFixture lints a fixture module and returns findings for one rule.
func runFixture(t *testing.T, files map[string]string, rule string) []Finding {
	t.Helper()
	files["go.mod"] = fixtureGoMod
	root := writeModule(t, files)
	findings, err := Run(fixtureConfig(root))
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var out []Finding
	for _, f := range findings {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// TestRandDiagnostic is the acceptance check from the issue: a
// math/rand global call introduced into internal/core must produce a
// diagnostic carrying file and line.
func TestRandDiagnostic(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/core/core.go": `package core

import "math/rand"

// Jitter breaks determinism on purpose.
func Jitter() int {
	return rand.Intn(10)
}
`,
	}
	fs := runFixture(t, files, "rand")
	if len(fs) == 0 {
		t.Fatal("no rand findings for math/rand call in internal/core")
	}
	var call *Finding
	for i := range fs {
		if fs[i].Pos.Line == 7 {
			call = &fs[i]
		}
	}
	if call == nil {
		t.Fatalf("no finding at the rand.Intn call line; got %v", fs)
	}
	if !strings.HasSuffix(call.Pos.Filename, filepath.FromSlash("internal/core/core.go")) {
		t.Errorf("finding file = %q, want internal/core/core.go", call.Pos.Filename)
	}
	if call.Pos.Line != 7 || call.Pos.Column == 0 {
		t.Errorf("finding position = %d:%d, want line 7 with a column", call.Pos.Line, call.Pos.Column)
	}
	if !strings.Contains(call.Msg, "math/rand") {
		t.Errorf("message %q does not name math/rand", call.Msg)
	}
}

// TestRandExemptsRNGFile checks the single allowed implementation site.
func TestRandExemptsRNGFile(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/trace/rng.go": `package trace

import "math/rand"

// New wraps a seeded source (the one legitimate use).
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`,
	}
	cfg := Config{
		Root:              "",
		DeterministicDirs: []string{"internal/core", "internal/trace"},
		RNGFile:           "internal/trace/rng.go",
		PublicDir:         ".",
	}
	files["go.mod"] = fixtureGoMod
	cfg.Root = writeModule(t, files)
	findings, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Rule == "rand" {
			t.Errorf("rng.go should be exempt, got %s", f)
		}
	}
}

func TestWallclockRule(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

import "time"

// Bad reads the wall clock without an audit directive.
func Bad() time.Time { return time.Now() }

// Audited reads it under the directive.
func Audited() time.Time {
	//unsync:allow-wallclock fixture timing
	return time.Now()
}

// Elapsed uses time.Since, which also reads the clock.
func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }
`,
	}
	fs := runFixture(t, files, "wallclock")
	if len(fs) != 2 {
		t.Fatalf("got %d wallclock findings (%v), want 2 (Bad and Elapsed)", len(fs), fs)
	}
	if fs[0].Pos.Line != 6 || fs[1].Pos.Line != 15 {
		t.Errorf("finding lines = %d,%d, want 6,15", fs[0].Pos.Line, fs[1].Pos.Line)
	}
}

func TestMaprangeRule(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/core/core.go": `package core

// Collect appends in map order: order-sensitive, flagged.
func Collect(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Sum folds integers commutatively: order-independent, clean.
func Sum(m map[int]int) int {
	var s int
	for _, v := range m {
		s += v
	}
	return s
}

// SumF accumulates floats: not associative, flagged.
func SumF(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// Audited is suppressed by the directive.
func Audited(m map[int]int) []int {
	var out []int
	//unsync:allow-maprange fixture: consumer sorts the result
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
	}
	fs := runFixture(t, files, "maprange")
	if len(fs) != 2 {
		t.Fatalf("got %d maprange findings (%v), want 2 (Collect and SumF)", len(fs), fs)
	}
	if fs[0].Pos.Line != 6 || fs[1].Pos.Line != 24 {
		t.Errorf("finding lines = %d,%d, want 6,24", fs[0].Pos.Line, fs[1].Pos.Line)
	}
}

func TestUncheckedErrorRule(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/emu2/emu.go": `package emu2

// Run is an exported simulator API returning an error.
func Run() error { return nil }
`,
		"internal/core/core.go": `package core

import "example.com/fixture/internal/emu2"

// Dropped discards the error: flagged.
func Dropped() {
	emu2.Run()
}

// Checked handles it: clean.
func Checked() error {
	return emu2.Run()
}

// Explicit acknowledges the discard: clean.
func Explicit() {
	_ = emu2.Run()
}
`,
	}
	fs := runFixture(t, files, "unchecked-error")
	if len(fs) != 1 {
		t.Fatalf("got %d unchecked-error findings (%v), want 1", len(fs), fs)
	}
	if fs[0].Pos.Line != 7 {
		t.Errorf("finding line = %d, want 7", fs[0].Pos.Line)
	}
}

func TestPanicReachability(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

import "example.com/fixture/internal/core"

// Public is part of the exported API surface.
func Public(n int) { core.Step(n) }
`,
		"internal/core/core.go": `package core

// Step panics on bad input: reachable from fixture.Public, flagged.
func Step(n int) {
	if n < 0 {
		panic("negative")
	}
}

// helper panics but nothing public reaches it: clean.
func helper() {
	panic("unreached")
}

// Audited panics under the directive: clean.
func Audited() {
	//unsync:allow-panic fixture invariant
	panic("audited")
}
`,
	}
	fs := runFixture(t, files, "panic-path")
	if len(fs) != 1 {
		t.Fatalf("got %d panic-path findings (%v), want 1 (Step only)", len(fs), fs)
	}
	if fs[0].Pos.Line != 6 {
		t.Errorf("finding line = %d, want 6", fs[0].Pos.Line)
	}
	if !strings.Contains(fs[0].Msg, "fixture.Public") || !strings.Contains(fs[0].Msg, "core.Step") {
		t.Errorf("message %q does not show the call chain", fs[0].Msg)
	}
}

// TestPanicViaInterface checks class-hierarchy resolution: a panic in a
// concrete method reached only through an interface call is found.
func TestPanicViaInterface(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

import "example.com/fixture/internal/core"

// Drive calls through the interface; the concrete Seek panics.
func Drive(s core.Stream) { core.Drive(s) }

// Make hands out the panicking implementation.
func Make() core.Stream { return core.NewBad() }
`,
		"internal/core/core.go": `package core

// Stream is the dispatch interface.
type Stream interface{ Seek(uint64) }

// Drive seeks through the interface.
func Drive(s Stream) { s.Seek(0) }

type bad struct{}

// NewBad returns the panicking implementation.
func NewBad() Stream { return bad{} }

// Seek implements Stream with a panic.
func (bad) Seek(uint64) {
	panic("cannot seek")
}
`,
	}
	fs := runFixture(t, files, "panic-path")
	if len(fs) != 1 {
		t.Fatalf("got %d panic-path findings (%v), want 1 (bad.Seek via Stream.Seek)", len(fs), fs)
	}
	if fs[0].Pos.Line != 16 {
		t.Errorf("finding line = %d, want 16", fs[0].Pos.Line)
	}
}

// TestFindingString checks the file:line:col rendering the CLI prints.
func TestFindingString(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/core/core.go": `package core

import "math/rand"

// Roll is nondeterministic.
func Roll() int { return rand.Int() }
`,
	}
	fs := runFixture(t, files, "rand")
	if len(fs) == 0 {
		t.Fatal("expected findings")
	}
	s := fs[len(fs)-1].String()
	if !strings.Contains(s, "core.go:6:") || !strings.Contains(s, "rand:") {
		t.Errorf("String() = %q, want file:line:col and rule", s)
	}
}

// TestMeasureLoopRule pins the single-engine discipline: a ResetStats
// call in simulator code outside the engine file marks a hand-rolled
// warmup/measure loop and must be flagged; the engine itself,
// delegating ResetStats methods, and audited sites stay clean.
func TestMeasureLoopRule(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/core/machine.go": `package core

type Machine struct{ insts uint64 }

func (m *Machine) Step()       { m.insts++ }
func (m *Machine) ResetStats() { m.insts = 0 }

// Pair delegates ResetStats to its halves — structural, not a loop.
type Pair struct{ A, B Machine }

func (p *Pair) ResetStats() {
	p.A.ResetStats()
	p.B.ResetStats()
}
`,
		"internal/core/engine.go": `package core

// Drive is the blessed measurement loop.
func Drive(m *Machine, warmup uint64) {
	for m.insts < warmup {
		m.Step()
	}
	m.ResetStats()
}
`,
		"internal/core/rogue.go": `package core

// runByHand re-rolls the warmup/measure loop: must be flagged.
func runByHand(m *Machine) {
	for m.insts < 100 {
		m.Step()
	}
	m.ResetStats()
}

func audited(m *Machine) {
	m.ResetStats() //unsync:allow-measure-loop calibration helper
}
`,
	}
	files["go.mod"] = fixtureGoMod
	root := writeModule(t, files)
	cfg := fixtureConfig(root)
	cfg.EngineFile = "internal/core/engine.go"
	findings, err := Run(cfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var got []Finding
	for _, f := range findings {
		if f.Rule == "measureloop" {
			got = append(got, f)
		}
	}
	if len(got) != 1 {
		t.Fatalf("want exactly the rogue loop flagged, got %v", got)
	}
	if !strings.Contains(got[0].Pos.Filename, "rogue.go") {
		t.Errorf("finding in %s, want rogue.go", got[0].Pos.Filename)
	}
	if !strings.Contains(got[0].Msg, "cmp.Drive") {
		t.Errorf("message should point at the engine: %s", got[0].Msg)
	}
}

// TestUnboundedRule checks the fault-trial budget rule: a loop gated
// only on Halted is flagged, a loop whose condition also carries a
// numeric step budget is not, and //unsync:allow-unbounded audits an
// exception.
func TestUnboundedRule(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/fault/trial.go": `package fault

type machine struct{ Halted bool }

// spin has no budget: a faulted machine may never halt.
func spin(a *machine) {
	for !a.Halted {
		_ = a
	}
}

// bounded carries the watchdog in the loop condition.
func bounded(a *machine) {
	for steps := uint64(0); !a.Halted && steps < 100; steps++ {
		_ = a
	}
}

// pair bounds a two-machine lockstep loop.
func pair(a, b *machine, budget uint64) {
	steps := uint64(0)
	for (!a.Halted || !b.Halted) && steps < budget {
		steps++
	}
}

// audited is an allowed exception.
func audited(a *machine) {
	//unsync:allow-unbounded fixture: progress guaranteed by caller
	for !a.Halted {
		_ = a
	}
}

// unrelated loops without Halted are out of scope.
func unrelated() {
	for i := 0; i < 3; i++ {
		_ = i
	}
}
`,
		"internal/other/other.go": `package other

type machine struct{ Halted bool }

// outside FaultDirs: not in scope even without a budget.
func elsewhere(a *machine) {
	for !a.Halted {
		_ = a
	}
}
`,
	}
	files["go.mod"] = fixtureGoMod
	root := writeModule(t, files)
	cfg := fixtureConfig(root)
	cfg.FaultDirs = []string{"internal/fault"}
	findings, err := Run(cfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var got []Finding
	for _, f := range findings {
		if f.Rule == "unbounded" {
			got = append(got, f)
		}
	}
	if len(got) != 1 {
		t.Fatalf("want exactly the budget-less loop flagged, got %v", got)
	}
	if !strings.Contains(got[0].Pos.Filename, "trial.go") || got[0].Pos.Line != 7 {
		t.Errorf("finding at %s:%d, want trial.go:7", got[0].Pos.Filename, got[0].Pos.Line)
	}
	if !strings.Contains(got[0].Msg, "allow-unbounded") {
		t.Errorf("message should name the audit directive: %s", got[0].Msg)
	}
}

func TestSleepRule(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/worker/worker.go": `package worker

import "time"

// pollRetry is the flagged shape: a bare sleep in a retry loop.
func pollRetry(try func() error) {
	for try() != nil {
		time.Sleep(time.Second)
	}
}

// audited carries a reason.
func audited(try func() error) {
	for try() != nil {
		time.Sleep(time.Second) //unsync:allow-sleep fixture: external system has no notification channel
	}
}

// single is out of scope: not inside a loop.
func single() {
	time.Sleep(time.Millisecond)
}

// nestedLiteral is out of scope: the sleep belongs to the inner
// function, not the loop that defines it.
func nestedLiteral() []func() {
	var fns []func()
	for i := 0; i < 3; i++ {
		fns = append(fns, func() { time.Sleep(time.Millisecond) })
	}
	return fns
}

// rangeRetry is flagged too: range loops are loops.
func rangeRetry(items []int, try func(int) error) {
	for _, it := range items {
		if try(it) != nil {
			time.Sleep(time.Second)
		}
	}
}
`,
		"internal/resilience/backoff.go": `package resilience

import "time"

// Exempt: this package implements the backoff everyone else must use.
func retry(try func() error) {
	for try() != nil {
		time.Sleep(time.Second)
	}
}
`,
	}
	files["go.mod"] = fixtureGoMod
	root := writeModule(t, files)
	cfg := fixtureConfig(root)
	cfg.ResilienceDir = "internal/resilience"
	findings, err := Run(cfg)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var got []Finding
	for _, f := range findings {
		if f.Rule == "sleep" {
			got = append(got, f)
		}
	}
	if len(got) != 2 {
		t.Fatalf("sleep findings = %d, want 2 (pollRetry and rangeRetry): %v", len(got), got)
	}
	for _, f := range got {
		if !strings.Contains(f.Msg, "resilience.Retry") {
			t.Errorf("finding %v should point at resilience.Retry", f)
		}
		if !strings.Contains(f.Pos.Filename, "worker.go") {
			t.Errorf("finding in wrong file: %v", f)
		}
	}
}

func TestTimerLeakRule(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/worker/worker.go": `package worker

import "time"

// heartbeatLoop is the flagged shape: one stranded timer per message.
func heartbeatLoop(msgs <-chan int, quit <-chan struct{}) {
	for {
		select {
		case <-msgs:
		case <-time.After(time.Second):
			return
		case <-quit:
			return
		}
	}
}

// audited carries a reason.
func audited(ticks <-chan int) {
	for range ticks {
		<-time.After(time.Millisecond) //unsync:allow-timer fixture: ticks arrive minutes apart, the pile is bounded at one
	}
}

// hoisted is the prescribed fix: one timer, Stop/drain/Reset.
func hoisted(msgs <-chan int) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	for {
		select {
		case _, ok := <-msgs:
			if !ok {
				return
			}
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
			t.Reset(time.Second)
		case <-t.C:
			return
		}
	}
}

// single is out of scope: not inside a loop.
func single() {
	<-time.After(time.Millisecond)
}

// nestedLiteral is out of scope: the After belongs to the inner
// function, not the loop that defines it.
func nestedLiteral() []func() {
	var fns []func()
	for i := 0; i < 3; i++ {
		fns = append(fns, func() { <-time.After(time.Millisecond) })
	}
	return fns
}

// rangeWait is flagged too: range loops are loops.
func rangeWait(items []int) {
	for range items {
		<-time.After(time.Second)
	}
}
`,
	}
	fs := runFixture(t, files, "timer-leak")
	if len(fs) != 2 {
		t.Fatalf("timer-leak findings = %d, want 2 (heartbeatLoop and rangeWait): %v", len(fs), fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "Stop/drain/Reset") {
			t.Errorf("finding %v should prescribe the hoisted-timer fix", f)
		}
		if !strings.Contains(f.Msg, "allow-timer") {
			t.Errorf("finding %v should name the audit directive", f)
		}
	}
	if fs[0].Pos.Line != 10 || fs[1].Pos.Line != 66 {
		t.Errorf("findings at lines %d and %d, want 10 (heartbeatLoop) and 66 (rangeWait)", fs[0].Pos.Line, fs[1].Pos.Line)
	}
}

// TestTimerLeakStaleAudit: an //unsync:allow-timer that suppresses
// nothing is itself reported — the directive is wired into the audit
// layer, not just the rule.
func TestTimerLeakStaleAudit(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/worker/worker.go": `package worker

import "time"

// wait has no loop, so the directive below suppresses nothing.
func wait() {
	<-time.After(time.Millisecond) //unsync:allow-timer stale: nothing to suppress here
}
`,
	}
	fs := runFixture(t, files, "stale-audit")
	if len(fs) != 1 {
		t.Fatalf("stale-audit findings = %d, want the dead allow-timer flagged: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "allow-timer") {
		t.Errorf("stale-audit finding should name allow-timer: %v", fs[0])
	}
}

// TestFindingJSON pins the machine-readable shape `unsync-lint -json`
// emits: one flat object per finding.
func TestFindingJSON(t *testing.T) {
	f := Finding{
		Pos:  token.Position{Filename: "internal/serve/journal.go", Line: 70, Column: 9},
		Rule: "lock-held-blocking",
		Msg:  "fsync while j.mu is held",
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"internal/serve/journal.go","line":70,"col":9,"rule":"lock-held-blocking","msg":"fsync while j.mu is held"}`
	if string(b) != want {
		t.Errorf("MarshalJSON = %s, want %s", b, want)
	}
}

// TestUncheckedErrorDeferPosition: a deferred call that discards an
// error is flagged, and the finding anchors at the call expression,
// not at the defer keyword.
func TestUncheckedErrorDeferPosition(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/core/core.go": `package core

import "errors"

// Close returns an error callers must observe.
func Close() error { return errors.New("dirty") }

// Use defers Close and drops its error.
func Use() {
	defer Close()
}
`,
	}
	fs := runFixture(t, files, "unchecked-error")
	if len(fs) != 1 {
		t.Fatalf("want 1 unchecked-error finding for the deferred call, got %d: %v", len(fs), fs)
	}
	if fs[0].Pos.Line != 10 || fs[0].Pos.Column != 8 {
		t.Errorf("finding anchors at %d:%d, want 10:8 (the Close call, past the defer keyword)",
			fs[0].Pos.Line, fs[0].Pos.Column)
	}
}

// TestLaneAllocDiagnostic: a builtin append against lane-indexed state
// in a batch-engine file is a per-lane heap allocation and must be
// flagged at the call site.
func TestLaneAllocDiagnostic(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/core/lanes.go": `package core

type Lanes struct {
	Output [][]uint64
}

func (l *Lanes) Emit(i int, v uint64) {
	l.Output[i] = append(l.Output[i], v)
}
`,
	}
	fs := runFixture(t, files, "lane-alloc")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one lane-alloc", fs)
	}
	if fs[0].Pos.Line != 8 {
		t.Errorf("finding at line %d, want 8", fs[0].Pos.Line)
	}
	if !strings.Contains(fs[0].Msg, "allow-alloc") {
		t.Errorf("message %q does not mention the audit directive", fs[0].Msg)
	}
}

// TestLaneAllocAudited: an //unsync:allow-alloc directive with a
// justification suppresses the finding (and is not reported stale).
func TestLaneAllocAudited(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/core/lanes.go": `package core

type Lanes struct {
	Output [][]uint64
}

func (l *Lanes) Emit(i int, v uint64) {
	//unsync:allow-alloc output is rare and bounded by the program
	l.Output[i] = append(l.Output[i], v)
}
`,
	}
	if fs := runFixture(t, files, "lane-alloc"); len(fs) != 0 {
		t.Errorf("audited allocation still flagged: %v", fs)
	}
	files["go.mod"] = fixtureGoMod
	root := writeModule(t, files)
	findings, err := Run(fixtureConfig(root))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Rule == "stale-audit" {
			t.Errorf("live allow-alloc reported stale: %v", f)
		}
	}
}

// TestLaneAllocScope: allocations without a lane index, and lane
// appends outside the configured batch files, are not findings.
func TestLaneAllocScope(t *testing.T) {
	files := map[string]string{
		"fixture.go": "package fixture\n",
		"internal/core/lanes.go": `package core

type Lanes struct {
	Output [][]uint64
	PC     []uint64
}

// NewLanes allocates columns up front — no lane index in sight.
func NewLanes(n int) *Lanes {
	l := &Lanes{}
	l.PC = make([]uint64, n)
	l.Output = make([][]uint64, n)
	return l
}
`,
		"internal/core/other.go": `package core

func Elsewhere(out [][]uint64, i int, v uint64) [][]uint64 {
	out[i] = append(out[i], v)
	return out
}
`,
	}
	if fs := runFixture(t, files, "lane-alloc"); len(fs) != 0 {
		t.Errorf("out-of-scope allocations flagged: %v", fs)
	}
}
