package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// randRule forbids math/rand (and math/rand/v2) in the deterministic
// simulator packages: its global state is seeded from the wall clock,
// so any use breaks bit-reproducible replay. The one exemption is the
// repository's seeded xorshift implementation (cfg.RNGFile).
func (m *module) randRule() []Finding {
	var fs []Finding
	for _, p := range m.pkgs {
		if !p.deterministic {
			continue
		}
		for _, f := range p.files {
			if m.relFile(f.Pos()) == m.cfg.RNGFile {
				continue
			}
			// The import itself.
			for _, spec := range f.Imports {
				path, _ := strconv.Unquote(spec.Path.Value)
				if path == "math/rand" || path == "math/rand/v2" {
					fs = append(fs, m.finding("rand", spec.Pos(),
						"import of %s in deterministic simulator package %s (use the seeded xorshift rng in %s)",
						path, p.path, m.cfg.RNGFile))
				}
			}
			// Every use site, so the diagnostic lands on the call.
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := p.info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				imported := pn.Imported().Path()
				if imported == "math/rand" || imported == "math/rand/v2" {
					fs = append(fs, m.finding("rand", sel.Pos(),
						"call of %s.%s in deterministic simulator package %s (use the seeded xorshift rng in %s)",
						imported, sel.Sel.Name, p.path, m.cfg.RNGFile))
				}
				return true
			})
		}
	}
	return fs
}

// wallclockRule forbids time.Now and time.Since everywhere in the
// module: simulated time is the only clock the simulator may observe.
// Progress/benchmark timing is audited with //unsync:allow-wallclock.
func (m *module) wallclockRule() []Finding {
	var fs []Finding
	for _, p := range m.pkgs {
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := p.info.Uses[id].(*types.PkgName)
				if !ok || pn.Imported().Path() != "time" {
					return true
				}
				if name := sel.Sel.Name; name == "Now" || name == "Since" {
					if !m.allowed("allow-wallclock", sel.Pos()) {
						fs = append(fs, m.finding("wallclock", sel.Pos(),
							"time.%s reads the wall clock; simulation must depend only on simulated time (annotate audited timing code with //unsync:allow-wallclock)",
							name))
					}
				}
				return true
			})
		}
	}
	return fs
}

// maprangeRule flags range-over-map loops in the deterministic packages
// whose body performs an order-sensitive operation: Go randomizes map
// iteration order, so appending to a slice, producing output, sending
// on a channel, or accumulating floating point inside such a loop makes
// results differ from run to run. Order-independent bodies (pure map
// rebuilds, commutative integer folds, all-must-hold checks) are fine;
// audited sites carry //unsync:allow-maprange.
func (m *module) maprangeRule() []Finding {
	var fs []Finding
	for _, p := range m.pkgs {
		if !p.deterministic {
			continue
		}
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				// Find the sink before consulting the directive: a
				// directive on an order-insensitive loop suppresses
				// nothing and must surface as stale.
				if sink := m.orderSensitiveSink(p, rng.Body); sink != "" {
					if m.allowed("allow-maprange", rng.Pos()) {
						return true
					}
					fs = append(fs, m.finding("maprange", rng.Pos(),
						"range over map with order-sensitive body (%s); map iteration order is randomized — iterate sorted keys or annotate with //unsync:allow-maprange",
						sink))
				}
				return true
			})
		}
	}
	return fs
}

// orderSensitiveSink scans a range-over-map body for operations whose
// result depends on iteration order. It returns a description of the
// first such sink, or "".
func (m *module) orderSensitiveSink(p *pkgInfo, body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if b, ok := p.info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
					sink = "append"
					return false
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					if pn, ok := p.info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
						sink = "fmt output"
						return false
					}
				}
			}
		case *ast.SendStmt:
			sink = "channel send"
			return false
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if tv, ok := p.info.Types[lhs]; ok {
						if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
							sink = "floating-point accumulation"
							return false
						}
					}
				}
			}
		}
		return true
	})
	return sink
}

// uncheckedRule flags statements in the deterministic packages that
// call an exported function of this module returning an error and
// discard the result entirely — both plain expression statements and
// `defer pkg.Fn()`, whose return value is always discarded. Findings
// anchor at the call, not the defer keyword, so a diagnostic on a
// deferred call points at the offending expression. A silently ignored
// simulator error can turn a reproducible failure into a silently
// wrong result.
func (m *module) uncheckedRule() []Finding {
	var fs []Finding
	for _, p := range m.pkgs {
		if !p.deterministic {
			continue
		}
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch stmt := n.(type) {
				case *ast.ExprStmt:
					call, _ = ast.Unparen(stmt.X).(*ast.CallExpr)
				case *ast.DeferStmt:
					call = stmt.Call
				}
				if call == nil {
					return true
				}
				fn := calleeFunc(p.info, call)
				if fn == nil || !fn.Exported() || fn.Pkg() == nil {
					return true
				}
				// Only the module's own APIs are in scope.
				if !hasModulePrefix(m.path, fn.Pkg().Path()) {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				res := sig.Results()
				if res.Len() == 0 {
					return true
				}
				last := res.At(res.Len() - 1).Type()
				if named, ok := last.(*types.Named); !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
					return true
				}
				fs = append(fs, m.finding("unchecked-error", call.Pos(),
					"result of %s.%s returns an error that is discarded; handle it or assign it explicitly",
					fn.Pkg().Name(), fn.Name()))
				return true
			})
		}
	}
	return fs
}

// measureLoopRule keeps the measurement discipline in ONE place: a
// ResetStats call marks the warmup→measure transition of a hand-rolled
// run loop, and history shows such copies drift (different warmup
// gating, different injection clocks) until results stop being
// comparable across schemes. Only the engine file may make that call.
// Delegating ResetStats methods (a pair resetting its cores) are
// structural, not loops, and stay legal; audited exceptions carry
// //unsync:allow-measure-loop.
func (m *module) measureLoopRule() []Finding {
	if m.cfg.EngineFile == "" {
		return nil
	}
	var fs []Finding
	for _, p := range m.pkgs {
		if !p.deterministic {
			continue
		}
		for _, f := range p.files {
			if m.relFile(f.Pos()) == m.cfg.EngineFile {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Name.Name == "ResetStats" {
					continue // delegation inside a ResetStats method
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "ResetStats" {
						return true
					}
					if m.allowed("allow-measure-loop", call.Pos()) {
						return true
					}
					fs = append(fs, m.finding("measureloop", call.Pos(),
						"ResetStats outside the measurement engine (%s) marks a hand-rolled warmup/measure loop; run the machine through cmp.Drive instead (or annotate an audited site with //unsync:allow-measure-loop)",
						m.cfg.EngineFile))
					return true
				})
			}
		}
	}
	return fs
}

// unboundedRule flags fault-trial loops that lack a step/rollback
// budget. In the fault-trial packages (cfg.FaultDirs) a for-loop whose
// condition observes a machine's Halted flag is gated on the faulted
// machine making progress — but an injected upset can corrupt the very
// state that drives progress (a loop counter, the PC), so `for
// !a.Halted` alone can spin forever. The budget must live in the loop
// condition itself (a numeric comparison alongside the Halted test),
// where it is impossible to skip; audited exceptions carry
// //unsync:allow-unbounded.
func (m *module) unboundedRule() []Finding {
	var fs []Finding
	for _, p := range m.pkgs {
		if !isDeterministic(m.cfg.FaultDirs, p.relDir) {
			continue
		}
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok || loop.Cond == nil {
					return true
				}
				if !mentionsHalted(loop.Cond) || hasNumericBound(p, loop.Cond) {
					return true
				}
				if m.allowed("allow-unbounded", loop.Pos()) {
					return true
				}
				fs = append(fs, m.finding("unbounded", loop.Pos(),
					"fault-trial loop gated only on Halted; a faulted machine may never halt — add a numeric step/rollback budget to the loop condition (or annotate an audited site with //unsync:allow-unbounded)"))
				return true
			})
		}
	}
	return fs
}

// mentionsHalted reports whether the expression reads a field or
// method named Halted.
func mentionsHalted(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Halted" {
			found = true
			return false
		}
		return !found
	})
	return found
}

// hasNumericBound reports whether the expression contains an ordered
// comparison (<, <=, >, >=) between numeric operands — the shape of a
// step/rollback budget check.
func hasNumericBound(p *pkgInfo, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return !found
		}
		switch bin.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			if tv, ok := p.info.Types[bin.X]; ok {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

func hasModulePrefix(modPath, pkgPath string) bool {
	return pkgPath == modPath || len(pkgPath) > len(modPath) &&
		pkgPath[:len(modPath)] == modPath && pkgPath[len(modPath)] == '/'
}

// calleeFunc resolves the statically called function of a call
// expression, or nil for builtins, conversions and dynamic calls.
// Instantiated generics normalize to their origin, so call sites match
// the declared bodies the call graph and summaries are keyed by.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// sleepRule flags time.Sleep inside a for-loop anywhere except the
// resilience package (cfg.ResilienceDir): a bare sleep in a loop is a
// hand-rolled retry — fixed cadence, no jitter, no context, no cap —
// exactly the synchronized-stampede shape resilience.Retry with its
// full-jitter Backoff exists to replace. Polling loops with an audited
// reason carry //unsync:allow-sleep.
func (m *module) sleepRule() []Finding {
	var fs []Finding
	seen := map[token.Pos]bool{}
	for _, p := range m.pkgs {
		if p.relDir == m.cfg.ResilienceDir ||
			(len(m.cfg.ResilienceDir) > 0 && len(p.relDir) > len(m.cfg.ResilienceDir) &&
				p.relDir[:len(m.cfg.ResilienceDir)+1] == m.cfg.ResilienceDir+"/") {
			continue
		}
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					body = loop.Body
				case *ast.RangeStmt:
					body = loop.Body
				default:
					return true
				}
				ast.Inspect(body, func(inner ast.Node) bool {
					// Sleeps inside a nested function literal belong to
					// that function, not this loop.
					if _, isLit := inner.(*ast.FuncLit); isLit {
						return false
					}
					call, ok := inner.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Sleep" {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					pn, ok := p.info.Uses[id].(*types.PkgName)
					if !ok || pn.Imported().Path() != "time" {
						return true
					}
					if seen[call.Pos()] || m.allowed("allow-sleep", call.Pos()) {
						return true
					}
					seen[call.Pos()] = true
					fs = append(fs, m.finding("sleep", call.Pos(),
						"time.Sleep in a loop is a hand-rolled retry; use resilience.Retry with a jittered Backoff, or audit a genuine polling loop with //unsync:allow-sleep"))
					return true
				})
				return true
			})
		}
	}
	return fs
}

// timerLeakRule flags time.After inside a for-loop (module-wide): each
// call allocates a timer the runtime holds until it fires, so a
// select-with-After in a streaming or heartbeat loop strands one timer
// per iteration — under churn, that is an unbounded pile of pending
// timers. The fix is one time.NewTimer hoisted out of the loop with the
// Stop/drain/Reset discipline (see internal/fabric's lease heartbeat);
// a loop whose iteration cadence genuinely bounds the pile can carry
// //unsync:allow-timer with the reason.
func (m *module) timerLeakRule() []Finding {
	var fs []Finding
	seen := map[token.Pos]bool{}
	for _, p := range m.pkgs {
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					body = loop.Body
				case *ast.RangeStmt:
					body = loop.Body
				default:
					return true
				}
				ast.Inspect(body, func(inner ast.Node) bool {
					// An After inside a nested function literal belongs to
					// that function, not this loop.
					if _, isLit := inner.(*ast.FuncLit); isLit {
						return false
					}
					call, ok := inner.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "After" {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					pn, ok := p.info.Uses[id].(*types.PkgName)
					if !ok || pn.Imported().Path() != "time" {
						return true
					}
					if seen[call.Pos()] || m.allowed("allow-timer", call.Pos()) {
						return true
					}
					seen[call.Pos()] = true
					fs = append(fs, m.finding("timer-leak", call.Pos(),
						"time.After in a loop strands one pending timer per iteration; hoist a time.NewTimer with Stop/drain/Reset, or audit a bounded-cadence loop with //unsync:allow-timer"))
					return true
				})
				return true
			})
		}
	}
	return fs
}

// laneAllocRule guards the batched lane engine's hot loops: the step
// path of the structure-of-arrays trial engine (cfg.BatchFiles) runs
// once per lane per instruction, so a heap allocation against
// lane-indexed state there turns a throughput kernel into an allocator
// benchmark. A builtin append or make in a statement that indexes
// lane state must either move out of the per-step path or carry an
// //unsync:allow-alloc audit justifying the allocation.
func (m *module) laneAllocRule() []Finding {
	var fs []Finding
	batch := make(map[string]bool, len(m.cfg.BatchFiles))
	for _, f := range m.cfg.BatchFiles {
		batch[f] = true
	}
	if len(batch) == 0 {
		return nil
	}
	for _, p := range m.pkgs {
		for _, f := range p.files {
			if !batch[m.relFile(f.Pos())] {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				// Only leaf statements: an allocation and a lane index in
				// the same assignment or expression statement is what
				// makes the alloc per-lane.
				switch n.(type) {
				case *ast.AssignStmt, *ast.ExprStmt:
				default:
					return true
				}
				call := builtinAlloc(p, n)
				if call == nil || !containsIndex(n) {
					return true
				}
				if m.allowed("allow-alloc", call.Pos()) {
					return true
				}
				fs = append(fs, m.finding("lane-alloc", call.Pos(),
					"per-lane heap allocation in the batch engine: append/make on lane-indexed state runs once per lane per step — hoist the allocation out of the step path or audit it with //unsync:allow-alloc"))
				return true
			})
		}
	}
	return fs
}

// builtinAlloc returns the first call to the builtin append or make
// inside n, or nil.
func builtinAlloc(p *pkgInfo, n ast.Node) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(n, func(inner ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := inner.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := p.info.Uses[id].(*types.Builtin); ok &&
			(b.Name() == "append" || b.Name() == "make") {
			found = call
			return false
		}
		return true
	})
	return found
}

// containsIndex reports whether n contains an index expression —
// the syntactic marker of lane-indexed state in the batch engine.
func containsIndex(n ast.Node) bool {
	var found bool
	ast.Inspect(n, func(inner ast.Node) bool {
		if _, ok := inner.(*ast.IndexExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
