// Package lint is the repository's determinism linter. The paper's
// evaluation (Figs. 4-6) rests on bit-reproducible simulation: every
// fault-injection campaign must replay identically across runs,
// machines and architecture configurations. This package statically
// enforces the invariants that make that true over the deterministic
// simulator packages:
//
//   - no math/rand (global functions, rand.New, or any other use)
//     outside internal/trace's seeded xorshift generator;
//   - no wall-clock reads (time.Now, time.Since) except sites audited
//     with a //unsync:allow-wallclock directive;
//   - no order-sensitive iteration over maps (appends, fmt output,
//     float accumulation or channel sends inside a range-over-map)
//     except sites audited with //unsync:allow-maprange;
//   - no silently discarded error returns from the module's own
//     exported simulator APIs;
//   - no panic reachable from the public unsync package API except
//     invariant checks audited with //unsync:allow-panic;
//   - no hand-rolled warmup/measure loops: outside the measurement
//     engine (cfg.EngineFile), simulator code may not call ResetStats —
//     every run must go through cmp.Drive so warmup gating and fault
//     injection follow one discipline — except delegating ResetStats
//     methods and sites audited with //unsync:allow-measure-loop;
//   - no time.Sleep inside a for-loop outside the resilience package
//     (cfg.ResilienceDir): a bare sleep-in-loop is a hand-rolled retry
//     that bypasses the jittered resilience.Backoff — except polling
//     loops audited with //unsync:allow-sleep;
//   - no time.After inside a for-loop (module-wide): each call strands
//     one pending timer until it fires, an unbounded pile under churn —
//     hoist one time.NewTimer with Stop/drain/Reset, except
//     bounded-cadence loops audited with //unsync:allow-timer;
//   - no unbounded fault-trial loops: in the fault-trial packages
//     (cfg.FaultDirs), a for-loop whose condition observes a machine's
//     Halted flag must also carry a numeric step/rollback budget in
//     that condition — a faulted machine may never halt (a corrupted
//     loop counter livelocks), so the watchdog bound belongs in the
//     loop condition itself — except sites audited with
//     //unsync:allow-unbounded;
//   - no per-lane heap allocation in the batched lane engine: in the
//     structure-of-arrays trial-engine files (cfg.BatchFiles), a
//     builtin append or make in a statement that indexes lane state
//     runs once per lane per step and belongs outside the step path —
//     except sites audited with //unsync:allow-alloc.
//
// On top of the determinism rules sits a concurrency-safety layer
// (conc.go) guarding the campaign, sweep and serve planes — the code
// whose goroutines, contexts and locks the deterministic kill/resume
// and drain/restart invariants depend on:
//
//   - goroutine-leak: every goroutine launched in module code must be
//     provably joinable (WaitGroup Done/Wait, a ctx.Done or quit-channel
//     receive, or a range over a work channel, reachable through the
//     call graph) — except sites audited with //unsync:allow-goroutine;
//   - ctx-propagation: a function that accepts a context.Context may
//     not call a module function that has a *Context variant without
//     passing the context — except sites audited with
//     //unsync:allow-ctx;
//   - lock-held-blocking: no channel operation, select without default,
//     fsync, long-running engine call or resilience.Retry while a
//     sync.Mutex/RWMutex is provably held — except sites audited with
//     //unsync:allow-lock-held;
//   - blocking-send: in the streaming/pump packages (cfg.StreamDirs), a
//     channel send inside a for/range loop must be a select clause with
//     a done-style receive or a default clause, so shutdown can always
//     interrupt the loop — except sites audited with
//     //unsync:allow-send;
//   - stale-audit / bare-audit: an //unsync:allow-* directive that no
//     longer suppresses any finding, names no known rule, or carries no
//     justification text is itself a finding, so the audit surface can
//     only shrink.
//
// It is built only on the standard library (go/parser, go/ast,
// go/types, go/importer) so that `go run ./cmd/unsync-lint ./...` works
// in any environment that can build the module.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Finding is one diagnostic.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding as file:line:col: rule: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// MarshalJSON renders the finding in the stable machine-readable shape
// emitted by `unsync-lint -json`, one object per diagnostic:
// {"file","line","col","rule","msg"}.
func (f Finding) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Col  int    `json:"col"`
		Rule string `json:"rule"`
		Msg  string `json:"msg"`
	}{f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg})
}

// Config selects what to analyze.
type Config struct {
	// Root is the module root directory (the directory holding go.mod).
	Root string
	// DeterministicDirs are module-relative package directories (and
	// their subdirectories) subject to the determinism rules.
	DeterministicDirs []string
	// RNGFile is the one module-relative file allowed to implement
	// random number generation.
	RNGFile string
	// EngineFile is the one module-relative file allowed to drive a
	// warmup/measure loop (call ResetStats on a machine). Everything
	// else must go through the measurement engine it implements.
	EngineFile string
	// PublicDir is the module-relative directory of the public API
	// package whose exported surface roots the panic-reachability
	// analysis ("." for the module root).
	PublicDir string
	// FaultDirs are the module-relative fault-trial package directories
	// (and their subdirectories) where every loop observing a machine's
	// Halted flag must also carry a numeric step/rollback budget in its
	// condition (the unbounded rule).
	FaultDirs []string
	// ResilienceDir is the one module-relative package directory allowed
	// to sleep inside loops — it implements the jittered backoff that
	// the sleep rule points everyone else at.
	ResilienceDir string
	// BatchFiles are the module-relative files implementing the batched
	// structure-of-arrays lane engine, whose per-step hot loops the
	// lane-alloc rule guards against per-lane heap allocation.
	BatchFiles []string
	// StreamDirs are the module-relative package directories (and their
	// subdirectories) whose pump/operator loops the blocking-send rule
	// guards: a channel send inside a loop there must sit in a select
	// with a done-style receive or a default clause.
	StreamDirs []string
}

// DefaultConfig returns the repository's lint policy.
func DefaultConfig(root string) Config {
	return Config{
		Root: root,
		DeterministicDirs: []string{
			"internal/core",
			"internal/cmp",
			"internal/pipeline",
			"internal/emu",
			"internal/fault",
			"internal/campaign",
			"internal/reunion",
			"internal/trace",
			"internal/experiments",
		},
		RNGFile:       "internal/trace/rng.go",
		EngineFile:    "internal/cmp/engine.go",
		PublicDir:     ".",
		FaultDirs:     []string{"internal/fault", "internal/campaign"},
		ResilienceDir: "internal/resilience",
		BatchFiles:    []string{"internal/emu/lanes.go", "internal/fault/batch.go"},
		StreamDirs: []string{
			"internal/stream",
			"internal/fabric",
			"internal/serve",
			"internal/sweep",
		},
	}
}

// pkgInfo is one loaded, typechecked package.
type pkgInfo struct {
	relDir        string // module-relative directory, "." for the root
	path          string // import path
	files         []*ast.File
	pkg           *types.Package
	info          *types.Info
	deterministic bool
}

// directive is one //unsync: audit comment, tracked so the stale-audit
// rule can report directives that no longer suppress anything.
type directive struct {
	name string // e.g. "allow-panic"
	arg  string // justification text following the name
	pos  token.Pos
	used bool // a rule consulted it and suppressed a finding
}

// module is the fully loaded analysis unit.
type module struct {
	cfg    Config
	fset   *token.FileSet
	path   string // module path from go.mod
	pkgs   []*pkgInfo
	byPath map[string]*pkgInfo

	// directives maps file name -> line -> directives on that line.
	directives map[string]map[int][]*directive

	cg *callGraph // built lazily by callgraph()
	ci *concInfo  // built lazily by conc()
}

// Run loads the module under cfg.Root and applies every rule, returning
// findings sorted by position.
func Run(cfg Config) ([]Finding, error) {
	m, err := load(cfg)
	if err != nil {
		return nil, err
	}
	var fs []Finding
	fs = append(fs, m.randRule()...)
	fs = append(fs, m.wallclockRule()...)
	fs = append(fs, m.maprangeRule()...)
	fs = append(fs, m.uncheckedRule()...)
	fs = append(fs, m.panicRule()...)
	fs = append(fs, m.measureLoopRule()...)
	fs = append(fs, m.unboundedRule()...)
	fs = append(fs, m.sleepRule()...)
	fs = append(fs, m.timerLeakRule()...)
	fs = append(fs, m.laneAllocRule()...)
	fs = append(fs, m.goroutineRule()...)
	fs = append(fs, m.ctxRule()...)
	fs = append(fs, m.lockRule()...)
	fs = append(fs, m.blockingSendRule()...)
	// Last: every other rule has marked the directives it consulted, so
	// the audit rules can report the ones that suppressed nothing.
	fs = append(fs, m.auditRules()...)
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return fs[i].Rule < fs[j].Rule
	})
	return fs, nil
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// load parses and typechecks every package of the module rooted at
// cfg.Root (non-test files only), resolving intra-module imports from
// the freshly typechecked packages and everything else from the
// standard library importers.
func load(cfg Config) (*module, error) {
	gomod, err := os.ReadFile(filepath.Join(cfg.Root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	match := moduleRe.FindSubmatch(gomod)
	if match == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", cfg.Root)
	}
	m := &module{
		cfg:        cfg,
		fset:       token.NewFileSet(),
		path:       string(match[1]),
		byPath:     make(map[string]*pkgInfo),
		directives: make(map[string]map[int][]*directive),
	}

	// Discover package directories.
	var dirs []string
	err = filepath.WalkDir(cfg.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != cfg.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking %s: %w", cfg.Root, err)
	}

	// Parse each directory that holds non-test Go files.
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		var files []*ast.File
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(cfg.Root, dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		rel = filepath.ToSlash(rel)
		p := &pkgInfo{relDir: rel, path: importPath(m.path, rel), files: files}
		p.deterministic = isDeterministic(cfg.DeterministicDirs, rel)
		m.pkgs = append(m.pkgs, p)
		m.byPath[p.path] = p
	}
	sort.Slice(m.pkgs, func(i, j int) bool { return m.pkgs[i].path < m.pkgs[j].path })

	// Typecheck in dependency order.
	imp := &chainImporter{
		mod: m.byPath,
		std: importer.Default(),
		src: importer.ForCompiler(m.fset, "source", nil),
	}
	seen := make(map[*pkgInfo]bool)
	var visit func(p *pkgInfo) error
	visit = func(p *pkgInfo) error {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, f := range p.files {
			for _, spec := range f.Imports {
				path, _ := strconv.Unquote(spec.Path.Value)
				if dep, ok := m.byPath[path]; ok {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		return m.typecheck(p, imp)
	}
	for _, p := range m.pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	for _, p := range m.pkgs {
		for _, f := range p.files {
			m.collectDirectives(f)
		}
	}
	return m, nil
}

func (m *module) typecheck(p *pkgInfo, imp types.Importer) error {
	p.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.path, m.fset, p.files, p.info)
	if err != nil {
		return fmt.Errorf("lint: typecheck %s: %w", p.path, err)
	}
	p.pkg = pkg
	return nil
}

// chainImporter resolves module-internal import paths from the
// already-typechecked packages, and everything else from the compiled
// stdlib export data, falling back to typechecking the standard
// library from source.
type chainImporter struct {
	mod map[string]*pkgInfo
	std types.Importer
	src types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.mod[path]; ok {
		if p.pkg == nil {
			return nil, fmt.Errorf("lint: import cycle or unprocessed package %q", path)
		}
		return p.pkg, nil
	}
	if pkg, err := c.std.Import(path); err == nil {
		return pkg, nil
	}
	return c.src.Import(path)
}

func importPath(modPath, relDir string) string {
	if relDir == "." {
		return modPath
	}
	return modPath + "/" + relDir
}

func isDeterministic(dirs []string, rel string) bool {
	for _, d := range dirs {
		if rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// collectDirectives indexes //unsync: directive comments by file and line.
func (m *module) collectDirectives(f *ast.File) {
	const prefix = "//unsync:"
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, prefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, prefix)
			name, arg := rest, ""
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				name, arg = rest[:i], strings.TrimSpace(rest[i+1:])
			}
			pos := m.fset.Position(c.Pos())
			byLine := m.directives[pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]*directive)
				m.directives[pos.Filename] = byLine
			}
			byLine[pos.Line] = append(byLine[pos.Line], &directive{name: name, arg: arg, pos: c.Pos()})
		}
	}
}

// allowed reports whether the given directive appears on the node's
// line or on the line immediately above it, marking the directive used
// (it suppressed a finding) — so call it only once the primitive
// condition of a rule has already matched.
func (m *module) allowed(name string, pos token.Pos) bool {
	p := m.fset.Position(pos)
	byLine := m.directives[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range byLine[line] {
			if d.name == name {
				d.used = true
				return true
			}
		}
	}
	return false
}

func (m *module) finding(rule string, pos token.Pos, format string, args ...any) Finding {
	return Finding{Pos: m.fset.Position(pos), Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// relFile returns the module-relative path of the file containing pos.
func (m *module) relFile(pos token.Pos) string {
	file := m.fset.Position(pos).Filename
	rel, err := filepath.Rel(m.cfg.Root, file)
	if err != nil {
		return file
	}
	return filepath.ToSlash(rel)
}
