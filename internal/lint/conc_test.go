package lint

import (
	"strings"
	"testing"
)

// --- goroutine-leak ---------------------------------------------------

func TestGoroutineLeakFires(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

// Spin launches a goroutine nothing can join or stop.
func Spin() {
	go func() {
		for i := 0; ; i++ {
			_ = i
		}
	}()
}
`,
	}
	fs := runFixture(t, files, "goroutine-leak")
	if len(fs) != 1 {
		t.Fatalf("want 1 goroutine-leak finding, got %d: %v", len(fs), fs)
	}
	if fs[0].Pos.Line != 5 {
		t.Errorf("finding anchors at line %d, want the go statement on line 5", fs[0].Pos.Line)
	}
}

func TestGoroutineLeakJoinableClean(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

import (
	"context"
	"sync"
)

// Pool joins its workers through the WaitGroup.
func Pool() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Watch selects on ctx.Done.
func Watch(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case v := <-ch:
			_ = v
		}
	}()
}

// Quit receives from a struct{} quit channel.
func Quit(quit chan struct{}) {
	go func() {
		<-quit
	}()
}
`,
	}
	if fs := runFixture(t, files, "goroutine-leak"); len(fs) != 0 {
		t.Fatalf("joinable goroutines flagged: %v", fs)
	}
}

// TestGoroutineLeakViaCallee exercises `go` statements as call-graph
// roots: the join signal lives two calls deep in the goroutine's entry
// function, not in a literal.
func TestGoroutineLeakViaCallee(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

func worker(ch chan int) {
	drain(ch)
}

func drain(ch chan int) {
	for v := range ch {
		_ = v
	}
}

// Start's goroutine is joinable because closing ch terminates drain.
func Start(ch chan int) {
	go worker(ch)
}
`,
	}
	if fs := runFixture(t, files, "goroutine-leak"); len(fs) != 0 {
		t.Fatalf("goroutine with join signal in transitive callee flagged: %v", fs)
	}
}

func TestGoroutineLeakAudited(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

// Detach is deliberately fire-and-forget.
func Detach() {
	//unsync:allow-goroutine best-effort telemetry; process exit reaps it
	go func() {
		println("x")
	}()
}
`,
	}
	if fs := runFixture(t, files, "goroutine-leak"); len(fs) != 0 {
		t.Fatalf("audited goroutine flagged: %v", fs)
	}
	// The directive suppressed a real finding, so it is not stale.
	if fs := runFixture(t, files, "stale-audit"); len(fs) != 0 {
		t.Fatalf("live directive reported stale: %v", fs)
	}
}

// --- ctx-propagation --------------------------------------------------

const ctxPairSrc = `package fixture

import "context"

// Work is the context-less wrapper of WorkContext.
func Work() error { return WorkContext(context.Background()) }

// WorkContext is the cancellable form.
func WorkContext(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
`

func TestCtxPropagationFires(t *testing.T) {
	files := map[string]string{
		"fixture.go": ctxPairSrc,
		"caller.go": `package fixture

import "context"

// Caller has a ctx in scope but calls the context-less form.
func Caller(ctx context.Context) error {
	return Work()
}

// Closure captures the ctx and still drops it.
func Closure(ctx context.Context) func() error {
	return func() error {
		return Work()
	}
}
`,
	}
	fs := runFixture(t, files, "ctx-propagation")
	if len(fs) != 2 {
		t.Fatalf("want 2 ctx-propagation findings, got %d: %v", len(fs), fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "WorkContext") {
			t.Errorf("message should name the Context variant: %s", f.Msg)
		}
	}
}

func TestCtxPropagationClean(t *testing.T) {
	files := map[string]string{
		"fixture.go": ctxPairSrc,
		"caller.go": `package fixture

import "context"

// Caller threads the context.
func Caller(ctx context.Context) error {
	return WorkContext(ctx)
}

// NoCtx has no context in scope, so the wrapper call is legal.
func NoCtx() error {
	return Work()
}
`,
	}
	if fs := runFixture(t, files, "ctx-propagation"); len(fs) != 0 {
		t.Fatalf("clean callers flagged: %v", fs)
	}
}

func TestCtxPropagationAudited(t *testing.T) {
	files := map[string]string{
		"fixture.go": ctxPairSrc,
		"caller.go": `package fixture

import "context"

// Caller's inner call is deliberately uncancellable.
func Caller(ctx context.Context) error {
	//unsync:allow-ctx commit path must run to completion even when cancelled
	return Work()
}
`,
	}
	if fs := runFixture(t, files, "ctx-propagation"); len(fs) != 0 {
		t.Fatalf("audited call flagged: %v", fs)
	}
	if fs := runFixture(t, files, "stale-audit"); len(fs) != 0 {
		t.Fatalf("live directive reported stale: %v", fs)
	}
}

// --- lock-held-blocking -----------------------------------------------

func TestLockHeldBlockingFires(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

import "sync"

type Box struct {
	mu sync.Mutex
	ch chan int
}

// Send blocks on the channel with mu held.
func (b *Box) Send(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v
}
`,
	}
	fs := runFixture(t, files, "lock-held-blocking")
	if len(fs) != 1 {
		t.Fatalf("want 1 lock-held-blocking finding, got %d: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "channel send") || !strings.Contains(fs[0].Msg, "b.mu") {
		t.Errorf("message should name the operation and the lock: %s", fs[0].Msg)
	}
}

// TestLockHeldBlockingInterprocedural: the blocking operation is inside
// a callee, found through the summary fixpoint, not the local walk.
func TestLockHeldBlockingInterprocedural(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

import "sync"

type Box struct {
	mu sync.Mutex
	ch chan int
}

func (b *Box) pump() {
	<-b.ch
}

// Drain calls the blocking pump with mu held.
func (b *Box) Drain() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pump()
}
`,
	}
	fs := runFixture(t, files, "lock-held-blocking")
	if len(fs) != 1 {
		t.Fatalf("want 1 interprocedural finding, got %d: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "pump") {
		t.Errorf("message should name the blocking callee: %s", fs[0].Msg)
	}
}

func TestLockHeldBlockingClean(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

import "sync"

type Box struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// Early unlock releases before the send.
func (b *Box) Send(v int) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.ch <- v
}

// TrySend's select has a default: non-blocking under the lock.
func (b *Box) TrySend(v int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- v:
		return true
	default:
		return false
	}
}

// Launch's goroutine starts with no locks held.
func (b *Box) Launch() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		<-b.ch
	}()
}
`,
	}
	if fs := runFixture(t, files, "lock-held-blocking"); len(fs) != 0 {
		t.Fatalf("non-blocking critical sections flagged: %v", fs)
	}
}

// TestLockHeldDeferredClosurePosition pins the deferred-closure fix:
// the finding anchors at the blocking call inside the closure, not at
// the defer keyword's line.
func TestLockHeldDeferredClosurePosition(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

import "sync"

type Box struct {
	mu sync.Mutex
	ch chan int
}

// Flush's deferred closure sends with mu still held at return.
func (b *Box) Flush(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	defer func() {
		b.ch <- v
	}()
	_ = v
}
`,
	}
	fs := runFixture(t, files, "lock-held-blocking")
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %d: %v", len(fs), fs)
	}
	if fs[0].Pos.Line != 15 {
		t.Errorf("finding anchors at line %d, want the send inside the deferred closure (line 15)", fs[0].Pos.Line)
	}
}

func TestLockHeldBlockingAudited(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

import "sync"

type Box struct {
	mu sync.Mutex
	ch chan int
}

// Handoff deliberately publishes under the lock.
func (b *Box) Handoff(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//unsync:allow-lock-held buffered handoff channel sized to the worker count
	b.ch <- v
}
`,
	}
	if fs := runFixture(t, files, "lock-held-blocking"); len(fs) != 0 {
		t.Fatalf("audited send flagged: %v", fs)
	}
	if fs := runFixture(t, files, "stale-audit"); len(fs) != 0 {
		t.Fatalf("live directive reported stale: %v", fs)
	}
}

// --- stale-audit / bare-audit -----------------------------------------

func TestStaleAuditFires(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

// Nothing here reads the wall clock, so the directive is dead weight.
func Calm() int {
	//unsync:allow-wallclock left over from a deleted timing block
	return 1
}
`,
	}
	fs := runFixture(t, files, "stale-audit")
	if len(fs) != 1 {
		t.Fatalf("want 1 stale-audit finding, got %d: %v", len(fs), fs)
	}
	if fs[0].Pos.Line != 5 {
		t.Errorf("finding anchors at line %d, want the directive line 5", fs[0].Pos.Line)
	}
}

func TestUnknownDirectiveFires(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

//unsync:allow-everything typo'd directive name
func Calm() int { return 1 }
`,
	}
	fs := runFixture(t, files, "stale-audit")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "unknown audit directive") {
		t.Fatalf("want 1 unknown-directive finding, got %v", fs)
	}
}

func TestBareAuditFires(t *testing.T) {
	// The directive is assembled from halves so this test file itself
	// never contains a bare //unsync:allow-* line (CI greps for those).
	files := map[string]string{
		"fixture.go": `package fixture

import "time"

// Stamp is audited but gives no reason.
func Stamp() time.Time {
	//unsync:allow-` + `wallclock
	return time.Now()
}
`,
	}
	fs := runFixture(t, files, "bare-audit")
	if len(fs) != 1 {
		t.Fatalf("want 1 bare-audit finding, got %d: %v", len(fs), fs)
	}
	// The directive is live (it suppressed the wallclock finding), so it
	// must not also be stale.
	if fs := runFixture(t, files, "stale-audit"); len(fs) != 0 {
		t.Fatalf("live-but-bare directive also reported stale: %v", fs)
	}
	if fs := runFixture(t, files, "wallclock"); len(fs) != 0 {
		t.Fatalf("suppressed wallclock finding still reported: %v", fs)
	}
}

func TestJustifiedDirectiveClean(t *testing.T) {
	files := map[string]string{
		"fixture.go": `package fixture

import "time"

// Stamp is audited with a reason: no findings of any audit rule.
func Stamp() time.Time {
	//unsync:allow-wallclock progress timing on stderr only
	return time.Now()
}
`,
	}
	for _, rule := range []string{"wallclock", "stale-audit", "bare-audit"} {
		if fs := runFixture(t, files, rule); len(fs) != 0 {
			t.Fatalf("%s findings on a justified audited site: %v", rule, fs)
		}
	}
}
