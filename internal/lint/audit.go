package lint

import (
	"sort"
	"strings"
)

// knownDirectives maps every //unsync:allow-* audit directive to the
// rule it suppresses. Adding a rule with an audit escape means adding
// a row here, or the directive is reported as unknown.
var knownDirectives = map[string]string{
	"allow-wallclock":    "wallclock",
	"allow-maprange":     "maprange",
	"allow-panic":        "panic-path",
	"allow-measure-loop": "measureloop",
	"allow-unbounded":    "unbounded",
	"allow-sleep":        "sleep",
	"allow-timer":        "timer-leak",
	"allow-goroutine":    "goroutine-leak",
	"allow-ctx":          "ctx-propagation",
	"allow-lock-held":    "lock-held-blocking",
	"allow-alloc":        "lane-alloc",
	"allow-send":         "blocking-send",
}

// auditRules polices the audit surface itself, after every other rule
// has run and marked the directives it consulted:
//
//   - stale-audit: an //unsync:allow-* directive that names no known
//     rule, or that suppressed no finding this run, is itself a
//     finding — the audit surface can only shrink, never silently rot;
//   - bare-audit: a live directive with no trailing justification text
//     is a finding — every audited site must say why it is safe.
func (m *module) auditRules() []Finding {
	var fs []Finding
	files := make([]string, 0, len(m.directives))
	for file := range m.directives {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		byLine := m.directives[file]
		lines := make([]int, 0, len(byLine))
		for line := range byLine {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			for _, d := range byLine[line] {
				if !strings.HasPrefix(d.name, "allow-") {
					continue
				}
				rule, known := knownDirectives[d.name]
				if !known {
					fs = append(fs, m.finding("stale-audit", d.pos,
						"unknown audit directive //unsync:%s names no lint rule; remove it or fix the name", d.name))
					continue
				}
				if !d.used {
					fs = append(fs, m.finding("stale-audit", d.pos,
						"//unsync:%s suppresses no %s finding; the audited code changed — remove the stale directive", d.name, rule))
					continue
				}
				if d.arg == "" {
					fs = append(fs, m.finding("bare-audit", d.pos,
						"//unsync:%s lacks a justification; append why the audited site is safe", d.name))
				}
			}
		}
	}
	return fs
}
