// Package core implements the paper's primary contribution: the UnSync
// redundant core-pair architecture.
//
// Two identical cores execute the same thread with no lock-stepping and
// no output comparison. Every store committed by a core is written
// through its L1 and deposited into a per-core, non-coalescing
// Communication Buffer (CB). The pair's CBs are drained in matched
// order: an entry is written (once) to the shared ECC-protected L2 only
// when both cores have produced it and the L1↔L2 bus is free. A full CB
// back-pressures that core's commit stage — the resource-occupancy
// bottleneck Figure 6 studies.
//
// Error detection is purely local (parity on storage structures, DMR on
// per-cycle sequential elements; see internal/fault); on detection the
// Error Interrupt Handler (EIH) stalls both cores, the architectural
// state and L1 contents of the error-free core are copied over the
// erroneous core through the shared L2, and both cores resume from the
// error-free core's PC — "always forward execution", no re-execution.
package core

import (
	"fmt"

	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/fault"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/ring"
	"github.com/cmlasu/unsync/internal/stats"
	"github.com/cmlasu/unsync/internal/trace"
)

// Config holds the UnSync-specific parameters.
type Config struct {
	// CBEntries is the per-core Communication Buffer capacity. The
	// paper's synthesized design uses 10 entries; Figure 6 sweeps the
	// size up to 4 KB.
	CBEntries int
	// CBEntryBytes is the size of one CB entry (address + data + tag);
	// used to express CB capacity in bytes for Figure 6's axis.
	CBEntryBytes int
	// DrainPerCycle bounds how many matched CB entries can be written
	// to the L2 per cycle when the bus is free.
	DrainPerCycle int

	// Recovery cost model ("always forward execution", §III-A(c)).
	// RecoveryBase covers error signalling through the EIH, stalling
	// both pipelines and flushing the erroneous one. RecoveryPerReg is
	// the per-architectural-register copy cost through the shared L2;
	// RecoveryPerLine the per-valid-L1-line copy cost.
	RecoveryBase    uint64
	RecoveryPerReg  uint64
	RecoveryPerLine uint64

	// DetectLatency is the cycles from a strike to the EIH's RECOVERY
	// signal. UnSync detects locally — parity on storage structures,
	// DMR on per-cycle sequential elements (§III-B1) — so the latency
	// is a property of this scheme's own detection hardware, not of
	// any rival scheme's parameters. Zero derives the parity latency
	// from fault.DetectionLatency (2 cycles: verified on next access).
	DetectLatency uint64
}

// DefaultConfig returns the performance-evaluation design point: a
// 2 KB Communication Buffer (Figure 6's bottleneck-free size; the
// hardware synthesis of Table II prices the minimal 10-entry buffer)
// and the recovery cost model.
func DefaultConfig() Config {
	return Config{
		CBEntries:       170,
		CBEntryBytes:    12,
		DrainPerCycle:   1,
		RecoveryBase:    100,
		RecoveryPerReg:  2,
		RecoveryPerLine: 8,
		DetectLatency:   fault.DetectionLatency(fault.DetectParity, 0, 0),
	}
}

// DetectionLatency returns the effective strike-to-detection latency:
// the configured value, or the parity latency when unset.
func (c Config) DetectionLatency() uint64 {
	if c.DetectLatency > 0 {
		return c.DetectLatency
	}
	return fault.DetectionLatency(fault.DetectParity, 0, 0)
}

// Validate checks configuration invariants.
func (c *Config) Validate() error {
	if c.CBEntries < 1 {
		return fmt.Errorf("core: CBEntries %d < 1", c.CBEntries)
	}
	if c.CBEntryBytes < 1 {
		return fmt.Errorf("core: CBEntryBytes %d < 1", c.CBEntryBytes)
	}
	if c.DrainPerCycle < 1 {
		return fmt.Errorf("core: DrainPerCycle %d < 1", c.DrainPerCycle)
	}
	return nil
}

// CBBytes returns the CB capacity in bytes.
func (c Config) CBBytes() int { return c.CBEntries * c.CBEntryBytes }

// cbEntry is one non-coalescing Communication Buffer entry: a committed
// store tagged with its dynamic instruction number (the paper tags with
// the instruction address; the dynamic sequence number is the same
// identifier made unique).
type cbEntry struct {
	seq  uint64
	addr uint64
}

// PairStats aggregates pair-level counters.
type PairStats struct {
	Drained     uint64 // CB entries written (once) to L2
	Divergences uint64 // head-of-CB tag mismatches (escaped errors)

	CBFullStall [2]uint64 // commit-block cycles per core due to CB full

	Recoveries     uint64
	RecoveryCycles uint64

	CBOcc [2]*stats.Occupancy
}

// Pair is one UnSync redundant core-pair.
type Pair struct {
	Cfg   Config
	A, B  *pipeline.Core
	Hier  *mem.Hierarchy
	Stats PairStats

	// cb holds the two Communication Buffers. Occupancy is bounded by
	// Cfg.CBEntries (the commit gate refuses stores into a full CB), so
	// the preallocated rings never grow on the cycle loop.
	cb    [2]*ring.Buffer[cbEntry]
	ids   [2]int // hierarchy core slots of A and B
	cycle uint64

	pendingRecovery []recoveryEvent
}

type recoveryEvent struct {
	at      uint64
	errCore int
}

// MemConfig adapts a hierarchy configuration to UnSync's requirements:
// a write-through L1 (§III-C1) with parity, under the ECC L2.
func MemConfig(memCfg mem.Config) mem.Config {
	memCfg.L1D.Policy = mem.WriteThrough
	memCfg.L1D.Protect = mem.ProtParity
	memCfg.L1I.Protect = mem.ProtParity
	memCfg.L2.Protect = mem.ProtSECDED
	return memCfg
}

// NewPair builds an UnSync pair over its own two-core hierarchy.
// streamA and streamB must produce identical records (use two
// generators with the same profile, or two SliceStreams over the same
// slice).
func NewPair(coreCfg pipeline.Config, memCfg mem.Config, cfg Config, streamA, streamB trace.Stream) *Pair {
	h := mem.NewHierarchy(MemConfig(memCfg), 2)
	return NewPairOn(coreCfg, cfg, h, 0, 1, streamA, streamB)
}

// NewPairOn builds an UnSync pair on an existing hierarchy, occupying
// core slots idA and idB (multi-pair chips share one hierarchy).
func NewPairOn(coreCfg pipeline.Config, cfg Config, h *mem.Hierarchy, idA, idB int, streamA, streamB trace.Stream) *Pair {
	if err := cfg.Validate(); err != nil {
		//unsync:allow-panic configs are validated at the public API boundary; an invalid one here is a programming error
		panic(err)
	}
	p := &Pair{Cfg: cfg, Hier: h, ids: [2]int{idA, idB}}
	p.cb[0] = ring.New[cbEntry](cfg.CBEntries)
	p.cb[1] = ring.New[cbEntry](cfg.CBEntries)
	p.A = pipeline.NewCore(coreCfg, idA, h, streamA)
	p.B = pipeline.NewCore(coreCfg, idB, h, streamB)
	p.Stats.CBOcc[0] = stats.NewOccupancy(cfg.CBEntries)
	p.Stats.CBOcc[1] = stats.NewOccupancy(cfg.CBEntries)
	p.attach(0, p.A)
	p.attach(1, p.B)
	return p
}

func (p *Pair) attach(side int, c *pipeline.Core) {
	c.CommitGate = func(rec trace.Record, cycle uint64) bool {
		if rec.IsStore() && p.cb[side].Len() >= p.Cfg.CBEntries {
			p.Stats.CBFullStall[side]++
			return false
		}
		return true
	}
	c.OnCommit = func(rec trace.Record, cycle uint64) {
		if rec.IsStore() {
			p.cb[side].PushBack(cbEntry{seq: rec.Seq, addr: rec.Addr})
		}
	}
	c.DrainEmpty = func(cycle uint64) bool {
		return p.cb[side].Empty()
	}
}

// Cycle returns the pair's cycle counter.
func (p *Pair) Cycle() uint64 { return p.cycle }

// CBLen returns the occupancy of one core's Communication Buffer.
func (p *Pair) CBLen(side int) int { return p.cb[side].Len() }

// Step advances the pair by one cycle: recoveries fire, the CB drains,
// then both cores step.
func (p *Pair) Step() {
	p.fireRecoveries()
	p.drain()
	p.A.Step()
	p.B.Step()
	p.Stats.CBOcc[0].Sample(p.cb[0].Len())
	p.Stats.CBOcc[1].Sample(p.cb[1].Len())
	p.cycle++
}

// drain writes matched CB entries to the shared L2. Following §III-A(a),
// an entry leaves the pair only when both cores have produced it ("has
// completed execution on both") and the L1↔L2 bus is free; exactly one
// copy is written.
func (p *Pair) drain() {
	for n := 0; n < p.Cfg.DrainPerCycle; n++ {
		if p.cb[0].Empty() || p.cb[1].Empty() {
			return
		}
		if !p.Hier.Bus.FreeAt(p.cycle) {
			return
		}
		a, b := p.cb[0].PopFront(), p.cb[1].PopFront()
		if a.seq != b.seq {
			// The tags should always match in an error-free run; a
			// mismatch is an escaped error (outside the ROEC).
			p.Stats.Divergences++
		}
		p.Hier.WriteLineToL2(p.cycle, a.addr)
		p.Stats.Drained++
	}
}

// Done reports whether both cores have drained their streams and the
// CBs are empty.
func (p *Pair) Done() bool {
	return p.A.Done() && p.B.Done() && p.cb[0].Empty() && p.cb[1].Empty()
}

// Run steps the pair to completion or until maxCycles.
func (p *Pair) Run(maxCycles uint64) error {
	for !p.Done() {
		if p.cycle >= maxCycles {
			return pipeline.ErrCycleBudget
		}
		p.Step()
	}
	return nil
}

// ResetStats clears all statistics (pair, cores and the pair's memory
// hierarchy) after a warmup phase, so every event counter covers only
// the measurement window.
func (p *Pair) ResetStats() {
	p.A.ResetStats()
	p.B.ResetStats()
	p.Hier.ResetStats()
	p.Stats = PairStats{
		CBOcc: [2]*stats.Occupancy{
			stats.NewOccupancy(p.Cfg.CBEntries),
			stats.NewOccupancy(p.Cfg.CBEntries),
		},
	}
}

// Events returns the pair-level event counts of the UnSync scheme
// under the repository-wide taxonomy (internal/events): Communication
// Buffer pressure, drain volume and EIH recovery costs. Per-replica
// stall counters are summed; core- and memory-side events are merged
// in by the measurement engine (cmp).
func (p *Pair) Events() events.Counts {
	return events.Counts{
		events.CBFullStall:    p.Stats.CBFullStall[0] + p.Stats.CBFullStall[1],
		events.CBDrained:      p.Stats.Drained,
		events.CBDivergence:   p.Stats.Divergences,
		events.RecoveryCount:  p.Stats.Recoveries,
		events.RecoveryCycles: p.Stats.RecoveryCycles,
	}
}

// IPC returns the pair's architectural throughput: committed
// instructions of the (redundant) thread per cycle. A pair that never
// stepped reports 0.
func (p *Pair) IPC() float64 {
	if p.cycle == 0 {
		return 0
	}
	insts := p.A.Stats.Insts
	if p.B.Stats.Insts < insts {
		insts = p.B.Stats.Insts
	}
	return float64(insts) / float64(p.cycle)
}

// Committed returns the pair's committed-instruction clock: the minimum
// over both replicas. Warmup gating and fault-arrival sampling both use
// this (the engine's one warmup rule — see cmp.Drive).
func (p *Pair) Committed() uint64 {
	if p.A.Stats.Insts < p.B.Stats.Insts {
		return p.A.Stats.Insts
	}
	return p.B.Stats.Insts
}

// Replicas returns the number of cores a soft error can strike.
func (p *Pair) Replicas() int { return 2 }

// InjectError models a soft-error strike on the given core at the given
// cycle: the local detection hardware (parity/DMR) raises the EIH after
// the scheme's own detection latency, scheduling a pair recovery.
func (p *Pair) InjectError(cycle uint64, core int) {
	p.ScheduleRecovery(cycle+p.Cfg.DetectionLatency(), core)
}

// ScheduleRecovery schedules an error recovery: an error was detected on
// errCore (0 or 1) and the EIH raises RECOVERY at cycle at.
func (p *Pair) ScheduleRecovery(at uint64, errCore int) {
	if errCore != 0 && errCore != 1 {
		//unsync:allow-panic invariant bounds check: a redundant pair has exactly cores 0 and 1
		panic("core: bad error core index")
	}
	p.pendingRecovery = append(p.pendingRecovery, recoveryEvent{at: at, errCore: errCore})
}

func (p *Pair) fireRecoveries() {
	kept := p.pendingRecovery[:0]
	for _, ev := range p.pendingRecovery {
		if ev.at > p.cycle {
			kept = append(kept, ev)
			continue
		}
		p.recover(ev.errCore)
	}
	p.pendingRecovery = kept
}

// recover models the always-forward-execution recovery of §III-A(c):
// both cores stop, the erroneous pipeline is flushed, the architectural
// state and L1 contents of the error-free core are copied through the
// shared L2, the erroneous core's CB is overwritten, and both cores
// resume from the error-free core's position. There is no re-execution;
// the cost is the stop-copy-resume window.
func (p *Pair) recover(errCore int) {
	good := 1 - errCore
	goodL1 := p.Hier.Cores[p.ids[good]].L1D
	lines := uint64(goodL1.ValidLines())
	cost := p.Cfg.RecoveryBase +
		uint64(2*isa.NumRegs+1)*p.Cfg.RecoveryPerReg + // both register files + PC
		lines*p.Cfg.RecoveryPerLine

	until := p.cycle + cost
	p.A.FreezeUntil(until)
	p.B.FreezeUntil(until)

	// The erroneous pipeline is flushed and the core resumes from the
	// error-free core's architectural position (copied PC): forwarded
	// if it was behind, re-tracing a few instructions if it was ahead.
	cores := [2]*pipeline.Core{p.A, p.B}
	cores[errCore].Restart(cores[good].Position())

	// The erroneous core's L1 is replaced by the error-free core's
	// content; modeling-wise the erroneous L1 is invalidated (clean
	// write-through lines are refetchable from the ECC L2) and its CB
	// is overwritten by the error-free core's entries.
	p.Hier.Cores[p.ids[errCore]].L1D.InvalidateAll()
	p.cb[errCore].CopyFrom(p.cb[good])

	p.Stats.Recoveries++
	p.Stats.RecoveryCycles += cost
}

// RecoveryCost returns the modeled cost of one recovery at the current
// instant, without performing it (used by the break-even analysis).
func (p *Pair) RecoveryCost() uint64 {
	lines := uint64(p.Hier.Cores[p.ids[0]].L1D.ValidLines())
	return p.Cfg.RecoveryBase + uint64(2*isa.NumRegs+1)*p.Cfg.RecoveryPerReg + lines*p.Cfg.RecoveryPerLine
}
