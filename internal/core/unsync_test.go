package core

import (
	"testing"

	"github.com/cmlasu/unsync/internal/events"
	"github.com/cmlasu/unsync/internal/isa"
	"github.com/cmlasu/unsync/internal/mem"
	"github.com/cmlasu/unsync/internal/pipeline"
	"github.com/cmlasu/unsync/internal/trace"
)

// storeHeavy builds a stream with the given store fraction.
func storeHeavy(n int, storeEvery int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		if i%storeEvery == 0 {
			recs[i] = trace.Record{Class: isa.ClassStore, Dst: -1, Src1: -1, Src2: -1,
				Addr: uint64(0x100000 + (i%512)*8)}
		} else {
			recs[i] = trace.Record{Class: isa.ClassIntALU, Dst: int8(1 + i%40), Src1: -1, Src2: -1}
		}
		recs[i].Seq = uint64(i)
		recs[i].PC = 0x4000 + uint64(i%64)*4
	}
	return recs
}

func newPair(t *testing.T, recs []trace.Record, cfg Config) *Pair {
	t.Helper()
	a := make([]trace.Record, len(recs))
	b := make([]trace.Record, len(recs))
	copy(a, recs)
	copy(b, recs)
	return NewPair(pipeline.DefaultConfig(), mem.DefaultConfig(), cfg,
		trace.NewSliceStream(a), trace.NewSliceStream(b))
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.CBEntries = 0 },
		func(c *Config) { c.CBEntryBytes = 0 },
		func(c *Config) { c.DrainPerCycle = 0 },
	} {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Error("invalid config accepted")
		}
	}
	if DefaultConfig().CBBytes() != 2040 {
		t.Errorf("default CBBytes = %d, want 2040 (170 x 12B)", DefaultConfig().CBBytes())
	}
}

func TestPairRunsToCompletion(t *testing.T) {
	recs := storeHeavy(5_000, 8)
	p := newPair(t, recs, DefaultConfig())
	if err := p.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if p.A.Stats.Insts != 5_000 || p.B.Stats.Insts != 5_000 {
		t.Errorf("insts = %d/%d", p.A.Stats.Insts, p.B.Stats.Insts)
	}
	wantStores := uint64(5_000 / 8)
	if 5000%8 != 0 {
		wantStores++
	}
	if p.Stats.Drained != wantStores {
		t.Errorf("Drained = %d, want %d", p.Stats.Drained, wantStores)
	}
	if p.Stats.Divergences != 0 {
		t.Errorf("Divergences = %d in an error-free run", p.Stats.Divergences)
	}
	if p.CBLen(0) != 0 || p.CBLen(1) != 0 {
		t.Error("CBs not drained at completion")
	}
}

func TestExactlyOneCopyReachesL2(t *testing.T) {
	recs := storeHeavy(2_000, 4)
	p := newPair(t, recs, DefaultConfig())
	if err := p.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	// Every drained entry makes exactly one L2 write; the cores' own L1
	// write-through stores must NOT hit the L2 directly.
	var l2Writes uint64 = p.Hier.Bus.Transfers()
	if l2Writes < p.Stats.Drained {
		t.Errorf("bus transfers %d < drained %d", l2Writes, p.Stats.Drained)
	}
}

func TestSmallCBStallsLargeCBDoesNot(t *testing.T) {
	// Bursts of 16 back-to-back stores (2/cycle at commit) outpace the
	// 1-entry/cycle CB drain; a large CB absorbs the burst, a tiny one
	// back-pressures commit (Fig 6's mechanism).
	recs := make([]trace.Record, 20_000)
	for i := range recs {
		if i%64 < 16 {
			recs[i] = trace.Record{Class: isa.ClassStore, Dst: -1, Src1: -1, Src2: -1,
				Addr: uint64(0x100000 + (i%512)*8)}
		} else {
			recs[i] = trace.Record{Class: isa.ClassIntALU, Dst: int8(1 + i%40), Src1: -1, Src2: -1}
		}
		recs[i].Seq = uint64(i)
		recs[i].PC = 0x4000 + uint64(i%64)*4
	}
	small := DefaultConfig()
	small.CBEntries = 2
	large := DefaultConfig()
	large.CBEntries = 256

	ps := newPair(t, recs, small)
	pl := newPair(t, recs, large)
	if err := ps.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if ps.Stats.CBFullStall[0]+ps.Stats.CBFullStall[1] == 0 {
		t.Error("tiny CB never filled on a store-heavy stream")
	}
	if ps.IPC() >= pl.IPC() {
		t.Errorf("small-CB IPC %.3f not below large-CB IPC %.3f (Fig 6 property)",
			ps.IPC(), pl.IPC())
	}
	if pl.Stats.CBFullStall[0] > ps.Stats.CBFullStall[0] {
		t.Error("larger CB should stall no more than the small one")
	}
}

func TestMembarWaitsForCBDrain(t *testing.T) {
	recs := []trace.Record{
		{Class: isa.ClassStore, Dst: -1, Src1: -1, Src2: -1, Addr: 0x100000},
		{Class: isa.ClassMembar, Dst: -1, Src1: -1, Src2: -1},
		{Class: isa.ClassIntALU, Dst: 1, Src1: -1, Src2: -1},
	}
	for i := range recs {
		recs[i].Seq = uint64(i)
		recs[i].PC = 0x4000 + uint64(i)*4
	}
	p := newPair(t, recs, DefaultConfig())
	if err := p.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	// The barrier can only commit after the store drained from the CB.
	if p.Stats.Drained != 1 {
		t.Errorf("Drained = %d", p.Stats.Drained)
	}
}

func TestRecoveryFreezesBothCores(t *testing.T) {
	recs := storeHeavy(20_000, 8)
	p := newPair(t, recs, DefaultConfig())
	p.ScheduleRecovery(100, 1)
	if err := p.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Stats.Recoveries != 1 {
		t.Fatalf("Recoveries = %d", p.Stats.Recoveries)
	}
	if p.Stats.RecoveryCycles == 0 {
		t.Fatal("RecoveryCycles = 0")
	}
	if p.A.Stats.FrozenCycles != p.Stats.RecoveryCycles ||
		p.B.Stats.FrozenCycles != p.Stats.RecoveryCycles {
		t.Errorf("frozen cycles A=%d B=%d, want %d on both",
			p.A.Stats.FrozenCycles, p.B.Stats.FrozenCycles, p.Stats.RecoveryCycles)
	}
	// Recovery invalidates the erroneous core's L1.
	if got := p.Stats.Recoveries; got != 1 {
		t.Errorf("Recoveries = %d", got)
	}
	// The run still completes correctly — always forward execution.
	if p.A.Stats.Insts != 20_000 || p.B.Stats.Insts != 20_000 {
		t.Error("recovery lost instructions")
	}
}

func TestRecoveriesSlowThePair(t *testing.T) {
	recs := storeHeavy(20_000, 8)
	clean := newPair(t, recs, DefaultConfig())
	faulty := newPair(t, recs, DefaultConfig())
	for cyc := uint64(500); cyc <= 5_000; cyc += 500 {
		faulty.ScheduleRecovery(cyc, int(cyc/500)%2)
	}
	if err := clean.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := faulty.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if faulty.Cycle() <= clean.Cycle() {
		t.Errorf("faulty run (%d cycles) not slower than clean (%d)",
			faulty.Cycle(), clean.Cycle())
	}
	if faulty.Stats.Recoveries != 10 {
		t.Errorf("Recoveries = %d, want 10", faulty.Stats.Recoveries)
	}
}

func TestRecoveryCostGrowsWithL1Contents(t *testing.T) {
	// Loads populate the write-through L1; the L1-copy term of the
	// recovery cost must grow with the resident lines.
	recs := make([]trace.Record, 10_000)
	for i := range recs {
		recs[i] = trace.Record{Class: isa.ClassLoad, Dst: int8(1 + i%40), Src1: -1, Src2: -1,
			Addr: uint64(0x100000 + (i%2048)*64), Seq: uint64(i), PC: 0x4000 + uint64(i%64)*4}
	}
	p := newPair(t, recs, DefaultConfig())
	cold := p.RecoveryCost()
	for i := 0; i < 20_000; i++ {
		p.Step()
	}
	warm := p.RecoveryCost()
	if warm <= cold {
		t.Errorf("recovery cost did not grow with L1 contents: cold=%d warm=%d", cold, warm)
	}
}

func TestScheduleRecoveryPanicsOnBadCore(t *testing.T) {
	p := newPair(t, storeHeavy(10, 2), DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.ScheduleRecovery(0, 2)
}

func TestPairDeterminism(t *testing.T) {
	prof, _ := trace.ByName("bzip2")
	run := func() uint64 {
		p := NewPair(pipeline.DefaultConfig(), mem.DefaultConfig(), DefaultConfig(),
			trace.NewLimit(trace.NewGenerator(prof), 20_000),
			trace.NewLimit(trace.NewGenerator(prof), 20_000))
		if err := p.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return p.Cycle()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic pair: %d vs %d cycles", a, b)
	}
}

func TestResetStats(t *testing.T) {
	p := newPair(t, storeHeavy(5_000, 4), DefaultConfig())
	for i := 0; i < 1000; i++ {
		p.Step()
	}
	p.ResetStats()
	if p.Stats.Drained != 0 || p.A.Stats.Insts != 0 {
		t.Error("ResetStats incomplete")
	}
	if err := p.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if p.A.Stats.Insts == 0 {
		t.Error("no instructions after reset")
	}
}

func TestMemConfigForcesWriteThroughParity(t *testing.T) {
	cfg := MemConfig(mem.DefaultConfig())
	if cfg.L1D.Policy != mem.WriteThrough {
		t.Error("UnSync L1 must be write-through (§III-C1)")
	}
	if cfg.L1D.Protect != mem.ProtParity || cfg.L2.Protect != mem.ProtSECDED {
		t.Error("UnSync protection wiring wrong")
	}
	// Write-back input must be overridden.
	in := mem.DefaultConfig()
	in.L1D.Policy = mem.WriteBack
	if MemConfig(in).L1D.Policy != mem.WriteThrough {
		t.Error("MemConfig did not override the L1 policy")
	}
}

// TestRecoveryRealignsSkewedCores reproduces the livelock fixed in
// recovery: core B runs several stores ahead of core A when the error
// strikes on B; recovery must resume B from A's position so the CB
// pairing stays aligned and the run completes.
func TestRecoveryRealignsSkewedCores(t *testing.T) {
	prof, _ := trace.ByName("bzip2")
	p := NewPair(pipeline.DefaultConfig(), mem.DefaultConfig(), DefaultConfig(),
		trace.NewLimit(trace.NewGenerator(prof), 30_000),
		trace.NewLimit(trace.NewGenerator(prof), 30_000))
	// Skew the cores: freeze A alone for a while so B runs ahead.
	p.A.FreezeUntil(400)
	for i := 0; i < 600; i++ {
		p.Step()
	}
	if p.B.Position() <= p.A.Position() {
		t.Skip("cores did not skew; adjust the freeze window")
	}
	p.ScheduleRecovery(p.Cycle()+1, 1) // error on the ahead core
	if err := p.Run(100_000_000); err != nil {
		t.Fatalf("run after skewed recovery: %v", err)
	}
	if p.Stats.Recoveries != 1 {
		t.Fatalf("recoveries = %d", p.Stats.Recoveries)
	}
	if p.CBLen(0) != 0 || p.CBLen(1) != 0 {
		t.Error("CBs not drained after recovery — pairing misaligned")
	}
}

// The re-trace direction: error on the BEHIND core forwards it to the
// ahead core's position (always forward execution, §III-B2).
func TestRecoveryForwardsLaggingCore(t *testing.T) {
	prof, _ := trace.ByName("gzip")
	p := NewPair(pipeline.DefaultConfig(), mem.DefaultConfig(), DefaultConfig(),
		trace.NewLimit(trace.NewGenerator(prof), 30_000),
		trace.NewLimit(trace.NewGenerator(prof), 30_000))
	p.A.FreezeUntil(400)
	for i := 0; i < 600; i++ {
		p.Step()
	}
	ahead := p.B.Position()
	if ahead <= p.A.Position() {
		t.Skip("cores did not skew")
	}
	p.ScheduleRecovery(p.Cycle()+1, 0) // error on the lagging core
	for i := 0; i < 5; i++ {
		p.Step()
	}
	if p.A.Position() < ahead {
		t.Errorf("lagging core not forwarded: A at %d, B was at %d", p.A.Position(), ahead)
	}
	if err := p.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
}

// TestPairIPCZeroCycles pins the divide-by-zero guard: an unstepped
// pair reports IPC 0, never NaN.
func TestPairIPCZeroCycles(t *testing.T) {
	p := newPair(t, storeHeavy(16, 4), DefaultConfig())
	if got := p.IPC(); got != 0 {
		t.Errorf("unstepped pair IPC = %v, want 0", got)
	}
}

// TestPairEvents pins that the pair's event map mirrors its PairStats
// under the repository-wide taxonomy, including the summed per-replica
// CB-full stalls.
func TestPairEvents(t *testing.T) {
	p := newPair(t, storeHeavy(600, 4), Config{
		CBEntries: 2, CBEntryBytes: 12, DrainPerCycle: 1,
		RecoveryBase: 10, RecoveryPerReg: 1, RecoveryPerLine: 1,
	})
	if err := p.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	ev := p.Events()
	if ev[events.CBDrained] != p.Stats.Drained || p.Stats.Drained == 0 {
		t.Errorf("CB.DRAINED = %d, PairStats.Drained = %d", ev[events.CBDrained], p.Stats.Drained)
	}
	if want := p.Stats.CBFullStall[0] + p.Stats.CBFullStall[1]; ev[events.CBFullStall] != want {
		t.Errorf("CB.FULL_STALL = %d, want summed %d", ev[events.CBFullStall], want)
	}
}

// TestResetStatsClearsHierarchy pins that the pair's warmup reset also
// covers the memory hierarchy, so memory-side event counts cannot leak
// warmup traffic into the measurement window.
func TestResetStatsClearsHierarchy(t *testing.T) {
	p := newPair(t, storeHeavy(400, 4), DefaultConfig())
	if err := p.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Hier.Cores[p.A.ID].L1D.Stats.Accesses == 0 {
		t.Fatal("no L1D traffic before reset — test is vacuous")
	}
	p.ResetStats()
	if got := p.Hier.Cores[p.A.ID].L1D.Stats.Accesses; got != 0 {
		t.Errorf("L1D accesses after ResetStats = %d, want 0", got)
	}
	if got := p.Hier.L2.Stats.Accesses; got != 0 {
		t.Errorf("L2 accesses after ResetStats = %d, want 0", got)
	}
}
