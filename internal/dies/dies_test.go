package dies

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.2f, want %.2f", name, got, want)
	}
}

func TestCatalogMatchesTableIII(t *testing.T) {
	cat := Catalog()
	if len(cat) != 3 {
		t.Fatalf("catalog size = %d", len(cat))
	}
	for _, m := range cat {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	p, ok := ByName("Polaris")
	if !ok || p.Cores != 80 || p.CoreAreaMM2 != 2.5 || p.DieAreaMM2 != 275 {
		t.Errorf("Polaris entry wrong: %+v", p)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName found a nonexistent processor")
	}
}

// Table III of the paper, exactly.
func TestTableIIIProjections(t *testing.T) {
	rows := TableIII(PaperCAOReunion, PaperCAOUnSync)
	want := map[string]struct{ reunion, unsync, diff float64 }{
		"Polaris": {316.54, 289.90, 26.64},
		"Tile64":  {377.85, 347.16, 30.69},
		"GeForce": {549.76, 498.61, 51.15},
	}
	for _, r := range rows {
		w, ok := want[r.Processor.Name]
		if !ok {
			t.Fatalf("unexpected processor %q", r.Processor.Name)
		}
		approx(t, r.Processor.Name+" reunion", r.ReunionMM2, w.reunion, 0.01)
		approx(t, r.Processor.Name+" unsync", r.UnSyncMM2, w.unsync, 0.01)
		approx(t, r.Processor.Name+" diff", r.DifferenceMM2(), w.diff, 0.01)
	}
}

// The paper's observation 1: going from 80 to 128 cores (≈50% more)
// roughly doubles the die-area difference between the two schemes.
func TestDifferenceGrowsSuperlinearly(t *testing.T) {
	rows := TableIII(PaperCAOReunion, PaperCAOUnSync)
	var polaris, geforce Projection
	for _, r := range rows {
		switch r.Processor.Name {
		case "Polaris":
			polaris = r
		case "GeForce":
			geforce = r
		}
	}
	ratio := geforce.DifferenceMM2() / polaris.DifferenceMM2()
	if ratio < 1.8 || ratio > 2.1 {
		t.Errorf("difference ratio GeForce/Polaris = %.2f, want ~1.92 (≈2x)", ratio)
	}
}

// The paper's observation 2: larger per-core area (Tile64, 3.6 mm²)
// yields a larger difference than a smaller-core chip with more cores
// at the same node (GeForce has more cores but Tile64's per-core area
// still produces a relatively large gap per core).
func TestPerCoreAreaMatters(t *testing.T) {
	tile, _ := ByName("Tile64")
	geforce, _ := ByName("GeForce")
	diffPerCoreTile := (tile.Project(PaperCAOReunion) - tile.Project(PaperCAOUnSync)) / float64(tile.Cores)
	diffPerCoreGF := (geforce.Project(PaperCAOReunion) - geforce.Project(PaperCAOUnSync)) / float64(geforce.Cores)
	if diffPerCoreTile <= diffPerCoreGF {
		t.Errorf("per-core difference: Tile64 %.3f <= GeForce %.3f", diffPerCoreTile, diffPerCoreGF)
	}
}

func TestProjectZeroOverhead(t *testing.T) {
	m, _ := ByName("Polaris")
	if m.Project(0) != m.DieAreaMM2 {
		t.Error("zero CAO must leave the die unchanged")
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	bad := ManyCore{Name: "x", Cores: 0, CoreAreaMM2: 1, DieAreaMM2: 10}
	if bad.Validate() == nil {
		t.Error("zero cores accepted")
	}
	bad = ManyCore{Name: "x", Cores: 100, CoreAreaMM2: 2, DieAreaMM2: 10}
	if bad.Validate() == nil {
		t.Error("cores larger than die accepted")
	}
}
